//! Property test: the E22 assume/guarantee chain holds on *randomized*
//! admissible schedules, driven through the **real** sublayer
//! implementations via the same contract models the checker explores
//! exhaustively (`slverify::contracts`).
//!
//! The schedules are exactly the models' own action alphabets — the fault
//! budget, the step bounds and every obligation constant are the
//! contracts' own (stated once in `slverify::contracts`, not duplicated
//! here) — so a schedule this test generates is by construction one the
//! assumptions admit. On shipped code no schedule may trip any contract;
//! the two teeth tests pin that the identical walker refutes the seeded
//! mutation canaries.

use slverify::{CmContract, DmContract, Model, OsrContract, RdContract, G_DM, G_OSR};

/// Walk `model` down one random path, checking its invariant at every
/// visited state. `picks[i]` selects (mod the enabled count) among the
/// successors the model itself offers — so the walk can only take
/// admissible steps.
fn walk<M: Model>(model: &M, picks: &[u8]) -> Result<usize, String> {
    let mut s = model
        .init()
        .into_iter()
        .next()
        .expect("every contract has an initial state");
    model.invariant(&s).map_err(|e| format!("init: {e}"))?;
    let mut visited = 1;
    for (i, &p) in picks.iter().enumerate() {
        let succs = model.next(&s);
        if succs.is_empty() {
            break;
        }
        let n = succs.len();
        let (label, ns) = succs.into_iter().nth(p as usize % n).expect("index in range");
        model.invariant(&ns).map_err(|e| format!("step {i} ({label}): {e}"))?;
        s = ns;
        visited += 1;
    }
    Ok(visited)
}

proptest::proptest! {
    #[test]
    fn prop_shipped_dm_contract_never_trips(
        picks in proptest::collection::vec(proptest::num::u8::ANY, 0..32),
    ) {
        if let Err(why) = walk(&DmContract::shipped(), &picks) {
            proptest::prop_assert!(false, "{}", why);
        }
    }

    #[test]
    fn prop_shipped_cm_contract_never_trips(
        picks in proptest::collection::vec(proptest::num::u8::ANY, 0..32),
    ) {
        if let Err(why) = walk(&CmContract::shipped(), &picks) {
            proptest::prop_assert!(false, "{}", why);
        }
    }

    #[test]
    fn prop_shipped_rd_contract_never_trips(
        picks in proptest::collection::vec(proptest::num::u8::ANY, 0..64),
    ) {
        if let Err(why) = walk(&RdContract::shipped(), &picks) {
            proptest::prop_assert!(false, "{}", why);
        }
    }

    #[test]
    fn prop_shipped_osr_contract_never_trips(
        picks in proptest::collection::vec(proptest::num::u8::ANY, 0..16),
    ) {
        if let Err(why) = walk(&OsrContract::shipped(), &picks) {
            proptest::prop_assert!(false, "{}", why);
        }
    }
}

#[test]
fn the_walker_has_teeth_on_the_dm_canary() {
    // The same walker, pointed at the seeded double-admission mutation,
    // refutes it on the pinned two-step schedule.
    let why = walk(&DmContract::buggy(), &[0, 0]).expect_err("BuggyDm must trip");
    assert!(why.contains(G_DM), "{why}");
}

#[test]
fn the_walker_has_teeth_on_the_osr_canary() {
    // Successor index 1 from the initial state is `deliver_seg1`: a
    // gapped delivery the mutation releases to the application.
    let why = walk(&OsrContract::buggy(), &[1]).expect_err("BuggyOsr must trip");
    assert!(why.contains(G_OSR), "{why}");
}
