//! Property test: every shipped congestion controller honors the contract
//! model-checked by `slverify::CongCtrl`, under *arbitrary* feeder-legal
//! signal sequences (far longer and more varied than the checker's
//! bounded exhaustive exploration).
//!
//! The invariants and their constants ([`slcc::ALLOWANCE_FLOOR`],
//! [`slcc::MSS`]) are shared with the model — stated once in `slcc`, not
//! duplicated here:
//!
//! 1. allowance never below the floor;
//! 2. ssthresh non-increasing on any step taken from an open episode;
//! 3. slow-start exit permanent until the next loss;
//! 4. `FullAck`/`TimeoutLoss` always close the recovery episode.
//!
//! The generator enforces the same assume-discipline as the model: the
//! feeder (which owns the sequence arithmetic) only speaks
//! `Partial`/`Full`/`DupAck` while an episode is open, and only
//! `Acked`/`EcnEcho`/`DupAckLoss` outside one.

use netsim::{Dur, Time};
use slcc::{CongSignal, ALLOWANCE_FLOOR, MSS, SHIPPED};

/// Drive one controller through the op stream, asserting the contract
/// after every signal. Returns an error description on violation.
fn drive(name: &str, ops: &[(u8, u16)]) -> Result<(), String> {
    let mut ctrl = slcc::make(name).map_err(|e| e.to_string())?;
    let mut episode = false;
    for (i, &(kind, raw_bytes)) in ops.iter().enumerate() {
        let now = Time::ZERO + Dur::from_millis(50 * (i as u64 + 1));
        let bytes = (raw_bytes as u32 % (2 * MSS as u32)) + 1;
        let (label, sig, episode_after) = if episode {
            match kind % 4 {
                0 => ("dupack", CongSignal::DupAck, true),
                1 => ("partial_ack", CongSignal::PartialAck { bytes }, true),
                2 => ("full_ack", CongSignal::FullAck { bytes, rtt: None }, false),
                _ => ("timeout", CongSignal::TimeoutLoss, false),
            }
        } else {
            match kind % 4 {
                0 => ("acked", CongSignal::Acked { bytes, rtt: None }, false),
                1 => ("ecn_echo", CongSignal::EcnEcho, false),
                2 => ("dupack_loss", CongSignal::DupAckLoss, true),
                _ => ("timeout", CongSignal::TimeoutLoss, false),
            }
        };
        let pre_ssthresh = ctrl.ssthresh();
        let pre_allowance = ctrl.allowance(now);
        let was_ca = pre_ssthresh.is_some_and(|t| pre_allowance >= t);
        let pre_episode = episode;

        ctrl.on_signal(now, sig);
        episode = episode_after;

        let allowance = ctrl.allowance(now);
        if allowance < ALLOWANCE_FLOOR {
            return Err(format!(
                "{name}: op {i} ({label}): allowance {allowance} below floor {ALLOWANCE_FLOOR}"
            ));
        }
        if pre_episode {
            if let (Some(pre), Some(post)) = (pre_ssthresh, ctrl.ssthresh()) {
                if post > pre {
                    return Err(format!(
                        "{name}: op {i} ({label}): ssthresh raised {pre} -> {post} mid-episode"
                    ));
                }
            }
        }
        if !pre_episode && label == "acked" && was_ca {
            if let Some(t) = ctrl.ssthresh() {
                if allowance < t {
                    return Err(format!(
                        "{name}: op {i} (acked): dropped back into slow start \
                         ({allowance} < ssthresh {t}) with no loss"
                    ));
                }
            }
        }
        if matches!(sig, CongSignal::FullAck { .. } | CongSignal::TimeoutLoss)
            && ctrl.in_recovery()
        {
            return Err(format!("{name}: op {i} ({label}): episode did not close"));
        }
    }
    Ok(())
}

proptest::proptest! {
    #[test]
    fn prop_shipped_controllers_honor_the_contract(
        ops in proptest::collection::vec(
            (proptest::num::u8::ANY, proptest::num::u16::ANY),
            0..80,
        ),
    ) {
        for name in SHIPPED {
            if let Err(why) = drive(name, &ops) {
                proptest::prop_assert!(false, "{}", why);
            }
        }
    }
}

#[test]
fn the_seeded_bug_is_caught_by_the_same_driver() {
    // The deliberately broken controller fails the identical discipline:
    // a loss followed by a partial-ack storm starves its window. This
    // pins that the property above has teeth.
    let mut ctrl: Box<dyn slcc::RateController> = Box::new(slcc::BuggyDeflate::new());
    ctrl.on_signal(Time::ZERO, CongSignal::DupAckLoss);
    for i in 0..8 {
        let now = Time::ZERO + Dur::from_millis(50 * (i + 1));
        ctrl.on_signal(now, CongSignal::PartialAck { bytes: MSS as u32 });
    }
    let final_allowance = ctrl.allowance(Time::ZERO + Dur::from_secs(1));
    assert!(
        final_allowance < ALLOWANCE_FLOOR,
        "BuggyDeflate was supposed to starve, got allowance {final_allowance}"
    );
}
