//! Capstone integration: the **sublayered TCP running over the sublayered
//! network layer** — TCP packets encapsulated in network-layer data
//! packets, forwarded hop by hop across a multi-router topology built by
//! neighbor determination + route computation, surviving a mid-transfer
//! link failure.
//!
//! The TCP stacks live outside the simulator and are co-simulated: each
//! time slice drains their transmit queues into the attached router
//! (`send_data`) and feeds locally-delivered network packets back in.

use netlayer::{addr_of, build, DistanceVector, DvConfig, LinkState, LsConfig, RouteComputation, Router, Topology};
use netsim::{Dur, Stack};
use sublayer_core::{CmState, SlConfig, SlTcpStack};
use tcp_mono::wire::Endpoint;

/// Extract the destination network address from a native sublayered TCP
/// frame (bytes 5..9 after the magic byte).
fn tcp_frame_dst(frame: &[u8]) -> u32 {
    u32::from_be_bytes(frame[5..9].try_into().unwrap())
}

struct Host {
    stack: SlTcpStack,
    router_idx: usize,
}

fn co_simulate(
    topo: &Topology,
    make_rc: &dyn Fn(netlayer::Addr) -> Box<dyn RouteComputation>,
    fail_edge_at: Option<(usize, Dur)>,
) -> (Vec<u8>, Vec<u8>) {
    let mut net = build(topo, 5, Dur::from_millis(2), make_rc);
    net.settle(Dur::from_secs(20)); // let routing converge

    // Host A at router 0, host B at the highest-index router.
    let last = topo.n - 1;
    let addr_a = addr_of(0).0;
    let addr_b = addr_of(last).0;
    let mut a = Host {
        stack: SlTcpStack::new(addr_a, SlConfig::default(), slmetrics::shared()),
        router_idx: 0,
    };
    let mut b = Host {
        stack: SlTcpStack::new(addr_b, SlConfig::default(), slmetrics::shared()),
        router_idx: last,
    };
    b.stack.listen(80);
    let now = net.net.now();
    let conn = a.stack.connect(now, 5000, Endpoint::new(addr_b, 80));

    let payload: Vec<u8> = (0..40_000u32).map(|i| (i % 223) as u8).collect();
    a.stack.send(conn, &payload);

    let mut received = Vec::new();
    let mut failed = false;
    let start = net.net.now();
    for _slice in 0..4000 {
        let now = net.net.now();
        if let Some((edge, after)) = fail_edge_at {
            if !failed && now.since(start) >= after {
                net.fail_edge(edge);
                failed = true;
            }
        }
        // Hosts tick and transmit into their routers.
        for host in [&mut a, &mut b] {
            host.stack.on_tick(now);
            while let Some(frame) = host.stack.poll_transmit(now) {
                let dst = netlayer::Addr(tcp_frame_dst(&frame));
                net.router(host.router_idx).send_data(dst, frame);
            }
            let idx = host.router_idx;
            let node = net.nodes[idx];
            net.net.poll_node(node);
        }
        // Advance simulated time.
        net.settle(Dur::from_millis(10));
        // Deliver network packets up into the host stacks.
        let now = net.net.now();
        for host in [&mut a, &mut b] {
            let idx = host.router_idx;
            for pkt in net.router(idx).take_inbox() {
                host.stack.on_frame(now, &pkt.payload);
            }
        }
        received.extend(b.stack.established().first().copied().map(|c| b.stack.recv(c)).unwrap_or_default());
        if received.len() >= payload.len() {
            break;
        }
    }
    (payload, received)
}

#[test]
fn sublayered_tcp_over_dv_routed_grid() {
    let topo = Topology::grid(3, 2);
    let (sent, got) = co_simulate(
        &topo,
        &|a| Box::new(DistanceVector::new(a, DvConfig::default())),
        None,
    );
    assert_eq!(got, sent);
}

#[test]
fn sublayered_tcp_over_ls_routed_grid() {
    let topo = Topology::grid(3, 2);
    let (sent, got) = co_simulate(
        &topo,
        &|a| Box::new(LinkState::new(a, LsConfig::default())),
        None,
    );
    assert_eq!(got, sent);
}

#[test]
fn transfer_survives_mid_stream_link_failure() {
    // Ring: failing one edge leaves an alternate path; TCP retransmission
    // bridges the reconvergence gap.
    let topo = Topology::ring(5);
    let (sent, got) = co_simulate(
        &topo,
        &|a| Box::new(LinkState::new(a, LsConfig::default())),
        Some((0, Dur::from_millis(300))),
    );
    assert_eq!(got, sent, "transfer must complete over the repaired path");
}

#[test]
fn handshake_state_visible_through_the_stack() {
    // Sanity: the co-simulation really did run CM's handshake.
    let topo = Topology::line(2);
    let mut net = build(&topo, 9, Dur::from_millis(2), &|a| {
        Box::new(DistanceVector::new(a, DvConfig::default()))
    });
    net.settle(Dur::from_secs(10));
    let addr_b = addr_of(1).0;
    let mut a = SlTcpStack::new(addr_of(0).0, SlConfig::default(), slmetrics::shared());
    let mut b = SlTcpStack::new(addr_b, SlConfig::default(), slmetrics::shared());
    b.listen(80);
    let now = net.net.now();
    let conn = a.connect(now, 5000, Endpoint::new(addr_b, 80));
    for _ in 0..200 {
        let now = net.net.now();
        a.on_tick(now);
        b.on_tick(now);
        while let Some(f) = a.poll_transmit(now) {
            net.router(0).send_data(netlayer::Addr(tcp_frame_dst(&f)), f);
        }
        while let Some(f) = b.poll_transmit(now) {
            net.router(1).send_data(netlayer::Addr(tcp_frame_dst(&f)), f);
        }
        let n0 = net.nodes[0];
        let n1 = net.nodes[1];
        net.net.poll_node(n0);
        net.net.poll_node(n1);
        net.settle(Dur::from_millis(10));
        let now = net.net.now();
        for pkt in net.router(0).take_inbox() {
            a.on_frame(now, &pkt.payload);
        }
        for pkt in net.router(1).take_inbox() {
            b.on_frame(now, &pkt.payload);
        }
        if a.state(conn) == CmState::Established && !b.established().is_empty() {
            return;
        }
    }
    panic!("handshake did not complete across the routed network");
}

// Re-export used only to reference Router in signatures above.
#[allow(unused)]
fn _type_check(r: &mut Router) {
    let _ = r.addr();
}
