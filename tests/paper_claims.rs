//! Regression anchors for the paper's quantitative claims, as reproduced
//! by this workspace (see EXPERIMENTS.md for the full narrative).

use bitstuff::{analyze, Ratio, StuffRule};
use slverify::{check, Combined, Handshake, SlidingWindow};

#[test]
fn paper_overhead_figures() {
    // §4.1 lesson 2: "overhead ... of 1 in 128 compared to 1 in 32 for the
    // HDLC rule". The naive model reproduces the paper's numbers exactly;
    // the exact renewal analysis sharpens HDLC's to 1/62.
    let hdlc = analyze(&StuffRule::hdlc()).unwrap();
    assert_eq!(hdlc.naive_rate, Ratio::new(1, 32)); // the paper's figure
    assert_eq!(hdlc.exact_rate, Ratio::new(1, 62)); // exact
    let low = analyze(&StuffRule::low_overhead()).unwrap();
    assert_eq!(low.naive_rate, Ratio::new(1, 128));
    assert_eq!(low.exact_rate, Ratio::new(1, 128)); // exact == naive here
}

#[test]
fn paper_rule_library_is_large() {
    // §4.1: "it found 66 alternate stuffing rules". Our space differs
    // (the paper never specifies its enumeration), but the qualitative
    // claim — *many* valid alternatives exist, some cheaper than HDLC —
    // must hold in the structured substring space.
    let (library, stats) = bitstuff::search(&bitstuff::SearchSpace {
        flag_len: 8,
        trigger_lens: 5..=7,
        triggers_from_flag_only: true,
    });
    assert!(stats.valid >= 66, "found only {} valid rules", stats.valid);
    assert!(bitstuff::search::cheaper_than_hdlc(&library) > 0);
}

#[test]
fn verification_effort_gap() {
    // §4.2: monolithic verification entangles concerns. Quantified: the
    // combined handshake x window model costs an order of magnitude more
    // states than the sum of the sublayer models.
    let hs = check(&Handshake { three_way: true }, 5_000_000);
    let win = check(&SlidingWindow { w: 2, s_mod: 4, n_msgs: 6 }, 5_000_000);
    let combined = check(
        &Combined {
            hs: Handshake { three_way: true },
            win: SlidingWindow { w: 2, s_mod: 4, n_msgs: 6 },
        },
        20_000_000,
    );
    assert!(hs.ok() && win.ok() && combined.violation.is_none());
    assert!(combined.states >= 10 * (hs.states + win.states));
}

#[test]
fn checker_rediscovers_classic_theorems() {
    // Selective repeat requires sequence space >= 2 x window.
    assert!(check(&SlidingWindow { w: 2, s_mod: 4, n_msgs: 6 }, 2_000_000).ok());
    assert!(check(&SlidingWindow { w: 2, s_mod: 3, n_msgs: 5 }, 2_000_000)
        .violation
        .is_some());
    // The three-way handshake is what rejects stale incarnations.
    assert!(check(&Handshake { three_way: true }, 2_000_000).violation.is_none());
    assert!(check(&Handshake { three_way: false }, 2_000_000).violation.is_some());
}

#[test]
fn header_isomorphism_cost() {
    // §3.1: the native header is isomorphic to RFC 793, ISN redundancy
    // acknowledged. Fixed cost: 8 bytes over the 28-byte RFC 793 carriage.
    assert_eq!(sublayer_core::Packet::header_len(0), 36);
}
