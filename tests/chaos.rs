//! Workspace-level chaos tests: the campaign harness's own guarantees.
//!
//! * the blackout campaign surfaces a clean abort in BOTH stacks (no
//!   hang, both ends learn why the connection died);
//! * identical seeds reproduce byte-identical JSON summaries;
//! * every standard profile passes its invariants;
//! * property test: arbitrary fault profiles, admin schedules and
//!   payloads never panic either stack — every run ends in delivery or a
//!   surfaced abort, with only correct bytes delivered.

use bench::chaos::{
    run_campaign, run_raw, run_sweep, summary_json, ChaosProfile, ChaosStack,
};
use netsim::{AdminOp, BurstLoss, Dur, FaultProfile, LinkParams, Time};

#[test]
fn blackout_surfaces_abort_in_both_stacks() {
    for stack in ChaosStack::all() {
        let o = run_campaign(ChaosProfile::Blackout, stack, 1);
        assert!(o.ok(), "{stack:?}: {:?}", o.violations);
        assert!(!o.complete, "{stack:?} delivered through a dead link?");
        assert!(o.client_error.is_some(), "{stack:?}: no client error");
        assert!(o.server_error.is_some(), "{stack:?}: no server error");
        assert!(o.partition_drops > 0);
    }
}

#[test]
fn identical_seeds_reproduce_identical_json() {
    let profiles = [ChaosProfile::Blackout, ChaosProfile::MixedMayhem];
    let a = summary_json(&run_sweep(&profiles, &ChaosStack::all(), &[3]));
    let b = summary_json(&run_sweep(&profiles, &ChaosStack::all(), &[3]));
    assert_eq!(a, b, "chaos campaigns must be replayable byte-for-byte");
    assert!(a.contains("\"violations\":0"));
}

#[test]
fn every_profile_passes_for_a_fresh_seed() {
    for o in run_sweep(&ChaosProfile::all(), &ChaosStack::all(), &[77]) {
        assert!(o.ok(), "{}/{} seed {}: {:?}", o.profile, o.stack, o.seed, o.violations);
    }
}

proptest::proptest! {
    #[test]
    fn prop_arbitrary_chaos_never_hangs_or_corrupts(
        seed in proptest::num::u32::ANY,
        payload_len in 0usize..16_000,
        drop_m in 0u32..250,          // permille
        corrupt_m in 0u32..50,
        dup_m in 0u32..200,
        reorder_m in 0u32..200,
        reorder_delay_ms in 1u64..30,
        jitter_ms in 0u64..10,
        with_burst in proptest::bool::ANY,
        burst_enter_m in 1u32..30,
        burst_loss_m in 0u32..500,
        sched_kind in 0u8..3,         // 0 none, 1 flaps, 2 blackout
        t0_ms in 200u64..5_000,
        down_ms in 200u64..4_000,
        up_ms in 1_000u64..8_000,
    ) {
        let mut fault = FaultProfile::lossy(drop_m as f64 / 1000.0)
            .with_corrupt(corrupt_m as f64 / 1000.0)
            .with_duplicate(dup_m as f64 / 1000.0)
            .with_reorder(reorder_m as f64 / 1000.0, Dur::from_millis(reorder_delay_ms))
            .with_jitter(Dur::from_millis(jitter_ms));
        if with_burst {
            fault = fault.with_burst(BurstLoss::gilbert(
                burst_enter_m as f64 / 1000.0,
                0.3,
                burst_loss_m as f64 / 1000.0,
            ));
        }
        proptest::prop_assert!(fault.validate().is_ok(), "generator built an invalid profile");
        let params = LinkParams::delay_only(Dur::from_millis(10))
            .with_rate(5_000_000)
            .with_fault(fault);

        let t = |ms: u64| Time::ZERO + Dur::from_millis(ms);
        let ops: Vec<(Time, AdminOp)> = match sched_kind {
            1 => vec![
                (t(t0_ms), AdminOp::LinkDown(0)),
                (t(t0_ms + down_ms), AdminOp::LinkUp(0)),
                (t(t0_ms + down_ms + up_ms), AdminOp::LinkDown(0)),
                (t(t0_ms + 2 * down_ms + up_ms), AdminOp::LinkUp(0)),
            ],
            2 => vec![(t(t0_ms), AdminOp::LinkDown(0))],
            _ => Vec::new(),
        };

        let payload: Vec<u8> = (0..payload_len).map(|i| (i % 251) as u8).collect();
        for stack in ChaosStack::all() {
            let o = run_raw(stack, seed as u64, &payload, params.clone(), &ops, "prop");
            proptest::prop_assert!(
                o.violations.is_empty(),
                "{:?} seed {seed}: {:?}", stack, o.violations
            );
            proptest::prop_assert!(
                o.complete || o.client_error.is_some(),
                "{:?} seed {seed}: neither delivered nor aborted", stack
            );
        }
    }
}
