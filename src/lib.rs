//! Umbrella crate for the sublayering reproduction workspace.
//!
//! Re-exports the member crates so the examples and integration tests can use
//! a single dependency. See `DESIGN.md` for the system inventory.
pub use bitstuff;
pub use datalink;
pub use netlayer;
pub use netsim;
pub use slmetrics;
pub use slverify;
pub use sublayer_core;
pub use tcp_mono;
