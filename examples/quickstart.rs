//! Quickstart: two sublayered TCP endpoints exchange a message over a
//! simulated lossy link.
//!
//! ```sh
//! cargo run --example quickstart
//! ```

use netsim::{two_party, Dur, FaultProfile, LinkParams, StackNode, Time};
use sublayering::netsim;
use sublayering::sublayer_core::{SlConfig, SlTcpStack};
use sublayering::tcp_mono::wire::Endpoint;

fn main() {
    // Two hosts, 10.0.0.1 and 10.0.0.2.
    let (a, b) = (0x0A00_0001, 0x0A00_0002);
    let mut client = SlTcpStack::new(a, SlConfig::default(), slmetrics::shared());
    let mut server = SlTcpStack::new(b, SlConfig::default(), slmetrics::shared());
    server.listen(80);

    // Active open: DM binds the tuple, CM starts its SYN handshake.
    let conn = client.connect(Time::ZERO, 5000, Endpoint::new(b, 80));

    // A 5%-lossy link with 10 ms delay.
    let params = LinkParams::delay_only(Dur::from_millis(10))
        .with_fault(FaultProfile::lossy(0.05));
    let (mut net, nc, ns) = two_party(1, client, server, params);
    net.poll_all();
    net.run_until(Time::ZERO + Dur::from_secs(2));

    // Send a message; OSR segments it, RD numbers and delivers it.
    let msg = b"hello, sublayering!".repeat(200);
    net.node_mut::<StackNode<SlTcpStack>>(nc).stack.send(conn, &msg);
    net.poll_all();

    let mut got = Vec::new();
    while got.len() < msg.len() {
        let dl = net.now() + Dur::from_millis(100);
        net.run_until(dl);
        let server = &mut net.node_mut::<StackNode<SlTcpStack>>(ns).stack;
        if let Some(&sc) = server.established().first() {
            got.extend(server.recv(sc));
        }
        net.poll_all();
        assert!(net.now() < Time::ZERO + Dur::from_secs(120), "transfer stalled");
    }
    assert_eq!(got, msg);

    let c = &net.node::<StackNode<SlTcpStack>>(nc).stack;
    println!("delivered {} bytes intact over a 5%-loss link at t={}", got.len(), net.now());
    println!("client packets sent: {}, received: {}", c.stats.packets_sent, c.stats.packets_received);
    println!(
        "sublayer crossings at the client: {} segments OSR->RD ({} bytes), {} signals RD->OSR",
        c.crossings.osr_to_rd_segments, c.crossings.osr_to_rd_bytes, c.crossings.signals_up
    );
    if let Some(rd) = c.rd_stats(conn) {
        println!(
            "RD sublayer: {} segments, {} retransmits ({} fast), {} pure acks",
            rd.segments_sent, rd.retransmits, rd.fast_retransmits, rd.acks_sent
        );
    }
}
