//! A teaching trace (the paper's "pedagogic advantages" claim): two
//! sublayered stacks driven synchronously, printing every wire packet with
//! each field attributed to the sublayer that owns it.
//!
//! ```sh
//! cargo run --example handshake_trace
//! ```

use netsim::{Dur, Stack, Time};
use sublayering::netsim;
use sublayering::sublayer_core::{Packet, SlConfig, SlTcpStack};
use sublayering::tcp_mono::wire::Endpoint;

fn main() {
    let mut client = SlTcpStack::new(1, SlConfig::default(), slmetrics::shared());
    let mut server = SlTcpStack::new(2, SlConfig::default(), slmetrics::shared());
    server.listen(80);
    let conn = client.connect(Time::ZERO, 5000, Endpoint::new(2, 80));
    client.send(conn, b"hello across the sublayers");
    println!("wire trace (client <-> server), one line per packet:\n");

    let mut now = Time::ZERO;
    for round in 0..30 {
        now += Dur::from_millis(10);
        client.on_tick(now);
        server.on_tick(now);
        let mut quiet = true;
        while let Some(f) = client.poll_transmit(now) {
            println!("t={now}  C->S  {}", Packet::decode(&f).unwrap().describe());
            server.on_frame(now, &f);
            quiet = false;
        }
        while let Some(f) = server.poll_transmit(now) {
            println!("t={now}  S->C  {}", Packet::decode(&f).unwrap().describe());
            client.on_frame(now, &f);
            quiet = false;
        }
        if let Some(&sc) = server.established().first() {
            let got = server.recv(sc);
            if !got.is_empty() {
                println!("        server app read {:?}", String::from_utf8_lossy(&got));
                client.close(conn);
                server.close(sc);
            }
        }
        if quiet && round > 3 && client.conn_count() == 0 && server.conn_count() == 0 {
            break;
        }
    }
    println!("\nnote how the handshake packets carry only CM-owned bits, data packets");
    println!("only advance RD's seq/ack, and the window lives in OSR's subheader.");
}
