//! The sublayered *network layer* at work (paper §2.2 / experiment E2):
//! build a ring of routers, watch routes converge, probe paths, fail a
//! link, watch reconvergence — then swap distance vector for link state
//! and observe identical forwarding.
//!
//! ```sh
//! cargo run --example routed_network
//! ```

use sublayering::netlayer::{
    build, Addr, DistanceVector, DvConfig, LinkState, LsConfig, RouteComputation, Topology,
};
use sublayering::netsim::Dur;

fn demo(name: &str, make: &dyn Fn(Addr) -> Box<dyn RouteComputation>) {
    println!("=== route computation: {name} ===");
    let topo = Topology::ring(6);
    let mut net = build(&topo, 7, Dur::from_millis(1), make);
    net.settle(Dur::from_secs(15));

    println!("converged; probing shortest paths on a 6-ring:");
    for dst in [1usize, 2, 3] {
        println!("  0 -> {dst}: {:?} hops", net.probe(0, dst));
    }

    println!("failing link 0-1...");
    net.fail_edge(0);
    net.settle(Dur::from_secs(20));
    println!("  0 -> 1 after failure: {:?} hops (the long way round)", net.probe(0, 1));

    let pdus: u64 = (0..topo.n).map(|i| net.router(i).rc().stats().pdus_sent).sum();
    println!("  control-plane PDUs sent across the network: {pdus}\n");
}

fn main() {
    demo("distance vector (RIP-style)", &|a| {
        Box::new(DistanceVector::new(a, DvConfig::default()))
    });
    demo("link state (flooding + Dijkstra)", &|a| {
        Box::new(LinkState::new(a, LsConfig::default()))
    });
    println!("Forwarding behaviour is identical under both engines — the swap never");
    println!("touched the forwarding or neighbor-determination sublayers (test T3).");
}
