//! Explore the verified stuffing-rule library (paper §4.1 / experiment
//! E4): search a rule space, machine-check every candidate, and print the
//! cheapest valid pairings with their exact overhead.
//!
//! ```sh
//! cargo run --release --example stuffing_explorer [flag_len]
//! ```

use sublayering::bitstuff::{
    analyze, check_rule, search, Flag, FrameCodec, SearchSpace, StuffRule, Verdict,
};

fn main() {
    let flag_len: usize = std::env::args().nth(1).and_then(|a| a.parse().ok()).unwrap_or(8);
    println!("searching flags of {flag_len} bits with triggers drawn from the flag...\n");
    let space = SearchSpace {
        flag_len,
        trigger_lens: 1..=(flag_len - 1),
        triggers_from_flag_only: true,
    };
    let (library, stats) = search(&space);
    println!(
        "{} candidates -> {} machine-verified valid rules ({} divergent, {} false-flag-in-body, {} false-flag-at-end)",
        stats.candidates, stats.valid, stats.divergent, stats.false_flag_in_body, stats.false_flag_at_end
    );
    let hdlc = analyze(&StuffRule::hdlc()).unwrap();
    println!(
        "\nHDLC baseline: flag {} rule [{}], exact overhead {}\n",
        Flag::hdlc(),
        StuffRule::hdlc(),
        hdlc.exact_rate
    );
    println!("cheapest verified rules:");
    for r in library.iter().take(12) {
        println!(
            "  flag {}  [{}]  exact overhead {}",
            r.flag, r.rule, r.overhead.exact_rate
        );
    }

    // Demonstrate the certificate: re-check and round-trip the best rule.
    if let Some(best) = library.first() {
        assert!(matches!(check_rule(&best.rule, &best.flag), Verdict::Valid));
        let codec = FrameCodec::new(best.rule.clone(), best.flag.clone()).unwrap();
        let msg = sublayering::bitstuff::bits("1011001110001111");
        let decoded = codec.decode(&codec.encode(&msg)).unwrap();
        assert_eq!(decoded, msg);
        println!(
            "\nbest rule re-validated and round-tripped: Unstuff(RemoveFlags(AddFlags(Stuff(D)))) = D"
        );
    }
}
