//! Interoperation (paper §3.1 / experiment E7): a sublayered client talks
//! RFC 793 to a *monolithic* TCP server through the shim sublayer,
//! transfers a file each way, and closes gracefully.
//!
//! ```sh
//! cargo run --example interop
//! ```

use netsim::{two_party, Dur, FaultProfile, LinkParams, StackNode, Time};
use sublayering::netsim;
use sublayering::sublayer_core::shim::ShimStack;
use sublayering::sublayer_core::{SlConfig, SlTcpStack};
use sublayering::tcp_mono::stack::TcpStack;
use sublayering::tcp_mono::wire::Endpoint;
use sublayering::tcp_mono::TcpState;

fn main() {
    let (a, b) = (0x0A00_0001u32, 0x0A00_0002u32);
    // Sublayered stack wrapped in the header-translating shim.
    let mut client = ShimStack::new(SlTcpStack::new(a, SlConfig::default(), slmetrics::shared()));
    // Plain monolithic RFC 793 stack.
    let mut server = TcpStack::new(b, slmetrics::shared());
    server.listen(80);
    let conn = client.inner.connect(Time::ZERO, 5000, Endpoint::new(b, 80));

    let params = LinkParams::delay_only(Dur::from_millis(10))
        .with_fault(FaultProfile::lossy(0.05));
    let (mut net, nc, ns) = two_party(3, client, server, params);
    net.poll_all();
    net.run_until(Time::ZERO + Dur::from_secs(3));

    let sconn = net.node::<StackNode<TcpStack>>(ns).stack.established()[0];
    println!("handshake complete: sublayered client <-> monolithic server (RFC 793 on the wire)");

    let up = b"from the sublayered world".repeat(500);
    let down = b"from the monolithic world".repeat(400);
    net.node_mut::<StackNode<ShimStack>>(nc).stack.inner.send(conn, &up);
    net.node_mut::<StackNode<TcpStack>>(ns).stack.send(sconn, &down);
    net.poll_all();

    let (mut got_up, mut got_down) = (Vec::new(), Vec::new());
    while got_up.len() < up.len() || got_down.len() < down.len() {
        let dl = net.now() + Dur::from_millis(100);
        net.run_until(dl);
        got_up.extend(net.node_mut::<StackNode<TcpStack>>(ns).stack.recv(sconn));
        got_down.extend(net.node_mut::<StackNode<ShimStack>>(nc).stack.inner.recv(conn));
        net.poll_all();
        assert!(net.now() < Time::ZERO + Dur::from_secs(300), "stalled");
    }
    assert_eq!(got_up, up);
    assert_eq!(got_down, down);
    println!("transferred {} B up / {} B down across the implementation boundary", up.len(), down.len());

    // Graceful close initiated by the sublayered side.
    net.node_mut::<StackNode<ShimStack>>(nc).stack.inner.close(conn);
    net.poll_all();
    net.run_until(net.now() + Dur::from_secs(3));
    assert_eq!(net.node::<StackNode<TcpStack>>(ns).stack.state(sconn), TcpState::CloseWait);
    net.node_mut::<StackNode<TcpStack>>(ns).stack.close(sconn);
    net.poll_all();
    net.run_until(net.now() + Dur::from_secs(3));
    assert_eq!(net.node::<StackNode<TcpStack>>(ns).stack.state(sconn), TcpState::Closed);
    let shim = &net.node::<StackNode<ShimStack>>(nc).stack;
    println!(
        "FIN handshake completed; shim translated {} tx / {} rx packets",
        shim.translated_tx, shim.translated_rx
    );
}
