//! Congestion-control replacement in action (paper §3 / experiment E8):
//! the *same* file transfer under four interchangeable rate controllers,
//! on the same lossy bottleneck link. Only the constructor argument
//! changes.
//!
//! ```sh
//! cargo run --release --example congestion_duel
//! ```

use netsim::{two_party, Dur, FaultProfile, LinkParams, StackNode, Time};
use sublayering::netsim;
use sublayering::sublayer_core::{SlConfig, SlTcpStack};
use sublayering::tcp_mono::wire::Endpoint;

fn run(cc: &'static str) -> (f64, u64) {
    let (a, b) = (1u32, 2u32);
    let cfg = SlConfig { cc, ..Default::default() };
    let mut client = SlTcpStack::new(a, cfg.clone(), slmetrics::shared());
    let mut server = SlTcpStack::new(b, cfg, slmetrics::shared());
    server.listen(80);
    let conn = client.connect(Time::ZERO, 5000, Endpoint::new(b, 80));
    let params = LinkParams::delay_only(Dur::from_millis(20))
        .with_rate(10_000_000)
        .with_fault(FaultProfile::lossy(0.02));
    let (mut net, nc, ns) = two_party(7, client, server, params);
    net.poll_all();
    net.run_until(Time::ZERO + Dur::from_secs(2));

    let payload = vec![0xABu8; 300_000];
    net.node_mut::<StackNode<SlTcpStack>>(nc).stack.send(conn, &payload);
    net.poll_all();
    let start = net.now();
    let mut got = 0;
    while got < payload.len() {
        let dl = net.now() + Dur::from_millis(25);
        net.run_until(dl);
        let s = &mut net.node_mut::<StackNode<SlTcpStack>>(ns).stack;
        if let Some(&sc) = s.established().first() {
            got += s.recv(sc).len();
        }
        net.poll_all();
        assert!(net.now() < start + Dur::from_secs(600), "{cc} stalled at {got}");
    }
    let secs = net.now().since(start).secs_f64();
    let retx = net
        .node::<StackNode<SlTcpStack>>(nc)
        .stack
        .rd_stats(conn)
        .map(|r| r.retransmits + r.fast_retransmits)
        .unwrap_or(0);
    (secs, retx)
}

fn main() {
    println!("300 KB over a 10 Mbit/s, 40 ms RTT, 2%-loss bottleneck:\n");
    println!("{:<14} {:>10} {:>14} {:>15}", "controller", "time (s)", "goodput Mb/s", "retransmits");
    for cc in ["reno", "cubic", "rate-based", "fixed-window"] {
        let (secs, retx) = run(cc);
        println!(
            "{:<14} {:>10.2} {:>14.2} {:>15}",
            cc,
            secs,
            300_000.0 * 8.0 / secs / 1e6,
            retx
        );
    }
    println!("\nSwapping the controller touched no code outside OSR's constructor argument.");
}
