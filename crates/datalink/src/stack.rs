//! The composed **data-link stack** (Figure 2): error recovery over error
//! detection over framing over encoding/decoding.
//!
//! ```text
//!   app messages
//!      │ ▲
//!   [ ARQ ]            error recovery   (seq numbers, retransmission)
//!      │ ▲
//!   [ CRC ]            error detection  (check sequence appended)
//!      │ ▲
//!   [ framer ]         framing          (flags / COBS / escapes / length)
//!      │ ▲
//!   [ line code ]      encoding         (NRZ / NRZI / Manchester / 4B5B)
//!      │ ▲
//!    symbols on the simulated wire
//! ```
//!
//! Each sublayer is held as a trait object, so experiment E1's fungibility
//! claim is literal: swapping CRC-32 for CRC-64 (or HDLC framing for COBS)
//! is one constructor argument and touches no other sublayer. The stack is
//! a sans-IO [`Stack`](netsim::Stack), so it runs under `netsim` directly.

use crate::arq::{ArqEndpoint, ArqScheme, ArqStats};
use crate::coding::{symbols_to_wire, wire_to_symbols, LineCode};
use crate::errordet::ErrorDetector;
use crate::framing::{Deframer, Framer};
use bitstuff::BitVec;
use netsim::{Dur, Stack, Time};

/// Drop counters for the receive path, per sublayer.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct StackStats {
    /// Wire chunks that failed symbol unpacking.
    pub wire_errors: u64,
    /// Symbol streams the line code rejected.
    pub coding_errors: u64,
    /// Frames the error detector rejected.
    pub detector_drops: u64,
    /// Frames delivered up to the ARQ sublayer.
    pub frames_up: u64,
}

/// A full data-link endpoint assembled from the four sublayers.
pub struct DataLinkStack {
    code: Box<dyn LineCode>,
    framer: Box<dyn Framer>,
    deframer: Box<dyn Deframer>,
    detector: Box<dyn ErrorDetector>,
    arq: ArqEndpoint,
    pub stats: StackStats,
}

impl DataLinkStack {
    pub fn new(
        code: Box<dyn LineCode>,
        framer: Box<dyn Framer>,
        detector: Box<dyn ErrorDetector>,
        arq_scheme: ArqScheme,
        rto: Dur,
    ) -> DataLinkStack {
        let deframer = framer.deframer();
        DataLinkStack {
            code,
            framer,
            deframer,
            detector,
            arq: ArqEndpoint::new(arq_scheme, rto),
            stats: StackStats::default(),
        }
    }

    /// A reasonable default: NRZI + HDLC framing + CRC-32 + selective
    /// repeat.
    pub fn hdlc_default() -> DataLinkStack {
        DataLinkStack::new(
            Box::new(crate::coding::Nrzi),
            Box::new(crate::framing::HdlcFramer::new()),
            Box::new(crate::errordet::Crc::crc32()),
            ArqScheme::SelectiveRepeat { window: 8 },
            Dur::from_millis(50),
        )
    }

    /// Queue a message for reliable delivery.
    pub fn send(&mut self, msg: Vec<u8>) {
        self.arq.send(msg);
    }

    /// Drain received messages (in order, exactly once).
    pub fn recv_all(&mut self) -> Vec<Vec<u8>> {
        self.arq.recv_all()
    }

    /// True when all queued messages are delivered and acknowledged.
    pub fn idle(&self) -> bool {
        self.arq.idle()
    }

    pub fn arq_stats(&self) -> &ArqStats {
        &self.arq.stats
    }

    /// Sublayer names, for reports.
    pub fn describe(&self) -> String {
        format!(
            "{} / {} / {} / {}",
            self.arq.scheme().name(),
            self.detector.name(),
            self.framer.name(),
            self.code.name()
        )
    }
}

impl Stack for DataLinkStack {
    fn on_frame(&mut self, now: Time, wire: &[u8]) {
        let Some(symbols) = wire_to_symbols(wire) else {
            self.stats.wire_errors += 1;
            return;
        };
        let bits = match self.code.decode(&symbols) {
            Ok(b) => b,
            Err(_) => {
                self.stats.coding_errors += 1;
                return;
            }
        };
        if bits.len() % 8 != 0 {
            self.stats.coding_errors += 1;
            return;
        }
        let bytes = bits.to_bytes_exact();
        for frame in self.deframer.push(&bytes) {
            match self.detector.verify(&frame) {
                Ok(payload) => {
                    self.stats.frames_up += 1;
                    self.arq.on_frame(now, &payload);
                }
                Err(_) => self.stats.detector_drops += 1,
            }
        }
    }

    fn poll_transmit(&mut self, now: Time) -> Option<Vec<u8>> {
        let frame = self.arq.poll_transmit(now)?;
        let protected = self.detector.protect(&frame);
        let framed = self.framer.frame(&protected);
        let symbols = self.code.encode(&BitVec::from_bytes(&framed));
        Some(symbols_to_wire(&symbols))
    }

    fn poll_deadline(&self, now: Time) -> Option<Time> {
        self.arq.poll_deadline(now)
    }

    fn on_tick(&mut self, now: Time) {
        self.arq.on_tick(now);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::coding::{FourBFiveB, Manchester, Nrz, Nrzi};
    use crate::errordet::{Crc, Fletcher16, InternetChecksum};
    use crate::framing::{CobsFramer, EscapeFramer, HdlcFramer, LengthFramer};
    use netsim::{two_party, FaultProfile, LinkParams, StackNode};

    fn make(det: Box<dyn ErrorDetector>) -> DataLinkStack {
        DataLinkStack::new(
            Box::new(Nrzi),
            Box::new(HdlcFramer::new()),
            det,
            ArqScheme::SelectiveRepeat { window: 8 },
            Dur::from_millis(50),
        )
    }

    fn transfer(mut a: DataLinkStack, b: DataLinkStack, fault: FaultProfile, seed: u64) -> (Vec<Vec<u8>>, StackStats) {
        let msgs: Vec<Vec<u8>> = (0..30u8).map(|i| vec![i; (i as usize % 40) + 1]).collect();
        for m in &msgs {
            a.send(m.clone());
        }
        let params = LinkParams::delay_only(Dur::from_millis(2)).with_fault(fault);
        let (mut net, _na, nb) = two_party(seed, a, b, params);
        net.poll_all();
        net.run_to_idle(Time::ZERO + Dur::from_secs(600));
        let node = net.node_mut::<StackNode<DataLinkStack>>(nb);
        let got = node.stack.recv_all();
        assert_eq!(got, msgs);
        (got, node.stack.stats.clone())
    }

    #[test]
    fn clean_link_end_to_end() {
        transfer(make(Box::new(Crc::crc32())), make(Box::new(Crc::crc32())), FaultProfile::none(), 1);
    }

    #[test]
    fn corrupting_link_recovered_by_crc_plus_arq() {
        // This is the full Figure-2 story: corruption is caught by error
        // detection and repaired by error recovery above it.
        let (_, stats) = transfer(
            make(Box::new(Crc::crc32())),
            make(Box::new(Crc::crc32())),
            FaultProfile::none().with_corrupt(0.15),
            7,
        );
        assert!(
            stats.detector_drops + stats.coding_errors + stats.wire_errors > 0,
            "corruption should have been caught somewhere below ARQ"
        );
    }

    #[test]
    fn crc32_to_crc64_swap_touches_only_one_sublayer() {
        // Experiment E1 (fungibility): identical code path, different
        // detector instance.
        for det in [true, false] {
            let mk = || -> Box<dyn ErrorDetector> {
                if det {
                    Box::new(Crc::crc32())
                } else {
                    Box::new(Crc::crc64())
                }
            };
            transfer(make(mk()), make(mk()), FaultProfile::none().with_corrupt(0.1), 3);
        }
    }

    #[test]
    fn all_sublayer_combinations_interoperate() {
        // A representative cross-product of line codes, framers and
        // detectors, all under loss + corruption.
        let fault = FaultProfile { drop: 0.1, corrupt: 0.05, ..Default::default() };
        type Combo = (fn() -> Box<dyn LineCode>, fn() -> Box<dyn Framer>, fn() -> Box<dyn ErrorDetector>);
        let combos: Vec<Combo> = vec![
            (|| Box::new(Nrz), || Box::new(CobsFramer), || Box::new(Crc::crc16_ccitt())),
            (|| Box::new(Manchester), || Box::new(EscapeFramer), || Box::new(Crc::crc32())),
            (|| Box::new(FourBFiveB), || Box::new(LengthFramer), || Box::new(Fletcher16)),
            (|| Box::new(Nrzi), || Box::new(HdlcFramer::new()), || Box::new(InternetChecksum)),
        ];
        for (i, (code, framer, det)) in combos.iter().enumerate() {
            let mk = || {
                DataLinkStack::new(
                    code(),
                    framer(),
                    det(),
                    ArqScheme::GoBackN { window: 4 },
                    Dur::from_millis(60),
                )
            };
            transfer(mk(), mk(), fault.clone(), 100 + i as u64);
        }
    }

    #[test]
    fn describe_names_all_sublayers() {
        let s = DataLinkStack::hdlc_default();
        let d = s.describe();
        for part in ["selective repeat", "CRC-32", "HDLC", "NRZI"] {
            assert!(d.contains(part), "{d} missing {part}");
        }
    }

    #[test]
    fn hostile_link_full_stack() {
        let fault = FaultProfile {
            drop: 0.15,
            corrupt: 0.1,
            duplicate: 0.1,
            reorder: 0.1,
            reorder_delay: Dur::from_millis(10),
            ..Default::default()
        };
        for seed in 1..=3 {
            transfer(make(Box::new(Crc::crc32())), make(Box::new(Crc::crc32())), fault.clone(), seed);
        }
    }
}
