//! The **error detection** sublayer (§2.1, Figure 2).
//!
//! Sits above framing: it appends a check sequence to each frame and, at
//! the receiver, flags frames whose check fails. Per test **T2** its
//! interface is narrow — frames in, frames-or-corrupt-flag out — and per
//! **T3** the *choice* of detector (CRC-32 vs CRC-64 vs checksum…) is
//! private to the sublayer: the paper's example of fungibility is "go from
//! say CRC-32 to CRC-64 without changing other sublayers", which
//! experiment E1 demonstrates with these implementations.

use std::fmt;

/// A frame failed its check sequence.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Corrupt;

impl fmt::Display for Corrupt {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "frame failed its error-detection check")
    }
}

impl std::error::Error for Corrupt {}

/// An error-detection scheme: append a check sequence on transmit, verify
/// and strip it on receive.
pub trait ErrorDetector {
    /// Human-readable name for reports.
    fn name(&self) -> &'static str;

    /// Length of the check sequence in bytes.
    fn check_len(&self) -> usize;

    /// Compute the check sequence over `data`.
    fn compute(&self, data: &[u8]) -> Vec<u8>;

    /// `data · check(data)`.
    fn protect(&self, data: &[u8]) -> Vec<u8> {
        let mut out = data.to_vec();
        out.extend_from_slice(&self.compute(data));
        out
    }

    /// Verify a protected frame; return the payload with the check stripped.
    fn verify(&self, frame: &[u8]) -> Result<Vec<u8>, Corrupt> {
        let n = self.check_len();
        if frame.len() < n {
            return Err(Corrupt);
        }
        let (data, check) = frame.split_at(frame.len() - n);
        if self.compute(data) == check {
            Ok(data.to_vec())
        } else {
            Err(Corrupt)
        }
    }
}

/// A generic bitwise CRC engine parameterized like the classic "Rocksoft"
/// model: width, polynomial, initial value, final XOR, and input/output
/// reflection. All standard CRCs are instances.
#[derive(Clone, Debug)]
pub struct Crc {
    name: &'static str,
    width: u32,
    poly: u64,
    init: u64,
    xorout: u64,
    reflect: bool,
}

impl Crc {
    pub fn new(
        name: &'static str,
        width: u32,
        poly: u64,
        init: u64,
        xorout: u64,
        reflect: bool,
    ) -> Crc {
        assert!((1..=64).contains(&width) && width.is_multiple_of(8), "byte-width CRCs only");
        Crc { name, width, poly, init, xorout, reflect }
    }

    /// CRC-8 (poly 0x07), as used in ATM HEC relatives.
    pub fn crc8() -> Crc {
        Crc::new("CRC-8", 8, 0x07, 0x00, 0x00, false)
    }

    /// CRC-16/CCITT-FALSE (poly 0x1021, init 0xFFFF) — HDLC lineage.
    pub fn crc16_ccitt() -> Crc {
        Crc::new("CRC-16/CCITT", 16, 0x1021, 0xFFFF, 0x0000, false)
    }

    /// CRC-32 (IEEE 802.3, reflected 0x04C11DB7) — Ethernet's FCS.
    pub fn crc32() -> Crc {
        Crc::new("CRC-32", 32, 0x04C1_1DB7, 0xFFFF_FFFF, 0xFFFF_FFFF, true)
    }

    /// CRC-64/XZ (reflected ECMA-182 polynomial).
    pub fn crc64() -> Crc {
        Crc::new(
            "CRC-64",
            64,
            0x42F0_E1EB_A9EA_3693,
            0xFFFF_FFFF_FFFF_FFFF,
            0xFFFF_FFFF_FFFF_FFFF,
            true,
        )
    }

    fn reflect_bits(mut v: u64, width: u32) -> u64 {
        let mut out = 0u64;
        for _ in 0..width {
            out = (out << 1) | (v & 1);
            v >>= 1;
        }
        out
    }

    /// The raw CRC register value over `data`.
    pub fn value(&self, data: &[u8]) -> u64 {
        let mask = if self.width == 64 { u64::MAX } else { (1u64 << self.width) - 1 };
        let mut reg = self.init & mask;
        if self.reflect {
            // Reflected algorithm: shift right, reflected polynomial.
            let poly = Self::reflect_bits(self.poly, self.width) & mask;
            for &byte in data {
                reg ^= byte as u64;
                for _ in 0..8 {
                    reg = if reg & 1 != 0 { (reg >> 1) ^ poly } else { reg >> 1 };
                }
            }
        } else {
            let top = 1u64 << (self.width - 1);
            for &byte in data {
                reg ^= (byte as u64) << (self.width - 8);
                for _ in 0..8 {
                    reg = if reg & top != 0 { ((reg << 1) ^ self.poly) & mask } else { (reg << 1) & mask };
                }
            }
        }
        (reg ^ self.xorout) & mask
    }
}

impl ErrorDetector for Crc {
    fn name(&self) -> &'static str {
        self.name
    }

    fn check_len(&self) -> usize {
        (self.width / 8) as usize
    }

    fn compute(&self, data: &[u8]) -> Vec<u8> {
        let v = self.value(data);
        // Big-endian check sequence.
        (0..self.check_len()).rev().map(|i| (v >> (8 * i)) as u8).collect()
    }
}

/// The 16-bit one's-complement Internet checksum (RFC 1071) — weaker than
/// any CRC but cheap; included as a swap-in to show the fungibility axis.
#[derive(Clone, Debug, Default)]
pub struct InternetChecksum;

impl InternetChecksum {
    /// One's-complement sum of 16-bit words (pads odd lengths with zero).
    pub fn sum(data: &[u8]) -> u16 {
        let mut acc: u32 = 0;
        let mut chunks = data.chunks_exact(2);
        for c in &mut chunks {
            acc += u16::from_be_bytes([c[0], c[1]]) as u32;
        }
        if let [last] = chunks.remainder() {
            acc += u16::from_be_bytes([*last, 0]) as u32;
        }
        while acc > 0xFFFF {
            acc = (acc & 0xFFFF) + (acc >> 16);
        }
        !(acc as u16)
    }
}

impl ErrorDetector for InternetChecksum {
    fn name(&self) -> &'static str {
        "Internet checksum"
    }

    fn check_len(&self) -> usize {
        2
    }

    fn compute(&self, data: &[u8]) -> Vec<u8> {
        Self::sum(data).to_be_bytes().to_vec()
    }
}

/// Fletcher-16 checksum: better burst behaviour than the Internet checksum,
/// still cheaper than a CRC.
#[derive(Clone, Debug, Default)]
pub struct Fletcher16;

impl ErrorDetector for Fletcher16 {
    fn name(&self) -> &'static str {
        "Fletcher-16"
    }

    fn check_len(&self) -> usize {
        2
    }

    fn compute(&self, data: &[u8]) -> Vec<u8> {
        let (mut a, mut b) = (0u32, 0u32);
        for &byte in data {
            a = (a + byte as u32) % 255;
            b = (b + a) % 255;
        }
        vec![b as u8, a as u8]
    }
}

/// Longitudinal parity (XOR of all bytes): the weakest detector, detects
/// any single-bit error and nothing more — a useful lower anchor for the
/// detector-comparison experiments.
#[derive(Clone, Debug, Default)]
pub struct XorParity;

impl ErrorDetector for XorParity {
    fn name(&self) -> &'static str {
        "XOR parity"
    }

    fn check_len(&self) -> usize {
        1
    }

    fn compute(&self, data: &[u8]) -> Vec<u8> {
        vec![data.iter().fold(0, |acc, &b| acc ^ b)]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const CHECK_INPUT: &[u8] = b"123456789";

    #[test]
    fn crc_known_answers() {
        // Standard check values for the "123456789" test vector.
        assert_eq!(Crc::crc8().value(CHECK_INPUT), 0xF4);
        assert_eq!(Crc::crc16_ccitt().value(CHECK_INPUT), 0x29B1);
        assert_eq!(Crc::crc32().value(CHECK_INPUT), 0xCBF4_3926);
        assert_eq!(Crc::crc64().value(CHECK_INPUT), 0x995D_C9BB_DF19_39FA);
    }

    #[test]
    fn internet_checksum_known_answer() {
        // RFC 1071 example: 00 01 f2 03 f4 f5 f6 f7 -> sum ddf2 -> checksum 220d.
        let data = [0x00, 0x01, 0xf2, 0x03, 0xf4, 0xf5, 0xf6, 0xf7];
        assert_eq!(InternetChecksum::sum(&data), 0x220d);
    }

    #[test]
    fn fletcher_known_answer() {
        // Fletcher-16 of "abcde" is 0xC8F0 (b=0xC8, a=0xF0).
        assert_eq!(Fletcher16.compute(b"abcde"), vec![0xC8, 0xF0]);
    }

    fn all_detectors() -> Vec<Box<dyn ErrorDetector>> {
        vec![
            Box::new(Crc::crc8()),
            Box::new(Crc::crc16_ccitt()),
            Box::new(Crc::crc32()),
            Box::new(Crc::crc64()),
            Box::new(InternetChecksum),
            Box::new(Fletcher16),
            Box::new(XorParity),
        ]
    }

    #[test]
    fn protect_verify_round_trip() {
        for det in all_detectors() {
            for len in [0usize, 1, 2, 3, 17, 64] {
                let data: Vec<u8> = (0..len as u8).collect();
                let framed = det.protect(&data);
                assert_eq!(framed.len(), data.len() + det.check_len());
                assert_eq!(det.verify(&framed), Ok(data), "{}", det.name());
            }
        }
    }

    #[test]
    fn single_bit_flips_always_detected() {
        for det in all_detectors() {
            let data: Vec<u8> = (0..32u8).collect();
            let framed = det.protect(&data);
            for byte in 0..framed.len() {
                for bit in 0..8 {
                    let mut bad = framed.clone();
                    bad[byte] ^= 1 << bit;
                    assert_eq!(det.verify(&bad), Err(Corrupt), "{} missed flip", det.name());
                }
            }
        }
    }

    #[test]
    fn crc_detects_bursts_up_to_width() {
        // Any burst error no longer than the CRC width is detected.
        for (crc, width) in [(Crc::crc16_ccitt(), 16usize), (Crc::crc32(), 32)] {
            let data: Vec<u8> = (0..48u8).collect();
            let framed = crc.protect(&data);
            let total_bits = framed.len() * 8;
            for start in (0..total_bits - width).step_by(7) {
                // Flip the first and last bit of the burst plus a middle one.
                let mut bad = framed.clone();
                for off in [0, width / 2, width - 1] {
                    let b = start + off;
                    bad[b / 8] ^= 1 << (7 - (b % 8));
                }
                assert_eq!(crc.verify(&bad), Err(Corrupt), "{} missed burst", crc.name());
            }
        }
    }

    #[test]
    fn short_frames_are_corrupt() {
        assert_eq!(Crc::crc32().verify(&[0, 1]), Err(Corrupt));
        assert_eq!(Crc::crc32().verify(&[]), Err(Corrupt));
    }

    #[test]
    fn empty_payload_round_trips() {
        let det = Crc::crc32();
        assert_eq!(det.verify(&det.protect(&[])), Ok(vec![]));
    }

    #[test]
    fn xor_parity_misses_two_flips_in_same_column() {
        // Documents the weakness that motivates swapping up to a CRC.
        let det = XorParity;
        let framed = det.protect(&[0x00, 0x00]);
        let mut bad = framed;
        bad[0] ^= 0x01;
        bad[1] ^= 0x01;
        assert!(det.verify(&bad).is_ok(), "parity cannot see paired flips");
    }

    proptest::proptest! {
        #[test]
        fn prop_round_trip_any_data(data in proptest::collection::vec(proptest::num::u8::ANY, 0..256)) {
            for det in all_detectors() {
                proptest::prop_assert_eq!(det.verify(&det.protect(&data)), Ok(data.clone()));
            }
        }
    }
}
