//! The **encoding/decoding** sublayer (§2.1, Figure 2) — the lowest
//! data-link sublayer, converting bits to and from physical-layer symbols.
//!
//! "Most Data Links from Ethernet to PPP begin by decoding the physical
//! signals (encoded by the sender) into digital data" — this sublayer owns
//! that conversion. Its interface upward (to framing) is a bit stream; its
//! mechanism (NRZ vs NRZI vs Manchester vs 4B/5B) is private and swappable
//! (test **T3**), which experiment E1 exercises.

use bitstuff::BitVec;
use std::fmt;

/// A two-level line symbol (low/high). Packed as bits on the simulated
/// wire.
pub type Symbol = bool;

/// Decoding failures (invalid symbol sequences).
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum CodingError {
    /// Symbol stream length is impossible for this code.
    BadLength,
    /// A symbol group does not correspond to any codeword.
    InvalidCodeword,
}

impl fmt::Display for CodingError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CodingError::BadLength => write!(f, "symbol stream has impossible length"),
            CodingError::InvalidCodeword => write!(f, "invalid line codeword"),
        }
    }
}

impl std::error::Error for CodingError {}

/// A line code: bits ↔ symbols.
pub trait LineCode {
    fn name(&self) -> &'static str;

    /// Symbols emitted per data bit (2 for Manchester, 1 for NRZ/NRZI,
    /// 5/4 average for 4B/5B — reported ×4 as `(symbols, bits)`).
    fn rate(&self) -> (usize, usize);

    fn encode(&self, bits: &BitVec) -> Vec<Symbol>;

    fn decode(&self, symbols: &[Symbol]) -> Result<BitVec, CodingError>;
}

/// Non-return-to-zero: 1 ↦ high, 0 ↦ low.
#[derive(Clone, Debug, Default)]
pub struct Nrz;

impl LineCode for Nrz {
    fn name(&self) -> &'static str {
        "NRZ"
    }
    fn rate(&self) -> (usize, usize) {
        (1, 1)
    }
    fn encode(&self, bits: &BitVec) -> Vec<Symbol> {
        bits.iter().collect()
    }
    fn decode(&self, symbols: &[Symbol]) -> Result<BitVec, CodingError> {
        Ok(BitVec::from_bools(symbols))
    }
}

/// NRZ-inverted: a 1 toggles the line level, a 0 holds it. The line starts
/// low by convention. Removes DC dependence on absolute polarity.
#[derive(Clone, Debug, Default)]
pub struct Nrzi;

impl LineCode for Nrzi {
    fn name(&self) -> &'static str {
        "NRZI"
    }
    fn rate(&self) -> (usize, usize) {
        (1, 1)
    }
    fn encode(&self, bits: &BitVec) -> Vec<Symbol> {
        let mut level = false;
        bits.iter()
            .map(|b| {
                if b {
                    level = !level;
                }
                level
            })
            .collect()
    }
    fn decode(&self, symbols: &[Symbol]) -> Result<BitVec, CodingError> {
        let mut out = BitVec::with_capacity(symbols.len());
        let mut prev = false;
        for &s in symbols {
            out.push(s != prev);
            prev = s;
        }
        Ok(out)
    }
}

/// Manchester (IEEE convention): 1 ↦ low→high, 0 ↦ high→low. Two symbols
/// per bit; self-clocking.
#[derive(Clone, Debug, Default)]
pub struct Manchester;

impl LineCode for Manchester {
    fn name(&self) -> &'static str {
        "Manchester"
    }
    fn rate(&self) -> (usize, usize) {
        (2, 1)
    }
    fn encode(&self, bits: &BitVec) -> Vec<Symbol> {
        let mut out = Vec::with_capacity(bits.len() * 2);
        for b in bits.iter() {
            if b {
                out.push(false);
                out.push(true);
            } else {
                out.push(true);
                out.push(false);
            }
        }
        out
    }
    fn decode(&self, symbols: &[Symbol]) -> Result<BitVec, CodingError> {
        if !symbols.len().is_multiple_of(2) {
            return Err(CodingError::BadLength);
        }
        let mut out = BitVec::with_capacity(symbols.len() / 2);
        for pair in symbols.chunks_exact(2) {
            match (pair[0], pair[1]) {
                (false, true) => out.push(true),
                (true, false) => out.push(false),
                // No mid-bit transition: not a Manchester symbol.
                _ => return Err(CodingError::InvalidCodeword),
            }
        }
        Ok(out)
    }
}

/// 4B/5B block code (FDDI/100BASE-X): each data nibble maps to a 5-bit
/// codeword chosen to bound run lengths; invalid codewords are detected.
#[derive(Clone, Debug, Default)]
pub struct FourBFiveB;

/// The sixteen data codewords of 4B/5B, indexed by nibble value.
const FIVE_B: [u8; 16] = [
    0b11110, 0b01001, 0b10100, 0b10101, 0b01010, 0b01011, 0b01110, 0b01111, 0b10010, 0b10011,
    0b10110, 0b10111, 0b11010, 0b11011, 0b11100, 0b11101,
];

impl LineCode for FourBFiveB {
    fn name(&self) -> &'static str {
        "4B/5B"
    }
    fn rate(&self) -> (usize, usize) {
        (5, 4)
    }
    fn encode(&self, bits: &BitVec) -> Vec<Symbol> {
        assert!(bits.len().is_multiple_of(4), "4B/5B requires nibble-aligned input");
        let mut out = Vec::with_capacity(bits.len() / 4 * 5);
        for i in (0..bits.len()).step_by(4) {
            let nibble = bits.slice(i, i + 4).to_uint() as usize;
            let code = FIVE_B[nibble];
            for j in (0..5).rev() {
                out.push(code >> j & 1 == 1);
            }
        }
        out
    }
    fn decode(&self, symbols: &[Symbol]) -> Result<BitVec, CodingError> {
        if !symbols.len().is_multiple_of(5) {
            return Err(CodingError::BadLength);
        }
        let mut out = BitVec::with_capacity(symbols.len() / 5 * 4);
        for group in symbols.chunks_exact(5) {
            let code = group.iter().fold(0u8, |acc, &s| (acc << 1) | s as u8);
            let nibble = FIVE_B
                .iter()
                .position(|&c| c == code)
                .ok_or(CodingError::InvalidCodeword)?;
            for j in (0..4).rev() {
                out.push(nibble >> j & 1 == 1);
            }
        }
        Ok(out)
    }
}

/// Pack a symbol stream into bytes for transit on the simulated wire,
/// prefixing the symbol count so the exact length survives.
pub fn symbols_to_wire(symbols: &[Symbol]) -> Vec<u8> {
    let mut bits = BitVec::with_capacity(symbols.len());
    for &s in symbols {
        bits.push(s);
    }
    let (payload, len) = bits.to_bytes_padded();
    let mut out = (len as u32).to_be_bytes().to_vec();
    out.extend_from_slice(&payload);
    out
}

/// Inverse of [`symbols_to_wire`]. Returns `None` on malformed input.
pub fn wire_to_symbols(wire: &[u8]) -> Option<Vec<Symbol>> {
    if wire.len() < 4 {
        return None;
    }
    let len = u32::from_be_bytes([wire[0], wire[1], wire[2], wire[3]]) as usize;
    let payload = &wire[4..];
    if len > payload.len() * 8 {
        return None;
    }
    let bits = BitVec::from_bytes_padded(payload, len);
    Some(bits.iter().collect())
}

#[cfg(test)]
mod tests {
    use super::*;
    use bitstuff::bits;

    fn codes() -> Vec<Box<dyn LineCode>> {
        vec![Box::new(Nrz), Box::new(Nrzi), Box::new(Manchester), Box::new(FourBFiveB)]
    }

    #[test]
    fn round_trip_all_codes_nibble_aligned() {
        for code in codes() {
            for len in [0usize, 4, 8, 12, 32] {
                for seed in 0..16u64 {
                    let data = BitVec::from_uint(seed.wrapping_mul(0x9E37) & ((1 << len.min(63)) - 1), len);
                    let symbols = code.encode(&data);
                    assert_eq!(code.decode(&symbols), Ok(data.clone()), "{}", code.name());
                }
            }
        }
    }

    #[test]
    fn nrz_is_identity() {
        let d = bits("1011001");
        assert_eq!(Nrz.encode(&d), vec![true, false, true, true, false, false, true]);
    }

    #[test]
    fn nrzi_transitions_on_ones() {
        // 1 1 0 1 -> toggles: hi, lo, lo, hi
        assert_eq!(Nrzi.encode(&bits("1101")), vec![true, false, false, true]);
        assert_eq!(Nrzi.decode(&[true, false, false, true]), Ok(bits("1101")));
    }

    #[test]
    fn manchester_rejects_missing_transition() {
        assert_eq!(Manchester.decode(&[true, true]), Err(CodingError::InvalidCodeword));
        assert_eq!(Manchester.decode(&[true]), Err(CodingError::BadLength));
    }

    #[test]
    fn manchester_doubles_length() {
        let d = bits("10");
        let s = Manchester.encode(&d);
        assert_eq!(s, vec![false, true, true, false]);
    }

    #[test]
    fn four_b_five_b_codewords_have_bounded_zero_runs() {
        // Every codeword has at most one leading zero and two trailing
        // zeros, guaranteeing at most 3 consecutive zeros across
        // boundaries (the property that keeps NRZI self-clocking).
        for &c in FIVE_B.iter() {
            assert!(c >> 4 != 0 || (c >> 3) & 1 != 0, "{c:05b} has 2+ leading zeros");
            assert!(c & 0b11 != 0 || (c >> 2) & 1 != 0, "{c:05b} has 3 trailing zeros");
        }
        // And all codewords are distinct.
        let set: std::collections::HashSet<_> = FIVE_B.iter().collect();
        assert_eq!(set.len(), 16);
    }

    #[test]
    fn four_b_five_b_detects_invalid_codeword() {
        // 00000 is not a data codeword.
        assert_eq!(
            FourBFiveB.decode(&[false; 5]),
            Err(CodingError::InvalidCodeword)
        );
        assert_eq!(FourBFiveB.decode(&[true; 3]), Err(CodingError::BadLength));
    }

    #[test]
    #[should_panic(expected = "nibble-aligned")]
    fn four_b_five_b_rejects_ragged_input() {
        FourBFiveB.encode(&bits("101"));
    }

    #[test]
    fn wire_round_trip() {
        for n in [0usize, 1, 7, 8, 9, 100] {
            let symbols: Vec<Symbol> = (0..n).map(|i| i % 3 == 0).collect();
            let wire = symbols_to_wire(&symbols);
            assert_eq!(wire_to_symbols(&wire), Some(symbols));
        }
        assert_eq!(wire_to_symbols(&[1, 2]), None);
        // Claimed length longer than payload.
        assert_eq!(wire_to_symbols(&[0, 0, 1, 0, 0xFF]), None);
    }

    proptest::proptest! {
        #[test]
        fn prop_round_trip(nibbles in proptest::collection::vec(0u8..16, 0..64)) {
            let mut d = BitVec::new();
            for n in &nibbles {
                for j in (0..4).rev() {
                    d.push(n >> j & 1 == 1);
                }
            }
            for code in codes() {
                let symbols = code.encode(&d);
                proptest::prop_assert_eq!(code.decode(&symbols), Ok(d.clone()));
            }
        }
    }
}
