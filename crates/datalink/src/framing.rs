//! The **framing** sublayer (§2.1, Figure 2): converts between a stream of
//! bytes/bits and discrete frames.
//!
//! Four interchangeable framers demonstrate fungibility (test **T3**):
//!
//! * [`HdlcFramer`] — the bit-stuffing framer built on the verified
//!   `bitstuff` crate (itself *nested sublayering within framing*);
//! * [`CobsFramer`] — Consistent Overhead Byte Stuffing with a `0x00`
//!   delimiter;
//! * [`EscapeFramer`] — PPP-style byte escaping (`0x7E` flag, `0x7D`
//!   escape, XOR `0x20`);
//! * [`LengthFramer`] — magic-prefixed length framing with resync.
//!
//! All framers present the same narrow interface (test **T2**): whole
//! frames down to/up from the wire byte stream, via a stateful deframer so
//! frames may arrive split across arbitrary read boundaries.

use bitstuff::{BitVec, FrameCodec};

/// A framing scheme: stateless on the transmit side, stateful (resumable)
/// on the receive side.
pub trait Framer {
    fn name(&self) -> &'static str;

    /// Encapsulate one payload into wire bytes.
    fn frame(&self, payload: &[u8]) -> Vec<u8>;

    /// Create a fresh receive-side deframer.
    fn deframer(&self) -> Box<dyn Deframer>;
}

/// Receive-side state machine: feed wire bytes in any chunking; complete
/// frames come out.
pub trait Deframer {
    fn push(&mut self, bytes: &[u8]) -> Vec<Vec<u8>>;
}

/// Convenience: run a one-shot deframe over a whole stream.
pub fn deframe_all(framer: &dyn Framer, stream: &[u8]) -> Vec<Vec<u8>> {
    framer.deframer().push(stream)
}

// ---------------------------------------------------------------------
// HDLC bit-stuffing framer (wraps the verified bitstuff codec).
// ---------------------------------------------------------------------

/// Bit-stuffing framer using the HDLC flag/rule pairing. Payload bytes are
/// framed at bit granularity; the byte stream is padded with idle `1` bits
/// (HDLC mark idle), which can never complete the flag `01111110` without
/// the preceding `0` of a genuine flag.
pub struct HdlcFramer {
    codec: FrameCodec,
}

impl Default for HdlcFramer {
    fn default() -> Self {
        HdlcFramer { codec: FrameCodec::hdlc() }
    }
}

impl HdlcFramer {
    pub fn new() -> Self {
        Self::default()
    }
}

impl Framer for HdlcFramer {
    fn name(&self) -> &'static str {
        "HDLC bit stuffing"
    }

    fn frame(&self, payload: &[u8]) -> Vec<u8> {
        let bits = BitVec::from_bytes(payload);
        let mut encoded = self.codec.encode(&bits);
        // Pad to a byte boundary with mark-idle ones.
        while !encoded.len().is_multiple_of(8) {
            encoded.push(true);
        }
        encoded.to_bytes_exact()
    }

    fn deframer(&self) -> Box<dyn Deframer> {
        Box::new(HdlcDeframer { codec: FrameCodec::hdlc(), bits: BitVec::new() })
    }
}

struct HdlcDeframer {
    codec: FrameCodec,
    bits: BitVec,
}

impl Deframer for HdlcDeframer {
    fn push(&mut self, bytes: &[u8]) -> Vec<Vec<u8>> {
        self.bits.extend_bits(&BitVec::from_bytes(bytes));
        let mut out = Vec::new();
        // Repeatedly strip one complete frame from the front.
        loop {
            let flag = self.codec.flagger().flag().clone();
            let Some(open) = self.bits.find(&flag, 0) else {
                // Keep only a tail long enough to complete a flag later.
                let keep = self.bits.len().saturating_sub(flag.len() - 1);
                self.bits = self.bits.slice(keep, self.bits.len());
                return out;
            };
            let body_start = open + flag.len();
            let Some(close) = self.bits.find(&flag, body_start) else {
                // Drop bits before the opening flag; wait for more input.
                self.bits = self.bits.slice(open, self.bits.len());
                return out;
            };
            let body = self.bits.slice(body_start, close);
            // The closing flag opens the next frame (shared flags).
            self.bits = self.bits.slice(close, self.bits.len());
            if body.is_empty() {
                continue; // idle fill
            }
            if let Ok(data) = self.codec.stuffer().unstuff(&body) {
                // Discard idle padding: only byte-aligned bodies are real
                // frames from our transmit side.
                if data.len() % 8 == 0 {
                    out.push(data.to_bytes_exact());
                }
            }
        }
    }
}

// ---------------------------------------------------------------------
// COBS framer.
// ---------------------------------------------------------------------

/// Consistent Overhead Byte Stuffing: removes all `0x00` bytes from the
/// payload so `0x00` can delimit frames, with at most ⌈n/254⌉ bytes of
/// overhead.
#[derive(Clone, Debug, Default)]
pub struct CobsFramer;

/// COBS-encode (no delimiter appended).
pub fn cobs_encode(data: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(data.len() + 1 + data.len() / 254);
    let mut block_start = out.len();
    out.push(0); // placeholder for the first code byte
    let mut code: u8 = 1;
    for &b in data {
        if b == 0 {
            out[block_start] = code;
            block_start = out.len();
            out.push(0);
            code = 1;
        } else {
            out.push(b);
            code += 1;
            if code == 0xFF {
                out[block_start] = code;
                block_start = out.len();
                out.push(0);
                code = 1;
            }
        }
    }
    out[block_start] = code;
    out
}

/// COBS-decode (input without delimiter). Returns `None` on malformed
/// input (embedded zero or truncated block).
pub fn cobs_decode(data: &[u8]) -> Option<Vec<u8>> {
    let mut out = Vec::with_capacity(data.len());
    let mut i = 0;
    while i < data.len() {
        let code = data[i] as usize;
        if code == 0 {
            return None;
        }
        i += 1;
        if i + code - 1 > data.len() {
            return None;
        }
        for _ in 0..code - 1 {
            if data[i] == 0 {
                return None;
            }
            out.push(data[i]);
            i += 1;
        }
        if code != 0xFF && i < data.len() {
            out.push(0);
        }
    }
    Some(out)
}

impl Framer for CobsFramer {
    fn name(&self) -> &'static str {
        "COBS"
    }

    fn frame(&self, payload: &[u8]) -> Vec<u8> {
        let mut out = cobs_encode(payload);
        out.push(0);
        out
    }

    fn deframer(&self) -> Box<dyn Deframer> {
        Box::new(CobsDeframer { buf: Vec::new() })
    }
}

struct CobsDeframer {
    buf: Vec<u8>,
}

impl Deframer for CobsDeframer {
    fn push(&mut self, bytes: &[u8]) -> Vec<Vec<u8>> {
        let mut out = Vec::new();
        for &b in bytes {
            if b == 0 {
                if !self.buf.is_empty() {
                    if let Some(frame) = cobs_decode(&self.buf) {
                        out.push(frame);
                    }
                    self.buf.clear();
                }
            } else {
                self.buf.push(b);
            }
        }
        out
    }
}

// ---------------------------------------------------------------------
// PPP-style escape framer.
// ---------------------------------------------------------------------

const PPP_FLAG: u8 = 0x7E;
const PPP_ESC: u8 = 0x7D;
const PPP_XOR: u8 = 0x20;

/// Byte-escape framing as in PPP (RFC 1662 without ACCM).
#[derive(Clone, Debug, Default)]
pub struct EscapeFramer;

impl Framer for EscapeFramer {
    fn name(&self) -> &'static str {
        "PPP byte escape"
    }

    fn frame(&self, payload: &[u8]) -> Vec<u8> {
        let mut out = vec![PPP_FLAG];
        for &b in payload {
            if b == PPP_FLAG || b == PPP_ESC {
                out.push(PPP_ESC);
                out.push(b ^ PPP_XOR);
            } else {
                out.push(b);
            }
        }
        out.push(PPP_FLAG);
        out
    }

    fn deframer(&self) -> Box<dyn Deframer> {
        Box::new(EscapeDeframer { buf: Vec::new(), in_frame: false, escaped: false })
    }
}

struct EscapeDeframer {
    buf: Vec<u8>,
    in_frame: bool,
    escaped: bool,
}

impl Deframer for EscapeDeframer {
    fn push(&mut self, bytes: &[u8]) -> Vec<Vec<u8>> {
        let mut out = Vec::new();
        for &b in bytes {
            if b == PPP_FLAG {
                if self.in_frame && !self.buf.is_empty() && !self.escaped {
                    out.push(std::mem::take(&mut self.buf));
                }
                // A flag both closes and opens (shared flags).
                self.buf.clear();
                self.in_frame = true;
                self.escaped = false;
            } else if !self.in_frame {
                // noise before first flag
            } else if self.escaped {
                self.buf.push(b ^ PPP_XOR);
                self.escaped = false;
            } else if b == PPP_ESC {
                self.escaped = true;
            } else {
                self.buf.push(b);
            }
        }
        out
    }
}

// ---------------------------------------------------------------------
// Length-prefix framer.
// ---------------------------------------------------------------------

const MAGIC: [u8; 2] = [0xAA, 0x55];

/// `magic(2) · length(2, big endian) · payload` framing with magic-based
/// resynchronisation after corruption.
#[derive(Clone, Debug, Default)]
pub struct LengthFramer;

impl Framer for LengthFramer {
    fn name(&self) -> &'static str {
        "length prefix"
    }

    fn frame(&self, payload: &[u8]) -> Vec<u8> {
        assert!(payload.len() <= u16::MAX as usize, "payload too large");
        let mut out = MAGIC.to_vec();
        out.extend_from_slice(&(payload.len() as u16).to_be_bytes());
        out.extend_from_slice(payload);
        out
    }

    fn deframer(&self) -> Box<dyn Deframer> {
        Box::new(LengthDeframer { buf: Vec::new() })
    }
}

struct LengthDeframer {
    buf: Vec<u8>,
}

impl Deframer for LengthDeframer {
    fn push(&mut self, bytes: &[u8]) -> Vec<Vec<u8>> {
        self.buf.extend_from_slice(bytes);
        let mut out = Vec::new();
        loop {
            // Resync: discard until the magic prefix.
            let Some(start) = self.buf.windows(2).position(|w| w == MAGIC) else {
                // Keep a possible first magic byte at the very end.
                let keep = if self.buf.last() == Some(&MAGIC[0]) { 1 } else { 0 };
                self.buf.drain(..self.buf.len() - keep);
                return out;
            };
            self.buf.drain(..start);
            if self.buf.len() < 4 {
                return out;
            }
            let len = u16::from_be_bytes([self.buf[2], self.buf[3]]) as usize;
            if self.buf.len() < 4 + len {
                return out;
            }
            out.push(self.buf[4..4 + len].to_vec());
            self.buf.drain(..4 + len);
        }
    }
}

/// All framers, for comparative experiments.
pub fn all_framers() -> Vec<Box<dyn Framer>> {
    vec![
        Box::new(HdlcFramer::new()),
        Box::new(CobsFramer),
        Box::new(EscapeFramer),
        Box::new(LengthFramer),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    fn payloads() -> Vec<Vec<u8>> {
        vec![
            vec![],
            vec![0x00],
            vec![0x7E, 0x7D, 0x00, 0xFF],
            (0..=255u8).collect(),
            vec![0xAA, 0x55, 0x00, 0x01], // contains the length-framer magic
            vec![0xFF; 600],              // long run of ones stresses HDLC stuffing
            vec![0x00; 600],              // long run of zeros stresses COBS
        ]
    }

    #[test]
    fn every_framer_round_trips_every_payload() {
        for framer in all_framers() {
            for p in payloads() {
                if p.is_empty() {
                    continue; // empty frames are indistinguishable from idle
                }
                let wire = framer.frame(&p);
                let frames = deframe_all(framer.as_ref(), &wire);
                assert_eq!(frames, vec![p.clone()], "{}", framer.name());
            }
        }
    }

    #[test]
    fn back_to_back_frames_split_correctly() {
        for framer in all_framers() {
            let a = vec![1, 2, 3];
            let b = vec![4, 5];
            let mut wire = framer.frame(&a);
            wire.extend_from_slice(&framer.frame(&b));
            assert_eq!(deframe_all(framer.as_ref(), &wire), vec![a.clone(), b.clone()], "{}", framer.name());
        }
    }

    #[test]
    fn byte_at_a_time_delivery() {
        for framer in all_framers() {
            let p: Vec<u8> = (0..100u8).collect();
            let wire = framer.frame(&p);
            let mut deframer = framer.deframer();
            let mut got = Vec::new();
            for &b in &wire {
                got.extend(deframer.push(&[b]));
            }
            assert_eq!(got, vec![p.clone()], "{}", framer.name());
        }
    }

    #[test]
    fn cobs_known_vectors() {
        assert_eq!(cobs_encode(&[]), vec![0x01]);
        assert_eq!(cobs_encode(&[0x00]), vec![0x01, 0x01]);
        assert_eq!(cobs_encode(&[0x00, 0x00]), vec![0x01, 0x01, 0x01]);
        assert_eq!(cobs_encode(&[0x11, 0x22, 0x00, 0x33]), vec![0x03, 0x11, 0x22, 0x02, 0x33]);
        assert_eq!(cobs_encode(&[0x11, 0x00]), vec![0x02, 0x11, 0x01]);
        for v in payloads() {
            assert_eq!(cobs_decode(&cobs_encode(&v)), Some(v));
        }
    }

    #[test]
    fn cobs_encoded_never_contains_zero() {
        for v in payloads() {
            assert!(!cobs_encode(&v).contains(&0));
        }
    }

    #[test]
    fn cobs_decode_rejects_malformed() {
        assert_eq!(cobs_decode(&[0x00]), None); // code byte zero
        assert_eq!(cobs_decode(&[0x05, 0x01]), None); // truncated block
    }

    #[test]
    fn cobs_worst_case_overhead_bound() {
        // 254 nonzero bytes per extra code byte.
        let data = vec![0x42u8; 254 * 3];
        let enc = cobs_encode(&data);
        assert!(enc.len() <= data.len() + 1 + data.len() / 254 + 1);
    }

    #[test]
    fn length_framer_resyncs_after_garbage() {
        let framer = LengthFramer;
        let p = vec![9, 9, 9];
        let mut wire = vec![0x01, 0x02, 0xAA]; // garbage incl. a stray magic byte
        wire.extend(framer.frame(&p));
        assert_eq!(deframe_all(&framer, &wire), vec![p]);
    }

    #[test]
    fn escape_framer_hides_flag_bytes() {
        let framer = EscapeFramer;
        let wire = framer.frame(&[PPP_FLAG, PPP_ESC]);
        // Interior bytes must contain no raw flag.
        assert!(!wire[1..wire.len() - 1].contains(&PPP_FLAG));
    }

    #[test]
    fn noise_between_frames_is_tolerated() {
        // COBS and escape framers must skip inter-frame noise.
        let framer = EscapeFramer;
        let p = vec![5, 6, 7];
        let mut wire = vec![0x10, 0x20]; // pre-frame noise (no flag)
        wire.extend(framer.frame(&p));
        assert_eq!(deframe_all(&framer, &wire), vec![p]);
    }

    proptest::proptest! {
        #[test]
        fn prop_all_framers_round_trip(
            frames in proptest::collection::vec(
                proptest::collection::vec(proptest::num::u8::ANY, 1..100), 1..8)
        ) {
            for framer in all_framers() {
                let mut wire = Vec::new();
                for f in &frames {
                    wire.extend(framer.frame(f));
                }
                proptest::prop_assert_eq!(
                    &deframe_all(framer.as_ref(), &wire), &frames, "{}", framer.name());
            }
        }
    }
}
