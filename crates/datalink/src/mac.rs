//! The **media access control** alternative (§2.1): "broadcast links like
//! 802.11 dispense with error recovery and do Media Access Control to
//! guarantee that one sender at a time, eventually and fairly, gets access
//! to the shared physical channel."
//!
//! This module implements the classic shared-medium access schemes on a
//! slotted broadcast channel: pure/slotted ALOHA and 1-persistent /
//! non-persistent CSMA with binary exponential backoff. The simulations are
//! deterministic (seeded) and reproduce the textbook throughput curves
//! (slotted ALOHA peaks at 1/e ≈ 0.368 around offered load G = 1), used by
//! the `bench` experiment suite.

use netsim::DetRng;

/// Access scheme run by every station.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum MacScheme {
    /// Transmit in any slot with probability `p` whenever backlogged.
    SlottedAloha,
    /// Listen first; if the previous slot was busy, defer (1-persistent:
    /// transmit as soon as idle).
    CsmaPersistent,
    /// Listen first; if busy, wait a random backoff before sensing again.
    CsmaNonPersistent,
}

impl MacScheme {
    pub fn name(&self) -> &'static str {
        match self {
            MacScheme::SlottedAloha => "slotted ALOHA",
            MacScheme::CsmaPersistent => "CSMA 1-persistent",
            MacScheme::CsmaNonPersistent => "CSMA non-persistent",
        }
    }
}

/// Simulation configuration.
#[derive(Clone, Debug)]
pub struct MacConfig {
    pub scheme: MacScheme,
    pub stations: usize,
    /// Per-station, per-slot probability a new frame arrives (Poisson-ish
    /// Bernoulli arrivals).
    pub arrival_prob: f64,
    /// Transmission probability when backlogged (ALOHA) / after idle
    /// detection (CSMA).
    pub tx_prob: f64,
    pub slots: u64,
    pub seed: u64,
    /// Maximum backoff exponent for collision recovery.
    pub max_backoff_exp: u32,
    /// How many slots one frame occupies (carrier sensing pays off when
    /// frames are longer than one slot).
    pub frame_slots: u64,
}

impl Default for MacConfig {
    fn default() -> Self {
        MacConfig {
            scheme: MacScheme::SlottedAloha,
            stations: 20,
            arrival_prob: 0.02,
            tx_prob: 0.05,
            slots: 100_000,
            seed: 1,
            max_backoff_exp: 8,
            frame_slots: 1,
        }
    }
}

/// Results of a MAC simulation.
#[derive(Clone, Debug, Default)]
pub struct MacStats {
    pub slots: u64,
    pub successes: u64,
    pub collisions: u64,
    pub idle_slots: u64,
    pub arrivals: u64,
    pub dropped_arrivals: u64,
    /// Per-station success counts (for fairness analysis).
    pub per_station: Vec<u64>,
}

impl MacStats {
    /// Fraction of slots carrying a successful transmission.
    pub fn throughput(&self) -> f64 {
        self.successes as f64 / self.slots as f64
    }

    /// Jain's fairness index over per-station successes (1.0 = perfectly
    /// fair).
    pub fn fairness(&self) -> f64 {
        let n = self.per_station.len() as f64;
        let sum: f64 = self.per_station.iter().map(|&x| x as f64).sum();
        let sumsq: f64 = self.per_station.iter().map(|&x| (x as f64) * (x as f64)).sum();
        if sumsq == 0.0 {
            return 1.0;
        }
        sum * sum / (n * sumsq)
    }
}

struct Station {
    backlog: u64,
    backoff: u64,
    collisions_in_a_row: u32,
}

struct Ongoing {
    station: usize,
    end: u64,
    collided: bool,
}

/// Run a slotted shared-medium simulation. Frames occupy
/// `frame_slots` consecutive slots; carrier-sensing schemes defer while a
/// transmission is in progress, so their vulnerable period is one slot
/// rather than a whole frame — the classic reason CSMA outperforms ALOHA
/// once frames are longer than the sensing granularity.
pub fn simulate(cfg: &MacConfig) -> MacStats {
    let mut rng = DetRng::new(cfg.seed);
    let mut stations: Vec<Station> = (0..cfg.stations)
        .map(|_| Station { backlog: 0, backoff: 0, collisions_in_a_row: 0 })
        .collect();
    let mut stats = MacStats { per_station: vec![0; cfg.stations], ..Default::default() };
    stats.slots = cfg.slots;
    let frame_slots = cfg.frame_slots.max(1);
    let mut ongoing: Vec<Ongoing> = Vec::new();

    for slot in 0..cfg.slots {
        // Complete transmissions ending at this slot boundary.
        let mut still = Vec::new();
        for o in ongoing.drain(..) {
            if o.end <= slot {
                let st = &mut stations[o.station];
                if o.collided {
                    stats.collisions += 1;
                    st.collisions_in_a_row = (st.collisions_in_a_row + 1).min(cfg.max_backoff_exp);
                    let span = 1u64 << st.collisions_in_a_row;
                    st.backoff = rng.below(span.max(1));
                } else {
                    stats.successes += 1;
                    stats.per_station[o.station] += 1;
                    st.backlog -= 1;
                    st.collisions_in_a_row = 0;
                }
            } else {
                still.push(o);
            }
        }
        ongoing = still;
        let busy = !ongoing.is_empty();

        // Arrivals.
        for s in stations.iter_mut() {
            if rng.chance(cfg.arrival_prob) {
                stats.arrivals += 1;
                if s.backlog < 64 {
                    s.backlog += 1;
                } else {
                    stats.dropped_arrivals += 1;
                }
            }
        }

        // Transmission decisions.
        let mut starters: Vec<usize> = Vec::new();
        for (i, s) in stations.iter_mut().enumerate() {
            if s.backlog == 0 || ongoing.iter().any(|o| o.station == i) {
                continue;
            }
            if s.backoff > 0 {
                s.backoff -= 1;
                continue;
            }
            let attempt = match cfg.scheme {
                MacScheme::SlottedAloha => rng.chance(cfg.tx_prob),
                MacScheme::CsmaPersistent => !busy,
                MacScheme::CsmaNonPersistent => !busy && rng.chance(cfg.tx_prob),
            };
            if attempt {
                starters.push(i);
            }
        }
        if starters.is_empty() {
            if !busy {
                stats.idle_slots += 1;
            }
        } else {
            let clash = starters.len() > 1 || busy;
            if clash {
                for o in ongoing.iter_mut() {
                    o.collided = true;
                }
            }
            for &i in &starters {
                ongoing.push(Ongoing { station: i, end: slot + frame_slots, collided: clash });
            }
        }
    }
    stats
}

/// Theoretical slotted-ALOHA throughput `G·e^{-G}` for offered load `G`.
pub fn slotted_aloha_theory(g: f64) -> f64 {
    g * (-g).exp()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_runs() {
        let cfg = MacConfig::default();
        let a = simulate(&cfg);
        let b = simulate(&cfg);
        assert_eq!(a.successes, b.successes);
        assert_eq!(a.collisions, b.collisions);
    }

    #[test]
    fn slotted_aloha_matches_theory_near_peak() {
        // Saturated stations with n·p = G: with 50 stations each
        // transmitting w.p. 0.02 (G = 1), throughput should be close to
        // 1/e.
        let cfg = MacConfig {
            scheme: MacScheme::SlottedAloha,
            stations: 50,
            arrival_prob: 1.0, // always backlogged
            tx_prob: 0.02,
            slots: 200_000,
            seed: 5,
            max_backoff_exp: 0, // pure ALOHA retransmission behaviour
            frame_slots: 1,
        };
        let stats = simulate(&cfg);
        let theory = slotted_aloha_theory(1.0);
        assert!(
            (stats.throughput() - theory).abs() < 0.03,
            "throughput {} vs theory {theory}",
            stats.throughput()
        );
    }

    #[test]
    fn csma_beats_aloha_under_load() {
        // Long frames (10 slots): ALOHA's vulnerable period is the whole
        // frame, CSMA's is one slot.
        let base = MacConfig {
            stations: 20,
            arrival_prob: 0.01,
            tx_prob: 0.1,
            slots: 100_000,
            seed: 9,
            max_backoff_exp: 8,
            frame_slots: 10,
            scheme: MacScheme::SlottedAloha,
        };
        let aloha = simulate(&base);
        let csma = simulate(&MacConfig { scheme: MacScheme::CsmaNonPersistent, ..base.clone() });
        // Compare goodput in *slots* carrying successful data.
        let g_aloha = aloha.successes as f64 * 10.0 / aloha.slots as f64;
        let g_csma = csma.successes as f64 * 10.0 / csma.slots as f64;
        assert!(
            g_csma > g_aloha,
            "CSMA {g_csma} should beat ALOHA {g_aloha}"
        );
        assert!(g_csma > 0.35, "CSMA should keep the channel busy, got {g_csma}");
    }

    #[test]
    fn backoff_keeps_persistent_csma_alive() {
        // 1-persistent CSMA with many stations relies on backoff to break
        // synchronized retries; throughput must stay well above zero.
        let cfg = MacConfig {
            scheme: MacScheme::CsmaPersistent,
            stations: 10,
            arrival_prob: 0.03,
            tx_prob: 1.0,
            slots: 100_000,
            seed: 3,
            max_backoff_exp: 10,
            frame_slots: 5,
        };
        let stats = simulate(&cfg);
        let goodput = stats.successes as f64 * 5.0 / stats.slots as f64;
        assert!(goodput > 0.4, "goodput {goodput}");
    }

    #[test]
    fn fairness_is_high_for_symmetric_stations() {
        let cfg = MacConfig {
            scheme: MacScheme::SlottedAloha,
            stations: 10,
            arrival_prob: 0.01,
            tx_prob: 0.05,
            slots: 200_000,
            seed: 7,
            max_backoff_exp: 6,
            frame_slots: 1,
        };
        let stats = simulate(&cfg);
        assert!(stats.fairness() > 0.95, "fairness {}", stats.fairness());
    }

    #[test]
    fn accounting_adds_up() {
        let stats = simulate(&MacConfig::default());
        let per_station_total: u64 = stats.per_station.iter().sum();
        assert_eq!(per_station_total, stats.successes);
        // Arrivals either still queue, got dropped, or were delivered.
        assert!(stats.successes + stats.dropped_arrivals <= stats.arrivals);
    }

    #[test]
    fn theory_curve_peaks_at_one() {
        let peak = slotted_aloha_theory(1.0);
        assert!(slotted_aloha_theory(0.5) < peak);
        assert!(slotted_aloha_theory(2.0) < peak);
        assert!((peak - 1.0 / std::f64::consts::E).abs() < 1e-12);
    }
}
