//! # datalink — the sublayered data link layer (paper §2.1, Figure 2)
//!
//! The paper divides the data link layer into four sublayers, each with a
//! narrow interface (test **T2**), its own header bits and mechanisms
//! (test **T3**), and a distinct service improving the sublayer below
//! (test **T1**):
//!
//! | sublayer          | module       | implementations |
//! |-------------------|--------------|-----------------|
//! | error recovery    | [`arq`]      | stop-and-wait, go-back-N, selective repeat |
//! | error detection   | [`errordet`] | CRC-8/16/32/64, Internet checksum, Fletcher-16, parity |
//! | framing           | [`framing`]  | HDLC bit stuffing (via `bitstuff`), COBS, PPP escapes, length prefix |
//! | encoding/decoding | [`coding`]   | NRZ, NRZI, Manchester, 4B/5B |
//!
//! [`stack::DataLinkStack`] composes one choice per sublayer into a full
//! endpoint; every sublayer is independently replaceable (experiment E1).
//! [`mac`] provides the broadcast-link alternative the paper mentions
//! (ALOHA/CSMA instead of error recovery).

pub mod arq;
pub mod coding;
pub mod errordet;
pub mod framing;
pub mod mac;
pub mod stack;

pub use arq::{ArqEndpoint, ArqScheme, ArqStats};
pub use coding::{CodingError, FourBFiveB, LineCode, Manchester, Nrz, Nrzi, Symbol};
pub use errordet::{Corrupt, Crc, ErrorDetector, Fletcher16, InternetChecksum, XorParity};
pub use framing::{CobsFramer, Deframer, EscapeFramer, Framer, HdlcFramer, LengthFramer};
pub use mac::{simulate as mac_simulate, MacConfig, MacScheme, MacStats};
pub use stack::{DataLinkStack, StackStats};
