//! The **error recovery** sublayer (§2.1, Figure 2): reliable delivery on
//! a single link, as in HDLC and Fibre Channel.
//!
//! Three interchangeable ARQ schemes — stop-and-wait, go-back-N and
//! selective repeat — share one wire header (kind, sequence number) and one
//! service interface: enqueue messages, receive them exactly once and in
//! order. Per Figure 2's ordering this sublayer **depends on error
//! detection below it**: it assumes corrupted frames are dropped before
//! reaching it (the composed [`crate::stack::DataLinkStack`] wires a
//! detector underneath; the tests here inject loss, duplication and
//! reordering but not corruption, exactly the contract the sublayer
//! boundary states).
//!
//! Endpoints are sans-IO [`Stack`]s, so they run directly under `netsim`.

use netsim::{Dur, Stack, Time};
use std::collections::{BTreeMap, VecDeque};

/// Which retransmission scheme the endpoint runs.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ArqScheme {
    /// One frame in flight at a time.
    StopAndWait,
    /// Sliding window; receiver discards out-of-order frames; timeout
    /// resends the whole window.
    GoBackN { window: u32 },
    /// Sliding window; receiver buffers out-of-order frames; each frame is
    /// acknowledged and retransmitted individually.
    SelectiveRepeat { window: u32 },
}

impl ArqScheme {
    pub fn window(&self) -> u32 {
        match *self {
            ArqScheme::StopAndWait => 1,
            ArqScheme::GoBackN { window } | ArqScheme::SelectiveRepeat { window } => window,
        }
    }

    pub fn name(&self) -> &'static str {
        match self {
            ArqScheme::StopAndWait => "stop-and-wait",
            ArqScheme::GoBackN { .. } => "go-back-N",
            ArqScheme::SelectiveRepeat { .. } => "selective repeat",
        }
    }
}

/// Counters exposed for the experiments.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct ArqStats {
    pub data_frames_sent: u64,
    pub retransmissions: u64,
    pub acks_sent: u64,
    pub delivered: u64,
    pub duplicates_dropped: u64,
    pub out_of_order_dropped: u64,
}

const KIND_DATA: u8 = 1;
const KIND_ACK: u8 = 2;

/// This sublayer's own header bits (test T3): kind and sequence number.
fn encode_frame(kind: u8, seq: u32, payload: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(5 + payload.len());
    out.push(kind);
    out.extend_from_slice(&seq.to_be_bytes());
    out.extend_from_slice(payload);
    out
}

fn decode_frame(frame: &[u8]) -> Option<(u8, u32, &[u8])> {
    if frame.len() < 5 {
        return None;
    }
    let kind = frame[0];
    if kind != KIND_DATA && kind != KIND_ACK {
        return None;
    }
    let seq = u32::from_be_bytes([frame[1], frame[2], frame[3], frame[4]]);
    Some((kind, seq, &frame[5..]))
}

struct InFlight {
    payload: Vec<u8>,
    /// Retransmission deadline for this frame (selective repeat) or unused
    /// (go-back-N keeps a single window timer).
    deadline: Time,
    acked: bool,
}

/// A bidirectional ARQ endpoint.
pub struct ArqEndpoint {
    scheme: ArqScheme,
    rto: Dur,

    // Sender state.
    next_seq: u32,
    base: u32,
    tx_backlog: VecDeque<Vec<u8>>,
    in_flight: BTreeMap<u32, InFlight>,
    /// Go-back-N / stop-and-wait window timer.
    window_deadline: Option<Time>,

    // Receiver state.
    rcv_next: u32,
    ooo: BTreeMap<u32, Vec<u8>>,
    delivered: VecDeque<Vec<u8>>,

    outbox: VecDeque<Vec<u8>>,
    pub stats: ArqStats,
}

impl ArqEndpoint {
    pub fn new(scheme: ArqScheme, rto: Dur) -> ArqEndpoint {
        assert!(scheme.window() >= 1);
        ArqEndpoint {
            scheme,
            rto,
            next_seq: 0,
            base: 0,
            tx_backlog: VecDeque::new(),
            in_flight: BTreeMap::new(),
            window_deadline: None,
            rcv_next: 0,
            ooo: BTreeMap::new(),
            delivered: VecDeque::new(),
            outbox: VecDeque::new(),
            stats: ArqStats::default(),
        }
    }

    pub fn scheme(&self) -> ArqScheme {
        self.scheme
    }

    /// Queue a message for reliable delivery to the peer.
    pub fn send(&mut self, msg: Vec<u8>) {
        self.tx_backlog.push_back(msg);
    }

    /// Take the next in-order message received from the peer.
    pub fn recv(&mut self) -> Option<Vec<u8>> {
        self.delivered.pop_front()
    }

    /// All received messages so far, drained.
    pub fn recv_all(&mut self) -> Vec<Vec<u8>> {
        self.delivered.drain(..).collect()
    }

    /// True when every queued message has been sent and acknowledged.
    pub fn idle(&self) -> bool {
        self.tx_backlog.is_empty() && self.in_flight.is_empty()
    }

    fn fill_window(&mut self, now: Time) {
        let window = self.scheme.window();
        while self.next_seq.wrapping_sub(self.base) < window {
            let Some(payload) = self.tx_backlog.pop_front() else { break };
            let seq = self.next_seq;
            self.next_seq = self.next_seq.wrapping_add(1);
            self.outbox.push_back(encode_frame(KIND_DATA, seq, &payload));
            self.stats.data_frames_sent += 1;
            self.in_flight
                .insert(seq, InFlight { payload, deadline: now + self.rto, acked: false });
            if self.window_deadline.is_none() {
                self.window_deadline = Some(now + self.rto);
            }
        }
    }

    fn on_ack(&mut self, seq: u32, now: Time) {
        match self.scheme {
            ArqScheme::StopAndWait | ArqScheme::GoBackN { .. } => {
                // Cumulative: `seq` is the receiver's next expected frame.
                let advanced = seq.wrapping_sub(self.base);
                if advanced == 0 || advanced > self.scheme.window() {
                    return; // stale or absurd
                }
                let keys: Vec<u32> = self
                    .in_flight
                    .keys()
                    .copied()
                    .filter(|&k| k.wrapping_sub(self.base) < advanced)
                    .collect();
                for k in keys {
                    self.in_flight.remove(&k);
                }
                self.base = seq;
                self.window_deadline =
                    if self.in_flight.is_empty() { None } else { Some(now + self.rto) };
            }
            ArqScheme::SelectiveRepeat { .. } => {
                // Individual: `seq` acknowledges exactly that frame.
                if let Some(f) = self.in_flight.get_mut(&seq) {
                    f.acked = true;
                }
                // Slide base past the acknowledged prefix.
                while let Some(f) = self.in_flight.get(&self.base) {
                    if !f.acked {
                        break;
                    }
                    self.in_flight.remove(&self.base);
                    self.base = self.base.wrapping_add(1);
                }
            }
        }
    }

    fn on_data(&mut self, seq: u32, payload: &[u8]) {
        match self.scheme {
            ArqScheme::StopAndWait | ArqScheme::GoBackN { .. } => {
                if seq == self.rcv_next {
                    self.delivered.push_back(payload.to_vec());
                    self.stats.delivered += 1;
                    self.rcv_next = self.rcv_next.wrapping_add(1);
                } else if seq.wrapping_sub(self.rcv_next) < u32::MAX / 2 {
                    // Ahead of us: go-back-N receivers drop out-of-order.
                    self.stats.out_of_order_dropped += 1;
                } else {
                    self.stats.duplicates_dropped += 1;
                }
                // Cumulative ack (also re-acks duplicates so the sender can
                // make progress after a lost ack).
                self.outbox.push_back(encode_frame(KIND_ACK, self.rcv_next, &[]));
                self.stats.acks_sent += 1;
            }
            ArqScheme::SelectiveRepeat { window } => {
                let dist = seq.wrapping_sub(self.rcv_next);
                if dist < window {
                    // In window: buffer (idempotent).
                    if self.ooo.insert(seq, payload.to_vec()).is_some() {
                        self.stats.duplicates_dropped += 1;
                    }
                    while let Some(p) = self.ooo.remove(&self.rcv_next) {
                        self.delivered.push_back(p);
                        self.stats.delivered += 1;
                        self.rcv_next = self.rcv_next.wrapping_add(1);
                    }
                } else {
                    // Behind the window: duplicate of something delivered.
                    self.stats.duplicates_dropped += 1;
                }
                self.outbox.push_back(encode_frame(KIND_ACK, seq, &[]));
                self.stats.acks_sent += 1;
            }
        }
    }
}

impl Stack for ArqEndpoint {
    fn on_frame(&mut self, now: Time, frame: &[u8]) {
        let Some((kind, seq, payload)) = decode_frame(frame) else { return };
        match kind {
            KIND_DATA => self.on_data(seq, payload),
            KIND_ACK => self.on_ack(seq, now),
            _ => unreachable!("decode_frame filters kinds"),
        }
        self.fill_window(now);
    }

    fn poll_transmit(&mut self, now: Time) -> Option<Vec<u8>> {
        self.fill_window(now);
        self.outbox.pop_front()
    }

    fn poll_deadline(&self, _now: Time) -> Option<Time> {
        match self.scheme {
            ArqScheme::SelectiveRepeat { .. } => {
                self.in_flight.values().filter(|f| !f.acked).map(|f| f.deadline).min()
            }
            _ => self.window_deadline,
        }
    }

    fn on_tick(&mut self, now: Time) {
        match self.scheme {
            ArqScheme::StopAndWait | ArqScheme::GoBackN { .. } => {
                if self.window_deadline.is_some_and(|d| now >= d) {
                    // Retransmit the entire window.
                    for (&seq, f) in self.in_flight.iter_mut() {
                        self.outbox.push_back(encode_frame(KIND_DATA, seq, &f.payload));
                        self.stats.retransmissions += 1;
                        f.deadline = now + self.rto;
                    }
                    self.window_deadline =
                        if self.in_flight.is_empty() { None } else { Some(now + self.rto) };
                }
            }
            ArqScheme::SelectiveRepeat { .. } => {
                let rto = self.rto;
                for (&seq, f) in self.in_flight.iter_mut() {
                    if !f.acked && now >= f.deadline {
                        self.outbox.push_back(encode_frame(KIND_DATA, seq, &f.payload));
                        self.stats.retransmissions += 1;
                        f.deadline = now + rto;
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use netsim::{two_party, FaultProfile, LinkParams, StackNode};

    fn run_transfer(scheme: ArqScheme, n_msgs: usize, fault: FaultProfile, seed: u64) -> ArqStats {
        let mut a = ArqEndpoint::new(scheme, Dur::from_millis(50));
        let b = ArqEndpoint::new(scheme, Dur::from_millis(50));
        let msgs: Vec<Vec<u8>> = (0..n_msgs).map(|i| format!("msg-{i}").into_bytes()).collect();
        for m in &msgs {
            a.send(m.clone());
        }
        let params = LinkParams::delay_only(Dur::from_millis(5)).with_fault(fault);
        let (mut net, _na, nb) = two_party(seed, a, b, params);
        net.poll_all();
        net.run_to_idle(Time::ZERO + Dur::from_secs(600));
        let receiver = &mut net.node_mut::<StackNode<ArqEndpoint>>(nb).stack;
        let got = receiver.recv_all();
        assert_eq!(got, msgs, "{} seed {seed}", scheme.name());
        receiver.stats.clone()
    }

    fn schemes() -> [ArqScheme; 3] {
        [
            ArqScheme::StopAndWait,
            ArqScheme::GoBackN { window: 8 },
            ArqScheme::SelectiveRepeat { window: 8 },
        ]
    }

    #[test]
    fn perfect_link_delivers_in_order() {
        for scheme in schemes() {
            let stats = run_transfer(scheme, 50, FaultProfile::none(), 1);
            assert_eq!(stats.delivered, 50);
            assert_eq!(stats.duplicates_dropped, 0);
        }
    }

    #[test]
    fn lossy_link_still_delivers_exactly_once() {
        for scheme in schemes() {
            for seed in 1..=5 {
                let stats = run_transfer(scheme, 40, FaultProfile::lossy(0.3), seed);
                assert_eq!(stats.delivered, 40, "{}", scheme.name());
            }
        }
    }

    #[test]
    fn duplicating_link_drops_duplicates() {
        for scheme in schemes() {
            let stats = run_transfer(scheme, 30, FaultProfile::none().with_duplicate(0.5), 7);
            assert_eq!(stats.delivered, 30);
            assert!(stats.duplicates_dropped > 0, "{}", scheme.name());
        }
    }

    #[test]
    fn reordering_link_preserves_order() {
        for scheme in schemes() {
            let fault = FaultProfile::none().with_reorder(0.4, Dur::from_millis(20));
            let stats = run_transfer(scheme, 30, fault, 11);
            assert_eq!(stats.delivered, 30, "{}", scheme.name());
        }
    }

    #[test]
    fn hostile_link_no_corruption() {
        // Everything except corruption (which the error-detection sublayer
        // below us removes; see module docs).
        let fault = FaultProfile {
            drop: 0.2,
            corrupt: 0.0,
            duplicate: 0.2,
            reorder: 0.2,
            reorder_delay: Dur::from_millis(15),
            ..Default::default()
        };
        for scheme in schemes() {
            for seed in 20..23 {
                run_transfer(scheme, 25, fault.clone(), seed);
            }
        }
    }

    #[test]
    fn go_back_n_retransmits_window_selective_repeat_does_not() {
        // Under loss, go-back-N resends frames selective repeat would not.
        let fault = FaultProfile::lossy(0.25);
        let gbn = run_transfer(ArqScheme::GoBackN { window: 8 }, 60, fault.clone(), 42);
        let sr = run_transfer(ArqScheme::SelectiveRepeat { window: 8 }, 60, fault, 42);
        assert!(
            gbn.out_of_order_dropped > 0,
            "GBN receiver should discard out-of-order frames"
        );
        assert_eq!(sr.out_of_order_dropped, 0, "SR buffers instead of dropping");
    }

    #[test]
    fn bidirectional_traffic() {
        let scheme = ArqScheme::SelectiveRepeat { window: 4 };
        let mut a = ArqEndpoint::new(scheme, Dur::from_millis(40));
        let mut b = ArqEndpoint::new(scheme, Dur::from_millis(40));
        for i in 0..20 {
            a.send(vec![1, i]);
            b.send(vec![2, i]);
        }
        let params = LinkParams::delay_only(Dur::from_millis(3))
            .with_fault(FaultProfile::lossy(0.2));
        let (mut net, na, nb) = two_party(99, a, b, params);
        net.poll_all();
        net.run_to_idle(Time::ZERO + Dur::from_secs(600));
        let got_b = net.node_mut::<StackNode<ArqEndpoint>>(nb).stack.recv_all();
        let got_a = net.node_mut::<StackNode<ArqEndpoint>>(na).stack.recv_all();
        assert_eq!(got_b, (0..20).map(|i| vec![1, i]).collect::<Vec<_>>());
        assert_eq!(got_a, (0..20).map(|i| vec![2, i]).collect::<Vec<_>>());
    }

    #[test]
    fn sender_goes_idle_after_all_acked() {
        let mut a = ArqEndpoint::new(ArqScheme::StopAndWait, Dur::from_millis(40));
        a.send(b"x".to_vec());
        assert!(!a.idle());
        let b = ArqEndpoint::new(ArqScheme::StopAndWait, Dur::from_millis(40));
        let (mut net, na, _) = two_party(3, a, b, LinkParams::delay_only(Dur::from_millis(1)));
        net.poll_all();
        net.run_to_idle(Time::ZERO + Dur::from_secs(10));
        assert!(net.node::<StackNode<ArqEndpoint>>(na).stack.idle());
    }

    #[test]
    fn malformed_frames_ignored() {
        let mut a = ArqEndpoint::new(ArqScheme::StopAndWait, Dur::from_millis(40));
        a.on_frame(Time::ZERO, &[]);
        a.on_frame(Time::ZERO, &[9, 9, 9, 9, 9, 9]);
        a.on_frame(Time::ZERO, &[KIND_DATA, 0]); // too short
        assert_eq!(a.stats, ArqStats::default());
    }

    #[test]
    fn window_limits_outstanding_frames() {
        let mut a = ArqEndpoint::new(ArqScheme::GoBackN { window: 3 }, Dur::from_millis(40));
        for i in 0..10u8 {
            a.send(vec![i]);
        }
        let mut sent = 0;
        while a.poll_transmit(Time::ZERO).is_some() {
            sent += 1;
        }
        assert_eq!(sent, 3, "only the window may be outstanding");
    }
}
