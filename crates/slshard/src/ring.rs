//! Bounded SPSC rings connecting the shard coordinator to its workers.
//!
//! One sender, one receiver, a hard capacity: `send` blocks when the ring
//! is full (backpressure into the coordinator — a slow shard slows its
//! feed, it does not balloon memory), `recv` blocks when empty. Built on
//! `Mutex` + `Condvar` rather than lock-free atomics: the rings carry
//! whole ingest batches, not per-segment traffic, so the lock is cold and
//! the simplicity buys an obviously-correct close protocol.
//!
//! Determinism note: a ring delivers items in exactly send order (it is a
//! queue under one lock). The coordinator talks to each worker over a
//! dedicated pair of rings and blocks for replies shard-by-shard, so the
//! *observable* cross-shard order is fixed by the coordinator's own
//! sequence of calls, never by OS scheduling.

use std::collections::VecDeque;
use std::sync::{Arc, Condvar, Mutex};

struct Inner<T> {
    q: Mutex<State<T>>,
    not_empty: Condvar,
    not_full: Condvar,
}

struct State<T> {
    items: VecDeque<T>,
    cap: usize,
    closed: bool,
}

/// Sending half; dropping it closes the ring.
pub struct Sender<T> {
    inner: Arc<Inner<T>>,
}

/// Receiving half; dropping it closes the ring (sends become no-ops).
pub struct Receiver<T> {
    inner: Arc<Inner<T>>,
}

/// A bounded SPSC ring of capacity `cap` (≥ 1).
pub fn ring<T>(cap: usize) -> (Sender<T>, Receiver<T>) {
    let inner = Arc::new(Inner {
        q: Mutex::new(State { items: VecDeque::new(), cap: cap.max(1), closed: false }),
        not_empty: Condvar::new(),
        not_full: Condvar::new(),
    });
    (Sender { inner: inner.clone() }, Receiver { inner })
}

impl<T> Sender<T> {
    /// Block until there is room, then enqueue. Returns `false` if the
    /// receiver is gone (the item is dropped — the worker has already
    /// shut down, so there is nobody to process it).
    pub fn send(&self, item: T) -> bool {
        let mut st = self.inner.q.lock().expect("ring lock poisoned");
        while st.items.len() >= st.cap && !st.closed {
            st = self.inner.not_full.wait(st).expect("ring lock poisoned");
        }
        if st.closed {
            return false;
        }
        st.items.push_back(item);
        self.inner.not_empty.notify_one();
        true
    }
}

impl<T> Receiver<T> {
    /// Block until an item arrives; `None` once the ring is closed *and*
    /// drained.
    pub fn recv(&self) -> Option<T> {
        let mut st = self.inner.q.lock().expect("ring lock poisoned");
        loop {
            if let Some(item) = st.items.pop_front() {
                self.inner.not_full.notify_one();
                return Some(item);
            }
            if st.closed {
                return None;
            }
            st = self.inner.not_empty.wait(st).expect("ring lock poisoned");
        }
    }
}

impl<T> Drop for Sender<T> {
    fn drop(&mut self) {
        let mut st = self.inner.q.lock().expect("ring lock poisoned");
        st.closed = true;
        self.inner.not_empty.notify_all();
        self.inner.not_full.notify_all();
    }
}

impl<T> Drop for Receiver<T> {
    fn drop(&mut self) {
        let mut st = self.inner.q.lock().expect("ring lock poisoned");
        st.closed = true;
        self.inner.not_empty.notify_all();
        self.inner.not_full.notify_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::thread;

    #[test]
    fn fifo_across_threads() {
        let (tx, rx) = ring::<u32>(4);
        let h = thread::spawn(move || {
            let mut got = Vec::new();
            while let Some(v) = rx.recv() {
                got.push(v);
            }
            got
        });
        for i in 0..100 {
            assert!(tx.send(i));
        }
        drop(tx);
        assert_eq!(h.join().unwrap(), (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn bounded_capacity_blocks_then_drains() {
        let (tx, rx) = ring::<u32>(2);
        assert!(tx.send(1));
        assert!(tx.send(2));
        // A third send must block until the receiver drains one; do it
        // from another thread and verify it completes.
        let h = thread::spawn(move || tx.send(3));
        assert_eq!(rx.recv(), Some(1));
        assert!(h.join().unwrap());
        assert_eq!(rx.recv(), Some(2));
        assert_eq!(rx.recv(), Some(3));
    }

    #[test]
    fn closed_ring_reports_disconnect() {
        let (tx, rx) = ring::<u32>(2);
        tx.send(7);
        drop(tx);
        assert_eq!(rx.recv(), Some(7), "drained before close takes effect");
        assert_eq!(rx.recv(), None);

        let (tx, rx) = ring::<u32>(2);
        drop(rx);
        assert!(!tx.send(1), "send to a dead receiver reports failure");
    }
}
