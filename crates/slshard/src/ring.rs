//! Bounded SPSC rings connecting the shard coordinator to its workers.
//!
//! One sender, one receiver, a hard capacity: `send` blocks when the ring
//! is full (backpressure into the coordinator — a slow shard slows its
//! feed, it does not balloon memory), `recv` blocks when empty. Built on
//! `Mutex` + `Condvar` rather than lock-free atomics: the rings carry
//! whole ingest batches, not per-segment traffic, so the lock is cold and
//! the simplicity buys an obviously-correct close protocol.
//!
//! Fault-domain note: the ring is part of the shard *fault boundary*. A
//! worker that panics unwinds past its ring halves; their `Drop` closes
//! the ring, and every subsequent coordinator call observes a clean
//! `Disconnected` — never a poisoned-lock panic. All lock acquisitions
//! here recover from poison (the protected state is a plain queue whose
//! invariants hold at every await point, so the poison flag carries no
//! information we need), and `send_timeout` bounds how long the
//! coordinator can be held up by a wedged worker.
//!
//! Determinism note: a ring delivers items in exactly send order (it is a
//! queue under one lock). The coordinator talks to each worker over a
//! dedicated pair of rings and blocks for replies shard-by-shard, so the
//! *observable* cross-shard order is fixed by the coordinator's own
//! sequence of calls, never by OS scheduling.

use std::collections::VecDeque;
use std::sync::{Arc, Condvar, Mutex, MutexGuard, PoisonError};
use std::time::Duration;

struct Inner<T> {
    q: Mutex<State<T>>,
    not_empty: Condvar,
    not_full: Condvar,
}

impl<T> Inner<T> {
    /// Lock, shrugging off poison: a worker that panicked while holding
    /// the lock left a fully consistent queue (push/pop are single
    /// statements), and the disconnect is reported through `closed`, not
    /// through the poison flag.
    fn lock(&self) -> MutexGuard<'_, State<T>> {
        self.q.lock().unwrap_or_else(PoisonError::into_inner)
    }
}

struct State<T> {
    items: VecDeque<T>,
    cap: usize,
    closed: bool,
}

/// Outcome of a non-blocking or bounded-wait send.
#[derive(Debug, PartialEq, Eq)]
pub enum SendStatus<T> {
    /// Item enqueued.
    Sent,
    /// Ring still full after the bound; the item is handed back.
    Full(T),
    /// Receiver gone; the item is handed back.
    Disconnected(T),
}

/// Sending half; dropping it closes the ring.
pub struct Sender<T> {
    inner: Arc<Inner<T>>,
}

/// Receiving half; dropping it closes the ring (sends become no-ops).
pub struct Receiver<T> {
    inner: Arc<Inner<T>>,
}

/// A bounded SPSC ring of capacity `cap` (≥ 1).
pub fn ring<T>(cap: usize) -> (Sender<T>, Receiver<T>) {
    let inner = Arc::new(Inner {
        q: Mutex::new(State { items: VecDeque::new(), cap: cap.max(1), closed: false }),
        not_empty: Condvar::new(),
        not_full: Condvar::new(),
    });
    (Sender { inner: inner.clone() }, Receiver { inner })
}

impl<T> Sender<T> {
    /// Block until there is room, then enqueue. Returns `false` if the
    /// receiver is gone (the item is dropped — the worker has already
    /// shut down, so there is nobody to process it).
    pub fn send(&self, item: T) -> bool {
        let mut st = self.inner.lock();
        while st.items.len() >= st.cap && !st.closed {
            st = self
                .inner
                .not_full
                .wait(st)
                .unwrap_or_else(PoisonError::into_inner);
        }
        if st.closed {
            return false;
        }
        st.items.push_back(item);
        self.inner.not_empty.notify_one();
        true
    }

    /// Enqueue without blocking.
    pub fn try_send(&self, item: T) -> SendStatus<T> {
        let mut st = self.inner.lock();
        if st.closed {
            return SendStatus::Disconnected(item);
        }
        if st.items.len() >= st.cap {
            return SendStatus::Full(item);
        }
        st.items.push_back(item);
        self.inner.not_empty.notify_one();
        SendStatus::Sent
    }

    /// Enqueue, waiting at most `bound` for room. The bounded wait is the
    /// coordinator's defense against a wedged worker that stops draining
    /// its command ring: instead of blocking forever it gets the item
    /// back and can count the stall.
    pub fn send_timeout(&self, item: T, bound: Duration) -> SendStatus<T> {
        let mut st = self.inner.lock();
        while st.items.len() >= st.cap && !st.closed {
            let (guard, timeout) = self
                .inner
                .not_full
                .wait_timeout(st, bound)
                .unwrap_or_else(PoisonError::into_inner);
            st = guard;
            if timeout.timed_out() && st.items.len() >= st.cap && !st.closed {
                return SendStatus::Full(item);
            }
        }
        if st.closed {
            return SendStatus::Disconnected(item);
        }
        st.items.push_back(item);
        self.inner.not_empty.notify_one();
        SendStatus::Sent
    }
}

impl<T> Receiver<T> {
    /// Block until an item arrives; `None` once the ring is closed *and*
    /// drained.
    pub fn recv(&self) -> Option<T> {
        let mut st = self.inner.lock();
        loop {
            if let Some(item) = st.items.pop_front() {
                self.inner.not_full.notify_one();
                return Some(item);
            }
            if st.closed {
                return None;
            }
            st = self
                .inner
                .not_empty
                .wait(st)
                .unwrap_or_else(PoisonError::into_inner);
        }
    }
}

impl<T> Drop for Sender<T> {
    fn drop(&mut self) {
        let mut st = self.inner.lock();
        st.closed = true;
        self.inner.not_empty.notify_all();
        self.inner.not_full.notify_all();
    }
}

impl<T> Drop for Receiver<T> {
    fn drop(&mut self) {
        let mut st = self.inner.lock();
        st.closed = true;
        self.inner.not_empty.notify_all();
        self.inner.not_full.notify_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::thread;

    #[test]
    fn fifo_across_threads() {
        let (tx, rx) = ring::<u32>(4);
        let h = thread::spawn(move || {
            let mut got = Vec::new();
            while let Some(v) = rx.recv() {
                got.push(v);
            }
            got
        });
        for i in 0..100 {
            assert!(tx.send(i));
        }
        drop(tx);
        assert_eq!(h.join().unwrap(), (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn bounded_capacity_blocks_then_drains() {
        let (tx, rx) = ring::<u32>(2);
        assert!(tx.send(1));
        assert!(tx.send(2));
        // A third send must block until the receiver drains one; do it
        // from another thread and verify it completes.
        let h = thread::spawn(move || tx.send(3));
        assert_eq!(rx.recv(), Some(1));
        assert!(h.join().unwrap());
        assert_eq!(rx.recv(), Some(2));
        assert_eq!(rx.recv(), Some(3));
    }

    #[test]
    fn closed_ring_reports_disconnect() {
        let (tx, rx) = ring::<u32>(2);
        tx.send(7);
        drop(tx);
        assert_eq!(rx.recv(), Some(7), "drained before close takes effect");
        assert_eq!(rx.recv(), None);

        let (tx, rx) = ring::<u32>(2);
        drop(rx);
        assert!(!tx.send(1), "send to a dead receiver reports failure");
    }

    #[test]
    fn try_send_full_and_disconnected() {
        let (tx, rx) = ring::<u32>(1);
        assert_eq!(tx.try_send(1), SendStatus::Sent);
        assert_eq!(tx.try_send(2), SendStatus::Full(2));
        assert_eq!(rx.recv(), Some(1));
        assert_eq!(tx.try_send(3), SendStatus::Sent);
        drop(rx);
        assert_eq!(tx.try_send(4), SendStatus::Disconnected(4));
    }

    #[test]
    fn send_timeout_bounds_the_wait_on_a_wedged_receiver() {
        let (tx, _rx) = ring::<u32>(1);
        assert_eq!(tx.send_timeout(1, Duration::from_millis(1)), SendStatus::Sent);
        // Nobody drains: the bounded send must come back with the item.
        assert_eq!(
            tx.send_timeout(2, Duration::from_millis(5)),
            SendStatus::Full(2)
        );
    }

    #[test]
    fn poisoned_lock_is_recovered_not_propagated() {
        let (tx, rx) = ring::<u32>(4);
        let inner = tx.inner.clone();
        // Poison the mutex by panicking while holding it.
        let _ = thread::spawn(move || {
            let _guard = inner.q.lock().unwrap();
            panic!("poison on purpose");
        })
        .join();
        assert!(tx.send(9), "send survives a poisoned lock");
        assert_eq!(rx.recv(), Some(9), "recv survives a poisoned lock");
    }
}
