//! One shard: a whole [`slhost::Host`] (connection table, timer wheel,
//! budget, event loop) driven by a command stream.
//!
//! The stacks are deliberately **not** `Send` (they share an
//! `Rc<RefCell<AccessLog>>` with their sublayers), so a shard's
//! `ServedHost` is constructed *inside* its worker thread by a `Send`
//! factory closure; only plain data — frames, commands, counters —
//! crosses the rings. A shard's entire behavior is a function of its
//! command sequence, which arrives over a FIFO ring: no shared mutable
//! state, no locks around protocol state, no scheduling-dependent
//! results.

use crate::merge::Stamped;
use crate::ring;
use netsim::{Dur, MultiStack, Time};
use slhost::{HostApp, HostStack, ServedHost};
use slmetrics::{HostCounters, Pressure};
use std::thread::JoinHandle;

/// Coordinator → shard commands. Every `Flush`/`Tick`/`Snapshot` gets
/// exactly one [`Rep`] back; the rest are fire-and-forget.
#[derive(Clone, Debug)]
pub enum Cmd {
    /// Deliver one raw frame to the shard's host (queued there until the
    /// next flush services the ingest batch).
    Frame(Time, Vec<u8>),
    /// Service the ingest batch and drain outgoing frames.
    Flush(Time),
    /// Advance timers to `now`, then drain outgoing frames.
    Tick(Time),
    /// Impose the global pressure-tier floor (ladder level two).
    SetFloor(Time, Pressure),
    /// Report counters and app totals.
    Snapshot,
    /// Exit the worker loop.
    Shutdown,
}

/// Shard → coordinator replies.
#[derive(Clone, Debug)]
pub enum Rep {
    /// Reply to `Flush`/`Tick`.
    Flushed(FlushRep),
    /// Reply to `Snapshot`.
    Snap(Box<ShardSnapshot>),
}

/// What a flush/tick round produced and where the shard stands.
#[derive(Clone, Debug, Default)]
pub struct FlushRep {
    /// Outgoing frames, stamped for the deterministic merge.
    pub frames: Vec<Stamped>,
    /// The shard host's next timer deadline (cached by the coordinator so
    /// `poll_deadline` needs no cross-thread call).
    pub deadline: Option<Time>,
    /// Sampled buffered-byte occupancy (throttled; feeds the global
    /// budget tier).
    pub used: u64,
    /// Live connections on this shard.
    pub conns: u64,
}

/// Point-in-time shard state for reports and invariant checks.
#[derive(Clone, Debug, Default)]
pub struct ShardSnapshot {
    pub shard: u32,
    pub counters: HostCounters,
    /// Effective pressure tier at snapshot time (0..=3).
    pub pressure: u8,
    /// Imposed floor at snapshot time (0..=3).
    pub floor: u8,
    /// App-level totals (for [`slhost::EchoApp`]: bytes echoed,
    /// connections served).
    pub app_a: u64,
    pub app_b: u64,
    /// Inter-sublayer boundary crossings (`None`⇒0 for the monolith).
    pub crossings: u64,
}

/// App-side totals a shard reports in its snapshot, so campaign
/// invariants (all echoes intact) can be checked without reaching into a
/// worker thread.
pub trait AppReport {
    /// Two totals, app-defined. For [`slhost::EchoApp`]: (bytes echoed,
    /// connections served).
    fn report(&self) -> (u64, u64);
}

impl AppReport for slhost::EchoApp {
    fn report(&self) -> (u64, u64) {
        (self.echoed, self.served)
    }
}

fn tier(p: Pressure) -> u8 {
    match p {
        Pressure::Nominal => 0,
        Pressure::Elevated => 1,
        Pressure::High => 2,
        Pressure::Critical => 3,
    }
}

/// The state machine a worker (or the inline reference mode) runs: one
/// served host plus the logical clock that stamps its output.
pub struct ShardCore<S: HostStack, A: HostApp<S> + AppReport> {
    served: ServedHost<S, A>,
    shard: u32,
    /// Logical clock: one round per flush/tick processed.
    round: u64,
    /// Occupancy sampling throttle (mirrors `HostConfig::refresh_every`;
    /// `Dur::ZERO` samples every round).
    sample_every: Dur,
    last_sample: Option<Time>,
    used_cache: u64,
}

impl<S: HostStack, A: HostApp<S> + AppReport> ShardCore<S, A> {
    pub fn new(served: ServedHost<S, A>, shard: u32) -> Self {
        let sample_every = served.host.config().refresh_every;
        ShardCore { served, shard, round: 0, sample_every, last_sample: None, used_cache: 0 }
    }

    /// Process one command; `Some(rep)` iff the command demands a reply.
    pub fn step(&mut self, cmd: Cmd) -> Option<Rep> {
        match cmd {
            Cmd::Frame(now, frame) => {
                self.served.on_frame(now, 0, &frame);
                None
            }
            Cmd::Flush(now) => Some(Rep::Flushed(self.round_trip(now, false))),
            Cmd::Tick(now) => Some(Rep::Flushed(self.round_trip(now, true))),
            Cmd::SetFloor(now, floor) => {
                self.served.host.set_pressure_floor(now, floor);
                None
            }
            Cmd::Snapshot => {
                self.served.host.sample_gauges();
                let (app_a, app_b) = self.served.app.report();
                Some(Rep::Snap(Box::new(ShardSnapshot {
                    shard: self.shard,
                    counters: self.served.host.counters,
                    pressure: tier(self.served.host.pressure()),
                    floor: tier(self.served.host.pressure_floor()),
                    app_a,
                    app_b,
                    crossings: self.served.host.stack().crossing_events().unwrap_or(0),
                })))
            }
            Cmd::Shutdown => None,
        }
    }

    /// One round: optionally tick timers, service the ingest batch, drain
    /// and stamp every outgoing frame.
    fn round_trip(&mut self, now: Time, tick: bool) -> FlushRep {
        if tick {
            self.served.on_tick(now);
        }
        let mut frames = Vec::new();
        let mut seq = 0u32;
        while let Some((_port, frame)) = self.served.poll_transmit(now) {
            frames.push(Stamped { round: self.round, shard: self.shard, seq, frame });
            seq += 1;
        }
        self.round += 1;
        // Throttled occupancy sample: cheap rounds reuse the cached value,
        // so the global ladder sees bounded-staleness data without an
        // O(conns) scan per batch.
        let stale = match self.last_sample {
            Some(last) if self.sample_every > Dur::ZERO => {
                now.since(last) < self.sample_every
            }
            Some(_) => false,
            None => false,
        };
        if !stale {
            self.last_sample = Some(now);
            self.served.host.sample_gauges();
            self.used_cache = self.served.host.counters.mem_used;
        }
        FlushRep {
            frames,
            deadline: self.served.poll_deadline(now),
            used: self.used_cache,
            conns: self.served.host.counters.conns_open,
        }
    }
}

/// Where a shard runs.
pub enum Worker<S: HostStack, A: HostApp<S> + AppReport> {
    /// Same thread as the coordinator — the single-threaded reference
    /// mode the determinism tests cross-check against.
    Inline(Box<ShardCore<S, A>>, std::collections::VecDeque<Rep>),
    /// A real `std::thread` behind a pair of bounded SPSC rings.
    Thread {
        tx: ring::Sender<Cmd>,
        rx: ring::Receiver<Rep>,
        handle: Option<JoinHandle<()>>,
    },
}

impl<S: HostStack, A: HostApp<S> + AppReport> Worker<S, A> {
    /// Spawn a threaded worker. The factory runs *inside* the new thread
    /// (the host machinery is not `Send`).
    pub fn spawn<F>(shard: u32, ring_cap: usize, factory: F) -> Self
    where
        F: FnOnce() -> ServedHost<S, A> + Send + 'static,
    {
        let (cmd_tx, cmd_rx) = ring::ring::<Cmd>(ring_cap);
        let (rep_tx, rep_rx) = ring::ring::<Rep>(ring_cap);
        let handle = std::thread::Builder::new()
            .name(format!("slshard-{shard}"))
            .spawn(move || {
                let mut core = ShardCore::new(factory(), shard);
                while let Some(cmd) = cmd_rx.recv() {
                    let shutdown = matches!(cmd, Cmd::Shutdown);
                    if let Some(rep) = core.step(cmd) {
                        if !rep_tx.send(rep) {
                            break;
                        }
                    }
                    if shutdown {
                        break;
                    }
                }
            })
            .expect("spawn shard worker");
        Worker::Thread { tx: cmd_tx, rx: rep_rx, handle: Some(handle) }
    }

    /// Build an inline worker (runs on the caller's thread).
    pub fn inline(shard: u32, served: ServedHost<S, A>) -> Self {
        Worker::Inline(Box::new(ShardCore::new(served, shard)), Default::default())
    }

    /// Issue a command. Inline workers execute it immediately and queue
    /// any reply; threaded workers enqueue it on the ring.
    pub fn send(&mut self, cmd: Cmd) {
        match self {
            Worker::Inline(core, reps) => {
                if let Some(rep) = core.step(cmd) {
                    reps.push_back(rep);
                }
            }
            Worker::Thread { tx, .. } => {
                tx.send(cmd);
            }
        }
    }

    /// Block for the next reply (exactly one per `Flush`/`Tick`/
    /// `Snapshot` issued).
    pub fn recv(&mut self) -> Rep {
        match self {
            Worker::Inline(_, reps) => reps.pop_front().expect("inline reply queued"),
            Worker::Thread { rx, .. } => rx.recv().expect("shard worker alive"),
        }
    }
}

impl<S: HostStack, A: HostApp<S> + AppReport> Drop for Worker<S, A> {
    fn drop(&mut self) {
        if let Worker::Thread { tx, handle, .. } = self {
            tx.send(Cmd::Shutdown);
            if let Some(h) = handle.take() {
                let _ = h.join();
            }
        }
    }
}
