//! One shard: a whole [`slhost::Host`] (connection table, timer wheel,
//! budget, event loop) driven by a command stream.
//!
//! The stacks are deliberately **not** `Send` (they share an
//! `Rc<RefCell<AccessLog>>` with their sublayers), so a shard's
//! `ServedHost` is constructed *inside* its worker thread by a `Send`
//! factory closure; only plain data — frames, commands, counters —
//! crosses the rings. A shard's entire behavior is a function of its
//! command sequence, which arrives over a FIFO ring: no shared mutable
//! state, no locks around protocol state, no scheduling-dependent
//! results.
//!
//! Each shard is also a **fault domain**. The worker loop runs every
//! command under `catch_unwind`: a panic in host or app code kills only
//! that worker (its rings close as the stack unwinds), and every
//! coordinator-facing call reports the death as a typed
//! [`ShardError::Disconnected`] instead of propagating a panic. Faults
//! can be injected deterministically at a logical round via
//! [`Cmd::Inject`]; [`Mode::Inline`](crate::Mode) mirrors the same
//! behavior (including the unwind) on the caller's thread, so crashed
//! runs can still be checked against the single-threaded reference.

use crate::fault::{FaultKind, FaultSpec};
use crate::merge::Stamped;
use crate::ring::{self, SendStatus};
use netsim::{Dur, MultiStack, Time};
use slhost::{HostApp, HostStack, ServedHost};
use slmetrics::{HostCounters, Pressure};
use std::collections::VecDeque;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::thread::JoinHandle;
use std::time::Duration;

/// Typed cross-thread failure: what a coordinator call observes instead
/// of a panic when a shard worker is gone or unresponsive.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ShardError {
    /// The worker is dead: it panicked (rings closed as it unwound), was
    /// shut down, or — in inline mode — its core was dropped after a
    /// caught unwind.
    Disconnected,
    /// The worker's command ring stayed full past the bounded wait; the
    /// shard is alive but not draining its feed.
    Backlogged,
}

impl std::fmt::Display for ShardError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ShardError::Disconnected => write!(f, "shard worker disconnected"),
            ShardError::Backlogged => write!(f, "shard command ring backlogged"),
        }
    }
}

impl std::error::Error for ShardError {}

/// Coordinator → shard commands. Every `Flush`/`Tick`/`Snapshot` gets
/// exactly one [`Rep`] back; the rest are fire-and-forget.
#[derive(Clone, Debug)]
pub enum Cmd {
    /// Deliver one raw frame to the shard's host (queued there until the
    /// next flush services the ingest batch).
    Frame(Time, Vec<u8>),
    /// Service the ingest batch and drain outgoing frames.
    Flush(Time),
    /// Advance timers to `now`, then drain outgoing frames.
    Tick(Time),
    /// Impose the global pressure-tier floor (ladder level two).
    SetFloor(Time, Pressure),
    /// Arm a deterministic fault (fires when the shard's logical round
    /// reaches `at_round`).
    Inject(FaultSpec),
    /// Report counters and app totals.
    Snapshot,
    /// Exit the worker loop.
    Shutdown,
}

/// Shard → coordinator replies.
#[derive(Clone, Debug)]
pub enum Rep {
    /// Reply to `Flush`/`Tick`.
    Flushed(FlushRep),
    /// Reply to `Snapshot`.
    Snap(Box<ShardSnapshot>),
}

/// What a flush/tick round produced and where the shard stands.
#[derive(Clone, Debug, Default)]
pub struct FlushRep {
    /// Outgoing frames, stamped for the deterministic merge.
    pub frames: Vec<Stamped>,
    /// The shard host's next timer deadline (cached by the coordinator so
    /// `poll_deadline` needs no cross-thread call).
    pub deadline: Option<Time>,
    /// Sampled buffered-byte occupancy (throttled; feeds the global
    /// budget tier).
    pub used: u64,
    /// Live connections on this shard.
    pub conns: u64,
    /// The logical round this reply acknowledges (the supervisor's
    /// heartbeat currency — rounds, not wall clock).
    pub round: u64,
    /// `true` if the shard acknowledged the round without servicing it
    /// (an armed stall/wedge is holding it). Stalled replies do not count
    /// as heartbeats.
    pub stalled: bool,
}

/// Point-in-time shard state for reports and invariant checks.
#[derive(Clone, Debug, Default)]
pub struct ShardSnapshot {
    pub shard: u32,
    pub counters: HostCounters,
    /// Effective pressure tier at snapshot time (0..=3).
    pub pressure: u8,
    /// Imposed floor at snapshot time (0..=3).
    pub floor: u8,
    /// App-level totals (for [`slhost::EchoApp`]: bytes echoed,
    /// connections served).
    pub app_a: u64,
    pub app_b: u64,
    /// Inter-sublayer boundary crossings (`None`⇒0 for the monolith).
    pub crossings: u64,
    /// The shard's logical round counter at snapshot time.
    pub round: u64,
    /// Supervisor's health classification, filled in by the coordinator
    /// (0 healthy, 1 stalled, 2 dead, 3 failed/gave-up).
    pub health: u8,
    /// How many times the supervisor has rebuilt this shard.
    pub restarts: u32,
}

/// App-side totals a shard reports in its snapshot, so campaign
/// invariants (all echoes intact) can be checked without reaching into a
/// worker thread.
pub trait AppReport {
    /// Two totals, app-defined. For [`slhost::EchoApp`]: (bytes echoed,
    /// connections served).
    fn report(&self) -> (u64, u64);
}

impl AppReport for slhost::EchoApp {
    fn report(&self) -> (u64, u64) {
        (self.echoed, self.served)
    }
}

fn tier(p: Pressure) -> u8 {
    match p {
        Pressure::Nominal => 0,
        Pressure::Elevated => 1,
        Pressure::High => 2,
        Pressure::Critical => 3,
    }
}

/// The state machine a worker (or the inline reference mode) runs: one
/// served host plus the logical clock that stamps its output.
pub struct ShardCore<S: HostStack, A: HostApp<S> + AppReport> {
    served: ServedHost<S, A>,
    shard: u32,
    /// Logical clock: one round per flush/tick processed.
    round: u64,
    /// Occupancy sampling throttle (mirrors `HostConfig::refresh_every`;
    /// `Dur::ZERO` samples every round).
    sample_every: Dur,
    last_sample: Option<Time>,
    used_cache: u64,
    /// Armed-but-unfired faults ([`Cmd::Inject`]).
    armed: Vec<FaultSpec>,
    /// Rounds of stall left to serve (`u64::MAX` while wedged).
    stall_left: u64,
    wedged: bool,
    /// Frames that arrived during a stall, replayed in order when
    /// service resumes.
    deferred: VecDeque<(Time, Vec<u8>)>,
}

impl<S: HostStack, A: HostApp<S> + AppReport> ShardCore<S, A> {
    pub fn new(served: ServedHost<S, A>, shard: u32) -> Self {
        let sample_every = served.host.config().refresh_every;
        ShardCore {
            served,
            shard,
            round: 0,
            sample_every,
            last_sample: None,
            used_cache: 0,
            armed: Vec::new(),
            stall_left: 0,
            wedged: false,
            deferred: VecDeque::new(),
        }
    }

    /// Start the logical clock at `round` — used when the supervisor
    /// rebuilds a dead shard, so the replacement's stamps continue from
    /// the coordinator round of the restart (keeping the `(round, shard,
    /// seq)` merge order deterministic across the crash).
    pub fn with_round(mut self, round: u64) -> Self {
        self.round = round;
        self
    }

    fn stalled(&self) -> bool {
        self.wedged || self.stall_left > 0
    }

    /// Fire any fault armed for the current round. A `Panic` fault is a
    /// *real* `panic!` — the worker loop's `catch_unwind` is the
    /// mechanism under test, in both modes.
    fn check_faults(&mut self) {
        let round = self.round;
        let mut i = 0;
        while i < self.armed.len() {
            if self.armed[i].at_round <= round {
                let f = self.armed.swap_remove(i);
                match f.kind {
                    FaultKind::Panic => {
                        panic!("slshard-fault: injected panic (shard {}, round {})", self.shard, round)
                    }
                    FaultKind::Stall(k) => self.stall_left = self.stall_left.saturating_add(k),
                    FaultKind::Wedge => self.wedged = true,
                }
            } else {
                i += 1;
            }
        }
    }

    /// Process one command; `Some(rep)` iff the command demands a reply.
    pub fn step(&mut self, cmd: Cmd) -> Option<Rep> {
        match cmd {
            Cmd::Frame(now, frame) => {
                if self.stalled() {
                    self.deferred.push_back((now, frame));
                } else {
                    self.served.on_frame(now, 0, &frame);
                }
                None
            }
            Cmd::Flush(now) => Some(Rep::Flushed(self.round_trip(now, false))),
            Cmd::Tick(now) => Some(Rep::Flushed(self.round_trip(now, true))),
            Cmd::SetFloor(now, floor) => {
                self.served.host.set_pressure_floor(now, floor);
                None
            }
            Cmd::Inject(spec) => {
                self.armed.push(spec);
                None
            }
            Cmd::Snapshot => {
                self.served.host.sample_gauges();
                let (app_a, app_b) = self.served.app.report();
                Some(Rep::Snap(Box::new(ShardSnapshot {
                    shard: self.shard,
                    counters: self.served.host.counters,
                    pressure: tier(self.served.host.pressure()),
                    floor: tier(self.served.host.pressure_floor()),
                    app_a,
                    app_b,
                    crossings: self.served.host.stack().crossing_events().unwrap_or(0),
                    round: self.round,
                    health: 0,
                    restarts: 0,
                })))
            }
            Cmd::Shutdown => None,
        }
    }

    /// One round: optionally tick timers, service the ingest batch, drain
    /// and stamp every outgoing frame. A stalled round is acknowledged
    /// (so the ring drains and the reply protocol stays 1:1) but not
    /// serviced: no frames, `stalled: true`.
    fn round_trip(&mut self, now: Time, tick: bool) -> FlushRep {
        self.check_faults();
        if self.stalled() {
            if !self.wedged {
                self.stall_left -= 1;
            }
            let round = self.round;
            self.round += 1;
            return FlushRep {
                frames: Vec::new(),
                deadline: self.served.poll_deadline(now),
                used: self.used_cache,
                conns: self.served.host.counters.conns_open,
                round,
                stalled: true,
            };
        }
        while let Some((at, frame)) = self.deferred.pop_front() {
            self.served.on_frame(at, 0, &frame);
        }
        if tick {
            self.served.on_tick(now);
        }
        let mut frames = Vec::new();
        let mut seq = 0u32;
        while let Some((_port, frame)) = self.served.poll_transmit(now) {
            frames.push(Stamped { round: self.round, shard: self.shard, seq, frame });
            seq += 1;
        }
        let round = self.round;
        self.round += 1;
        // Throttled occupancy sample: cheap rounds reuse the cached value,
        // so the global ladder sees bounded-staleness data without an
        // O(conns) scan per batch.
        let stale = match self.last_sample {
            Some(last) if self.sample_every > Dur::ZERO => {
                now.since(last) < self.sample_every
            }
            Some(_) => false,
            None => false,
        };
        if !stale {
            self.last_sample = Some(now);
            self.served.host.sample_gauges();
            self.used_cache = self.served.host.counters.mem_used;
        }
        FlushRep {
            frames,
            deadline: self.served.poll_deadline(now),
            used: self.used_cache,
            conns: self.served.host.counters.conns_open,
            round,
            stalled: false,
        }
    }
}

/// Where a shard runs.
pub enum Worker<S: HostStack, A: HostApp<S> + AppReport> {
    /// Same thread as the coordinator — the single-threaded reference
    /// mode the determinism tests cross-check against. `core: None`
    /// means the shard died (a caught unwind dropped it).
    Inline {
        core: Option<Box<ShardCore<S, A>>>,
        reps: VecDeque<Rep>,
    },
    /// A real `std::thread` behind a pair of bounded SPSC rings.
    Thread {
        tx: ring::Sender<Cmd>,
        rx: ring::Receiver<Rep>,
        handle: Option<JoinHandle<()>>,
    },
}

impl<S: HostStack, A: HostApp<S> + AppReport> Worker<S, A> {
    /// Spawn a threaded worker. The factory runs *inside* the new thread
    /// (the host machinery is not `Send`). `start_round` seeds the
    /// logical clock (0 at first boot; the coordinator round on a
    /// supervised restart). Spawn failure (OS thread exhaustion) is a
    /// typed error, not a panic — the supervisor maps it to a failed
    /// shard.
    pub fn spawn<F>(shard: u32, ring_cap: usize, start_round: u64, factory: F) -> std::io::Result<Self>
    where
        F: FnOnce() -> ServedHost<S, A> + Send + 'static,
    {
        let (cmd_tx, cmd_rx) = ring::ring::<Cmd>(ring_cap);
        let (rep_tx, rep_rx) = ring::ring::<Rep>(ring_cap);
        let handle = std::thread::Builder::new()
            .name(format!("slshard-{shard}"))
            .spawn(move || {
                let mut core = ShardCore::new(factory(), shard).with_round(start_round);
                while let Some(cmd) = cmd_rx.recv() {
                    let shutdown = matches!(cmd, Cmd::Shutdown);
                    // The fault boundary: a panic in host/app/injected
                    // code ends this worker only. Dropping out of the
                    // loop drops both ring halves, which closes them and
                    // surfaces `Disconnected` to the coordinator.
                    match catch_unwind(AssertUnwindSafe(|| core.step(cmd))) {
                        Ok(Some(rep)) => {
                            if !rep_tx.send(rep) {
                                break;
                            }
                        }
                        Ok(None) => {}
                        Err(_) => break,
                    }
                    if shutdown {
                        break;
                    }
                }
            })?;
        Ok(Worker::Thread { tx: cmd_tx, rx: rep_rx, handle: Some(handle) })
    }

    /// Build an inline worker (runs on the caller's thread).
    pub fn inline(shard: u32, start_round: u64, served: ServedHost<S, A>) -> Self {
        Worker::Inline {
            core: Some(Box::new(ShardCore::new(served, shard).with_round(start_round))),
            reps: VecDeque::new(),
        }
    }

    /// Issue a command. Inline workers execute it immediately (under the
    /// same `catch_unwind` discipline as the threaded loop) and queue any
    /// reply; threaded workers enqueue it on the ring. `Err` means the
    /// shard is dead.
    pub fn send(&mut self, cmd: Cmd) -> Result<(), ShardError> {
        match self {
            Worker::Inline { core, reps } => {
                let Some(c) = core.as_mut() else {
                    return Err(ShardError::Disconnected);
                };
                match catch_unwind(AssertUnwindSafe(|| c.step(cmd))) {
                    Ok(Some(rep)) => {
                        reps.push_back(rep);
                        Ok(())
                    }
                    Ok(None) => Ok(()),
                    Err(_) => {
                        // The unwound core's invariants are suspect; drop
                        // it. The shard is now exactly as dead as a
                        // panicked thread worker.
                        *core = None;
                        Err(ShardError::Disconnected)
                    }
                }
            }
            Worker::Thread { tx, .. } => {
                if tx.send(cmd) {
                    Ok(())
                } else {
                    Err(ShardError::Disconnected)
                }
            }
        }
    }

    /// Like [`send`](Self::send), but waits at most `bound` for ring
    /// room. `Err(Backlogged)` means the shard is alive but not draining
    /// its command ring — the caller's cue to count a stall instead of
    /// blocking the whole fleet behind one slow shard.
    pub fn send_bounded(&mut self, cmd: Cmd, bound: Duration) -> Result<(), ShardError> {
        match self {
            Worker::Inline { .. } => self.send(cmd),
            Worker::Thread { tx, .. } => match tx.send_timeout(cmd, bound) {
                SendStatus::Sent => Ok(()),
                SendStatus::Full(_) => Err(ShardError::Backlogged),
                SendStatus::Disconnected(_) => Err(ShardError::Disconnected),
            },
        }
    }

    /// Block for the next reply (exactly one per `Flush`/`Tick`/
    /// `Snapshot` issued). `Err` — never a panic — if the worker died
    /// before replying.
    pub fn recv(&mut self) -> Result<Rep, ShardError> {
        match self {
            Worker::Inline { core, reps } => match reps.pop_front() {
                Some(rep) => Ok(rep),
                None => {
                    debug_assert!(core.is_none(), "recv without a pending reply on a live inline shard");
                    Err(ShardError::Disconnected)
                }
            },
            Worker::Thread { rx, .. } => rx.recv().ok_or(ShardError::Disconnected),
        }
    }
}

impl<S: HostStack, A: HostApp<S> + AppReport> Drop for Worker<S, A> {
    fn drop(&mut self) {
        if let Worker::Thread { tx, handle, .. } = self {
            // Best-effort shutdown. If the command ring is jammed the
            // worker is wedged for real: detach instead of joining (the
            // ring halves we drop right after this close the ring, so a
            // worker that ever drains again exits on its own).
            let join = !matches!(tx.try_send(Cmd::Shutdown), SendStatus::Full(_));
            if let Some(h) = handle.take() {
                if join {
                    let _ = h.join();
                } else {
                    drop(h);
                }
            }
        }
    }
}
