//! Coordinator-side supervision: per-shard health, restart policy, and
//! the deterministic fault log.
//!
//! Heartbeats are **logical rounds acknowledged**, not wall clock: a
//! shard is healthy when its flush replies service rounds, stalled when
//! they come back `stalled`, and dead when its rings disconnect (panic)
//! or it misses enough consecutive heartbeats. Every classification is a
//! pure function of the reply stream, so a crashed run supervises — and
//! therefore replays — byte-identically, threaded or inline.

/// Supervisor's view of one shard.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ShardHealth {
    /// Acknowledging and servicing rounds.
    Healthy,
    /// Acknowledging rounds without servicing them (missed heartbeats
    /// below the death threshold).
    Stalled,
    /// Disconnected or declared dead; a restart may be scheduled.
    Dead,
    /// Dead with the restart budget exhausted (or restart impossible);
    /// the supervisor has given up on this shard.
    Failed,
}

impl ShardHealth {
    /// Stable numeric encoding for snapshots and JSON (0..=3).
    pub fn as_u8(self) -> u8 {
        match self {
            ShardHealth::Healthy => 0,
            ShardHealth::Stalled => 1,
            ShardHealth::Dead => 2,
            ShardHealth::Failed => 3,
        }
    }
}

/// When and how often to rebuild dead shards. All delays are in
/// coordinator rounds — the same logical clock the heartbeats use.
#[derive(Clone, Copy, Debug)]
pub struct RestartPolicy {
    /// Rebuilds allowed per shard before the supervisor gives up.
    pub max_restarts: u32,
    /// Base restart delay; attempt `k` (1-based) waits `backoff_rounds *
    /// k` coordinator rounds after death.
    pub backoff_rounds: u64,
    /// Consecutive stalled heartbeats before a shard is classified
    /// [`ShardHealth::Stalled`].
    pub stalled_after: u64,
    /// Consecutive stalled heartbeats before a live-but-useless shard
    /// (e.g. a ring-full wedge) is killed and treated as dead.
    pub dead_after: u64,
}

impl Default for RestartPolicy {
    fn default() -> Self {
        RestartPolicy { max_restarts: 3, backoff_rounds: 2, stalled_after: 1, dead_after: 8 }
    }
}

impl RestartPolicy {
    /// A policy that never restarts: one crash permanently fails the
    /// shard (the blast radius stays one shard either way).
    pub fn never() -> Self {
        RestartPolicy { max_restarts: 0, ..Default::default() }
    }
}

/// What happened to a shard, stamped with the coordinator round so crash
/// and restart events fold deterministically into the replay order.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct FaultEvent {
    /// Coordinator round the event was observed at.
    pub round: u64,
    pub shard: u32,
    pub kind: FaultEventKind,
}

#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FaultEventKind {
    /// The worker disconnected (panic or thread death).
    Crashed,
    /// Declared dead after `dead_after` consecutive missed heartbeats.
    DeclaredDead,
    /// Rebuilt from the factory and back in rotation.
    Restarted,
    /// Restart budget exhausted (or rebuild failed); shard is Failed.
    GaveUp,
}

impl FaultEventKind {
    pub fn label(self) -> &'static str {
        match self {
            FaultEventKind::Crashed => "crashed",
            FaultEventKind::DeclaredDead => "declared-dead",
            FaultEventKind::Restarted => "restarted",
            FaultEventKind::GaveUp => "gave-up",
        }
    }
}

#[derive(Clone, Debug)]
struct ShardStatus {
    health: ShardHealth,
    /// Consecutive rounds without a serviced heartbeat.
    missed: u64,
    restarts: u32,
    /// Coordinator round to attempt the next rebuild at.
    restart_at: Option<u64>,
}

/// Watchdog bookkeeping for the whole fleet. Owns no workers — the
/// coordinator consults it and acts.
#[derive(Clone, Debug)]
pub struct Supervisor {
    pub policy: RestartPolicy,
    shards: Vec<ShardStatus>,
    events: Vec<FaultEvent>,
    /// Connections aborted because their shard died.
    pub failover_aborts: u64,
    /// Frame sends abandoned because a command ring stayed full past the
    /// bounded wait.
    pub ring_stalls: u64,
    /// Frames dropped because their shard was dead at routing time.
    pub dead_drops: u64,
}

impl Supervisor {
    pub fn new(shards: usize, policy: RestartPolicy) -> Self {
        Supervisor {
            policy,
            shards: vec![
                ShardStatus {
                    health: ShardHealth::Healthy,
                    missed: 0,
                    restarts: 0,
                    restart_at: None,
                };
                shards
            ],
            events: Vec::new(),
            failover_aborts: 0,
            ring_stalls: 0,
            dead_drops: 0,
        }
    }

    pub fn health(&self, shard: usize) -> ShardHealth {
        self.shards[shard].health
    }

    pub fn restarts(&self, shard: usize) -> u32 {
        self.shards[shard].restarts
    }

    /// Consecutive missed heartbeats (0 for a shard serving rounds).
    pub fn heartbeat_age(&self, shard: usize) -> u64 {
        self.shards[shard].missed
    }

    pub fn max_heartbeat_age(&self) -> u64 {
        self.shards.iter().map(|s| s.missed).max().unwrap_or(0)
    }

    pub fn total_restarts(&self) -> u64 {
        self.shards.iter().map(|s| u64::from(s.restarts)).sum()
    }

    /// Every fault event observed so far, in coordinator-round order.
    pub fn events(&self) -> &[FaultEvent] {
        &self.events
    }

    pub fn any_down(&self) -> bool {
        self.shards
            .iter()
            .any(|s| matches!(s.health, ShardHealth::Dead))
    }

    /// A serviced heartbeat arrived.
    pub fn beat_ok(&mut self, shard: usize) {
        let st = &mut self.shards[shard];
        if matches!(st.health, ShardHealth::Healthy | ShardHealth::Stalled) {
            st.missed = 0;
            st.health = ShardHealth::Healthy;
        }
    }

    /// A stalled (acknowledged, unserviced) heartbeat arrived. Returns
    /// `true` when the shard has now missed enough beats to be killed.
    pub fn beat_stalled(&mut self, shard: usize) -> bool {
        let st = &mut self.shards[shard];
        if !matches!(st.health, ShardHealth::Healthy | ShardHealth::Stalled) {
            return false;
        }
        st.missed += 1;
        if st.missed >= self.policy.dead_after {
            return true;
        }
        if st.missed >= self.policy.stalled_after {
            st.health = ShardHealth::Stalled;
        }
        false
    }

    /// The shard is dead (worker disconnected, or the coordinator killed
    /// a wedge). Schedules a restart or gives up, per policy.
    pub fn died(&mut self, shard: usize, round: u64, kind: FaultEventKind, conns_lost: u64) {
        let st = &mut self.shards[shard];
        if matches!(st.health, ShardHealth::Dead | ShardHealth::Failed) {
            return;
        }
        self.failover_aborts = self.failover_aborts.saturating_add(conns_lost);
        self.events.push(FaultEvent { round, shard: shard as u32, kind });
        let st = &mut self.shards[shard];
        st.missed = 0;
        if st.restarts >= self.policy.max_restarts {
            st.health = ShardHealth::Failed;
            self.events.push(FaultEvent {
                round,
                shard: shard as u32,
                kind: FaultEventKind::GaveUp,
            });
        } else {
            st.health = ShardHealth::Dead;
            let attempt = u64::from(st.restarts) + 1;
            st.restart_at = Some(round + self.policy.backoff_rounds.saturating_mul(attempt));
        }
    }

    /// Is this dead shard due for a rebuild at `round`?
    pub fn restart_due(&self, shard: usize, round: u64) -> bool {
        let st = &self.shards[shard];
        matches!(st.health, ShardHealth::Dead) && st.restart_at.is_some_and(|at| round >= at)
    }

    /// The rebuild succeeded; the shard is back in rotation.
    pub fn restarted(&mut self, shard: usize, round: u64) {
        let st = &mut self.shards[shard];
        st.restarts += 1;
        st.health = ShardHealth::Healthy;
        st.missed = 0;
        st.restart_at = None;
        self.events.push(FaultEvent {
            round,
            shard: shard as u32,
            kind: FaultEventKind::Restarted,
        });
    }

    /// The rebuild itself failed (e.g. thread spawn error): give up.
    pub fn gave_up(&mut self, shard: usize, round: u64) {
        let st = &mut self.shards[shard];
        st.health = ShardHealth::Failed;
        st.restart_at = None;
        self.events.push(FaultEvent {
            round,
            shard: shard as u32,
            kind: FaultEventKind::GaveUp,
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crash_schedules_backoff_then_restart() {
        let mut sup = Supervisor::new(2, RestartPolicy { backoff_rounds: 3, ..Default::default() });
        sup.died(1, 10, FaultEventKind::Crashed, 5);
        assert_eq!(sup.health(1), ShardHealth::Dead);
        assert_eq!(sup.failover_aborts, 5);
        assert!(!sup.restart_due(1, 12));
        assert!(sup.restart_due(1, 13), "backoff is 3 rounds for attempt 1");
        sup.restarted(1, 13);
        assert_eq!(sup.health(1), ShardHealth::Healthy);
        assert_eq!(sup.restarts(1), 1);
        // Second death backs off twice as long.
        sup.died(1, 20, FaultEventKind::Crashed, 0);
        assert!(!sup.restart_due(1, 25));
        assert!(sup.restart_due(1, 26));
    }

    #[test]
    fn restart_budget_exhaustion_fails_the_shard() {
        let mut sup = Supervisor::new(1, RestartPolicy { max_restarts: 1, ..Default::default() });
        sup.died(0, 1, FaultEventKind::Crashed, 0);
        sup.restarted(0, 3);
        sup.died(0, 5, FaultEventKind::Crashed, 2);
        assert_eq!(sup.health(0), ShardHealth::Failed);
        assert!(!sup.restart_due(0, 1000));
        let kinds: Vec<_> = sup.events().iter().map(|e| e.kind).collect();
        assert_eq!(
            kinds,
            vec![
                FaultEventKind::Crashed,
                FaultEventKind::Restarted,
                FaultEventKind::Crashed,
                FaultEventKind::GaveUp
            ]
        );
    }

    #[test]
    fn never_policy_fails_on_first_death() {
        let mut sup = Supervisor::new(1, RestartPolicy::never());
        sup.died(0, 4, FaultEventKind::Crashed, 7);
        assert_eq!(sup.health(0), ShardHealth::Failed);
        assert_eq!(sup.failover_aborts, 7);
    }

    #[test]
    fn stalled_beats_escalate_to_dead() {
        let mut sup = Supervisor::new(1, RestartPolicy { stalled_after: 1, dead_after: 3, ..Default::default() });
        assert!(!sup.beat_stalled(0));
        assert_eq!(sup.health(0), ShardHealth::Stalled);
        assert_eq!(sup.heartbeat_age(0), 1);
        assert!(!sup.beat_stalled(0));
        assert!(sup.beat_stalled(0), "third consecutive stall crosses dead_after");
        // A good beat in between resets the count.
        let mut sup = Supervisor::new(1, RestartPolicy { stalled_after: 1, dead_after: 3, ..Default::default() });
        sup.beat_stalled(0);
        sup.beat_ok(0);
        assert_eq!(sup.health(0), ShardHealth::Healthy);
        assert_eq!(sup.heartbeat_age(0), 0);
    }
}
