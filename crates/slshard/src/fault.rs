//! Deterministic shard fault injection.
//!
//! Faults are keyed to a shard's **logical round** (its count of
//! `Flush`/`Tick` commands processed), never to wall clock, so an
//! injected crash lands on exactly the same command in every rerun and
//! in both [`crate::Mode`]s. A [`FaultSpec`] travels to the shard via
//! [`crate::Cmd::Inject`] and arms inside [`crate::ShardCore`]; the
//! seeded [`ShardFaultPlan`] generates whole schedules for property
//! tests and campaigns.

/// What goes wrong.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FaultKind {
    /// The worker panics mid-round: threaded mode unwinds through
    /// `catch_unwind` and the worker dies (rings close); inline mode
    /// reports the same death as a typed error. Either way the
    /// coordinator observes `ShardError::Disconnected` at the same
    /// logical point.
    Panic,
    /// The shard stops servicing rounds for `K` rounds: flushes come back
    /// empty and marked stalled, frames are deferred, then service
    /// resumes. Models a shard stuck on a slow syscall / GC-style pause.
    Stall(u64),
    /// A permanent stall: the shard acknowledges commands but never
    /// services them again. Only a supervised kill + restart recovers it.
    Wedge,
}

/// One fault, armed to fire when the shard's logical round counter
/// reaches `at_round`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct FaultSpec {
    pub at_round: u64,
    pub kind: FaultKind,
}

/// A seeded, reproducible schedule of faults across a fleet.
#[derive(Clone, Debug, Default)]
pub struct ShardFaultPlan {
    /// `(shard, fault)` pairs, in injection order.
    pub faults: Vec<(u32, FaultSpec)>,
}

impl ShardFaultPlan {
    /// Derive a random-but-reproducible plan: up to `max_faults` faults
    /// spread over `shards` shards, each firing before `horizon_rounds`.
    /// Same seed ⇒ same plan, byte for byte.
    pub fn random(seed: u64, shards: usize, horizon_rounds: u64, max_faults: usize) -> Self {
        let mut rng = SplitMix64::new(seed);
        let n = if max_faults == 0 { 0 } else { (rng.next() as usize % max_faults) + 1 };
        let mut faults = Vec::with_capacity(n);
        for _ in 0..n {
            let shard = (rng.next() % shards.max(1) as u64) as u32;
            let at_round = 1 + rng.next() % horizon_rounds.max(1);
            let kind = match rng.next() % 4 {
                0 => FaultKind::Panic,
                1 => FaultKind::Wedge,
                _ => FaultKind::Stall(1 + rng.next() % 6),
            };
            faults.push((shard, FaultSpec { at_round, kind }));
        }
        ShardFaultPlan { faults }
    }
}

/// Keep crash campaigns quiet: install a panic hook (once per process)
/// that swallows panics originating in shard workers — threads named
/// `slshard-*` — and injected-fault panics (payloads prefixed
/// `slshard-fault:`, which is what inline mode raises on the caller's
/// thread). Everything else still reaches the previous hook, so real
/// test failures print normally.
pub fn mute_injected_panics() {
    use std::sync::Once;
    static INSTALL: Once = Once::new();
    INSTALL.call_once(|| {
        let prev = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            let in_worker = std::thread::current()
                .name()
                .is_some_and(|n| n.starts_with("slshard-"));
            let injected = info
                .payload()
                .downcast_ref::<String>()
                .map(String::as_str)
                .or_else(|| info.payload().downcast_ref::<&str>().copied())
                .is_some_and(|s| s.starts_with("slshard-fault:"));
            if !(in_worker || injected) {
                prev(info);
            }
        }));
    });
}

/// Small deterministic generator (splitmix64) so fault plans need no
/// external RNG crate and reproduce exactly from the seed.
pub(crate) struct SplitMix64(u64);

impl SplitMix64 {
    pub(crate) fn new(seed: u64) -> Self {
        SplitMix64(seed)
    }

    pub(crate) fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plans_reproduce_from_the_seed() {
        for seed in [1u64, 0xDEAD, 0x51AD_F001] {
            let a = ShardFaultPlan::random(seed, 4, 40, 3);
            let b = ShardFaultPlan::random(seed, 4, 40, 3);
            assert_eq!(a.faults, b.faults);
            assert!(!a.faults.is_empty() && a.faults.len() <= 3);
            for (shard, f) in &a.faults {
                assert!(*shard < 4);
                assert!(f.at_round >= 1 && f.at_round <= 40);
            }
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let a = ShardFaultPlan::random(1, 8, 100, 4);
        let b = ShardFaultPlan::random(2, 8, 100, 4);
        assert_ne!(a.faults, b.faults);
    }
}
