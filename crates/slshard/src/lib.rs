//! # slshard — an N-way sharded multi-core host with deterministic replay
//!
//! The paper's sublayered decomposition makes demultiplexing an explicitly
//! *stateless* sublayer: which connection (and therefore which shard) a
//! frame belongs to is a pure function of its 4-tuple. `slshard` exploits
//! exactly that property to scale [`slhost`] across cores:
//!
//! - **Routing** is the shared seeded fx 4-tuple hash
//!   ([`tcp_mono::hash::shard_of`]) — the same mix the demux tables use —
//!   so a tuple always lands on the same shard with no shared state.
//! - **Shards** are whole [`slhost::Host`]s (own connection table, timer
//!   wheel, [`slhost::ResourceBudget`], counters) running on real
//!   `std::thread` workers behind bounded SPSC [`ring`]s. The stacks are
//!   not `Send`, so each worker *constructs* its host from a `Send`
//!   factory; only frames and counters cross threads.
//! - **Determinism**: shards stamp emitted frames with a per-shard
//!   logical clock and the coordinator merges them with a stable
//!   shard-index tie-break ([`merge`]). Commands reach each shard in FIFO
//!   ring order and replies are collected shard-by-shard, so the merged
//!   stream is a function of the command history, never of OS
//!   scheduling — threaded runs replay byte-identically, and identically
//!   to the single-threaded [`Mode::Inline`] reference.
//! - **Two-level degradation ladder**: each shard keeps its own byte
//!   budget (defer/shed/refuse, PR 4), and the coordinator sums shard
//!   occupancy against a *global* budget, pushing the resulting tier into
//!   every shard as a pressure **floor**
//!   ([`slhost::Host::set_pressure_floor`]) — one hot host degrades
//!   itself; a hot *fleet* degrades together.
//!
//! `slverify::ShardedOverload` proves budget-never-exceeded for this
//! shape per shard *and* globally; `bench::shard` / `exp_shard` sweep it
//! to 100k+ connections.

pub mod merge;
pub mod ring;
pub mod shard;

pub use merge::{merge, reference_merge, Stamped};
pub use shard::{AppReport, Cmd, FlushRep, Rep, ShardCore, ShardSnapshot, Worker};

use netsim::{Dur, MultiStack, PortId, Time};
use slhost::{HostApp, HostStack, ServedHost};
use slmetrics::{HostCounters, Pressure};
use std::collections::{HashMap, VecDeque};
use std::sync::Arc;
use tcp_mono::hash::shard_of;

/// Whether shards run on real threads or inline on the caller's thread.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Mode {
    /// Real `std::thread` workers behind SPSC rings.
    Threaded,
    /// Single-threaded reference: same cores, same command streams, same
    /// merge — the oracle the determinism tests compare against.
    Inline,
}

/// Coordinator tuning.
#[derive(Clone, Debug)]
pub struct ShardedConfig {
    /// Number of shards (≥ 1).
    pub shards: usize,
    /// Seed for the routing hash (also a determinism input).
    pub seed: u64,
    /// Frames arriving within this window are flushed to shards as one
    /// round (the coordinator-level analogue of
    /// [`slhost::HostConfig::batch_window`]).
    pub batch_window: Dur,
    /// SPSC ring capacity per direction per shard.
    pub ring_cap: usize,
    /// Global byte budget across all shards; `0` disables the global
    /// ladder level. Occupancy is the sum of per-shard (throttled)
    /// samples; the derived tier is pushed to every shard as a pressure
    /// floor.
    pub global_budget: usize,
    pub mode: Mode,
}

impl Default for ShardedConfig {
    fn default() -> Self {
        ShardedConfig {
            shards: 4,
            seed: 0x51AD,
            batch_window: Dur::ZERO,
            ring_cap: 1024,
            global_budget: 0,
            mode: Mode::Threaded,
        }
    }
}

/// The sharded host front. Implements [`MultiStack`], so it drops into a
/// simulator topology exactly where a single [`slhost::Host`] would.
pub struct ShardedHost<S: HostStack, A: HostApp<S> + AppReport> {
    cfg: ShardedConfig,
    workers: Vec<Worker<S, A>>,
    /// Learned peer-address → simulator-port routes (the coordinator owns
    /// routing; shards never see simulator ports).
    routes: HashMap<u32, PortId>,
    out: VecDeque<(PortId, Vec<u8>)>,
    batch_due: Option<Time>,
    /// Shards holding unflushed frames.
    dirty: Vec<bool>,
    /// Cached per-shard timer deadlines (refreshed with every reply, so
    /// `poll_deadline` is thread-free).
    deadlines: Vec<Option<Time>>,
    /// Last reported per-shard occupancy/conn gauges.
    used: Vec<u64>,
    conns: Vec<u64>,
    floor: Pressure,
    /// Frames routed per shard (router-side work-balance view).
    pub routed: Vec<u64>,
    /// Frames that failed classification (routed to shard 0).
    pub unclassified: u64,
}

impl<S: HostStack, A: HostApp<S> + AppReport> ShardedHost<S, A> {
    /// Build the fleet. `factory(i)` constructs shard `i`'s served host;
    /// in threaded mode it runs inside the worker thread (the host is not
    /// `Send`, the factory must be).
    pub fn new<F>(cfg: ShardedConfig, factory: F) -> Self
    where
        F: Fn(u32) -> ServedHost<S, A> + Send + Sync + 'static,
    {
        assert!(cfg.shards >= 1, "need at least one shard");
        let factory = Arc::new(factory);
        let workers = (0..cfg.shards as u32)
            .map(|i| match cfg.mode {
                Mode::Threaded => {
                    let f = factory.clone();
                    Worker::spawn(i, cfg.ring_cap, move || f(i))
                }
                Mode::Inline => Worker::inline(i, factory(i)),
            })
            .collect();
        let n = cfg.shards;
        ShardedHost {
            cfg,
            workers,
            routes: HashMap::new(),
            out: VecDeque::new(),
            batch_due: None,
            dirty: vec![false; n],
            deadlines: vec![None; n],
            used: vec![0; n],
            conns: vec![0; n],
            floor: Pressure::Nominal,
            routed: vec![0; n],
            unclassified: 0,
        }
    }

    pub fn shard_count(&self) -> usize {
        self.cfg.shards
    }

    /// The current global-ladder floor.
    pub fn global_floor(&self) -> Pressure {
        self.floor
    }

    /// Sum of the last per-shard occupancy samples (what the global
    /// budget tier is derived from).
    pub fn global_used(&self) -> u64 {
        self.used.iter().sum()
    }

    /// Which shard a raw frame routes to.
    pub fn route_of(&self, frame: &[u8]) -> usize {
        S::classify_frame(frame)
            .map(|m| shard_of(self.cfg.seed, &m.tuple_at_dst(), self.cfg.shards))
            .unwrap_or(0)
    }

    /// Pin a peer address to a simulator port (needed only for peers that
    /// have never sent us traffic).
    pub fn set_route(&mut self, addr: u32, port: PortId) {
        self.routes.insert(addr, port);
    }

    /// Snapshot every shard (barrier; shard-index order).
    pub fn snapshots(&mut self) -> Vec<ShardSnapshot> {
        for w in &mut self.workers {
            w.send(Cmd::Snapshot);
        }
        self.workers
            .iter_mut()
            .map(|w| match w.recv() {
                Rep::Snap(s) => *s,
                Rep::Flushed(_) => unreachable!("snapshot reply"),
            })
            .collect()
    }

    /// Fleet-wide counters plus app totals: absorbs every shard's
    /// [`HostCounters`] and sums the app report pairs.
    pub fn aggregate(&mut self) -> (HostCounters, u64, u64) {
        let mut total = HostCounters::default();
        let (mut a, mut b) = (0u64, 0u64);
        for snap in self.snapshots() {
            total.absorb(&snap.counters);
            a = a.saturating_add(snap.app_a);
            b = b.saturating_add(snap.app_b);
        }
        (total, a, b)
    }

    /// One coordination round: flush dirty shards (and, on a tick, shards
    /// with due timers), barrier-collect replies in shard-index order,
    /// merge the stamped output deterministically, route it, and run the
    /// global ladder.
    fn flush_round(&mut self, now: Time, tick: bool) {
        let mut participating = Vec::new();
        for i in 0..self.cfg.shards {
            let timer_due = tick && self.deadlines[i].is_some_and(|d| now >= d);
            if self.dirty[i] || timer_due {
                let cmd = if timer_due { Cmd::Tick(now) } else { Cmd::Flush(now) };
                self.workers[i].send(cmd);
                participating.push(i);
            }
        }
        // Barrier: replies collected in shard-index order. Workers run
        // concurrently between the send loop above and this collect loop;
        // the order we *read* them in is fixed.
        let mut batches = Vec::with_capacity(participating.len());
        for &i in &participating {
            match self.workers[i].recv() {
                Rep::Flushed(fr) => {
                    self.deadlines[i] = fr.deadline;
                    self.used[i] = fr.used;
                    self.conns[i] = fr.conns;
                    batches.push(fr.frames);
                }
                Rep::Snap(_) => unreachable!("flush reply"),
            }
            self.dirty[i] = false;
        }
        for s in merge::merge(batches) {
            let port = S::classify_frame(&s.frame)
                .and_then(|m| self.routes.get(&m.dst.addr).copied())
                .unwrap_or(0);
            self.out.push_back((port, s.frame));
        }
        self.batch_due = None;
        if self.cfg.global_budget > 0 {
            let floor =
                Pressure::from_occupancy(self.global_used(), self.cfg.global_budget as u64);
            if floor != self.floor {
                self.floor = floor;
                for w in &mut self.workers {
                    w.send(Cmd::SetFloor(now, floor));
                }
            }
        }
    }
}

impl<S: HostStack, A: HostApp<S> + AppReport> MultiStack for ShardedHost<S, A> {
    fn on_frame(&mut self, now: Time, port: PortId, frame: &[u8]) {
        let shard = match S::classify_frame(frame) {
            Some(meta) => {
                self.routes.insert(meta.src.addr, port);
                shard_of(self.cfg.seed, &meta.tuple_at_dst(), self.cfg.shards)
            }
            None => {
                self.unclassified = self.unclassified.saturating_add(1);
                0
            }
        };
        self.routed[shard] = self.routed[shard].saturating_add(1);
        self.workers[shard].send(Cmd::Frame(now, frame.to_vec()));
        self.dirty[shard] = true;
        if self.batch_due.is_none() {
            self.batch_due = Some(now + self.cfg.batch_window);
        }
    }

    fn poll_transmit(&mut self, now: Time) -> Option<(PortId, Vec<u8>)> {
        if self.out.is_empty() && self.batch_due.is_some_and(|due| now >= due) {
            self.flush_round(now, false);
        }
        self.out.pop_front()
    }

    fn poll_deadline(&self, _now: Time) -> Option<Time> {
        [self.batch_due]
            .into_iter()
            .chain(self.deadlines.iter().copied())
            .flatten()
            .min()
    }

    fn on_tick(&mut self, now: Time) {
        self.flush_round(now, true);
    }
}
