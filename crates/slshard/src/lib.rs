//! # slshard — an N-way sharded multi-core host with deterministic replay
//!
//! The paper's sublayered decomposition makes demultiplexing an explicitly
//! *stateless* sublayer: which connection (and therefore which shard) a
//! frame belongs to is a pure function of its 4-tuple. `slshard` exploits
//! exactly that property to scale [`slhost`] across cores:
//!
//! - **Routing** is the shared seeded fx 4-tuple hash
//!   ([`tcp_mono::hash::shard_of`]) — the same mix the demux tables use —
//!   so a tuple always lands on the same shard with no shared state.
//! - **Shards** are whole [`slhost::Host`]s (own connection table, timer
//!   wheel, [`slhost::ResourceBudget`], counters) running on real
//!   `std::thread` workers behind bounded SPSC [`ring`]s. The stacks are
//!   not `Send`, so each worker *constructs* its host from a `Send`
//!   factory; only frames and counters cross threads.
//! - **Determinism**: shards stamp emitted frames with a per-shard
//!   logical clock and the coordinator merges them with a stable
//!   shard-index tie-break ([`merge`]). Commands reach each shard in FIFO
//!   ring order and replies are collected shard-by-shard, so the merged
//!   stream is a function of the command history, never of OS
//!   scheduling — threaded runs replay byte-identically, and identically
//!   to the single-threaded [`Mode::Inline`] reference.
//! - **Two-level degradation ladder**: each shard keeps its own byte
//!   budget (defer/shed/refuse, PR 4), and the coordinator sums shard
//!   occupancy against a *global* budget, pushing the resulting tier into
//!   every shard as a pressure **floor**
//!   ([`slhost::Host::set_pressure_floor`]) — one hot host degrades
//!   itself; a hot *fleet* degrades together.
//! - **Fault domains**: each worker runs under `catch_unwind`; a shard
//!   panic closes that shard's rings and surfaces as a typed
//!   [`ShardError`], never a coordinator panic. A [`Supervisor`] watches
//!   per-shard heartbeats in *logical rounds*, classifies shards
//!   Healthy/Stalled/Dead/Failed, and a [`RestartPolicy`] rebuilds dead
//!   shards from the factory with round-based backoff. Faults (panic at
//!   round R, stall K rounds, permanent wedge) inject deterministically
//!   via [`Cmd::Inject`] / [`ShardFaultPlan`], identically in both
//!   modes — crashed runs replay byte-for-byte.
//!
//! `slverify::ShardedOverload` proves budget-never-exceeded for this
//! shape per shard *and* globally, `slverify::ShardFail` proves
//! crash-isolation (one shard's death costs only its own connections);
//! `bench::shard` / `exp_shard` sweep it to 100k+ connections and
//! `bench::failover` / `exp_failover` measure blast radius and recovery.

pub mod fault;
pub mod merge;
pub mod ring;
pub mod shard;
pub mod supervisor;

pub use fault::{mute_injected_panics, FaultKind, FaultSpec, ShardFaultPlan};
pub use merge::{merge, reference_merge, Stamped};
pub use shard::{AppReport, Cmd, FlushRep, Rep, ShardCore, ShardError, ShardSnapshot, Worker};
pub use supervisor::{FaultEvent, FaultEventKind, RestartPolicy, ShardHealth, Supervisor};

use netsim::{Dur, MultiStack, PortId, Time};
use slhost::{HostApp, HostStack, ServedHost};
use slmetrics::{HostCounters, Pressure};
use std::collections::{HashMap, VecDeque};
use std::sync::Arc;
use std::time::Duration;
use tcp_mono::hash::shard_of;

/// Whether shards run on real threads or inline on the caller's thread.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Mode {
    /// Real `std::thread` workers behind SPSC rings.
    Threaded,
    /// Single-threaded reference: same cores, same command streams, same
    /// merge — the oracle the determinism tests compare against.
    Inline,
}

/// Coordinator tuning.
#[derive(Clone, Debug)]
pub struct ShardedConfig {
    /// Number of shards (≥ 1).
    pub shards: usize,
    /// Seed for the routing hash (also a determinism input).
    pub seed: u64,
    /// Frames arriving within this window are flushed to shards as one
    /// round (the coordinator-level analogue of
    /// [`slhost::HostConfig::batch_window`]).
    pub batch_window: Dur,
    /// SPSC ring capacity per direction per shard.
    pub ring_cap: usize,
    /// Global byte budget across all shards; `0` disables the global
    /// ladder level. Occupancy is the sum of per-shard (throttled)
    /// samples; the derived tier is pushed to every shard as a pressure
    /// floor.
    pub global_budget: usize,
    pub mode: Mode,
    /// Supervision: heartbeat thresholds and restart budget/backoff.
    pub restart: RestartPolicy,
    /// Wall-clock bound on a frame send into a full command ring. In a
    /// healthy (or deterministically-faulted) run the workers always
    /// drain and this never fires; it exists so a *truly* stuck worker
    /// costs a counted, dropped frame instead of wedging the fleet.
    pub send_bound_ms: u64,
}

impl Default for ShardedConfig {
    fn default() -> Self {
        ShardedConfig {
            shards: 4,
            seed: 0x51AD,
            batch_window: Dur::ZERO,
            ring_cap: 1024,
            global_budget: 0,
            mode: Mode::Threaded,
            restart: RestartPolicy::default(),
            send_bound_ms: 250,
        }
    }
}

type Factory<S, A> = Arc<dyn Fn(u32) -> ServedHost<S, A> + Send + Sync>;

/// The sharded host front. Implements [`MultiStack`], so it drops into a
/// simulator topology exactly where a single [`slhost::Host`] would.
pub struct ShardedHost<S: HostStack, A: HostApp<S> + AppReport> {
    cfg: ShardedConfig,
    /// `None` = the shard is down (dead or failed); the supervisor knows
    /// which, and whether a rebuild is scheduled.
    slots: Vec<Option<Worker<S, A>>>,
    /// Kept for supervised restarts: dead shards are rebuilt from the
    /// same factory that booted them.
    factory: Factory<S, A>,
    sup: Supervisor,
    /// Coordinator logical clock: one per flush round. Heartbeats,
    /// backoff, and the fault log are all denominated in these.
    coord_round: u64,
    /// Learned peer-address → simulator-port routes (the coordinator owns
    /// routing; shards never see simulator ports).
    routes: HashMap<u32, PortId>,
    out: VecDeque<(PortId, Vec<u8>)>,
    batch_due: Option<Time>,
    /// Shards holding unflushed frames.
    dirty: Vec<bool>,
    /// Cached per-shard timer deadlines (refreshed with every reply, so
    /// `poll_deadline` is thread-free).
    deadlines: Vec<Option<Time>>,
    /// Last reported per-shard occupancy/conn gauges.
    used: Vec<u64>,
    conns: Vec<u64>,
    floor: Pressure,
    /// Frames routed per shard (router-side work-balance view).
    pub routed: Vec<u64>,
    /// Frames that failed classification (routed to shard 0).
    pub unclassified: u64,
}

impl<S: HostStack, A: HostApp<S> + AppReport> ShardedHost<S, A> {
    /// Build the fleet. `factory(i)` constructs shard `i`'s served host;
    /// in threaded mode it runs inside the worker thread (the host is not
    /// `Send`, the factory must be). The factory is retained: the
    /// supervisor rebuilds dead shards from it.
    pub fn new<F>(cfg: ShardedConfig, factory: F) -> Self
    where
        F: Fn(u32) -> ServedHost<S, A> + Send + Sync + 'static,
    {
        assert!(cfg.shards >= 1, "need at least one shard");
        let factory: Factory<S, A> = Arc::new(factory);
        let slots = (0..cfg.shards as u32)
            .map(|i| match cfg.mode {
                Mode::Threaded => {
                    let f = factory.clone();
                    Some(
                        Worker::spawn(i, cfg.ring_cap, 0, move || f(i))
                            .expect("spawn initial shard worker"),
                    )
                }
                Mode::Inline => Some(Worker::inline(i, 0, factory(i))),
            })
            .collect();
        let n = cfg.shards;
        let sup = Supervisor::new(n, cfg.restart);
        ShardedHost {
            cfg,
            slots,
            factory,
            sup,
            coord_round: 0,
            routes: HashMap::new(),
            out: VecDeque::new(),
            batch_due: None,
            dirty: vec![false; n],
            deadlines: vec![None; n],
            used: vec![0; n],
            conns: vec![0; n],
            floor: Pressure::Nominal,
            routed: vec![0; n],
            unclassified: 0,
        }
    }

    pub fn shard_count(&self) -> usize {
        self.cfg.shards
    }

    /// The current global-ladder floor.
    pub fn global_floor(&self) -> Pressure {
        self.floor
    }

    /// Sum of the last per-shard occupancy samples (what the global
    /// budget tier is derived from). Dead shards contribute zero — their
    /// buffered bytes died with them.
    pub fn global_used(&self) -> u64 {
        self.used.iter().sum()
    }

    /// Supervisor state: health, heartbeat ages, restart counts, fault
    /// log, stall/abort gauges.
    pub fn supervisor(&self) -> &Supervisor {
        &self.sup
    }

    /// Health classification of one shard.
    pub fn health(&self, shard: usize) -> ShardHealth {
        self.sup.health(shard)
    }

    /// Every crash/stall/restart event so far, in coordinator-round
    /// order — part of the deterministic transcript of a crashed run.
    pub fn fault_events(&self) -> &[FaultEvent] {
        self.sup.events()
    }

    /// Arm a deterministic fault on one shard (fires when that shard's
    /// logical round reaches `spec.at_round`).
    pub fn inject(&mut self, shard: usize, spec: FaultSpec) -> Result<(), ShardError> {
        match self.slots[shard].as_mut() {
            Some(w) => w.send(Cmd::Inject(spec)),
            None => Err(ShardError::Disconnected),
        }
    }

    /// Arm a whole fault plan (ignores faults aimed at already-dead
    /// shards — consistent with "the plan is advice, death is death").
    pub fn apply_plan(&mut self, plan: &ShardFaultPlan) {
        for &(shard, spec) in &plan.faults {
            let i = shard as usize % self.cfg.shards;
            let _ = self.inject(i, spec);
        }
    }

    /// Which shard a raw frame routes to.
    pub fn route_of(&self, frame: &[u8]) -> usize {
        S::classify_frame(frame)
            .map(|m| shard_of(self.cfg.seed, &m.tuple_at_dst(), self.cfg.shards))
            .unwrap_or(0)
    }

    /// Pin a peer address to a simulator port (needed only for peers that
    /// have never sent us traffic).
    pub fn set_route(&mut self, addr: u32, port: PortId) {
        self.routes.insert(addr, port);
    }

    /// Tear down one shard: drop its worker (closing the rings; the drop
    /// joins unless the worker is truly wedged) and zero every cached
    /// gauge so the global ladder stops counting a ghost.
    fn kill_shard(&mut self, i: usize, kind: FaultEventKind) {
        self.slots[i] = None;
        let lost = self.conns[i];
        self.sup.died(i, self.coord_round, kind, lost);
        self.used[i] = 0;
        self.conns[i] = 0;
        self.deadlines[i] = None;
        self.dirty[i] = false;
    }

    /// Rebuild shards whose restart backoff has elapsed. The replacement
    /// starts its logical clock at the current coordinator round (stamps
    /// stay merge-ordered across the crash) and inherits the current
    /// global floor.
    fn run_restarts(&mut self, now: Time) {
        for i in 0..self.cfg.shards {
            if !self.sup.restart_due(i, self.coord_round) {
                continue;
            }
            let shard = i as u32;
            let start_round = self.coord_round;
            let built = match self.cfg.mode {
                Mode::Threaded => {
                    let f = self.factory.clone();
                    Worker::spawn(shard, self.cfg.ring_cap, start_round, move || f(shard)).ok()
                }
                Mode::Inline => Some(Worker::inline(shard, start_round, (self.factory)(shard))),
            };
            match built {
                Some(mut w) => {
                    if self.floor != Pressure::Nominal {
                        let _ = w.send(Cmd::SetFloor(now, self.floor));
                    }
                    self.slots[i] = Some(w);
                    self.sup.restarted(i, self.coord_round);
                }
                None => self.sup.gave_up(i, self.coord_round),
            }
        }
    }

    /// Snapshot every shard (barrier; shard-index order). Down shards
    /// yield a placeholder carrying only identity + supervision fields.
    pub fn snapshots(&mut self) -> Vec<ShardSnapshot> {
        let mut asked = vec![false; self.cfg.shards];
        for (i, slot) in self.slots.iter_mut().enumerate() {
            if let Some(w) = slot {
                asked[i] = w.send(Cmd::Snapshot).is_ok();
            }
        }
        let mut snaps = Vec::with_capacity(self.cfg.shards);
        for (i, &was_asked) in asked.iter().enumerate() {
            let got = if was_asked {
                match self.slots[i].as_mut().map(|w| w.recv()) {
                    Some(Ok(Rep::Snap(s))) => Some(*s),
                    Some(Ok(Rep::Flushed(_))) => {
                        debug_assert!(false, "snapshot got a flush reply");
                        None
                    }
                    _ => None,
                }
            } else {
                None
            };
            let mut snap = match got {
                Some(s) => s,
                None => {
                    // The worker died between flush and snapshot.
                    if self.slots[i].is_some() {
                        self.kill_shard(i, FaultEventKind::Crashed);
                    }
                    ShardSnapshot { shard: i as u32, ..Default::default() }
                }
            };
            snap.health = self.sup.health(i).as_u8();
            snap.restarts = self.sup.restarts(i);
            snaps.push(snap);
        }
        snaps
    }

    /// Fleet-wide counters plus app totals: absorbs every shard's
    /// [`HostCounters`], sums the app report pairs, and overlays the
    /// supervisor's fleet-health gauges (heartbeat age, restarts,
    /// failover aborts, ring stalls).
    pub fn aggregate(&mut self) -> (HostCounters, u64, u64) {
        let mut total = HostCounters::default();
        let (mut a, mut b) = (0u64, 0u64);
        for snap in self.snapshots() {
            total.absorb(&snap.counters);
            a = a.saturating_add(snap.app_a);
            b = b.saturating_add(snap.app_b);
        }
        total.heartbeat_age = self.sup.max_heartbeat_age();
        total.shard_restarts = self.sup.total_restarts();
        total.failover_aborts = self.sup.failover_aborts;
        total.ring_stalls = self.sup.ring_stalls;
        (total, a, b)
    }

    /// One coordination round: flush dirty shards (and, on a tick, shards
    /// with due timers), barrier-collect replies in shard-index order,
    /// merge the stamped output deterministically, route it, run the
    /// global ladder, then supervise (classify heartbeats, kill wedges,
    /// run due restarts).
    fn flush_round(&mut self, now: Time, tick: bool) {
        self.coord_round += 1;
        let mut participating = Vec::new();
        for i in 0..self.cfg.shards {
            let timer_due = tick && self.deadlines[i].is_some_and(|d| now >= d);
            if !(self.dirty[i] || timer_due) {
                continue;
            }
            let cmd = if timer_due { Cmd::Tick(now) } else { Cmd::Flush(now) };
            match self.slots[i].as_mut() {
                Some(w) => match w.send(cmd) {
                    Ok(()) => participating.push(i),
                    Err(_) => self.kill_shard(i, FaultEventKind::Crashed),
                },
                None => {
                    self.dirty[i] = false;
                }
            }
        }
        // Barrier: replies collected in shard-index order. Workers run
        // concurrently between the send loop above and this collect loop;
        // the order we *read* them in is fixed.
        let mut batches = Vec::with_capacity(participating.len());
        let mut wedged = Vec::new();
        for &i in &participating {
            let rep = self.slots[i].as_mut().map(|w| w.recv());
            match rep {
                Some(Ok(Rep::Flushed(fr))) => {
                    self.deadlines[i] = fr.deadline;
                    self.used[i] = fr.used;
                    self.conns[i] = fr.conns;
                    if fr.stalled {
                        if self.sup.beat_stalled(i) {
                            wedged.push(i);
                        }
                    } else {
                        self.sup.beat_ok(i);
                    }
                    batches.push(fr.frames);
                }
                Some(Ok(Rep::Snap(_))) => {
                    debug_assert!(false, "flush got a snapshot reply");
                }
                _ => self.kill_shard(i, FaultEventKind::Crashed),
            }
            self.dirty[i] = false;
        }
        // A shard that acknowledged `dead_after` consecutive rounds
        // without servicing any is a wedge: kill it so the restart path
        // can replace it.
        for i in wedged {
            self.kill_shard(i, FaultEventKind::DeclaredDead);
        }
        for s in merge::merge(batches) {
            let port = S::classify_frame(&s.frame)
                .and_then(|m| self.routes.get(&m.dst.addr).copied())
                .unwrap_or(0);
            self.out.push_back((port, s.frame));
        }
        self.batch_due = None;
        if self.cfg.global_budget > 0 {
            let floor =
                Pressure::from_occupancy(self.global_used(), self.cfg.global_budget as u64);
            if floor != self.floor {
                self.floor = floor;
                for i in 0..self.cfg.shards {
                    if let Some(w) = self.slots[i].as_mut() {
                        if w.send(Cmd::SetFloor(now, floor)).is_err() {
                            self.kill_shard(i, FaultEventKind::Crashed);
                        }
                    }
                }
            }
        }
        self.run_restarts(now);
        // While a restart is pending, keep the round clock ticking even
        // if no traffic arrives: backoff is counted in rounds, and rounds
        // only happen when something schedules them.
        if self.sup.any_down() {
            let poll = if self.cfg.batch_window > Dur::ZERO {
                self.cfg.batch_window
            } else {
                Dur::from_micros(100)
            };
            self.batch_due = Some(now + poll);
        }
    }
}

impl<S: HostStack, A: HostApp<S> + AppReport> MultiStack for ShardedHost<S, A> {
    fn on_frame(&mut self, now: Time, port: PortId, frame: &[u8]) {
        let shard = match S::classify_frame(frame) {
            Some(meta) => {
                self.routes.insert(meta.src.addr, port);
                shard_of(self.cfg.seed, &meta.tuple_at_dst(), self.cfg.shards)
            }
            None => {
                self.unclassified = self.unclassified.saturating_add(1);
                0
            }
        };
        self.routed[shard] = self.routed[shard].saturating_add(1);
        let bound = Duration::from_millis(self.cfg.send_bound_ms);
        match self.slots[shard].as_mut() {
            Some(w) => match w.send_bounded(Cmd::Frame(now, frame.to_vec()), bound) {
                Ok(()) => self.dirty[shard] = true,
                Err(ShardError::Backlogged) => {
                    // Alive but jammed: drop the frame (TCP retransmit
                    // absorbs the loss) and count the stall instead of
                    // blocking the fleet.
                    self.sup.ring_stalls = self.sup.ring_stalls.saturating_add(1);
                }
                Err(ShardError::Disconnected) => {
                    self.kill_shard(shard, FaultEventKind::Crashed);
                    self.sup.dead_drops = self.sup.dead_drops.saturating_add(1);
                }
            },
            None => {
                // Dead shard: the frame has nowhere to go. Its peer will
                // retransmit; once the shard restarts, the fresh host
                // RSTs unknown tuples and the client reconnects (the
                // typed abort path).
                self.sup.dead_drops = self.sup.dead_drops.saturating_add(1);
            }
        }
        if self.batch_due.is_none() {
            self.batch_due = Some(now + self.cfg.batch_window);
        }
    }

    fn poll_transmit(&mut self, now: Time) -> Option<(PortId, Vec<u8>)> {
        if self.out.is_empty() && self.batch_due.is_some_and(|due| now >= due) {
            self.flush_round(now, false);
        }
        self.out.pop_front()
    }

    fn poll_deadline(&self, _now: Time) -> Option<Time> {
        [self.batch_due]
            .into_iter()
            .chain(self.deadlines.iter().copied())
            .flatten()
            .min()
    }

    fn on_tick(&mut self, now: Time) {
        self.flush_round(now, true);
    }
}
