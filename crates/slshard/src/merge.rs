//! Deterministic cross-shard event merge.
//!
//! Each shard stamps the frames it emits with `(round, shard, seq)`:
//! `round` is the shard's logical clock (incremented once per flush/tick
//! command it processes), `seq` the frame's position within that round.
//! The coordinator merges the per-shard batches into one totally ordered
//! stream keyed by `(round, shard, seq)` — logical clocks first, stable
//! shard-index tie-break — so the merged order is a pure function of the
//! command history and never of OS scheduling. This is what keeps a
//! multi-threaded run byte-replayable.
//!
//! [`reference_merge`] is the single-threaded oracle: throw every stamp
//! into one list and stably sort by the same key. The proptest in
//! `tests/merge_prop.rs` holds the k-way merge equivalent to it for any
//! shard count; the shard determinism tests hold the *system* built on it
//! byte-identical across runs and thread modes.

/// A frame stamped for deterministic merging.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Stamped {
    /// The emitting shard's logical clock at emission.
    pub round: u64,
    /// Emitting shard index — the stable tie-break within a round.
    pub shard: u32,
    /// Position within (round, shard); per-shard emission order.
    pub seq: u32,
    pub frame: Vec<u8>,
}

impl Stamped {
    fn key(&self) -> (u64, u32, u32) {
        (self.round, self.shard, self.seq)
    }
}

/// K-way merge of per-shard batches. Each batch must be internally
/// ordered by `(round, seq)` — which per-shard emission guarantees: the
/// logical clock only moves forward and `seq` counts up within a round.
pub fn merge(batches: Vec<Vec<Stamped>>) -> Vec<Stamped> {
    let total: usize = batches.iter().map(Vec::len).sum();
    let mut out = Vec::with_capacity(total);
    let mut cursors: Vec<std::vec::IntoIter<Stamped>> =
        batches.into_iter().map(Vec::into_iter).collect();
    let mut heads: Vec<Option<Stamped>> = cursors.iter_mut().map(Iterator::next).collect();
    loop {
        // Smallest head by (round, shard, seq); scanning the (small,
        // = shard count) head array beats a heap at the sizes we run.
        let mut best: Option<usize> = None;
        for (i, h) in heads.iter().enumerate() {
            if let Some(s) = h {
                match best {
                    Some(b) if heads[b].as_ref().is_some_and(|bs| bs.key() <= s.key()) => {}
                    _ => best = Some(i),
                }
            }
        }
        let Some(i) = best else { break };
        let next = cursors[i].next();
        if let Some(s) = std::mem::replace(&mut heads[i], next) {
            out.push(s);
        }
    }
    out
}

/// The single-threaded reference interleaving: one flat stable sort by
/// the merge key. [`merge`] must be observationally equal to this.
pub fn reference_merge(mut all: Vec<Stamped>) -> Vec<Stamped> {
    all.sort_by_key(Stamped::key);
    all
}

#[cfg(test)]
mod tests {
    use super::*;

    fn s(round: u64, shard: u32, seq: u32, b: u8) -> Stamped {
        Stamped { round, shard, seq, frame: vec![b] }
    }

    #[test]
    fn merges_by_round_then_shard_then_seq() {
        let merged = merge(vec![
            vec![s(0, 0, 0, 1), s(2, 0, 0, 2)],
            vec![s(0, 1, 0, 3), s(0, 1, 1, 4), s(1, 1, 0, 5)],
        ]);
        let order: Vec<u8> = merged.iter().map(|x| x.frame[0]).collect();
        assert_eq!(order, vec![1, 3, 4, 5, 2]);
    }

    #[test]
    fn equals_reference_on_a_known_case() {
        let batches = vec![
            vec![s(0, 0, 0, 10), s(1, 0, 0, 11), s(1, 0, 1, 12)],
            vec![],
            vec![s(0, 2, 0, 20), s(3, 2, 0, 21)],
            vec![s(1, 3, 0, 30)],
        ];
        let flat: Vec<Stamped> = batches.iter().flatten().cloned().collect();
        assert_eq!(merge(batches), reference_merge(flat));
    }

    #[test]
    fn empty_input_is_fine() {
        assert!(merge(vec![]).is_empty());
        assert!(merge(vec![vec![], vec![]]).is_empty());
    }
}
