//! System-level determinism for [`slshard::ShardedHost`]:
//!
//! 1. Two threaded runs of the same workload replay identically — same
//!    per-client byte streams, timestamps, and server counters — even
//!    though shards run on real OS threads.
//! 2. A threaded run is identical to the single-threaded [`Mode::Inline`]
//!    reference (same cores, same command streams, no threads), which is
//!    the system-level form of the merge's reference cross-check.
//! 3. Shard-count invariance: the final per-connection byte streams are
//!    identical for N=1 and N=4 shards (routing spreads work; it must not
//!    change what any connection observes).

use netsim::{Dur, LinkParams, MultiStackNode, Stack, StackNode, Time};
use slhost::{EchoApp, Host, HostConfig, HostStack, ServedHost};
use slshard::{Mode, ShardedConfig, ShardedHost};
use sublayer_core::{SlConfig, SlTcpStack};
use tcp_mono::stack::TcpStack;
use tcp_mono::wire::Endpoint;

const SERVER_ADDR: u32 = 0x0A00_0001;
const CLIENT_BASE: u32 = 0x0A01_0000;
const PORT: u16 = 80;
const CLIENT_PORT: u16 = 5000;

fn dur(ns: u64) -> Dur {
    Dur::from_nanos(ns)
}

/// Deterministic per-client request with diverse lengths (64..264 B).
fn request(i: usize) -> Vec<u8> {
    let len = 64 + (i * 37) % 200;
    (0..len).map(|j| ((i * 131 + j * 7) % 251) as u8).collect()
}

#[derive(Clone, Copy, PartialEq, Eq)]
enum Phase {
    Idle,
    Connecting,
    Await,
    Closing,
    Done,
    Failed,
}

/// Minimal scripted echo client: connect → send → collect the full echo →
/// close. Keeps every received byte so tests can compare final streams.
struct EchoClient<S: HostStack> {
    stack: S,
    server: Endpoint,
    req: Vec<u8>,
    phase: Phase,
    conn: Option<S::ConnId>,
    got: Vec<u8>,
    connect_at: Time,
    done_at: Option<Time>,
}

impl<S: HostStack> EchoClient<S> {
    fn new(stack: S, connect_at: Time, req: Vec<u8>) -> Self {
        EchoClient {
            stack,
            server: Endpoint::new(SERVER_ADDR, PORT),
            req,
            phase: Phase::Idle,
            conn: None,
            got: Vec::new(),
            connect_at,
            done_at: None,
        }
    }

    fn drive(&mut self, now: Time) {
        if let Some(id) = self.conn {
            if self.phase != Phase::Failed && self.stack.conn_error(id).is_some() {
                self.phase = Phase::Failed;
            }
        }
        loop {
            match self.phase {
                Phase::Idle => {
                    if now < self.connect_at {
                        return;
                    }
                    match self.stack.try_connect(now, CLIENT_PORT, self.server) {
                        Ok(id) => {
                            self.conn = Some(id);
                            self.phase = Phase::Connecting;
                        }
                        Err(_) => self.phase = Phase::Failed,
                    }
                }
                Phase::Connecting => {
                    let id = self.conn.expect("connected past Idle");
                    if !self.stack.is_established(id) {
                        return;
                    }
                    self.stack.send(id, &self.req);
                    self.phase = Phase::Await;
                }
                Phase::Await => {
                    let id = self.conn.expect("connected past Idle");
                    let data = self.stack.recv(id);
                    self.got.extend_from_slice(&data);
                    if self.got.len() < self.req.len() {
                        return;
                    }
                    self.done_at = Some(now);
                    self.stack.close(id);
                    self.phase = Phase::Closing;
                }
                Phase::Closing => {
                    let id = self.conn.expect("connected past Idle");
                    if !self.stack.is_closed(id) {
                        return;
                    }
                    self.phase = Phase::Done;
                }
                Phase::Done | Phase::Failed => return,
            }
        }
    }
}

impl<S: HostStack> Stack for EchoClient<S> {
    fn on_frame(&mut self, now: Time, frame: &[u8]) {
        Stack::on_frame(&mut self.stack, now, frame);
        self.drive(now);
    }

    fn poll_transmit(&mut self, now: Time) -> Option<Vec<u8>> {
        Stack::poll_transmit(&mut self.stack, now)
    }

    fn poll_deadline(&self, now: Time) -> Option<Time> {
        let own = (self.phase == Phase::Idle).then_some(self.connect_at);
        [own, Stack::poll_deadline(&self.stack, now)].into_iter().flatten().min()
    }

    fn on_tick(&mut self, now: Time) {
        Stack::on_tick(&mut self.stack, now);
        self.drive(now);
    }
}

/// Everything one run exposes for comparison.
struct CaseResult {
    /// Per client: reached `Done`, final received byte stream, finish time.
    per_client: Vec<(bool, Vec<u8>, Option<Time>)>,
    /// Full canonical transcript (clients + aggregated server counters +
    /// router balance) — byte-compared across runs and modes.
    transcript: String,
}

fn run_case<S, F, G>(mode: Mode, shards: usize, n: usize, mk_server: F, mk_client: G) -> CaseResult
where
    S: HostStack,
    F: Fn(u32) -> S + Send + Sync + 'static,
    G: Fn(u32) -> S,
{
    let cfg = ShardedConfig {
        shards,
        seed: 0x51AD,
        batch_window: Dur::ZERO,
        ring_cap: 64,
        global_budget: 0,
        mode,
        ..ShardedConfig::default()
    };
    let server = ShardedHost::new(cfg, move |_shard| {
        ServedHost::new(
            Host::new(
                mk_server(SERVER_ADDR),
                HostConfig { listen_port: PORT, backlog: 64, ..HostConfig::default() },
            ),
            EchoApp::default(),
        )
    });
    let clients: Vec<EchoClient<S>> = (0..n)
        .map(|i| {
            EchoClient::new(
                mk_client(CLIENT_BASE + i as u32),
                Time(1_000_000 + 100_000 * i as u64),
                request(i),
            )
        })
        .collect();
    let (mut net, sid, cids) =
        netsim::star(7, server, clients, LinkParams::delay_only(dur(1_000_000)));
    net.poll_all();
    // Echoes finish within ~10 ms; the horizon must additionally outlast
    // the active closer's 10 s TIME_WAIT so clients reach `Done`.
    net.run_until(Time(15_000_000_000));

    let mut per_client = Vec::with_capacity(n);
    let mut transcript = String::new();
    for (i, &cid) in cids.iter().enumerate() {
        let c = &net.node::<StackNode<EchoClient<S>>>(cid).stack;
        let done = c.phase == Phase::Done;
        transcript.push_str(&format!(
            "client {i}: done={done} got={} at={:?}\n",
            c.got.len(),
            c.done_at.map(|t| t.nanos())
        ));
        per_client.push((done, c.got.clone(), c.done_at));
    }
    let srv = &mut net.node_mut::<MultiStackNode<ShardedHost<S, EchoApp>>>(sid).stack;
    let (k, echoed, served) = srv.aggregate();
    transcript.push_str(&format!(
        "server: accepts={} frames_in={} frames_out={} events={} echoed={} served={} \
         routed={:?} unclassified={}\n",
        k.accepts,
        k.frames_in,
        k.frames_out,
        k.events_dispatched,
        echoed,
        served,
        srv.routed,
        srv.unclassified
    ));
    CaseResult { per_client, transcript }
}

fn sub_stack(addr: u32) -> SlTcpStack {
    SlTcpStack::new(addr, SlConfig::default(), slmetrics::muted())
}

fn mono_stack(addr: u32) -> TcpStack {
    TcpStack::new(addr, slmetrics::muted())
}

fn assert_all_complete(r: &CaseResult, n: usize) {
    for (i, (done, got, _)) in r.per_client.iter().enumerate() {
        assert!(*done, "client {i} did not complete:\n{}", r.transcript);
        assert_eq!(got, &request(i), "client {i} echo corrupted");
    }
    assert_eq!(r.per_client.len(), n);
}

#[test]
fn two_threaded_runs_replay_identically() {
    let a = run_case(Mode::Threaded, 4, 48, sub_stack, sub_stack);
    let b = run_case(Mode::Threaded, 4, 48, sub_stack, sub_stack);
    assert_all_complete(&a, 48);
    assert_eq!(a.transcript, b.transcript, "threaded replay diverged");
}

#[test]
fn threaded_matches_inline_reference() {
    let t = run_case(Mode::Threaded, 4, 48, sub_stack, sub_stack);
    let i = run_case(Mode::Inline, 4, 48, sub_stack, sub_stack);
    assert_all_complete(&t, 48);
    assert_eq!(t.transcript, i.transcript, "threaded diverged from inline reference");
}

#[test]
fn mono_stack_threaded_matches_inline() {
    let t = run_case(Mode::Threaded, 2, 32, mono_stack, mono_stack);
    let i = run_case(Mode::Inline, 2, 32, mono_stack, mono_stack);
    assert_all_complete(&t, 32);
    assert_eq!(t.transcript, i.transcript, "mono threaded diverged from inline");
}

#[test]
fn shard_count_invariance_one_vs_four() {
    let one = run_case(Mode::Threaded, 1, 40, sub_stack, sub_stack);
    let four = run_case(Mode::Threaded, 4, 40, sub_stack, sub_stack);
    assert_all_complete(&one, 40);
    assert_all_complete(&four, 40);
    for (i, (a, b)) in one.per_client.iter().zip(four.per_client.iter()).enumerate() {
        assert_eq!(a.1, b.1, "client {i} final byte stream differs between N=1 and N=4");
    }
}
