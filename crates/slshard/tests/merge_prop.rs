//! Property tests for the deterministic cross-shard merge: the k-way
//! merge must be observationally equal to the single-threaded reference
//! interleaving (one flat stable sort by the merge key) for random
//! workloads at any shard count in {1, 2, 4, 8}.

use proptest::{collection, num, prop_assert, prop_assert_eq, proptest};
use slshard::{merge, reference_merge, Stamped};

const SHARD_COUNTS: [usize; 4] = [1, 2, 4, 8];

/// Decode a byte script into valid per-shard batches: each byte either
/// advances one shard's logical clock or emits a frame on it, so every
/// batch is ordered by `(round, seq)` exactly the way a real shard emits.
fn batches_from_script(shards: usize, script: &[u8]) -> Vec<Vec<Stamped>> {
    let mut rounds = vec![0u64; shards];
    let mut seqs = vec![0u32; shards];
    let mut batches = vec![Vec::new(); shards];
    for (i, &b) in script.iter().enumerate() {
        let s = (b as usize >> 2) % shards;
        if b & 3 == 0 {
            rounds[s] += 1;
            seqs[s] = 0;
        } else {
            batches[s].push(Stamped {
                round: rounds[s],
                shard: s as u32,
                seq: seqs[s],
                frame: vec![b, i as u8],
            });
            seqs[s] += 1;
        }
    }
    batches
}

proptest! {
    #[test]
    fn merge_equals_reference(
        k in 0usize..4,
        script in collection::vec(num::u8::ANY, 0..96),
    ) {
        let shards = SHARD_COUNTS[k];
        let batches = batches_from_script(shards, &script);
        let flat: Vec<Stamped> = batches.iter().flatten().cloned().collect();
        prop_assert_eq!(merge(batches), reference_merge(flat));
    }

    #[test]
    fn merge_is_lossless_and_totally_ordered(
        k in 0usize..4,
        script in collection::vec(num::u8::ANY, 0..96),
    ) {
        let shards = SHARD_COUNTS[k];
        let batches = batches_from_script(shards, &script);
        let total: usize = batches.iter().map(Vec::len).sum();
        let merged = merge(batches);
        prop_assert_eq!(merged.len(), total);
        // Keys are unique by construction, so the order is strict.
        for w in merged.windows(2) {
            prop_assert!(
                (w[0].round, w[0].shard, w[0].seq) < (w[1].round, w[1].shard, w[1].seq)
            );
        }
    }
}
