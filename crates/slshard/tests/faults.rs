//! Fault-domain isolation for [`slshard::ShardedHost`]: an injected shard
//! crash (panic / stall / wedge) must
//!
//! 1. abort only that shard's connections — every client homed on a
//!    healthy shard finishes with a transcript byte-identical to a
//!    no-fault baseline run;
//! 2. leave the run deterministic — two threaded runs of the same crash
//!    schedule replay identically, and threaded matches the
//!    single-threaded [`Mode::Inline`] reference, fault log included;
//! 3. recover per policy — with restarts enabled the victim shard comes
//!    back and serves *new* connections (victims reconnect to their home
//!    shard and complete); with restarts disabled the victims get typed
//!    errors and the blast radius is still one shard.
//!
//! Victim clients reconnect on a fresh local port chosen so the 4-tuple
//! still hashes to their home shard — the deterministic analogue of an OS
//! picking a new ephemeral port.

use netsim::stack::TransportError;
use netsim::{Dur, LinkParams, MultiStackNode, Stack, StackNode, Time};
use slhost::{EchoApp, Host, HostConfig, HostStack, ServedHost};
use slshard::{
    mute_injected_panics, FaultEventKind, FaultKind, FaultSpec, Mode, RestartPolicy,
    ShardFaultPlan, ShardHealth, ShardedConfig, ShardedHost,
};
use sublayer_core::{KeepaliveConfig, SlConfig, SlTcpStack};
use tcp_mono::hash::shard_of;
use tcp_mono::stack::{Keepalive, TcpStack};
use tcp_mono::wire::{Endpoint, FourTuple};

const SERVER_ADDR: u32 = 0x0A00_0001;
const CLIENT_BASE: u32 = 0x0A01_0000;
const PORT: u16 = 80;
const CLIENT_PORT: u16 = 5000;
const SEED: u64 = 0x51AD;

fn dur(ns: u64) -> Dur {
    Dur::from_nanos(ns)
}

fn request(i: usize) -> Vec<u8> {
    let len = 64 + (i * 37) % 200;
    (0..len).map(|j| ((i * 131 + j * 7) % 251) as u8).collect()
}

/// First `k` local ports (from `CLIENT_PORT` up) whose 4-tuple hashes to
/// the same shard as the client's first port — so every reconnect attempt
/// lands back on the client's home shard.
fn home_ports(caddr: u32, shards: usize, k: usize) -> (usize, Vec<u16>) {
    let tuple = |p: u16| FourTuple {
        local: Endpoint::new(SERVER_ADDR, PORT),
        remote: Endpoint::new(caddr, p),
    };
    let home = shard_of(SEED, &tuple(CLIENT_PORT), shards);
    let mut ports = Vec::with_capacity(k);
    let mut p = CLIENT_PORT;
    while ports.len() < k {
        if shard_of(SEED, &tuple(p), shards) == home {
            ports.push(p);
        }
        p += 1;
    }
    (home, ports)
}

#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum Phase {
    Idle,
    Connecting,
    Await,
    Closing,
    RetryWait,
    Done,
    Failed,
}

/// Echo client with typed-error-driven reconnect: on a connection error
/// it abandons the attempt and retries (bounded) from the next home
/// port. `done_at` means the full echo arrived on *some* attempt.
struct FailClient<S: HostStack> {
    stack: S,
    server: Endpoint,
    req: Vec<u8>,
    ports: Vec<u16>,
    attempt: usize,
    retries: usize,
    phase: Phase,
    conn: Option<S::ConnId>,
    got: Vec<u8>,
    connect_at: Time,
    retry_at: Time,
    done_at: Option<Time>,
    first_error: Option<TransportError>,
}

impl<S: HostStack> FailClient<S> {
    fn new(stack: S, connect_at: Time, req: Vec<u8>, ports: Vec<u16>, retries: usize) -> Self {
        FailClient {
            stack,
            server: Endpoint::new(SERVER_ADDR, PORT),
            req,
            ports,
            attempt: 0,
            retries,
            phase: Phase::Idle,
            conn: None,
            got: Vec::new(),
            connect_at,
            retry_at: Time::ZERO,
            done_at: None,
            first_error: None,
        }
    }

    fn connect(&mut self, now: Time) {
        let port = self.ports[self.attempt % self.ports.len()];
        match self.stack.try_connect(now, port, self.server) {
            Ok(id) => {
                self.conn = Some(id);
                self.phase = Phase::Connecting;
            }
            Err(e) => {
                if self.first_error.is_none() {
                    self.first_error = Some(e);
                }
                self.phase = Phase::Failed;
            }
        }
    }

    fn drive(&mut self, now: Time) {
        if let Some(id) = self.conn {
            match self.phase {
                Phase::Connecting | Phase::Await => {
                    if let Some(e) = self.stack.conn_error(id) {
                        if self.first_error.is_none() {
                            self.first_error = Some(e);
                        }
                        self.conn = None;
                        self.got.clear();
                        if self.attempt < self.retries {
                            self.attempt += 1;
                            self.retry_at = now + Dur::from_millis(200);
                            self.phase = Phase::RetryWait;
                        } else {
                            self.phase = Phase::Failed;
                        }
                    }
                }
                Phase::Closing if self.stack.conn_error(id).is_some() => {
                    // Data already delivered in full; the error only
                    // tore down the TIME_WAIT shell.
                    self.conn = None;
                    self.phase = Phase::Done;
                }
                _ => {}
            }
        }
        loop {
            match self.phase {
                Phase::Idle => {
                    if now < self.connect_at {
                        return;
                    }
                    self.connect(now);
                }
                Phase::RetryWait => {
                    if now < self.retry_at {
                        return;
                    }
                    self.connect(now);
                }
                Phase::Connecting => {
                    let id = self.conn.expect("connected past Idle");
                    if !self.stack.is_established(id) {
                        return;
                    }
                    self.stack.send(id, &self.req);
                    self.phase = Phase::Await;
                }
                Phase::Await => {
                    let id = self.conn.expect("connected past Idle");
                    let data = self.stack.recv(id);
                    self.got.extend_from_slice(&data);
                    if self.got.len() < self.req.len() {
                        return;
                    }
                    self.done_at = Some(now);
                    self.stack.close(id);
                    self.phase = Phase::Closing;
                }
                Phase::Closing => {
                    let id = self.conn.expect("connected past Idle");
                    if !self.stack.is_closed(id) {
                        return;
                    }
                    self.phase = Phase::Done;
                }
                Phase::Done | Phase::Failed => return,
            }
        }
    }
}

impl<S: HostStack> Stack for FailClient<S> {
    fn on_frame(&mut self, now: Time, frame: &[u8]) {
        Stack::on_frame(&mut self.stack, now, frame);
        self.drive(now);
    }

    fn poll_transmit(&mut self, now: Time) -> Option<Vec<u8>> {
        Stack::poll_transmit(&mut self.stack, now)
    }

    fn poll_deadline(&self, now: Time) -> Option<Time> {
        let own = match self.phase {
            Phase::Idle => Some(self.connect_at),
            Phase::RetryWait => Some(self.retry_at),
            _ => None,
        };
        [own, Stack::poll_deadline(&self.stack, now)].into_iter().flatten().min()
    }

    fn on_tick(&mut self, now: Time) {
        Stack::on_tick(&mut self.stack, now);
        self.drive(now);
    }
}

struct ClientOut {
    complete: bool,
    got: Vec<u8>,
    done_at: Option<Time>,
    attempts: usize,
    first_error: Option<TransportError>,
    home: usize,
}

struct FaultRun {
    clients: Vec<ClientOut>,
    /// Canonical transcript: per-client outcomes + fault log + fleet
    /// gauges. Byte-compared across reruns and modes.
    transcript: String,
    /// Per shard: did it ever die (crash or declared-dead wedge)?
    crashed: Vec<bool>,
    health: Vec<ShardHealth>,
    restarts: u64,
}

#[allow(clippy::too_many_arguments)]
fn run_fault<S, F, G>(
    mode: Mode,
    shards: usize,
    n: usize,
    policy: RestartPolicy,
    plan: Option<&ShardFaultPlan>,
    retries: usize,
    horizon: Time,
    mk_server: F,
    mk_client: G,
) -> FaultRun
where
    S: HostStack,
    F: Fn(u32) -> S + Send + Sync + 'static,
    G: Fn(u32) -> S,
{
    mute_injected_panics();
    let cfg = ShardedConfig {
        shards,
        seed: SEED,
        batch_window: Dur::ZERO,
        ring_cap: 64,
        global_budget: 0,
        mode,
        restart: policy,
        ..ShardedConfig::default()
    };
    let mut server = ShardedHost::new(cfg, move |_shard| {
        ServedHost::new(
            Host::new(
                mk_server(SERVER_ADDR),
                HostConfig { listen_port: PORT, backlog: 64, ..HostConfig::default() },
            ),
            EchoApp::default(),
        )
    });
    if let Some(p) = plan {
        server.apply_plan(p);
    }
    let mut homes = Vec::with_capacity(n);
    let clients: Vec<FailClient<S>> = (0..n)
        .map(|i| {
            let caddr = CLIENT_BASE + i as u32;
            let (home, ports) = home_ports(caddr, shards, retries + 1);
            homes.push(home);
            FailClient::new(
                mk_client(caddr),
                Time(1_000_000 + 100_000 * i as u64),
                request(i),
                ports,
                retries,
            )
        })
        .collect();
    let (mut net, sid, cids) =
        netsim::star(7, server, clients, LinkParams::delay_only(dur(1_000_000)));
    net.poll_all();
    net.run_until(horizon);

    let mut out = Vec::with_capacity(n);
    let mut transcript = String::new();
    for (i, &cid) in cids.iter().enumerate() {
        let c = &net.node::<StackNode<FailClient<S>>>(cid).stack;
        let complete = c.done_at.is_some() && c.got == c.req;
        transcript.push_str(&format!(
            "client {i}: home={} complete={complete} got={} at={:?} attempts={} err={:?}\n",
            homes[i],
            c.got.len(),
            c.done_at.map(|t| t.nanos()),
            c.attempt,
            c.first_error,
        ));
        out.push(ClientOut {
            complete,
            got: c.got.clone(),
            done_at: c.done_at,
            attempts: c.attempt,
            first_error: c.first_error,
            home: homes[i],
        });
    }
    let srv = &mut net.node_mut::<MultiStackNode<ShardedHost<S, EchoApp>>>(sid).stack;
    let (k, echoed, served) = srv.aggregate();
    let mut crashed = vec![false; shards];
    for e in srv.fault_events() {
        transcript.push_str(&format!(
            "event: round={} shard={} kind={}\n",
            e.round,
            e.shard,
            e.kind.label()
        ));
        if matches!(e.kind, FaultEventKind::Crashed | FaultEventKind::DeclaredDead) {
            crashed[e.shard as usize] = true;
        }
    }
    let health: Vec<ShardHealth> = (0..shards).map(|i| srv.health(i)).collect();
    transcript.push_str(&format!(
        "server: accepts={} echoed={} served={} routed={:?} unclassified={} \
         health={:?} heartbeat_age={} restarts={} failover_aborts={} ring_stalls={} dead_drops={}\n",
        k.accepts,
        echoed,
        served,
        srv.routed,
        srv.unclassified,
        health.iter().map(|h| h.as_u8()).collect::<Vec<_>>(),
        k.heartbeat_age,
        k.shard_restarts,
        k.failover_aborts,
        k.ring_stalls,
        srv.supervisor().dead_drops,
    ));
    FaultRun { clients: out, transcript, crashed, health, restarts: k.shard_restarts }
}

fn sub_stack(addr: u32) -> SlTcpStack {
    SlTcpStack::new(addr, SlConfig::default(), slmetrics::muted())
}

fn mono_stack(addr: u32) -> TcpStack {
    TcpStack::new(addr, slmetrics::muted())
}

/// Client stacks run with keepalive armed (10 s / 2 s / x5): a victim
/// whose request was fully ACKed sits in `Await` with nothing in flight,
/// so only a keepalive probe can turn a silently-dead shard into a typed
/// error (the same configuration PR 6's topology campaigns use).
fn sub_client(addr: u32) -> SlTcpStack {
    let cfg = SlConfig {
        keepalive: Some(KeepaliveConfig {
            idle: Dur::from_secs(10),
            interval: Dur::from_secs(2),
            max_probes: 5,
        }),
        ..SlConfig::default()
    };
    SlTcpStack::new(addr, cfg, slmetrics::muted())
}

fn mono_client(addr: u32) -> TcpStack {
    let mut s = TcpStack::new(addr, slmetrics::muted());
    s.set_keepalive(Keepalive {
        idle: Dur::from_secs(10),
        interval: Dur::from_secs(2),
        max_probes: 5,
    });
    s
}

/// Healthy-shard clients must be untouched by the crash: identical byte
/// stream, identical completion time, no errors, no retries.
fn assert_healthy_isolated(baseline: &FaultRun, faulted: &FaultRun) {
    for (i, (b, f)) in baseline.clients.iter().zip(faulted.clients.iter()).enumerate() {
        if faulted.crashed[f.home] {
            continue;
        }
        assert!(f.complete, "healthy client {i} (shard {}) did not complete:\n{}", f.home, faulted.transcript);
        assert_eq!(f.first_error, None, "healthy client {i} saw an error");
        assert_eq!(f.attempts, 0, "healthy client {i} had to retry");
        assert_eq!(f.got, b.got, "healthy client {i} byte stream changed");
        assert_eq!(f.done_at, b.done_at, "healthy client {i} finish time changed");
    }
}

const RESTART_HORIZON: Time = Time(60_000_000_000);
// No-restart victims only error after data-RTO exhaustion (10 retries,
// RTO doubling toward 60 s): give the run a few hundred virtual seconds.
const NO_RESTART_HORIZON: Time = Time(400_000_000_000);

#[test]
fn injected_panic_kills_only_its_shard_and_restarts() {
    let shards = 4;
    let n = 16;
    let policy = RestartPolicy::default();
    let baseline = run_fault(
        Mode::Threaded, shards, n, policy, None, 3, RESTART_HORIZON, sub_stack, sub_client,
    );
    assert!(baseline.clients.iter().all(|c| c.complete), "baseline incomplete:\n{}", baseline.transcript);
    // Crash the shard client 0 homes on, mid-traffic.
    let victim = baseline.clients[0].home as u32;
    let plan = ShardFaultPlan {
        faults: vec![(victim, FaultSpec { at_round: 6, kind: FaultKind::Panic })],
    };
    let faulted = run_fault(
        Mode::Threaded, shards, n, policy, Some(&plan), 3, RESTART_HORIZON, sub_stack, sub_client,
    );
    assert!(faulted.crashed[victim as usize], "victim never crashed:\n{}", faulted.transcript);
    assert!(
        faulted.crashed.iter().filter(|&&c| c).count() == 1,
        "blast radius exceeded one shard:\n{}",
        faulted.transcript
    );
    assert!(faulted.restarts >= 1, "victim was not restarted:\n{}", faulted.transcript);
    assert_eq!(faulted.health[victim as usize], ShardHealth::Healthy, "victim not back in rotation");
    assert_healthy_isolated(&baseline, &faulted);
    // Recovery: every client — victims included, via reconnect to the
    // restarted home shard — completes with an intact echo.
    for (i, c) in faulted.clients.iter().enumerate() {
        assert!(c.complete, "client {i} never recovered:\n{}", faulted.transcript);
        assert_eq!(c.got, request(i), "client {i} echo corrupted after failover");
    }
}

#[test]
fn crashed_runs_replay_byte_identically() {
    let plan = ShardFaultPlan {
        faults: vec![
            (1, FaultSpec { at_round: 5, kind: FaultKind::Panic }),
            (2, FaultSpec { at_round: 9, kind: FaultKind::Stall(4) }),
        ],
    };
    let policy = RestartPolicy::default();
    let a = run_fault(
        Mode::Threaded, 4, 12, policy, Some(&plan), 2, RESTART_HORIZON, sub_stack, sub_client,
    );
    let b = run_fault(
        Mode::Threaded, 4, 12, policy, Some(&plan), 2, RESTART_HORIZON, sub_stack, sub_client,
    );
    assert_eq!(a.transcript, b.transcript, "crashed threaded replay diverged");
    assert!(
        a.transcript.contains("kind=crashed") && a.transcript.contains("kind=restarted"),
        "transcript lost the crash/restart events:\n{}",
        a.transcript
    );
}

#[test]
fn threaded_crash_matches_inline_reference() {
    let plan = ShardFaultPlan {
        faults: vec![(0, FaultSpec { at_round: 7, kind: FaultKind::Panic })],
    };
    let policy = RestartPolicy::default();
    let t = run_fault(
        Mode::Threaded, 2, 10, policy, Some(&plan), 2, RESTART_HORIZON, sub_stack, sub_client,
    );
    let i = run_fault(
        Mode::Inline, 2, 10, policy, Some(&plan), 2, RESTART_HORIZON, sub_stack, sub_client,
    );
    assert_eq!(t.transcript, i.transcript, "crashed threaded diverged from inline reference");
}

#[test]
fn mono_stack_crash_matches_inline() {
    let plan = ShardFaultPlan {
        faults: vec![(1, FaultSpec { at_round: 6, kind: FaultKind::Panic })],
    };
    let policy = RestartPolicy::default();
    let t = run_fault(
        Mode::Threaded, 2, 10, policy, Some(&plan), 2, RESTART_HORIZON, mono_stack, mono_client,
    );
    let i = run_fault(
        Mode::Inline, 2, 10, policy, Some(&plan), 2, RESTART_HORIZON, mono_stack, mono_client,
    );
    assert_eq!(t.transcript, i.transcript, "mono crashed threaded diverged from inline");
}

#[test]
fn no_restart_policy_blast_radius_is_one_shard() {
    let shards = 4;
    let n = 16;
    let baseline = run_fault(
        Mode::Threaded, shards, n, RestartPolicy::never(), None, 0, NO_RESTART_HORIZON,
        sub_stack, sub_client,
    );
    let victim = baseline.clients[0].home as u32;
    let plan = ShardFaultPlan {
        faults: vec![(victim, FaultSpec { at_round: 6, kind: FaultKind::Panic })],
    };
    let faulted = run_fault(
        Mode::Threaded, shards, n, RestartPolicy::never(), Some(&plan), 0, NO_RESTART_HORIZON,
        sub_stack, sub_client,
    );
    assert_eq!(faulted.health[victim as usize], ShardHealth::Failed, "no-restart victim must stay failed");
    assert_eq!(faulted.restarts, 0);
    assert_healthy_isolated(&baseline, &faulted);
    // Victims: either finished before the crash or saw a typed error —
    // never a hang past the (generous) horizon, never a panic.
    for (i, c) in faulted.clients.iter().enumerate() {
        if c.home == victim as usize {
            assert!(
                c.complete || c.first_error.is_some(),
                "victim client {i} neither finished nor errored:\n{}",
                faulted.transcript
            );
        }
    }
}

#[test]
fn wedge_is_declared_dead_and_restarted() {
    let shards = 2;
    let n = 10;
    let policy = RestartPolicy::default();
    let baseline = run_fault(
        Mode::Threaded, shards, n, policy, None, 3, RESTART_HORIZON, sub_stack, sub_client,
    );
    let victim = baseline.clients[0].home as u32;
    let plan = ShardFaultPlan {
        faults: vec![(victim, FaultSpec { at_round: 5, kind: FaultKind::Wedge })],
    };
    let faulted = run_fault(
        Mode::Threaded, shards, n, policy, Some(&plan), 3, RESTART_HORIZON, sub_stack, sub_client,
    );
    assert!(
        faulted.transcript.contains("kind=declared-dead"),
        "wedge was not declared dead:\n{}",
        faulted.transcript
    );
    assert!(faulted.restarts >= 1, "wedged shard was not replaced:\n{}", faulted.transcript);
    assert_healthy_isolated(&baseline, &faulted);
    for (i, c) in faulted.clients.iter().enumerate() {
        assert!(c.complete, "client {i} never recovered from the wedge:\n{}", faulted.transcript);
    }
}

#[test]
fn transient_stall_recovers_without_restart() {
    let shards = 2;
    let n = 10;
    // dead_after high enough that a 3-round stall never escalates.
    let policy = RestartPolicy { dead_after: 8, ..Default::default() };
    let baseline = run_fault(
        Mode::Threaded, shards, n, policy, None, 0, RESTART_HORIZON, sub_stack, sub_client,
    );
    let victim = baseline.clients[0].home as u32;
    let plan = ShardFaultPlan {
        faults: vec![(victim, FaultSpec { at_round: 4, kind: FaultKind::Stall(3) })],
    };
    let faulted = run_fault(
        Mode::Threaded, shards, n, policy, Some(&plan), 0, RESTART_HORIZON, sub_stack, sub_client,
    );
    assert_eq!(faulted.restarts, 0, "transient stall must not trigger a restart");
    assert!(!faulted.crashed.iter().any(|&c| c), "transient stall must not kill the shard");
    // A stall defers frames, it does not lose them: everyone completes.
    for (i, c) in faulted.clients.iter().enumerate() {
        assert!(c.complete, "client {i} did not survive the stall:\n{}", faulted.transcript);
    }
    assert_healthy_isolated(&baseline, &faulted);
}

/// Random fault schedules at every shard count in {1, 2, 4, 8}: isolation
/// holds, crashed runs replay identically, threaded ≡ inline — the
/// proptest-style sweep over [`ShardFaultPlan::random`] schedules.
#[test]
fn random_fault_plans_isolation_and_replay() {
    for &shards in &[1usize, 2, 4, 8] {
        for seed in 0u64..3 {
            let plan = ShardFaultPlan::random(seed.wrapping_mul(0x9E37) ^ shards as u64, shards, 25, 3);
            let policy = RestartPolicy::default();
            let n = 12;
            let baseline = run_fault(
                Mode::Threaded, shards, n, policy, None, 3, RESTART_HORIZON, sub_stack, sub_client,
            );
            let a = run_fault(
                Mode::Threaded, shards, n, policy, Some(&plan), 3, RESTART_HORIZON,
                sub_stack, sub_client,
            );
            let b = run_fault(
                Mode::Threaded, shards, n, policy, Some(&plan), 3, RESTART_HORIZON,
                sub_stack, sub_client,
            );
            let inl = run_fault(
                Mode::Inline, shards, n, policy, Some(&plan), 3, RESTART_HORIZON,
                sub_stack, sub_client,
            );
            assert_eq!(
                a.transcript, b.transcript,
                "replay diverged (shards={shards} seed={seed} plan={plan:?})"
            );
            assert_eq!(
                a.transcript, inl.transcript,
                "threaded diverged from inline (shards={shards} seed={seed} plan={plan:?})"
            );
            assert_healthy_isolated(&baseline, &a);
        }
    }
}

