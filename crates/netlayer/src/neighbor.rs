//! The **neighbor determination** sublayer (Figure 3/4): "the lowest
//! sublayer because route computation needs a list of neighbors that is
//! determined by handshake messages sent directly on the data link."
//!
//! Periodic HELLOs on every port; a neighbor is *up* after its first HELLO
//! and *down* after `hold_time` of silence. The sublayer's upward interface
//! (test **T2**) is just the event stream `Up/Down(port, addr)` plus the
//! current neighbor list — route computation never sees HELLO packets.

use crate::packet::{Addr, Hello};
use netsim::{Dur, PortId, Time};
use std::collections::HashMap;
use std::collections::VecDeque;

/// Timer settings for neighbor maintenance.
#[derive(Clone, Debug)]
pub struct NeighborConfig {
    pub hello_interval: Dur,
    pub hold_time: Dur,
}

impl Default for NeighborConfig {
    fn default() -> Self {
        NeighborConfig {
            hello_interval: Dur::from_millis(500),
            hold_time: Dur::from_millis(1800),
        }
    }
}

/// Liveness transitions reported upward.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum NeighborEvent {
    Up { port: PortId, addr: Addr },
    Down { port: PortId, addr: Addr },
}

/// Per-port neighbor liveness tracking.
pub struct NeighborTable {
    me: Addr,
    n_ports: usize,
    cfg: NeighborConfig,
    live: HashMap<PortId, (Addr, Time)>,
    next_hello: Time,
    events: VecDeque<NeighborEvent>,
    pub hellos_sent: u64,
    pub hellos_received: u64,
}

impl NeighborTable {
    pub fn new(me: Addr, n_ports: usize, cfg: NeighborConfig) -> NeighborTable {
        NeighborTable {
            me,
            n_ports,
            cfg,
            live: HashMap::new(),
            next_hello: Time::ZERO,
            events: VecDeque::new(),
            hellos_sent: 0,
            hellos_received: 0,
        }
    }

    /// A HELLO arrived on `port`.
    pub fn on_hello(&mut self, port: PortId, hello: &Hello, now: Time) {
        self.hellos_received += 1;
        match self.live.insert(port, (hello.from, now)) {
            None => self.events.push_back(NeighborEvent::Up { port, addr: hello.from }),
            Some((old, _)) if old != hello.from => {
                // The device on this port changed identity.
                self.events.push_back(NeighborEvent::Down { port, addr: old });
                self.events.push_back(NeighborEvent::Up { port, addr: hello.from });
            }
            _ => {}
        }
    }

    /// Advance timers; returns HELLO frames to transmit as `(port, bytes)`.
    pub fn on_tick(&mut self, now: Time) -> Vec<(PortId, Vec<u8>)> {
        // Expire silent neighbors.
        let hold = self.cfg.hold_time;
        let expired: Vec<PortId> = self
            .live
            .iter()
            .filter(|(_, (_, heard))| now.since(*heard) >= hold)
            .map(|(&p, _)| p)
            .collect();
        for p in expired {
            if let Some((addr, _)) = self.live.remove(&p) {
                self.events.push_back(NeighborEvent::Down { port: p, addr });
            }
        }
        // Send HELLOs.
        let mut out = Vec::new();
        if now >= self.next_hello {
            let frame = Hello { from: self.me }.encode();
            for port in 0..self.n_ports {
                out.push((port, frame.clone()));
                self.hellos_sent += 1;
            }
            self.next_hello = now + self.cfg.hello_interval;
        }
        out
    }

    /// The earliest time `on_tick` must run again.
    pub fn poll_deadline(&self) -> Option<Time> {
        let expiry = self.live.values().map(|&(_, heard)| heard + self.cfg.hold_time).min();
        Some(match expiry {
            Some(e) => e.min(self.next_hello),
            None => self.next_hello,
        })
    }

    /// Drain pending up/down events.
    pub fn take_events(&mut self) -> Vec<NeighborEvent> {
        self.events.drain(..).collect()
    }

    /// Current live neighbors as `(port, addr)`.
    pub fn neighbors(&self) -> Vec<(PortId, Addr)> {
        let mut v: Vec<(PortId, Addr)> = self.live.iter().map(|(&p, &(a, _))| (p, a)).collect();
        v.sort();
        v
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn table() -> NeighborTable {
        NeighborTable::new(Addr(1), 2, NeighborConfig::default())
    }

    #[test]
    fn hello_brings_neighbor_up() {
        let mut t = table();
        t.on_hello(0, &Hello { from: Addr(7) }, Time::ZERO);
        assert_eq!(t.take_events(), vec![NeighborEvent::Up { port: 0, addr: Addr(7) }]);
        assert_eq!(t.neighbors(), vec![(0, Addr(7))]);
    }

    #[test]
    fn repeated_hellos_do_not_reannounce() {
        let mut t = table();
        t.on_hello(0, &Hello { from: Addr(7) }, Time::ZERO);
        t.take_events();
        t.on_hello(0, &Hello { from: Addr(7) }, Time::ZERO + Dur::from_millis(100));
        assert!(t.take_events().is_empty());
    }

    #[test]
    fn silence_expires_neighbor() {
        let mut t = table();
        t.on_hello(0, &Hello { from: Addr(7) }, Time::ZERO);
        t.take_events();
        t.on_tick(Time::ZERO + Dur::from_secs(5));
        assert_eq!(t.take_events(), vec![NeighborEvent::Down { port: 0, addr: Addr(7) }]);
        assert!(t.neighbors().is_empty());
    }

    #[test]
    fn identity_change_reported_as_down_up() {
        let mut t = table();
        t.on_hello(0, &Hello { from: Addr(7) }, Time::ZERO);
        t.take_events();
        t.on_hello(0, &Hello { from: Addr(8) }, Time::ZERO + Dur::from_millis(10));
        assert_eq!(
            t.take_events(),
            vec![
                NeighborEvent::Down { port: 0, addr: Addr(7) },
                NeighborEvent::Up { port: 0, addr: Addr(8) },
            ]
        );
    }

    #[test]
    fn hellos_sent_on_all_ports_at_interval() {
        let mut t = table();
        let sent = t.on_tick(Time::ZERO);
        assert_eq!(sent.len(), 2);
        assert!(Hello::decode(&sent[0].1).is_some());
        // Too early: nothing.
        assert!(t.on_tick(Time::ZERO + Dur::from_millis(100)).is_empty());
        // After the interval: again.
        assert_eq!(t.on_tick(Time::ZERO + Dur::from_millis(600)).len(), 2);
    }

    #[test]
    fn deadline_tracks_hello_and_expiry() {
        let mut t = table();
        assert_eq!(t.poll_deadline(), Some(Time::ZERO));
        t.on_tick(Time::ZERO);
        assert_eq!(t.poll_deadline(), Some(Time::ZERO + Dur::from_millis(500)));
        t.on_hello(1, &Hello { from: Addr(9) }, Time::ZERO + Dur::from_millis(100));
        // Hello timer (500ms) is earlier than the hold expiry (1900ms).
        assert_eq!(t.poll_deadline(), Some(Time::ZERO + Dur::from_millis(500)));
    }
}
