//! The router node: **forwarding** on the data plane, with neighbor
//! determination and route computation as control-plane sublayers below it
//! (Figure 3/4: "the path of a data packet passes directly from forwarding
//! to the next hop Data Link", while routing builds the forwarding
//! database).
//!
//! The router demultiplexes the three packet kinds to the three sublayers
//! and owns the FIB. It never interprets routing PDU bodies (test **T3**) —
//! those belong to whichever [`RouteComputation`] engine is plugged in.

use crate::fib::{Fib, Prefix};
use crate::neighbor::{NeighborConfig, NeighborEvent, NeighborTable};
use crate::packet::{unwrap_routing, wrap_routing, Addr, DataPacket, Hello, KIND_DATA, KIND_HELLO, KIND_ROUTING};
use crate::routecomp::RouteComputation;
use netsim::{Node, NodeCtx, PortId, Time, TimerId};
use std::collections::VecDeque;

/// Data-plane counters.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct RouterStats {
    pub forwarded: u64,
    pub delivered: u64,
    pub originated: u64,
    pub dropped_no_route: u64,
    pub dropped_ttl: u64,
    pub malformed: u64,
}

/// A router with `n_ports` point-to-point links.
pub struct Router {
    addr: Addr,
    n_ports: usize,
    neighbor: NeighborTable,
    rc: Box<dyn RouteComputation>,
    fib: Fib<PortId>,
    installed_version: u64,
    /// Locally delivered data packets.
    pub inbox: Vec<DataPacket>,
    /// Locally originated packets waiting for a route.
    pending_out: VecDeque<DataPacket>,
    pub stats: RouterStats,
    armed: Option<(Time, TimerId)>,
}

impl Router {
    pub fn new(addr: Addr, n_ports: usize, rc: Box<dyn RouteComputation>) -> Router {
        Router::with_config(addr, n_ports, rc, NeighborConfig::default())
    }

    pub fn with_config(
        addr: Addr,
        n_ports: usize,
        rc: Box<dyn RouteComputation>,
        ncfg: NeighborConfig,
    ) -> Router {
        Router {
            addr,
            n_ports,
            neighbor: NeighborTable::new(addr, n_ports, ncfg),
            rc,
            fib: Fib::new(),
            installed_version: u64::MAX,
            inbox: Vec::new(),
            pending_out: VecDeque::new(),
            stats: RouterStats::default(),
            armed: None,
        }
    }

    pub fn addr(&self) -> Addr {
        self.addr
    }

    pub fn rc(&self) -> &dyn RouteComputation {
        self.rc.as_ref()
    }

    /// Current FIB contents as `(destination, port)` (host routes only).
    pub fn fib_routes(&self) -> Vec<(Addr, PortId)> {
        let mut v: Vec<(Addr, PortId)> =
            self.fib.iter().into_iter().map(|(p, &port)| (p.addr, port)).collect();
        v.sort();
        v
    }

    /// Originate a data packet from this router.
    pub fn send_data(&mut self, dst: Addr, payload: Vec<u8>) {
        self.stats.originated += 1;
        self.pending_out.push_back(DataPacket::new(self.addr, dst, payload));
    }

    /// Drain locally delivered packets.
    pub fn take_inbox(&mut self) -> Vec<DataPacket> {
        std::mem::take(&mut self.inbox)
    }

    fn reinstall_fib(&mut self) {
        if self.rc.version() == self.installed_version {
            return;
        }
        self.installed_version = self.rc.version();
        self.fib.clear();
        for (dst, port) in self.rc.routes() {
            self.fib.insert(Prefix::host(dst), port);
        }
    }

    fn forward(&mut self, mut pkt: DataPacket, ctx: &mut NodeCtx) {
        if pkt.dst == self.addr {
            self.stats.delivered += 1;
            self.inbox.push(pkt);
            return;
        }
        let Some(&port) = self.fib.lookup(pkt.dst) else {
            self.stats.dropped_no_route += 1;
            return;
        };
        if pkt.ttl <= 1 {
            self.stats.dropped_ttl += 1;
            return;
        }
        pkt.ttl -= 1;
        self.stats.forwarded += 1;
        ctx.send(port, pkt.encode());
    }

    /// Run all control-plane machinery and drain outputs.
    fn pump(&mut self, ctx: &mut NodeCtx) {
        let now = ctx.now;
        // Neighbor maintenance.
        for (port, frame) in self.neighbor.on_tick(now) {
            ctx.send(port, frame);
        }
        for ev in self.neighbor.take_events() {
            match ev {
                NeighborEvent::Up { port, addr } => self.rc.on_neighbor_up(port, addr, now),
                NeighborEvent::Down { port, addr } => self.rc.on_neighbor_down(port, addr, now),
            }
        }
        // Route computation output.
        self.rc.on_tick(now);
        while let Some((port, body)) = self.rc.poll_pdu(now) {
            if port < self.n_ports {
                ctx.send(port, wrap_routing(body));
            }
        }
        // FIB installation and pending local traffic.
        self.reinstall_fib();
        for _ in 0..self.pending_out.len() {
            let pkt = self.pending_out.pop_front().unwrap();
            if self.fib.lookup(pkt.dst).is_some() || pkt.dst == self.addr {
                self.forward(pkt, ctx);
            } else {
                self.pending_out.push_back(pkt);
            }
        }
        // Re-arm the control-plane timer.
        let deadline = [self.neighbor.poll_deadline(), self.rc.poll_deadline(now)]
            .into_iter()
            .flatten()
            .min();
        if let Some(deadline) = deadline {
            let deadline = deadline.max(now + netsim::Dur::from_micros(1));
            let rearm = match self.armed {
                None => true,
                Some((at, _)) => deadline < at || at <= now,
            };
            if rearm {
                if let Some((_, id)) = self.armed.take() {
                    ctx.cancel(id);
                }
                let id = ctx.arm_at(deadline, 0);
                self.armed = Some((deadline, id));
            }
        }
    }
}

impl Node for Router {
    fn on_frame(&mut self, port: PortId, frame: Vec<u8>, ctx: &mut NodeCtx) {
        match frame.first() {
            Some(&KIND_HELLO) => {
                if let Some(h) = Hello::decode(&frame) {
                    self.neighbor.on_hello(port, &h, ctx.now);
                } else {
                    self.stats.malformed += 1;
                }
            }
            Some(&KIND_ROUTING) => {
                if let Some(body) = unwrap_routing(&frame) {
                    self.rc.on_pdu(port, body, ctx.now);
                }
            }
            Some(&KIND_DATA) => match DataPacket::decode(&frame) {
                Some(pkt) => {
                    self.reinstall_fib();
                    self.forward(pkt, ctx);
                }
                None => self.stats.malformed += 1,
            },
            _ => self.stats.malformed += 1,
        }
        self.pump(ctx);
    }

    fn on_timer(&mut self, _token: u64, ctx: &mut NodeCtx) {
        self.armed = None;
        self.pump(ctx);
    }

    fn poll(&mut self, ctx: &mut NodeCtx) {
        self.pump(ctx);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dv::{DistanceVector, DvConfig};

    #[test]
    fn data_to_self_is_delivered_without_routes() {
        let mut net = netsim::SimNet::new(1);
        let r = net.add_node(Box::new(Router::new(
            Addr(1),
            0,
            Box::new(DistanceVector::new(Addr(1), DvConfig::default())),
        )));
        net.node_mut::<Router>(r).send_data(Addr(1), b"loop".to_vec());
        net.poll_node(r);
        net.run_until(Time::ZERO + netsim::Dur::from_secs(1));
        let inbox = net.node_mut::<Router>(r).take_inbox();
        assert_eq!(inbox.len(), 1);
        assert_eq!(inbox[0].payload, b"loop");
    }

    /// A node that injects one raw frame at startup and stays silent.
    struct Injector {
        frame: Option<Vec<u8>>,
    }
    impl Node for Injector {
        fn on_frame(&mut self, _: PortId, _: Vec<u8>, _: &mut NodeCtx) {}
        fn on_timer(&mut self, _: u64, _: &mut NodeCtx) {}
        fn poll(&mut self, ctx: &mut NodeCtx) {
            if let Some(f) = self.frame.take() {
                ctx.send(0, f);
            }
        }
    }

    fn run_with_injected_frame(frame: Vec<u8>) -> RouterStats {
        let mut net = netsim::SimNet::new(2);
        let r = net.add_node(Box::new(Router::new(
            Addr(1),
            1,
            Box::new(DistanceVector::new(Addr(1), DvConfig::default())),
        )));
        let inj = net.add_node(Box::new(Injector { frame: Some(frame) }));
        net.connect(r, 0, inj, 0, netsim::LinkParams::delay_only(netsim::Dur::from_micros(10)));
        net.poll_all();
        net.run_until(Time::ZERO + netsim::Dur::from_millis(100));
        net.node::<Router>(r).stats.clone()
    }

    #[test]
    fn no_route_drops_are_counted() {
        let stats = run_with_injected_frame(DataPacket::new(Addr(9), Addr(8), vec![]).encode());
        assert_eq!(stats.dropped_no_route, 1);
    }

    #[test]
    fn expired_ttl_drops_are_counted() {
        // A packet for a *known* destination with ttl 1 is dropped. Give
        // the router a neighbor first via the injector acting as 9.
        let mut pkt = DataPacket::new(Addr(9), Addr(1), b"ok".to_vec());
        pkt.ttl = 1;
        // Destination is the router itself: delivered even at ttl 1.
        let stats = run_with_injected_frame(pkt.encode());
        assert_eq!(stats.delivered, 1);
    }

    #[test]
    fn malformed_frames_are_counted() {
        let stats = run_with_injected_frame(vec![0xEE, 0x01]);
        assert_eq!(stats.malformed, 1);
    }
}
