//! Topology construction and network-level test/experiment utilities.
//!
//! Builds `netsim` networks of [`Router`]s from an edge list, with a
//! factory for the route-computation engine so experiment E2 can run the
//! *same topology* under distance vector and link state and compare
//! forwarding behaviour.

use crate::packet::Addr;
use crate::routecomp::RouteComputation;
use crate::router::Router;
use netsim::{Dur, LinkParams, NodeId, SimNet};
use std::collections::VecDeque;

/// An undirected multigraph on router indices.
#[derive(Clone, Debug)]
pub struct Topology {
    pub n: usize,
    pub edges: Vec<(usize, usize)>,
}

impl Topology {
    pub fn line(n: usize) -> Topology {
        Topology { n, edges: (0..n.saturating_sub(1)).map(|i| (i, i + 1)).collect() }
    }

    pub fn ring(n: usize) -> Topology {
        assert!(n >= 3);
        let mut t = Topology::line(n);
        t.edges.push((n - 1, 0));
        t
    }

    pub fn star(n: usize) -> Topology {
        assert!(n >= 2);
        Topology { n, edges: (1..n).map(|i| (0, i)).collect() }
    }

    pub fn grid(w: usize, h: usize) -> Topology {
        let mut edges = Vec::new();
        let idx = |x: usize, y: usize| y * w + x;
        for y in 0..h {
            for x in 0..w {
                if x + 1 < w {
                    edges.push((idx(x, y), idx(x + 1, y)));
                }
                if y + 1 < h {
                    edges.push((idx(x, y), idx(x, y + 1)));
                }
            }
        }
        Topology { n: w * h, edges }
    }

    /// Connected random graph: a random spanning tree plus extra random
    /// edges, all drawn deterministically from `seed`.
    pub fn random_connected(n: usize, extra_edges: usize, seed: u64) -> Topology {
        let mut rng = netsim::DetRng::new(seed);
        let mut edges = Vec::new();
        // Random spanning tree: connect node i to a random earlier node.
        for i in 1..n {
            edges.push((rng.below(i as u64) as usize, i));
        }
        let mut added = 0;
        let mut guard = 0;
        while added < extra_edges && guard < extra_edges * 20 {
            guard += 1;
            let a = rng.below(n as u64) as usize;
            let b = rng.below(n as u64) as usize;
            if a != b && !edges.contains(&(a, b)) && !edges.contains(&(b, a)) {
                edges.push((a, b));
                added += 1;
            }
        }
        Topology { n, edges }
    }

    /// Hop distances from `src` by BFS (ground truth for forwarding tests).
    pub fn bfs_hops(&self, src: usize) -> Vec<Option<u32>> {
        let mut adj = vec![Vec::new(); self.n];
        for &(a, b) in &self.edges {
            adj[a].push(b);
            adj[b].push(a);
        }
        let mut dist = vec![None; self.n];
        dist[src] = Some(0);
        let mut q = VecDeque::from([src]);
        while let Some(u) = q.pop_front() {
            let d = dist[u].unwrap();
            for &v in &adj[u] {
                if dist[v].is_none() {
                    dist[v] = Some(d + 1);
                    q.push_back(v);
                }
            }
        }
        dist
    }
}

/// The address assigned to router index `i` (10.0.x.y).
pub fn addr_of(i: usize) -> Addr {
    Addr(0x0A00_0000 + i as u32 + 1)
}

/// A built network of routers.
pub struct RouterNet {
    pub net: SimNet,
    pub nodes: Vec<NodeId>,
    pub links: Vec<netsim::LinkId>,
    pub topo: Topology,
}

/// Build a network where every router runs the engine produced by
/// `make_rc` (called with the router's address).
pub fn build(
    topo: &Topology,
    seed: u64,
    link_delay: Dur,
    make_rc: &dyn Fn(Addr) -> Box<dyn RouteComputation>,
) -> RouterNet {
    let mut degree = vec![0usize; topo.n];
    let mut port_plan: Vec<(usize, usize, usize, usize)> = Vec::new();
    for &(a, b) in &topo.edges {
        let pa = degree[a];
        let pb = degree[b];
        degree[a] += 1;
        degree[b] += 1;
        port_plan.push((a, pa, b, pb));
    }
    let mut net = SimNet::new(seed);
    let nodes: Vec<NodeId> = (0..topo.n)
        .map(|i| {
            let addr = addr_of(i);
            net.add_node(Box::new(Router::new(addr, degree[i], make_rc(addr))))
        })
        .collect();
    let mut links = Vec::new();
    for (a, pa, b, pb) in port_plan {
        links.push(net.connect(nodes[a], pa, nodes[b], pb, LinkParams::delay_only(link_delay)));
    }
    net.poll_all();
    RouterNet { net, nodes, links, topo: topo.clone() }
}

impl RouterNet {
    /// Run the control plane for `d` of simulated time.
    pub fn settle(&mut self, d: Dur) {
        let deadline = self.net.now() + d;
        self.net.run_until(deadline);
    }

    /// Send a probe from router `src` to router `dst` and run briefly;
    /// returns the hop count if delivered (64 - received TTL).
    pub fn probe(&mut self, src: usize, dst: usize) -> Option<u32> {
        let marker = format!("probe-{src}-{dst}-{}", self.net.now().nanos()).into_bytes();
        self.net
            .node_mut::<Router>(self.nodes[src])
            .send_data(addr_of(dst), marker.clone());
        self.net.poll_node(self.nodes[src]);
        let deadline = self.net.now() + Dur::from_millis(500);
        self.net.run_until(deadline);
        let inbox = self.net.node_mut::<Router>(self.nodes[dst]).take_inbox();
        inbox
            .into_iter()
            .find(|p| p.payload == marker)
            .map(|p| 64 - p.ttl as u32)
    }

    /// The full forwarding relation: for each router, its sorted
    /// `(dst, port)` FIB.
    pub fn fib_snapshot(&self) -> Vec<Vec<(Addr, usize)>> {
        self.nodes.iter().map(|&n| self.net.node::<Router>(n).fib_routes()).collect()
    }

    /// Fail the `i`-th topology edge.
    pub fn fail_edge(&mut self, i: usize) {
        self.net.fail_link(self.links[i]);
    }

    pub fn router(&mut self, i: usize) -> &mut Router {
        self.net.node_mut::<Router>(self.nodes[i])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dv::{DistanceVector, DvConfig};
    use crate::ls::{LinkState, LsConfig};

    type EngineFactory = Box<dyn Fn(Addr) -> Box<dyn RouteComputation>>;

    fn dv_factory() -> EngineFactory {
        Box::new(|a| Box::new(DistanceVector::new(a, DvConfig::default())))
    }

    fn ls_factory() -> EngineFactory {
        Box::new(|a| Box::new(LinkState::new(a, LsConfig::default())))
    }

    fn engines() -> Vec<(&'static str, EngineFactory)> {
        vec![("dv", dv_factory()), ("ls", ls_factory())]
    }

    #[test]
    fn line_converges_and_routes_end_to_end() {
        for (name, f) in engines() {
            let topo = Topology::line(4);
            let mut net = build(&topo, 1, Dur::from_millis(1), f.as_ref());
            net.settle(Dur::from_secs(15));
            assert_eq!(net.probe(0, 3), Some(3), "{name}");
            assert_eq!(net.probe(3, 0), Some(3), "{name}");
            assert_eq!(net.probe(1, 2), Some(1), "{name}");
        }
    }

    #[test]
    fn ring_takes_shortest_side() {
        for (name, f) in engines() {
            let topo = Topology::ring(6);
            let mut net = build(&topo, 2, Dur::from_millis(1), f.as_ref());
            net.settle(Dur::from_secs(15));
            // Opposite corners: 3 hops either way.
            assert_eq!(net.probe(0, 3), Some(3), "{name}");
            // Adjacent: 1 hop, not 5.
            assert_eq!(net.probe(0, 5), Some(1), "{name}");
            assert_eq!(net.probe(0, 2), Some(2), "{name}");
        }
    }

    #[test]
    fn grid_hop_counts_match_bfs() {
        for (name, f) in engines() {
            let topo = Topology::grid(3, 3);
            let hops = topo.bfs_hops(0);
            let mut net = build(&topo, 3, Dur::from_millis(1), f.as_ref());
            net.settle(Dur::from_secs(20));
            for (dst, &want) in hops.iter().enumerate().skip(1) {
                assert_eq!(net.probe(0, dst), want, "{name} dst {dst}");
            }
        }
    }

    #[test]
    fn dv_and_ls_agree_on_random_topologies() {
        // Experiment E2's core claim: swapping route computation leaves
        // forwarding behaviour (hop counts, reachability) unchanged.
        for seed in [11, 12] {
            let topo = Topology::random_connected(8, 4, seed);
            let mut dv_net = build(&topo, seed, Dur::from_millis(1), dv_factory().as_ref());
            let mut ls_net = build(&topo, seed, Dur::from_millis(1), ls_factory().as_ref());
            dv_net.settle(Dur::from_secs(25));
            ls_net.settle(Dur::from_secs(25));
            for src in 0..topo.n {
                let hops = topo.bfs_hops(src);
                for (dst, &want) in hops.iter().enumerate().take(topo.n) {
                    if src == dst {
                        continue;
                    }
                    let dv_hops = dv_net.probe(src, dst);
                    let ls_hops = ls_net.probe(src, dst);
                    assert_eq!(dv_hops, want, "dv seed {seed} {src}->{dst}");
                    assert_eq!(ls_hops, want, "ls seed {seed} {src}->{dst}");
                }
            }
        }
    }

    #[test]
    fn reconvergence_after_link_failure() {
        for (name, f) in engines() {
            // Ring: failing one edge leaves the long way around.
            let topo = Topology::ring(5);
            let mut net = build(&topo, 7, Dur::from_millis(1), f.as_ref());
            net.settle(Dur::from_secs(15));
            assert_eq!(net.probe(0, 1), Some(1), "{name} before failure");
            // Fail edge 0-1.
            net.fail_edge(0);
            net.settle(Dur::from_secs(25));
            assert_eq!(net.probe(0, 1), Some(4), "{name} after failure");
        }
    }

    #[test]
    fn bfs_ground_truth() {
        let topo = Topology::ring(6);
        let hops = topo.bfs_hops(0);
        assert_eq!(hops, vec![Some(0), Some(1), Some(2), Some(3), Some(2), Some(1)]);
        let line = Topology::line(3);
        assert_eq!(line.bfs_hops(2), vec![Some(2), Some(1), Some(0)]);
    }

    #[test]
    fn star_topology_routes_through_hub() {
        for (name, f) in engines() {
            let topo = Topology::star(5);
            let mut net = build(&topo, 4, Dur::from_millis(1), f.as_ref());
            net.settle(Dur::from_secs(15));
            assert_eq!(net.probe(1, 4), Some(2), "{name}");
            assert_eq!(net.probe(0, 3), Some(1), "{name}");
        }
    }

    #[test]
    fn random_connected_is_connected() {
        for seed in 0..5 {
            let t = Topology::random_connected(10, 3, seed);
            let hops = t.bfs_hops(0);
            assert!(hops.iter().all(|h| h.is_some()), "seed {seed}");
        }
    }
}
