//! The **route computation** sublayer interface.
//!
//! "One can change say route computation from distance vector to Link State
//! without changing forwarding" (§2.2): this trait is the narrow interface
//! (test **T2**) that makes the claim literal. A route-computation engine
//! consumes neighbor events from below and its *own* opaque PDUs from
//! peers, and produces a next-hop table that the router installs into the
//! forwarding FIB. Experiment E2 swaps [`crate::dv::DistanceVector`] for
//! [`crate::ls::LinkState`] behind this trait and verifies identical
//! forwarding behaviour.

use crate::packet::Addr;
use netsim::{PortId, Time};

/// Counters common to all route-computation engines.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct RcStats {
    pub pdus_sent: u64,
    pub pdus_received: u64,
    pub recomputations: u64,
}

/// A route-computation engine (distance vector, link state, …).
pub trait RouteComputation {
    fn name(&self) -> &'static str;

    /// Neighbor determination reports an adjacency up.
    fn on_neighbor_up(&mut self, port: PortId, addr: Addr, now: Time);

    /// Neighbor determination reports an adjacency down.
    fn on_neighbor_down(&mut self, port: PortId, addr: Addr, now: Time);

    /// One of this engine's own PDUs arrived on `port`.
    fn on_pdu(&mut self, port: PortId, body: &[u8], now: Time);

    /// Next PDU to transmit, as `(port, body)`. Called until `None`.
    fn poll_pdu(&mut self, now: Time) -> Option<(PortId, Vec<u8>)>;

    /// Earliest instant `on_tick` must run.
    fn poll_deadline(&self, now: Time) -> Option<Time>;

    /// Advance periodic work (advertisements, refreshes, expiries).
    fn on_tick(&mut self, now: Time);

    /// The complete current next-hop table: `(destination, output port)`.
    /// Excludes the router's own address.
    fn routes(&self) -> Vec<(Addr, PortId)>;

    /// Bumped whenever `routes()` may have changed; the router re-installs
    /// the FIB when it observes a new version.
    fn version(&self) -> u64;

    fn stats(&self) -> &RcStats;
}
