//! # boxnet — the "Internet in a box" (multi-hop topologies for campaigns)
//!
//! Every earlier campaign ran two hosts over one point-to-point link. This
//! module puts the transports behind the network fabric they would actually
//! traverse: a [`BoxTopo`] of routers and links, hosts attached at the
//! edges, **static** route tables with partition-triggered reroute, and an
//! optional NAT middlebox ([`NatBox`]) on a host's access link.
//!
//! Design choices, in the paper's terms:
//!
//! * **Static data plane, scripted control plane.** Routers here are pure
//!   forwarding sublayer ([`StaticRouter`]): a FIB, TTL decrement, and
//!   encap/decap of raw transport frames into [`DataPacket`]s. Route
//!   computation is done *offline* by [`BoxTopo::route_tables`]
//!   (deterministic BFS), and "convergence after failure" is modelled as a
//!   scheduled table swap after a detection delay
//!   ([`BoxNet::schedule_reroute`]) — so campaigns are exactly replayable
//!   and the interesting nondeterminism stays in the transport under test.
//!   The dynamic routing sublayers (`dv`, `ls`, `neighbor`) remain the
//!   subject of their own experiments.
//! * **Verified before traffic.** [`BoxTopo::build`] refuses to construct
//!   a network whose primary tables fail the StacKAT-flavored
//!   [`slverify::check_forwarding_to`] (full reachability, zero loops),
//!   and [`BoxNet::schedule_reroute`] asserts the backup tables are
//!   loop-free before scheduling them. Loop-freedom is a *precondition*
//!   of every campaign, not a hoped-for observation.
//! * **Transport-agnostic.** The router peeks source/destination addresses
//!   off raw host frames through a caller-supplied [`AddrPeek`] function,
//!   and the NAT rewrites endpoints through a caller-supplied [`NatCodec`];
//!   netlayer never learns either transport's wire format.
//!
//! ```text
//!   host A ──[NatBox]── R0 ══ R1 ══ R2 ── host B        ══ backbone links
//!            (optional)  └────═ R3 ═────┘                ── access links
//!                          (backup path)
//! ```

use std::collections::BTreeMap;

use netsim::{AdminOp, Dur, LinkId, LinkParams, Node, NodeCtx, NodeId, PortId, SimNet, Time};
use slverify::{check_forwarding_to, ForwardReport, ForwardSpec};

use crate::fib::{Fib, Prefix};
use crate::packet::{Addr, DataPacket};

/// Reads `(src_addr, dst_addr)` off a raw transport frame. Kept as a plain
/// function pointer so a topology stays `'static` data; the per-wire-format
/// implementations live with the transports (see `slconform`).
pub type AddrPeek = fn(&[u8]) -> Option<(u32, u32)>;

/// Default TTL stamped on encapsulated data packets.
pub const BOX_TTL: u8 = 64;

// ---------------------------------------------------------------------------
// Topology description
// ---------------------------------------------------------------------------

/// A router-router link in a [`BoxTopo`].
#[derive(Clone, Debug)]
pub struct BoxEdge {
    pub a: usize,
    pub b: usize,
    pub params: LinkParams,
}

impl BoxEdge {
    pub fn new(a: usize, b: usize, params: LinkParams) -> BoxEdge {
        BoxEdge { a, b, params }
    }
}

/// A host attachment point: which router the host (or its NAT) cables into,
/// and the network-visible address traffic for it is routed toward. For a
/// NAT'd site this is the NAT's *public* address — the inside address never
/// appears past the middlebox.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct HostSite {
    pub router: usize,
    pub addr: u32,
}

/// A multi-hop topology: routers, router-router edges, and host sites.
/// Pure data — build it onto a `SimNet` with [`BoxTopo::build`].
#[derive(Clone, Debug)]
pub struct BoxTopo {
    pub name: &'static str,
    pub routers: usize,
    pub edges: Vec<BoxEdge>,
    pub hosts: Vec<HostSite>,
    /// TTL for encapsulated packets (also bounds the static walk).
    pub ttl: u8,
}

impl BoxTopo {
    pub fn new(name: &'static str, routers: usize) -> BoxTopo {
        BoxTopo { name, routers, edges: Vec::new(), hosts: Vec::new(), ttl: BOX_TTL }
    }

    pub fn edge(mut self, a: usize, b: usize, params: LinkParams) -> Self {
        assert!(a < self.routers && b < self.routers && a != b, "bad edge {a}-{b}");
        self.edges.push(BoxEdge::new(a, b, params));
        self
    }

    pub fn host(mut self, router: usize, addr: u32) -> Self {
        assert!(router < self.routers, "host on unknown router {router}");
        assert!(self.hosts.iter().all(|h| h.addr != addr), "duplicate host addr");
        self.hosts.push(HostSite { router, addr });
        self
    }

    /// Port layout: each router's edge ports come first (in `edges` order),
    /// then its host access ports (in `hosts` order). Returns
    /// `(edge_ports[edge] = (port_at_a, port_at_b), host_port[host])`.
    fn port_layout(&self) -> (Vec<(PortId, PortId)>, Vec<PortId>) {
        let mut next = vec![0usize; self.routers];
        let mut edge_ports = Vec::with_capacity(self.edges.len());
        for e in &self.edges {
            let pa = next[e.a];
            next[e.a] += 1;
            let pb = next[e.b];
            next[e.b] += 1;
            edge_ports.push((pa, pb));
        }
        let mut host_port = Vec::with_capacity(self.hosts.len());
        for h in &self.hosts {
            host_port.push(next[h.router]);
            next[h.router] += 1;
        }
        (edge_ports, host_port)
    }

    /// Per-router next-hop ports toward every host, computed by BFS over
    /// the router graph with the edges in `failed` removed. Deterministic:
    /// ties break toward the lowest-numbered neighbor.
    /// `routes[router][host] = Some(port)`; `None` = unreachable.
    fn routes(&self, failed: &[usize]) -> Vec<Vec<Option<PortId>>> {
        let (edge_ports, host_port) = self.port_layout();
        // adj[router] = (neighbor, out port), in edge order.
        let mut adj: Vec<Vec<(usize, PortId)>> = vec![Vec::new(); self.routers];
        for (i, e) in self.edges.iter().enumerate() {
            if failed.contains(&i) {
                continue;
            }
            adj[e.a].push((e.b, edge_ports[i].0));
            adj[e.b].push((e.a, edge_ports[i].1));
        }
        let mut routes = vec![vec![None; self.hosts.len()]; self.routers];
        for (h, site) in self.hosts.iter().enumerate() {
            // BFS from the attachment router.
            let mut dist = vec![usize::MAX; self.routers];
            dist[site.router] = 0;
            let mut frontier = vec![site.router];
            while !frontier.is_empty() {
                let mut nextf = Vec::new();
                for &r in &frontier {
                    for &(n, _) in &adj[r] {
                        if dist[n] == usize::MAX {
                            dist[n] = dist[r] + 1;
                            nextf.push(n);
                        }
                    }
                }
                frontier = nextf;
            }
            for r in 0..self.routers {
                if r == site.router {
                    routes[r][h] = Some(host_port[h]);
                } else if dist[r] != usize::MAX {
                    routes[r][h] = adj[r]
                        .iter()
                        .filter(|(n, _)| dist[*n] + 1 == dist[r])
                        .min_by_key(|(n, _)| *n)
                        .map(|&(_, port)| port);
                }
            }
        }
        routes
    }

    /// The installable form of [`BoxTopo::routes`]: per-router
    /// `(host_addr, out_port)` pairs.
    pub fn route_tables(&self, failed: &[usize]) -> Vec<Vec<(u32, PortId)>> {
        self.routes(failed)
            .into_iter()
            .map(|per_host| {
                per_host
                    .into_iter()
                    .enumerate()
                    .filter_map(|(h, port)| port.map(|p| (self.hosts[h].addr, p)))
                    .collect()
            })
            .collect()
    }

    /// Build the [`ForwardSpec`] for the route tables under `failed` edges:
    /// routers plus one pseudo-node per host, destinations = hosts.
    fn spec(&self, failed: &[usize]) -> (ForwardSpec, Vec<usize>) {
        let (edge_ports, host_port) = self.port_layout();
        let routes = self.routes(failed);
        let n = self.routers + self.hosts.len();
        let mut ports: Vec<Vec<Option<usize>>> = vec![Vec::new(); n];
        for (i, e) in self.edges.iter().enumerate() {
            let peer = |r: usize| if failed.contains(&i) { None } else { Some(r) };
            let (pa, pb) = edge_ports[i];
            set_port(&mut ports[e.a], pa, peer(e.b));
            set_port(&mut ports[e.b], pb, peer(e.a));
        }
        for (h, site) in self.hosts.iter().enumerate() {
            set_port(&mut ports[site.router], host_port[h], Some(self.routers + h));
            set_port(&mut ports[self.routers + h], 0, Some(site.router));
        }
        let mut spec_routes: Vec<Vec<Option<usize>>> = vec![vec![None; n]; n];
        for r in 0..self.routers {
            for h in 0..self.hosts.len() {
                spec_routes[r][self.routers + h] = routes[r][h];
            }
        }
        for h in 0..self.hosts.len() {
            for (dst, route) in spec_routes[self.routers + h].iter_mut().enumerate() {
                if dst != self.routers + h {
                    *route = Some(0);
                }
            }
        }
        let dsts: Vec<usize> = (self.routers..n).collect();
        (ForwardSpec { n, ports, routes: spec_routes }, dsts)
    }

    /// Statically check the tables that [`BoxTopo::route_tables`] would
    /// install under the given failure set: every (node, host) pair either
    /// delivers or drops — never loops. With no failures, [`ForwardReport::ok`]
    /// additionally demands full host-to-host reachability.
    pub fn check(&self, failed: &[usize]) -> ForwardReport {
        let (spec, dsts) = self.spec(failed);
        check_forwarding_to(&spec, &dsts, self.ttl as usize)
    }

    /// Instantiate the topology on `net`: routers with their primary FIBs,
    /// backbone links, and reserved access ports for each host site.
    /// Panics if the primary tables fail the static forwarding check.
    pub fn build(self, net: &mut SimNet, peek: AddrPeek) -> BoxNet {
        let report = self.check(&[]);
        assert!(
            report.ok(),
            "topology `{}` failed the static forwarding check: {:?}",
            self.name,
            report.defects
        );
        let (edge_ports, host_port) = self.port_layout();
        let tables = self.route_tables(&[]);
        let mut routers = Vec::with_capacity(self.routers);
        for (r, table) in tables.iter().enumerate() {
            let mut sr = StaticRouter::new(peek, self.ttl);
            for (h, site) in self.hosts.iter().enumerate() {
                if site.router == r {
                    sr.add_host_port(host_port[h], site.addr);
                }
            }
            sr.install_routes(table);
            sr.stats.reroutes = 0; // the primary table is not a reroute
            routers.push(net.add_node(Box::new(sr)));
        }
        let mut edge_links = Vec::with_capacity(self.edges.len());
        for (i, e) in self.edges.iter().enumerate() {
            let (pa, pb) = edge_ports[i];
            edge_links.push(net.connect(routers[e.a], pa, routers[e.b], pb, e.params.clone()));
        }
        let host_ports =
            self.hosts.iter().enumerate().map(|(h, s)| (routers[s.router], host_port[h])).collect();
        BoxNet { topo: self, routers, edge_links, host_ports }
    }
}

fn set_port(ports: &mut Vec<Option<usize>>, port: usize, peer: Option<usize>) {
    if ports.len() <= port {
        ports.resize(port + 1, None);
    }
    ports[port] = peer;
}

/// A [`BoxTopo`] instantiated on a `SimNet`.
pub struct BoxNet {
    pub topo: BoxTopo,
    /// Router node ids, indexed like `topo` routers.
    pub routers: Vec<NodeId>,
    /// Backbone link ids, indexed like `topo.edges`.
    pub edge_links: Vec<LinkId>,
    /// Where each host site cables in: `(router node, access port)`. The
    /// caller connects its host node — or a [`NatBox`] in front of it —
    /// to this port.
    pub host_ports: Vec<(NodeId, PortId)>,
}

impl BoxNet {
    /// Partition edge `at_edge` at time `at`, then install the precomputed
    /// backup tables once the control plane "detects" it (`detect` later).
    /// Frames already in flight on the old path still arrive, so a path
    /// switch naturally reorders — the ECMP-style hazard the transports
    /// must absorb. Panics if the backup tables are not loop-free.
    pub fn schedule_reroute(&self, net: &mut SimNet, at_edge: usize, at: Time, detect: Dur) {
        let report = self.topo.check(&[at_edge]);
        assert!(
            report.loop_free(),
            "backup tables for `{}` minus edge {at_edge} loop: {:?}",
            self.topo.name,
            report.defects
        );
        net.schedule_admin(at, AdminOp::LinkDown(self.edge_links[at_edge]));
        self.schedule_tables(net, at + detect, self.topo.route_tables(&[at_edge]));
    }

    /// Heal edge `at_edge` at `at` and restore the primary tables after the
    /// same detection delay.
    pub fn schedule_heal(&self, net: &mut SimNet, at_edge: usize, at: Time, detect: Dur) {
        net.schedule_admin(at, AdminOp::LinkUp(self.edge_links[at_edge]));
        self.schedule_tables(net, at + detect, self.topo.route_tables(&[]));
    }

    fn schedule_tables(&self, net: &mut SimNet, at: Time, tables: Vec<Vec<(u32, PortId)>>) {
        let routers = self.routers.clone();
        net.schedule_call(at, move |net| {
            for (id, table) in routers.iter().zip(tables.iter()) {
                net.node_mut::<StaticRouter>(*id).install_routes(table);
            }
        });
    }

    /// Sum of a stat over every router, via `f`.
    pub fn router_stats(&self, net: &mut SimNet, f: impl Fn(&BoxRouterStats) -> u64) -> u64 {
        self.routers.iter().map(|&id| f(&net.node_mut::<StaticRouter>(id).stats)).sum()
    }
}

// ---------------------------------------------------------------------------
// StaticRouter: the forwarding sublayer alone
// ---------------------------------------------------------------------------

/// Counters for one [`StaticRouter`].
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct BoxRouterStats {
    /// Raw host frames encapsulated at ingress.
    pub encapped: u64,
    /// Data packets forwarded router-to-router.
    pub forwarded: u64,
    /// Data packets decapsulated and delivered out a host port.
    pub delivered: u64,
    /// Host-to-host traffic delivered without leaving this router.
    pub hairpins: u64,
    pub dropped_no_route: u64,
    pub dropped_ttl: u64,
    pub malformed: u64,
    /// Table installs after build (reroutes/heals).
    pub reroutes: u64,
}

/// A static-route router: FIB + TTL + encap/decap, no routing protocol.
/// Host access ports carry **raw transport frames** (what the host's NIC
/// would emit on a point-to-point wire); backbone ports carry
/// [`DataPacket`]s. The router tells them apart by port, not by sniffing
/// bytes, so transports never collide with the network-layer kind space.
pub struct StaticRouter {
    fib: Fib<PortId>,
    /// `host_ports[port] = Some(addr)` when `port` faces a host access link.
    host_ports: Vec<Option<u32>>,
    peek: AddrPeek,
    ttl: u8,
    pub stats: BoxRouterStats,
}

impl StaticRouter {
    pub fn new(peek: AddrPeek, ttl: u8) -> StaticRouter {
        StaticRouter {
            fib: Fib::new(),
            host_ports: Vec::new(),
            peek,
            ttl,
            stats: BoxRouterStats::default(),
        }
    }

    /// Declare `port` as the access port for the host addressed `addr`.
    pub fn add_host_port(&mut self, port: PortId, addr: u32) {
        if self.host_ports.len() <= port {
            self.host_ports.resize(port + 1, None);
        }
        self.host_ports[port] = Some(addr);
    }

    /// Replace the whole FIB with `(host_addr, out_port)` routes.
    pub fn install_routes(&mut self, table: &[(u32, PortId)]) {
        self.fib.clear();
        for &(addr, port) in table {
            self.fib.insert(Prefix::host(Addr(addr)), port);
        }
        self.stats.reroutes += 1;
    }

    /// The installed host routes, sorted by address — lets tests compare a
    /// live router's table against what [`BoxTopo::route_tables`] computes.
    pub fn route_snapshot(&self) -> Vec<(u32, PortId)> {
        let mut v: Vec<(u32, PortId)> =
            self.fib.iter().into_iter().map(|(p, port)| (p.addr.0, *port)).collect();
        v.sort_unstable();
        v
    }

    fn host_port_for(&self, addr: u32) -> Option<PortId> {
        self.host_ports.iter().position(|p| *p == Some(addr))
    }

    fn is_host_port(&self, port: PortId) -> bool {
        self.host_ports.get(port).copied().flatten().is_some()
    }
}

impl Node for StaticRouter {
    fn on_frame(&mut self, port: PortId, frame: Vec<u8>, ctx: &mut NodeCtx) {
        if self.is_host_port(port) {
            // Ingress: a raw transport frame from an attached host.
            let Some((src, dst)) = (self.peek)(&frame) else {
                self.stats.malformed += 1;
                return;
            };
            if let Some(out) = self.host_port_for(dst) {
                self.stats.hairpins += 1;
                ctx.send(out, frame);
                return;
            }
            match self.fib.lookup(Addr(dst)) {
                Some(&out) => {
                    let mut pkt = DataPacket::new(Addr(src), Addr(dst), frame);
                    pkt.ttl = self.ttl;
                    self.stats.encapped += 1;
                    ctx.send(out, pkt.encode());
                }
                None => self.stats.dropped_no_route += 1,
            }
        } else {
            // Transit: a DataPacket from another router.
            let Some(mut pkt) = DataPacket::decode(&frame) else {
                self.stats.malformed += 1;
                return;
            };
            if let Some(out) = self.host_port_for(pkt.dst.0) {
                self.stats.delivered += 1;
                ctx.send(out, pkt.payload);
                return;
            }
            match self.fib.lookup(pkt.dst) {
                Some(&out) => {
                    if pkt.ttl <= 1 {
                        self.stats.dropped_ttl += 1;
                        return;
                    }
                    pkt.ttl -= 1;
                    self.stats.forwarded += 1;
                    ctx.send(out, pkt.encode());
                }
                None => self.stats.dropped_no_route += 1,
            }
        }
    }

    fn on_timer(&mut self, _token: u64, _ctx: &mut NodeCtx) {}
}

// ---------------------------------------------------------------------------
// NatBox: an address-and-port-translating (and optionally hostile) middlebox
// ---------------------------------------------------------------------------

/// Port on a [`NatBox`] facing the private host.
pub const NAT_INSIDE: PortId = 0;
/// Port on a [`NatBox`] facing the network.
pub const NAT_OUTSIDE: PortId = 1;

/// First public port a [`NatBox`] allocates.
pub const NAT_FIRST_PORT: u16 = 40000;

/// Transport-format knowledge a [`NatBox`] needs: read the 4-tuple,
/// rewrite an endpoint (re-sealing any checksum), shift the data sequence
/// number (hostile mode), and forge a RST answering a given frame.
/// Implementations live with the transports (`slconform::natcodec`).
pub trait NatCodec {
    /// `((src_addr, src_port), (dst_addr, dst_port))` of a raw frame.
    fn tuple(&self, frame: &[u8]) -> Option<((u32, u16), (u32, u16))>;
    /// Rewrite the source endpoint.
    fn rewrite_src(&self, frame: &[u8], addr: u32, port: u16) -> Option<Vec<u8>>;
    /// Rewrite the destination endpoint.
    fn rewrite_dst(&self, frame: &[u8], addr: u32, port: u16) -> Option<Vec<u8>>;
    /// Shift the frame's data sequence number by `delta`. Returns `None`
    /// when the frame carries no data to shift (pure ACKs pass untouched).
    fn shift_seq(&self, frame: &[u8], delta: u32) -> Option<Vec<u8>>;
    /// Forge a RST that answers `frame` toward its sender, claiming to come
    /// from the frame's destination (what a stateless stack would emit).
    fn forge_rst_reply(&self, frame: &[u8]) -> Option<Vec<u8>>;
}

/// Counters for one [`NatBox`].
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct NatStats {
    pub translated_out: u64,
    pub translated_in: u64,
    pub mappings_created: u64,
    /// Inbound frames whose public port had no mapping (dropped).
    pub unknown_drops: u64,
    /// RSTs forged for unknown inbound flows (`rst_on_unknown`).
    pub rsts_sent: u64,
    /// Translation-table losses ([`NatBox::wipe_table`]).
    pub table_wipes: u64,
    /// Inbound data frames whose sequence number was shifted (hostile mode).
    pub hostile_rewrites: u64,
    pub malformed: u64,
}

/// A NAPT middlebox bridging a private host ([`NAT_INSIDE`]) to the fabric
/// ([`NAT_OUTSIDE`]). Outbound flows allocate a public port and rewrite the
/// source endpoint; inbound frames are matched by public port and rewritten
/// back. Three failure personalities, all scriptable mid-run:
///
/// * [`NatBox::wipe_table`] models a middlebox restart: every mapping dies.
///   Retransmits from inside re-create mappings **on fresh public ports**
///   (real NATs do not remember allocations across restarts), so the far
///   end sees an unknown 4-tuple and answers with a stateless RST — the
///   transport must surface a *typed* abort, then reconnect.
/// * `rst_on_unknown` makes the NAT itself answer unknown inbound flows
///   with a forged RST instead of silently dropping them.
/// * `hostile_seq_delta` shifts the sequence number of every inbound data
///   frame — an RFC-5961-style hostile middlebox. A correct receiver never
///   accepts the shifted payload into the stream.
pub struct NatBox {
    codec: Box<dyn NatCodec>,
    public_addr: u32,
    next_port: u16,
    /// `(in_addr, in_port, peer_addr, peer_port) -> public port`
    out_map: BTreeMap<(u32, u16, u32, u16), u16>,
    /// `public port -> (in_addr, in_port)`
    in_map: BTreeMap<u16, (u32, u16)>,
    pub rst_on_unknown: bool,
    pub hostile_seq_delta: u32,
    pub stats: NatStats,
}

impl NatBox {
    pub fn new(codec: Box<dyn NatCodec>, public_addr: u32) -> NatBox {
        NatBox {
            codec,
            public_addr,
            next_port: NAT_FIRST_PORT,
            out_map: BTreeMap::new(),
            in_map: BTreeMap::new(),
            rst_on_unknown: false,
            hostile_seq_delta: 0,
            stats: NatStats::default(),
        }
    }

    pub fn rst_on_unknown(mut self) -> Self {
        self.rst_on_unknown = true;
        self
    }

    pub fn hostile(mut self, seq_delta: u32) -> Self {
        self.hostile_seq_delta = seq_delta;
        self
    }

    /// Drop every translation. The port allocator does **not** rewind:
    /// re-created mappings land on fresh public ports, so established flows
    /// cannot silently resume.
    pub fn wipe_table(&mut self) {
        self.out_map.clear();
        self.in_map.clear();
        self.stats.table_wipes += 1;
    }

    /// Live mappings.
    pub fn table_len(&self) -> usize {
        self.out_map.len()
    }

    /// The public port currently mapped for an inside 4-tuple, if any.
    pub fn public_port(&self, src: (u32, u16), dst: (u32, u16)) -> Option<u16> {
        self.out_map.get(&(src.0, src.1, dst.0, dst.1)).copied()
    }
}

/// Schedule a [`NatBox::wipe_table`] (middlebox restart) at `at`.
pub fn schedule_nat_wipe(net: &mut SimNet, nat: NodeId, at: Time) {
    net.schedule_call(at, move |net| net.node_mut::<NatBox>(nat).wipe_table());
}

impl Node for NatBox {
    fn on_frame(&mut self, port: PortId, frame: Vec<u8>, ctx: &mut NodeCtx) {
        let Some((src, dst)) = self.codec.tuple(&frame) else {
            self.stats.malformed += 1;
            return;
        };
        if port == NAT_INSIDE {
            let key = (src.0, src.1, dst.0, dst.1);
            let public = match self.out_map.get(&key) {
                Some(&p) => p,
                None => {
                    let p = self.next_port;
                    self.next_port = self.next_port.wrapping_add(1);
                    self.out_map.insert(key, p);
                    self.in_map.insert(p, (src.0, src.1));
                    self.stats.mappings_created += 1;
                    p
                }
            };
            match self.codec.rewrite_src(&frame, self.public_addr, public) {
                Some(out) => {
                    self.stats.translated_out += 1;
                    ctx.send(NAT_OUTSIDE, out);
                }
                None => self.stats.malformed += 1,
            }
        } else {
            match self.in_map.get(&dst.1).copied() {
                Some((in_addr, in_port)) if dst.0 == self.public_addr => {
                    let Some(mut out) = self.codec.rewrite_dst(&frame, in_addr, in_port) else {
                        self.stats.malformed += 1;
                        return;
                    };
                    if self.hostile_seq_delta != 0 {
                        if let Some(shifted) = self.codec.shift_seq(&out, self.hostile_seq_delta) {
                            self.stats.hostile_rewrites += 1;
                            out = shifted;
                        }
                    }
                    self.stats.translated_in += 1;
                    ctx.send(NAT_INSIDE, out);
                }
                _ => {
                    self.stats.unknown_drops += 1;
                    if self.rst_on_unknown {
                        if let Some(rst) = self.codec.forge_rst_reply(&frame) {
                            self.stats.rsts_sent += 1;
                            ctx.send(NAT_OUTSIDE, rst);
                        }
                    }
                }
            }
        }
    }

    fn on_timer(&mut self, _token: u64, _ctx: &mut NodeCtx) {}
}

// ---------------------------------------------------------------------------
// Shipped topologies
// ---------------------------------------------------------------------------

/// Address of host site `i` in the shipped topologies: `10.0.(i+1).1`.
pub fn box_host_addr(i: usize) -> u32 {
    0x0A00_0001 | ((i as u32 + 1) << 8)
}

fn backbone(delay_ms: u64) -> LinkParams {
    LinkParams::delay_only(Dur::from_millis(delay_ms))
}

/// Three routers in a chain, hosts at both ends — the multi-hop baseline.
pub fn topo_line3() -> BoxTopo {
    BoxTopo::new("line3", 3)
        .edge(0, 1, backbone(5))
        .edge(1, 2, backbone(5))
        .host(0, box_host_addr(0))
        .host(2, box_host_addr(1))
}

/// Four routers in a diamond: the primary path (via router 1) is fast, the
/// backup (via router 2) is an order of magnitude slower, so a reroute is
/// also an RTT step change. Edges 0/1 form the primary path.
pub fn topo_diamond() -> BoxTopo {
    BoxTopo::new("diamond", 4)
        .edge(0, 1, backbone(2)) // primary, hop 1
        .edge(1, 3, backbone(2)) // primary, hop 2
        .edge(0, 2, backbone(15)) // backup, hop 1
        .edge(2, 3, backbone(15)) // backup, hop 2
        .host(0, box_host_addr(0))
        .host(3, box_host_addr(1))
}

/// Three client sites on leaf routers funneling into one rate-limited
/// backbone edge (edge 3) toward the server's router.
pub fn topo_fanin() -> BoxTopo {
    BoxTopo::new("fanin", 5)
        .edge(1, 0, backbone(3))
        .edge(2, 0, backbone(3))
        .edge(3, 0, backbone(3))
        .edge(0, 4, backbone(5).with_rate(2_000_000)) // the bottleneck
        .host(1, box_host_addr(0))
        .host(2, box_host_addr(1))
        .host(3, box_host_addr(2))
        .host(4, box_host_addr(3)) // server
}

/// Two routers; site 0 is a NAT'd client (its [`HostSite::addr`] is the
/// NAT's public address), site 1 the server.
pub fn topo_nat_gateway() -> BoxTopo {
    BoxTopo::new("nat_gateway", 2)
        .edge(0, 1, backbone(8))
        .host(0, box_host_addr(0)) // public side of the NAT
        .host(1, box_host_addr(1))
}

/// Four routers in a chain with hosts at the ends and no alternate path:
/// partitioning the middle edge (index 1) strands both sides — the
/// long-partition / bounded-memory scenario.
pub fn topo_long_haul() -> BoxTopo {
    BoxTopo::new("long_haul", 4)
        .edge(0, 1, backbone(10))
        .edge(1, 2, backbone(10))
        .edge(2, 3, backbone(10))
        .host(0, box_host_addr(0))
        .host(3, box_host_addr(1))
}

/// Every topology config shipped in-repo. CI statically checks each one:
/// primary tables must be fully reachable and loop-free, and the tables
/// after **any** single edge failure must stay loop-free.
pub fn shipped_topologies() -> Vec<BoxTopo> {
    vec![topo_line3(), topo_diamond(), topo_fanin(), topo_nat_gateway(), topo_long_haul()]
}

/// A connected random topology for property tests: `routers` nodes, a
/// random spanning tree (each node links to a random earlier node) plus
/// `extra` random chords, hosts on the first and last routers. Pure
/// function of the inputs.
pub fn topo_random_connected(routers: usize, extra: usize, seed: u64) -> BoxTopo {
    assert!(routers >= 2);
    let mut t = BoxTopo::new("random_connected", routers);
    let mut state = seed | 1;
    let mut next = move |bound: usize| {
        // xorshift64* — deterministic, no external RNG dependency.
        state ^= state >> 12;
        state ^= state << 25;
        state ^= state >> 27;
        (state.wrapping_mul(0x2545_F491_4F6C_DD1D) >> 33) as usize % bound
    };
    for b in 1..routers {
        let a = next(b);
        t = t.edge(a, b, backbone(1 + next(10) as u64));
    }
    for _ in 0..extra {
        let a = next(routers);
        let b = next(routers);
        if a != b && !t.edges.iter().any(|e| (e.a, e.b) == (a, b) || (e.a, e.b) == (b, a)) {
            t = t.edge(a, b, backbone(1 + next(10) as u64));
        }
    }
    t.host(0, box_host_addr(0)).host(routers - 1, box_host_addr(1))
}

#[cfg(test)]
mod tests {
    use super::*;
    use netsim::FaultProfile;

    /// Test "transport": frames are `[src u32 BE, dst u32 BE, payload]`.
    fn raw_peek(frame: &[u8]) -> Option<(u32, u32)> {
        if frame.len() < 8 {
            return None;
        }
        let src = u32::from_be_bytes(frame[0..4].try_into().unwrap());
        let dst = u32::from_be_bytes(frame[4..8].try_into().unwrap());
        Some((src, dst))
    }

    fn raw_frame(src: u32, dst: u32, body: &[u8]) -> Vec<u8> {
        let mut f = Vec::new();
        f.extend_from_slice(&src.to_be_bytes());
        f.extend_from_slice(&dst.to_be_bytes());
        f.extend_from_slice(body);
        f
    }

    fn t(ms: u64) -> Time {
        Time::ZERO + Dur::from_millis(ms)
    }

    /// Records everything it hears; transmits whatever is pushed into its
    /// outbox (via [`SimNet::schedule_call`] + [`SimNet::poll_node`]).
    struct Sink {
        got: Vec<Vec<u8>>,
        outbox: Vec<Vec<u8>>,
    }
    impl Sink {
        fn new() -> Sink {
            Sink { got: Vec::new(), outbox: Vec::new() }
        }
    }
    impl Node for Sink {
        fn on_frame(&mut self, _p: PortId, frame: Vec<u8>, _ctx: &mut NodeCtx) {
            self.got.push(frame);
        }
        fn on_timer(&mut self, _t: u64, _c: &mut NodeCtx) {}
        fn poll(&mut self, ctx: &mut NodeCtx) {
            for frame in self.outbox.drain(..) {
                ctx.send(0, frame);
            }
        }
    }

    fn attach_sink(net: &mut SimNet, bn: &BoxNet, site: usize) -> NodeId {
        let id = net.add_node(Box::new(Sink::new()));
        let (router, port) = bn.host_ports[site];
        net.connect(id, 0, router, port, LinkParams::delay_only(Dur::from_millis(1)));
        id
    }

    /// Make `host` (a [`Sink`]) originate `frame` at time `at`.
    fn inject_at(net: &mut SimNet, at: Time, host: NodeId, frame: Vec<u8>) {
        net.schedule_call(at, move |net| {
            net.node_mut::<Sink>(host).outbox.push(frame);
            net.poll_node(host);
        });
    }

    #[test]
    fn every_shipped_topology_passes_the_static_check() {
        for topo in shipped_topologies() {
            let primary = topo.check(&[]);
            assert!(primary.ok(), "{}: primary defects {:?}", topo.name, primary.defects);
            for e in 0..topo.edges.len() {
                let failed = topo.check(&[e]);
                assert!(
                    failed.loop_free(),
                    "{} minus edge {e}: loops {:?}",
                    topo.name,
                    failed.defects
                );
            }
        }
    }

    #[test]
    fn build_rejects_a_disconnected_topology() {
        let topo = BoxTopo::new("broken", 2).host(0, 1).host(1, 2); // no edge
        let r = topo.check(&[]);
        assert!(!r.ok());
        assert!(r.loop_free());
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let mut net = SimNet::new(1);
            topo.build(&mut net, raw_peek);
        }));
        assert!(result.is_err(), "build must refuse an unreachable topology");
    }

    #[test]
    fn frames_cross_a_three_hop_line_both_ways() {
        let mut net = SimNet::new(7);
        let bn = topo_line3().build(&mut net, raw_peek);
        let a = attach_sink(&mut net, &bn, 0);
        let b = attach_sink(&mut net, &bn, 1);
        let (aa, ba) = (box_host_addr(0), box_host_addr(1));
        inject_at(&mut net, t(0), a, raw_frame(aa, ba, b"ping"));
        inject_at(&mut net, t(0), b, raw_frame(ba, aa, b"pong"));
        net.run_until(t(100));
        let got_b = &net.node_mut::<Sink>(b).got;
        assert_eq!(got_b.len(), 1);
        assert_eq!(got_b[0], raw_frame(aa, ba, b"ping"));
        let got_a = &net.node_mut::<Sink>(a).got;
        assert_eq!(got_a.len(), 1);
        assert_eq!(got_a[0], raw_frame(ba, aa, b"pong"));
        assert_eq!(bn.router_stats(&mut net, |s| s.encapped), 2);
        assert_eq!(bn.router_stats(&mut net, |s| s.delivered), 2);
        assert_eq!(bn.router_stats(&mut net, |s| s.dropped_no_route), 0);
    }

    #[test]
    fn unroutable_destination_is_dropped_at_ingress() {
        let mut net = SimNet::new(7);
        let bn = topo_line3().build(&mut net, raw_peek);
        let a = attach_sink(&mut net, &bn, 0);
        inject_at(&mut net, t(0), a, raw_frame(box_host_addr(0), 0xDEAD_BEEF, b"x"));
        net.run_until(t(50));
        assert_eq!(bn.router_stats(&mut net, |s| s.dropped_no_route), 1);
        assert_eq!(bn.router_stats(&mut net, |s| s.encapped), 0);
    }

    #[test]
    fn ttl_kills_a_deliberately_looped_packet() {
        let mut net = SimNet::new(7);
        let bn = topo_line3().build(&mut net, raw_peek);
        let a = attach_sink(&mut net, &bn, 0);
        let _b = attach_sink(&mut net, &bn, 1);
        // Sabotage after build: make routers 0 and 1 bounce site-1 traffic
        // at each other. (build() would have refused these tables.)
        let (r0, r1) = (bn.routers[0], bn.routers[1]);
        let b_addr = box_host_addr(1);
        net.schedule_call(Time::ZERO, move |net| {
            net.node_mut::<StaticRouter>(r0).install_routes(&[(b_addr, 0)]);
            net.node_mut::<StaticRouter>(r1).install_routes(&[(b_addr, 0)]);
        });
        inject_at(&mut net, t(1), a, raw_frame(box_host_addr(0), b_addr, b"loop"));
        net.run_until(t(2000));
        assert_eq!(bn.router_stats(&mut net, |s| s.dropped_ttl), 1);
        assert_eq!(bn.router_stats(&mut net, |s| s.delivered), 0);
        // The packet took exactly ttl-1 inter-router hops before dying.
        assert_eq!(bn.router_stats(&mut net, |s| s.forwarded), BOX_TTL as u64 - 1);
    }

    #[test]
    fn reroute_swaps_the_diamond_onto_its_backup_path() {
        let mut net = SimNet::new(7);
        let bn = topo_diamond().build(&mut net, raw_peek);
        let a = attach_sink(&mut net, &bn, 0);
        let b = attach_sink(&mut net, &bn, 1);
        let (aa, ba) = (box_host_addr(0), box_host_addr(1));
        // Partition the primary's first hop at 50ms; detection takes 20ms.
        bn.schedule_reroute(&mut net, 0, t(50), Dur::from_millis(20));
        inject_at(&mut net, t(0), a, raw_frame(aa, ba, b"before")); // primary path
        net.run_until(t(40));
        assert_eq!(net.node_mut::<Sink>(b).got.len(), 1);
        inject_at(&mut net, t(60), a, raw_frame(aa, ba, b"during")); // link down, tables stale: dropped
        inject_at(&mut net, t(80), a, raw_frame(aa, ba, b"after")); // rerouted via router 2
        net.run_until(t(300));
        let got: Vec<_> = net.node_mut::<Sink>(b).got.clone();
        assert_eq!(got, vec![raw_frame(aa, ba, b"before"), raw_frame(aa, ba, b"after")]);
        // The backup path transits router 2.
        let r2 = bn.routers[2];
        assert_eq!(net.node_mut::<StaticRouter>(r2).stats.forwarded, 1);
    }

    #[test]
    fn route_tables_after_partition_drop_instead_of_looping() {
        // long_haul minus its middle edge: both sides keep loop-free tables
        // with no route across the cut.
        let topo = topo_long_haul();
        let tables = topo.route_tables(&[1]);
        // Router 0 still reaches host 0 (attached to it via access port)
        // but has no entry for host 1.
        assert!(tables[0].iter().any(|&(addr, _)| addr == box_host_addr(0)));
        assert!(!tables[0].iter().any(|&(addr, _)| addr == box_host_addr(1)));
        assert!(topo.check(&[1]).loop_free());
    }

    // -- NAT ----------------------------------------------------------------

    /// NatCodec for the test transport: ports live at bytes 8..10 (src) and
    /// 10..12 (dst); "seq" at 12..16; flag byte at 16 (1 = RST).
    struct RawNat;
    impl NatCodec for RawNat {
        fn tuple(&self, f: &[u8]) -> Option<((u32, u16), (u32, u16))> {
            if f.len() < 17 {
                return None;
            }
            let (src, dst) = raw_peek(f)?;
            let sp = u16::from_be_bytes([f[8], f[9]]);
            let dp = u16::from_be_bytes([f[10], f[11]]);
            Some(((src, sp), (dst, dp)))
        }
        fn rewrite_src(&self, f: &[u8], addr: u32, port: u16) -> Option<Vec<u8>> {
            let mut out = f.to_vec();
            out.get_mut(0..4)?.copy_from_slice(&addr.to_be_bytes());
            out.get_mut(8..10)?.copy_from_slice(&port.to_be_bytes());
            Some(out)
        }
        fn rewrite_dst(&self, f: &[u8], addr: u32, port: u16) -> Option<Vec<u8>> {
            let mut out = f.to_vec();
            out.get_mut(4..8)?.copy_from_slice(&addr.to_be_bytes());
            out.get_mut(10..12)?.copy_from_slice(&port.to_be_bytes());
            Some(out)
        }
        fn shift_seq(&self, f: &[u8], delta: u32) -> Option<Vec<u8>> {
            if f.len() <= 17 {
                return None; // no payload
            }
            let mut out = f.to_vec();
            let seq = u32::from_be_bytes(out[12..16].try_into().unwrap());
            out[12..16].copy_from_slice(&seq.wrapping_add(delta).to_be_bytes());
            Some(out)
        }
        fn forge_rst_reply(&self, f: &[u8]) -> Option<Vec<u8>> {
            let ((sa, sp), (da, dp)) = self.tuple(f)?;
            let mut out = raw_frame(da, sa, &[]);
            out.extend_from_slice(&dp.to_be_bytes());
            out.extend_from_slice(&sp.to_be_bytes());
            out.extend_from_slice(&[0, 0, 0, 0, 1]); // seq 0, RST flag
            Some(out)
        }
    }

    fn nat_frame(src: (u32, u16), dst: (u32, u16), seq: u32, body: &[u8]) -> Vec<u8> {
        let mut f = raw_frame(src.0, dst.0, &[]);
        f.extend_from_slice(&src.1.to_be_bytes());
        f.extend_from_slice(&dst.1.to_be_bytes());
        f.extend_from_slice(&seq.to_be_bytes());
        f.push(0);
        f.extend_from_slice(body);
        f
    }

    /// client(Sink) -- NatBox -- R0 == R1 -- server(Sink), with the NAT's
    /// public address as site 0's routed address.
    fn nat_gateway_net(nat: NatBox) -> (SimNet, BoxNet, NodeId, NodeId, NodeId) {
        let mut net = SimNet::new(3);
        let bn = topo_nat_gateway().build(&mut net, raw_peek);
        let client = net.add_node(Box::new(Sink::new()));
        let nat_id = net.add_node(Box::new(nat));
        let server = attach_sink(&mut net, &bn, 1);
        let access = LinkParams::delay_only(Dur::from_millis(1));
        net.connect(client, 0, nat_id, NAT_INSIDE, access.clone());
        let (router, port) = bn.host_ports[0];
        net.connect(nat_id, NAT_OUTSIDE, router, port, access);
        (net, bn, client, nat_id, server)
    }

    const PRIVATE: u32 = 0xC0A8_0001; // 192.168.0.1, never routed
    const CPORT: u16 = 5000;
    const SPORT: u16 = 80;

    #[test]
    fn nat_translates_both_directions_and_survives_round_trips() {
        let (mut net, _bn, client, nat_id, server) =
            nat_gateway_net(NatBox::new(Box::new(RawNat), box_host_addr(0)));
        let srv = (box_host_addr(1), SPORT);
        inject_at(&mut net, t(0), client, nat_frame((PRIVATE, CPORT), srv, 1, b"req"));
        net.run_until(t(100));
        // Server sees the NAT's public endpoint, not the private one.
        let seen = net.node_mut::<Sink>(server).got.clone();
        assert_eq!(seen.len(), 1);
        let public = (box_host_addr(0), NAT_FIRST_PORT);
        assert_eq!(seen[0], nat_frame(public, srv, 1, b"req"));
        // Reply to the public endpoint arrives back at the client, un-NAT'd.
        inject_at(&mut net, t(100), server, nat_frame(srv, public, 9, b"resp"));
        net.run_until(t(200));
        let back = net.node_mut::<Sink>(client).got.clone();
        assert_eq!(back, vec![nat_frame(srv, (PRIVATE, CPORT), 9, b"resp")]);
        let nat = net.node_mut::<NatBox>(nat_id);
        assert_eq!(nat.stats.mappings_created, 1);
        assert_eq!(nat.stats.translated_out, 1);
        assert_eq!(nat.stats.translated_in, 1);
    }

    #[test]
    fn wiped_table_drops_inbound_and_remaps_outbound_to_a_fresh_port() {
        let (mut net, _bn, client, nat_id, server) =
            nat_gateway_net(NatBox::new(Box::new(RawNat), box_host_addr(0)));
        let srv = (box_host_addr(1), SPORT);
        let public0 = (box_host_addr(0), NAT_FIRST_PORT);
        inject_at(&mut net, t(0), client, nat_frame((PRIVATE, CPORT), srv, 1, b"req"));
        net.run_until(t(50));
        schedule_nat_wipe(&mut net, nat_id, t(60));
        // Inbound to the old mapping after the wipe: dropped.
        inject_at(&mut net, t(70), server, nat_frame(srv, public0, 9, b"late"));
        // Client retransmits: a NEW mapping on the next public port.
        inject_at(&mut net, t(80), client, nat_frame((PRIVATE, CPORT), srv, 1, b"req"));
        net.run_until(t(300));
        assert!(net.node_mut::<Sink>(client).got.is_empty());
        let seen = net.node_mut::<Sink>(server).got.clone();
        let public1 = (box_host_addr(0), NAT_FIRST_PORT + 1);
        assert_eq!(
            seen,
            vec![nat_frame(public0, srv, 1, b"req"), nat_frame(public1, srv, 1, b"req")]
        );
        let nat = net.node_mut::<NatBox>(nat_id);
        assert_eq!(nat.stats.table_wipes, 1);
        assert_eq!(nat.stats.unknown_drops, 1);
        assert_eq!(nat.stats.mappings_created, 2);
    }

    #[test]
    fn rst_on_unknown_forges_a_reset_toward_the_sender() {
        let (mut net, _bn, client, nat_id, server) =
            nat_gateway_net(NatBox::new(Box::new(RawNat), box_host_addr(0)).rst_on_unknown());
        let srv = (box_host_addr(1), SPORT);
        let public = (box_host_addr(0), NAT_FIRST_PORT);
        // Unsolicited inbound: no mapping exists.
        inject_at(&mut net, t(0), server, nat_frame(srv, public, 9, b"spray"));
        net.run_until(t(200));
        assert!(net.node_mut::<Sink>(client).got.is_empty());
        let seen = net.node_mut::<Sink>(server).got.clone();
        assert_eq!(seen.len(), 1, "the forged RST must route back to the sender");
        assert_eq!(seen[0][16], 1, "RST flag set");
        let nat = net.node_mut::<NatBox>(nat_id);
        assert_eq!(nat.stats.rsts_sent, 1);
    }

    #[test]
    fn hostile_mode_shifts_inbound_data_but_not_pure_acks() {
        let (mut net, _bn, client, _nat_id, server) =
            nat_gateway_net(NatBox::new(Box::new(RawNat), box_host_addr(0)).hostile(1000));
        let srv = (box_host_addr(1), SPORT);
        let public = (box_host_addr(0), NAT_FIRST_PORT);
        inject_at(&mut net, t(0), client, nat_frame((PRIVATE, CPORT), srv, 1, b"req"));
        net.run_until(t(50));
        inject_at(&mut net, t(50), server, nat_frame(srv, public, 100, b"data"));
        inject_at(&mut net, t(55), server, nat_frame(srv, public, 100, b"")); // pure ack
        net.run_until(t(300));
        let back = net.node_mut::<Sink>(client).got.clone();
        assert_eq!(
            back,
            vec![
                nat_frame(srv, (PRIVATE, CPORT), 1100, b"data"), // shifted
                nat_frame(srv, (PRIVATE, CPORT), 100, b""),      // untouched
            ]
        );
    }

    // -- deterministic random topologies (proptest rides these in tests/) ---

    #[test]
    fn random_connected_topologies_are_reachable_and_survive_any_failure() {
        for seed in 0..20u64 {
            let routers = 2 + (seed as usize % 7);
            let topo = topo_random_connected(routers, seed as usize % 4, seed * 977 + 1);
            let r = topo.check(&[]);
            assert!(r.ok(), "seed {seed}: {:?}", r.defects);
            for e in 0..topo.edges.len() {
                assert!(topo.check(&[e]).loop_free(), "seed {seed} minus edge {e}");
            }
        }
    }

    #[test]
    fn faulty_backbone_links_are_respected() {
        // A lossy backbone edge drops some frames; just confirm the fault
        // profile plumbs through BoxEdge params.
        let mut topo = topo_line3();
        topo.edges[0].params =
            LinkParams::delay_only(Dur::from_millis(5)).with_fault(FaultProfile::lossy(1.0));
        let mut net = SimNet::new(9);
        let bn = topo.build(&mut net, raw_peek);
        let a = attach_sink(&mut net, &bn, 0);
        let b = attach_sink(&mut net, &bn, 1);
        inject_at(&mut net, t(0), a, raw_frame(box_host_addr(0), box_host_addr(1), b"x"));
        net.run_until(t(100));
        assert!(net.node_mut::<Sink>(b).got.is_empty());
    }

    proptest::proptest! {
        /// Arbitrary connected topologies under random partitions: the
        /// tables never loop (statically, for any 1- or 2-edge failure
        /// set, and dynamically — zero TTL deaths), and after a scripted
        /// partition every live router converges to exactly the tables
        /// [`BoxTopo::route_tables`] computes for that failure. A
        /// post-convergence probe then behaves as the static graph
        /// predicts: delivered iff the hosts are still connected.
        #[test]
        fn prop_random_partitions_never_loop_and_converge(
            routers in 2usize..8,
            extra in 0usize..5,
            seed in 1u64..1_000_000,
            pick in proptest::num::u64::ANY,
        ) {
            let topo = topo_random_connected(routers, extra, seed);
            let n_edges = topo.edges.len();
            let primary = topo.check(&[]);
            proptest::prop_assert!(primary.ok(), "primary defects: {:?}", primary.defects);
            let e1 = (pick as usize) % n_edges;
            let e2 = ((pick >> 20) as usize) % n_edges;
            for failed in [vec![e1], vec![e1, e2]] {
                let r = topo.check(&failed);
                proptest::prop_assert!(
                    r.loop_free(),
                    "failure {:?} loops: {:?}", failed, r.defects
                );
            }

            let want_tables = topo.route_tables(&[e1]);
            // BFS over the surviving edges: are the two host routers
            // still connected once e1 is cut?
            let hosts_connected = {
                let (ra, rb) = (topo.hosts[0].router, topo.hosts[1].router);
                let mut seen = vec![false; topo.routers];
                let mut q = vec![ra];
                seen[ra] = true;
                while let Some(n) = q.pop() {
                    for (i, e) in topo.edges.iter().enumerate() {
                        if i == e1 {
                            continue;
                        }
                        let next = if e.a == n {
                            Some(e.b)
                        } else if e.b == n {
                            Some(e.a)
                        } else {
                            None
                        };
                        if let Some(m) = next {
                            if !seen[m] {
                                seen[m] = true;
                                q.push(m);
                            }
                        }
                    }
                }
                seen[rb]
            };

            let mut net = SimNet::new(seed);
            let bn = topo.clone().build(&mut net, raw_peek);
            let a = attach_sink(&mut net, &bn, 0);
            let b = attach_sink(&mut net, &bn, 1);
            bn.schedule_reroute(&mut net, e1, t(10), Dur::from_millis(5));
            inject_at(&mut net, t(1_000), a, raw_frame(box_host_addr(0), box_host_addr(1), b"probe"));
            net.run_until(t(5_000));

            for (r, want) in bn.routers.iter().zip(&want_tables) {
                let got = net.node_mut::<StaticRouter>(*r).route_snapshot();
                let mut want = want.clone();
                want.sort_unstable();
                proptest::prop_assert_eq!(got, want, "router table did not converge");
            }
            let delivered = !net.node_mut::<Sink>(b).got.is_empty();
            proptest::prop_assert_eq!(delivered, hosts_connected);
            proptest::prop_assert_eq!(
                bn.router_stats(&mut net, |s| s.dropped_ttl), 0, "a frame looped"
            );
        }
    }
}
