//! Network-layer packet formats.
//!
//! The paper's test **T3** for the network layer is met "because the
//! sublayers use completely different packets (e.g., LSPs versus IP
//! packets), not merely different headers in the same packet". Each
//! sublayer here owns a distinct packet type: HELLOs for neighbor
//! determination, routing PDUs (distance-vector advertisements or
//! link-state packets) for route computation, and data packets for
//! forwarding. A one-byte kind field demultiplexes them on the wire.

use std::fmt;

/// A network-layer address (flat 32-bit, IPv4-sized).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Addr(pub u32);

impl fmt::Debug for Addr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let b = self.0.to_be_bytes();
        write!(f, "{}.{}.{}.{}", b[0], b[1], b[2], b[3])
    }
}

impl fmt::Display for Addr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(self, f)
    }
}

/// Packet kinds on a router-router link.
pub const KIND_HELLO: u8 = 1;
pub const KIND_ROUTING: u8 = 2;
pub const KIND_DATA: u8 = 3;

/// Neighbor-determination HELLO: "handshake messages sent directly on the
/// data link."
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Hello {
    pub from: Addr,
}

impl Hello {
    pub fn encode(&self) -> Vec<u8> {
        let mut out = vec![KIND_HELLO];
        out.extend_from_slice(&self.from.0.to_be_bytes());
        out
    }

    pub fn decode(bytes: &[u8]) -> Option<Hello> {
        if bytes.len() != 5 || bytes[0] != KIND_HELLO {
            return None;
        }
        Some(Hello { from: Addr(u32::from_be_bytes([bytes[1], bytes[2], bytes[3], bytes[4]])) })
    }
}

/// A data packet: the only packet the forwarding sublayer touches.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct DataPacket {
    pub src: Addr,
    pub dst: Addr,
    pub ttl: u8,
    pub payload: Vec<u8>,
}

impl DataPacket {
    pub fn new(src: Addr, dst: Addr, payload: Vec<u8>) -> DataPacket {
        DataPacket { src, dst, ttl: 64, payload }
    }

    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(10 + self.payload.len());
        out.push(KIND_DATA);
        out.extend_from_slice(&self.src.0.to_be_bytes());
        out.extend_from_slice(&self.dst.0.to_be_bytes());
        out.push(self.ttl);
        out.extend_from_slice(&self.payload);
        out
    }

    pub fn decode(bytes: &[u8]) -> Option<DataPacket> {
        if bytes.len() < 10 || bytes[0] != KIND_DATA {
            return None;
        }
        Some(DataPacket {
            src: Addr(u32::from_be_bytes([bytes[1], bytes[2], bytes[3], bytes[4]])),
            dst: Addr(u32::from_be_bytes([bytes[5], bytes[6], bytes[7], bytes[8]])),
            ttl: bytes[9],
            payload: bytes[10..].to_vec(),
        })
    }
}

/// An opaque routing PDU: the route-computation sublayer's own packets
/// (distance-vector advertisement or link-state packet), wrapped with the
/// routing kind byte. The router core never inspects the body (test T3).
pub fn wrap_routing(body: Vec<u8>) -> Vec<u8> {
    let mut out = vec![KIND_ROUTING];
    out.extend(body);
    out
}

/// Unwrap a routing PDU body.
pub fn unwrap_routing(bytes: &[u8]) -> Option<&[u8]> {
    if bytes.first() == Some(&KIND_ROUTING) {
        Some(&bytes[1..])
    } else {
        None
    }
}

/// Helpers for routing-PDU body serialization.
pub mod wire {
    use super::Addr;

    pub fn put_u32(out: &mut Vec<u8>, v: u32) {
        out.extend_from_slice(&v.to_be_bytes());
    }

    pub fn get_u32(bytes: &[u8], pos: &mut usize) -> Option<u32> {
        let s = bytes.get(*pos..*pos + 4)?;
        *pos += 4;
        Some(u32::from_be_bytes([s[0], s[1], s[2], s[3]]))
    }

    pub fn put_addr(out: &mut Vec<u8>, a: Addr) {
        put_u32(out, a.0);
    }

    pub fn get_addr(bytes: &[u8], pos: &mut usize) -> Option<Addr> {
        get_u32(bytes, pos).map(Addr)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hello_round_trip() {
        let h = Hello { from: Addr(0x0A000001) };
        assert_eq!(Hello::decode(&h.encode()), Some(h));
        assert_eq!(Hello::decode(&[KIND_DATA, 0, 0, 0, 1]), None);
        assert_eq!(Hello::decode(&[KIND_HELLO, 0, 0, 0]), None);
    }

    #[test]
    fn data_round_trip() {
        let p = DataPacket::new(Addr(1), Addr(2), b"payload".to_vec());
        assert_eq!(DataPacket::decode(&p.encode()), Some(p));
    }

    #[test]
    fn data_rejects_short_or_wrong_kind() {
        assert_eq!(DataPacket::decode(&[KIND_DATA, 1, 2]), None);
        assert_eq!(DataPacket::decode(&Hello { from: Addr(9) }.encode()), None);
    }

    #[test]
    fn routing_wrap_round_trip() {
        let body = vec![1, 2, 3];
        let wrapped = wrap_routing(body.clone());
        assert_eq!(unwrap_routing(&wrapped), Some(body.as_slice()));
        assert_eq!(unwrap_routing(&[KIND_HELLO, 1]), None);
    }

    #[test]
    fn addr_formats_like_ipv4() {
        assert_eq!(format!("{}", Addr(0x0A00002A)), "10.0.0.42");
    }

    #[test]
    fn wire_helpers_round_trip() {
        let mut out = Vec::new();
        wire::put_u32(&mut out, 7);
        wire::put_addr(&mut out, Addr(9));
        let mut pos = 0;
        assert_eq!(wire::get_u32(&out, &mut pos), Some(7));
        assert_eq!(wire::get_addr(&out, &mut pos), Some(Addr(9)));
        assert_eq!(wire::get_u32(&out, &mut pos), None);
    }
}
