//! Link-state route computation (OSPF/IS-IS style).
//!
//! Each router originates a sequence-numbered link-state packet (LSP)
//! listing its adjacencies; LSPs flood hop by hop; every router runs
//! Dijkstra over the resulting link-state database. The second swappable
//! engine behind [`crate::routecomp::RouteComputation`] — experiment E2
//! verifies it computes the same forwarding behaviour as distance vector.

use crate::packet::{wire, Addr};
use crate::routecomp::{RcStats, RouteComputation};
use netsim::{Dur, PortId, Time};
use std::collections::{BinaryHeap, HashMap, HashSet};

/// A link-state packet: origin, sequence number, adjacency list.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Lsp {
    pub origin: Addr,
    pub seq: u32,
    pub neighbors: Vec<Addr>,
}

impl Lsp {
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::new();
        wire::put_addr(&mut out, self.origin);
        wire::put_u32(&mut out, self.seq);
        wire::put_u32(&mut out, self.neighbors.len() as u32);
        for n in &self.neighbors {
            wire::put_addr(&mut out, *n);
        }
        out
    }

    pub fn decode(bytes: &[u8]) -> Option<Lsp> {
        let mut pos = 0;
        let origin = wire::get_addr(bytes, &mut pos)?;
        let seq = wire::get_u32(bytes, &mut pos)?;
        let n = wire::get_u32(bytes, &mut pos)? as usize;
        if n > 10_000 {
            return None;
        }
        let mut neighbors = Vec::with_capacity(n);
        for _ in 0..n {
            neighbors.push(wire::get_addr(bytes, &mut pos)?);
        }
        Some(Lsp { origin, seq, neighbors })
    }
}

/// Timer settings.
#[derive(Clone, Debug)]
pub struct LsConfig {
    /// Periodic LSP refresh (keeps the database alive and repairs losses).
    pub refresh_interval: Dur,
    /// LSPs older than this are purged.
    pub max_age: Dur,
}

impl Default for LsConfig {
    fn default() -> Self {
        LsConfig {
            refresh_interval: Dur::from_millis(1500),
            max_age: Dur::from_millis(6000),
        }
    }
}

/// The link-state engine.
pub struct LinkState {
    me: Addr,
    cfg: LsConfig,
    /// Live adjacencies: port -> neighbor address.
    adj: HashMap<PortId, Addr>,
    /// The link-state database: origin -> (LSP, received time).
    lsdb: HashMap<Addr, (Lsp, Time)>,
    my_seq: u32,
    next_refresh: Time,
    outbox: Vec<(PortId, Vec<u8>)>,
    version: u64,
    stats: RcStats,
}

impl LinkState {
    pub fn new(me: Addr, cfg: LsConfig) -> LinkState {
        LinkState {
            me,
            cfg,
            adj: HashMap::new(),
            lsdb: HashMap::new(),
            my_seq: 0,
            next_refresh: Time::ZERO,
            outbox: Vec::new(),
            version: 0,
            stats: RcStats::default(),
        }
    }

    fn originate(&mut self, now: Time) {
        self.my_seq += 1;
        let mut neighbors: Vec<Addr> = self.adj.values().copied().collect();
        neighbors.sort();
        neighbors.dedup();
        let lsp = Lsp { origin: self.me, seq: self.my_seq, neighbors };
        self.lsdb.insert(self.me, (lsp.clone(), now));
        self.flood(&lsp, None);
        self.version += 1;
        self.stats.recomputations += 1;
    }

    /// Send an LSP out every adjacency except the one it arrived on.
    fn flood(&mut self, lsp: &Lsp, except: Option<PortId>) {
        let body = lsp.encode();
        for &port in self.adj.keys() {
            if Some(port) == except {
                continue;
            }
            self.outbox.push((port, body.clone()));
            self.stats.pdus_sent += 1;
        }
    }

    /// Dijkstra over the two-way-checked LSDB.
    fn spf(&self) -> Vec<(Addr, PortId)> {
        // Build the graph: edge u-v counts only if both LSPs list each
        // other (two-way connectivity check).
        let lists: HashMap<Addr, &Vec<Addr>> =
            self.lsdb.iter().map(|(&o, (lsp, _))| (o, &lsp.neighbors)).collect();
        let two_way = |u: Addr, v: Addr| {
            lists.get(&u).is_some_and(|l| l.contains(&v))
                && lists.get(&v).is_some_and(|l| l.contains(&u))
        };

        // Standard Dijkstra with deterministic tie-breaking on (dist, addr).
        let mut dist: HashMap<Addr, u32> = HashMap::new();
        let mut first_hop: HashMap<Addr, Addr> = HashMap::new();
        let mut heap: BinaryHeap<std::cmp::Reverse<(u32, Addr, Option<Addr>)>> = BinaryHeap::new();
        let mut done: HashSet<Addr> = HashSet::new();
        dist.insert(self.me, 0);
        heap.push(std::cmp::Reverse((0, self.me, None)));
        while let Some(std::cmp::Reverse((d, u, fh))) = heap.pop() {
            if !done.insert(u) {
                continue;
            }
            if let Some(fh) = fh {
                first_hop.insert(u, fh);
            }
            let Some(nbrs) = lists.get(&u) else { continue };
            for &v in nbrs.iter() {
                if !two_way(u, v) || done.contains(&v) {
                    continue;
                }
                let nd = d + 1;
                let better = dist.get(&v).is_none_or(|&cur| nd < cur);
                if better {
                    dist.insert(v, nd);
                    let v_first_hop = if u == self.me { v } else { fh.unwrap_or(v) };
                    heap.push(std::cmp::Reverse((nd, v, Some(v_first_hop))));
                }
            }
        }

        // Map first-hop addresses to output ports (lowest port on ties).
        let mut addr_to_port: HashMap<Addr, PortId> = HashMap::new();
        let mut adj_sorted: Vec<(PortId, Addr)> =
            self.adj.iter().map(|(&p, &a)| (p, a)).collect();
        adj_sorted.sort();
        for (port, addr) in adj_sorted {
            addr_to_port.entry(addr).or_insert(port);
        }
        let mut out: Vec<(Addr, PortId)> = first_hop
            .iter()
            .filter_map(|(&dst, fh)| addr_to_port.get(fh).map(|&p| (dst, p)))
            .collect();
        out.sort();
        out
    }
}

impl RouteComputation for LinkState {
    fn name(&self) -> &'static str {
        "link state"
    }

    fn on_neighbor_up(&mut self, port: PortId, addr: Addr, now: Time) {
        self.adj.insert(port, addr);
        self.originate(now);
        // Bring the new neighbor up to date with our whole database.
        let lsps: Vec<Lsp> = self.lsdb.values().map(|(l, _)| l.clone()).collect();
        for lsp in lsps {
            self.outbox.push((port, lsp.encode()));
            self.stats.pdus_sent += 1;
        }
    }

    fn on_neighbor_down(&mut self, port: PortId, addr: Addr, now: Time) {
        if self.adj.get(&port) == Some(&addr) {
            self.adj.remove(&port);
        }
        self.originate(now);
    }

    fn on_pdu(&mut self, port: PortId, body: &[u8], now: Time) {
        self.stats.pdus_received += 1;
        let Some(lsp) = Lsp::decode(body) else { return };
        if lsp.origin == self.me {
            // Someone floods an old LSP of ours back: outbid it.
            if lsp.seq >= self.my_seq {
                self.my_seq = lsp.seq;
                self.originate(now);
            }
            return;
        }
        let newer = match self.lsdb.get(&lsp.origin) {
            Some((cur, _)) => lsp.seq > cur.seq,
            None => true,
        };
        if newer {
            self.lsdb.insert(lsp.origin, (lsp.clone(), now));
            self.flood(&lsp, Some(port));
            self.version += 1;
            self.stats.recomputations += 1;
        } else if let Some((cur, _)) = self.lsdb.get(&lsp.origin) {
            if lsp.seq < cur.seq {
                // Peer is stale: send it the newer copy directly.
                let body = cur.encode();
                self.outbox.push((port, body));
                self.stats.pdus_sent += 1;
            }
        }
    }

    fn poll_pdu(&mut self, _now: Time) -> Option<(PortId, Vec<u8>)> {
        self.outbox.pop()
    }

    fn poll_deadline(&self, _now: Time) -> Option<Time> {
        let oldest = self.lsdb.values().map(|&(_, at)| at + self.cfg.max_age).min();
        Some(match oldest {
            Some(t) => t.min(self.next_refresh),
            None => self.next_refresh,
        })
    }

    fn on_tick(&mut self, now: Time) {
        // Purge aged-out LSPs (a crashed router's state eventually dies).
        let max_age = self.cfg.max_age;
        let before = self.lsdb.len();
        self.lsdb.retain(|&origin, &mut (_, at)| {
            origin == self.me || now.since(at) < max_age
        });
        if self.lsdb.len() != before {
            self.version += 1;
            self.stats.recomputations += 1;
        }
        if now >= self.next_refresh {
            self.originate(now);
            self.next_refresh = now + self.cfg.refresh_interval;
        }
    }

    fn routes(&self) -> Vec<(Addr, PortId)> {
        self.spf()
    }

    fn version(&self) -> u64 {
        self.version
    }

    fn stats(&self) -> &RcStats {
        &self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lsp_round_trip() {
        let lsp = Lsp { origin: Addr(1), seq: 7, neighbors: vec![Addr(2), Addr(3)] };
        assert_eq!(Lsp::decode(&lsp.encode()), Some(lsp));
        assert_eq!(Lsp::decode(&[1, 2]), None);
    }

    /// Hand-feed LSPs describing a small topology and check SPF.
    fn seed_lsdb(ls: &mut LinkState, topo: &[(u32, Vec<u32>)]) {
        for (origin, nbrs) in topo {
            let lsp = Lsp {
                origin: Addr(*origin),
                seq: 1,
                neighbors: nbrs.iter().map(|&n| Addr(n)).collect(),
            };
            ls.lsdb.insert(lsp.origin, (lsp, Time::ZERO));
        }
    }

    #[test]
    fn spf_line_topology() {
        // 1 - 2 - 3 - 4, computing at 1 with neighbor 2 on port 0.
        let mut ls = LinkState::new(Addr(1), LsConfig::default());
        ls.adj.insert(0, Addr(2));
        seed_lsdb(
            &mut ls,
            &[
                (1, vec![2]),
                (2, vec![1, 3]),
                (3, vec![2, 4]),
                (4, vec![3]),
            ],
        );
        assert_eq!(ls.routes(), vec![(Addr(2), 0), (Addr(3), 0), (Addr(4), 0)]);
    }

    #[test]
    fn spf_prefers_shorter_path() {
        // Square 1-2-4, 1-3-4 plus direct 1-4: direct wins.
        let mut ls = LinkState::new(Addr(1), LsConfig::default());
        ls.adj.insert(0, Addr(2));
        ls.adj.insert(1, Addr(3));
        ls.adj.insert(2, Addr(4));
        seed_lsdb(
            &mut ls,
            &[
                (1, vec![2, 3, 4]),
                (2, vec![1, 4]),
                (3, vec![1, 4]),
                (4, vec![1, 2, 3]),
            ],
        );
        let routes = ls.routes();
        assert!(routes.contains(&(Addr(4), 2)), "{routes:?}");
    }

    #[test]
    fn one_way_links_are_ignored() {
        // 2 claims adjacency with 3, but 3 does not reciprocate.
        let mut ls = LinkState::new(Addr(1), LsConfig::default());
        ls.adj.insert(0, Addr(2));
        seed_lsdb(&mut ls, &[(1, vec![2]), (2, vec![1, 3]), (3, vec![])]);
        let routes = ls.routes();
        assert!(!routes.iter().any(|&(a, _)| a == Addr(3)), "{routes:?}");
    }

    #[test]
    fn newer_lsp_replaces_and_floods() {
        let mut ls = LinkState::new(Addr(1), LsConfig::default());
        ls.adj.insert(0, Addr(2));
        ls.adj.insert(1, Addr(3));
        let lsp = Lsp { origin: Addr(9), seq: 5, neighbors: vec![Addr(2)] };
        ls.on_pdu(0, &lsp.encode(), Time::ZERO);
        assert_eq!(ls.lsdb.get(&Addr(9)).map(|(l, _)| l.seq), Some(5));
        // Flooded out port 1 only (not back out port 0).
        let pdus: Vec<(PortId, Vec<u8>)> =
            std::iter::from_fn(|| ls.poll_pdu(Time::ZERO)).collect();
        assert!(pdus.iter().all(|(p, _)| *p == 1));
        assert!(!pdus.is_empty());
        // An older LSP is rejected.
        let old = Lsp { origin: Addr(9), seq: 3, neighbors: vec![] };
        ls.on_pdu(1, &old.encode(), Time::ZERO);
        assert_eq!(ls.lsdb.get(&Addr(9)).map(|(l, _)| l.seq), Some(5));
    }

    #[test]
    fn own_stale_lsp_is_outbid() {
        let mut ls = LinkState::new(Addr(1), LsConfig::default());
        ls.adj.insert(0, Addr(2));
        ls.originate(Time::ZERO); // seq 1
        let ghost = Lsp { origin: Addr(1), seq: 10, neighbors: vec![] };
        ls.on_pdu(0, &ghost.encode(), Time::ZERO);
        assert!(ls.my_seq > 10, "must outbid the ghost LSP");
    }

    #[test]
    fn aged_lsps_purged() {
        let mut ls = LinkState::new(Addr(1), LsConfig::default());
        ls.adj.insert(0, Addr(2));
        let lsp = Lsp { origin: Addr(9), seq: 1, neighbors: vec![] };
        ls.on_pdu(0, &lsp.encode(), Time::ZERO);
        assert!(ls.lsdb.contains_key(&Addr(9)));
        ls.on_tick(Time::ZERO + Dur::from_secs(30));
        assert!(!ls.lsdb.contains_key(&Addr(9)));
    }
}
