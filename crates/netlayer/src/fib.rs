//! The **forwarding** sublayer's database: a longest-prefix-match FIB.
//!
//! Forwarding sits at the top of the network-layer sublayers (Figure 3):
//! data packets consult only this table — built *for* it by route
//! computation below — and never see routing PDUs. The table is a binary
//! trie over address bits supporting arbitrary prefix lengths, so both the
//! host routes installed by the routing daemons and classic CIDR prefixes
//! (default routes, aggregates) work.

use crate::packet::Addr;

/// A CIDR-style prefix.
#[derive(Clone, Copy, PartialEq, Eq, Hash)]
pub struct Prefix {
    pub addr: Addr,
    pub len: u8,
}

impl Prefix {
    pub fn new(addr: Addr, len: u8) -> Prefix {
        assert!(len <= 32);
        // Normalize: zero the host bits.
        let masked = if len == 0 { 0 } else { addr.0 & (!0u32 << (32 - len)) };
        Prefix { addr: Addr(masked), len }
    }

    /// A host route (/32).
    pub fn host(addr: Addr) -> Prefix {
        Prefix::new(addr, 32)
    }

    /// The default route (0.0.0.0/0).
    pub fn default_route() -> Prefix {
        Prefix::new(Addr(0), 0)
    }

    pub fn contains(&self, addr: Addr) -> bool {
        if self.len == 0 {
            return true;
        }
        (addr.0 ^ self.addr.0) >> (32 - self.len) == 0
    }
}

impl std::fmt::Debug for Prefix {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}/{}", self.addr, self.len)
    }
}

struct TrieNode<T> {
    children: [Option<Box<TrieNode<T>>>; 2],
    value: Option<T>,
}

impl<T> Default for TrieNode<T> {
    fn default() -> Self {
        TrieNode { children: [None, None], value: None }
    }
}

/// Longest-prefix-match forwarding table mapping prefixes to a next-hop
/// value (typically an output port).
pub struct Fib<T> {
    root: TrieNode<T>,
    len: usize,
}

impl<T> Default for Fib<T> {
    fn default() -> Self {
        Fib { root: TrieNode { children: [None, None], value: None }, len: 0 }
    }
}

impl<T> Fib<T> {
    pub fn new() -> Fib<T> {
        Fib::default()
    }

    /// Number of installed prefixes.
    pub fn len(&self) -> usize {
        self.len
    }

    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    fn bit(addr: Addr, i: u8) -> usize {
        ((addr.0 >> (31 - i)) & 1) as usize
    }

    /// Install (or replace) a route. Returns the previous value, if any.
    pub fn insert(&mut self, prefix: Prefix, value: T) -> Option<T> {
        let mut node = &mut self.root;
        for i in 0..prefix.len {
            let b = Self::bit(prefix.addr, i);
            node = node.children[b].get_or_insert_with(Box::default);
        }
        let old = node.value.replace(value);
        if old.is_none() {
            self.len += 1;
        }
        old
    }

    /// Remove a route. Returns its value, if present.
    pub fn remove(&mut self, prefix: Prefix) -> Option<T> {
        let mut node = &mut self.root;
        for i in 0..prefix.len {
            let b = Self::bit(prefix.addr, i);
            node = node.children[b].as_deref_mut()?;
        }
        let old = node.value.take();
        if old.is_some() {
            self.len -= 1;
        }
        old
    }

    /// Longest-prefix-match lookup.
    pub fn lookup(&self, addr: Addr) -> Option<&T> {
        let mut node = &self.root;
        let mut best = node.value.as_ref();
        for i in 0..32 {
            let b = Self::bit(addr, i);
            match node.children[b].as_deref() {
                Some(child) => {
                    node = child;
                    if node.value.is_some() {
                        best = node.value.as_ref();
                    }
                }
                None => break,
            }
        }
        best
    }

    /// Remove every route.
    pub fn clear(&mut self) {
        self.root = TrieNode { children: [None, None], value: None };
        self.len = 0;
    }

    /// Iterate over all installed `(prefix, value)` pairs.
    pub fn iter(&self) -> Vec<(Prefix, &T)> {
        let mut out = Vec::new();
        fn walk<'a, T>(
            node: &'a TrieNode<T>,
            bits: u32,
            depth: u8,
            out: &mut Vec<(Prefix, &'a T)>,
        ) {
            if let Some(v) = &node.value {
                out.push((Prefix::new(Addr(bits), depth), v));
            }
            for (b, child) in node.children.iter().enumerate() {
                if let Some(c) = child {
                    let nb = if depth < 32 { bits | ((b as u32) << (31 - depth)) } else { bits };
                    walk(c, nb, depth + 1, out);
                }
            }
        }
        walk(&self.root, 0, 0, &mut out);
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn a(s: &str) -> Addr {
        let parts: Vec<u32> = s.split('.').map(|p| p.parse().unwrap()).collect();
        Addr(parts[0] << 24 | parts[1] << 16 | parts[2] << 8 | parts[3])
    }

    #[test]
    fn prefix_normalizes_host_bits() {
        let p = Prefix::new(a("10.1.2.3"), 16);
        assert_eq!(p.addr, a("10.1.0.0"));
        assert!(p.contains(a("10.1.255.255")));
        assert!(!p.contains(a("10.2.0.0")));
    }

    #[test]
    fn default_route_contains_everything() {
        let d = Prefix::default_route();
        assert!(d.contains(a("0.0.0.0")));
        assert!(d.contains(a("255.255.255.255")));
    }

    #[test]
    fn longest_prefix_wins() {
        let mut fib = Fib::new();
        fib.insert(Prefix::default_route(), "default");
        fib.insert(Prefix::new(a("10.0.0.0"), 8), "ten");
        fib.insert(Prefix::new(a("10.1.0.0"), 16), "ten-one");
        fib.insert(Prefix::host(a("10.1.2.3")), "host");

        assert_eq!(fib.lookup(a("192.168.1.1")), Some(&"default"));
        assert_eq!(fib.lookup(a("10.9.9.9")), Some(&"ten"));
        assert_eq!(fib.lookup(a("10.1.9.9")), Some(&"ten-one"));
        assert_eq!(fib.lookup(a("10.1.2.3")), Some(&"host"));
    }

    #[test]
    fn empty_fib_misses() {
        let fib: Fib<u32> = Fib::new();
        assert_eq!(fib.lookup(a("1.2.3.4")), None);
        assert!(fib.is_empty());
    }

    #[test]
    fn insert_replace_remove() {
        let mut fib = Fib::new();
        let p = Prefix::new(a("10.0.0.0"), 8);
        assert_eq!(fib.insert(p, 1), None);
        assert_eq!(fib.insert(p, 2), Some(1));
        assert_eq!(fib.len(), 1);
        assert_eq!(fib.remove(p), Some(2));
        assert_eq!(fib.remove(p), None);
        assert!(fib.is_empty());
        assert_eq!(fib.lookup(a("10.0.0.1")), None);
    }

    #[test]
    fn removing_specific_falls_back_to_covering_prefix() {
        let mut fib = Fib::new();
        fib.insert(Prefix::new(a("10.0.0.0"), 8), "covering");
        fib.insert(Prefix::new(a("10.5.0.0"), 16), "specific");
        assert_eq!(fib.lookup(a("10.5.1.1")), Some(&"specific"));
        fib.remove(Prefix::new(a("10.5.0.0"), 16));
        assert_eq!(fib.lookup(a("10.5.1.1")), Some(&"covering"));
    }

    #[test]
    fn iter_lists_all_routes() {
        let mut fib = Fib::new();
        let routes = [
            (Prefix::default_route(), 0u32),
            (Prefix::new(a("10.0.0.0"), 8), 1),
            (Prefix::host(a("10.1.2.3")), 2),
        ];
        for (p, v) in routes {
            fib.insert(p, v);
        }
        let mut got = fib.iter();
        got.sort_by_key(|(p, _)| p.len);
        assert_eq!(got.len(), 3);
        assert_eq!(got[0].0, Prefix::default_route());
        assert_eq!(*got[2].1, 2);
    }

    #[test]
    fn clear_empties() {
        let mut fib = Fib::new();
        fib.insert(Prefix::host(a("1.1.1.1")), ());
        fib.clear();
        assert!(fib.is_empty());
        assert_eq!(fib.lookup(a("1.1.1.1")), None);
    }

    proptest::proptest! {
        #[test]
        fn prop_lookup_matches_linear_scan(
            routes in proptest::collection::vec((proptest::num::u32::ANY, 0u8..=32), 0..40),
            queries in proptest::collection::vec(proptest::num::u32::ANY, 0..40),
        ) {
            let mut fib = Fib::new();
            let mut table: Vec<(Prefix, usize)> = Vec::new();
            for (i, (addr, len)) in routes.iter().enumerate() {
                let p = Prefix::new(Addr(*addr), *len);
                fib.insert(p, i);
                table.retain(|(q, _)| *q != p);
                table.push((p, i));
            }
            for q in queries {
                let want = table
                    .iter()
                    .filter(|(p, _)| p.contains(Addr(q)))
                    .max_by_key(|(p, _)| p.len)
                    .map(|(_, v)| v);
                proptest::prop_assert_eq!(fib.lookup(Addr(q)), want);
            }
        }
    }
}
