//! Distance-vector route computation (RIP-style Bellman-Ford).
//!
//! Periodic full-table advertisements to each neighbor with split horizon
//! and poisoned reverse; triggered updates on topology change; route
//! expiry; metric 16 = infinity. One of the two swappable engines behind
//! [`crate::routecomp::RouteComputation`].

use crate::packet::{wire, Addr};
use crate::routecomp::{RcStats, RouteComputation};
use netsim::{Dur, PortId, Time};
use std::collections::HashMap;

/// RIP's "infinity" metric.
pub const INFINITY: u32 = 16;

#[derive(Clone, Debug)]
struct Route {
    metric: u32,
    port: Option<PortId>, // None for the self route
    learned_from: Option<Addr>,
    refreshed: Time,
}

/// Timer settings.
#[derive(Clone, Debug)]
pub struct DvConfig {
    pub advertise_interval: Dur,
    pub route_timeout: Dur,
}

impl Default for DvConfig {
    fn default() -> Self {
        DvConfig {
            advertise_interval: Dur::from_millis(1000),
            route_timeout: Dur::from_millis(4500),
        }
    }
}

/// The distance-vector engine.
pub struct DistanceVector {
    me: Addr,
    cfg: DvConfig,
    neighbors: HashMap<PortId, Addr>,
    table: HashMap<Addr, Route>,
    next_advert: Time,
    /// Set on topology change to trigger an immediate advertisement.
    triggered: bool,
    outbox: Vec<(PortId, Vec<u8>)>,
    version: u64,
    stats: RcStats,
}

impl DistanceVector {
    pub fn new(me: Addr, cfg: DvConfig) -> DistanceVector {
        let mut table = HashMap::new();
        table.insert(
            me,
            Route { metric: 0, port: None, learned_from: None, refreshed: Time::MAX },
        );
        DistanceVector {
            me,
            cfg,
            neighbors: HashMap::new(),
            table,
            next_advert: Time::ZERO,
            triggered: false,
            outbox: Vec::new(),
            version: 0,
            stats: RcStats::default(),
        }
    }

    /// Serialize this router's advertisement for `port`, applying split
    /// horizon with poisoned reverse: routes learned through `port` are
    /// advertised with metric INFINITY.
    fn advertisement_for(&self, port: PortId) -> Vec<u8> {
        let mut body = Vec::new();
        wire::put_addr(&mut body, self.me);
        let mut entries: Vec<(Addr, u32)> = self
            .table
            .iter()
            .map(|(&dst, r)| {
                let metric =
                    if r.port == Some(port) { INFINITY } else { r.metric.min(INFINITY) };
                (dst, metric)
            })
            .collect();
        entries.sort();
        wire::put_u32(&mut body, entries.len() as u32);
        for (dst, metric) in entries {
            wire::put_addr(&mut body, dst);
            wire::put_u32(&mut body, metric);
        }
        body
    }

    fn parse(body: &[u8]) -> Option<(Addr, Vec<(Addr, u32)>)> {
        let mut pos = 0;
        let from = wire::get_addr(body, &mut pos)?;
        let n = wire::get_u32(body, &mut pos)? as usize;
        if n > 10_000 {
            return None;
        }
        let mut entries = Vec::with_capacity(n);
        for _ in 0..n {
            let dst = wire::get_addr(body, &mut pos)?;
            let metric = wire::get_u32(body, &mut pos)?;
            entries.push((dst, metric));
        }
        Some((from, entries))
    }

    fn queue_advertisements(&mut self, now: Time) {
        let ports: Vec<PortId> = self.neighbors.keys().copied().collect();
        for port in ports {
            let body = self.advertisement_for(port);
            self.outbox.push((port, body));
            self.stats.pdus_sent += 1;
        }
        self.next_advert = now + self.cfg.advertise_interval;
        self.triggered = false;
    }

    fn bump(&mut self) {
        self.version += 1;
        self.triggered = true;
        self.stats.recomputations += 1;
    }
}

impl RouteComputation for DistanceVector {
    fn name(&self) -> &'static str {
        "distance vector"
    }

    fn on_neighbor_up(&mut self, port: PortId, addr: Addr, _now: Time) {
        self.neighbors.insert(port, addr);
        self.bump();
    }

    fn on_neighbor_down(&mut self, port: PortId, addr: Addr, _now: Time) {
        if self.neighbors.get(&port) == Some(&addr) {
            self.neighbors.remove(&port);
        }
        // Poison everything we were routing through that port.
        let mut changed = false;
        for r in self.table.values_mut() {
            if r.port == Some(port) && r.metric < INFINITY {
                r.metric = INFINITY;
                changed = true;
            }
        }
        if changed {
            self.bump();
        }
    }

    fn on_pdu(&mut self, port: PortId, body: &[u8], now: Time) {
        self.stats.pdus_received += 1;
        let Some((from, entries)) = Self::parse(body) else { return };
        // Only accept advertisements from the live neighbor on this port.
        if self.neighbors.get(&port) != Some(&from) {
            return;
        }
        let mut changed = false;
        for (dst, metric) in entries {
            if dst == self.me {
                continue;
            }
            let new_metric = (metric + 1).min(INFINITY);
            match self.table.get_mut(&dst) {
                Some(r) => {
                    if r.learned_from == Some(from) && r.port == Some(port) {
                        // Update from the current next hop: always accept.
                        if r.metric != new_metric {
                            r.metric = new_metric;
                            changed = true;
                        }
                        r.refreshed = now;
                    } else if new_metric < r.metric {
                        r.metric = new_metric;
                        r.port = Some(port);
                        r.learned_from = Some(from);
                        r.refreshed = now;
                        changed = true;
                    }
                }
                None => {
                    if new_metric < INFINITY {
                        self.table.insert(
                            dst,
                            Route {
                                metric: new_metric,
                                port: Some(port),
                                learned_from: Some(from),
                                refreshed: now,
                            },
                        );
                        changed = true;
                    }
                }
            }
        }
        if changed {
            self.bump();
        }
    }

    fn poll_pdu(&mut self, now: Time) -> Option<(PortId, Vec<u8>)> {
        if self.outbox.is_empty() && (self.triggered || now >= self.next_advert) {
            self.queue_advertisements(now);
        }
        self.outbox.pop()
    }

    fn poll_deadline(&self, _now: Time) -> Option<Time> {
        let timeout = self
            .table
            .values()
            .filter(|r| r.port.is_some() && r.metric < INFINITY)
            .map(|r| r.refreshed + self.cfg.route_timeout)
            .min();
        Some(match timeout {
            Some(t) => t.min(self.next_advert),
            None => self.next_advert,
        })
    }

    fn on_tick(&mut self, now: Time) {
        // Expire stale routes.
        let timeout = self.cfg.route_timeout;
        let mut changed = false;
        for r in self.table.values_mut() {
            if r.port.is_some() && r.metric < INFINITY && now.since(r.refreshed) >= timeout {
                r.metric = INFINITY;
                changed = true;
            }
        }
        if changed {
            self.bump();
        }
        if now >= self.next_advert {
            self.queue_advertisements(now);
        }
    }

    fn routes(&self) -> Vec<(Addr, PortId)> {
        let mut v: Vec<(Addr, PortId)> = self
            .table
            .iter()
            .filter(|(&dst, r)| dst != self.me && r.metric < INFINITY)
            .filter_map(|(&dst, r)| r.port.map(|p| (dst, p)))
            .collect();
        v.sort();
        v
    }

    fn version(&self) -> u64 {
        self.version
    }

    fn stats(&self) -> &RcStats {
        &self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dv(me: u32) -> DistanceVector {
        DistanceVector::new(Addr(me), DvConfig::default())
    }

    #[test]
    fn self_route_not_exported() {
        let d = dv(1);
        assert!(d.routes().is_empty());
    }

    #[test]
    fn learns_route_from_neighbor() {
        let mut d = dv(1);
        d.on_neighbor_up(0, Addr(2), Time::ZERO);
        // Neighbor 2 advertises itself at metric 0 and node 3 at metric 1.
        let mut body = Vec::new();
        wire::put_addr(&mut body, Addr(2));
        wire::put_u32(&mut body, 2);
        wire::put_addr(&mut body, Addr(2));
        wire::put_u32(&mut body, 0);
        wire::put_addr(&mut body, Addr(3));
        wire::put_u32(&mut body, 1);
        d.on_pdu(0, &body, Time::ZERO);
        assert_eq!(d.routes(), vec![(Addr(2), 0), (Addr(3), 0)]);
    }

    #[test]
    fn rejects_pdu_from_unknown_port() {
        let mut d = dv(1);
        let mut body = Vec::new();
        wire::put_addr(&mut body, Addr(2));
        wire::put_u32(&mut body, 1);
        wire::put_addr(&mut body, Addr(2));
        wire::put_u32(&mut body, 0);
        d.on_pdu(0, &body, Time::ZERO); // no neighbor up on port 0
        assert!(d.routes().is_empty());
    }

    #[test]
    fn split_horizon_poisons_reverse() {
        let mut d = dv(1);
        d.on_neighbor_up(0, Addr(2), Time::ZERO);
        let mut body = Vec::new();
        wire::put_addr(&mut body, Addr(2));
        wire::put_u32(&mut body, 1);
        wire::put_addr(&mut body, Addr(2));
        wire::put_u32(&mut body, 0);
        d.on_pdu(0, &body, Time::ZERO);
        // The advertisement back out port 0 must poison the route to 2.
        let advert = d.advertisement_for(0);
        let (_, entries) = DistanceVector::parse(&advert).unwrap();
        let metric_2 = entries.iter().find(|(a, _)| *a == Addr(2)).unwrap().1;
        assert_eq!(metric_2, INFINITY);
        // But out a different port it is advertised normally.
        let advert1 = d.advertisement_for(1);
        let (_, entries1) = DistanceVector::parse(&advert1).unwrap();
        assert_eq!(entries1.iter().find(|(a, _)| *a == Addr(2)).unwrap().1, 1);
    }

    #[test]
    fn neighbor_down_poisons_routes() {
        let mut d = dv(1);
        d.on_neighbor_up(0, Addr(2), Time::ZERO);
        let mut body = Vec::new();
        wire::put_addr(&mut body, Addr(2));
        wire::put_u32(&mut body, 1);
        wire::put_addr(&mut body, Addr(2));
        wire::put_u32(&mut body, 0);
        d.on_pdu(0, &body, Time::ZERO);
        assert!(!d.routes().is_empty());
        d.on_neighbor_down(0, Addr(2), Time::ZERO + Dur::from_secs(1));
        assert!(d.routes().is_empty());
    }

    #[test]
    fn routes_expire_without_refresh() {
        let mut d = dv(1);
        d.on_neighbor_up(0, Addr(2), Time::ZERO);
        let mut body = Vec::new();
        wire::put_addr(&mut body, Addr(2));
        wire::put_u32(&mut body, 1);
        wire::put_addr(&mut body, Addr(2));
        wire::put_u32(&mut body, 0);
        d.on_pdu(0, &body, Time::ZERO);
        d.on_tick(Time::ZERO + Dur::from_secs(10));
        assert!(d.routes().is_empty());
    }

    #[test]
    fn worse_metric_from_current_next_hop_is_believed() {
        // Counting-to-infinity protection relies on believing bad news from
        // the current next hop.
        let mut d = dv(1);
        d.on_neighbor_up(0, Addr(2), Time::ZERO);
        let adv = |m: u32| {
            let mut body = Vec::new();
            wire::put_addr(&mut body, Addr(2));
            wire::put_u32(&mut body, 2);
            wire::put_addr(&mut body, Addr(2));
            wire::put_u32(&mut body, 0);
            wire::put_addr(&mut body, Addr(3));
            wire::put_u32(&mut body, m);
            body
        };
        d.on_pdu(0, &adv(1), Time::ZERO);
        assert!(d.routes().iter().any(|&(a, _)| a == Addr(3)));
        d.on_pdu(0, &adv(INFINITY), Time::ZERO + Dur::from_millis(10));
        assert!(!d.routes().iter().any(|&(a, _)| a == Addr(3)));
    }

    #[test]
    fn version_bumps_on_change_only() {
        let mut d = dv(1);
        let v0 = d.version();
        d.on_neighbor_up(0, Addr(2), Time::ZERO);
        let v1 = d.version();
        assert!(v1 > v0);
        // Re-processing an identical advertisement changes nothing.
        let mut body = Vec::new();
        wire::put_addr(&mut body, Addr(2));
        wire::put_u32(&mut body, 1);
        wire::put_addr(&mut body, Addr(2));
        wire::put_u32(&mut body, 0);
        d.on_pdu(0, &body, Time::ZERO);
        let v2 = d.version();
        d.on_pdu(0, &body, Time::ZERO + Dur::from_millis(1));
        assert_eq!(d.version(), v2);
    }

    #[test]
    fn malformed_pdus_ignored() {
        let mut d = dv(1);
        d.on_neighbor_up(0, Addr(2), Time::ZERO);
        d.on_pdu(0, &[1, 2, 3], Time::ZERO);
        d.on_pdu(0, &[], Time::ZERO);
        assert!(d.routes().is_empty());
    }
}
