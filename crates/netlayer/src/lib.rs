//! # netlayer — the sublayered network layer (paper §2.2, Figures 3/4)
//!
//! The paper sublayers the network layer into **neighbor determination**
//! (lowest — "route computation needs a list of neighbors"), **route
//! computation** ("below forwarding because route computation builds the
//! forwarding database") and **forwarding** (the data plane). Test **T3**
//! is met with *completely different packets* per sublayer: HELLOs,
//! routing PDUs (DV advertisements or LSPs), and data packets.
//!
//! | sublayer              | module       | implementations |
//! |-----------------------|--------------|-----------------|
//! | forwarding            | [`fib`], [`router`] | LPM trie FIB, TTL, local delivery |
//! | route computation     | [`routecomp`], [`dv`], [`ls`] | distance vector (RIP-style), link state (Dijkstra) |
//! | neighbor determination| [`neighbor`] | HELLO protocol with hold timers |
//!
//! [`topo`] builds whole router networks on `netsim` and carries the
//! DV-vs-LS equivalence and failure-reconvergence experiments (E2).
//!
//! [`boxnet`] is the multi-hop "Internet in a box" for transport
//! campaigns: statically-routed topologies (verified loop-free by
//! `slverify` before traffic runs), scripted partition-triggered reroute,
//! and a NAT middlebox with scriptable failure personalities.

pub mod boxnet;
pub mod dv;
pub mod fib;
pub mod ls;
pub mod neighbor;
pub mod packet;
pub mod routecomp;
pub mod router;
pub mod topo;

pub use boxnet::{
    box_host_addr, schedule_nat_wipe, shipped_topologies, topo_diamond, topo_fanin,
    topo_line3, topo_long_haul, topo_nat_gateway, topo_random_connected, AddrPeek, BoxEdge,
    BoxNet, BoxRouterStats, BoxTopo, HostSite, NatBox, NatCodec, NatStats, StaticRouter,
    BOX_TTL, NAT_FIRST_PORT, NAT_INSIDE, NAT_OUTSIDE,
};
pub use dv::{DistanceVector, DvConfig};
pub use fib::{Fib, Prefix};
pub use ls::{LinkState, LsConfig, Lsp};
pub use neighbor::{NeighborConfig, NeighborEvent, NeighborTable};
pub use packet::{Addr, DataPacket, Hello};
pub use routecomp::{RcStats, RouteComputation};
pub use router::{Router, RouterStats};
pub use topo::{addr_of, build, RouterNet, Topology};
