//! The **stuffing sublayer** (upper of the two framing sublayers, §4.1).
//!
//! At the sender it inserts the rule's stuff bit after each trigger match;
//! at the receiver it deletes those bits. Per sublayering test **T2** its
//! interface with the flag sublayer below is narrow: a frame of bits without
//! flags in either direction. Per **T3** it owns no flag knowledge beyond
//! the validity coupling checked in [`crate::verify`].

use crate::bits::BitVec;
use crate::matcher::Matcher;
use crate::rule::StuffRule;
use std::fmt;

/// Errors from unstuffing a corrupted or mis-framed bit string.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum StuffError {
    /// After a trigger match, the received bit was not the stuff bit.
    /// Carries the bit index at which the violation occurred.
    UnexpectedBit(usize),
    /// The stream ended immediately after a trigger match, where a stuff bit
    /// was required.
    Truncated,
    /// The rule would stuff forever (not terminating); refused.
    DivergentRule,
}

impl fmt::Display for StuffError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StuffError::UnexpectedBit(i) => write!(f, "expected stuff bit at index {i}"),
            StuffError::Truncated => write!(f, "stream ended where a stuff bit was required"),
            StuffError::DivergentRule => write!(f, "stuffing rule does not terminate"),
        }
    }
}

impl std::error::Error for StuffError {}

/// The stuffing sublayer endpoint (stateless between frames).
#[derive(Clone, Debug)]
pub struct Stuffer {
    rule: StuffRule,
    matcher: Matcher,
}

impl Stuffer {
    /// Build a stuffer; rejects non-terminating rules.
    pub fn new(rule: StuffRule) -> Result<Stuffer, StuffError> {
        if !rule.is_terminating() {
            return Err(StuffError::DivergentRule);
        }
        let matcher = Matcher::new(&rule.trigger);
        Ok(Stuffer { rule, matcher })
    }

    /// The HDLC stuffer (trigger `11111`, stuff `0`).
    pub fn hdlc() -> Stuffer {
        Stuffer::new(StuffRule::hdlc()).expect("HDLC rule terminates")
    }

    pub fn rule(&self) -> &StuffRule {
        &self.rule
    }

    /// Sender side: insert the stuff bit after every trigger match.
    pub fn stuff(&self, data: &BitVec) -> BitVec {
        let accept = self.matcher.accept();
        let mut out = BitVec::with_capacity(data.len() + data.len() / 8);
        let mut st = 0;
        for bit in data.iter() {
            out.push(bit);
            st = self.matcher.step(st, bit);
            if st == accept {
                out.push(self.rule.stuff_bit);
                st = self.matcher.step(st, self.rule.stuff_bit);
                debug_assert_ne!(st, accept, "terminating rule cannot re-trigger");
            }
        }
        out
    }

    /// Receiver side: delete the bit following every trigger match.
    /// Errors if the frame could not have been produced by [`Stuffer::stuff`].
    pub fn unstuff(&self, frame: &BitVec) -> Result<BitVec, StuffError> {
        let accept = self.matcher.accept();
        let mut out = BitVec::with_capacity(frame.len());
        let mut st = 0;
        let mut expect_stuff = false;
        for (i, bit) in frame.iter().enumerate() {
            if expect_stuff {
                if bit != self.rule.stuff_bit {
                    return Err(StuffError::UnexpectedBit(i));
                }
                st = self.matcher.step(st, bit);
                expect_stuff = false;
                continue;
            }
            out.push(bit);
            st = self.matcher.step(st, bit);
            if st == accept {
                expect_stuff = true;
            }
        }
        if expect_stuff {
            return Err(StuffError::Truncated);
        }
        Ok(out)
    }

    /// Number of bits that stuffing would add to `data` (overhead).
    pub fn stuff_count(&self, data: &BitVec) -> usize {
        self.stuff(data).len() - data.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bits::bits;
    use crate::rule::StuffRule;

    #[test]
    fn hdlc_examples() {
        let s = Stuffer::hdlc();
        assert_eq!(s.stuff(&bits("11111")), bits("111110"));
        assert_eq!(s.stuff(&bits("111111")), bits("1111101"));
        // Ten 1s: stuffed after each group of five.
        assert_eq!(s.stuff(&bits("1111111111")), bits("111110111110"));
        assert_eq!(s.stuff(&bits("01101")), bits("01101"));
        assert_eq!(s.stuff(&BitVec::new()), BitVec::new());
    }

    #[test]
    fn hdlc_output_never_contains_six_ones() {
        let s = Stuffer::hdlc();
        let six = bits("111111");
        for n in 0..(1u64 << 14) {
            let d = BitVec::from_uint(n, 14);
            assert_eq!(s.stuff(&d).find(&six, 0), None, "d={d}");
        }
    }

    #[test]
    fn round_trip_exhaustive_hdlc() {
        let s = Stuffer::hdlc();
        for len in 0..=12usize {
            for n in 0..(1u64 << len) {
                let d = BitVec::from_uint(n, len);
                assert_eq!(s.unstuff(&s.stuff(&d)), Ok(d));
            }
        }
    }

    #[test]
    fn round_trip_exhaustive_low_overhead() {
        let s = Stuffer::new(StuffRule::low_overhead()).unwrap();
        for len in 0..=12usize {
            for n in 0..(1u64 << len) {
                let d = BitVec::from_uint(n, len);
                assert_eq!(s.unstuff(&s.stuff(&d)), Ok(d));
            }
        }
    }

    #[test]
    fn unstuff_detects_violation() {
        let s = Stuffer::hdlc();
        // 111111: after 11111 the next bit must be 0, but it is 1.
        assert_eq!(s.unstuff(&bits("111111")), Err(StuffError::UnexpectedBit(5)));
    }

    #[test]
    fn unstuff_detects_truncation() {
        let s = Stuffer::hdlc();
        assert_eq!(s.unstuff(&bits("11111")), Err(StuffError::Truncated));
    }

    #[test]
    fn divergent_rule_refused() {
        assert_eq!(
            Stuffer::new(StuffRule::new(bits("1"), true)).err(),
            Some(StuffError::DivergentRule)
        );
    }

    #[test]
    fn stuff_count_matches_overhead() {
        let s = Stuffer::hdlc();
        assert_eq!(s.stuff_count(&bits("1111111111")), 2);
        assert_eq!(s.stuff_count(&bits("0000000000")), 0);
    }

    #[test]
    fn overlapping_trigger_rules_round_trip() {
        // Trigger with a nontrivial border: 0101, stuff 1 (the stuffed 1
        // cannot extend 0101 -> terminating? step(accept=4, 1): border 2
        // ("01"), pattern[2]=0 != 1 -> fail[2]=0, pattern[0]=0 != 1 -> 0. OK.)
        let s = Stuffer::new(StuffRule::new(bits("0101"), true)).unwrap();
        for len in 0..=12usize {
            for n in 0..(1u64 << len) {
                let d = BitVec::from_uint(n, len);
                assert_eq!(s.unstuff(&s.stuff(&d)), Ok(d.clone()), "d={d}");
            }
        }
        // Overlap check: 010101 contains two overlapping matches of 0101 in
        // the *data*, but the stuffed bit after the first match breaks the
        // second one in the *output*, so only one bit is inserted.
        assert_eq!(s.stuff(&bits("010101")), bits("0101101"));
    }

    proptest::proptest! {
        #[test]
        fn prop_round_trip_random_rules(
            trig in 1u64..256,
            tlen in 1usize..=8,
            stuff_bit: bool,
            data in proptest::collection::vec(proptest::bool::ANY, 0..200),
        ) {
            let trigger = BitVec::from_uint(trig & ((1 << tlen) - 1), tlen);
            let rule = StuffRule::new(trigger, stuff_bit);
            if let Ok(s) = Stuffer::new(rule) {
                let d = BitVec::from_bools(&data);
                proptest::prop_assert_eq!(s.unstuff(&s.stuff(&d)), Ok(d));
            }
        }

        #[test]
        fn prop_stuffed_never_contains_trigger_then_nonstuff(
            data in proptest::collection::vec(proptest::bool::ANY, 0..200),
        ) {
            // In HDLC output, every occurrence of 11111 is followed by 0.
            let s = Stuffer::hdlc();
            let out = s.stuff(&BitVec::from_bools(&data));
            let trig = bits("11111");
            for pos in out.occurrences(&trig) {
                let next = pos + trig.len();
                if next < out.len() {
                    proptest::prop_assert!(!out.get(next));
                }
            }
        }
    }
}
