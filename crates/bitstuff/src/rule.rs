//! Stuffing rules.
//!
//! A *stuffing rule* generalizes HDLC's "after five 1s, insert a 0": it is a
//! trigger bit-string `T` and a stuff bit `b`. Whenever the transmitted
//! stream matches `T`, the sender inserts `b`; the receiver deletes the bit
//! following any match of `T`. The paper's §4.1 experiment searches the rule
//! space for alternatives to HDLC's rule with lower stuffing overhead.

use crate::bits::{bits, BitVec};
use crate::matcher::Matcher;
use std::fmt;

/// A bit-stuffing rule: after the output matches `trigger`, insert
/// `stuff_bit`.
#[derive(Clone, PartialEq, Eq, Hash)]
pub struct StuffRule {
    pub trigger: BitVec,
    pub stuff_bit: bool,
}

impl StuffRule {
    pub fn new(trigger: BitVec, stuff_bit: bool) -> StuffRule {
        StuffRule { trigger, stuff_bit }
    }

    /// The classic HDLC rule: after `11111`, stuff a `0`.
    pub fn hdlc() -> StuffRule {
        StuffRule::new(bits("11111"), false)
    }

    /// The lower-overhead rule highlighted by the paper (§4.1, lesson 2):
    /// after `0000001`, stuff a `1`. Pairs with flag [`Flag::LOW_OVERHEAD`]
    /// (`00000010`); its random-model overhead is 1 in 128 versus HDLC's
    /// 1 in 32 (naive model).
    pub fn low_overhead() -> StuffRule {
        StuffRule::new(bits("0000001"), true)
    }

    /// A rule is *terminating* when the inserted stuff bit can never itself
    /// complete another trigger match (which would force inserting forever).
    /// E.g. trigger `11` with stuff bit `1` diverges.
    pub fn is_terminating(&self) -> bool {
        let m = Matcher::new(&self.trigger);
        m.step(m.accept(), self.stuff_bit) != m.accept()
    }
}

impl fmt::Debug for StuffRule {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "after {} stuff {}", self.trigger, self.stuff_bit as u8)
    }
}

impl fmt::Display for StuffRule {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(self, f)
    }
}

/// Well-known flags.
pub struct Flag;

impl Flag {
    /// The HDLC flag `01111110`.
    pub fn hdlc() -> BitVec {
        bits("01111110")
    }

    /// The paper's low-overhead flag `00000010`.
    pub fn low_overhead() -> BitVec {
        bits("00000010")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hdlc_rule_shape() {
        let r = StuffRule::hdlc();
        assert_eq!(format!("{r}"), "after 11111 stuff 0");
        assert!(r.is_terminating());
    }

    #[test]
    fn low_overhead_rule_terminates() {
        assert!(StuffRule::low_overhead().is_terminating());
    }

    #[test]
    fn divergent_rules_detected() {
        // After 11 stuff 1 -> the stuffed 1 completes 11 again.
        assert!(!StuffRule::new(bits("11"), true).is_terminating());
        assert!(!StuffRule::new(bits("1"), true).is_terminating());
        assert!(!StuffRule::new(bits("0"), false).is_terminating());
        // After 01 stuff 1 -> the stuffed 1 cannot complete 01.
        assert!(StuffRule::new(bits("01"), true).is_terminating());
    }

    #[test]
    fn all_single_bit_rules_with_opposite_stuff_terminate() {
        assert!(StuffRule::new(bits("1"), false).is_terminating());
        assert!(StuffRule::new(bits("0"), true).is_terminating());
    }
}
