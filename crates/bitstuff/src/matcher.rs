//! A KMP pattern-matching automaton over bit streams.
//!
//! Both sublayers of the framing protocol are, at heart, pattern matchers:
//! the stuffing sublayer watches for the trigger string, the flag sublayer
//! watches for the flag. The validity decision procedure
//! ([`crate::verify`]) runs a product of two of these automata.

use crate::bits::BitVec;

/// Deterministic automaton tracking, after each consumed bit, the length of
/// the longest prefix of `pattern` that is a suffix of the input seen so far
/// (continuous / overlapping matching semantics).
#[derive(Clone, Debug)]
pub struct Matcher {
    pattern: BitVec,
    /// Classic KMP failure function; `fail[s]` is the longest proper border
    /// of `pattern[..s]`.
    fail: Vec<usize>,
}

impl Matcher {
    /// Build the automaton for a non-empty pattern.
    pub fn new(pattern: &BitVec) -> Matcher {
        assert!(!pattern.is_empty(), "pattern must be non-empty");
        let n = pattern.len();
        let mut fail = vec![0usize; n + 1];
        let mut k = 0;
        for i in 1..n {
            while k > 0 && pattern.get(i) != pattern.get(k) {
                k = fail[k];
            }
            if pattern.get(i) == pattern.get(k) {
                k += 1;
            }
            fail[i + 1] = k;
        }
        Matcher { pattern: pattern.clone(), fail }
    }

    /// The pattern being matched.
    pub fn pattern(&self) -> &BitVec {
        &self.pattern
    }

    /// Number of automaton states (`0..=len`); state `len` is "just
    /// matched".
    pub fn state_count(&self) -> usize {
        self.pattern.len() + 1
    }

    /// The accepting state.
    pub fn accept(&self) -> usize {
        self.pattern.len()
    }

    /// Advance from `state` on `bit`. If `state` is the accepting state the
    /// automaton first falls back to the pattern's border, giving continuous
    /// (overlap-aware) matching.
    pub fn step(&self, state: usize, bit: bool) -> usize {
        let mut s = if state == self.pattern.len() { self.fail[state] } else { state };
        loop {
            if self.pattern.get(s) == bit {
                return s + 1;
            }
            if s == 0 {
                return 0;
            }
            s = self.fail[s];
        }
    }

    /// State after consuming the entire pattern from state 0 — i.e. the
    /// state a continuous detector is in immediately after a match.
    pub fn border_state(&self) -> usize {
        self.fail[self.pattern.len()]
    }

    /// Run the matcher over `input` from state 0; return every position
    /// (index of last bit, exclusive) at which a match completes.
    pub fn match_ends(&self, input: &BitVec) -> Vec<usize> {
        let mut out = Vec::new();
        let mut s = 0;
        for (i, b) in input.iter().enumerate() {
            s = self.step(s, b);
            if s == self.accept() {
                out.push(i + 1);
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bits::bits;

    #[test]
    fn finds_all_overlapping_matches() {
        let m = Matcher::new(&bits("11"));
        assert_eq!(m.match_ends(&bits("1111")), vec![2, 3, 4]);
    }

    #[test]
    fn agrees_with_naive_search() {
        // Cross-check the automaton against BitVec::occurrences for every
        // pattern of length <= 4 over every input of length <= 10.
        for plen in 1..=4usize {
            for p in 0..(1u64 << plen) {
                let pat = BitVec::from_uint(p, plen);
                let m = Matcher::new(&pat);
                for ilen in 0..=10usize {
                    for i in 0..(1u64 << ilen) {
                        let input = BitVec::from_uint(i, ilen);
                        let ends: Vec<usize> =
                            input.occurrences(&pat).iter().map(|&s| s + plen).collect();
                        assert_eq!(m.match_ends(&input), ends, "pat={pat} input={input}");
                    }
                }
            }
        }
    }

    #[test]
    fn border_state_of_hdlc_flag() {
        // 01111110: the longest proper border is "0" (length 1).
        let m = Matcher::new(&bits("01111110"));
        assert_eq!(m.border_state(), 1);
        // 0000001: no nontrivial border.
        assert_eq!(Matcher::new(&bits("0000001")).border_state(), 0);
        // 0101: border "01" of length 2.
        assert_eq!(Matcher::new(&bits("0101")).border_state(), 2);
    }

    #[test]
    fn step_from_accept_continues_matching() {
        let m = Matcher::new(&bits("0101"));
        // After matching 0101, seeing 0 then 1 should complete another
        // (overlapping) match: 010101.
        let s = m.accept();
        let s = m.step(s, false);
        let s = m.step(s, true);
        assert_eq!(s, m.accept());
    }

    #[test]
    #[should_panic(expected = "non-empty")]
    fn empty_pattern_rejected() {
        Matcher::new(&BitVec::new());
    }
}
