//! Minimal exact rational arithmetic.
//!
//! The overhead analysis (§4.1, lesson 2) reports *exact* expected stuffing
//! rates like `1/62` and `1/128`; floating point would blur the comparison
//! with the paper's quoted `1 in 32` / `1 in 128` figures. Numerators and
//! denominators fit comfortably in `i128` for the pattern sizes involved
//! (triggers of at most ~12 bits).

use std::cmp::Ordering;
use std::fmt;
use std::ops::{Add, Div, Mul, Neg, Sub};

/// An exact rational number, always stored in lowest terms with a positive
/// denominator.
#[derive(Clone, Copy, PartialEq, Eq, Hash)]
pub struct Ratio {
    num: i128,
    den: i128,
}

fn gcd(a: i128, b: i128) -> i128 {
    let (mut a, mut b) = (a.abs(), b.abs());
    while b != 0 {
        let t = a % b;
        a = b;
        b = t;
    }
    a
}

impl Ratio {
    pub const ZERO: Ratio = Ratio { num: 0, den: 1 };
    pub const ONE: Ratio = Ratio { num: 1, den: 1 };

    /// `num / den`; panics when `den == 0`.
    pub fn new(num: i128, den: i128) -> Ratio {
        assert!(den != 0, "zero denominator");
        let g = gcd(num, den).max(1);
        let sign = if den < 0 { -1 } else { 1 };
        Ratio { num: sign * num / g, den: sign * den / g }
    }

    pub fn from_int(n: i128) -> Ratio {
        Ratio { num: n, den: 1 }
    }

    pub fn num(&self) -> i128 {
        self.num
    }

    pub fn den(&self) -> i128 {
        self.den
    }

    pub fn is_zero(&self) -> bool {
        self.num == 0
    }

    pub fn recip(&self) -> Ratio {
        assert!(self.num != 0, "reciprocal of zero");
        Ratio::new(self.den, self.num)
    }

    pub fn to_f64(&self) -> f64 {
        self.num as f64 / self.den as f64
    }
}

impl Add for Ratio {
    type Output = Ratio;
    fn add(self, o: Ratio) -> Ratio {
        Ratio::new(self.num * o.den + o.num * self.den, self.den * o.den)
    }
}

impl Sub for Ratio {
    type Output = Ratio;
    fn sub(self, o: Ratio) -> Ratio {
        Ratio::new(self.num * o.den - o.num * self.den, self.den * o.den)
    }
}

impl Mul for Ratio {
    type Output = Ratio;
    fn mul(self, o: Ratio) -> Ratio {
        Ratio::new(self.num * o.num, self.den * o.den)
    }
}

impl Div for Ratio {
    type Output = Ratio;
    fn div(self, o: Ratio) -> Ratio {
        assert!(o.num != 0, "division by zero");
        Ratio::new(self.num * o.den, self.den * o.num)
    }
}

impl Neg for Ratio {
    type Output = Ratio;
    fn neg(self) -> Ratio {
        Ratio { num: -self.num, den: self.den }
    }
}

impl PartialOrd for Ratio {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Ratio {
    fn cmp(&self, other: &Self) -> Ordering {
        (self.num * other.den).cmp(&(other.num * self.den))
    }
}

impl fmt::Debug for Ratio {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.den == 1 {
            write!(f, "{}", self.num)
        } else {
            write!(f, "{}/{}", self.num, self.den)
        }
    }
}

impl fmt::Display for Ratio {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(self, f)
    }
}

/// Solve the linear system `A x = b` exactly by Gaussian elimination.
/// Returns `None` when `A` is singular.
pub fn solve(mut a: Vec<Vec<Ratio>>, mut b: Vec<Ratio>) -> Option<Vec<Ratio>> {
    let n = b.len();
    assert!(a.len() == n && a.iter().all(|row| row.len() == n));
    for col in 0..n {
        // Partial pivot: any nonzero entry works for exact arithmetic.
        let pivot = (col..n).find(|&r| !a[r][col].is_zero())?;
        a.swap(col, pivot);
        b.swap(col, pivot);
        let p = a[col][col];
        for r in 0..n {
            if r != col && !a[r][col].is_zero() {
                let factor = a[r][col] / p;
                #[allow(clippy::needless_range_loop)] // matrix elimination indexes two rows
                for c in col..n {
                    let v = a[col][c];
                    a[r][c] = a[r][c] - factor * v;
                }
                let bv = b[col];
                b[r] = b[r] - factor * bv;
            }
        }
    }
    Some((0..n).map(|i| b[i] / a[i][i]).collect())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arithmetic_normalizes() {
        assert_eq!(Ratio::new(2, 4), Ratio::new(1, 2));
        assert_eq!(Ratio::new(1, -2), Ratio::new(-1, 2));
        assert_eq!(Ratio::new(1, 3) + Ratio::new(1, 6), Ratio::new(1, 2));
        assert_eq!(Ratio::new(1, 2) * Ratio::new(2, 3), Ratio::new(1, 3));
        assert_eq!(Ratio::new(3, 4) - Ratio::new(1, 4), Ratio::new(1, 2));
        assert_eq!(Ratio::new(1, 2) / Ratio::new(1, 4), Ratio::from_int(2));
    }

    #[test]
    fn ordering() {
        assert!(Ratio::new(1, 3) < Ratio::new(1, 2));
        assert!(Ratio::new(-1, 2) < Ratio::ZERO);
    }

    #[test]
    fn display() {
        assert_eq!(format!("{}", Ratio::new(1, 62)), "1/62");
        assert_eq!(format!("{}", Ratio::from_int(5)), "5");
    }

    #[test]
    fn solve_2x2() {
        // x + y = 3; x - y = 1 => x = 2, y = 1.
        let a = vec![
            vec![Ratio::ONE, Ratio::ONE],
            vec![Ratio::ONE, -Ratio::ONE],
        ];
        let b = vec![Ratio::from_int(3), Ratio::ONE];
        assert_eq!(solve(a, b), Some(vec![Ratio::from_int(2), Ratio::ONE]));
    }

    #[test]
    fn solve_detects_singular() {
        let a = vec![
            vec![Ratio::ONE, Ratio::ONE],
            vec![Ratio::from_int(2), Ratio::from_int(2)],
        ];
        let b = vec![Ratio::ONE, Ratio::from_int(2)];
        assert_eq!(solve(a, b), None);
    }

    #[test]
    fn solve_3x3_fractions() {
        // Diagonal system with fractional entries.
        let a = vec![
            vec![Ratio::new(1, 2), Ratio::ZERO, Ratio::ZERO],
            vec![Ratio::ZERO, Ratio::new(1, 3), Ratio::ZERO],
            vec![Ratio::ZERO, Ratio::ZERO, Ratio::new(2, 1)],
        ];
        let b = vec![Ratio::ONE, Ratio::ONE, Ratio::ONE];
        assert_eq!(
            solve(a, b),
            Some(vec![Ratio::from_int(2), Ratio::from_int(3), Ratio::new(1, 2)])
        );
    }
}
