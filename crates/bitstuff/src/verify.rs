//! Exact verification of stuffing-rule / flag pairings.
//!
//! This module is the Rust analogue of the paper's Coq development (§4.1).
//! The paper proved, per rule, that
//! `Unstuff(RemoveFlags(AddFlags(Stuff(D)))) = D` for all `D`. For a fixed
//! pairing `(flag F, rule R)` that property is a *finite-state* question:
//! the transmitter is an automaton (the stuffing KMP automaton) and the
//! receiver's false-flag hazard is another automaton (the flag KMP
//! detector). We therefore decide validity **exactly** — soundly and
//! completely — by exhaustive reachability over the product automaton,
//! covering both hazards the paper identifies: "the stuffed bit [can] form
//! a flag with subsequent data bits" (a flag occurrence inside the stuffed
//! body) and "some flags can cause a false flag to occur using the data and
//! a prefix of the end flag" (an occurrence straddling the body /
//! closing-flag boundary).
//!
//! ## Receiver models
//!
//! Two receiver semantics exist in practice, and they disagree on which
//! rules are valid:
//!
//! * [`ReceiverModel::RestartScan`] — the receiver hunts for the opening
//!   flag, then **resets** and scans the remainder for the closing flag.
//!   This is how software framers (and the paper's `RemoveFlags` spec)
//!   work. It is the default.
//! * [`ReceiverModel::Continuous`] — a hardware shift-register detector
//!   that keeps matching across the opening-flag/body junction.
//!
//! The distinction matters: the paper's low-overhead pairing (flag
//! `00000010`, stuff `1` after `0000001`) is valid under restart-scan but
//! **invalid** under a continuous detector — the opening flag's trailing
//! `0`, six data zeros, a data `1`... no: concretely, data `000001` makes
//! `opening-flag-tail 0 · 000001 · closing-flag-head 0` spell the flag.
//! Experiment E4 reports valid-rule counts under both models.

use crate::bits::BitVec;
use crate::matcher::Matcher;
use crate::rule::StuffRule;
use std::collections::{HashMap, HashSet, VecDeque};

/// How the receiver's flag detector behaves at flag/body junctions.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum ReceiverModel {
    /// Software-style: reset the detector after consuming a flag (the
    /// paper's `RemoveFlags` semantics). Default.
    RestartScan,
    /// Hardware-style: the detector shift register never resets.
    Continuous,
}

/// Why a pairing is invalid.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Invalid {
    /// The stuff bit re-triggers the rule: stuffing would never terminate.
    Divergent,
    /// Some data makes the stuffed body (or, under the continuous model,
    /// its junction with the opening flag) contain the flag. `witness` is
    /// such a data string.
    FalseFlagInBody { witness: BitVec },
    /// Some data makes a flag occurrence straddle the body / closing-flag
    /// boundary, firing the detector early. `witness` is such a data
    /// string; the early fire happens `early_by` bits before the true end.
    FalseFlagAtEnd { witness: BitVec, early_by: usize },
}

/// Result of checking a pairing.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Verdict {
    Valid,
    Invalid(Invalid),
}

impl Verdict {
    pub fn is_valid(&self) -> bool {
        matches!(self, Verdict::Valid)
    }
}

/// Decide whether `(rule, flag)` is valid under the paper's (restart-scan)
/// receiver: for **all** data `D`, `RemoveFlags` recovers exactly
/// `Stuff(D)` and hence the round-trip specification holds.
pub fn check_rule(rule: &StuffRule, flag: &BitVec) -> Verdict {
    check_rule_with(rule, flag, ReceiverModel::RestartScan)
}

/// Decide validity under an explicit receiver model. Sound and complete for
/// the finite-state formulation: the verdict covers *all* data strings.
pub fn check_rule_with(rule: &StuffRule, flag: &BitVec, model: ReceiverModel) -> Verdict {
    if !rule.is_terminating() {
        return Verdict::Invalid(Invalid::Divergent);
    }
    let tm = Matcher::new(&rule.trigger);
    let fm = Matcher::new(flag);
    let t_accept = tm.accept();
    let f_accept = fm.accept();

    // State = (stuff automaton state, flag detector state) at a point where
    // the transmitter is about to emit a *data* bit.
    let start_flag_state = match model {
        // Detector was reset after the opening flag.
        ReceiverModel::RestartScan => 0,
        // Detector continues from the opening flag's border.
        ReceiverModel::Continuous => fm.border_state(),
    };
    let start = (0usize, start_flag_state);
    // Predecessor map for witness reconstruction: state -> (prev, data bit).
    let mut pred: HashMap<(usize, usize), ((usize, usize), bool)> = HashMap::new();
    let mut queue = VecDeque::new();
    let mut seen = HashSet::new();
    queue.push_back(start);
    seen.insert(start);

    #[allow(clippy::type_complexity)]
    let witness = |pred: &HashMap<(usize, usize), ((usize, usize), bool)>,
                   mut s: (usize, usize)| {
        let mut bits_rev = Vec::new();
        while let Some(&(p, b)) = pred.get(&s) {
            bits_rev.push(b);
            s = p;
        }
        bits_rev.reverse();
        BitVec::from_bools(&bits_rev)
    };

    let mut reachable = Vec::new();
    while let Some(state) = queue.pop_front() {
        reachable.push(state);
        let (ts, fs) = state;
        for bit in [false, true] {
            // Emit the data bit.
            let mut ts2 = tm.step(ts, bit);
            let fs2 = fm.step(fs, bit);
            let mut fs_final = fs2;
            if fs2 == f_accept {
                // The flag fired inside the body.
                let mut w = witness(&pred, state);
                w.push(bit);
                return Verdict::Invalid(Invalid::FalseFlagInBody { witness: w });
            }
            if ts2 == t_accept {
                // Forced stuff bit follows.
                let sb = rule.stuff_bit;
                fs_final = fm.step(fs2, sb);
                if fs_final == f_accept {
                    let mut w = witness(&pred, state);
                    w.push(bit);
                    return Verdict::Invalid(Invalid::FalseFlagInBody { witness: w });
                }
                ts2 = tm.step(ts2, sb);
            }
            let next = (ts2, fs_final);
            if seen.insert(next) {
                pred.insert(next, (state, bit));
                queue.push_back(next);
            }
        }
    }

    // End-of-frame check: from every reachable body state, emit the closing
    // flag and make sure the detector does not fire before its final bit.
    for &state in &reachable {
        let (_, mut fs) = state;
        for (j, fb) in flag.iter().enumerate() {
            fs = fm.step(fs, fb);
            if fs == f_accept && j + 1 < flag.len() {
                return Verdict::Invalid(Invalid::FalseFlagAtEnd {
                    witness: witness(&pred, state),
                    early_by: flag.len() - (j + 1),
                });
            }
        }
        debug_assert_eq!(fs, f_accept, "closing flag must fire at its final bit");
    }

    Verdict::Valid
}

/// The named correctness properties ("lemmas") this crate establishes. The
/// experiment harness reports this inventory as the analogue of the paper's
/// lemma count; each entry is enforced by the decision procedure, an
/// exhaustive bounded check, or a property test in this crate.
pub fn property_inventory() -> Vec<&'static str> {
    vec![
        // Stuffing sublayer, any terminating rule.
        "stuff_unstuff_roundtrip: unstuff(stuff(d)) = d",
        "stuff_termination: terminating rules insert at most one bit per trigger",
        "stuff_injective: stuff is injective (follows from roundtrip)",
        "stuffed_no_naked_trigger: every trigger match in stuff(d) is followed by the stuff bit",
        // Flag sublayer.
        "flags_roundtrip: remove_flags(add_flags(s)) = s for flag-free s",
        "flags_shared: decode_stream supports shared closing/opening flags",
        // Validity (decision procedure, per pairing).
        "valid_no_flag_in_body: stuffed body never contains the flag",
        "valid_no_start_straddle: opening-flag/body junction never forms the flag (continuous model)",
        "valid_no_end_straddle: body/closing-flag junction never fires early",
        "valid_divergence_freedom: stuff bit never re-triggers the rule",
        // Composition (the paper's main specification).
        "frame_roundtrip: Unstuff(RemoveFlags(AddFlags(Stuff(D)))) = D",
        "stream_roundtrip: multi-frame streams decode to the framed sequence",
        "monolithic_equivalence: single-pass implementation ≡ sublayered",
        // Per-sublayer modularity (the paper's lesson 1).
        "sublayer_independence: stuffing lemmas do not mention flag internals beyond the validity contract",
    ]
}

/// Exhaustively confirm the round-trip specification for all data up to
/// `max_len` bits (used to cross-check the decision procedure in tests and
/// in experiment E5).
pub fn exhaustive_roundtrip(rule: &StuffRule, flag: &BitVec, max_len: usize) -> Result<(), BitVec> {
    let codec = crate::codec::FrameCodec::new(rule.clone(), flag.clone())
        .expect("terminating rule required");
    for len in 0..=max_len {
        for n in 0..(1u64 << len) {
            let d = BitVec::from_uint(n, len);
            if codec.decode(&codec.encode(&d)) != Ok(d.clone()) {
                return Err(d);
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bits::bits;
    use crate::rule::Flag;

    /// Semantic ground truth per receiver model, evaluated on concrete data.
    fn clean(rule: &StuffRule, flag: &BitVec, data: &BitVec, model: ReceiverModel) -> bool {
        let stuffer = crate::stuff::Stuffer::new(rule.clone()).unwrap();
        let s = stuffer.stuff(data);
        match model {
            ReceiverModel::RestartScan => {
                // No occurrence of the flag in s·F before the final one.
                let mut probe = s.clone();
                probe.extend_bits(flag);
                probe.find(flag, 0) == Some(s.len())
            }
            ReceiverModel::Continuous => {
                // The continuous detector over F·s·F fires exactly twice.
                let mut framed = flag.clone();
                framed.extend_bits(&s);
                framed.extend_bits(flag);
                let fires = Matcher::new(flag).match_ends(&framed);
                fires == vec![flag.len(), flag.len() + s.len() + flag.len()]
            }
        }
    }

    #[test]
    fn hdlc_pairing_is_valid_under_both_models() {
        for model in [ReceiverModel::RestartScan, ReceiverModel::Continuous] {
            assert_eq!(
                check_rule_with(&StuffRule::hdlc(), &Flag::hdlc(), model),
                Verdict::Valid,
                "{model:?}"
            );
        }
    }

    #[test]
    fn low_overhead_pairing_valid_under_restart_only() {
        // The paper's headline alternate rule: valid under the paper's
        // RemoveFlags (restart) spec...
        assert_eq!(
            check_rule(&StuffRule::low_overhead(), &Flag::low_overhead()),
            Verdict::Valid
        );
        // ...but a continuous shift-register detector sees a false flag
        // straddling the opening flag and data (e.g. data 000001).
        let v = check_rule_with(
            &StuffRule::low_overhead(),
            &Flag::low_overhead(),
            ReceiverModel::Continuous,
        );
        match v {
            Verdict::Invalid(
                Invalid::FalseFlagInBody { witness } | Invalid::FalseFlagAtEnd { witness, .. },
            ) => {
                assert!(!clean(
                    &StuffRule::low_overhead(),
                    &Flag::low_overhead(),
                    &witness,
                    ReceiverModel::Continuous
                ));
            }
            other => panic!("expected invalid under continuous model, got {other:?}"),
        }
    }

    #[test]
    fn divergent_rule_invalid() {
        assert_eq!(
            check_rule(&StuffRule::new(bits("1"), true), &Flag::hdlc()),
            Verdict::Invalid(Invalid::Divergent)
        );
    }

    #[test]
    fn unrelated_rule_is_invalid_for_hdlc_flag() {
        // Stuffing after 000 does nothing to stop 01111110 appearing in the
        // body.
        let rule = StuffRule::new(bits("000"), true);
        match check_rule(&rule, &Flag::hdlc()) {
            Verdict::Invalid(Invalid::FalseFlagInBody { witness }) => {
                assert!(!clean(&rule, &Flag::hdlc(), &witness, ReceiverModel::RestartScan));
            }
            other => panic!("expected FalseFlagInBody, got {other:?}"),
        }
    }

    #[test]
    fn short_trigger_for_hdlc_flag_is_valid() {
        // Stuffing a 0 after 111 also protects 01111110 (more overhead,
        // still correct).
        assert_eq!(check_rule(&StuffRule::new(bits("111"), false), &Flag::hdlc()), Verdict::Valid);
    }

    #[test]
    fn end_straddle_detected() {
        let rule = StuffRule::new(bits("11"), false);
        let flag = bits("1010");
        match check_rule(&rule, &flag) {
            Verdict::Invalid(
                Invalid::FalseFlagInBody { witness } | Invalid::FalseFlagAtEnd { witness, .. },
            ) => {
                assert!(!clean(&rule, &flag, &witness, ReceiverModel::RestartScan));
            }
            Verdict::Valid => panic!("checker should reject flag 1010 with rule 11/0"),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn valid_pairings_pass_exhaustive_roundtrip() {
        for (rule, flag) in [
            (StuffRule::hdlc(), Flag::hdlc()),
            (StuffRule::low_overhead(), Flag::low_overhead()),
            (StuffRule::new(bits("111"), false), Flag::hdlc()),
        ] {
            assert_eq!(check_rule(&rule, &flag), Verdict::Valid);
            assert_eq!(exhaustive_roundtrip(&rule, &flag, 10), Ok(()));
        }
    }

    #[test]
    fn checker_agrees_with_semantic_ground_truth_small_space() {
        // Total cross-validation over a small space, for both models: a
        // Valid verdict must survive brute force over all data up to 12
        // bits, and an Invalid verdict must come with a witness that really
        // breaks the model's criterion.
        for model in [ReceiverModel::RestartScan, ReceiverModel::Continuous] {
            for f in 0..16u64 {
                let flag = BitVec::from_uint(f, 4);
                for tlen in 1..=3usize {
                    for t in 0..(1u64 << tlen) {
                        for sb in [false, true] {
                            let rule = StuffRule::new(BitVec::from_uint(t, tlen), sb);
                            if !rule.is_terminating() {
                                continue;
                            }
                            match check_rule_with(&rule, &flag, model) {
                                Verdict::Valid => {
                                    for len in 0..=12usize {
                                        for n in 0..(1u64 << len) {
                                            let d = BitVec::from_uint(n, len);
                                            assert!(
                                                clean(&rule, &flag, &d, model),
                                                "rule {rule:?} flag {flag} model {model:?}: \
                                                 said Valid but {d} breaks framing"
                                            );
                                        }
                                    }
                                }
                                Verdict::Invalid(
                                    Invalid::FalseFlagInBody { witness }
                                    | Invalid::FalseFlagAtEnd { witness, .. },
                                ) => {
                                    assert!(
                                        !clean(&rule, &flag, &witness, model),
                                        "rule {rule:?} flag {flag} model {model:?}: \
                                         bogus witness {witness}"
                                    );
                                }
                                Verdict::Invalid(Invalid::Divergent) => {
                                    unreachable!("terminating rules only")
                                }
                            }
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn continuous_model_is_stricter() {
        // Every pairing valid under the continuous model must be valid
        // under restart-scan (the continuous detector sees strictly more
        // hazards).
        for f in 0..64u64 {
            let flag = BitVec::from_uint(f, 6);
            for t in 0..8u64 {
                for sb in [false, true] {
                    let rule = StuffRule::new(BitVec::from_uint(t, 3), sb);
                    if !rule.is_terminating() {
                        continue;
                    }
                    if check_rule_with(&rule, &flag, ReceiverModel::Continuous).is_valid() {
                        assert!(
                            check_rule_with(&rule, &flag, ReceiverModel::RestartScan).is_valid(),
                            "rule {rule:?} flag {flag}"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn invalid_witnesses_are_real() {
        // Spot-check across all 8-bit flags with the canonical triggers.
        for f in 0..256u64 {
            let flag = BitVec::from_uint(f, 8);
            for (t, tlen, sb) in [(0b11111u64, 5, false), (0b0000001, 7, true), (0b101, 3, false)]
            {
                let rule = StuffRule::new(BitVec::from_uint(t, tlen), sb);
                if !rule.is_terminating() {
                    continue;
                }
                if let Verdict::Invalid(
                    Invalid::FalseFlagInBody { witness }
                    | Invalid::FalseFlagAtEnd { witness, .. },
                ) = check_rule(&rule, &flag)
                {
                    assert!(
                        !clean(&rule, &flag, &witness, ReceiverModel::RestartScan),
                        "bogus witness {witness} for rule {rule:?} flag {flag}"
                    );
                }
            }
        }
    }

    #[test]
    fn property_inventory_is_nonempty_and_distinct() {
        let props = property_inventory();
        assert!(props.len() >= 10);
        let set: std::collections::HashSet<_> = props.iter().collect();
        assert_eq!(set.len(), props.len());
    }
}
