//! Stuffing overhead under the random-bit model (§4.1, lesson 2).
//!
//! The paper reports that HDLC's rule costs "1 in 32" extra bits on random
//! data while the flag `00000010` rule costs "1 in 128" — figures obtained
//! from the *naive* model (the probability that a random window equals the
//! trigger, `2^-|T|`). The true long-run rate differs when the trigger can
//! overlap itself: after a stuff, the matcher restarts from the post-stuff
//! state, so the exact rate is the reciprocal of the expected number of
//! random data bits between insertions — a first-step linear system we
//! solve *exactly* in rational arithmetic. For HDLC the exact rate is
//! `1/62` (the classic expected waiting time `2^6 - 2` for five consecutive
//! ones); for `0000001` (no self-overlap) naive and exact coincide at
//! `1/128`. The experiment harness reports both columns.

use crate::matcher::Matcher;
use crate::ratio::{solve, Ratio};
use crate::rule::StuffRule;
use crate::stuff::Stuffer;

/// Exact and naive stuffing overhead for a rule on uniform random data.
#[derive(Clone, Debug, PartialEq)]
pub struct Overhead {
    /// Expected stuffed bits per data bit, exact (renewal analysis).
    pub exact_rate: Ratio,
    /// The paper's naive model: `2^-|trigger|`.
    pub naive_rate: Ratio,
}

impl Overhead {
    /// "1 in N" form of the exact rate (N = reciprocal), if nonzero.
    pub fn one_in(&self) -> Option<Ratio> {
        (!self.exact_rate.is_zero()).then(|| self.exact_rate.recip())
    }
}

/// Compute the overhead of a terminating rule analytically.
///
/// Let `h(s)` be the expected number of random data bits consumed, starting
/// from matcher state `s`, until the next stuff insertion. Then
/// `h(s) = 1 + ½·Σ_{x∈{0,1}} [next(s,x) not accepting]·h(next(s,x))`,
/// a nonsingular linear system (the trigger is reachable from every state).
/// The long-run rate is `1 / h(reset)` where `reset` is the post-stuff
/// state; the naive rate is `2^-|T|`.
pub fn analyze(rule: &StuffRule) -> Option<Overhead> {
    if !rule.is_terminating() {
        return None;
    }
    let m = Matcher::new(&rule.trigger);
    let accept = m.accept();
    let k = rule.trigger.len();

    // Enumerate states reachable between stuff events: 0..k (accept state
    // excluded; transitions into accept terminate a cycle).
    let n = k; // states 0..k-1 plus possibly others — KMP states are 0..k.
    let mut a = vec![vec![Ratio::ZERO; n]; n];
    let b = vec![Ratio::ONE; n];
    let half = Ratio::new(1, 2);
    #[allow(clippy::needless_range_loop)] // `s` indexes both matrix and automaton state
    for s in 0..n {
        a[s][s] = Ratio::ONE;
        for bit in [false, true] {
            let next = m.step(s, bit);
            if next != accept {
                debug_assert!(next < n);
                a[s][next] = a[s][next] - half;
            }
        }
    }
    let h = solve(a, b)?;

    let reset = m.step(accept, rule.stuff_bit);
    debug_assert_ne!(reset, accept);
    let exact_rate = h[reset].recip();

    let naive_rate = Ratio::new(1, 1i128 << k.min(126));
    Some(Overhead { exact_rate, naive_rate })
}

/// Monte-Carlo estimate of the stuffing rate using caller-supplied random
/// bits (e.g. a seeded generator), for cross-checking `analyze`.
pub fn empirical(rule: &StuffRule, n_bits: usize, mut random_bit: impl FnMut() -> bool) -> f64 {
    let stuffer = Stuffer::new(rule.clone()).expect("terminating rule");
    let mut data = crate::bits::BitVec::with_capacity(n_bits);
    for _ in 0..n_bits {
        data.push(random_bit());
    }
    stuffer.stuff_count(&data) as f64 / n_bits as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bits::bits;

    #[test]
    fn hdlc_exact_rate_is_one_in_62() {
        // Expected waiting time for five consecutive ones is 2^6 - 2 = 62.
        let o = analyze(&StuffRule::hdlc()).unwrap();
        assert_eq!(o.exact_rate, Ratio::new(1, 62));
        assert_eq!(o.naive_rate, Ratio::new(1, 32));
        assert_eq!(o.one_in(), Some(Ratio::from_int(62)));
    }

    #[test]
    fn low_overhead_rule_is_exactly_one_in_128() {
        // 0000001 has no self-overlap: naive and exact agree — the paper's
        // 1-in-128 figure is exact for this rule.
        let o = analyze(&StuffRule::low_overhead()).unwrap();
        assert_eq!(o.exact_rate, Ratio::new(1, 128));
        assert_eq!(o.naive_rate, Ratio::new(1, 128));
    }

    #[test]
    fn single_bit_trigger() {
        // Trigger "1", stuff 0: every 1 in the data costs a stuffed bit;
        // expected rate 1/2 exactly.
        let o = analyze(&StuffRule::new(bits("1"), false)).unwrap();
        assert_eq!(o.exact_rate, Ratio::new(1, 2));
    }

    #[test]
    fn divergent_rule_yields_none() {
        assert_eq!(analyze(&StuffRule::new(bits("1"), true)), None);
    }

    #[test]
    fn empirical_matches_exact_hdlc() {
        // Deterministic xorshift bit source.
        let mut state = 0x9E3779B97F4A7C15u64;
        let mut bit = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state & 1 == 1
        };
        let est = empirical(&StuffRule::hdlc(), 2_000_000, &mut bit);
        let exact = analyze(&StuffRule::hdlc()).unwrap().exact_rate.to_f64();
        assert!((est - exact).abs() < 0.001, "est {est} vs exact {exact}");
    }

    #[test]
    fn empirical_matches_exact_low_overhead() {
        let mut state = 0xDEADBEEFCAFEBABEu64;
        let mut bit = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state & 1 == 1
        };
        let est = empirical(&StuffRule::low_overhead(), 2_000_000, &mut bit);
        let exact = analyze(&StuffRule::low_overhead()).unwrap().exact_rate.to_f64();
        assert!((est - exact).abs() < 0.001, "est {est} vs exact {exact}");
    }

    #[test]
    fn exact_rate_bounded_by_naive_relationship() {
        // For any terminating rule, the exact expected waiting time is at
        // least 2^|T| - something reasonable; sanity: rate <= 1/2 always
        // and > 0.
        for t in 1..64u64 {
            let tlen = 6;
            let rule = StuffRule::new(crate::bits::BitVec::from_uint(t, tlen), t & 1 == 0);
            if !rule.is_terminating() {
                continue;
            }
            let o = analyze(&rule).unwrap();
            assert!(o.exact_rate > Ratio::ZERO);
            assert!(o.exact_rate <= Ratio::new(1, 2));
        }
    }
}
