//! The **flag sublayer** (lower of the two framing sublayers, §4.1).
//!
//! At the sender it brackets a frame body with the flag pattern; at the
//! receiver a continuous detector (a shift-register in hardware) delimits
//! frame bodies between flag firings. Per **T2**, the interface upward to
//! the stuffing sublayer is a frame of bits without flags; per **T3**, the
//! flag pattern itself is this sublayer's private mechanism — it is exposed
//! only through the validity contract ([`crate::verify`]) because the
//! correctness of stuffing depends on the flag (the coupling the paper's
//! lemmas surface).

use crate::bits::BitVec;
use std::fmt;

/// Errors from flag removal.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum FlagError {
    /// No opening flag was found in the stream.
    NoOpeningFlag,
    /// An opening flag was found but no closing flag followed.
    NoClosingFlag,
}

impl fmt::Display for FlagError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FlagError::NoOpeningFlag => write!(f, "no opening flag in stream"),
            FlagError::NoClosingFlag => write!(f, "no closing flag in stream"),
        }
    }
}

impl std::error::Error for FlagError {}

/// The flag sublayer endpoint.
#[derive(Clone, Debug)]
pub struct Flagger {
    flag: BitVec,
}

impl Flagger {
    pub fn new(flag: BitVec) -> Flagger {
        assert!(!flag.is_empty(), "flag must be non-empty");
        Flagger { flag }
    }

    /// The HDLC flagger (`01111110`).
    pub fn hdlc() -> Flagger {
        Flagger::new(crate::rule::Flag::hdlc())
    }

    pub fn flag(&self) -> &BitVec {
        &self.flag
    }

    /// Sender side: `flag · body · flag`.
    pub fn add_flags(&self, body: &BitVec) -> BitVec {
        let mut out = BitVec::with_capacity(body.len() + 2 * self.flag.len());
        out.extend_bits(&self.flag);
        out.extend_bits(body);
        out.extend_bits(&self.flag);
        out
    }

    /// Receiver side, single frame, **restart-scan semantics** (the paper's
    /// `RemoveFlags` specification): hunt for the first occurrence of the
    /// flag, *reset*, then take everything up to the next occurrence as the
    /// body. This is how software framers work; a hardware shift-register
    /// detector instead matches *continuously* across the flag/body
    /// junction -- a strictly harder setting checked separately by
    /// [`crate::verify::check_rule`] under
    /// [`crate::verify::ReceiverModel::Continuous`].
    pub fn remove_flags(&self, stream: &BitVec) -> Result<BitVec, FlagError> {
        let open = stream.find(&self.flag, 0).ok_or(FlagError::NoOpeningFlag)?;
        let body_start = open + self.flag.len();
        let close = stream.find(&self.flag, body_start).ok_or(FlagError::NoClosingFlag)?;
        Ok(stream.slice(body_start, close))
    }

    /// Receiver side, continuous stream, restart-scan semantics: every body
    /// delimited by successive flag occurrences. Empty bodies (back-to-back
    /// or shared flags, idle fill) are discarded, matching HDLC receiver
    /// practice.
    ///
    /// Shared closing/opening flags (`F body1 F body2 F`) are supported
    /// naturally: each occurrence both closes one frame and opens the next.
    pub fn decode_stream(&self, stream: &BitVec) -> Vec<BitVec> {
        let mut out = Vec::new();
        let Some(first) = stream.find(&self.flag, 0) else { return out };
        let mut pos = first + self.flag.len();
        while let Some(next) = stream.find(&self.flag, pos) {
            let body = stream.slice(pos, next);
            if !body.is_empty() {
                out.push(body);
            }
            pos = next + self.flag.len();
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bits::bits;

    #[test]
    fn add_and_remove_round_trip() {
        let f = Flagger::hdlc();
        let body = bits("10100");
        assert_eq!(f.remove_flags(&f.add_flags(&body)), Ok(body));
    }

    #[test]
    fn empty_body_round_trips_single_frame() {
        let f = Flagger::hdlc();
        assert_eq!(f.remove_flags(&f.add_flags(&BitVec::new())), Ok(BitVec::new()));
    }

    #[test]
    fn missing_flags_reported() {
        let f = Flagger::hdlc();
        assert_eq!(f.remove_flags(&bits("10101010")), Err(FlagError::NoOpeningFlag));
        let mut only_open = crate::rule::Flag::hdlc();
        only_open.extend_bits(&bits("1010"));
        assert_eq!(f.remove_flags(&only_open), Err(FlagError::NoClosingFlag));
    }

    #[test]
    fn stream_with_separate_flags() {
        let f = Flagger::hdlc();
        let mut s = f.add_flags(&bits("101"));
        s.extend_bits(&f.add_flags(&bits("0011")));
        let frames = f.decode_stream(&s);
        assert_eq!(frames, vec![bits("101"), bits("0011")]);
    }

    #[test]
    fn stream_with_shared_flag() {
        // F body1 F body2 F — one flag closes frame 1 and opens frame 2.
        let f = Flagger::hdlc();
        let flag = crate::rule::Flag::hdlc();
        let mut s = flag.clone();
        s.extend_bits(&bits("101"));
        s.extend_bits(&flag);
        s.extend_bits(&bits("0011"));
        s.extend_bits(&flag);
        assert_eq!(f.decode_stream(&s), vec![bits("101"), bits("0011")]);
    }

    #[test]
    fn idle_flag_fill_yields_no_frames() {
        let f = Flagger::hdlc();
        let flag = crate::rule::Flag::hdlc();
        let mut s = BitVec::new();
        for _ in 0..4 {
            s.extend_bits(&flag);
        }
        assert_eq!(f.decode_stream(&s), Vec::<BitVec>::new());
    }

    #[test]
    fn leading_noise_before_first_flag_is_ignored() {
        let f = Flagger::hdlc();
        let mut s = bits("0011");
        s.extend_bits(&f.add_flags(&bits("111")));
        // "111" contains no flag bits conflict; frame should decode.
        assert_eq!(f.remove_flags(&s), Ok(bits("111")));
    }

    #[test]
    fn self_overlapping_flag_detector() {
        // Flag 0101 overlaps itself; the continuous detector must handle
        // firings 2 bits apart (idle fill 010101...).
        let f = Flagger::new(bits("0101"));
        let s = bits("01010101");
        // Firings end at 4, 6, 8; bodies between them are "negative"/empty.
        assert_eq!(f.decode_stream(&s), Vec::<BitVec>::new());
    }
}
