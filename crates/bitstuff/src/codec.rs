//! The composed framing codec and its monolithic counterpart.
//!
//! [`FrameCodec`] is the *sublayered* implementation from §4.1: the stuffing
//! sublayer sits above the flag sublayer, and the only value that crosses
//! between them is a frame of bits. The module also provides
//! [`monolithic`]: the traditional single-pass implementation the paper
//! contrasts (sender emits flag, stuffs on the fly, emits flag; receiver
//! detects/unstuffs in one loop). The two must be observationally
//! equivalent — a property tested here and benchmarked in `bench`.

use crate::bits::BitVec;
use crate::flags::{FlagError, Flagger};
use crate::rule::StuffRule;
use crate::stuff::{StuffError, Stuffer};
use std::fmt;

/// Errors from frame decoding.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum FrameError {
    Flag(FlagError),
    Stuff(StuffError),
}

impl fmt::Display for FrameError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FrameError::Flag(e) => write!(f, "flag sublayer: {e}"),
            FrameError::Stuff(e) => write!(f, "stuffing sublayer: {e}"),
        }
    }
}

impl std::error::Error for FrameError {}

impl From<FlagError> for FrameError {
    fn from(e: FlagError) -> Self {
        FrameError::Flag(e)
    }
}

impl From<StuffError> for FrameError {
    fn from(e: StuffError) -> Self {
        FrameError::Stuff(e)
    }
}

/// The sublayered framing codec: stuffing over flags.
#[derive(Clone, Debug)]
pub struct FrameCodec {
    stuffer: Stuffer,
    flagger: Flagger,
}

impl FrameCodec {
    /// Compose a stuffing rule with a flag. The pairing is *not* validated
    /// here — run [`crate::verify::check_rule`] first; [`FrameCodec::hdlc`]
    /// and validated pairings from [`crate::search`] are always safe.
    pub fn new(rule: StuffRule, flag: BitVec) -> Result<FrameCodec, StuffError> {
        Ok(FrameCodec { stuffer: Stuffer::new(rule)?, flagger: Flagger::new(flag) })
    }

    /// The classic HDLC pairing.
    pub fn hdlc() -> FrameCodec {
        FrameCodec::new(StuffRule::hdlc(), crate::rule::Flag::hdlc()).expect("HDLC terminates")
    }

    /// The paper's low-overhead pairing (flag `00000010`, stuff `1` after
    /// `0000001`).
    pub fn low_overhead() -> FrameCodec {
        FrameCodec::new(StuffRule::low_overhead(), crate::rule::Flag::low_overhead())
            .expect("rule terminates")
    }

    pub fn stuffer(&self) -> &Stuffer {
        &self.stuffer
    }

    pub fn flagger(&self) -> &Flagger {
        &self.flagger
    }

    /// Sender: `AddFlags(Stuff(data))` — each sublayer applied separately.
    pub fn encode(&self, data: &BitVec) -> BitVec {
        self.flagger.add_flags(&self.stuffer.stuff(data))
    }

    /// Receiver: `Unstuff(RemoveFlags(stream))`.
    pub fn decode(&self, stream: &BitVec) -> Result<BitVec, FrameError> {
        Ok(self.stuffer.unstuff(&self.flagger.remove_flags(stream)?)?)
    }

    /// Receiver over a continuous stream possibly carrying many frames.
    /// Frames whose stuffing is inconsistent (corruption) are dropped.
    pub fn decode_stream(&self, stream: &BitVec) -> Vec<BitVec> {
        self.flagger
            .decode_stream(stream)
            .iter()
            .filter_map(|body| self.stuffer.unstuff(body).ok())
            .collect()
    }
}

/// The traditional single-pass implementation (the paper's "standard
/// implementation": sender emits a start flag, stuffs the data on the fly,
/// and finally emits an end flag — one loop, no sublayer boundary).
pub mod monolithic {
    use super::*;
    use crate::matcher::Matcher;

    /// Single-pass encoder.
    pub fn encode(rule: &StuffRule, flag: &BitVec, data: &BitVec) -> BitVec {
        let m = Matcher::new(&rule.trigger);
        let accept = m.accept();
        let mut out = BitVec::with_capacity(data.len() + 2 * flag.len() + data.len() / 8);
        // Start flag, stuffing counter not running over flag bits.
        out.extend_bits(flag);
        let mut st = 0;
        for bit in data.iter() {
            out.push(bit);
            st = m.step(st, bit);
            if st == accept {
                out.push(rule.stuff_bit);
                st = m.step(st, rule.stuff_bit);
            }
        }
        out.extend_bits(flag);
        out
    }

    /// Single-pass decoder: hunts for the opening flag, then unstuffs on the
    /// fly while watching for the closing flag with a continuous detector.
    pub fn decode(rule: &StuffRule, flag: &BitVec, stream: &BitVec) -> Result<BitVec, FrameError> {
        let fm = Matcher::new(flag);
        let tm = Matcher::new(&rule.trigger);

        // Hunt for the opening flag.
        let mut fs = 0;
        let mut i = 0;
        let mut opened = false;
        while i < stream.len() {
            fs = fm.step(fs, stream.get(i));
            i += 1;
            if fs == fm.accept() {
                opened = true;
                break;
            }
        }
        if !opened {
            return Err(FlagError::NoOpeningFlag.into());
        }
        // Restart-scan semantics (the paper's RemoveFlags): the detector
        // resets after consuming the opening flag.
        fs = 0;

        // Body: unstuff while looking for the closing flag. Because the
        // closing flag's last |flag| bits are not body, we buffer decoded
        // output along with the input position that produced it and roll
        // back when the flag fires.
        let start = i;
        let mut ts = 0;
        // When a trigger match completes, records the input index of the
        // bit that completed it: the *next* bit must be a stuff bit.
        let mut pending_stuff_after: Option<usize> = None;
        // First stuffing violation seen, by input index. A violation is
        // only an error if it turns out to lie inside the body — bits that
        // later prove to be closing-flag bits are allowed to "violate" the
        // stuffing rule (that is precisely how HDLC's receiver tells a flag
        // from data: 11111 followed by 1 means flag, not data error).
        let mut violation: Option<usize> = None;
        // (input_index_consumed, decoded_bit or None for stuffed)
        let mut decoded: Vec<(usize, Option<bool>)> = Vec::new();
        while i < stream.len() {
            let bit = stream.get(i);
            fs = fm.step(fs, bit);
            if fs == fm.accept() {
                // Closing flag fired ending at i+1. Body input is
                // stream[start .. i+1-|flag|]; drop decoded entries from the
                // flag region (they were speculative body bits).
                let body_end = i + 1 - flag.len();
                if let Some(p) = violation {
                    if p < body_end {
                        return Err(StuffError::UnexpectedBit(p - start).into());
                    }
                }
                // If a trigger completed on the last true body bit, the
                // frame ended where a stuff bit was required — only possible
                // on invalid rule pairings or corruption.
                if pending_stuff_after.is_some_and(|p| p + 1 == body_end) {
                    return Err(StuffError::Truncated.into());
                }
                let mut out = BitVec::new();
                for &(pos, b) in &decoded {
                    if pos < body_end {
                        if let Some(b) = b {
                            out.push(b);
                        }
                    }
                }
                return Ok(out);
            }
            if pending_stuff_after.take().is_some() {
                if bit != rule.stuff_bit {
                    // Defer: this may be a closing-flag bit, not body.
                    violation.get_or_insert(i);
                    // Treat it as ordinary body speculation from here on.
                    decoded.push((i, Some(bit)));
                    ts = tm.step(ts, bit);
                    if ts == tm.accept() {
                        pending_stuff_after = Some(i);
                    }
                } else {
                    ts = tm.step(ts, bit);
                    decoded.push((i, None));
                }
            } else {
                decoded.push((i, Some(bit)));
                ts = tm.step(ts, bit);
                if ts == tm.accept() {
                    pending_stuff_after = Some(i);
                }
            }
            i += 1;
        }
        Err(FlagError::NoClosingFlag.into())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bits::bits;

    #[test]
    fn encode_decode_round_trip_hdlc() {
        let c = FrameCodec::hdlc();
        for len in 0..=10usize {
            for n in 0..(1u64 << len) {
                let d = BitVec::from_uint(n, len);
                assert_eq!(c.decode(&c.encode(&d)), Ok(d));
            }
        }
    }

    #[test]
    fn encode_decode_round_trip_low_overhead() {
        let c = FrameCodec::low_overhead();
        for len in 0..=10usize {
            for n in 0..(1u64 << len) {
                let d = BitVec::from_uint(n, len);
                assert_eq!(c.decode(&c.encode(&d)), Ok(d));
            }
        }
    }

    #[test]
    fn stream_of_frames_round_trips() {
        let c = FrameCodec::hdlc();
        let frames = [bits("11111"), bits("010101"), bits("1111111111")];
        let mut stream = BitVec::new();
        for f in &frames {
            stream.extend_bits(&c.encode(f));
        }
        assert_eq!(c.decode_stream(&stream), frames.to_vec());
    }

    #[test]
    fn worst_case_data_contains_flag_pattern() {
        // Data that *is* the flag must still round-trip: stuffing prevents a
        // false flag.
        let c = FrameCodec::hdlc();
        let d = bits("01111110");
        let encoded = c.encode(&d);
        assert_eq!(c.decode(&encoded), Ok(d));
    }

    #[test]
    fn monolithic_equals_sublayered_exhaustive() {
        let c = FrameCodec::hdlc();
        let rule = StuffRule::hdlc();
        let flag = crate::rule::Flag::hdlc();
        for len in 0..=10usize {
            for n in 0..(1u64 << len) {
                let d = BitVec::from_uint(n, len);
                let sub = c.encode(&d);
                let mono = monolithic::encode(&rule, &flag, &d);
                assert_eq!(sub, mono, "encode mismatch for {d}");
                assert_eq!(monolithic::decode(&rule, &flag, &sub), Ok(d));
            }
        }
    }

    #[test]
    fn monolithic_decode_rejects_noise() {
        let rule = StuffRule::hdlc();
        let flag = crate::rule::Flag::hdlc();
        assert_eq!(
            monolithic::decode(&rule, &flag, &bits("10101010")),
            Err(FrameError::Flag(FlagError::NoOpeningFlag))
        );
    }

    proptest::proptest! {
        #[test]
        fn prop_spec_round_trip(data in proptest::collection::vec(proptest::bool::ANY, 0..300)) {
            // The paper's main specification:
            // Unstuff(RemoveFlags(AddFlags(Stuff(D)))) = D.
            let c = FrameCodec::hdlc();
            let d = BitVec::from_bools(&data);
            proptest::prop_assert_eq!(c.decode(&c.encode(&d)), Ok(d));
        }

        #[test]
        fn prop_monolithic_equivalence(data in proptest::collection::vec(proptest::bool::ANY, 0..300)) {
            let c = FrameCodec::low_overhead();
            let rule = StuffRule::low_overhead();
            let flag = crate::rule::Flag::low_overhead();
            let d = BitVec::from_bools(&data);
            proptest::prop_assert_eq!(c.encode(&d), monolithic::encode(&rule, &flag, &d));
            proptest::prop_assert_eq!(monolithic::decode(&rule, &flag, &c.encode(&d)), Ok(d));
        }
    }
}
