//! Search of the stuffing-rule design space (§4.1: "we also created a
//! library of stuffing protocols that our proof deems valid; it found 66
//! alternate stuffing rules, some of which had less overhead than HDLC").
//!
//! We enumerate candidate `(flag, trigger, stuff-bit)` pairings, run the
//! exact validity decision procedure on each, and rank the valid ones by
//! exact overhead. The result is this crate's "library of verified stuffing
//! protocols": every entry returned by [`search`] carries a machine-checked
//! validity certificate (the [`crate::verify::check_rule`] verdict) exactly
//! as the paper's Coq proof certified its 66 rules.

use crate::bits::BitVec;
use crate::overhead::{analyze, Overhead};
use crate::rule::StuffRule;
use crate::verify::{check_rule, Verdict};

/// A validated pairing with its overhead analysis.
#[derive(Clone, Debug)]
pub struct ValidRule {
    pub flag: BitVec,
    pub rule: StuffRule,
    pub overhead: Overhead,
}

/// Search parameters.
#[derive(Clone, Debug)]
pub struct SearchSpace {
    /// Flag length in bits (HDLC uses 8).
    pub flag_len: usize,
    /// Trigger lengths to try.
    pub trigger_lens: std::ops::RangeInclusive<usize>,
    /// Restrict triggers to substrings of the flag (the structured subspace
    /// HDLC itself lives in: `11111` is a substring of `01111110`).
    pub triggers_from_flag_only: bool,
}

impl Default for SearchSpace {
    fn default() -> Self {
        SearchSpace { flag_len: 8, trigger_lens: 1..=7, triggers_from_flag_only: false }
    }
}

/// Outcome counters for a search (reported by experiment E4).
#[derive(Clone, Debug, Default)]
pub struct SearchStats {
    pub candidates: usize,
    pub divergent: usize,
    pub false_flag_in_body: usize,
    pub false_flag_at_end: usize,
    pub valid: usize,
}

/// Enumerate the space and validate every candidate. Returns the library of
/// valid rules (sorted by exact overhead, lowest first) and the counters.
pub fn search(space: &SearchSpace) -> (Vec<ValidRule>, SearchStats) {
    let mut stats = SearchStats::default();
    let mut valid = Vec::new();
    for f in 0..(1u64 << space.flag_len) {
        let flag = BitVec::from_uint(f, space.flag_len);
        for tlen in space.trigger_lens.clone() {
            if tlen >= space.flag_len && space.triggers_from_flag_only {
                continue;
            }
            for t in 0..(1u64 << tlen) {
                let trigger = BitVec::from_uint(t, tlen);
                if space.triggers_from_flag_only && flag.find(&trigger, 0).is_none() {
                    continue;
                }
                for stuff_bit in [false, true] {
                    stats.candidates += 1;
                    let rule = StuffRule::new(trigger.clone(), stuff_bit);
                    match check_rule(&rule, &flag) {
                        Verdict::Valid => {
                            stats.valid += 1;
                            let overhead = analyze(&rule).expect("valid implies terminating");
                            valid.push(ValidRule { flag: flag.clone(), rule, overhead });
                        }
                        Verdict::Invalid(crate::verify::Invalid::Divergent) => {
                            stats.divergent += 1;
                        }
                        Verdict::Invalid(crate::verify::Invalid::FalseFlagInBody { .. }) => {
                            stats.false_flag_in_body += 1;
                        }
                        Verdict::Invalid(crate::verify::Invalid::FalseFlagAtEnd { .. }) => {
                            stats.false_flag_at_end += 1;
                        }
                    }
                }
            }
        }
    }
    valid.sort_by(|a, b| {
        a.overhead
            .exact_rate
            .cmp(&b.overhead.exact_rate)
            .then_with(|| a.flag.to_uint().cmp(&b.flag.to_uint()))
            .then_with(|| a.rule.trigger.to_uint().cmp(&b.rule.trigger.to_uint()))
    });
    (valid, stats)
}

/// Count the valid rules strictly cheaper than HDLC's exact rate (`1/62`).
pub fn cheaper_than_hdlc(library: &[ValidRule]) -> usize {
    let hdlc = analyze(&StuffRule::hdlc()).unwrap().exact_rate;
    library.iter().filter(|r| r.overhead.exact_rate < hdlc).count()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rule::Flag;

    #[test]
    fn structured_subspace_contains_hdlc_and_paper_rule() {
        let (library, stats) = search(&SearchSpace {
            flag_len: 8,
            trigger_lens: 5..=7,
            triggers_from_flag_only: true,
        });
        assert!(stats.valid > 0);
        assert!(library.iter().any(|r| r.flag == Flag::hdlc() && r.rule == StuffRule::hdlc()));
        assert!(library
            .iter()
            .any(|r| r.flag == Flag::low_overhead() && r.rule == StuffRule::low_overhead()));
        // The paper's headline: some valid rules are cheaper than HDLC.
        assert!(cheaper_than_hdlc(&library) > 0);
        // Library is sorted cheapest-first.
        for w in library.windows(2) {
            assert!(w[0].overhead.exact_rate <= w[1].overhead.exact_rate);
        }
    }

    #[test]
    fn small_flag_space_counts_are_stable() {
        // A fixed small space acts as a regression anchor: any change to
        // the decision procedure that alters these counts is suspicious.
        let (library, stats) = search(&SearchSpace {
            flag_len: 4,
            trigger_lens: 1..=3,
            triggers_from_flag_only: false,
        });
        assert_eq!(stats.candidates, 16 * (2 + 4 + 8) * 2);
        assert_eq!(stats.valid, library.len());
        // Every reported rule must re-validate.
        for r in &library {
            assert!(check_rule(&r.rule, &r.flag).is_valid());
        }
        // And counts must partition the candidates.
        assert_eq!(
            stats.candidates,
            stats.valid + stats.divergent + stats.false_flag_in_body + stats.false_flag_at_end
        );
    }

    #[test]
    fn every_valid_rule_round_trips_bounded() {
        let (library, _) = search(&SearchSpace {
            flag_len: 4,
            trigger_lens: 1..=3,
            triggers_from_flag_only: false,
        });
        for r in library.iter().take(50) {
            assert_eq!(
                crate::verify::exhaustive_roundtrip(&r.rule, &r.flag, 8),
                Ok(()),
                "library rule failed: {:?} flag {}",
                r.rule,
                r.flag
            );
        }
    }
}
