//! A compact bit vector.
//!
//! The data-link sublayers operate on *bit* streams (framing, stuffing, line
//! coding), so we need a dedicated bit container rather than `Vec<u8>`.
//! Bits are stored packed, most-significant-bit first within each byte, which
//! matches the on-the-wire transmission order used throughout the workspace.

use std::fmt;
use std::str::FromStr;

/// A growable vector of bits, packed MSB-first.
#[derive(Clone, PartialEq, Eq, Hash, Default)]
pub struct BitVec {
    bytes: Vec<u8>,
    len: usize,
}

impl BitVec {
    /// An empty bit vector.
    pub fn new() -> BitVec {
        BitVec::default()
    }

    /// An empty bit vector with room for `n` bits.
    pub fn with_capacity(n: usize) -> BitVec {
        BitVec { bytes: Vec::with_capacity(n.div_ceil(8)), len: 0 }
    }

    /// Build from a slice of booleans.
    pub fn from_bools(bits: &[bool]) -> BitVec {
        let mut v = BitVec::with_capacity(bits.len());
        for &b in bits {
            v.push(b);
        }
        v
    }

    /// Build from whole bytes; every bit of `bytes` is included, MSB first.
    pub fn from_bytes(bytes: &[u8]) -> BitVec {
        BitVec { bytes: bytes.to_vec(), len: bytes.len() * 8 }
    }

    /// The low `n` bits of `value`, most significant first.
    /// E.g. `from_uint(0b0110, 4)` is the bit string `0110`.
    pub fn from_uint(value: u64, n: usize) -> BitVec {
        assert!(n <= 64);
        let mut v = BitVec::with_capacity(n);
        for i in (0..n).rev() {
            v.push((value >> i) & 1 == 1);
        }
        v
    }

    /// Number of bits.
    pub fn len(&self) -> usize {
        self.len
    }

    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Append one bit.
    pub fn push(&mut self, bit: bool) {
        let byte = self.len / 8;
        let off = self.len % 8;
        if off == 0 {
            self.bytes.push(0);
        }
        if bit {
            self.bytes[byte] |= 0x80 >> off;
        }
        self.len += 1;
    }

    /// Append all bits of `other`.
    pub fn extend_bits(&mut self, other: &BitVec) {
        for b in other.iter() {
            self.push(b);
        }
    }

    /// Read the bit at `idx`. Panics when out of range.
    pub fn get(&self, idx: usize) -> bool {
        assert!(idx < self.len, "bit index {idx} out of range ({} bits)", self.len);
        self.bytes[idx / 8] & (0x80 >> (idx % 8)) != 0
    }

    /// Iterate over bits in order.
    pub fn iter(&self) -> impl Iterator<Item = bool> + '_ {
        (0..self.len).map(move |i| self.get(i))
    }

    /// The sub-vector `[start, end)`.
    pub fn slice(&self, start: usize, end: usize) -> BitVec {
        assert!(start <= end && end <= self.len);
        let mut v = BitVec::with_capacity(end - start);
        for i in start..end {
            v.push(self.get(i));
        }
        v
    }

    /// Concatenate two bit vectors.
    pub fn concat(&self, other: &BitVec) -> BitVec {
        let mut v = self.clone();
        v.extend_bits(other);
        v
    }

    /// Interpret the bits as a big-endian unsigned integer (≤ 64 bits).
    pub fn to_uint(&self) -> u64 {
        assert!(self.len <= 64);
        self.iter().fold(0u64, |acc, b| (acc << 1) | b as u64)
    }

    /// Pack into bytes, zero-padding the final partial byte.
    /// Also returns the number of valid bits.
    pub fn to_bytes_padded(&self) -> (Vec<u8>, usize) {
        (self.bytes.clone(), self.len)
    }

    /// Pack into whole bytes. Panics unless `len` is a multiple of 8.
    pub fn to_bytes_exact(&self) -> Vec<u8> {
        assert!(self.len.is_multiple_of(8), "bit length {} is not byte aligned", self.len);
        self.bytes.clone()
    }

    /// Reconstruct from `to_bytes_padded` output.
    pub fn from_bytes_padded(bytes: &[u8], len: usize) -> BitVec {
        assert!(len <= bytes.len() * 8);
        let mut v = BitVec::from_bytes(bytes);
        v.truncate(len);
        v
    }

    /// Shorten to `n` bits (no-op if already shorter).
    pub fn truncate(&mut self, n: usize) {
        if n >= self.len {
            return;
        }
        self.len = n;
        self.bytes.truncate(n.div_ceil(8));
        // Clear any stale bits in the final partial byte so Eq/Hash stay
        // consistent with bit content.
        if !n.is_multiple_of(8) {
            let mask = !(0xFFu8 >> (n % 8));
            if let Some(last) = self.bytes.last_mut() {
                *last &= mask;
            }
        }
    }

    /// Find the first occurrence of `pattern` starting at or after `from`.
    pub fn find(&self, pattern: &BitVec, from: usize) -> Option<usize> {
        if pattern.is_empty() || pattern.len() > self.len {
            return None;
        }
        (from..=self.len - pattern.len())
            .find(|&i| (0..pattern.len()).all(|j| self.get(i + j) == pattern.get(j)))
    }

    /// All start positions where `pattern` occurs (overlaps included).
    pub fn occurrences(&self, pattern: &BitVec) -> Vec<usize> {
        let mut out = Vec::new();
        let mut from = 0;
        while let Some(p) = self.find(pattern, from) {
            out.push(p);
            from = p + 1;
        }
        out
    }
}

impl FromStr for BitVec {
    type Err = String;

    /// Parse from a string of `0`/`1` characters (spaces and `_` ignored).
    fn from_str(s: &str) -> Result<BitVec, String> {
        let mut v = BitVec::new();
        for c in s.chars() {
            match c {
                '0' => v.push(false),
                '1' => v.push(true),
                ' ' | '_' => {}
                other => return Err(format!("invalid bit character {other:?}")),
            }
        }
        Ok(v)
    }
}

impl fmt::Debug for BitVec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for b in self.iter() {
            write!(f, "{}", b as u8)?;
        }
        Ok(())
    }
}

impl fmt::Display for BitVec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(self, f)
    }
}

/// Shorthand constructor used pervasively in tests: `bits("01101")`.
pub fn bits(s: &str) -> BitVec {
    s.parse().expect("invalid bit literal")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_and_get() {
        let mut v = BitVec::new();
        v.push(true);
        v.push(false);
        v.push(true);
        assert_eq!(v.len(), 3);
        assert!(v.get(0));
        assert!(!v.get(1));
        assert!(v.get(2));
    }

    #[test]
    fn parse_and_display_round_trip() {
        let v = bits("0111 1110");
        assert_eq!(v.len(), 8);
        assert_eq!(format!("{v}"), "01111110");
    }

    #[test]
    fn from_bytes_msb_first() {
        let v = BitVec::from_bytes(&[0b1010_0001]);
        assert_eq!(format!("{v}"), "10100001");
    }

    #[test]
    fn uint_round_trip() {
        for n in 0..64u64 {
            let v = BitVec::from_uint(n, 6);
            assert_eq!(v.len(), 6);
            assert_eq!(v.to_uint(), n);
        }
        assert_eq!(format!("{}", BitVec::from_uint(0b0110, 4)), "0110");
    }

    #[test]
    fn byte_round_trips() {
        let v = bits("10110011 101");
        let (bytes, len) = v.to_bytes_padded();
        assert_eq!(len, 11);
        assert_eq!(BitVec::from_bytes_padded(&bytes, len), v);

        let w = bits("10110011");
        assert_eq!(w.to_bytes_exact(), vec![0b1011_0011]);
        assert_eq!(BitVec::from_bytes(&w.to_bytes_exact()), w);
    }

    #[test]
    #[should_panic(expected = "byte aligned")]
    fn to_bytes_exact_rejects_ragged() {
        bits("101").to_bytes_exact();
    }

    #[test]
    fn truncate_clears_stale_bits() {
        let mut a = bits("1111");
        a.truncate(2);
        let b = bits("11");
        assert_eq!(a, b);
        // Hash/Eq consistency: packed representation must match too.
        assert_eq!(a.to_bytes_padded(), b.to_bytes_padded());
    }

    #[test]
    fn slice_and_concat() {
        let v = bits("110010");
        assert_eq!(v.slice(1, 4), bits("100"));
        assert_eq!(v.slice(0, 0), BitVec::new());
        assert_eq!(bits("11").concat(&bits("00")), bits("1100"));
    }

    #[test]
    fn find_basic_and_overlapping() {
        let v = bits("0110110");
        assert_eq!(v.find(&bits("11"), 0), Some(1));
        assert_eq!(v.find(&bits("11"), 2), Some(4));
        assert_eq!(v.find(&bits("111"), 0), None);
        assert_eq!(bits("1111").occurrences(&bits("11")), vec![0, 1, 2]);
        assert_eq!(bits("010101").occurrences(&bits("0101")), vec![0, 2]);
    }

    #[test]
    fn find_empty_pattern_is_none() {
        assert_eq!(bits("101").find(&BitVec::new(), 0), None);
    }

    #[test]
    fn from_bools_matches_pushes() {
        assert_eq!(BitVec::from_bools(&[true, false, true]), bits("101"));
    }

    #[test]
    fn extend_bits_appends() {
        let mut v = bits("01");
        v.extend_bits(&bits("10"));
        assert_eq!(v, bits("0110"));
    }

    proptest::proptest! {
        #[test]
        fn prop_padded_byte_round_trip(bools in proptest::collection::vec(proptest::bool::ANY, 0..200)) {
            let v = BitVec::from_bools(&bools);
            let (bytes, len) = v.to_bytes_padded();
            proptest::prop_assert_eq!(BitVec::from_bytes_padded(&bytes, len), v);
        }

        #[test]
        fn prop_concat_slice_inverse(
            a in proptest::collection::vec(proptest::bool::ANY, 0..100),
            b in proptest::collection::vec(proptest::bool::ANY, 0..100),
        ) {
            let va = BitVec::from_bools(&a);
            let vb = BitVec::from_bools(&b);
            let cat = va.concat(&vb);
            proptest::prop_assert_eq!(cat.slice(0, va.len()), va.clone());
            proptest::prop_assert_eq!(cat.slice(va.len(), cat.len()), vb);
        }

        #[test]
        fn prop_find_agrees_with_string_search(
            hay in proptest::collection::vec(proptest::bool::ANY, 0..64),
            needle in proptest::collection::vec(proptest::bool::ANY, 1..8),
        ) {
            let h = BitVec::from_bools(&hay);
            let n = BitVec::from_bools(&needle);
            let hs: String = hay.iter().map(|&b| if b { '1' } else { '0' }).collect();
            let ns: String = needle.iter().map(|&b| if b { '1' } else { '0' }).collect();
            proptest::prop_assert_eq!(h.find(&n, 0), hs.find(&ns));
        }
    }
}
