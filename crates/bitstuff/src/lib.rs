//! # bitstuff — verified sublayered bit stuffing (paper §4.1)
//!
//! The paper's first verification experiment: HDLC-style framing decomposed
//! into two *nested sublayers within framing* —
//!
//! * a **stuffing sublayer** ([`stuff::Stuffer`]) that inserts/removes the
//!   stuff bit, and
//! * a **flag sublayer** ([`flags::Flagger`]) that adds/removes frame
//!   delimiters,
//!
//! composed by [`codec::FrameCodec`] so that the paper's specification
//! `Unstuff(RemoveFlags(AddFlags(Stuff(D)))) = D` holds for every `D`.
//!
//! In place of the paper's Coq proof this crate carries an **exact decision
//! procedure** ([`verify::check_rule`]) that proves or refutes each
//! `(flag, rule)` pairing by product-automaton reachability, a library
//! search ([`search::search`]) reproducing the paper's "66 alternate
//! stuffing rules" experiment, and an exact overhead analysis
//! ([`overhead::analyze`]) reproducing — and sharpening — the
//! "1 in 128 vs 1 in 32" comparison.
//!
//! The crate is dependency-free (the "extracted artifact" of the
//! development, like the paper's verified OCaml).

pub mod bits;
pub mod codec;
pub mod flags;
pub mod matcher;
pub mod overhead;
pub mod ratio;
pub mod rule;
pub mod search;
pub mod stuff;
pub mod verify;

pub use bits::{bits, BitVec};
pub use codec::{FrameCodec, FrameError};
pub use flags::{FlagError, Flagger};
pub use matcher::Matcher;
pub use overhead::{analyze, Overhead};
pub use ratio::Ratio;
pub use rule::{Flag, StuffRule};
pub use search::{search, SearchSpace, SearchStats, ValidRule};
pub use stuff::{StuffError, Stuffer};
pub use verify::{check_rule, Invalid, Verdict};
