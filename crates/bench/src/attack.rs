//! E14 — adversarial-peer robustness campaigns.
//!
//! A deterministic man-in-the-middle ([`netsim::Attacker`]) sits between a
//! legitimate client and server and forges RSTs/SYNs/data at a configured
//! sequence-guessing skill, replays frames, fuzzily mutates wire bytes and
//! mounts spoofed-source SYN floods. Each `(profile, stack, seed)` run
//! judges the RFC 5961-shaped invariants:
//!
//! * **liveness** — below the attacker's sequence-knowledge threshold the
//!   legitimate transfer still completes, with byte-exact integrity;
//! * **no spurious death** — a blind or merely in-window RST/SYN must not
//!   kill an established connection (in-window suspicion is answered with
//!   a challenge ACK instead);
//! * **bounded memory** — half-open connections never exceed
//!   `MAX_HALF_OPEN` and buffered bytes stay under the send/receive caps,
//!   so a flood degrades throughput, not memory;
//! * **honesty about the threshold** — an *exact*-sequence attacker (the
//!   oracle profile) is indistinguishable from the real peer, so there the
//!   connection is *expected* to die and the abort must be surfaced.
//!
//! Both stacks face the byte-identical attacker (same skill, same RNG
//! stream); only the [`netsim::AttackCodec`] differs, which is exactly the
//! like-for-like comparison experiment E14 reports.

use netsim::{
    AttackCodec, AttackConfig, Attacker, DetRng, Dur, LinkParams, SeqKnowledge, SimNet,
    SnoopInfo, StackNode, Time, TransportError,
};
use slmetrics::AttackCounters;
use sublayer_core::wire::{CmFlags, CmHeader, DmHeader, OsrHeader, Packet, RdHeader};
use sublayer_core::{CmState, KeepaliveConfig, SlConfig, SlTcpStack};
use tcp_mono::pcb::TcpState;
use tcp_mono::stack::{Keepalive, TcpStack};
use tcp_mono::wire::{Endpoint, Segment, ACK, RST, SYN};

use crate::{A, B};

/// Wall-clock (simulated) patience before declaring a run hung.
const PATIENCE: Dur = Dur(600_000_000_000);
/// Polling cadence of the application driver loop.
const STEP: Dur = Dur(250_000_000);
/// Bytes the legitimate flow transfers under attack.
const PAYLOAD_LEN: usize = 120_000;
/// Buffered-bytes ceiling per endpoint: the send-buffer cap plus receive
/// reassembly caps plus slack. Both stacks use a 1 MiB send cap and
/// ~64 KiB receive-side caps.
const MEM_BOUND: usize = (1 << 20) + (128 << 10);

fn t(ms: u64) -> Time {
    Time::ZERO + Dur::from_millis(ms)
}

// ---------------------------------------------------------------------------
// Codecs: per-stack wire knowledge for the protocol-agnostic attacker.
// ---------------------------------------------------------------------------

/// [`AttackCodec`] for the monolithic RFC 793 stack.
pub struct MonoCodec;

impl AttackCodec for MonoCodec {
    fn snoop(&self, frame: &[u8]) -> Option<SnoopInfo> {
        let seg = Segment::decode(frame).ok()?;
        Some(SnoopInfo {
            src_addr: seg.src.addr,
            src_port: seg.src.port,
            dst_addr: seg.dst.addr,
            dst_port: seg.dst.port,
            next_seq: seg.seq.wrapping_add(seg.seq_len()),
            syn: seg.syn(),
            rst: seg.rst(),
        })
    }

    fn forge_rst(&self, flow: &SnoopInfo, seq: u32) -> Vec<u8> {
        Segment {
            src: Endpoint::new(flow.src_addr, flow.src_port),
            dst: Endpoint::new(flow.dst_addr, flow.dst_port),
            seq,
            ack: 0,
            flags: RST,
            wnd: 0,
            mss: None,
            payload: Vec::new(),
        }
        .encode()
    }

    fn forge_syn(&self, flow: &SnoopInfo, isn: u32) -> Vec<u8> {
        Segment {
            src: Endpoint::new(flow.src_addr, flow.src_port),
            dst: Endpoint::new(flow.dst_addr, flow.dst_port),
            seq: isn,
            ack: 0,
            flags: SYN,
            wnd: u16::MAX,
            mss: Some(1400),
            payload: Vec::new(),
        }
        .encode()
    }

    fn forge_data(&self, flow: &SnoopInfo, seq: u32, payload: &[u8]) -> Vec<u8> {
        Segment {
            src: Endpoint::new(flow.src_addr, flow.src_port),
            dst: Endpoint::new(flow.dst_addr, flow.dst_port),
            seq,
            ack: 0,
            flags: ACK,
            wnd: u16::MAX,
            mss: None,
            payload: payload.to_vec(),
        }
        .encode()
    }

    fn forge_syn_to(
        &self,
        src_addr: u32,
        src_port: u16,
        dst_addr: u32,
        dst_port: u16,
        isn: u32,
    ) -> Vec<u8> {
        Segment {
            src: Endpoint::new(src_addr, src_port),
            dst: Endpoint::new(dst_addr, dst_port),
            seq: isn,
            ack: 0,
            flags: SYN,
            wnd: u16::MAX,
            mss: Some(1400),
            payload: Vec::new(),
        }
        .encode()
    }
}

/// [`AttackCodec`] for the sublayered native stack.
pub struct SubCodec;

impl SubCodec {
    fn base(src_addr: u32, src_port: u16, dst_addr: u32, dst_port: u16) -> Packet {
        Packet {
            src_addr,
            dst_addr,
            dm: DmHeader { src_port, dst_port },
            cm: CmHeader::default(),
            rd: RdHeader::default(),
            // An honest window so a forged (then discarded) header can
            // never zero-window-poison the victim's flow control.
            osr: OsrHeader { ecn_echo: false, rcv_wnd: u16::MAX },
            payload: Vec::new(),
        }
    }
}

impl AttackCodec for SubCodec {
    fn snoop(&self, frame: &[u8]) -> Option<SnoopInfo> {
        let pkt = Packet::decode(frame).ok()?;
        // A SYN's successor in the receiver's RD space is isn + 1; data
        // advances by its payload length.
        let next_seq = if pkt.cm.flags.syn {
            pkt.cm.isn.wrapping_add(1)
        } else {
            pkt.rd.seq.wrapping_add(pkt.payload.len() as u32)
        };
        Some(SnoopInfo {
            src_addr: pkt.src_addr,
            src_port: pkt.dm.src_port,
            dst_addr: pkt.dst_addr,
            dst_port: pkt.dm.dst_port,
            next_seq,
            syn: pkt.cm.flags.syn,
            rst: pkt.cm.flags.rst,
        })
    }

    fn forge_rst(&self, flow: &SnoopInfo, seq: u32) -> Vec<u8> {
        let mut p = SubCodec::base(flow.src_addr, flow.src_port, flow.dst_addr, flow.dst_port);
        p.cm.flags = CmFlags { rst: true, ..CmFlags::default() };
        p.rd.seq = seq;
        p.encode()
    }

    fn forge_syn(&self, flow: &SnoopInfo, isn: u32) -> Vec<u8> {
        let mut p = SubCodec::base(flow.src_addr, flow.src_port, flow.dst_addr, flow.dst_port);
        p.cm.flags = CmFlags { syn: true, ..CmFlags::default() };
        p.cm.isn = isn;
        p.encode()
    }

    fn forge_data(&self, flow: &SnoopInfo, seq: u32, payload: &[u8]) -> Vec<u8> {
        let mut p = SubCodec::base(flow.src_addr, flow.src_port, flow.dst_addr, flow.dst_port);
        p.rd.seq = seq;
        p.payload = payload.to_vec();
        p.encode()
    }

    fn forge_syn_to(
        &self,
        src_addr: u32,
        src_port: u16,
        dst_addr: u32,
        dst_port: u16,
        isn: u32,
    ) -> Vec<u8> {
        let mut p = SubCodec::base(src_addr, src_port, dst_addr, dst_port);
        p.cm.flags = CmFlags { syn: true, ..CmFlags::default() };
        p.cm.isn = isn;
        p.encode()
    }
}

// ---------------------------------------------------------------------------
// Profiles
// ---------------------------------------------------------------------------

/// One adversarial scenario (what the attacker does, and at what skill).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum AttackProfile {
    /// Honest bridge — sanity reference; nothing is forged.
    Baseline,
    /// Blind RST injection: random 32-bit sequences, mostly out of window.
    BlindRst,
    /// In-window RST injection: the classic blind-guessing attacker that
    /// RFC 5961's challenge ACK exists for.
    InWindowRst,
    /// Oracle RST: exact next-sequence knowledge. Defenses are *expected*
    /// to fail — this profile proves the harness isn't rigged.
    OracleRst,
    /// Stray SYNs injected into the established flow.
    SynInject,
    /// Blind data injection: random payloads at random sequences.
    DataInject,
    /// Spoofed-source SYN flood against the listener.
    SynFlood,
    /// Verbatim duplicate replay of legitimate frames.
    Replay,
    /// Fuzzy mutation: a forwarded frame has one bit flipped, checksum
    /// not re-sealed — a decoder-robustness probe.
    Mutate,
}

impl AttackProfile {
    pub fn all() -> [AttackProfile; 9] {
        [
            AttackProfile::Baseline,
            AttackProfile::BlindRst,
            AttackProfile::InWindowRst,
            AttackProfile::OracleRst,
            AttackProfile::SynInject,
            AttackProfile::DataInject,
            AttackProfile::SynFlood,
            AttackProfile::Replay,
            AttackProfile::Mutate,
        ]
    }

    pub fn name(&self) -> &'static str {
        match self {
            AttackProfile::Baseline => "baseline",
            AttackProfile::BlindRst => "blind_rst",
            AttackProfile::InWindowRst => "inwindow_rst",
            AttackProfile::OracleRst => "oracle_rst",
            AttackProfile::SynInject => "syn_inject",
            AttackProfile::DataInject => "data_inject",
            AttackProfile::SynFlood => "syn_flood",
            AttackProfile::Replay => "replay",
            AttackProfile::Mutate => "mutate",
        }
    }

    /// The attacker's schedule and skill for this profile.
    pub fn attack_config(&self) -> AttackConfig {
        let mut cfg = AttackConfig::default();
        match self {
            AttackProfile::Baseline => {}
            AttackProfile::BlindRst => cfg.rst_rate = 0.25,
            AttackProfile::InWindowRst => {
                cfg.knowledge = SeqKnowledge::InWindow;
                cfg.rst_rate = 0.25;
            }
            AttackProfile::OracleRst => {
                cfg.knowledge = SeqKnowledge::Exact;
                cfg.rst_rate = 0.25;
                // Let the legitimate connection establish first, so the
                // kill demonstrably lands on an *established* flow.
                cfg.start = t(500);
            }
            AttackProfile::SynInject => cfg.syn_rate = 0.25,
            AttackProfile::DataInject => cfg.data_rate = 0.25,
            AttackProfile::SynFlood => {
                cfg.flood_syns = 8;
                cfg.flood_interval = Dur::from_millis(50);
                cfg.stop = Some(t(60_000));
            }
            AttackProfile::Replay => cfg.replay_rate = 0.3,
            AttackProfile::Mutate => cfg.mutate_rate = 0.08,
        }
        cfg
    }

    /// Is the attacker above the sequence-knowledge threshold, i.e. is
    /// connection death the *expected* outcome?
    pub fn expect_reset(&self) -> bool {
        matches!(self, AttackProfile::OracleRst)
    }

    /// Must the defense visibly engage (challenge ACKs observed)?
    pub fn require_challenges(&self) -> bool {
        matches!(self, AttackProfile::InWindowRst | AttackProfile::SynInject)
    }

    /// Must the flood fallback visibly engage (cookies or evictions)?
    pub fn require_flood_fallback(&self) -> bool {
        matches!(self, AttackProfile::SynFlood)
    }

    /// Must the hardened decoder visibly engage (bad frames rejected)?
    pub fn require_bad_frames(&self) -> bool {
        matches!(self, AttackProfile::Mutate)
    }
}

/// Which transport a campaign exercises.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum AttackStack {
    Mono,
    Sub,
}

impl AttackStack {
    pub fn all() -> [AttackStack; 2] {
        [AttackStack::Mono, AttackStack::Sub]
    }

    pub fn name(&self) -> &'static str {
        match self {
            AttackStack::Mono => "mono",
            AttackStack::Sub => "sub",
        }
    }
}

// ---------------------------------------------------------------------------
// Outcome + judging
// ---------------------------------------------------------------------------

/// One campaign's result plus any invariant violations.
#[derive(Clone, Debug)]
pub struct AttackOutcome {
    pub profile: &'static str,
    pub stack: &'static str,
    pub seed: u64,
    pub payload: usize,
    pub delivered: usize,
    pub complete: bool,
    pub client_error: Option<TransportError>,
    pub server_error: Option<TransportError>,
    pub sim_ms: u64,
    pub wire_frames: u64,
    /// Peak simultaneous half-open connections observed on the server.
    pub max_half_open: usize,
    /// Peak buffered bytes observed on either endpoint.
    pub max_buffered: usize,
    pub counters: AttackCounters,
    pub violations: Vec<String>,
}

impl AttackOutcome {
    pub fn ok(&self) -> bool {
        self.violations.is_empty()
    }
}

/// Invariants every run must satisfy, plus the profile's expectations.
fn judge(profile: AttackProfile, mut out: AttackOutcome, got: &[u8], payload: &[u8]) -> AttackOutcome {
    // Integrity: whatever was delivered is a prefix of what was sent.
    if got != &payload[..got.len().min(payload.len())] || got.len() > payload.len() {
        out.violations.push("integrity: delivered bytes differ".into());
    }
    // Bounded memory, always.
    if out.max_buffered > MEM_BOUND {
        out.violations.push(format!(
            "memory: {} buffered bytes > bound {}",
            out.max_buffered, MEM_BOUND
        ));
    }
    if out.max_half_open > tcp_mono::stack::MAX_HALF_OPEN {
        out.violations.push(format!(
            "half-open queue grew to {} > {}",
            out.max_half_open,
            tcp_mono::stack::MAX_HALF_OPEN
        ));
    }
    if profile.expect_reset() {
        // Above the knowledge threshold: the kill must land and surface.
        if out.complete {
            out.violations.push("oracle attacker failed to kill the flow".into());
        }
        if out.client_error.is_none() && out.server_error.is_none() {
            out.violations.push("reset not surfaced to either application".into());
        }
    } else {
        // Below the threshold: liveness — the legitimate flow completes
        // and nobody died spuriously.
        if !out.complete {
            out.violations.push(format!(
                "expected delivery, got {}/{} (client={:?} server={:?})",
                out.delivered, out.payload, out.client_error, out.server_error
            ));
        }
        if out.client_error.is_some() || out.server_error.is_some() {
            out.violations.push(format!(
                "spurious connection death: client={:?} server={:?}",
                out.client_error, out.server_error
            ));
        }
    }
    if profile.require_challenges() && out.counters.challenge_acks == 0 {
        out.violations.push("defense silent: no challenge ACKs issued".into());
    }
    if profile.require_flood_fallback()
        && out.counters.syn_cookies_sent == 0
        && out.counters.half_open_evictions == 0
    {
        out.violations.push("flood fallback silent: no cookies or evictions".into());
    }
    if profile.require_bad_frames() && out.counters.bad_frames_rejected == 0 {
        out.violations.push("decoder silent: no mutated frames rejected".into());
    }
    out
}

// ---------------------------------------------------------------------------
// Runners
// ---------------------------------------------------------------------------

fn keepalive_mono() -> Keepalive {
    Keepalive {
        idle: Dur::from_secs(10),
        interval: Dur::from_secs(2),
        max_probes: 5,
    }
}

fn keepalive_sub() -> KeepaliveConfig {
    KeepaliveConfig {
        idle: Dur::from_secs(10),
        interval: Dur::from_secs(2),
        max_probes: 5,
    }
}

fn link() -> LinkParams {
    LinkParams::delay_only(Dur::from_millis(5))
}

/// Run one `(profile, stack, seed)` campaign and judge its invariants.
pub fn run_campaign(profile: AttackProfile, stack: AttackStack, seed: u64) -> AttackOutcome {
    let payload: Vec<u8> = (0..PAYLOAD_LEN).map(|i| (i % 251) as u8).collect();
    match stack {
        AttackStack::Mono => run_mono(profile, seed, &payload),
        AttackStack::Sub => run_sub(profile, seed, &payload),
    }
}

fn run_mono(profile: AttackProfile, seed: u64, payload: &[u8]) -> AttackOutcome {
    let mut c = TcpStack::new(A, slmetrics::shared());
    let mut s = TcpStack::new(B, slmetrics::shared());
    c.set_keepalive(keepalive_mono());
    s.set_keepalive(keepalive_mono());
    s.listen(80);
    let conn = c.connect(Time::ZERO, 5000, Endpoint::new(B, 80));

    let mut net = SimNet::new(seed);
    let nc = net.add_node(Box::new(StackNode::new(c)));
    let na = net.add_node(Box::new(Attacker::new(
        Box::new(MonoCodec),
        profile.attack_config(),
        DetRng::new(seed ^ 0xA77A_C4E5),
    )));
    let ns = net.add_node(Box::new(StackNode::new(s)));
    net.connect(nc, 0, na, 0, link());
    net.connect(na, 1, ns, 0, link());

    net.poll_all();
    net.run_until(t(1_000));
    let mut sent = net.node_mut::<StackNode<TcpStack>>(nc).stack.send(conn, payload);
    net.poll_all();

    let deadline = net.now() + PATIENCE;
    let mut got: Vec<u8> = Vec::new();
    let mut sconn = None;
    let mut max_half_open = 0usize;
    let mut max_buffered = 0usize;
    while net.now() < deadline {
        let step = net.now() + STEP;
        net.run_until(step);
        if sent < payload.len() {
            sent += net
                .node_mut::<StackNode<TcpStack>>(nc)
                .stack
                .send(conn, &payload[sent..]);
        }
        {
            let st = &mut net.node_mut::<StackNode<TcpStack>>(ns).stack;
            if sconn.is_none() {
                sconn = st.established().first().copied();
            }
            if let Some(t) = sconn {
                got.extend(st.recv(t));
            }
            max_half_open = max_half_open.max(st.half_open_count());
            max_buffered = max_buffered.max(st.buffered_bytes());
        }
        max_buffered =
            max_buffered.max(net.node::<StackNode<TcpStack>>(nc).stack.buffered_bytes());
        net.poll_all();
        if got.len() >= payload.len() {
            break;
        }
        let client_dead = net.node::<StackNode<TcpStack>>(nc).stack.state(conn) == TcpState::Closed;
        // No established server connection left (it may have been reset and
        // reaped before we ever saw it) counts as a dead server side.
        let server_dead = match sconn {
            Some(t) => net.node::<StackNode<TcpStack>>(ns).stack.state(t) == TcpState::Closed,
            None => net.node::<StackNode<TcpStack>>(ns).stack.established().is_empty(),
        };
        if client_dead && server_dead {
            break;
        }
    }

    let sim_ms = net.now().since(Time::ZERO).0 / 1_000_000;
    let complete = got.len() >= payload.len();
    if !complete {
        net.run_until(net.now() + Dur::from_secs(120));
    }
    let d0 = net.link_dir_stats(0, 0);
    let d1 = net.link_dir_stats(0, 1);
    let e0 = net.link_dir_stats(1, 0);
    let e1 = net.link_dir_stats(1, 1);
    let wire_frames = d0.tx_frames + d1.tx_frames + e0.tx_frames + e1.tx_frames;
    let client_error = net.node::<StackNode<TcpStack>>(nc).stack.conn_error(conn);
    let server_error = sconn.and_then(|t| net.node::<StackNode<TcpStack>>(ns).stack.conn_error(t));

    let atk = net.node::<Attacker>(na).stats;
    let cs = net.node::<StackNode<TcpStack>>(nc).stack.stats.clone();
    let ss = net.node::<StackNode<TcpStack>>(ns).stack.stats.clone();
    let counters = AttackCounters {
        forged_segments: atk.forged_total(),
        challenge_acks: cs.challenge_acks + ss.challenge_acks,
        syn_cookies_sent: cs.syn_cookies_sent + ss.syn_cookies_sent,
        syn_cookies_validated: cs.syn_cookies_validated + ss.syn_cookies_validated,
        half_open_evictions: cs.half_open_evictions + ss.half_open_evictions,
        bad_frames_rejected: cs.bad_segments + ss.bad_segments,
        overflow_drops: cs.ooo_overflow_drops + ss.ooo_overflow_drops,
        invalid_seq_drops: cs.old_ack_drops + ss.old_ack_drops,
    };

    let out = AttackOutcome {
        profile: profile.name(),
        stack: AttackStack::Mono.name(),
        seed,
        payload: payload.len(),
        delivered: got.len(),
        complete,
        client_error,
        server_error,
        sim_ms,
        wire_frames,
        max_half_open,
        max_buffered,
        counters,
        violations: Vec::new(),
    };
    judge(profile, out, &got, payload)
}

fn run_sub(profile: AttackProfile, seed: u64, payload: &[u8]) -> AttackOutcome {
    let cfg = SlConfig {
        keepalive: Some(keepalive_sub()),
        ..SlConfig::default()
    };
    let mut c = SlTcpStack::new(A, cfg.clone(), slmetrics::shared());
    let mut s = SlTcpStack::new(B, cfg, slmetrics::shared());
    s.listen(80);
    let conn = c.connect(Time::ZERO, 5000, Endpoint::new(B, 80));

    let mut net = SimNet::new(seed);
    let nc = net.add_node(Box::new(StackNode::new(c)));
    let na = net.add_node(Box::new(Attacker::new(
        Box::new(SubCodec),
        profile.attack_config(),
        DetRng::new(seed ^ 0xA77A_C4E5),
    )));
    let ns = net.add_node(Box::new(StackNode::new(s)));
    net.connect(nc, 0, na, 0, link());
    net.connect(na, 1, ns, 0, link());

    net.poll_all();
    net.run_until(t(1_000));
    let mut sent = net.node_mut::<StackNode<SlTcpStack>>(nc).stack.send(conn, payload);
    net.poll_all();

    let deadline = net.now() + PATIENCE;
    let mut got: Vec<u8> = Vec::new();
    let mut sconn = None;
    let mut max_half_open = 0usize;
    let mut max_buffered = 0usize;
    while net.now() < deadline {
        let step = net.now() + STEP;
        net.run_until(step);
        if sent < payload.len() {
            sent += net
                .node_mut::<StackNode<SlTcpStack>>(nc)
                .stack
                .send(conn, &payload[sent..]);
        }
        {
            let st = &mut net.node_mut::<StackNode<SlTcpStack>>(ns).stack;
            if sconn.is_none() {
                sconn = st.established().first().copied();
            }
            if let Some(id) = sconn {
                got.extend(st.recv(id));
            }
            max_half_open = max_half_open.max(st.half_open_count());
            max_buffered = max_buffered.max(st.buffered_bytes());
        }
        max_buffered =
            max_buffered.max(net.node::<StackNode<SlTcpStack>>(nc).stack.buffered_bytes());
        net.poll_all();
        if got.len() >= payload.len() {
            break;
        }
        let client_dead =
            net.node::<StackNode<SlTcpStack>>(nc).stack.state(conn) == CmState::Closed;
        // As in the mono runner: a reset-and-reaped server conn counts too.
        let server_dead = match sconn {
            Some(id) => net.node::<StackNode<SlTcpStack>>(ns).stack.state(id) == CmState::Closed,
            None => net.node::<StackNode<SlTcpStack>>(ns).stack.established().is_empty(),
        };
        if client_dead && server_dead {
            break;
        }
    }

    let sim_ms = net.now().since(Time::ZERO).0 / 1_000_000;
    let complete = got.len() >= payload.len();
    if !complete {
        net.run_until(net.now() + Dur::from_secs(120));
    }
    let d0 = net.link_dir_stats(0, 0);
    let d1 = net.link_dir_stats(0, 1);
    let e0 = net.link_dir_stats(1, 0);
    let e1 = net.link_dir_stats(1, 1);
    let wire_frames = d0.tx_frames + d1.tx_frames + e0.tx_frames + e1.tx_frames;
    let client_error = net.node::<StackNode<SlTcpStack>>(nc).stack.conn_error(conn);
    let server_error =
        sconn.and_then(|id| net.node::<StackNode<SlTcpStack>>(ns).stack.conn_error(id));

    let atk = net.node::<Attacker>(na).stats;
    // Receive-cap drops live in per-connection RD stats; read them before
    // the stacks are dropped.
    let (ooo_drops, seq_drops) = {
        let sc = &net.node::<StackNode<SlTcpStack>>(nc).stack;
        let ss = &net.node::<StackNode<SlTcpStack>>(ns).stack;
        let crd = sc.rd_stats(conn).unwrap_or_default();
        let srd = sconn.and_then(|id| ss.rd_stats(id)).unwrap_or_default();
        (crd.ooo_range_drops + srd.ooo_range_drops,
         crd.invalid_seq_drops + srd.invalid_seq_drops)
    };
    let cs = net.node::<StackNode<SlTcpStack>>(nc).stack.stats.clone();
    let c_challenges = net.node::<StackNode<SlTcpStack>>(nc).stack.challenge_acks();
    let s_challenges = net.node::<StackNode<SlTcpStack>>(ns).stack.challenge_acks();
    let ss = net.node::<StackNode<SlTcpStack>>(ns).stack.stats.clone();
    let counters = AttackCounters {
        forged_segments: atk.forged_total(),
        challenge_acks: c_challenges + s_challenges,
        syn_cookies_sent: cs.syn_cookies_sent + ss.syn_cookies_sent,
        syn_cookies_validated: cs.syn_cookies_validated + ss.syn_cookies_validated,
        half_open_evictions: cs.half_open_evictions + ss.half_open_evictions,
        bad_frames_rejected: cs.bad_packets + ss.bad_packets,
        overflow_drops: ooo_drops,
        invalid_seq_drops: seq_drops,
    };

    let out = AttackOutcome {
        profile: profile.name(),
        stack: AttackStack::Sub.name(),
        seed,
        payload: payload.len(),
        delivered: got.len(),
        complete,
        client_error,
        server_error,
        sim_ms,
        wire_frames,
        max_half_open,
        max_buffered,
        counters,
        violations: Vec::new(),
    };
    judge(profile, out, &got, payload)
}

// ---------------------------------------------------------------------------
// JSON + sweep
// ---------------------------------------------------------------------------

fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

fn json_err(e: Option<TransportError>) -> String {
    match e {
        None => "null".into(),
        Some(e) => json_str(&format!("{e:?}")),
    }
}

/// Deterministic, hand-rolled JSON for one outcome (stable field order,
/// integers only — byte-identical for identical seeds).
pub fn outcome_json(o: &AttackOutcome) -> String {
    let viol: Vec<String> = o.violations.iter().map(|v| json_str(v)).collect();
    let c = &o.counters;
    format!(
        "{{\"profile\":{},\"stack\":{},\"seed\":{},\"payload\":{},\"delivered\":{},\
         \"complete\":{},\"client_error\":{},\"server_error\":{},\"sim_ms\":{},\
         \"wire_frames\":{},\"max_half_open\":{},\"max_buffered\":{},\
         \"forged_segments\":{},\"challenge_acks\":{},\"syn_cookies_sent\":{},\
         \"syn_cookies_validated\":{},\"half_open_evictions\":{},\
         \"bad_frames_rejected\":{},\"overflow_drops\":{},\"invalid_seq_drops\":{},\"violations\":[{}]}}",
        json_str(o.profile),
        json_str(o.stack),
        o.seed,
        o.payload,
        o.delivered,
        o.complete,
        json_err(o.client_error),
        json_err(o.server_error),
        o.sim_ms,
        o.wire_frames,
        o.max_half_open,
        o.max_buffered,
        c.forged_segments,
        c.challenge_acks,
        c.syn_cookies_sent,
        c.syn_cookies_validated,
        c.half_open_evictions,
        c.bad_frames_rejected,
        c.overflow_drops,
        c.invalid_seq_drops,
        viol.join(",")
    )
}

/// The whole sweep as one JSON document.
pub fn summary_json(outs: &[AttackOutcome]) -> String {
    let rows: Vec<String> = outs.iter().map(outcome_json).collect();
    let violations: usize = outs.iter().map(|o| o.violations.len()).sum();
    format!(
        "{{\"campaigns\":[\n  {}\n],\"total\":{},\"violations\":{}}}",
        rows.join(",\n  "),
        outs.len(),
        violations
    )
}

/// Run `profiles x stacks x seeds` and return every outcome in a fixed
/// order (profile-major, then stack, then seed).
pub fn run_sweep(
    profiles: &[AttackProfile],
    stacks: &[AttackStack],
    seeds: &[u64],
) -> Vec<AttackOutcome> {
    let mut outs = Vec::new();
    for &p in profiles {
        for &s in stacks {
            for &seed in seeds {
                outs.push(run_campaign(p, s, seed));
            }
        }
    }
    outs
}
