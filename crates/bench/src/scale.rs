//! E15 — the many-client scale benchmark for the `slhost` server host.
//!
//! One [`ServedHost`] + [`EchoApp`] hub serves N clients in a
//! [`netsim::star`] topology. Each client connects at a staggered time,
//! sends one ~256 B request, verifies the echo byte-for-byte, then
//! **lingers** idle for 10 s before closing. Keepalive (idle 5 s) runs on
//! both sides, so during the linger phase every established connection
//! holds a standing timer — the regime where the hierarchical timer
//! wheel's O(fired)-per-tick cost separates from the naive
//! scan-every-connection baseline.
//!
//! Per-run invariants (any failure is a violation, reported and fatal to
//! the experiment binary): every client completes with an intact echo,
//! no client sees a transport error, the host accepts exactly N
//! connections with zero refusals, and the host table drains to empty
//! after the clients close.

use netsim::{
    LinkParams, MultiStackNode, Stack, StackNode, Time, TransportError,
};
use slhost::{EchoApp, Host, HostConfig, HostStack, ServedHost, TimerMode};
use sublayer_core::{KeepaliveConfig, SlConfig, SlTcpStack};
use tcp_mono::stack::{Keepalive, TcpStack};
use tcp_mono::wire::Endpoint;

/// Server address (clients start above [`CLIENT_BASE`]).
const SERVER_ADDR: u32 = crate::A;
const CLIENT_BASE: u32 = 0x0A01_0000;
const PORT: u16 = 80;
const CLIENT_PORT: u16 = 5000;
/// Request payload length per client.
const REQ_LEN: usize = 256;
/// Gap between successive client connect times.
const STAGGER_NS: u64 = 200_000;
/// Idle hold after the echo completes, before the client closes — the
/// many-idle-connections phase the timer comparison measures.
const LINGER_NS: u64 = 10_000_000_000;
/// Keepalive on both sides: every established connection keeps a timer
/// armed for the whole linger phase.
const KA_IDLE_NS: u64 = 5_000_000_000;
const KA_INTERVAL_NS: u64 = 1_000_000_000;
const KA_MAX_PROBES: u32 = 5;

fn dur(ns: u64) -> netsim::Dur {
    netsim::Dur::from_nanos(ns)
}

/// Which transport serves (and runs in) every node of a run.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ScaleStack {
    Sub,
    Mono,
}

impl ScaleStack {
    pub fn label(self) -> &'static str {
        match self {
            ScaleStack::Sub => "sub",
            ScaleStack::Mono => "mono",
        }
    }
}

fn timer_label(mode: TimerMode) -> &'static str {
    match mode {
        TimerMode::Wheel => "wheel",
        TimerMode::NaiveScan => "naive",
    }
}

/// One cell of the sweep.
#[derive(Clone, Copy, Debug)]
pub struct ScaleParams {
    pub stack: ScaleStack,
    pub timer_mode: TimerMode,
    pub n: usize,
    pub seed: u64,
}

/// Everything one run exposes: workload results, host counters, and the
/// invariant violations (empty = clean).
#[derive(Clone, Debug)]
pub struct ScaleOutcome {
    pub stack: &'static str,
    pub timer: &'static str,
    pub n: usize,
    pub seed: u64,
    /// Clients whose echo came back complete and intact.
    pub completed: usize,
    pub corrupt: usize,
    pub client_errors: usize,
    pub first_error: Option<TransportError>,
    pub accepts: u64,
    pub accept_refusals: u64,
    /// Completed connections per wall-second of the connect..finish window.
    pub conns_per_sec: u64,
    /// Connect-to-echo-complete latency percentiles, microseconds.
    pub p50_us: u64,
    pub p99_us: u64,
    /// Connect-to-established (accept) latency percentiles, microseconds
    /// — p99, not a mean, so accept-queue stalls at scale are visible.
    pub accept_p50_us: u64,
    pub accept_p99_us: u64,
    /// `HostCounters::bytes_per_conn` sampled mid-linger (all N
    /// connections open): buffered bytes per open connection.
    pub bytes_per_conn: u64,
    /// `HostCounters::shard_occupancy` at the same sample: open
    /// connections as % of table capacity.
    pub shard_occupancy: u64,
    pub ticks: u64,
    pub timer_fires: u64,
    pub timer_touches: u64,
    /// `timer_touches * 100 / ticks` — the wheel-vs-naive figure of merit,
    /// fixed-point so the JSON stays integers-only.
    pub work_per_tick_x100: u64,
    pub frames_in: u64,
    pub frames_out: u64,
    pub events: u64,
    pub echoed_bytes: u64,
    /// Server-side inter-sublayer boundary crossings (0 for the
    /// monolithic stack, which has none) — the crossing-overhead figure
    /// at scale.
    pub crossings: u64,
    /// Host-tracked connections still present at the horizon (leak check).
    pub server_residual: usize,
    pub sim_ms: u64,
    pub violations: Vec<String>,
}

/// Client phases; time-driven transitions happen in `drive`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum Phase {
    /// Waiting for its staggered connect time.
    Idle,
    Connecting,
    /// Request sent; collecting the echo.
    Await,
    /// Echo verified; holding the connection open, keepalive ticking.
    Linger,
    /// FIN sent; waiting out the close handshake.
    Closing,
    Done,
    Failed,
}

/// One scripted client: connect → request → verify echo → linger → close.
/// Generic over the same [`HostStack`] surface the host uses, so the whole
/// experiment is stack-agnostic by construction.
pub struct ScaleClient<S: HostStack> {
    stack: S,
    server: Endpoint,
    req: Vec<u8>,
    phase: Phase,
    conn: Option<S::ConnId>,
    /// Echo bytes verified so far.
    got: usize,
    connect_at: Time,
    linger_until: Time,
    pub connected_at: Option<Time>,
    /// When the handshake completed (accept latency's far edge).
    pub established_at: Option<Time>,
    pub done_at: Option<Time>,
    pub error: Option<TransportError>,
    pub corrupt: bool,
}

impl<S: HostStack> ScaleClient<S> {
    fn new(stack: S, server: Endpoint, connect_at: Time, req: Vec<u8>) -> Self {
        ScaleClient {
            stack,
            server,
            req,
            phase: Phase::Idle,
            conn: None,
            got: 0,
            connect_at,
            linger_until: Time::MAX,
            connected_at: None,
            established_at: None,
            done_at: None,
            error: None,
            corrupt: false,
        }
    }

    fn drive(&mut self, now: Time) {
        if let (Some(id), None) = (self.conn, self.error) {
            if let Some(e) = self.stack.conn_error(id) {
                self.error = Some(e);
                self.phase = Phase::Failed;
            }
        }
        loop {
            match self.phase {
                Phase::Idle => {
                    if now < self.connect_at {
                        return;
                    }
                    match self.stack.try_connect(now, CLIENT_PORT, self.server) {
                        Ok(id) => {
                            self.conn = Some(id);
                            self.connected_at = Some(now);
                            self.phase = Phase::Connecting;
                        }
                        Err(e) => {
                            self.error = Some(e);
                            self.phase = Phase::Failed;
                        }
                    }
                }
                Phase::Connecting => {
                    let id = self.conn.expect("connected past Idle");
                    if !self.stack.is_established(id) {
                        return;
                    }
                    self.established_at = Some(now);
                    self.stack.send(id, &self.req);
                    self.phase = Phase::Await;
                }
                Phase::Await => {
                    let id = self.conn.expect("connected past Idle");
                    let data = self.stack.recv(id);
                    for &b in &data {
                        if self.got >= self.req.len() || b != self.req[self.got] {
                            self.corrupt = true;
                        }
                        self.got += 1;
                    }
                    if self.got < self.req.len() {
                        return;
                    }
                    self.done_at = Some(now);
                    self.linger_until = Time(now.nanos() + LINGER_NS);
                    self.phase = Phase::Linger;
                }
                Phase::Linger => {
                    if now < self.linger_until {
                        return;
                    }
                    let id = self.conn.expect("connected past Idle");
                    self.stack.close(id);
                    self.phase = Phase::Closing;
                }
                Phase::Closing => {
                    let id = self.conn.expect("connected past Idle");
                    if !self.stack.is_closed(id) {
                        return;
                    }
                    self.phase = Phase::Done;
                }
                Phase::Done | Phase::Failed => return,
            }
        }
    }
}

impl<S: HostStack> Stack for ScaleClient<S> {
    fn on_frame(&mut self, now: Time, frame: &[u8]) {
        Stack::on_frame(&mut self.stack, now, frame);
        self.drive(now);
    }

    fn poll_transmit(&mut self, now: Time) -> Option<Vec<u8>> {
        Stack::poll_transmit(&mut self.stack, now)
    }

    fn poll_deadline(&self, now: Time) -> Option<Time> {
        let own = match self.phase {
            Phase::Idle => Some(self.connect_at),
            Phase::Linger => Some(self.linger_until),
            _ => None,
        };
        [own, Stack::poll_deadline(&self.stack, now)].into_iter().flatten().min()
    }

    fn on_tick(&mut self, now: Time) {
        Stack::on_tick(&mut self.stack, now);
        self.drive(now);
    }
}

/// Deterministic per-client request payload.
fn request(i: usize) -> Vec<u8> {
    (0..REQ_LEN).map(|j| ((i * 31 + j) % 251) as u8).collect()
}

/// Run one cell of the sweep.
pub fn run_one(p: ScaleParams) -> ScaleOutcome {
    match p.stack {
        ScaleStack::Sub => run_generic(p, |addr| {
            let cfg = SlConfig {
                keepalive: Some(KeepaliveConfig {
                    idle: dur(KA_IDLE_NS),
                    interval: dur(KA_INTERVAL_NS),
                    max_probes: KA_MAX_PROBES,
                }),
                ..SlConfig::default()
            };
            SlTcpStack::new(addr, cfg, slmetrics::shared())
        }),
        ScaleStack::Mono => run_generic(p, |addr| {
            let mut s = TcpStack::new(addr, slmetrics::shared());
            s.set_keepalive(Keepalive {
                idle: dur(KA_IDLE_NS),
                interval: dur(KA_INTERVAL_NS),
                max_probes: KA_MAX_PROBES,
            });
            s
        }),
    }
}

fn run_generic<S: HostStack>(p: ScaleParams, mk: impl Fn(u32) -> S) -> ScaleOutcome {
    let cfg = HostConfig {
        listen_port: PORT,
        backlog: 256,
        batch_window: dur(50_000),
        timer_mode: p.timer_mode,
        ..HostConfig::default()
    };
    let server = ServedHost::new(Host::new(mk(SERVER_ADDR), cfg), EchoApp::default());
    let clients: Vec<ScaleClient<S>> = (0..p.n)
        .map(|i| {
            ScaleClient::new(
                mk(CLIENT_BASE + i as u32),
                Endpoint::new(SERVER_ADDR, PORT),
                Time(1_000_000 + STAGGER_NS * i as u64),
                request(i),
            )
        })
        .collect();

    let (mut net, sid, cids) = netsim::star(
        p.seed,
        server,
        clients,
        LinkParams::delay_only(dur(1_000_000)),
    );
    net.poll_all();
    // Last connect + generous handshake/echo slack + linger + close settle.
    // The settle must outlast the sublayered stack's 10 s TIME_WAIT: its CM
    // holds *both* closers there, so server-side conns are reaped only
    // after it expires (mono releases the passive closer immediately).
    let horizon = Time(
        1_000_000 + STAGGER_NS * p.n as u64 + 2_000_000_000 + LINGER_NS + 12_000_000_000,
    );
    // Mid-linger: every client has echoed but none has closed — sample
    // the occupancy gauges with all N connections open.
    let mid = Time(1_000_000 + STAGGER_NS * p.n as u64 + 2_000_000_000 + LINGER_NS / 2);
    net.run_until(mid);
    net.node_mut::<MultiStackNode<ServedHost<S, EchoApp>>>(sid)
        .stack
        .host
        .sample_gauges();
    net.run_until(horizon);

    let mut completed = 0usize;
    let mut corrupt = 0usize;
    let mut client_errors = 0usize;
    let mut first_error: Option<TransportError> = None;
    let mut starved: Vec<usize> = Vec::new();
    let mut lat_us: Vec<u64> = Vec::new();
    let mut accept_us: Vec<u64> = Vec::new();
    let mut first_connect = u64::MAX;
    let mut last_done = 0u64;
    for (i, &cid) in cids.iter().enumerate() {
        let c = &net.node::<StackNode<ScaleClient<S>>>(cid).stack;
        if c.corrupt {
            corrupt += 1;
        }
        if let Some(e) = c.error {
            client_errors += 1;
            first_error.get_or_insert(e);
        }
        if let (Some(t0), Some(te)) = (c.connected_at, c.established_at) {
            accept_us.push(te.nanos().saturating_sub(t0.nanos()) / 1_000);
        }
        match (c.connected_at, c.done_at) {
            (Some(t0), Some(t1)) if !c.corrupt => {
                completed += 1;
                lat_us.push(t1.nanos().saturating_sub(t0.nanos()) / 1_000);
                first_connect = first_connect.min(t0.nanos());
                last_done = last_done.max(t1.nanos());
            }
            _ => starved.push(i),
        }
    }
    lat_us.sort_unstable();
    accept_us.sort_unstable();
    let pct = |q: u64| crate::percentile(&lat_us, q);
    let window = last_done.saturating_sub(first_connect);
    let conns_per_sec =
        (completed as u64 * 1_000_000_000).checked_div(window).unwrap_or(0);

    let srv = &net.node::<MultiStackNode<ServedHost<S, EchoApp>>>(sid).stack;
    let k = &srv.host.counters;
    let mut out = ScaleOutcome {
        stack: p.stack.label(),
        timer: timer_label(p.timer_mode),
        n: p.n,
        seed: p.seed,
        completed,
        corrupt,
        client_errors,
        first_error,
        accepts: k.accepts,
        accept_refusals: k.accept_refusals,
        conns_per_sec,
        p50_us: pct(50),
        p99_us: pct(99),
        accept_p50_us: crate::percentile(&accept_us, 50),
        accept_p99_us: crate::percentile(&accept_us, 99),
        bytes_per_conn: k.bytes_per_conn,
        shard_occupancy: k.shard_occupancy,
        ticks: k.ticks,
        timer_fires: k.timer_fires,
        timer_touches: k.timer_touches,
        work_per_tick_x100: (k.timer_touches * 100).checked_div(k.ticks).unwrap_or(0),
        frames_in: k.frames_in,
        frames_out: k.frames_out,
        events: k.events_dispatched,
        echoed_bytes: srv.app.echoed,
        crossings: srv.host.stack().crossing_events().unwrap_or(0),
        server_residual: srv.host.tracked_count(),
        sim_ms: net.now().nanos() / 1_000_000,
        violations: Vec::new(),
    };

    if out.completed != p.n {
        let head: Vec<String> =
            starved.iter().take(5).map(|i| i.to_string()).collect();
        out.violations.push(format!(
            "{} of {} clients never completed (first: [{}])",
            p.n - out.completed,
            p.n,
            head.join(",")
        ));
    }
    if out.corrupt > 0 {
        out.violations.push(format!("{} corrupt echoes", out.corrupt));
    }
    if out.client_errors > 0 {
        out.violations.push(format!(
            "{} client transport errors (first: {:?})",
            out.client_errors,
            out.first_error.expect("counted an error")
        ));
    }
    if out.accepts != p.n as u64 {
        out.violations.push(format!("accepted {} of {} connections", out.accepts, p.n));
    }
    if out.accept_refusals != 0 {
        out.violations.push(format!("{} accept refusals", out.accept_refusals));
    }
    if out.echoed_bytes != (p.n * REQ_LEN) as u64 {
        out.violations.push(format!(
            "echoed {} bytes, expected {}",
            out.echoed_bytes,
            p.n * REQ_LEN
        ));
    }
    if out.server_residual != 0 {
        out.violations
            .push(format!("host leaked {} connections past close", out.server_residual));
    }
    out
}

/// The sweep: smoke = N=30 across both stacks × both timer modes; full =
/// wheel at N ∈ {100, 1000, 5000} × both stacks × two seeds, plus the
/// naive baseline at N ∈ {100, 1000} (quadratic — N=5000 naive is the
/// point of not having a wheel, so it is not run).
pub fn sweep(smoke: bool) -> Vec<ScaleOutcome> {
    let stacks = [ScaleStack::Sub, ScaleStack::Mono];
    let mut outs = Vec::new();
    if smoke {
        for stack in stacks {
            for timer_mode in [TimerMode::Wheel, TimerMode::NaiveScan] {
                outs.push(run_one(ScaleParams { stack, timer_mode, n: 30, seed: 1 }));
            }
        }
        return outs;
    }
    for &n in &[100usize, 1000, 5000] {
        for stack in stacks {
            for seed in [1u64, 2] {
                outs.push(run_one(ScaleParams {
                    stack,
                    timer_mode: TimerMode::Wheel,
                    n,
                    seed,
                }));
            }
        }
    }
    for &n in &[100usize, 1000] {
        for stack in stacks {
            outs.push(run_one(ScaleParams {
                stack,
                timer_mode: TimerMode::NaiveScan,
                n,
                seed: 1,
            }));
        }
    }
    outs
}

/// Sweep-level acceptance: wherever the same (stack, n, seed) cell ran
/// under both timer modes, the wheel must do strictly less timer work per
/// tick than the naive scan.
pub fn cross_checks(outs: &[ScaleOutcome]) -> Vec<String> {
    let mut v = Vec::new();
    for naive in outs.iter().filter(|o| o.timer == "naive") {
        let Some(wheel) = outs.iter().find(|o| {
            o.timer == "wheel"
                && o.stack == naive.stack
                && o.n == naive.n
                && o.seed == naive.seed
        }) else {
            continue;
        };
        if wheel.work_per_tick_x100 >= naive.work_per_tick_x100 {
            v.push(format!(
                "wheel work/tick ({}.{:02}) not below naive ({}.{:02}) at stack={} n={}",
                wheel.work_per_tick_x100 / 100,
                wheel.work_per_tick_x100 % 100,
                naive.work_per_tick_x100 / 100,
                naive.work_per_tick_x100 % 100,
                naive.stack,
                naive.n
            ));
        }
    }
    v
}

fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

fn json_err(e: Option<TransportError>) -> String {
    match e {
        None => "null".into(),
        Some(e) => json_str(&format!("{e:?}")),
    }
}

/// Deterministic, hand-rolled JSON for one outcome (stable field order,
/// integers only — byte-identical for identical seeds).
pub fn outcome_json(o: &ScaleOutcome) -> String {
    let viol: Vec<String> = o.violations.iter().map(|v| json_str(v)).collect();
    format!(
        "{{\"stack\":{},\"timer\":{},\"n\":{},\"seed\":{},\"completed\":{},\
         \"corrupt\":{},\"client_errors\":{},\"first_error\":{},\"accepts\":{},\
         \"accept_refusals\":{},\"conns_per_sec\":{},\"p50_us\":{},\"p99_us\":{},\
         \"accept_p50_us\":{},\"accept_p99_us\":{},\"bytes_per_conn\":{},\
         \"shard_occupancy\":{},\
         \"ticks\":{},\"timer_fires\":{},\"timer_touches\":{},\
         \"work_per_tick_x100\":{},\"frames_in\":{},\"frames_out\":{},\
         \"events\":{},\"echoed_bytes\":{},\"crossings\":{},\"server_residual\":{},\
         \"sim_ms\":{},\"violations\":[{}]}}",
        json_str(o.stack),
        json_str(o.timer),
        o.n,
        o.seed,
        o.completed,
        o.corrupt,
        o.client_errors,
        json_err(o.first_error),
        o.accepts,
        o.accept_refusals,
        o.conns_per_sec,
        o.p50_us,
        o.p99_us,
        o.accept_p50_us,
        o.accept_p99_us,
        o.bytes_per_conn,
        o.shard_occupancy,
        o.ticks,
        o.timer_fires,
        o.timer_touches,
        o.work_per_tick_x100,
        o.frames_in,
        o.frames_out,
        o.events,
        o.echoed_bytes,
        o.crossings,
        o.server_residual,
        o.sim_ms,
        viol.join(",")
    )
}

/// The whole sweep (plus sweep-level checks) as one JSON document.
pub fn summary_json(outs: &[ScaleOutcome], cross: &[String]) -> String {
    let rows: Vec<String> = outs.iter().map(outcome_json).collect();
    let violations: usize =
        outs.iter().map(|o| o.violations.len()).sum::<usize>() + cross.len();
    let cross_rows: Vec<String> = cross.iter().map(|c| json_str(c)).collect();
    format!(
        "{{\"runs\":[\n  {}\n],\"cross_checks\":[{}],\"total\":{},\"violations\":{}}}",
        rows.join(",\n  "),
        cross_rows.join(","),
        outs.len(),
        violations
    )
}
