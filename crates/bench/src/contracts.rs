//! E22 — compositional sublayer contracts: the assume/guarantee chain vs
//! the fused product.
//!
//! Runs the four `slverify::contracts` models against the **real**
//! `sublayer-core` sublayers, composes them into the end-to-end proof,
//! and measures the proof-effort gap against three fused arms:
//!
//! * the workspace's original fused model (`slverify::Combined`, the
//!   handshake × window product from E6) — the historical comparison arm;
//! * an *explored* product of two contract models
//!   (`Product<DmContract, OsrContract>`) — the multiplicative cost paid
//!   the moment two sublayers are verified as one machine;
//! * the *estimated* four-way product (per-contract state counts
//!   multiplied) — what a monolithic proof of the whole chain would face.
//!
//! Also re-runs the four mutation canaries (each must be caught by the
//! contract owning the broken obligation) and the `slconform`
//! codec-equivalence certificate, so `BENCH_contracts.json` is a single
//! deterministic artifact for the whole E22 claim set.

use slconform::codec_equiv;
use slverify::{
    check, CheckResult, CmContract, DmContract, OsrContract, Product, RdContract, CM_CONTRACT,
    DM_CONTRACT, OSR_CONTRACT, RD_CONTRACT,
};

/// Cap per individual contract exploration — far above any of the spaces.
const CAP: usize = 2_000_000;

/// One contract's exploration, flattened for reporting.
#[derive(Clone, Debug)]
pub struct ContractRow {
    pub sublayer: &'static str,
    pub assumes: Vec<&'static str>,
    pub guarantees: Vec<&'static str>,
    pub states: usize,
    pub transitions: usize,
    pub depth: usize,
    pub proved: bool,
}

/// One canary's refutation.
#[derive(Clone, Debug)]
pub struct CanaryRow {
    pub sublayer: &'static str,
    pub steps: usize,
    pub actions: Vec<&'static str>,
    pub reason: String,
}

/// Everything E22 reports.
#[derive(Clone, Debug)]
pub struct ContractsOut {
    pub rows: Vec<ContractRow>,
    /// The derived end-to-end property, or the composition error.
    pub derived: Result<String, String>,
    pub sum_states: usize,
    /// Estimated monolithic cost: product of the four contract spaces.
    pub fused_estimate: u128,
    /// The historical fused arm (E6's handshake × window product).
    pub combined_states: usize,
    /// An explored two-way product of contract models.
    pub product_dm_osr_states: usize,
    pub canaries: Vec<CanaryRow>,
    /// Codec-equivalence certificate (words, transitions), or the refusal.
    pub codec: Result<(usize, usize), String>,
    /// Aggregated failures: anything here fails the experiment.
    pub violations: Vec<String>,
}

fn contract_row(spec: slverify::ContractSpec, r: &CheckResult) -> ContractRow {
    ContractRow {
        sublayer: spec.sublayer,
        assumes: spec.assumes.to_vec(),
        guarantees: spec.guarantees.to_vec(),
        states: r.states,
        transitions: r.transitions,
        depth: r.max_depth,
        proved: r.ok(),
    }
}

/// Run the whole experiment. Everything is exhaustive and deterministic;
/// `_smoke` selects no smaller configuration because the full run is
/// already CI-sized (the whole point of compositional checking).
pub fn run(_smoke: bool) -> ContractsOut {
    let mut violations = Vec::new();

    // The chain, one contract at a time.
    let runs = vec![
        (DM_CONTRACT, check(&DmContract::shipped(), CAP)),
        (CM_CONTRACT, check(&CmContract::shipped(), CAP)),
        (RD_CONTRACT, check(&RdContract::shipped(), CAP)),
        (OSR_CONTRACT, check(&OsrContract::shipped(), CAP)),
    ];
    let rows: Vec<ContractRow> = runs.iter().map(|(s, r)| contract_row(*s, r)).collect();
    for row in &rows {
        if !row.proved {
            violations.push(format!("contract {} did not prove", row.sublayer));
        }
    }

    // The composition theorem.
    let proof = slverify::compose(&runs);
    let (derived, sum_states, fused_estimate) = match &proof {
        Ok(p) => (Ok(p.derived.to_string()), p.sum_states, p.fused_estimate),
        Err(e) => {
            violations.push(format!("composition failed: {e}"));
            (Err(e.clone()), 0, 0)
        }
    };

    // Fused arms.
    let combined = check(
        &slverify::Combined {
            hs: slverify::Handshake { three_way: true },
            win: slverify::SlidingWindow { w: 2, s_mod: 4, n_msgs: 6 },
        },
        20_000_000,
    );
    let product = check(&Product::new(DmContract::shipped(), OsrContract::shipped()), CAP);
    if !product.ok() {
        violations.push("explored DM x OSR product did not prove".into());
    }

    // Mutation canaries: each must be refuted by its owning contract.
    let mut canaries = Vec::new();
    let canary_runs: Vec<(&'static str, CheckResult)> = vec![
        ("dm", check(&DmContract::buggy(), CAP)),
        ("cm", check(&CmContract::buggy(), CAP)),
        ("rd", check(&RdContract::buggy(), CAP)),
        ("osr", check(&OsrContract::buggy(), CAP)),
    ];
    for (sublayer, r) in canary_runs {
        match r.violation {
            Some(v) => canaries.push(CanaryRow {
                sublayer,
                steps: v.actions.len(),
                actions: v.actions,
                reason: v.reason,
            }),
            None => violations.push(format!("canary {sublayer} escaped its contract")),
        }
    }

    // The wire-format leg: codec equivalence certificate.
    let codec = match codec_equiv::certify(CAP) {
        Ok(c) => Ok((c.words, c.transitions)),
        Err(e) => {
            violations.push(format!("codec certificate refused: {e}"));
            Err(e)
        }
    };

    ContractsOut {
        rows,
        derived,
        sum_states,
        fused_estimate,
        combined_states: combined.states,
        product_dm_osr_states: product.states,
        canaries,
        codec,
        violations,
    }
}

fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

fn json_str_list(items: &[&str]) -> String {
    let q: Vec<String> = items.iter().map(|s| json_str(s)).collect();
    format!("[{}]", q.join(","))
}

/// Deterministic JSON summary (byte-identical across reruns: every number
/// comes from exhaustive exploration of fixed models).
pub fn summary_json(out: &ContractsOut) -> String {
    let contracts: Vec<String> = out
        .rows
        .iter()
        .map(|r| {
            format!(
                "{{\"sublayer\":{},\"assumes\":{},\"guarantees\":{},\"states\":{},\
                 \"transitions\":{},\"depth\":{},\"proved\":{}}}",
                json_str(r.sublayer),
                json_str_list(&r.assumes),
                json_str_list(&r.guarantees),
                r.states,
                r.transitions,
                r.depth,
                r.proved
            )
        })
        .collect();
    let canaries: Vec<String> = out
        .canaries
        .iter()
        .map(|c| {
            format!(
                "{{\"sublayer\":{},\"steps\":{},\"actions\":{},\"reason\":{}}}",
                json_str(c.sublayer),
                c.steps,
                json_str_list(&c.actions),
                json_str(&c.reason)
            )
        })
        .collect();
    let derived = match &out.derived {
        Ok(d) => format!("{{\"ok\":true,\"property\":{}}}", json_str(d)),
        Err(e) => format!("{{\"ok\":false,\"error\":{}}}", json_str(e)),
    };
    let codec = match &out.codec {
        Ok((w, t)) => format!("{{\"ok\":true,\"words\":{w},\"transitions\":{t}}}"),
        Err(e) => format!("{{\"ok\":false,\"error\":{}}}", json_str(e)),
    };
    let violations: Vec<String> = out.violations.iter().map(|v| json_str(v)).collect();
    format!(
        "{{\"contracts\":[\n  {}\n],\"composition\":{derived},\"sum_states\":{},\
         \"fused_estimate\":{},\"combined_states\":{},\"product_dm_osr_states\":{},\
         \"canaries\":[\n  {}\n],\"codec\":{codec},\"violations\":[{}]}}",
        contracts.join(",\n  "),
        out.sum_states,
        out.fused_estimate,
        out.combined_states,
        out.product_dm_osr_states,
        canaries.join(",\n  "),
        violations.join(",")
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn e22_is_clean_and_compositional() {
        let out = run(true);
        assert!(out.violations.is_empty(), "{:?}", out.violations);
        assert_eq!(out.derived.as_deref(), Ok(slverify::E2E));
        assert_eq!(out.canaries.len(), 4);
        // The headline claim: additive cost strictly and substantially
        // below the multiplicative product.
        assert!(
            (out.sum_states as u128) * 10 < out.fused_estimate,
            "sum {} vs estimate {}",
            out.sum_states,
            out.fused_estimate
        );
        let dm = out.rows.iter().find(|r| r.sublayer == "dm").unwrap().states;
        let osr = out.rows.iter().find(|r| r.sublayer == "osr").unwrap().states;
        assert!(
            out.product_dm_osr_states > 5 * (dm + osr),
            "the explored DM x OSR product ({}) must dwarf its parts ({dm} + {osr})",
            out.product_dm_osr_states
        );
    }

    #[test]
    fn e22_json_is_deterministic() {
        let a = summary_json(&run(true));
        let b = summary_json(&run(true));
        assert_eq!(a, b);
    }
}
