//! Shared harness for the experiment binaries (`exp_*`) and Criterion
//! benches. Each function runs a deterministic simulated workload and
//! returns the measurements the corresponding EXPERIMENTS.md table
//! reports.

pub mod attack;
pub mod chaos;
pub mod conform;
pub mod contracts;
pub mod failover;
pub mod fairness;
pub mod overload;
pub mod scale;
pub mod shard;
pub mod topology;

use netsim::{two_party, Dur, FaultProfile, LinkParams, SimNet, StackNode, Time};
use sublayer_core::shim::ShimStack;
use sublayer_core::{CmScheme, SlConfig, SlTcpStack};
use tcp_mono::stack::TcpStack;
use tcp_mono::wire::Endpoint;

pub const A: u32 = 0x0A000001;
pub const B: u32 = 0x0A000002;

/// Which transport runs on each side of a transfer.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum StackKind {
    Mono,
    Sub(&'static str),          // rate controller name
    SubTimerCm(&'static str),   // timer-based CM variant
    SubNoSack,                  // SACK-advertisement ablation
    ShimClientMonoServer,       // interop: sublayered (shim) -> mono
    MonoClientShimServer,       // interop: mono -> sublayered (shim)
}

impl StackKind {
    pub fn label(&self) -> String {
        match self {
            StackKind::Mono => "monolithic".into(),
            StackKind::Sub(cc) => format!("sublayered/{cc}"),
            StackKind::SubTimerCm(cc) => format!("sublayered/timer-cm/{cc}"),
            StackKind::SubNoSack => "sublayered/reno/no-sack".into(),
            StackKind::ShimClientMonoServer => "sub(shim)->mono".into(),
            StackKind::MonoClientShimServer => "mono->sub(shim)".into(),
        }
    }
}

/// One transfer's outcome.
#[derive(Clone, Debug)]
pub struct TransferReport {
    pub kind: String,
    pub bytes: usize,
    pub delivered: usize,
    pub sim_seconds: f64,
    pub goodput_mbps: f64,
    pub frames_on_wire: u64,
    pub wire_bytes: u64,
    pub complete: bool,
}

fn sub_config(cc: &'static str, timer_cm: bool) -> SlConfig {
    SlConfig {
        cm_scheme: if timer_cm {
            CmScheme::TimerBased { quiet: Dur::from_secs(10) }
        } else {
            CmScheme::ThreeWay
        },
        cc,
        isn: "clock",
        use_sack: true,
        keepalive: None,
        ..SlConfig::default()
    }
}

/// Run a one-directional bulk transfer and measure completion time and
/// wire efficiency.
pub fn run_transfer(
    kind: StackKind,
    bytes: usize,
    params: LinkParams,
    seed: u64,
    patience_secs: u64,
) -> TransferReport {
    let data: Vec<u8> = (0..bytes).map(|i| (i % 251) as u8).collect();

    // Generic driver over the two stack shapes.
    enum Side {
        Mono(usize),
        Sub(usize),
        Shim(usize),
    }
    let mut net;
    let (tx, rx): (Side, Side);
    let mut conn_mono = None;
    let mut conn_sub = None;

    match kind {
        StackKind::Mono => {
            let mut c = TcpStack::new(A, slmetrics::shared());
            let mut s = TcpStack::new(B, slmetrics::shared());
            s.listen(80);
            conn_mono = Some(c.connect(Time::ZERO, 5000, Endpoint::new(B, 80)));
            let (n, nc, ns) = two_party(seed, c, s, params);
            net = n;
            tx = Side::Mono(nc);
            rx = Side::Mono(ns);
        }
        StackKind::Sub(_) | StackKind::SubTimerCm(_) | StackKind::SubNoSack => {
            let timer = matches!(kind, StackKind::SubTimerCm(_));
            let cc = match kind {
                StackKind::Sub(c) | StackKind::SubTimerCm(c) => c,
                _ => "reno",
            };
            let mut cfg = sub_config(cc, timer);
            if matches!(kind, StackKind::SubNoSack) {
                cfg.use_sack = false;
            }
            let mut c = SlTcpStack::new(A, cfg.clone(), slmetrics::shared());
            let mut s = SlTcpStack::new(B, cfg, slmetrics::shared());
            s.listen(80);
            conn_sub = Some(c.connect(Time::ZERO, 5000, Endpoint::new(B, 80)));
            let (n, nc, ns) = two_party(seed, c, s, params);
            net = n;
            tx = Side::Sub(nc);
            rx = Side::Sub(ns);
        }
        StackKind::ShimClientMonoServer => {
            let mut c = ShimStack::new(SlTcpStack::new(A, sub_config("reno", false), slmetrics::shared()));
            let mut s = TcpStack::new(B, slmetrics::shared());
            s.listen(80);
            conn_sub = Some(c.inner.connect(Time::ZERO, 5000, Endpoint::new(B, 80)));
            let (n, nc, ns) = two_party(seed, c, s, params);
            net = n;
            tx = Side::Shim(nc);
            rx = Side::Mono(ns);
        }
        StackKind::MonoClientShimServer => {
            let mut c = TcpStack::new(A, slmetrics::shared());
            let mut s = ShimStack::new(SlTcpStack::new(B, sub_config("reno", false), slmetrics::shared()));
            s.inner.listen(80);
            conn_mono = Some(c.connect(Time::ZERO, 5000, Endpoint::new(B, 80)));
            let (n, nc, ns) = two_party(seed, c, s, params);
            net = n;
            tx = Side::Mono(nc);
            rx = Side::Shim(ns);
        }
    }

    net.poll_all();
    net.run_until(Time::ZERO + Dur::from_secs(3));
    // Queue the data on the sender.
    match &tx {
        Side::Mono(id) => {
            net.node_mut::<StackNode<TcpStack>>(*id).stack.send(conn_mono.unwrap(), &data);
        }
        Side::Sub(id) => {
            net.node_mut::<StackNode<SlTcpStack>>(*id).stack.send(conn_sub.unwrap(), &data);
        }
        Side::Shim(id) => {
            net.node_mut::<StackNode<ShimStack>>(*id)
                .stack
                .inner
                .send(conn_sub.unwrap(), &data);
        }
    }
    net.poll_all();
    let start = net.now();

    let mut got = 0usize;
    let mut done_at = start;
    // 25 ms application polling: fine enough that the app read rate never
    // bounds a 20 Mbit/s link (64 KB window / 25 ms = 21 Mbit/s).
    for _ in 0..patience_secs * 40 {
        let dl = net.now() + Dur::from_millis(25);
        net.run_until(dl);
        let drained = match &rx {
            Side::Mono(id) => {
                let st = &mut net.node_mut::<StackNode<TcpStack>>(*id).stack;
                st.established().first().map(|&c| st.recv(c).len()).unwrap_or(0)
            }
            Side::Sub(id) => {
                let st = &mut net.node_mut::<StackNode<SlTcpStack>>(*id).stack;
                st.established().first().map(|&c| st.recv(c).len()).unwrap_or(0)
            }
            Side::Shim(id) => {
                let st = &mut net.node_mut::<StackNode<ShimStack>>(*id).stack.inner;
                st.established().first().map(|&c| st.recv(c).len()).unwrap_or(0)
            }
        };
        got += drained;
        net.poll_all();
        if got >= bytes {
            done_at = net.now();
            break;
        }
    }
    let complete = got >= bytes;
    if !complete {
        done_at = net.now();
    }
    let secs = done_at.since(start).secs_f64().max(1e-9);
    let d0 = net.link_dir_stats(0, 0);
    let d1 = net.link_dir_stats(0, 1);
    TransferReport {
        kind: kind.label(),
        bytes,
        delivered: got,
        sim_seconds: secs,
        goodput_mbps: got as f64 * 8.0 / secs / 1e6,
        frames_on_wire: d0.tx_frames + d1.tx_frames,
        wire_bytes: d0.tx_bytes + d1.tx_bytes,
        complete,
    }
}

/// A standard link for the TCP comparisons: 10 ms delay, 20 Mbit/s.
pub fn standard_link(loss: f64) -> LinkParams {
    LinkParams::delay_only(Dur::from_millis(10))
        .with_rate(20_000_000)
        .with_fault(FaultProfile::lossy(loss))
}

/// Nearest-rank percentile over an ascending-sorted slice (`q` in
/// `0..=100`); 0 for empty input. Shared by the scale and shard sweeps
/// so their latency columns are computed identically.
pub fn percentile(sorted: &[u64], q: u64) -> u64 {
    if sorted.is_empty() {
        0
    } else {
        sorted[((sorted.len() - 1) as u64 * q / 100) as usize]
    }
}

/// Render rows as a markdown table.
pub fn markdown_table(headers: &[&str], rows: &[Vec<String>]) -> String {
    let mut out = String::new();
    out.push_str(&format!("| {} |\n", headers.join(" | ")));
    out.push_str(&format!("|{}\n", "---|".repeat(headers.len())));
    for r in rows {
        out.push_str(&format!("| {} |\n", r.join(" | ")));
    }
    out
}

/// Crossing statistics from a sublayered transfer (for E10).
pub fn crossings_for_workload(bytes: usize, loss: f64, seed: u64) -> sublayer_core::CrossingStats {
    let mut c = SlTcpStack::new(A, SlConfig::default(), slmetrics::shared());
    let mut s = SlTcpStack::new(B, SlConfig::default(), slmetrics::shared());
    s.listen(80);
    let conn = c.connect(Time::ZERO, 5000, Endpoint::new(B, 80));
    let (mut net, nc, ns) = two_party(seed, c, s, standard_link(loss));
    net.poll_all();
    net.run_until(Time::ZERO + Dur::from_secs(2));
    net.node_mut::<StackNode<SlTcpStack>>(nc).stack.send(conn, &vec![7u8; bytes]);
    net.poll_all();
    for _ in 0..180 {
        let dl = net.now() + Dur::from_secs(1);
        net.run_until(dl);
        let st = &mut net.node_mut::<StackNode<SlTcpStack>>(ns).stack;
        if let Some(&sc) = st.established().first() {
            let _ = st.recv(sc);
        }
        net.poll_all();
        if net.node::<StackNode<SlTcpStack>>(nc).stack.osr_stats(conn).is_none_or(|o| o.bytes_written == bytes as u64)
            && net.node::<StackNode<SlTcpStack>>(ns).stack.crossings.rd_to_osr_bytes >= bytes as u64
        {
            break;
        }
    }
    // Sender-host view only: its NIC/host boundary carries OSR->RD
    // segments down and signals up; the receiver host is symmetric.
    net.node::<StackNode<SlTcpStack>>(nc).stack.crossings.clone()
}

/// Drive one SimNet until idle/deadline — helper for examples/tests.
pub fn settle(net: &mut SimNet, secs: u64) {
    let dl = net.now() + Dur::from_secs(secs);
    net.run_until(dl);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn transfers_complete_for_all_stack_kinds() {
        for kind in [
            StackKind::Mono,
            StackKind::Sub("reno"),
            StackKind::ShimClientMonoServer,
            StackKind::MonoClientShimServer,
        ] {
            let r = run_transfer(kind, 30_000, standard_link(0.02), 7, 120);
            assert!(r.complete, "{:?}: {r:?}", kind);
            assert!(r.goodput_mbps > 0.01);
        }
    }

    #[test]
    fn lossier_links_are_slower() {
        let clean = run_transfer(StackKind::Sub("reno"), 100_000, standard_link(0.0), 1, 180);
        let lossy = run_transfer(StackKind::Sub("reno"), 100_000, standard_link(0.1), 1, 180);
        assert!(clean.complete && lossy.complete);
        assert!(clean.sim_seconds < lossy.sim_seconds);
    }

    #[test]
    fn percentile_is_nearest_rank() {
        assert_eq!(percentile(&[], 99), 0);
        assert_eq!(percentile(&[7], 0), 7);
        assert_eq!(percentile(&[7], 100), 7);
        let v: Vec<u64> = (1..=100).collect();
        assert_eq!(percentile(&v, 50), 50);
        assert_eq!(percentile(&v, 99), 99);
        assert_eq!(percentile(&v, 100), 100);
    }

    #[test]
    fn markdown_renders() {
        let t = markdown_table(&["a", "b"], &[vec!["1".into(), "2".into()]]);
        assert!(t.contains("| a | b |"));
        assert!(t.contains("| 1 | 2 |"));
    }

    #[test]
    fn crossings_workload_produces_counts() {
        // Sender-host view: its boundary carries segments down and
        // signals up; the opposite direction belongs to the peer host.
        let cx = crossings_for_workload(20_000, 0.02, 3);
        assert!(cx.osr_to_rd_segments >= 20);
        assert_eq!(cx.osr_to_rd_bytes, 20_000);
        assert!(cx.signals_up > 0);
    }
}
