//! E21 — shard fault domains under load (`slshard` failover campaign).
//!
//! Each cell crashes one shard of an N-way [`slshard::ShardedHost`]
//! mid-campaign — a deterministic [`FaultKind::Panic`] armed on the
//! victim shard's logical round — and measures the blast radius against
//! a no-fault baseline run of the same seed:
//!
//! * **isolation** — every client homed on a *healthy* shard must finish
//!   with the exact byte stream and completion time of the baseline run:
//!   zero errors, zero retries, zero disruption;
//! * **recovery** — with restarts enabled the supervisor must rebuild the
//!   victim within a bounded number of coordinator rounds, and every
//!   victim client must complete by reconnecting to its restarted home
//!   shard; with restarts disabled every victim must end in a *typed*
//!   error (never a hang), the victim shard stays `Failed`, and the
//!   blast radius is still one shard;
//! * **budget soundness mid-failover** — per-shard memory peaks stay
//!   within the per-shard budget and their sum within the global budget
//!   throughout the crash and recovery.
//!
//! Victim clients reconnect on fresh local ports chosen so the 4-tuple
//! still hashes to their home shard (the deterministic analogue of an OS
//! picking a new ephemeral port); client stacks run with keepalive armed
//! so a silently-dead shard turns into a typed error. The smoke sweep
//! also re-runs each cell in [`Mode::Inline`] and requires the threaded
//! outcome to be byte-identical — crash, restart, and all.

use crate::scale::ScaleStack;
use netsim::{Dur, LinkParams, MultiStackNode, Stack, StackNode, Time, TransportError};
use slhost::{EchoApp, Host, HostConfig, HostStack, ResourceBudget, ServedHost};
use slshard::{
    mute_injected_panics, FaultEvent, FaultEventKind, FaultKind, FaultSpec, Mode,
    RestartPolicy, ShardFaultPlan, ShardHealth, ShardedConfig, ShardedHost,
};
use sublayer_core::{KeepaliveConfig, SlConfig, SlTcpStack};
use tcp_mono::hash::shard_of;
use tcp_mono::stack::{Keepalive, TcpStack};
use tcp_mono::wire::{Endpoint, FourTuple};

const SERVER_ADDR: u32 = crate::A;
const CLIENT_BASE: u32 = 0x0C00_0000;
const PORT: u16 = 80;
const CLIENT_PORT: u16 = 5000;
const STAGGER_NS: u64 = 100_000;
/// Per-shard byte budget; global is `shards ×` this (as in E20).
const SHARD_BUDGET: usize = 16 << 20;
/// Reconnect attempts a victim client gets when restarts are enabled.
const RETRIES: usize = 3;
/// Coordinator rounds from `crashed` to `restarted` the supervisor is
/// allowed (death detection is immediate for a panic; the default policy
/// backs off `backoff_rounds × attempt` rounds before the rebuild).
const RECOVERY_ROUND_BOUND: u64 = 8;
/// Horizon with restarts enabled: reconnects finish well inside ~20 s;
/// the tail is the active closer's TIME_WAIT.
const RESTART_HORIZON_NS: u64 = 60_000_000_000;
/// Without restarts a victim's typed error can take data-RTO exhaustion
/// (RTO doubling toward 60 s) — give those cells a few hundred virtual
/// seconds. Wall-clock stays in milliseconds: a shard that gave up no
/// longer forces coordinator rounds.
const NEVER_HORIZON_NS: u64 = 400_000_000_000;

fn dur(ns: u64) -> Dur {
    Dur::from_nanos(ns)
}

fn mode_label(m: Mode) -> &'static str {
    match m {
        Mode::Threaded => "threaded",
        Mode::Inline => "inline",
    }
}

/// Deterministic per-client request (64..264 B, diverse lengths).
fn request(i: usize) -> Vec<u8> {
    let len = 64 + (i * 37) % 200;
    (0..len).map(|j| ((i * 131 + j * 7) % 251) as u8).collect()
}

/// First `k` local ports (from `CLIENT_PORT` up) whose 4-tuple hashes to
/// the same shard as the client's first port — every reconnect attempt
/// lands back on the client's home shard.
fn home_ports(seed: u64, caddr: u32, shards: usize, k: usize) -> (usize, Vec<u16>) {
    let tuple = |p: u16| FourTuple {
        local: Endpoint::new(SERVER_ADDR, PORT),
        remote: Endpoint::new(caddr, p),
    };
    let home = shard_of(seed, &tuple(CLIENT_PORT), shards);
    let mut ports = Vec::with_capacity(k);
    let mut p = CLIENT_PORT;
    while ports.len() < k {
        if shard_of(seed, &tuple(p), shards) == home {
            ports.push(p);
        }
        p += 1;
    }
    (home, ports)
}

#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum Phase {
    Idle,
    Connecting,
    Await,
    Closing,
    RetryWait,
    Done,
    Failed,
}

/// Echo client with typed-error-driven reconnect: on a connection error
/// it abandons the attempt and retries (bounded) from the next home
/// port.
struct FailoverClient<S: HostStack> {
    stack: S,
    server: Endpoint,
    req: Vec<u8>,
    ports: Vec<u16>,
    attempt: usize,
    retries: usize,
    phase: Phase,
    conn: Option<S::ConnId>,
    got: Vec<u8>,
    connect_at: Time,
    retry_at: Time,
    done_at: Option<Time>,
    first_error: Option<TransportError>,
}

impl<S: HostStack> FailoverClient<S> {
    fn new(stack: S, connect_at: Time, req: Vec<u8>, ports: Vec<u16>, retries: usize) -> Self {
        FailoverClient {
            stack,
            server: Endpoint::new(SERVER_ADDR, PORT),
            req,
            ports,
            attempt: 0,
            retries,
            phase: Phase::Idle,
            conn: None,
            got: Vec::new(),
            connect_at,
            retry_at: Time::ZERO,
            done_at: None,
            first_error: None,
        }
    }

    fn connect(&mut self, now: Time) {
        let port = self.ports[self.attempt % self.ports.len()];
        match self.stack.try_connect(now, port, self.server) {
            Ok(id) => {
                self.conn = Some(id);
                self.phase = Phase::Connecting;
            }
            Err(e) => {
                if self.first_error.is_none() {
                    self.first_error = Some(e);
                }
                self.phase = Phase::Failed;
            }
        }
    }

    fn drive(&mut self, now: Time) {
        if let Some(id) = self.conn {
            match self.phase {
                Phase::Connecting | Phase::Await => {
                    if let Some(e) = self.stack.conn_error(id) {
                        if self.first_error.is_none() {
                            self.first_error = Some(e);
                        }
                        self.conn = None;
                        self.got.clear();
                        if self.attempt < self.retries {
                            self.attempt += 1;
                            self.retry_at = now + Dur::from_millis(200);
                            self.phase = Phase::RetryWait;
                        } else {
                            self.phase = Phase::Failed;
                        }
                    }
                }
                Phase::Closing if self.stack.conn_error(id).is_some() => {
                    // Data already delivered in full; the error only
                    // tore down the TIME_WAIT shell.
                    self.conn = None;
                    self.phase = Phase::Done;
                }
                _ => {}
            }
        }
        loop {
            match self.phase {
                Phase::Idle => {
                    if now < self.connect_at {
                        return;
                    }
                    self.connect(now);
                }
                Phase::RetryWait => {
                    if now < self.retry_at {
                        return;
                    }
                    self.connect(now);
                }
                Phase::Connecting => {
                    let id = self.conn.expect("connected past Idle");
                    if !self.stack.is_established(id) {
                        return;
                    }
                    self.stack.send(id, &self.req);
                    self.phase = Phase::Await;
                }
                Phase::Await => {
                    let id = self.conn.expect("connected past Idle");
                    let data = self.stack.recv(id);
                    self.got.extend_from_slice(&data);
                    if self.got.len() < self.req.len() {
                        return;
                    }
                    self.done_at = Some(now);
                    self.stack.close(id);
                    self.phase = Phase::Closing;
                }
                Phase::Closing => {
                    let id = self.conn.expect("connected past Idle");
                    if !self.stack.is_closed(id) {
                        return;
                    }
                    self.phase = Phase::Done;
                }
                Phase::Done | Phase::Failed => return,
            }
        }
    }
}

impl<S: HostStack> Stack for FailoverClient<S> {
    fn on_frame(&mut self, now: Time, frame: &[u8]) {
        Stack::on_frame(&mut self.stack, now, frame);
        self.drive(now);
    }

    fn poll_transmit(&mut self, now: Time) -> Option<Vec<u8>> {
        Stack::poll_transmit(&mut self.stack, now)
    }

    fn poll_deadline(&self, now: Time) -> Option<Time> {
        let own = match self.phase {
            Phase::Idle => Some(self.connect_at),
            Phase::RetryWait => Some(self.retry_at),
            _ => None,
        };
        [own, Stack::poll_deadline(&self.stack, now)].into_iter().flatten().min()
    }

    fn on_tick(&mut self, now: Time) {
        Stack::on_tick(&mut self.stack, now);
        self.drive(now);
    }
}

/// One cell of the sweep.
#[derive(Clone, Copy, Debug)]
pub struct FailoverParams {
    pub stack: ScaleStack,
    pub mode: Mode,
    pub shards: usize,
    pub n: usize,
    pub seed: u64,
    /// Supervised restart (default policy) vs [`RestartPolicy::never`].
    pub restart: bool,
}

/// Everything one cell exposes (baseline-compared), plus the invariant
/// violations (empty = clean).
#[derive(Clone, Debug)]
pub struct FailoverOutcome {
    pub stack: &'static str,
    pub mode: &'static str,
    pub policy: &'static str,
    pub shards: usize,
    pub n: usize,
    pub seed: u64,
    /// The crashed shard and the logical round its panic was armed on.
    pub victim_shard: usize,
    pub crash_round: u64,
    /// Coordinator rounds of the observed crash / restart (0 = never).
    pub crashed_at_round: u64,
    pub restarted_at_round: u64,
    pub recovery_rounds: u64,
    /// Clients homed on the victim shard / everyone else.
    pub victims: usize,
    pub victims_completed: usize,
    pub victims_errored: usize,
    pub healthy: usize,
    /// Healthy clients whose outcome differed from the baseline run in
    /// any way (bytes, completion time, errors, retries). Must be 0.
    pub healthy_disrupted: usize,
    pub completed: usize,
    /// Fleet health gauges after the run.
    pub shard_restarts: u64,
    pub failover_aborts: u64,
    pub ring_stalls: u64,
    pub dead_drops: u64,
    pub final_health: Vec<u64>,
    /// Fault log as `round:shard:kind` strings (deterministic order).
    pub events: Vec<String>,
    /// Memory mid-failover: per-shard peaks against the budgets.
    pub mem_peak_worst_shard: u64,
    pub mem_peak_total: u64,
    pub shard_budget: u64,
    pub global_budget: u64,
    pub sim_ms: u64,
    pub violations: Vec<String>,
}

struct CliOut {
    complete: bool,
    got: Vec<u8>,
    done_at: Option<Time>,
    attempts: usize,
    first_error: Option<TransportError>,
    home: usize,
}

struct RunData {
    clients: Vec<CliOut>,
    events: Vec<FaultEvent>,
    health: Vec<ShardHealth>,
    rounds: Vec<u64>,
    mem_peaks: Vec<u64>,
    shard_restarts: u64,
    failover_aborts: u64,
    ring_stalls: u64,
    dead_drops: u64,
    sim_ms: u64,
}

fn run_net<S, F, G>(
    p: FailoverParams,
    policy: RestartPolicy,
    plan: Option<&ShardFaultPlan>,
    retries: usize,
    horizon: Time,
    mk_server: F,
    mk_client: &G,
) -> RunData
where
    S: HostStack,
    F: Fn(u32) -> S + Send + Sync + 'static,
    G: Fn(u32) -> S,
{
    mute_injected_panics();
    let per_shard_conns = (p.n / p.shards.max(1)) * 2 + 1024;
    let host_cfg = HostConfig {
        listen_port: PORT,
        backlog: 1024,
        max_conns: per_shard_conns,
        budget: ResourceBudget::bytes(SHARD_BUDGET),
        ..HostConfig::default()
    };
    let cfg = ShardedConfig {
        shards: p.shards,
        seed: p.seed,
        batch_window: Dur::ZERO,
        ring_cap: 4096,
        global_budget: SHARD_BUDGET * p.shards,
        mode: p.mode,
        restart: policy,
        ..ShardedConfig::default()
    };
    let mut server: ShardedHost<S, EchoApp> = ShardedHost::new(cfg, move |_shard| {
        ServedHost::new(Host::new(mk_server(SERVER_ADDR), host_cfg.clone()), EchoApp::default())
    });
    if let Some(plan) = plan {
        server.apply_plan(plan);
    }
    let mut homes = Vec::with_capacity(p.n);
    let clients: Vec<FailoverClient<S>> = (0..p.n)
        .map(|i| {
            let caddr = CLIENT_BASE + i as u32;
            let (home, ports) = home_ports(p.seed, caddr, p.shards, retries + 1);
            homes.push(home);
            FailoverClient::new(
                mk_client(caddr),
                Time(1_000_000 + STAGGER_NS * i as u64),
                request(i),
                ports,
                retries,
            )
        })
        .collect();
    let (mut net, sid, cids) =
        netsim::star(p.seed, server, clients, LinkParams::delay_only(dur(1_000_000)));
    net.poll_all();
    net.run_until(horizon);

    let mut out = Vec::with_capacity(p.n);
    for (i, &cid) in cids.iter().enumerate() {
        let c = &net.node::<StackNode<FailoverClient<S>>>(cid).stack;
        out.push(CliOut {
            complete: c.done_at.is_some() && c.got == c.req,
            got: c.got.clone(),
            done_at: c.done_at,
            attempts: c.attempt,
            first_error: c.first_error,
            home: homes[i],
        });
    }
    let srv = &mut net.node_mut::<MultiStackNode<ShardedHost<S, EchoApp>>>(sid).stack;
    let (counters, _, _) = srv.aggregate();
    let snaps = srv.snapshots();
    RunData {
        clients: out,
        events: srv.fault_events().to_vec(),
        health: (0..p.shards).map(|i| srv.health(i)).collect(),
        rounds: snaps.iter().map(|s| s.round).collect(),
        mem_peaks: snaps.iter().map(|s| s.counters.mem_peak).collect(),
        shard_restarts: counters.shard_restarts,
        failover_aborts: counters.failover_aborts,
        ring_stalls: counters.ring_stalls,
        dead_drops: srv.supervisor().dead_drops,
        sim_ms: net.now().nanos() / 1_000_000,
    }
}

/// Run one cell: a no-fault baseline, then the same seed with the victim
/// shard's panic armed, compared client by client.
pub fn run_one(p: FailoverParams) -> FailoverOutcome {
    match p.stack {
        ScaleStack::Sub => run_cell(
            p,
            |addr| SlTcpStack::new(addr, SlConfig::default(), slmetrics::muted()),
            |addr| {
                let cfg = SlConfig {
                    keepalive: Some(KeepaliveConfig {
                        idle: Dur::from_secs(10),
                        interval: Dur::from_secs(2),
                        max_probes: 5,
                    }),
                    ..SlConfig::default()
                };
                SlTcpStack::new(addr, cfg, slmetrics::muted())
            },
        ),
        ScaleStack::Mono => run_cell(
            p,
            |addr| TcpStack::new(addr, slmetrics::muted()),
            |addr| {
                let mut s = TcpStack::new(addr, slmetrics::muted());
                s.set_keepalive(Keepalive {
                    idle: Dur::from_secs(10),
                    interval: Dur::from_secs(2),
                    max_probes: 5,
                });
                s
            },
        ),
    }
}

fn run_cell<S, F, G>(p: FailoverParams, mk_server: F, mk_client: G) -> FailoverOutcome
where
    S: HostStack,
    F: Fn(u32) -> S + Send + Sync + Copy + 'static,
    G: Fn(u32) -> S,
{
    let policy = if p.restart { RestartPolicy::default() } else { RestartPolicy::never() };
    let retries = if p.restart { RETRIES } else { 0 };
    let horizon = Time(if p.restart { RESTART_HORIZON_NS } else { NEVER_HORIZON_NS });

    let baseline = run_net(p, policy, None, retries, horizon, mk_server, &mk_client);
    // The victim is client 0's home shard; its panic is armed 40% into
    // the rounds the baseline run gave that shard — mid-traffic, with
    // connections established and echoes in flight.
    let victim = baseline.clients[0].home;
    let crash_round = (baseline.rounds[victim] * 2 / 5).max(2);
    let plan = ShardFaultPlan {
        faults: vec![(victim as u32, FaultSpec { at_round: crash_round, kind: FaultKind::Panic })],
    };
    let faulted = run_net(p, policy, Some(&plan), retries, horizon, mk_server, &mk_client);

    let victims = faulted.clients.iter().filter(|c| c.home == victim).count();
    let victims_completed =
        faulted.clients.iter().filter(|c| c.home == victim && c.complete).count();
    let victims_errored = faulted
        .clients
        .iter()
        .filter(|c| c.home == victim && c.first_error.is_some())
        .count();
    let healthy = p.n - victims;
    let healthy_disrupted = baseline
        .clients
        .iter()
        .zip(faulted.clients.iter())
        .filter(|(b, f)| {
            f.home != victim
                && (!f.complete
                    || f.first_error.is_some()
                    || f.attempts != 0
                    || f.got != b.got
                    || f.done_at != b.done_at)
        })
        .count();
    let crashed_at_round = faulted
        .events
        .iter()
        .find(|e| e.kind == FaultEventKind::Crashed)
        .map_or(0, |e| e.round);
    let restarted_at_round = faulted
        .events
        .iter()
        .find(|e| e.kind == FaultEventKind::Restarted)
        .map_or(0, |e| e.round);
    let recovery_rounds = restarted_at_round.saturating_sub(crashed_at_round);

    let mut out = FailoverOutcome {
        stack: match p.stack {
            ScaleStack::Sub => "sub",
            ScaleStack::Mono => "mono",
        },
        mode: mode_label(p.mode),
        policy: if p.restart { "restart" } else { "never" },
        shards: p.shards,
        n: p.n,
        seed: p.seed,
        victim_shard: victim,
        crash_round,
        crashed_at_round,
        restarted_at_round,
        recovery_rounds,
        victims,
        victims_completed,
        victims_errored,
        healthy,
        healthy_disrupted,
        completed: faulted.clients.iter().filter(|c| c.complete).count(),
        shard_restarts: faulted.shard_restarts,
        failover_aborts: faulted.failover_aborts,
        ring_stalls: faulted.ring_stalls,
        dead_drops: faulted.dead_drops,
        final_health: faulted.health.iter().map(|h| h.as_u8() as u64).collect(),
        events: faulted
            .events
            .iter()
            .map(|e| format!("{}:{}:{}", e.round, e.shard, e.kind.label()))
            .collect(),
        mem_peak_worst_shard: faulted.mem_peaks.iter().copied().max().unwrap_or(0),
        mem_peak_total: faulted.mem_peaks.iter().sum(),
        shard_budget: SHARD_BUDGET as u64,
        global_budget: (SHARD_BUDGET * p.shards) as u64,
        sim_ms: faulted.sim_ms,
        violations: Vec::new(),
    };

    // Gate 0: the baseline itself must be clean, or the comparison is
    // meaningless.
    let base_incomplete = baseline.clients.iter().filter(|c| !c.complete).count();
    if base_incomplete > 0 {
        out.violations
            .push(format!("{base_incomplete} baseline clients never completed"));
    }
    // Gate 1: the crash happened, and only on the victim shard.
    if crashed_at_round == 0 {
        out.violations.push("armed panic never fired".into());
    }
    let foreign_deaths = faulted
        .events
        .iter()
        .filter(|e| {
            matches!(e.kind, FaultEventKind::Crashed | FaultEventKind::DeclaredDead)
                && e.shard as usize != victim
        })
        .count();
    if foreign_deaths > 0 {
        out.violations
            .push(format!("{foreign_deaths} fault events on non-victim shards"));
    }
    // Gate 2: zero healthy-connection disruption.
    if out.healthy_disrupted > 0 {
        out.violations.push(format!(
            "{} healthy clients disrupted by a foreign shard's crash",
            out.healthy_disrupted
        ));
    }
    // Gate 3: recovery per policy.
    if p.restart {
        if out.shard_restarts < 1 {
            out.violations.push("victim shard was never restarted".into());
        }
        if restarted_at_round == 0 || recovery_rounds > RECOVERY_ROUND_BOUND {
            out.violations.push(format!(
                "recovery took {recovery_rounds} rounds (bound {RECOVERY_ROUND_BOUND})"
            ));
        }
        if faulted.health[victim] != ShardHealth::Healthy {
            out.violations.push(format!(
                "victim shard not back in rotation: {:?}",
                faulted.health[victim]
            ));
        }
        if victims_completed != victims {
            out.violations.push(format!(
                "{} of {victims} victims never recovered via reconnect",
                victims - victims_completed
            ));
        }
    } else {
        if out.shard_restarts != 0 {
            out.violations
                .push(format!("{} restarts under a never policy", out.shard_restarts));
        }
        if faulted.health[victim] != ShardHealth::Failed {
            out.violations.push(format!(
                "no-restart victim must stay failed, is {:?}",
                faulted.health[victim]
            ));
        }
        let hung = faulted
            .clients
            .iter()
            .filter(|c| c.home == victim && !c.complete && c.first_error.is_none())
            .count();
        if hung > 0 {
            out.violations
                .push(format!("{hung} victims neither finished nor saw a typed error"));
        }
    }
    // Gate 4: budgets hold mid-failover. Sum of per-shard peaks bounds
    // the peak of the fleet sum, so the global check is conservative.
    for (i, &peak) in faulted.mem_peaks.iter().enumerate() {
        if peak > out.shard_budget {
            out.violations.push(format!(
                "shard {i} budget exceeded mid-failover: peak {peak} > {}",
                out.shard_budget
            ));
        }
    }
    if out.mem_peak_total > out.global_budget {
        out.violations.push(format!(
            "global budget exceeded mid-failover: peak sum {} > {}",
            out.mem_peak_total, out.global_budget
        ));
    }
    out
}

/// The mode-determinism cross-check: a threaded cell and its inline
/// reference must agree on every field except the mode label — crash,
/// restart, fault log, and all.
pub fn mode_cross_checks(outs: &[FailoverOutcome]) -> Vec<String> {
    let mut v = Vec::new();
    for t in outs.iter().filter(|o| o.mode == "threaded") {
        let Some(i) = outs.iter().find(|o| {
            o.mode == "inline"
                && o.stack == t.stack
                && o.policy == t.policy
                && o.shards == t.shards
                && o.n == t.n
                && o.seed == t.seed
        }) else {
            continue;
        };
        let strip = |o: &FailoverOutcome| {
            let mut c = o.clone();
            c.mode = "";
            outcome_json(&c)
        };
        if strip(t) != strip(i) {
            v.push(format!(
                "threaded failover diverged from inline reference at stack={} \
                 policy={} shards={} n={}:\n  threaded: {}\n  inline:   {}",
                t.stack,
                t.policy,
                t.shards,
                t.n,
                outcome_json(t),
                outcome_json(i)
            ));
        }
    }
    v
}

/// The sweep. Smoke: both stacks × both policies at n=32, shards=4, in
/// both execution modes (the pairs feed [`mode_cross_checks`]). Full:
/// both stacks × both policies × shards {2, 4, 8}, threaded, n=200 —
/// the blast-radius-vs-shard-count table.
pub fn sweep(smoke: bool) -> Vec<FailoverOutcome> {
    let stacks = [ScaleStack::Sub, ScaleStack::Mono];
    let mut outs = Vec::new();
    if smoke {
        for stack in stacks {
            for restart in [true, false] {
                for mode in [Mode::Threaded, Mode::Inline] {
                    outs.push(run_one(FailoverParams {
                        stack,
                        mode,
                        shards: 4,
                        n: 32,
                        seed: 1,
                        restart,
                    }));
                }
            }
        }
        return outs;
    }
    for &shards in &[2usize, 4, 8] {
        for stack in stacks {
            for restart in [true, false] {
                outs.push(run_one(FailoverParams {
                    stack,
                    mode: Mode::Threaded,
                    shards,
                    n: 200,
                    seed: 1,
                    restart,
                }));
            }
        }
    }
    outs
}

fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

fn json_arr(v: &[u64]) -> String {
    let items: Vec<String> = v.iter().map(u64::to_string).collect();
    format!("[{}]", items.join(","))
}

/// Deterministic, hand-rolled JSON for one outcome (stable field order,
/// integers only — byte-identical for identical seeds).
pub fn outcome_json(o: &FailoverOutcome) -> String {
    let viol: Vec<String> = o.violations.iter().map(|v| json_str(v)).collect();
    let events: Vec<String> = o.events.iter().map(|e| json_str(e)).collect();
    format!(
        "{{\"stack\":{},\"mode\":{},\"policy\":{},\"shards\":{},\"n\":{},\"seed\":{},\
         \"victim_shard\":{},\"crash_round\":{},\"crashed_at_round\":{},\
         \"restarted_at_round\":{},\"recovery_rounds\":{},\"victims\":{},\
         \"victims_completed\":{},\"victims_errored\":{},\"healthy\":{},\
         \"healthy_disrupted\":{},\"completed\":{},\"shard_restarts\":{},\
         \"failover_aborts\":{},\"ring_stalls\":{},\"dead_drops\":{},\
         \"final_health\":{},\"events\":[{}],\"mem_peak_worst_shard\":{},\
         \"mem_peak_total\":{},\"shard_budget\":{},\"global_budget\":{},\
         \"sim_ms\":{},\"violations\":[{}]}}",
        json_str(o.stack),
        json_str(o.mode),
        json_str(o.policy),
        o.shards,
        o.n,
        o.seed,
        o.victim_shard,
        o.crash_round,
        o.crashed_at_round,
        o.restarted_at_round,
        o.recovery_rounds,
        o.victims,
        o.victims_completed,
        o.victims_errored,
        o.healthy,
        o.healthy_disrupted,
        o.completed,
        o.shard_restarts,
        o.failover_aborts,
        o.ring_stalls,
        o.dead_drops,
        json_arr(&o.final_health),
        events.join(","),
        o.mem_peak_worst_shard,
        o.mem_peak_total,
        o.shard_budget,
        o.global_budget,
        o.sim_ms,
        viol.join(",")
    )
}

/// The whole sweep (plus the mode cross-checks) as one JSON document.
pub fn summary_json(outs: &[FailoverOutcome], cross: &[String]) -> String {
    let rows: Vec<String> = outs.iter().map(outcome_json).collect();
    let violations: usize =
        outs.iter().map(|o| o.violations.len()).sum::<usize>() + cross.len();
    let cross_rows: Vec<String> = cross.iter().map(|c| json_str(c)).collect();
    format!(
        "{{\"runs\":[\n  {}\n],\"mode_cross_checks\":[{}],\"total\":{},\"violations\":{}}}",
        rows.join(",\n  "),
        cross_rows.join(","),
        outs.len(),
        violations
    )
}
