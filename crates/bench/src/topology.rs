//! Topology campaigns: both stacks driven across the `netlayer` fabric —
//! multi-hop chains, a rerouting diamond, a fan-in bottleneck, a NAT that
//! restarts, and a long partition with no alternate path.
//!
//! Every run is gated by the StacKAT-flavored static forwarding check
//! ([`netlayer::BoxTopo::check`]): the primary tables must be fully
//! reachable and loop-free *before* any traffic flows, and profiles that
//! script an edge failure additionally require the post-failure tables to
//! be loop-free. Then the run is judged on universal invariants:
//!
//! 1. **terminal** — eventual delivery or a clean, typed abort on every
//!    stream; never a silent hang;
//! 2. **integrity** — each delivered stream is a prefix of exactly one
//!    client's pattern (fan-in misdelivery counts as corruption);
//! 3. **bounded retransmit memory** — the sender's retransmit queue stays
//!    under its cap (`RTX_BYTES_CAP` / `SND_BUF_CAP`) no matter how long
//!    a partition lasts;
//! 4. **no deadlock** — an aborted run leaves the simulator idle;
//!
//! plus per-profile expectations (reroutes observed, NAT abort + clean
//! reconnect, partition abort). Clients run with keepalive enabled, so
//! the reroute profiles double as the chaos pin for "keepalive must not
//! fire across an RTT step change" — mid-flow reroute onto a path an
//! order of magnitude slower must not abort the connection.
//!
//! Deterministic: the same seed produces a byte-identical JSON summary.

use netlayer::{
    box_host_addr, schedule_nat_wipe, topo_diamond, topo_fanin, topo_line3, topo_long_haul,
    topo_nat_gateway, BoxNet, BoxTopo, NatBox, NAT_INSIDE, NAT_OUTSIDE,
};
use netsim::{AdminOp, Dur, LinkParams, NodeId, SimNet, StackNode, Time, TransportError};
use slconform::driver::{ConformStack, Kind};
use slconform::multihop::mh_pattern;
use slconform::natcodec::{nat_codec, peek_for};
use sublayer_core::{KeepaliveConfig, SlConfig, SlTcpStack};
use tcp_mono::stack::{Keepalive, TcpStack};
use tcp_mono::wire::Endpoint;

/// How long (simulated) a campaign may run before we declare a hang. Must
/// cover the monolith's full RTO retry budget (~205 s) with headroom.
const PATIENCE: Dur = Dur(600_000_000_000);
/// Application drain granularity.
const TICK: Dur = Dur(50_000_000);
const SERVER_PORT: u16 = 80;

fn t(ms: u64) -> Time {
    Time::ZERO + Dur::from_millis(ms)
}

/// The six topology profiles of the standard sweep (five topologies).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TopoProfile {
    /// Baseline: bulk transfer across a two-hop chain.
    Line3Bulk,
    /// Primary path dies mid-transfer; backup is ~7x the RTT (ECMP-style
    /// reordering on the switch). Must complete, no spurious abort.
    DiamondReroute,
    /// Reroute, then the primary heals and traffic swings back.
    DiamondFlap,
    /// Three clients funnel through one rate-limited edge; all complete.
    FaninBottleneck,
    /// The NAT wipes its table mid-transfer: typed abort, then a fresh
    /// connection through the restarted NAT must work.
    NatRestart,
    /// The only path partitions and never heals: typed abort, retransmit
    /// memory bounded for the whole outage.
    LongHaulPartition,
}

impl TopoProfile {
    pub fn all() -> [TopoProfile; 6] {
        [
            TopoProfile::Line3Bulk,
            TopoProfile::DiamondReroute,
            TopoProfile::DiamondFlap,
            TopoProfile::FaninBottleneck,
            TopoProfile::NatRestart,
            TopoProfile::LongHaulPartition,
        ]
    }

    pub fn name(&self) -> &'static str {
        match self {
            TopoProfile::Line3Bulk => "line3-bulk",
            TopoProfile::DiamondReroute => "diamond-reroute",
            TopoProfile::DiamondFlap => "diamond-flap",
            TopoProfile::FaninBottleneck => "fanin-bottleneck",
            TopoProfile::NatRestart => "nat-restart",
            TopoProfile::LongHaulPartition => "long-haul-partition",
        }
    }

    pub fn topology(&self) -> BoxTopo {
        match self {
            TopoProfile::Line3Bulk => topo_line3(),
            TopoProfile::DiamondReroute | TopoProfile::DiamondFlap => topo_diamond(),
            TopoProfile::FaninBottleneck => topo_fanin(),
            TopoProfile::NatRestart => topo_nat_gateway(),
            TopoProfile::LongHaulPartition => topo_long_haul(),
        }
    }

    /// Edge scripted to fail mid-run, if any (static-gate target).
    fn failed_edge(&self) -> Option<usize> {
        match self {
            TopoProfile::DiamondReroute | TopoProfile::DiamondFlap => Some(0),
            TopoProfile::LongHaulPartition => Some(1),
            _ => None,
        }
    }

    fn payload_len(&self) -> usize {
        match self {
            TopoProfile::Line3Bulk => 500_000,
            TopoProfile::DiamondReroute => 1_000_000,
            TopoProfile::DiamondFlap => 1_500_000,
            TopoProfile::FaninBottleneck => 150_000,
            TopoProfile::NatRestart | TopoProfile::LongHaulPartition => 2_000_000,
        }
    }

    fn streams(&self) -> usize {
        match self {
            TopoProfile::FaninBottleneck => 3,
            _ => 1,
        }
    }

    /// Client access-link parameters. Profiles whose event must land
    /// mid-transfer are rate-limited so the payload is still in flight.
    fn access(&self) -> LinkParams {
        let base = LinkParams::delay_only(Dur::from_millis(1));
        match self {
            TopoProfile::Line3Bulk | TopoProfile::FaninBottleneck => base,
            _ => base.with_rate(4_000_000),
        }
    }

    /// Must this profile end in a typed abort (rather than delivery)?
    fn expect_abort(&self) -> bool {
        matches!(self, TopoProfile::NatRestart | TopoProfile::LongHaulPartition)
    }
}

/// One campaign's result plus any invariant violations.
#[derive(Clone, Debug)]
pub struct TopoOutcome {
    pub profile: &'static str,
    pub topology: &'static str,
    pub stack: &'static str,
    pub seed: u64,
    /// Per-stream payload length.
    pub payload: usize,
    /// Per-stream bytes delivered at the server, stream-order.
    pub delivered: Vec<usize>,
    pub complete: bool,
    pub client_errors: Vec<Option<TransportError>>,
    /// `nat-restart` only: the post-abort reconnect delivered its bytes.
    pub reconnect_ok: Option<bool>,
    /// Router table installs after build (reroutes + heals).
    pub reroutes: u64,
    /// Largest retransmit-queue footprint any client ever held.
    pub max_rtx: usize,
    pub sim_ms: u64,
    /// The static forwarding gate passed (primary ok; failure loop-free).
    pub static_check: bool,
    pub violations: Vec<String>,
}

impl TopoOutcome {
    pub fn ok(&self) -> bool {
        self.violations.is_empty()
    }
}

/// Per-stack retransmit-memory bound: the cap plus one MSS of slack (a
/// segment may straddle the admission check).
fn rtx_cap(kind: Kind) -> usize {
    match kind {
        Kind::Sub => sublayer_core::rd::RTX_BYTES_CAP + 1_500,
        Kind::Mono => tcp_mono::stack::SND_BUF_CAP,
    }
}

/// [`ConformStack`] constructors with client keepalive (10 s / 2 s / x5)
/// — the campaign runs every client with keepalive armed so the reroute
/// profiles pin "keepalive defers while data is in flight" under a live
/// RTT step, not just a two-party partition.
pub trait TopoStack: ConformStack {
    fn mk_keepalive(addr: u32) -> Self;
}

impl TopoStack for SlTcpStack {
    fn mk_keepalive(addr: u32) -> Self {
        let cfg = SlConfig {
            keepalive: Some(KeepaliveConfig {
                idle: Dur::from_secs(10),
                interval: Dur::from_secs(2),
                max_probes: 5,
            }),
            ..SlConfig::default()
        };
        SlTcpStack::new(addr, cfg, slmetrics::shared())
    }
}

impl TopoStack for TcpStack {
    fn mk_keepalive(addr: u32) -> Self {
        let mut s = TcpStack::new(addr, slmetrics::shared());
        s.set_keepalive(Keepalive {
            idle: Dur::from_secs(10),
            interval: Dur::from_secs(2),
            max_probes: 5,
        });
        s
    }
}

/// Run one `(profile, stack, seed)` campaign and judge its invariants.
pub fn run_campaign(profile: TopoProfile, kind: Kind, seed: u64) -> TopoOutcome {
    match kind {
        Kind::Sub => run_t::<SlTcpStack>(profile, seed),
        Kind::Mono => run_t::<TcpStack>(profile, seed),
    }
}

struct DriveOut {
    got: Vec<Vec<u8>>,
    max_rtx: usize,
    client_errors: Vec<Option<TransportError>>,
}

fn stack_mut<H: TopoStack>(net: &mut SimNet, id: NodeId) -> &mut H {
    &mut net.node_mut::<StackNode<H>>(id).stack
}

/// Feed each client its unsent tail, drain the server, track the largest
/// retransmit queue, step the clock. Stops on full delivery or when every
/// client carries a terminal error (plus a settle window).
fn drive<H: TopoStack>(
    net: &mut SimNet,
    clients: &[(NodeId, H::ConnId)],
    payloads: &[Vec<u8>],
    server: NodeId,
    sconns: &mut [Option<H::ConnId>],
) -> DriveOut {
    let deadline = net.now() + PATIENCE;
    let mut sent = vec![0usize; clients.len()];
    let mut got = vec![Vec::new(); clients.len()];
    let mut max_rtx = 0usize;
    while net.now() < deadline {
        let step = net.now() + TICK;
        net.run_until(step);
        for (i, &(node, conn)) in clients.iter().enumerate() {
            let st = stack_mut::<H>(net, node);
            if sent[i] < payloads[i].len() {
                sent[i] += st.send(conn, &payloads[i][sent[i]..]);
            }
            max_rtx = max_rtx.max(st.conn_rtx_bytes(conn));
        }
        {
            let st = stack_mut::<H>(net, server);
            for id in st.established() {
                if !sconns.contains(&Some(id)) {
                    if let Some(slot) = sconns.iter_mut().find(|s| s.is_none()) {
                        *slot = Some(id);
                    }
                }
            }
            for (i, s) in sconns.iter().enumerate() {
                if let Some(id) = *s {
                    got[i].extend(st.recv(id));
                }
            }
        }
        net.poll_all();
        let done: usize = got.iter().map(Vec::len).sum();
        let want: usize = payloads.iter().map(Vec::len).sum();
        if done >= want {
            break;
        }
        let all_dead = clients
            .iter()
            .all(|&(node, conn)| stack_mut::<H>(net, node).conn_error(conn).is_some());
        if all_dead {
            // A clean abort must leave nothing spinning afterwards.
            let settle = net.now() + Dur::from_secs(60);
            net.run_until(settle);
            break;
        }
    }
    let client_errors = clients
        .iter()
        .map(|&(node, conn)| stack_mut::<H>(net, node).conn_error(conn))
        .collect();
    DriveOut { got, max_rtx, client_errors }
}

/// Check every delivered stream is an intact prefix of exactly one client
/// pattern; return delivered counts in stream order. Shared with the
/// fairness campaign ([`crate::fairness`]), whose fan-in runs need the
/// same misdelivery detection.
pub(crate) fn attribute(
    got: &[Vec<u8>],
    payloads: &[Vec<u8>],
    violations: &mut Vec<String>,
) -> Vec<usize> {
    let mut delivered = vec![0usize; payloads.len()];
    let mut claimed = vec![false; payloads.len()];
    for (slot, bytes) in got.iter().enumerate() {
        if bytes.is_empty() {
            continue;
        }
        let hit = payloads.iter().enumerate().position(|(i, p)| {
            !claimed[i] && bytes.len() <= p.len() && p[..bytes.len()] == bytes[..]
        });
        match hit {
            Some(i) => {
                claimed[i] = true;
                delivered[i] = bytes.len();
            }
            None => violations.push(format!(
                "integrity: server stream {slot} ({} bytes) matches no client pattern",
                bytes.len()
            )),
        }
    }
    delivered
}

fn run_t<H: TopoStack>(profile: TopoProfile, seed: u64) -> TopoOutcome {
    let topo = profile.topology();
    let topo_name = topo.name;

    // The static gate: primary tables fully reachable and loop-free, and
    // — for profiles that script a failure — the post-failure tables at
    // least loop-free. A gate failure is itself a violation; traffic
    // still runs so the dynamic behavior is on record.
    let mut static_check = topo.check(&[]).ok();
    if let Some(e) = profile.failed_edge() {
        static_check &= topo.check(&[e]).loop_free();
    }

    let mut net = SimNet::new(seed);
    let bn: BoxNet = topo.build(&mut net, peek_for(H::KIND));
    let n_streams = profile.streams();
    let server_site = bn.topo.hosts.len() - 1;
    let saddr = box_host_addr(server_site);

    let mut server = H::mk(saddr);
    server.listen(SERVER_PORT);

    // Clients occupy the leading host sites; the NAT profile's client
    // lives on a private address behind the NatBox at site 0.
    let mut clients: Vec<(NodeId, H::ConnId)> = Vec::new();
    let mut nat_node = None;
    for i in 0..n_streams {
        let addr = if profile == TopoProfile::NatRestart { 0xC0A8_0001 } else { box_host_addr(i) };
        let mut c = H::mk_keepalive(addr);
        let conn = c
            .try_connect(Time::ZERO, 5000 + i as u16, Endpoint::new(saddr, SERVER_PORT))
            .expect("client connect");
        let id = net.add_node(Box::new(StackNode::new(c)));
        let (router, port) = bn.host_ports[i];
        if profile == TopoProfile::NatRestart {
            let nat = net.add_node(Box::new(
                NatBox::new(nat_codec(H::KIND), box_host_addr(0)).rst_on_unknown(),
            ));
            net.connect(id, 0, nat, NAT_INSIDE, profile.access());
            net.connect(nat, NAT_OUTSIDE, router, port, LinkParams::delay_only(Dur::from_millis(1)));
            nat_node = Some(nat);
        } else {
            net.connect(id, 0, router, port, profile.access());
        }
        clients.push((id, conn));
    }
    let ns = {
        let id = net.add_node(Box::new(StackNode::new(server)));
        let (router, port) = bn.host_ports[server_site];
        net.connect(id, 0, router, port, LinkParams::delay_only(Dur::from_millis(1)));
        id
    };

    // The profile's fault schedule.
    match profile {
        TopoProfile::DiamondReroute => {
            bn.schedule_reroute(&mut net, 0, t(1_500), Dur::from_millis(50));
        }
        TopoProfile::DiamondFlap => {
            bn.schedule_reroute(&mut net, 0, t(1_500), Dur::from_millis(50));
            bn.schedule_heal(&mut net, 0, t(4_000), Dur::from_millis(50));
        }
        TopoProfile::NatRestart => {
            schedule_nat_wipe(&mut net, nat_node.unwrap(), t(2_000));
        }
        TopoProfile::LongHaulPartition => {
            net.schedule_admin(t(2_000), AdminOp::LinkDown(bn.edge_links[1]));
        }
        TopoProfile::Line3Bulk | TopoProfile::FaninBottleneck => {}
    }
    net.poll_all();

    let payloads: Vec<Vec<u8>> =
        (0..n_streams).map(|i| mh_pattern(i, profile.payload_len())).collect();
    let mut sconns: Vec<Option<H::ConnId>> = vec![None; n_streams];
    let d = drive::<H>(&mut net, &clients, &payloads, ns, &mut sconns);
    let idle = net.is_idle();

    let mut out = TopoOutcome {
        profile: profile.name(),
        topology: topo_name,
        stack: H::KIND.label(),
        seed,
        payload: profile.payload_len(),
        delivered: Vec::new(),
        complete: false,
        client_errors: d.client_errors,
        reconnect_ok: None,
        reroutes: bn.router_stats(&mut net, |s| s.reroutes),
        max_rtx: d.max_rtx,
        sim_ms: net.now().since(Time::ZERO).0 / 1_000_000,
        static_check,
        violations: Vec::new(),
    };
    out.delivered = attribute(&d.got, &payloads, &mut out.violations);
    out.complete = out.delivered.iter().all(|&b| b >= out.payload);

    // nat-restart second act: a fresh connection through the restarted
    // NAT must establish and deliver (reconnect-or-typed-abort).
    if profile == TopoProfile::NatRestart {
        out.reconnect_ok = Some(reconnect::<H>(&mut net, clients[0].0, ns, saddr, &sconns));
        out.sim_ms = net.now().since(Time::ZERO).0 / 1_000_000;
    }

    check_universal::<H>(profile, &mut out, idle);
    out
}

/// Open a second connection from the (aborted) client and push 10 KB.
fn reconnect<H: TopoStack>(
    net: &mut SimNet,
    nc: NodeId,
    ns: NodeId,
    saddr: u32,
    taken: &[Option<H::ConnId>],
) -> bool {
    let now = net.now();
    let payload = mh_pattern(7, 10_000);
    let Ok(conn) = stack_mut::<H>(net, nc).try_connect(now, 5001, Endpoint::new(saddr, SERVER_PORT))
    else {
        return false;
    };
    net.poll_all();
    let mut sent = 0usize;
    let mut got: Vec<u8> = Vec::new();
    let mut sconn: Option<H::ConnId> = None;
    let deadline = net.now() + Dur::from_secs(30);
    while net.now() < deadline && got.len() < payload.len() {
        let step = net.now() + TICK;
        net.run_until(step);
        if sent < payload.len() {
            sent += stack_mut::<H>(net, nc).send(conn, &payload[sent..]);
        }
        {
            let st = stack_mut::<H>(net, ns);
            if sconn.is_none() {
                sconn = st.established().into_iter().find(|id| !taken.contains(&Some(*id)));
            }
            if let Some(id) = sconn {
                got.extend(st.recv(id));
            }
        }
        net.poll_all();
    }
    got == payload
}

/// Universal invariants plus the profile's expectation.
fn check_universal<H: TopoStack>(profile: TopoProfile, out: &mut TopoOutcome, idle: bool) {
    if !out.static_check {
        out.violations.push("static gate: forwarding check failed".into());
    }
    let all_aborted = out.client_errors.iter().all(Option::is_some);
    let any_aborted = out.client_errors.iter().any(Option::is_some);
    if !out.complete && !all_aborted {
        out.violations.push("hung: neither delivered nor aborted within patience".into());
    }
    let cap = rtx_cap(H::KIND);
    if out.max_rtx > cap {
        out.violations
            .push(format!("unbounded rtx memory: {} bytes > cap {}", out.max_rtx, cap));
    }
    if any_aborted && !out.complete && !idle {
        out.violations.push("deadlock: simulator still busy after abort".into());
    }
    if profile.expect_abort() {
        if out.complete {
            out.violations.push("expected abort but delivered".into());
        }
        if !all_aborted {
            out.violations.push(format!(
                "expected typed aborts, got {:?}",
                out.client_errors
            ));
        }
    } else {
        if !out.complete {
            out.violations.push(format!(
                "expected delivery, got {:?}/{} (errors {:?})",
                out.delivered, out.payload, out.client_errors
            ));
        }
        if any_aborted {
            out.violations
                .push(format!("spurious abort: {:?}", out.client_errors));
        }
    }
    match profile {
        TopoProfile::DiamondReroute if out.reroutes < 1 => {
            out.violations.push("no router installed a backup table".into());
        }
        TopoProfile::DiamondFlap if out.reroutes < 2 => {
            out.violations
                .push(format!("expected reroute + heal installs, saw {}", out.reroutes));
        }
        TopoProfile::NatRestart if out.reconnect_ok != Some(true) => {
            out.violations.push("post-abort reconnect failed".into());
        }
        _ => {}
    }
}

pub(crate) fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

fn json_err(e: &Option<TransportError>) -> String {
    match e {
        None => "null".into(),
        Some(e) => json_str(&format!("{e:?}")),
    }
}

/// Deterministic, hand-rolled JSON for one outcome (stable field order —
/// byte-identical for identical seeds).
pub fn outcome_json(o: &TopoOutcome) -> String {
    let delivered: Vec<String> = o.delivered.iter().map(|d| d.to_string()).collect();
    let errs: Vec<String> = o.client_errors.iter().map(json_err).collect();
    let viol: Vec<String> = o.violations.iter().map(|v| json_str(v)).collect();
    let reconnect = match o.reconnect_ok {
        None => "null".to_string(),
        Some(b) => b.to_string(),
    };
    format!(
        "{{\"profile\":{},\"topology\":{},\"stack\":{},\"seed\":{},\"payload\":{},\
         \"delivered\":[{}],\"complete\":{},\"client_errors\":[{}],\"reconnect_ok\":{},\
         \"reroutes\":{},\"max_rtx\":{},\"sim_ms\":{},\"static_check\":{},\"violations\":[{}]}}",
        json_str(o.profile),
        json_str(o.topology),
        json_str(o.stack),
        o.seed,
        o.payload,
        delivered.join(","),
        o.complete,
        errs.join(","),
        reconnect,
        o.reroutes,
        o.max_rtx,
        o.sim_ms,
        o.static_check,
        viol.join(",")
    )
}

/// The whole sweep as one JSON document.
pub fn summary_json(outs: &[TopoOutcome]) -> String {
    let rows: Vec<String> = outs.iter().map(outcome_json).collect();
    let violations: usize = outs.iter().map(|o| o.violations.len()).sum();
    format!(
        "{{\"campaigns\":[\n  {}\n],\"total\":{},\"violations\":{}}}",
        rows.join(",\n  "),
        outs.len(),
        violations
    )
}

/// Run `profiles x stacks x seeds` in a fixed order (profile-major).
pub fn run_sweep(profiles: &[TopoProfile], kinds: &[Kind], seeds: &[u64]) -> Vec<TopoOutcome> {
    let mut outs = Vec::new();
    for &p in profiles {
        for &k in kinds {
            for &seed in seeds {
                outs.push(run_campaign(p, k, seed));
            }
        }
    }
    outs
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reroute_rtt_step_does_not_trip_keepalive() {
        // The chaos pin for the keepalive satellite: a mid-flow reroute
        // onto a 7x-slower path, with client keepalive armed, must
        // complete without any abort — on both stacks.
        for kind in [Kind::Sub, Kind::Mono] {
            let out = run_campaign(TopoProfile::DiamondReroute, kind, 1);
            assert!(out.ok(), "{}: {:?}", out.stack, out.violations);
        }
    }

    #[test]
    fn long_partition_aborts_with_bounded_memory() {
        for kind in [Kind::Sub, Kind::Mono] {
            let out = run_campaign(TopoProfile::LongHaulPartition, kind, 1);
            assert!(out.ok(), "{}: {:?}", out.stack, out.violations);
            assert!(out.max_rtx > 0, "rtx footprint was tracked");
        }
    }

    #[test]
    fn nat_restart_aborts_then_reconnects() {
        for kind in [Kind::Sub, Kind::Mono] {
            let out = run_campaign(TopoProfile::NatRestart, kind, 1);
            assert!(out.ok(), "{}: {:?}", out.stack, out.violations);
            assert_eq!(out.reconnect_ok, Some(true));
        }
    }

    #[test]
    fn every_shipped_topology_passes_the_static_gate() {
        for topo in netlayer::shipped_topologies() {
            let report = topo.check(&[]);
            assert!(report.ok(), "{}: {:?}", topo.name, report.defects);
            for e in 0..topo.edges.len() {
                let post = topo.check(&[e]);
                assert!(
                    post.loop_free(),
                    "{} loses loop-freedom when edge {e} fails: {:?}",
                    topo.name,
                    post.defects
                );
            }
        }
    }
}
