//! Chaos campaigns: adversarial fault schedules soaked against both the
//! sublayered and the monolithic stack.
//!
//! Each campaign is `(fault profile, stack, seed)`. The runner drives a
//! bulk transfer while the schedule injects bursts, partitions, flaps,
//! throttling and jitter, then checks the robustness invariants the
//! chaos harness exists to enforce:
//!
//! 1. **terminal** — the run ends in eventual delivery *or* a clean,
//!    surfaced abort ([`netsim::TransportError`]); never a silent hang;
//! 2. **integrity** — every byte delivered is the right byte;
//! 3. **bounded retransmits** — the wire carries at most a small multiple
//!    of the ideal frame count;
//! 4. **no deadlock** — after an abort, no timer keeps the simulator
//!    spinning;
//! 5. **expectation** — profiles designed to kill the connection abort on
//!    *both* sides, profiles designed to be survivable deliver.
//!
//! Everything is driven by the deterministic simulator: the same seed
//! produces a byte-identical JSON summary, which CI exploits.

use netsim::{
    two_party, AdminOp, BurstLoss, Dur, FaultProfile, LinkParams, StackNode, Time,
    TransportError,
};
use sublayer_core::{CmState, KeepaliveConfig, SlConfig, SlTcpStack};
use tcp_mono::stack::{Keepalive, TcpStack};
use tcp_mono::pcb::TcpState;
use tcp_mono::wire::Endpoint;

use crate::{A, B};

/// How long (simulated) a campaign may run before we declare a hang.
const PATIENCE: Dur = Dur(600_000_000_000);
/// Application drain granularity.
const STEP: Dur = Dur(250_000_000);

/// The five adversarial fault profiles of the standard sweep.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ChaosProfile {
    /// Gilbert–Elliott correlated burst loss.
    BurstLoss,
    /// Repeated short link outages on a slow link.
    FlappyLink,
    /// The link dies shortly after the transfer starts and never heals.
    Blackout,
    /// Bandwidth collapses to a trickle mid-transfer, plus jitter.
    ThrottleJitter,
    /// Loss + corruption + duplication + reordering + jitter at once.
    MixedMayhem,
}

impl ChaosProfile {
    pub fn all() -> [ChaosProfile; 5] {
        [
            ChaosProfile::BurstLoss,
            ChaosProfile::FlappyLink,
            ChaosProfile::Blackout,
            ChaosProfile::ThrottleJitter,
            ChaosProfile::MixedMayhem,
        ]
    }

    pub fn name(&self) -> &'static str {
        match self {
            ChaosProfile::BurstLoss => "burst-loss",
            ChaosProfile::FlappyLink => "flappy-link",
            ChaosProfile::Blackout => "blackout",
            ChaosProfile::ThrottleJitter => "throttle-jitter",
            ChaosProfile::MixedMayhem => "mixed-mayhem",
        }
    }

    /// Must this profile end in an abort (rather than delivery)?
    pub fn expect_abort(&self) -> bool {
        matches!(self, ChaosProfile::Blackout)
    }

    pub fn payload_len(&self) -> usize {
        match self {
            ChaosProfile::BurstLoss => 150_000,
            ChaosProfile::FlappyLink => 400_000,
            ChaosProfile::Blackout => 200_000,
            ChaosProfile::ThrottleJitter => 300_000,
            ChaosProfile::MixedMayhem => 150_000,
        }
    }

    pub fn link_params(&self) -> LinkParams {
        let base = LinkParams::delay_only(Dur::from_millis(10));
        match self {
            ChaosProfile::BurstLoss => base.with_rate(20_000_000).with_fault(
                FaultProfile::none().with_burst(BurstLoss::gilbert(0.02, 0.3, 0.9)),
            ),
            // Slow enough that the transfer spans several flap cycles.
            ChaosProfile::FlappyLink => base.with_rate(1_000_000),
            ChaosProfile::Blackout => base.with_rate(20_000_000),
            ChaosProfile::ThrottleJitter => base
                .with_rate(20_000_000)
                .with_fault(FaultProfile::none().with_jitter(Dur::from_millis(3))),
            ChaosProfile::MixedMayhem => base.with_rate(20_000_000).with_fault(
                FaultProfile::lossy(0.05)
                    .with_corrupt(0.02)
                    .with_duplicate(0.05)
                    .with_reorder(0.10, Dur::from_millis(15))
                    .with_jitter(Dur::from_millis(2)),
            ),
        }
    }

    /// The profile's admin-op schedule. The transfer is queued at t=1 s,
    /// so schedules begin shortly after.
    pub fn admin_ops(&self) -> Vec<(Time, AdminOp)> {
        let t = |ms: u64| Time::ZERO + Dur::from_millis(ms);
        match self {
            ChaosProfile::BurstLoss | ChaosProfile::MixedMayhem => Vec::new(),
            ChaosProfile::FlappyLink => {
                // 4 cycles of 2 s down / 2 s up starting at t=1.1 s.
                let mut ops = Vec::new();
                for i in 0..4u64 {
                    ops.push((t(1_100 + 4_000 * i), AdminOp::LinkDown(0)));
                    ops.push((t(3_100 + 4_000 * i), AdminOp::LinkUp(0)));
                }
                ops
            }
            ChaosProfile::Blackout => vec![(t(1_050), AdminOp::LinkDown(0))],
            ChaosProfile::ThrottleJitter => vec![
                (t(1_050), AdminOp::SetRate(0, 64_000)),
                (t(20_000), AdminOp::SetRate(0, 20_000_000)),
            ],
        }
    }
}

/// Which transport a campaign exercises.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ChaosStack {
    Mono,
    Sub,
}

impl ChaosStack {
    pub fn all() -> [ChaosStack; 2] {
        [ChaosStack::Mono, ChaosStack::Sub]
    }

    pub fn name(&self) -> &'static str {
        match self {
            ChaosStack::Mono => "mono",
            ChaosStack::Sub => "sub",
        }
    }
}

/// One campaign's result plus any invariant violations.
#[derive(Clone, Debug)]
pub struct CampaignOutcome {
    pub profile: &'static str,
    pub stack: &'static str,
    pub seed: u64,
    pub payload: usize,
    pub delivered: usize,
    pub complete: bool,
    pub client_error: Option<TransportError>,
    pub server_error: Option<TransportError>,
    pub sim_ms: u64,
    pub wire_frames: u64,
    pub partition_drops: u64,
    pub violations: Vec<String>,
}

impl CampaignOutcome {
    pub fn ok(&self) -> bool {
        self.violations.is_empty()
    }
}

fn keepalive_mono() -> Keepalive {
    Keepalive {
        idle: Dur::from_secs(10),
        interval: Dur::from_secs(2),
        max_probes: 5,
    }
}

fn keepalive_sub() -> KeepaliveConfig {
    KeepaliveConfig {
        idle: Dur::from_secs(10),
        interval: Dur::from_secs(2),
        max_probes: 5,
    }
}

/// Run one `(profile, stack, seed)` campaign and judge its invariants.
pub fn run_campaign(profile: ChaosProfile, stack: ChaosStack, seed: u64) -> CampaignOutcome {
    let payload: Vec<u8> = (0..profile.payload_len())
        .map(|i| (i % 251) as u8)
        .collect();
    let out = run_raw(
        stack,
        seed,
        &payload,
        profile.link_params(),
        &profile.admin_ops(),
        profile.name(),
    );
    judge(profile, out)
}

/// Run an arbitrary campaign (any payload, link, admin schedule) without
/// profile-expectation judging — the raw material for property tests.
/// Only the universal invariants (hang, integrity, bounded retransmits,
/// post-abort idleness) are checked.
pub fn run_raw(
    stack: ChaosStack,
    seed: u64,
    payload: &[u8],
    params: LinkParams,
    ops: &[(Time, AdminOp)],
    name: &'static str,
) -> CampaignOutcome {
    match stack {
        ChaosStack::Mono => run_mono(seed, payload, params, ops, name),
        ChaosStack::Sub => run_sub(seed, payload, params, ops, name),
    }
}

/// Universal invariants, checked by every runner regardless of profile.
fn check_universal(out: &mut CampaignOutcome, idle: bool, got: &[u8], payload: &[u8]) {
    let aborted = out.client_error.is_some();
    if !out.complete && !aborted {
        out.violations
            .push("hung: neither delivered nor aborted within patience".into());
    }
    if got != &payload[..got.len().min(payload.len())] || got.len() > payload.len() {
        out.violations.push("integrity: delivered bytes differ".into());
    }
    let bound = (out.payload as u64 / 1_000) * 10 + 5_000;
    if out.wire_frames > bound {
        out.violations.push(format!(
            "unbounded retransmits: {} wire frames > {}",
            out.wire_frames, bound
        ));
    }
    if aborted && !out.complete && !idle {
        out.violations
            .push("deadlock: simulator still busy after abort".into());
    }
}

/// Profile-expectation judging on top of the universal checks.
fn judge(profile: ChaosProfile, mut out: CampaignOutcome) -> CampaignOutcome {
    if profile.expect_abort() {
        if out.complete {
            out.violations.push("expected abort but delivered".into());
        }
        if out.client_error.is_none() || out.server_error.is_none() {
            out.violations.push(format!(
                "expected surfaced aborts on both sides, got client={:?} server={:?}",
                out.client_error, out.server_error
            ));
        }
    } else if !out.complete {
        out.violations.push(format!(
            "expected delivery, got {}/{} (client={:?})",
            out.delivered, out.payload, out.client_error
        ));
    }
    out
}

fn run_mono(
    seed: u64,
    payload: &[u8],
    params: LinkParams,
    ops: &[(Time, AdminOp)],
    name: &'static str,
) -> CampaignOutcome {
    let mut c = TcpStack::new(A, slmetrics::shared());
    let mut s = TcpStack::new(B, slmetrics::shared());
    c.set_keepalive(keepalive_mono());
    s.set_keepalive(keepalive_mono());
    s.listen(80);
    let conn = c.connect(Time::ZERO, 5000, Endpoint::new(B, 80));
    let (mut net, nc, ns) = two_party(seed, c, s, params);
    for (at, op) in ops {
        net.schedule_admin(*at, op.clone());
    }
    net.poll_all();
    net.run_until(Time::ZERO + Dur::from_secs(1));
    // The app streams: offer the unsent tail every tick, so a handshake
    // delayed past t=1s (or a full send buffer) only defers the data.
    let mut sent = net.node_mut::<StackNode<TcpStack>>(nc).stack.send(conn, payload);
    net.poll_all();

    let deadline = net.now() + PATIENCE;
    let mut got: Vec<u8> = Vec::new();
    let mut sconn = None;
    while net.now() < deadline {
        let step = net.now() + STEP;
        net.run_until(step);
        if sent < payload.len() {
            sent += net
                .node_mut::<StackNode<TcpStack>>(nc)
                .stack
                .send(conn, &payload[sent..]);
        }
        {
            let st = &mut net.node_mut::<StackNode<TcpStack>>(ns).stack;
            if sconn.is_none() {
                sconn = st.established().first().copied();
            }
            if let Some(t) = sconn {
                got.extend(st.recv(t));
            }
        }
        net.poll_all();
        if got.len() >= payload.len() {
            break;
        }
        let client = &net.node::<StackNode<TcpStack>>(nc).stack;
        let client_dead = client.state(conn) == TcpState::Closed;
        let server_dead = sconn
            .is_some_and(|t| net.node::<StackNode<TcpStack>>(ns).stack.state(t) == TcpState::Closed);
        if client_dead && server_dead {
            break;
        }
    }

    let sim_ms = net.now().since(Time::ZERO).0 / 1_000_000;
    let complete = got.len() >= payload.len();
    if !complete {
        // Let the far side finish dying and the admin backlog drain; a
        // clean abort must leave nothing spinning afterwards.
        let settle = net.now() + Dur::from_secs(120);
        net.run_until(settle);
    }
    let idle = net.is_idle();
    let d0 = net.link_dir_stats(0, 0);
    let d1 = net.link_dir_stats(0, 1);
    let wire_frames = d0.tx_frames + d1.tx_frames;
    let partition_drops = d0.partition_drops + d1.partition_drops;
    let client_error = net.node::<StackNode<TcpStack>>(nc).stack.conn_error(conn);
    let server_error =
        sconn.and_then(|t| net.node::<StackNode<TcpStack>>(ns).stack.conn_error(t));
    let mut out = CampaignOutcome {
        profile: name,
        stack: ChaosStack::Mono.name(),
        seed,
        payload: payload.len(),
        delivered: got.len(),
        complete,
        client_error,
        server_error,
        sim_ms,
        wire_frames,
        partition_drops,
        violations: Vec::new(),
    };
    check_universal(&mut out, idle, &got, payload);
    out
}

fn run_sub(
    seed: u64,
    payload: &[u8],
    params: LinkParams,
    ops: &[(Time, AdminOp)],
    name: &'static str,
) -> CampaignOutcome {
    let cfg = SlConfig {
        keepalive: Some(keepalive_sub()),
        ..SlConfig::default()
    };
    let mut c = SlTcpStack::new(A, cfg.clone(), slmetrics::shared());
    let mut s = SlTcpStack::new(B, cfg, slmetrics::shared());
    s.listen(80);
    let conn = c.connect(Time::ZERO, 5000, Endpoint::new(B, 80));
    let (mut net, nc, ns) = two_party(seed, c, s, params);
    for (at, op) in ops {
        net.schedule_admin(*at, op.clone());
    }
    net.poll_all();
    net.run_until(Time::ZERO + Dur::from_secs(1));
    // Stream like the mono runner: offer the unsent tail every tick.
    let mut sent = net.node_mut::<StackNode<SlTcpStack>>(nc).stack.send(conn, payload);
    net.poll_all();

    let deadline = net.now() + PATIENCE;
    let mut got: Vec<u8> = Vec::new();
    let mut sconn = None;
    while net.now() < deadline {
        let step = net.now() + STEP;
        net.run_until(step);
        if sent < payload.len() {
            sent += net
                .node_mut::<StackNode<SlTcpStack>>(nc)
                .stack
                .send(conn, &payload[sent..]);
        }
        {
            let st = &mut net.node_mut::<StackNode<SlTcpStack>>(ns).stack;
            if sconn.is_none() {
                sconn = st.established().first().copied();
            }
            if let Some(id) = sconn {
                got.extend(st.recv(id));
            }
        }
        net.poll_all();
        if got.len() >= payload.len() {
            break;
        }
        let client_dead =
            net.node::<StackNode<SlTcpStack>>(nc).stack.state(conn) == CmState::Closed;
        let server_dead = sconn.is_some_and(|id| {
            net.node::<StackNode<SlTcpStack>>(ns).stack.state(id) == CmState::Closed
        });
        if client_dead && server_dead {
            break;
        }
    }

    let sim_ms = net.now().since(Time::ZERO).0 / 1_000_000;
    let complete = got.len() >= payload.len();
    if !complete {
        let settle = net.now() + Dur::from_secs(120);
        net.run_until(settle);
    }
    let idle = net.is_idle();
    let d0 = net.link_dir_stats(0, 0);
    let d1 = net.link_dir_stats(0, 1);
    let wire_frames = d0.tx_frames + d1.tx_frames;
    let partition_drops = d0.partition_drops + d1.partition_drops;
    let client_error = net.node::<StackNode<SlTcpStack>>(nc).stack.conn_error(conn);
    let server_error =
        sconn.and_then(|id| net.node::<StackNode<SlTcpStack>>(ns).stack.conn_error(id));
    let mut out = CampaignOutcome {
        profile: name,
        stack: ChaosStack::Sub.name(),
        seed,
        payload: payload.len(),
        delivered: got.len(),
        complete,
        client_error,
        server_error,
        sim_ms,
        wire_frames,
        partition_drops,
        violations: Vec::new(),
    };
    check_universal(&mut out, idle, &got, payload);
    out
}

fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

fn json_err(e: Option<TransportError>) -> String {
    match e {
        None => "null".into(),
        Some(e) => json_str(&format!("{e:?}")),
    }
}

/// Deterministic, hand-rolled JSON for one outcome (stable field order,
/// integers only — byte-identical for identical seeds).
pub fn outcome_json(o: &CampaignOutcome) -> String {
    let viol: Vec<String> = o.violations.iter().map(|v| json_str(v)).collect();
    format!(
        "{{\"profile\":{},\"stack\":{},\"seed\":{},\"payload\":{},\"delivered\":{},\
         \"complete\":{},\"client_error\":{},\"server_error\":{},\"sim_ms\":{},\
         \"wire_frames\":{},\"partition_drops\":{},\"violations\":[{}]}}",
        json_str(o.profile),
        json_str(o.stack),
        o.seed,
        o.payload,
        o.delivered,
        o.complete,
        json_err(o.client_error),
        json_err(o.server_error),
        o.sim_ms,
        o.wire_frames,
        o.partition_drops,
        viol.join(",")
    )
}

/// The whole sweep as one JSON document.
pub fn summary_json(outs: &[CampaignOutcome]) -> String {
    let rows: Vec<String> = outs.iter().map(outcome_json).collect();
    let violations: usize = outs.iter().map(|o| o.violations.len()).sum();
    format!(
        "{{\"campaigns\":[\n  {}\n],\"total\":{},\"violations\":{}}}",
        rows.join(",\n  "),
        outs.len(),
        violations
    )
}

/// Run `profiles x stacks x seeds` and return every outcome in a fixed
/// order (profile-major, then stack, then seed).
pub fn run_sweep(
    profiles: &[ChaosProfile],
    stacks: &[ChaosStack],
    seeds: &[u64],
) -> Vec<CampaignOutcome> {
    let mut outs = Vec::new();
    for &p in profiles {
        for &s in stacks {
            for &seed in seeds {
                outs.push(run_campaign(p, s, seed));
            }
        }
    }
    outs
}
