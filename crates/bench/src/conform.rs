//! E17 — differential conformance sweep (`exp_conform`).
//!
//! Runs the whole `slconform` corpus against **both** stacks across
//! multiple seeds, demanding zero unexplained divergences; reports
//! per-allowlist-entry hit counts (so dead entries are visible); and
//! fires two mutation canaries — deliberately buggy endpoints that the
//! harness must not only catch but shrink to a ≤ 10-event reproducer —
//! proving the detector is alive, not just quiet.

use std::collections::BTreeMap;

use slconform::driver::{Kind, Mutation};
use slconform::{allowlist, check_scenario, corpus, shrink};

/// One `scenario × seed` differential run (each run drives both stacks).
pub struct ConformOut {
    pub scenario: String,
    pub seed: u64,
    pub frames_sub: usize,
    pub frames_mono: usize,
    pub delivered_sub: usize,
    pub delivered_mono: usize,
    /// Unexplained divergences — conformance failures.
    pub unexplained: Vec<String>,
    /// Divergences absorbed by the allowlist: `(entry id, detail)`.
    pub allowlisted: Vec<(&'static str, String)>,
}

/// Seeds for the sweep: the acceptance bar is ≥ 3 seeds; `--smoke` keeps
/// CI fast with one.
pub fn seeds(smoke: bool) -> &'static [u64] {
    if smoke {
        &[1]
    } else {
        &[1, 2, 3]
    }
}

/// Run the full corpus × seeds. Every run is `sub` vs `mono` vs oracle.
pub fn sweep(smoke: bool) -> Vec<ConformOut> {
    let mut outs = Vec::new();
    for sc in corpus() {
        for &seed in seeds(smoke) {
            let rep = check_scenario(&sc, seed);
            outs.push(ConformOut {
                scenario: sc.name.to_string(),
                seed,
                frames_sub: rep.sub.client.abs.len() + rep.sub.server.abs.len(),
                frames_mono: rep.mono.client.abs.len() + rep.mono.server.abs.len(),
                delivered_sub: rep.sub.client.delivered.len()
                    + rep.sub.server.delivered.len(),
                delivered_mono: rep.mono.client.delivered.len()
                    + rep.mono.server.delivered.len(),
                unexplained: rep.unexplained.iter().map(|d| d.detail.clone()).collect(),
                allowlisted: rep.allowlisted.clone(),
            });
        }
    }
    outs
}

/// Hit counts for every registered allowlist entry — zero-hit entries are
/// listed too, so a dead entry shows up in the report instead of rotting.
pub fn allow_hits(outs: &[ConformOut]) -> Vec<(&'static str, usize)> {
    let mut counts: BTreeMap<&'static str, usize> =
        allowlist().iter().map(|a| (a.id, 0)).collect();
    for o in outs {
        for (id, _) in &o.allowlisted {
            *counts.entry(id).or_insert(0) += 1;
        }
    }
    counts.into_iter().collect()
}

/// One mutation canary: a deliberately non-conformant endpoint that the
/// harness must catch *and* shrink to a small reproducer.
pub struct CanaryOut {
    pub name: &'static str,
    pub scenario: &'static str,
    pub kind: Kind,
    pub caught: bool,
    pub code: String,
    pub from_events: usize,
    pub to_events: usize,
    /// Caught, and the shrunk script is within the ≤ 10-event bar.
    pub ok: bool,
}

/// Run the seeded-mutation canaries. A quiet detector is indistinguishable
/// from a broken one; these keep it honest.
pub fn canaries() -> Vec<CanaryOut> {
    let cases: [(&'static str, &'static str, Kind, Mutation); 3] = [
        (
            "ack_future_sub",
            "data_bidirectional",
            Kind::Sub,
            Mutation::AckFuture { delta: 9_000 },
        ),
        (
            "ack_future_mono",
            "data_bidirectional",
            Kind::Mono,
            Mutation::AckFuture { delta: 9_000 },
        ),
        (
            "dropped_challenge_acks",
            "rst_in_window_client",
            Kind::Sub,
            Mutation::DropPureAcks,
        ),
    ];
    let corpus = corpus();
    cases
        .into_iter()
        .map(|(name, scenario, kind, mutation)| {
            let sc = corpus
                .iter()
                .find(|s| s.name == scenario)
                .expect("canary scenario in corpus");
            match shrink(sc, 1, kind, mutation) {
                Some(s) => CanaryOut {
                    name,
                    scenario,
                    kind,
                    caught: true,
                    code: s.code.clone(),
                    from_events: s.from_events,
                    to_events: s.to_events,
                    ok: s.to_events <= 10,
                },
                None => CanaryOut {
                    name,
                    scenario,
                    kind,
                    caught: false,
                    code: String::new(),
                    from_events: sc.events.len(),
                    to_events: 0,
                    ok: false,
                },
            }
        })
        .collect()
}

fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Deterministic JSON summary (stable key order, no timestamps) — the CI
/// determinism job runs the binary twice and diffs this byte-for-byte.
pub fn summary_json(outs: &[ConformOut], canaries: &[CanaryOut]) -> String {
    let scenarios: std::collections::BTreeSet<&str> =
        outs.iter().map(|o| o.scenario.as_str()).collect();
    let unexplained: Vec<String> = outs
        .iter()
        .flat_map(|o| {
            o.unexplained
                .iter()
                .map(move |d| format!("[{} seed={}] {d}", o.scenario, o.seed))
        })
        .collect();
    let mut s = String::from("{\n");
    s.push_str("  \"experiment\": \"E17-conformance\",\n");
    s.push_str(&format!("  \"scenarios\": {},\n", scenarios.len()));
    s.push_str(&format!("  \"runs\": {},\n", outs.len()));
    s.push_str(&format!(
        "  \"seeds\": [{}],\n",
        outs.iter()
            .map(|o| o.seed)
            .collect::<std::collections::BTreeSet<u64>>()
            .iter()
            .map(u64::to_string)
            .collect::<Vec<_>>()
            .join(", ")
    ));
    s.push_str(&format!("  \"unexplained\": {},\n", unexplained.len()));
    s.push_str("  \"unexplained_details\": [");
    s.push_str(
        &unexplained.iter().map(|d| json_str(d)).collect::<Vec<_>>().join(", "),
    );
    s.push_str("],\n");
    s.push_str("  \"allowlist_hits\": {");
    s.push_str(
        &allow_hits(outs)
            .iter()
            .map(|(id, n)| format!("{}: {n}", json_str(id)))
            .collect::<Vec<_>>()
            .join(", "),
    );
    s.push_str("},\n");
    s.push_str("  \"canaries\": [\n");
    let rows: Vec<String> = canaries
        .iter()
        .map(|c| {
            format!(
                "    {{\"name\": {}, \"caught\": {}, \"code\": {}, \
                 \"shrunk_events\": {}, \"ok\": {}}}",
                json_str(c.name),
                c.caught,
                json_str(&c.code),
                c.to_events,
                c.ok
            )
        })
        .collect();
    s.push_str(&rows.join(",\n"));
    s.push_str("\n  ]\n}");
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_sweep_is_clean_and_covers_the_corpus() {
        let outs = sweep(true);
        assert!(outs.len() >= 25, "corpus must cover ≥ 25 scenarios");
        let bad: Vec<_> = outs.iter().filter(|o| !o.unexplained.is_empty()).collect();
        assert!(
            bad.is_empty(),
            "unexplained divergences: {:?}",
            bad.iter()
                .map(|o| (&o.scenario, o.seed, &o.unexplained))
                .collect::<Vec<_>>()
        );
    }

    #[test]
    fn canaries_catch_and_shrink() {
        for c in canaries() {
            assert!(c.caught, "{}: mutation not caught", c.name);
            assert!(c.ok, "{}: shrunk to {} events (> 10)", c.name, c.to_events);
        }
    }

    #[test]
    fn summary_json_is_deterministic() {
        let outs = sweep(true);
        let cans = canaries();
        let a = summary_json(&outs, &cans);
        let b = summary_json(&sweep(true), &canaries());
        assert_eq!(a, b);
        assert!(a.contains("\"E17-conformance\""));
    }
}
