//! E16 — overload control and graceful degradation for the `slhost` host.
//!
//! One [`ServedHost`] + [`RespApp`] hub serves request/response clients in
//! a [`netsim::star`] topology, under a host-level memory budget
//! ([`slhost::ResourceBudget`]). Four campaign profiles, each run over
//! both transport stacks:
//!
//! - **baseline** — arrivals well under capacity; the uncontended
//!   per-connection goodput every other profile is compared against.
//! - **flood** — an open-loop arrival burst at ~4× the sustainable
//!   service rate. Admission must defer (not refuse) the excess, memory
//!   must stay under budget, and every deferred client must still
//!   complete once pressure recedes — degradation without a cliff.
//! - **slowloris** — deliberately slow readers ([`ReadBudget`] at rate 0)
//!   pin the server's send buffers until the slow-drain detector evicts
//!   them; normal clients arriving afterwards must be unaffected.
//! - **drain** — the host quiesces mid-run: connections admitted before
//!   the drain complete, later arrivals are refused statelessly, and the
//!   host ends fully drained.
//!
//! Per-run invariants (any failure is a violation, fatal to the
//! experiment binary): no client is silently starved — every one either
//! completes with an intact response or observes a typed transport
//! error; memory occupancy never exceeds the configured budget; the host
//! table drains to empty. The sweep-level check is the headline claim:
//! under a 4× flood, the per-connection goodput of *accepted*
//! connections stays within 80% of the uncontended baseline.

use netsim::{
    LinkParams, MultiStackNode, OpenLoopArrivals, ReadBudget, Stack, StackNode,
    Time, TransportError,
};
use slhost::{
    Host, HostApp, HostConfig, HostEvent, HostStack, ResourceBudget, ServedHost,
    TimerMode,
};
use std::collections::HashMap;
use sublayer_core::{SlConfig, SlTcpStack};
use tcp_mono::stack::TcpStack;
use tcp_mono::wire::Endpoint;

const SERVER_ADDR: u32 = crate::A;
const CLIENT_BASE: u32 = 0x0A01_0000;
const PORT: u16 = 80;
const CLIENT_PORT: u16 = 5000;
/// Request payload length per client.
const REQ_LEN: usize = 128;
/// Response length for the short-transfer profiles.
const RESP_SHORT: usize = 16 * 1024;
/// Response length for the slowloris profile — big enough that one
/// unread response pins ~96 KB of server send buffer past the peer's
/// receive window.
const RESP_SLOW: usize = 160 * 1024;
/// Per-client access link: 1 ms delay, 2 Mbit/s. The rate cap makes
/// service time (~65 ms per short response) the bottleneck, so an
/// open-loop burst genuinely outruns the server.
const LINK_DELAY_NS: u64 = 1_000_000;
const LINK_RATE_BPS: u64 = 2_000_000;

fn dur(ns: u64) -> netsim::Dur {
    netsim::Dur::from_nanos(ns)
}

/// Deterministic response byte `j` — same formula on both sides.
fn resp_byte(j: usize) -> u8 {
    ((j * 7) % 251) as u8
}

/// Deterministic per-client request payload.
fn request(i: usize) -> Vec<u8> {
    (0..REQ_LEN).map(|j| ((i * 31 + j) % 251) as u8).collect()
}

/// Which transport serves (and runs in) every node of a run.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum OverloadStack {
    Sub,
    Mono,
}

impl OverloadStack {
    pub fn label(self) -> &'static str {
        match self {
            OverloadStack::Sub => "sub",
            OverloadStack::Mono => "mono",
        }
    }
}

/// The four campaign shapes.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Profile {
    Baseline,
    Flood,
    Slowloris,
    Drain,
}

impl Profile {
    pub fn label(self) -> &'static str {
        match self {
            Profile::Baseline => "baseline",
            Profile::Flood => "flood",
            Profile::Slowloris => "slowloris",
            Profile::Drain => "drain",
        }
    }
}

/// One cell of the sweep.
#[derive(Clone, Copy, Debug)]
pub struct OverloadParams {
    pub profile: Profile,
    pub stack: OverloadStack,
    pub seed: u64,
}

/// Concrete workload a profile expands to.
struct Spec {
    /// Connect time per client; the first `n_slow` are slow readers.
    arrivals: Vec<Time>,
    n_slow: usize,
    resp_len: usize,
    budget_bytes: usize,
    backlog: usize,
    /// Quiesce the host at this time.
    drain_at: Option<Time>,
    horizon: Time,
}

/// Expand an open-loop schedule into concrete connect times. Driving the
/// iterator through `poll` keeps this the same code path a live load
/// generator would use.
fn schedule(start_ns: u64, interval_ns: u64, count: usize) -> Vec<Time> {
    let mut arr = OpenLoopArrivals::new(Time(start_ns), dur(interval_ns), count as u64);
    let mut times = Vec::with_capacity(count);
    while let Some(t) = arr.next_deadline() {
        for _ in 0..arr.poll(t) {
            times.push(t);
        }
    }
    times
}

impl Profile {
    fn spec(self) -> Spec {
        match self {
            // 16 clients, one every 100 ms: each 16 KB response takes
            // ~65 ms at 2 Mbit/s, so at most one service is in flight and
            // pressure never engages.
            Profile::Baseline => Spec {
                arrivals: schedule(100_000_000, 100_000_000, 16),
                n_slow: 0,
                resp_len: RESP_SHORT,
                budget_bytes: 512 * 1024,
                backlog: 16,
                drain_at: None,
                horizon: Time(16_000_000_000),
            },
            // 64 clients in under 100 ms — ~4× the 16-service concurrency
            // the 512 KB budget admits (Elevated at 256 KB = 16 × 16 KB).
            Profile::Flood => Spec {
                arrivals: schedule(100_000_000, 1_500_000, 64),
                n_slow: 0,
                resp_len: RESP_SHORT,
                budget_bytes: 512 * 1024,
                backlog: 16,
                drain_at: None,
                horizon: Time(18_000_000_000),
            },
            // 9 zero-rate readers arrive first and pin ~96 KB of send
            // buffer each (160 KB response minus the peer's ~64 KB
            // receive window); 6 normal clients follow once the
            // slow-drain detector has had time to evict the attackers.
            Profile::Slowloris => Spec {
                arrivals: {
                    let mut a = schedule(100_000_000, 150_000_000, 9);
                    a.extend(schedule(4_000_000_000, 700_000_000, 6));
                    a
                },
                n_slow: 9,
                resp_len: RESP_SLOW,
                budget_bytes: 1024 * 1024,
                backlog: 16,
                drain_at: None,
                horizon: Time(22_000_000_000),
            },
            // 24 clients, one every 100 ms; the host quiesces at 1.25 s,
            // splitting them into ~12 served and ~12 refused.
            Profile::Drain => Spec {
                arrivals: schedule(100_000_000, 100_000_000, 24),
                n_slow: 0,
                resp_len: RESP_SHORT,
                budget_bytes: 512 * 1024,
                backlog: 16,
                drain_at: Some(Time(1_250_000_000)),
                horizon: Time(16_000_000_000),
            },
        }
    }
}

/// Everything one run exposes: per-client fates, host counters, and the
/// invariant violations (empty = clean).
#[derive(Clone, Debug)]
pub struct OverloadOutcome {
    pub profile: &'static str,
    pub stack: &'static str,
    pub seed: u64,
    pub offered: usize,
    pub n_slow: usize,
    /// Clients whose full response arrived intact.
    pub completed: usize,
    /// Clients refused before establishment (gated SYN → reset).
    pub refused: usize,
    /// Clients reset after establishment (shed, slow-drain, or Critical).
    pub evicted: usize,
    /// Clients with neither a completion nor an error — silent
    /// starvation, always a violation.
    pub starved: usize,
    pub corrupt: usize,
    pub accepts: u64,
    pub deferrals: u64,
    pub backlog_refusals: u64,
    /// Established connections refused at host admission (Critical/drain).
    pub host_refusals: u64,
    /// SYNs refused statelessly inside the transport while gated.
    pub stack_refusals: u64,
    pub sheds: u64,
    pub slow_drain_evictions: u64,
    /// Peak memory occupancy vs the configured budget, bytes.
    pub mem_peak: u64,
    pub budget_bytes: u64,
    /// Median per-connection transfer goodput of completed clients,
    /// kbit/s over the first-response-byte → last-byte window (excludes
    /// any admission-deferral wait, per the "accepted connections keep
    /// their goodput" claim).
    pub goodput_kbps_p50: u64,
    /// Median transfer window, microseconds.
    pub xfer_p50_us: u64,
    pub first_error: Option<TransportError>,
    /// Host-tracked connections still present at the horizon.
    pub server_residual: usize,
    /// 1 if the host reported fully drained at the horizon (drain
    /// profile only; 0 elsewhere and on failure).
    pub drained: u64,
    pub sim_ms: u64,
    pub violations: Vec<String>,
}

/// Per-connection service state inside [`RespApp`].
struct Service {
    got: usize,
    sent: usize,
}

/// The server application: accumulate a [`REQ_LEN`]-byte request, then
/// send one `resp_len`-byte response. Serves only connections the host
/// actually admitted — a deferred connection's request waits, which is
/// exactly what makes admission control observable end to end.
pub struct RespApp<S: HostStack> {
    resp_len: usize,
    state: HashMap<S::ConnId, Service>,
    pub served: u64,
}

impl<S: HostStack> RespApp<S> {
    fn new(resp_len: usize) -> Self {
        RespApp { resp_len, state: HashMap::new(), served: 0 }
    }

    fn pump(&mut self, now: Time, host: &mut Host<S>, id: S::ConnId) {
        let Some(sv) = self.state.get_mut(&id) else { return };
        let data = host.recv(now, id);
        sv.got += data.len();
        if sv.got >= REQ_LEN && sv.sent < self.resp_len {
            if sv.sent == 0 {
                self.served += 1;
            }
            let body: Vec<u8> =
                (sv.sent..self.resp_len).map(resp_byte).collect();
            sv.sent += host.send(now, id, &body);
        }
    }
}

impl<S: HostStack> HostApp<S> for RespApp<S> {
    fn on_event(&mut self, now: Time, host: &mut Host<S>, ev: HostEvent<S::ConnId>) {
        match ev {
            HostEvent::Accepted(id) => {
                host.accept();
                self.state.insert(id, Service { got: 0, sent: 0 });
                self.pump(now, host, id);
            }
            // Unadmitted connections stay untouched: their request sits
            // queued until (unless) the host admits them.
            HostEvent::Readable(id) | HostEvent::Writable(id) => {
                self.pump(now, host, id);
            }
            HostEvent::PeerClosed(id) => host.close(now, id),
            HostEvent::Closed(id) | HostEvent::Error(id, _) => {
                self.state.remove(&id);
            }
        }
    }
}

/// Client phases; time-driven transitions happen in `drive`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum Phase {
    Idle,
    Connecting,
    /// Request sent; collecting (or, for a slow reader, ignoring) the
    /// response.
    Await,
    Closing,
    Done,
    Failed,
}

/// One scripted client: connect → request → verify response → close.
/// A slow client carries a zero-rate [`ReadBudget`] and never drains its
/// receive buffer — the slowloris shape.
pub struct OverloadClient<S: HostStack> {
    stack: S,
    server: Endpoint,
    req: Vec<u8>,
    resp_len: usize,
    read_budget: Option<ReadBudget>,
    phase: Phase,
    conn: Option<S::ConnId>,
    got: usize,
    connect_at: Time,
    pub established: bool,
    pub first_resp_at: Option<Time>,
    pub done_at: Option<Time>,
    pub error: Option<TransportError>,
    pub corrupt: bool,
}

impl<S: HostStack> OverloadClient<S> {
    fn new(
        stack: S,
        server: Endpoint,
        connect_at: Time,
        req: Vec<u8>,
        resp_len: usize,
        read_budget: Option<ReadBudget>,
    ) -> Self {
        OverloadClient {
            stack,
            server,
            req,
            resp_len,
            read_budget,
            phase: Phase::Idle,
            conn: None,
            got: 0,
            connect_at,
            established: false,
            first_resp_at: None,
            done_at: None,
            error: None,
            corrupt: false,
        }
    }

    fn drive(&mut self, now: Time) {
        if let (Some(id), None) = (self.conn, self.error) {
            if self.stack.is_established(id) {
                self.established = true;
            }
            if let Some(e) = self.stack.conn_error(id) {
                self.error = Some(e);
                self.phase = Phase::Failed;
            }
        }
        loop {
            match self.phase {
                Phase::Idle => {
                    if now < self.connect_at {
                        return;
                    }
                    match self.stack.try_connect(now, CLIENT_PORT, self.server) {
                        Ok(id) => {
                            self.conn = Some(id);
                            self.phase = Phase::Connecting;
                        }
                        Err(e) => {
                            self.error = Some(e);
                            self.phase = Phase::Failed;
                        }
                    }
                }
                Phase::Connecting => {
                    let id = self.conn.expect("connected past Idle");
                    if !self.stack.is_established(id) {
                        return;
                    }
                    self.established = true;
                    self.stack.send(id, &self.req);
                    self.phase = Phase::Await;
                }
                Phase::Await => {
                    let id = self.conn.expect("connected past Idle");
                    if let Some(b) = &mut self.read_budget {
                        // A slow reader only drains what its budget
                        // grants — at rate 0, nothing, ever.
                        if b.grant(now) == 0 {
                            return;
                        }
                    }
                    let data = self.stack.recv(id);
                    if let Some(b) = &mut self.read_budget {
                        b.consume(data.len() as u64);
                    }
                    if !data.is_empty() && self.first_resp_at.is_none() {
                        self.first_resp_at = Some(now);
                    }
                    for &bt in &data {
                        if self.got >= self.resp_len || bt != resp_byte(self.got) {
                            self.corrupt = true;
                        }
                        self.got += 1;
                    }
                    if self.got < self.resp_len {
                        return;
                    }
                    self.done_at = Some(now);
                    self.stack.close(id);
                    self.phase = Phase::Closing;
                }
                Phase::Closing => {
                    let id = self.conn.expect("connected past Idle");
                    if !self.stack.is_closed(id) {
                        return;
                    }
                    self.phase = Phase::Done;
                }
                Phase::Done | Phase::Failed => return,
            }
        }
    }
}

impl<S: HostStack> Stack for OverloadClient<S> {
    fn on_frame(&mut self, now: Time, frame: &[u8]) {
        Stack::on_frame(&mut self.stack, now, frame);
        self.drive(now);
    }

    fn poll_transmit(&mut self, now: Time) -> Option<Vec<u8>> {
        Stack::poll_transmit(&mut self.stack, now)
    }

    fn poll_deadline(&self, now: Time) -> Option<Time> {
        let own = match self.phase {
            Phase::Idle => Some(self.connect_at),
            _ => None,
        };
        [own, Stack::poll_deadline(&self.stack, now)].into_iter().flatten().min()
    }

    fn on_tick(&mut self, now: Time) {
        Stack::on_tick(&mut self.stack, now);
        self.drive(now);
    }
}

/// Run one cell of the sweep.
pub fn run_one(p: OverloadParams) -> OverloadOutcome {
    match p.stack {
        OverloadStack::Sub => run_generic(p, |addr| {
            let cfg = SlConfig { keepalive: None, ..SlConfig::default() };
            SlTcpStack::new(addr, cfg, slmetrics::shared())
        }),
        OverloadStack::Mono => {
            run_generic(p, |addr| TcpStack::new(addr, slmetrics::shared()))
        }
    }
}

fn run_generic<S: HostStack>(
    p: OverloadParams,
    mk: impl Fn(u32) -> S,
) -> OverloadOutcome {
    let spec = p.profile.spec();
    let n = spec.arrivals.len();
    let cfg = HostConfig {
        listen_port: PORT,
        backlog: spec.backlog,
        batch_window: dur(50_000),
        timer_mode: TimerMode::Wheel,
        budget: ResourceBudget::bytes(spec.budget_bytes),
        ..HostConfig::default()
    };
    let server =
        ServedHost::new(Host::new(mk(SERVER_ADDR), cfg), RespApp::new(spec.resp_len));
    let clients: Vec<OverloadClient<S>> = spec
        .arrivals
        .iter()
        .enumerate()
        .map(|(i, &at)| {
            let slow = i < spec.n_slow;
            OverloadClient::new(
                mk(CLIENT_BASE + i as u32),
                Endpoint::new(SERVER_ADDR, PORT),
                at,
                request(i),
                spec.resp_len,
                slow.then(|| ReadBudget::new(at, 0, 0)),
            )
        })
        .collect();

    let (mut net, sid, cids) = netsim::star(
        p.seed,
        server,
        clients,
        LinkParams::delay_only(dur(LINK_DELAY_NS)).with_rate(LINK_RATE_BPS),
    );
    net.poll_all();
    if let Some(at) = spec.drain_at {
        net.run_until(at);
        net.node_mut::<MultiStackNode<ServedHost<S, RespApp<S>>>>(sid)
            .stack
            .host
            .drain();
        net.poll_all();
    }
    net.run_until(spec.horizon);

    let mut completed = 0usize;
    let mut refused = 0usize;
    let mut evicted = 0usize;
    let mut starved: Vec<usize> = Vec::new();
    let mut corrupt = 0usize;
    let mut first_error: Option<TransportError> = None;
    let mut kbps: Vec<u64> = Vec::new();
    let mut xfer_us: Vec<u64> = Vec::new();
    let mut slow_failed = 0usize;
    let mut post_drain_completed = 0usize;
    let mut pre_drain_incomplete = 0usize;
    for (i, &cid) in cids.iter().enumerate() {
        let c = &net.node::<StackNode<OverloadClient<S>>>(cid).stack;
        if c.corrupt {
            corrupt += 1;
        }
        let pre_drain = spec.drain_at.is_none_or(|at| spec.arrivals[i] < at);
        match (c.done_at, c.error) {
            (Some(t1), _) if !c.corrupt => {
                completed += 1;
                if !pre_drain {
                    post_drain_completed += 1;
                }
                let t0 = c.first_resp_at.unwrap_or(t1);
                let us = t1.nanos().saturating_sub(t0.nanos()).max(1_000) / 1_000;
                xfer_us.push(us);
                kbps.push((spec.resp_len as u64 * 8).saturating_mul(1_000) / us);
            }
            (None, Some(e)) => {
                first_error.get_or_insert(e);
                if c.established {
                    evicted += 1;
                    if i < spec.n_slow {
                        slow_failed += 1;
                    }
                } else {
                    refused += 1;
                }
                if pre_drain && spec.drain_at.is_some() {
                    pre_drain_incomplete += 1;
                }
            }
            _ => starved.push(i),
        }
    }
    kbps.sort_unstable();
    xfer_us.sort_unstable();
    let pct = |v: &[u64], q: u64| -> u64 {
        if v.is_empty() { 0 } else { v[((v.len() - 1) as u64 * q / 100) as usize] }
    };

    let srv = &net.node::<MultiStackNode<ServedHost<S, RespApp<S>>>>(sid).stack;
    let k = &srv.host.counters;
    let mut out = OverloadOutcome {
        profile: p.profile.label(),
        stack: p.stack.label(),
        seed: p.seed,
        offered: n,
        n_slow: spec.n_slow,
        completed,
        refused,
        evicted,
        starved: starved.len(),
        corrupt,
        accepts: k.accepts,
        deferrals: k.accept_deferrals,
        backlog_refusals: k.accept_refusals,
        host_refusals: k.pressure_refusals,
        stack_refusals: srv.host.stack().stack_pressure_refusals(),
        sheds: k.sheds,
        slow_drain_evictions: k.slow_drain_evictions,
        mem_peak: k.mem_peak,
        budget_bytes: spec.budget_bytes as u64,
        goodput_kbps_p50: pct(&kbps, 50),
        xfer_p50_us: pct(&xfer_us, 50),
        first_error,
        server_residual: srv.host.tracked_count(),
        drained: u64::from(srv.host.is_drained() && spec.drain_at.is_some()),
        sim_ms: net.now().nanos() / 1_000_000,
        violations: Vec::new(),
    };

    // Universal invariants.
    if out.starved > 0 {
        let head: Vec<String> =
            starved.iter().take(5).map(|i| i.to_string()).collect();
        out.violations.push(format!(
            "{} clients silently starved — no completion, no error (first: [{}])",
            out.starved,
            head.join(",")
        ));
    }
    if out.corrupt > 0 {
        out.violations.push(format!("{} corrupt responses", out.corrupt));
    }
    if out.mem_peak > out.budget_bytes {
        out.violations.push(format!(
            "memory peaked at {} bytes, budget {}",
            out.mem_peak, out.budget_bytes
        ));
    }
    if out.server_residual != 0 {
        out.violations.push(format!(
            "host leaked {} connections past the horizon",
            out.server_residual
        ));
    }

    // Profile-specific invariants.
    match p.profile {
        Profile::Baseline => {
            if out.completed != n {
                out.violations
                    .push(format!("baseline completed {} of {n}", out.completed));
            }
            if out.deferrals != 0 || out.refused != 0 || out.evicted != 0 {
                out.violations.push(format!(
                    "baseline saw pressure: {} deferrals, {} refused, {} evicted",
                    out.deferrals, out.refused, out.evicted
                ));
            }
        }
        Profile::Flood => {
            if out.deferrals == 0 {
                out.violations.push(
                    "flood never engaged admission deferral — not overloaded".into(),
                );
            }
            if out.evicted != 0 {
                out.violations.push(format!(
                    "flood evicted {} progressing connections",
                    out.evicted
                ));
            }
            if out.completed + out.refused != n {
                out.violations.push(format!(
                    "flood: {} completed + {} refused != {n} offered",
                    out.completed, out.refused
                ));
            }
            if out.completed < n / 2 {
                out.violations.push(format!(
                    "flood goodput cliff: only {} of {n} completed",
                    out.completed
                ));
            }
        }
        Profile::Slowloris => {
            if slow_failed != spec.n_slow {
                out.violations.push(format!(
                    "only {slow_failed} of {} slow readers were evicted",
                    spec.n_slow
                ));
            }
            if out.slow_drain_evictions < spec.n_slow as u64 {
                out.violations.push(format!(
                    "slow-drain detector fired {} times for {} attackers",
                    out.slow_drain_evictions, spec.n_slow
                ));
            }
            if out.completed != n - spec.n_slow {
                out.violations.push(format!(
                    "{} of {} normal clients completed under slowloris",
                    out.completed,
                    n - spec.n_slow
                ));
            }
        }
        Profile::Drain => {
            let pre = spec
                .arrivals
                .iter()
                .filter(|&&at| at < spec.drain_at.expect("drain profile"))
                .count();
            if out.completed != pre || pre_drain_incomplete != 0 {
                out.violations.push(format!(
                    "drain: {} completed, expected the {pre} pre-drain clients \
                     ({pre_drain_incomplete} of them failed)",
                    out.completed
                ));
            }
            if post_drain_completed != 0 {
                out.violations.push(format!(
                    "{post_drain_completed} clients admitted after drain"
                ));
            }
            if out.refused != n - pre {
                out.violations.push(format!(
                    "drain refused {} of the {} post-drain arrivals",
                    out.refused,
                    n - pre
                ));
            }
            if out.drained != 1 {
                out.violations.push("host never reached drained state".into());
            }
        }
    }
    out
}

/// The sweep: every profile × both stacks; one seed for smoke, two for
/// the full run.
pub fn sweep(smoke: bool) -> Vec<OverloadOutcome> {
    let seeds: &[u64] = if smoke { &[1] } else { &[1, 2] };
    let mut outs = Vec::new();
    for &seed in seeds {
        for stack in [OverloadStack::Sub, OverloadStack::Mono] {
            for profile in
                [Profile::Baseline, Profile::Flood, Profile::Slowloris, Profile::Drain]
            {
                outs.push(run_one(OverloadParams { profile, stack, seed }));
            }
        }
    }
    outs
}

/// Sweep-level acceptance: under the 4× flood, the median per-connection
/// transfer goodput of accepted connections must hold at ≥ 80% of the
/// same stack-and-seed's uncontended baseline.
pub fn cross_checks(outs: &[OverloadOutcome]) -> Vec<String> {
    let mut v = Vec::new();
    for flood in outs.iter().filter(|o| o.profile == "flood") {
        let Some(base) = outs.iter().find(|o| {
            o.profile == "baseline" && o.stack == flood.stack && o.seed == flood.seed
        }) else {
            continue;
        };
        if flood.goodput_kbps_p50 * 100 < base.goodput_kbps_p50 * 80 {
            v.push(format!(
                "flood p50 goodput {} kbps fell below 80% of baseline {} kbps \
                 at stack={} seed={}",
                flood.goodput_kbps_p50, base.goodput_kbps_p50, flood.stack, flood.seed
            ));
        }
    }
    v
}

fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

fn json_err(e: Option<TransportError>) -> String {
    match e {
        None => "null".into(),
        Some(e) => json_str(&format!("{e:?}")),
    }
}

/// Deterministic, hand-rolled JSON for one outcome (stable field order,
/// integers only — byte-identical for identical seeds).
pub fn outcome_json(o: &OverloadOutcome) -> String {
    let viol: Vec<String> = o.violations.iter().map(|v| json_str(v)).collect();
    format!(
        "{{\"profile\":{},\"stack\":{},\"seed\":{},\"offered\":{},\"n_slow\":{},\
         \"completed\":{},\"refused\":{},\"evicted\":{},\"starved\":{},\
         \"corrupt\":{},\"accepts\":{},\"deferrals\":{},\"backlog_refusals\":{},\
         \"host_refusals\":{},\"stack_refusals\":{},\"sheds\":{},\
         \"slow_drain_evictions\":{},\"mem_peak\":{},\"budget_bytes\":{},\
         \"goodput_kbps_p50\":{},\"xfer_p50_us\":{},\"first_error\":{},\
         \"server_residual\":{},\"drained\":{},\"sim_ms\":{},\"violations\":[{}]}}",
        json_str(o.profile),
        json_str(o.stack),
        o.seed,
        o.offered,
        o.n_slow,
        o.completed,
        o.refused,
        o.evicted,
        o.starved,
        o.corrupt,
        o.accepts,
        o.deferrals,
        o.backlog_refusals,
        o.host_refusals,
        o.stack_refusals,
        o.sheds,
        o.slow_drain_evictions,
        o.mem_peak,
        o.budget_bytes,
        o.goodput_kbps_p50,
        o.xfer_p50_us,
        json_err(o.first_error),
        o.server_residual,
        o.drained,
        o.sim_ms,
        viol.join(",")
    )
}

/// The whole sweep (plus sweep-level checks) as one JSON document.
pub fn summary_json(outs: &[OverloadOutcome], cross: &[String]) -> String {
    let rows: Vec<String> = outs.iter().map(outcome_json).collect();
    let violations: usize =
        outs.iter().map(|o| o.violations.len()).sum::<usize>() + cross.len();
    let cross_rows: Vec<String> = cross.iter().map(|c| json_str(c)).collect();
    format!(
        "{{\"runs\":[\n  {}\n],\"cross_checks\":[{}],\"total\":{},\"violations\":{}}}",
        rows.join(",\n  "),
        cross_rows.join(","),
        outs.len(),
        violations
    )
}
