//! E17 — differential conformance harness over both stacks.
//!
//! Runs the full `slconform` scenario corpus against the sublayered and
//! monolithic stacks across multiple seeds (both stacks in every run),
//! prints per-scenario results with allowlist hit counts, and fires the
//! mutation canaries (a planted bug must be caught *and* shrunk to a
//! ≤ 10-event reproducer). Exits non-zero on any unexplained divergence
//! or a failed canary.
//!
//! Usage: `exp_conform [--smoke] [--json]`. The full run writes its JSON
//! summary to `BENCH_conform.json`; `--smoke` is a one-seed CI subset.
//! The JSON is deterministic, so CI runs the sweep twice and diffs.

use bench::conform;
use bench::markdown_table;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let json = args.iter().any(|a| a == "--json");

    let outs = conform::sweep(smoke);
    let canaries = conform::canaries();
    let summary = conform::summary_json(&outs, &canaries);

    if json {
        println!("{summary}");
    } else {
        let rows: Vec<Vec<String>> = outs
            .iter()
            .map(|o| {
                vec![
                    o.scenario.clone(),
                    o.seed.to_string(),
                    format!("{}/{}", o.frames_sub, o.frames_mono),
                    format!("{}/{}", o.delivered_sub, o.delivered_mono),
                    o.allowlisted
                        .first()
                        .map(|(id, _)| id.to_string())
                        .unwrap_or_else(|| "-".into()),
                    o.unexplained.len().to_string(),
                ]
            })
            .collect();
        println!("# E17: differential conformance (sub vs mono vs oracle)\n");
        println!(
            "{}",
            markdown_table(
                &["scenario", "seed", "frames s/m", "bytes s/m", "allow", "diverge"],
                &rows
            )
        );
        println!("## allowlist hit counts\n");
        for (id, n) in conform::allow_hits(&outs) {
            println!("- {id}: {n}");
        }
        println!("\n## mutation canaries\n");
        for c in &canaries {
            println!(
                "- {} [{} on {:?}]: caught={} code={} shrunk {} -> {} events{}",
                c.name,
                c.scenario,
                c.kind,
                c.caught,
                if c.code.is_empty() { "-" } else { &c.code },
                c.from_events,
                c.to_events,
                if c.ok { "" } else { "  ** FAILED **" }
            );
        }
        for o in &outs {
            for d in &o.unexplained {
                println!("DIVERGENCE [{} seed={}]: {d}", o.scenario, o.seed);
            }
        }
    }

    if !smoke {
        std::fs::write("BENCH_conform.json", format!("{summary}\n"))
            .expect("write BENCH_conform.json");
        if !json {
            println!("\nwrote BENCH_conform.json");
        }
    }

    let bad = outs.iter().map(|o| o.unexplained.len()).sum::<usize>()
        + canaries.iter().filter(|c| !c.ok).count();
    if bad > 0 {
        eprintln!("exp_conform: {bad} failure(s)");
        std::process::exit(1);
    }
}
