//! E20 — sharded multi-core host sweep (`slshard`).
//!
//! Sweeps connection counts × both transport stacks over an N-way
//! [`slshard::ShardedHost`] with heavy-tailed request sizes and RTT
//! diversity, checking workload and budget invariants in every run (all
//! echoes intact, per-shard and global budgets never exceeded, no
//! starved shard, balanced shard work, tables drained) and — in smoke
//! mode — that every threaded run is byte-identical to its
//! single-thread inline reference.
//!
//! Usage: `exp_shard [--smoke] [--json] [--stretch]`. The full run
//! writes its JSON summary to `BENCH_shard.json`; `--smoke` is the fast
//! CI-sized subset (which also runs the inline determinism cross-check);
//! `--stretch` adds the 500k-connection cell.

use bench::markdown_table;
use bench::shard;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let json = args.iter().any(|a| a == "--json");
    let stretch = args.iter().any(|a| a == "--stretch");

    let outs = shard::sweep(smoke, stretch);
    let cross = shard::mode_cross_checks(&outs);
    let summary = shard::summary_json(&outs, &cross);

    if json {
        println!("{summary}");
    } else {
        let rows: Vec<Vec<String>> = outs
            .iter()
            .map(|o| {
                vec![
                    o.stack.to_string(),
                    o.mode.to_string(),
                    o.shards.to_string(),
                    o.n.to_string(),
                    format!("{}/{}", o.completed, o.n),
                    o.conns_per_sec.to_string(),
                    o.accept_p99_us.to_string(),
                    o.p99_us.to_string(),
                    o.peak_bytes_per_conn.to_string(),
                    o.shard_occupancy.to_string(),
                    format!("{}.{:02}", o.balance_x100 / 100, o.balance_x100 % 100),
                    o.final_floor.to_string(),
                    o.violations.len().to_string(),
                ]
            })
            .collect();
        println!("# E20: sharded multi-core host (slshard)\n");
        println!(
            "{}",
            markdown_table(
                &[
                    "stack",
                    "mode",
                    "shards",
                    "n",
                    "done",
                    "conns/s",
                    "acc p99 us",
                    "p99 us",
                    "peak B/conn",
                    "occ %",
                    "balance",
                    "floor",
                    "viol"
                ],
                &rows
            )
        );
        for o in &outs {
            for v in &o.violations {
                println!(
                    "VIOLATION [{} {} shards={} n={}]: {v}",
                    o.stack, o.mode, o.shards, o.n
                );
            }
        }
        for c in &cross {
            println!("VIOLATION [mode-determinism]: {c}");
        }
    }

    if !smoke {
        std::fs::write("BENCH_shard.json", format!("{summary}\n"))
            .expect("write BENCH_shard.json");
        if !json {
            println!("\nwrote BENCH_shard.json");
        }
    }

    let bad =
        outs.iter().map(|o| o.violations.len()).sum::<usize>() + cross.len();
    if bad > 0 {
        eprintln!("exp_shard: {bad} violation(s)");
        std::process::exit(1);
    }
}
