//! E6a — verification effort: per-sublayer models vs the monolithic
//! product (paper §4.2's Dafny experience, measured with the model
//! checker).

use bench::markdown_table;
use slverify::{
    check, AltBit, Combined, CongCtrl, Handshake, RstAttack, ShardFail, ShardedOverload,
    SlidingWindow,
};
use slverify::models::FlowControl;

fn rst_model(defended: bool, sublayered: bool) -> RstAttack {
    RstAttack { s_mod: 8, w: 3, n_msgs: 3, budget: 2, defended, sublayered }
}

fn main() {
    println!("# E6a — model-checking effort: sublayered vs monolithic (paper §4.2)\n");

    let altbit = check(&AltBit { n_msgs: 3 }, 5_000_000);
    let hs = check(&Handshake { three_way: true }, 5_000_000);
    let win = check(&SlidingWindow { w: 2, s_mod: 4, n_msgs: 6 }, 5_000_000);
    let combined = check(
        &Combined {
            hs: Handshake { three_way: true },
            win: SlidingWindow { w: 2, s_mod: 4, n_msgs: 6 },
        },
        20_000_000,
    );

    let flow = check(&FlowControl { buf_cap: 2, n_msgs: 6, respect_window: true }, 5_000_000);
    let rst_sub = check(&rst_model(true, true), 5_000_000);
    let rst_mono = check(&rst_model(true, false), 5_000_000);

    let row = |name: &str, r: &slverify::CheckResult| {
        vec![
            name.to_string(),
            r.states.to_string(),
            r.transitions.to_string(),
            r.max_depth.to_string(),
            if r.violation.is_none() { "proved".into() } else { "VIOLATION".to_string() },
        ]
    };
    println!(
        "{}",
        markdown_table(
            &["model", "states", "transitions", "depth", "verdict"],
            &[
                row("CM alone (3-way handshake vs stale SYNs)", &hs),
                row("RD alone (alternating bit, 3 msgs)", &altbit),
                row("RD alone (selective repeat W=2 S=4)", &win),
                row("OSR alone (flow control, buffer 2)", &flow),
                row("RFC 5961 challenge ACK (sublayered shape)", &rst_sub),
                row("RFC 5961 challenge ACK (monolithic shape)", &rst_mono),
                row("MONOLITHIC (handshake x window product)", &combined),
            ],
        )
    );
    let sum = hs.states + win.states;
    println!(
        "\nSublayered verification cost (sum of parts): **{} states**; monolithic \
         product: **{} states** — a {:.1}x blowup. This is the paper's §4.2 \
         lesson quantified: once a sublayer is proved, \"we can forget the \
         details of a sublayer\"; the monolithic proof cannot.\n",
        sum,
        combined.states,
        combined.states as f64 / sum as f64
    );

    println!("## The checker also finds real protocol bugs\n");
    let aliased = check(&SlidingWindow { w: 2, s_mod: 3, n_msgs: 5 }, 5_000_000);
    let v = aliased.violation.expect("S < 2W must alias");
    println!(
        "- Selective repeat with W=2, S=3 (sequence space < 2x window): \
         **counterexample in {} steps**: {:?}\n",
        v.actions.len(),
        v.actions
    );
    let twoway = check(&Handshake { three_way: false }, 5_000_000);
    let v = twoway.violation.expect("two-way handshake must fail");
    println!(
        "- Two-message handshake (no third ack): **stale-incarnation \
         counterexample in {} steps**: {:?} — why TCP's handshake has three \
         messages.\n",
        v.actions.len(),
        v.actions
    );
    let reckless = check(&FlowControl { buf_cap: 2, n_msgs: 6, respect_window: false }, 5_000_000);
    let v = reckless.violation.expect("reckless sender must overflow");
    println!(
        "- OSR ignoring the advertised window: **buffer-overflow \
         counterexample in {} steps**: {:?} — the flow-control contract OSR \
         owns.\n",
        v.actions.len(),
        v.actions
    );
    let pre5961 = check(&rst_model(false, false), 5_000_000);
    let v = pre5961.violation.expect("pre-5961 TCP must die to an in-window RST");
    println!(
        "- Pre-RFC-5961 RST handling (any in-window RST resets): **blind \
         reset counterexample in {} steps**: {:?} — while the challenge-ACK \
         discipline above is proved safe against every below-threshold \
         guess (E14's model-checked core).\n",
        v.actions.len(),
        v.actions
    );

    println!("## Sharded overload ladder (E20): per-shard + global budgets\n");
    let sharded = |sublayered, sbudget, gbudget, lag| ShardedOverload {
        sbudget,
        gbudget,
        resp: 2,
        lag,
        sublayered,
    };
    let sh_staged = check(&sharded(true, 4, 5, 1), 5_000_000);
    let sh_fused = check(&sharded(false, 4, 5, 1), 5_000_000);
    let sh_local = check(&sharded(true, 4, 64, 3), 5_000_000);
    println!(
        "{}",
        markdown_table(
            &["model", "states", "transitions", "depth", "verdict"],
            &[
                row("ShardedOverload (staged floor, lag 1)", &sh_staged),
                row("ShardedOverload (fused global check)", &sh_fused),
                row("ShardedOverload (inert global, per-shard only)", &sh_local),
            ],
        )
    );
    let sh_over = check(&sharded(true, 8, 5, 2), 5_000_000);
    let v = sh_over.violation.expect("stale floor at lag 2 must overrun globally");
    println!(
        "\nBoth ladder levels of the `slshard` degradation policy are proved: \
         every shard stays within its own budget *and* the fleet total stays \
         within the global budget, for every interleaving of arrivals, \
         admissions, progress, and floor pushes. Let two fleet-wide \
         admissions ride one stale Nominal floor and the checker exhibits the \
         **global** overrun (per-shard budgets still intact) in {} steps: \
         {:?}\n",
        v.actions.len(),
        v.actions
    );

    println!("## Shard fault domains (E21): crash isolation + supervised restart\n");
    let fail = |isolate, backoff| ShardFail {
        sbudget: 4,
        gbudget: 5,
        resp: 2,
        lag: 1,
        backoff,
        isolate,
    };
    let ff_b1 = check(&fail(true, 1), 5_000_000);
    let ff_b2 = check(&fail(true, 2), 5_000_000);
    println!(
        "{}",
        markdown_table(
            &["model", "states", "transitions", "depth", "verdict"],
            &[
                row("ShardFail (contained crash, backoff 1)", &ff_b1),
                row("ShardFail (contained crash, backoff 2)", &ff_b2),
            ],
        )
    );
    let ff_seed = check(&fail(false, 2), 5_000_000);
    let v = ff_seed.violation.expect("uncontained crash must abort foreign connections");
    println!(
        "\nWith the `catch_unwind` + typed-`ShardError` boundary a shard crash \
         under the degradation ladder is proved **contained** for every \
         interleaving: only the dead shard's connections abort, per-shard and \
         global budgets hold mid-failover (the dead shard's occupancy folds \
         to zero), downtime never exceeds the restart backoff, and zero \
         deadlocks means no crash schedule strands the fleet — the restarted \
         shard always serves again. Remove the boundary (the seed's poisoned \
         ring lock) and the checker exhibits the **foreign-shard abort** in \
         {} steps: {:?}\n",
        v.actions.len(),
        v.actions
    );

    println!("## Congestion-control contract (E19): real implementations, checked\n");
    let cc_rows: Vec<Vec<String>> = slcc::SHIPPED
        .iter()
        .map(|name| {
            let r = check(&CongCtrl::shipped(name), 2_000_000);
            row(&format!("CongCtrl[{name}] (assume/guarantee, 8 ticks)"), &r)
        })
        .collect();
    println!(
        "{}",
        markdown_table(&["model", "states", "transitions", "depth", "verdict"], &cc_rows)
    );
    let buggy = check(&CongCtrl::buggy(), 2_000_000);
    let v = buggy.violation.expect("BuggyDeflate must starve");
    println!(
        "\nUnlike the protocol models above, `CongCtrl` drives the **shipped** \
         `slcc::RateController` implementations — the exact objects both \
         stacks run — through every admissible congestion-signal schedule. \
         The seeded `BuggyDeflate` controller (partial-ack deflation with no \
         floor) is starved to a zero window in a **{}-step counterexample**: \
         {:?}.\n",
        v.actions.len(),
        v.actions
    );

    println!("## Compositional sublayer contracts (E22): the assume/guarantee chain\n");
    let chain_runs = vec![
        (slverify::DM_CONTRACT, check(&slverify::DmContract::shipped(), 2_000_000)),
        (slverify::CM_CONTRACT, check(&slverify::CmContract::shipped(), 2_000_000)),
        (slverify::RD_CONTRACT, check(&slverify::RdContract::shipped(), 2_000_000)),
        (slverify::OSR_CONTRACT, check(&slverify::OsrContract::shipped(), 2_000_000)),
    ];
    let chain_rows: Vec<Vec<String>> = chain_runs
        .iter()
        .map(|(spec, r)| row(&format!("{} contract (real sublayer driven)", spec.sublayer), r))
        .collect();
    println!(
        "{}",
        markdown_table(&["model", "states", "transitions", "depth", "verdict"], &chain_rows)
    );
    let proof = slverify::compose(&chain_runs).expect("the shipped chain composes");
    println!(
        "\nEach contract checks the **real** `sublayer-core` implementation \
         (not a re-model) against its assume/guarantee interface, and \
         `compose` derives **{}** from the four results alone: {} states \
         additively, where the fused four-way product would face ~{} states \
         — the full E22 report (canaries, codec certificate, fused arms) is \
         `exp_contracts` / BENCH_contracts.json.\n",
        proof.derived, proof.sum_states, proof.fused_estimate
    );
}
