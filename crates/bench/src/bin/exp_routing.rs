//! E2 — network-layer sublayering (§2.2, Figures 3/4): swapping route
//! computation (DV <-> LS) under unchanged forwarding, and reconvergence
//! after link failure.

use bench::markdown_table;
use netlayer::{build, DistanceVector, DvConfig, LinkState, LsConfig, RouteComputation, Router, Topology};
use netsim::Dur;

#[allow(clippy::type_complexity)]
fn engines() -> Vec<(&'static str, Box<dyn Fn(netlayer::Addr) -> Box<dyn RouteComputation>>)> {
    vec![
        ("distance vector", Box::new(|a| Box::new(DistanceVector::new(a, DvConfig::default())) as Box<dyn RouteComputation>)),
        ("link state", Box::new(|a| Box::new(LinkState::new(a, LsConfig::default())) as Box<dyn RouteComputation>)),
    ]
}

fn main() {
    println!("# E2 — route-computation swap under unchanged forwarding (paper §2.2)\n");

    println!("## Forwarding equivalence on random topologies\n");
    let mut rows = Vec::new();
    for seed in [11u64, 12, 13] {
        let topo = Topology::random_connected(8, 4, seed);
        for (name, f) in engines() {
            let mut net = build(&topo, seed, Dur::from_millis(1), f.as_ref());
            net.settle(Dur::from_secs(25));
            let mut probes = 0;
            let mut matches = 0;
            for src in 0..topo.n {
                let truth = topo.bfs_hops(src);
                #[allow(clippy::needless_range_loop)] // dst doubles as probe target and truth index
                for dst in 0..topo.n {
                    if src == dst {
                        continue;
                    }
                    probes += 1;
                    if net.probe(src, dst) == truth[dst] {
                        matches += 1;
                    }
                }
            }
            // Control-plane message cost.
            let pdus: u64 = (0..topo.n)
                .map(|i| net.router(i).rc().stats().pdus_sent)
                .sum();
            rows.push(vec![
                format!("random(n=8,+4) seed {seed}"),
                name.to_string(),
                format!("{matches}/{probes}"),
                pdus.to_string(),
            ]);
        }
    }
    println!(
        "{}",
        markdown_table(
            &["topology", "route computation", "probes matching BFS truth", "routing PDUs sent"],
            &rows
        )
    );

    println!("\n## Reconvergence after link failure (ring of 5, fail edge 0-1)\n");
    let mut rows = Vec::new();
    for (name, f) in engines() {
        let topo = Topology::ring(5);
        let mut net = build(&topo, 7, Dur::from_millis(1), f.as_ref());
        net.settle(Dur::from_secs(15));
        let before = net.probe(0, 1);
        net.fail_edge(0);
        // Measure when 0 -> 1 works again (the long way: 4 hops).
        let mut recovered_after = None;
        for secs in 1..=40u64 {
            net.settle(Dur::from_secs(1));
            if net.probe(0, 1) == Some(4) {
                recovered_after = Some(secs);
                break;
            }
        }
        rows.push(vec![
            name.to_string(),
            format!("{before:?}"),
            recovered_after.map_or("never".into(), |s| format!("<= {s} s")),
        ]);
    }
    println!(
        "{}",
        markdown_table(&["route computation", "hops before failure", "reconverged (4-hop path)"], &rows)
    );
    println!(
        "\nBoth engines produce identical forwarding behaviour (all probes match \
         BFS shortest paths) and both reconverge around failures — forwarding \
         code is untouched by the swap, exactly the paper's fungibility claim \
         for the network layer. Note link state floods more PDUs than distance \
         vector on small topologies, the classic trade.\n"
    );

    // Suppress unused warning for Router import used via net.router().
    let _ = |r: &mut Router| r.addr();
}
