//! E7 — interoperation (§3.1 objection 3 / §5 challenge 2): the
//! sublayered stack behind its shim against the monolithic RFC 793 stack,
//! both directions, clean and lossy.

use bench::{markdown_table, run_transfer, standard_link, StackKind};

fn main() {
    println!("# E7 — interop through the shim: sublayered <-> monolithic (RFC 793 wire)\n");
    let mut rows = Vec::new();
    for &loss in &[0.0, 0.05] {
        for kind in [
            StackKind::Mono,
            StackKind::ShimClientMonoServer,
            StackKind::MonoClientShimServer,
        ] {
            let r = run_transfer(kind, 100_000, standard_link(loss), 11, 600);
            rows.push(vec![
                format!("{:.0}%", loss * 100.0),
                r.kind.clone(),
                format!("{}/{}", r.delivered, r.bytes),
                format!("{:.2}", r.sim_seconds),
                format!("{:.3}", r.goodput_mbps),
                if r.complete { "yes".into() } else { "NO".into() },
            ]);
        }
    }
    println!(
        "{}",
        markdown_table(
            &["loss", "pairing", "delivered", "sim time (s)", "goodput (Mbit/s)", "complete"],
            &rows
        )
    );
    println!(
        "\nEvery pairing completes: the Figure-6 header is isomorphic to RFC 793 \
         and the stateless shim translation suffices for full interop — \
         handshake, bulk data, retransmission, and FIN teardown all cross the \
         implementation boundary.\n"
    );
}
