//! E21 — shard fault domains under load (`slshard` failover).
//!
//! Crashes one shard of an N-way [`slshard::ShardedHost`] mid-campaign
//! (deterministic injected panic) under both transport stacks and both
//! restart policies, comparing each faulted run against a no-fault
//! baseline of the same seed: healthy-shard clients must be untouched
//! byte for byte, victims must recover (restart policy) or end in typed
//! errors (never policy), recovery must fit a bounded number of
//! coordinator rounds, and the per-shard/global memory budgets must hold
//! mid-failover.
//!
//! Usage: `exp_failover [--smoke] [--json]`. The full run writes its
//! JSON summary to `BENCH_failover.json`; `--smoke` is the fast CI-sized
//! subset, which also runs every cell in inline mode and enforces the
//! threaded-vs-inline byte-determinism cross-check through the crash.

use bench::failover;
use bench::markdown_table;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let json = args.iter().any(|a| a == "--json");

    let outs = failover::sweep(smoke);
    let cross = failover::mode_cross_checks(&outs);
    let summary = failover::summary_json(&outs, &cross);

    if json {
        println!("{summary}");
    } else {
        let rows: Vec<Vec<String>> = outs
            .iter()
            .map(|o| {
                vec![
                    o.stack.to_string(),
                    o.mode.to_string(),
                    o.policy.to_string(),
                    o.shards.to_string(),
                    o.n.to_string(),
                    o.victim_shard.to_string(),
                    format!("{}/{}", o.victims_completed, o.victims),
                    o.victims_errored.to_string(),
                    o.healthy_disrupted.to_string(),
                    o.recovery_rounds.to_string(),
                    o.shard_restarts.to_string(),
                    o.failover_aborts.to_string(),
                    o.violations.len().to_string(),
                ]
            })
            .collect();
        println!("# E21: shard fault domains (slshard failover)\n");
        println!(
            "{}",
            markdown_table(
                &[
                    "stack",
                    "mode",
                    "policy",
                    "shards",
                    "n",
                    "victim",
                    "victims ok",
                    "victims err",
                    "healthy hit",
                    "rec rounds",
                    "restarts",
                    "aborts",
                    "viol"
                ],
                &rows
            )
        );
        for o in &outs {
            for v in &o.violations {
                println!(
                    "VIOLATION [{} {} {} shards={} n={}]: {v}",
                    o.stack, o.mode, o.policy, o.shards, o.n
                );
            }
        }
        for c in &cross {
            println!("VIOLATION [mode-determinism]: {c}");
        }
    }

    if !smoke {
        std::fs::write("BENCH_failover.json", format!("{summary}\n"))
            .expect("write BENCH_failover.json");
        if !json {
            println!("\nwrote BENCH_failover.json");
        }
    }

    let bad =
        outs.iter().map(|o| o.violations.len()).sum::<usize>() + cross.len();
    if bad > 0 {
        eprintln!("exp_failover: {bad} violation(s)");
        std::process::exit(1);
    }
}
