//! E15 — many-client scale benchmark for the `slhost` server host.
//!
//! Sweeps client counts × both transport stacks × timer-wheel vs naive
//! tick-all, checking workload invariants in every run (all echoes
//! complete and intact, no refusals, no leaked connections) and the
//! headline claim: the wheel does less timer work per tick than the
//! naive scan.
//!
//! Usage: `exp_scale [--smoke] [--json]`. The full run writes its JSON
//! summary to `BENCH_scale.json`; `--smoke` is a fast CI-sized subset.

use bench::markdown_table;
use bench::scale;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let json = args.iter().any(|a| a == "--json");

    let outs = scale::sweep(smoke);
    let cross = scale::cross_checks(&outs);
    let summary = scale::summary_json(&outs, &cross);

    if json {
        println!("{summary}");
    } else {
        let rows: Vec<Vec<String>> = outs
            .iter()
            .map(|o| {
                vec![
                    o.stack.to_string(),
                    o.timer.to_string(),
                    o.n.to_string(),
                    o.seed.to_string(),
                    format!("{}/{}", o.completed, o.n),
                    o.conns_per_sec.to_string(),
                    o.p50_us.to_string(),
                    o.p99_us.to_string(),
                    o.accept_p99_us.to_string(),
                    o.shard_occupancy.to_string(),
                    format!(
                        "{}.{:02}",
                        o.work_per_tick_x100 / 100,
                        o.work_per_tick_x100 % 100
                    ),
                    o.ticks.to_string(),
                    (o.crossings / o.n as u64).to_string(),
                    o.violations.len().to_string(),
                ]
            })
            .collect();
        println!("# E15: many-client scale (slhost)\n");
        println!(
            "{}",
            markdown_table(
                &[
                    "stack",
                    "timer",
                    "n",
                    "seed",
                    "done",
                    "conns/s",
                    "p50 us",
                    "p99 us",
                    "acc p99 us",
                    "occ %",
                    "work/tick",
                    "ticks",
                    "xings/conn",
                    "viol"
                ],
                &rows
            )
        );
        for o in &outs {
            for v in &o.violations {
                println!(
                    "VIOLATION [{} {} n={} seed={}]: {v}",
                    o.stack, o.timer, o.n, o.seed
                );
            }
        }
        for c in &cross {
            println!("VIOLATION [cross]: {c}");
        }
    }

    if !smoke {
        std::fs::write("BENCH_scale.json", format!("{summary}\n"))
            .expect("write BENCH_scale.json");
        if !json {
            println!("\nwrote BENCH_scale.json");
        }
    }

    let bad =
        outs.iter().map(|o| o.violations.len()).sum::<usize>() + cross.len();
    if bad > 0 {
        eprintln!("exp_scale: {bad} violation(s)");
        std::process::exit(1);
    }
}
