//! E16 — overload control benchmark for the `slhost` server host.
//!
//! Sweeps four campaign profiles (baseline, open-loop flood, slowloris,
//! mid-run drain) × both transport stacks, checking graceful-degradation
//! invariants in every run: no client silently starves, memory stays
//! under the configured budget, slow readers are evicted, the host
//! drains clean — and the headline claim that accepted connections keep
//! ≥ 80% of the uncontended per-connection goodput under a 4× flood.
//!
//! Usage: `exp_overload [--smoke] [--json]`. The full run writes its
//! JSON summary to `BENCH_overload.json`; `--smoke` is a one-seed CI
//! subset.

use bench::markdown_table;
use bench::overload;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let json = args.iter().any(|a| a == "--json");

    let outs = overload::sweep(smoke);
    let cross = overload::cross_checks(&outs);
    let summary = overload::summary_json(&outs, &cross);

    if json {
        println!("{summary}");
    } else {
        let rows: Vec<Vec<String>> = outs
            .iter()
            .map(|o| {
                vec![
                    o.profile.to_string(),
                    o.stack.to_string(),
                    o.seed.to_string(),
                    format!("{}/{}", o.completed, o.offered),
                    o.refused.to_string(),
                    o.evicted.to_string(),
                    o.deferrals.to_string(),
                    o.slow_drain_evictions.to_string(),
                    format!("{}k/{}k", o.mem_peak / 1024, o.budget_bytes / 1024),
                    o.goodput_kbps_p50.to_string(),
                    o.violations.len().to_string(),
                ]
            })
            .collect();
        println!("# E16: overload control (slhost)\n");
        println!(
            "{}",
            markdown_table(
                &[
                    "profile",
                    "stack",
                    "seed",
                    "done",
                    "refused",
                    "evicted",
                    "defers",
                    "slowdrain",
                    "mem/budget",
                    "p50 kbps",
                    "viol"
                ],
                &rows
            )
        );
        for o in &outs {
            for v in &o.violations {
                println!(
                    "VIOLATION [{} {} seed={}]: {v}",
                    o.profile, o.stack, o.seed
                );
            }
        }
        for c in &cross {
            println!("VIOLATION [cross]: {c}");
        }
    }

    if !smoke {
        std::fs::write("BENCH_overload.json", format!("{summary}\n"))
            .expect("write BENCH_overload.json");
        if !json {
            println!("\nwrote BENCH_overload.json");
        }
    }

    let bad =
        outs.iter().map(|o| o.violations.len()).sum::<usize>() + cross.len();
    if bad > 0 {
        eprintln!("exp_overload: {bad} violation(s)");
        std::process::exit(1);
    }
}
