//! E22 — compositional sublayer contracts: assume/guarantee chain vs the
//! fused product, with mutation canaries and the codec-equivalence
//! certificate.
//!
//! Usage: `exp_contracts [--smoke] [--json]`. The run is exhaustive and
//! deterministic either way (compositional checking *is* the CI-sized
//! configuration); the full run writes `BENCH_contracts.json`, and
//! `--smoke` only suppresses the file write so CI can assert byte-for-byte
//! determinism on the streamed JSON instead.

use bench::contracts;
use bench::markdown_table;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let json = args.iter().any(|a| a == "--json");

    let out = contracts::run(smoke);
    let summary = contracts::summary_json(&out);

    if json {
        println!("{summary}");
    } else {
        println!("# E22: compositional sublayer contracts (assume/guarantee chain)\n");
        let rows: Vec<Vec<String>> = out
            .rows
            .iter()
            .map(|r| {
                vec![
                    r.sublayer.to_string(),
                    r.assumes.join(" + "),
                    r.guarantees.join(" + "),
                    r.states.to_string(),
                    r.transitions.to_string(),
                    r.depth.to_string(),
                    if r.proved { "proved".into() } else { "FAILED".into() },
                ]
            })
            .collect();
        println!(
            "{}",
            markdown_table(
                &["contract", "assumes", "guarantees", "states", "transitions", "depth", "verdict"],
                &rows
            )
        );
        match &out.derived {
            Ok(p) => println!(
                "\nComposition: **{p}** derived from the four contracts alone — \
                 {} states total (additive), against a fused four-way estimate of \
                 **{}** states (multiplicative), the E6 handshake×window product's \
                 {} states, and an *explored* DM×OSR contract product of {} states.\n",
                out.sum_states, out.fused_estimate, out.combined_states, out.product_dm_osr_states
            ),
            Err(e) => println!("\nCOMPOSITION FAILED: {e}\n"),
        }
        println!("## Mutation canaries (each caught by the owning contract)\n");
        let crows: Vec<Vec<String>> = out
            .canaries
            .iter()
            .map(|c| {
                vec![
                    c.sublayer.to_string(),
                    c.steps.to_string(),
                    format!("{:?}", c.actions),
                ]
            })
            .collect();
        println!("{}", markdown_table(&["canary", "steps", "shrunk counterexample"], &crows));
        match &out.codec {
            Ok((w, t)) => println!(
                "\nCodec-equivalence certificate: **{w} alphabet words**, {t} lockstep \
                 transitions — the native format and RFC 793 normalize identically \
                 through the `slconform` taps (the paper's §3.1 isomorphism, checked).\n",
            ),
            Err(e) => println!("\nCODEC CERTIFICATE REFUSED: {e}\n"),
        }
    }

    if !smoke {
        std::fs::write("BENCH_contracts.json", format!("{summary}\n"))
            .expect("write BENCH_contracts.json");
        if !json {
            println!("wrote BENCH_contracts.json");
        }
    }

    if !out.violations.is_empty() {
        eprintln!("exp_contracts: {} violation(s)", out.violations.len());
        for v in &out.violations {
            eprintln!("  {v}");
        }
        std::process::exit(1);
    }
}
