//! E4/E5 — the §4.1 bit-stuffing experiments: rule-library search, exact
//! overhead analysis (paper: "1 in 128 vs 1 in 32"), and the verified
//! property inventory (the paper's "57 lemmas" analogue).

use bench::markdown_table;
use bitstuff::verify::{check_rule_with, ReceiverModel};
use bitstuff::{analyze, search, Flag, SearchSpace, StuffRule};

fn main() {
    println!("# E4/E5 — verified bit stuffing (paper §4.1)\n");

    // --- headline overhead comparison -------------------------------
    println!("## Overhead of the paper's two rules (random-bit model)\n");
    let hdlc = analyze(&StuffRule::hdlc()).unwrap();
    let low = analyze(&StuffRule::low_overhead()).unwrap();
    println!(
        "{}",
        markdown_table(
            &["rule", "flag", "paper (naive) rate", "exact rate (ours)"],
            &[
                vec![
                    "after 11111 stuff 0 (HDLC)".into(),
                    format!("{}", Flag::hdlc()),
                    format!("{}", hdlc.naive_rate),
                    format!("{}", hdlc.exact_rate),
                ],
                vec![
                    "after 0000001 stuff 1".into(),
                    format!("{}", Flag::low_overhead()),
                    format!("{}", low.naive_rate),
                    format!("{}", low.exact_rate),
                ],
            ],
        )
    );
    println!(
        "Paper reports 1/32 vs 1/128 (naive window model). Exactly: HDLC's rule \
         costs {} (expected waiting time for five 1s is 62 bits) and the \
         alternate rule exactly {} — the improvement is {:.2}x, not 4x.\n",
        hdlc.exact_rate,
        low.exact_rate,
        hdlc.exact_rate.to_f64() / low.exact_rate.to_f64()
    );

    // --- full library search (the "66 alternate rules") -------------
    println!("## Rule library search (paper: \"it found 66 alternate stuffing rules\")\n");
    for (name, space) in [
        (
            "structured (trigger = substring of flag, len 5-7, 8-bit flags)",
            SearchSpace { flag_len: 8, trigger_lens: 5..=7, triggers_from_flag_only: true },
        ),
        (
            "full (any trigger len 1-7, 8-bit flags)",
            SearchSpace { flag_len: 8, trigger_lens: 1..=7, triggers_from_flag_only: false },
        ),
    ] {
        let (library, stats) = search(&space);
        let cheaper = search::cheaper_than_hdlc(&library);
        println!("### space: {name}\n");
        println!(
            "- candidates: {}\n- valid: {}\n- divergent: {}\n- false flag in body: {}\n- false flag at frame end: {}\n- valid rules cheaper than HDLC: {}\n",
            stats.candidates,
            stats.valid,
            stats.divergent,
            stats.false_flag_in_body,
            stats.false_flag_at_end,
            cheaper
        );
        println!("Ten cheapest valid rules:\n");
        let rows: Vec<Vec<String>> = library
            .iter()
            .take(10)
            .map(|r| {
                vec![
                    format!("{}", r.flag),
                    format!("{}", r.rule),
                    format!("{}", r.overhead.exact_rate),
                ]
            })
            .collect();
        println!("{}", markdown_table(&["flag", "rule", "exact overhead"], &rows));
    }

    // --- receiver-model sensitivity (our finding) --------------------
    println!("## Receiver-model sensitivity (new finding)\n");
    let pairs = [
        ("HDLC", StuffRule::hdlc(), Flag::hdlc()),
        ("paper's low-overhead", StuffRule::low_overhead(), Flag::low_overhead()),
    ];
    let rows: Vec<Vec<String>> = pairs
        .iter()
        .map(|(name, rule, flag)| {
            vec![
                name.to_string(),
                format!("{:?}", check_rule_with(rule, flag, ReceiverModel::RestartScan).is_valid()),
                format!("{:?}", check_rule_with(rule, flag, ReceiverModel::Continuous).is_valid()),
            ]
        })
        .collect();
    println!(
        "{}",
        markdown_table(&["pairing", "valid (restart-scan receiver)", "valid (continuous detector)"], &rows)
    );
    println!(
        "The paper's low-overhead pairing is valid under the software-style \
         restart-scan receiver (the paper's RemoveFlags spec) but NOT under a \
         continuous shift-register detector: the opening flag's trailing 0, six \
         data zeros, and the closing flag's first 0 spell 00000010.\n"
    );

    // --- property inventory ------------------------------------------
    let props = bitstuff::verify::property_inventory();
    println!(
        "## Verified property inventory ({} named properties; paper: 57 lemmas / 1800 LoC in Coq)\n",
        props.len()
    );
    for p in props {
        println!("- {p}");
    }
}
