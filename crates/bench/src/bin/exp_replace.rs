//! E8 — replaceability (§5 challenge 5): swap congestion control, ISN
//! generation, and the whole connection-management scheme, touching only
//! configuration.

use bench::{markdown_table, run_transfer, standard_link, StackKind};

fn main() {
    println!("# E8 — sublayer replacement (§3: \"seamlessly replace congestion control\n# or connection management\")\n");
    println!(
        "Every variant below runs the same 100 KB / 2%-loss workload through the \
         same stack; the only difference is the constructor argument selecting \
         the sublayer mechanism. No other sublayer's code is touched.\n"
    );

    let mut rows = Vec::new();
    for (desc, kind) in [
        ("CC = Reno (baseline)", StackKind::Sub("reno")),
        ("CC = CUBIC", StackKind::Sub("cubic")),
        ("CC = rate-based (AIMD on rate)", StackKind::Sub("rate-based")),
        ("CC = fixed window (ablation)", StackKind::Sub("fixed-window")),
        ("CM = Watson timer-based (no handshake, no FIN)", StackKind::SubTimerCm("reno")),
        ("RD ablation: SACK advertisement off", StackKind::SubNoSack),
    ] {
        let r = run_transfer(kind, 100_000, standard_link(0.02), 21, 600);
        rows.push(vec![
            desc.to_string(),
            format!("{:.2}", r.sim_seconds),
            format!("{:.3}", r.goodput_mbps),
            r.frames_on_wire.to_string(),
            if r.complete { "yes".into() } else { "NO".into() },
        ]);
    }
    println!(
        "{}",
        markdown_table(
            &["replaced mechanism", "sim time (s)", "goodput (Mbit/s)", "wire frames", "complete"],
            &rows
        )
    );
    println!(
        "\nNotes:\n\
         - The timer-based CM (paper [31]) removes the handshake entirely: the \
           first data packet both opens the connection and carries payload — \
           observe the lower frame count.\n\
         - ISN generators (RFC 793 clock vs RFC 1948 keyed hash) are likewise \
           swappable; both are exercised by the test suite (`both_isn_generators_work`).\n\
         - Lines of code touched per swap: **one constructor argument** — the \
           paper's fungibility claim (T3) made literal.\n"
    );
}
