//! E14 — adversarial-peer robustness campaigns against both stacks.
//!
//! A deterministic man-in-the-middle forges RSTs/SYNs/data at configured
//! sequence-guessing skill, replays and fuzzily mutates frames, and mounts
//! spoofed SYN floods, while a legitimate transfer runs through it. Each
//! run judges the RFC 5961-shaped invariants: liveness and integrity below
//! the attacker's knowledge threshold, challenge ACKs instead of spurious
//! resets, bounded half-open and buffer memory, and an *expected* surfaced
//! reset for the exact-sequence oracle attacker.
//!
//! `--smoke` runs a 3-profile x 1-seed subset (used by CI);
//! `--json` prints only the JSON document.
//! Exits non-zero if any invariant is violated.

use bench::attack::{run_sweep, summary_json, AttackProfile, AttackStack};
use bench::markdown_table;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let json_only = args.iter().any(|a| a == "--json");

    let (profiles, seeds): (Vec<AttackProfile>, Vec<u64>) = if smoke {
        (
            vec![
                AttackProfile::InWindowRst,
                AttackProfile::OracleRst,
                AttackProfile::SynFlood,
            ],
            vec![1],
        )
    } else {
        (AttackProfile::all().to_vec(), vec![1, 2, 3])
    };
    let outs = run_sweep(&profiles, &AttackStack::all(), &seeds);
    let violations: usize = outs.iter().map(|o| o.violations.len()).sum();

    if json_only {
        println!("{}", summary_json(&outs));
    } else {
        println!("# E14 — adversarial robustness: {} runs\n", outs.len());
        println!(
            "Profiles: {}. Seeds: {:?}. Both stacks behind the same attacker.\n",
            profiles.iter().map(|p| p.name()).collect::<Vec<_>>().join(", "),
            seeds
        );
        let rows: Vec<Vec<String>> = outs
            .iter()
            .map(|o| {
                vec![
                    o.profile.to_string(),
                    o.stack.to_string(),
                    o.seed.to_string(),
                    format!("{}/{}", o.delivered, o.payload),
                    o.client_error.map_or("-".into(), |e| format!("{e:?}")),
                    o.counters.forged_segments.to_string(),
                    o.counters.challenge_acks.to_string(),
                    format!(
                        "{}/{}",
                        o.counters.syn_cookies_sent, o.counters.syn_cookies_validated
                    ),
                    o.max_half_open.to_string(),
                    o.counters.bad_frames_rejected.to_string(),
                    if o.ok() { "ok".into() } else { o.violations.join("; ") },
                ]
            })
            .collect();
        println!(
            "{}",
            markdown_table(
                &[
                    "profile",
                    "stack",
                    "seed",
                    "delivered",
                    "client err",
                    "forged",
                    "challenges",
                    "cookies s/v",
                    "half-open",
                    "bad frames",
                    "verdict"
                ],
                &rows
            )
        );
        println!("\n## JSON summary\n\n```json\n{}\n```", summary_json(&outs));
        println!(
            "\n{} campaigns, {} invariant violations.",
            outs.len(),
            violations
        );
    }

    if violations > 0 {
        std::process::exit(1);
    }
}
