//! E11 — header isomorphism and size (§3.1 objection 3 / Figure 6): the
//! native sublayered header vs RFC 793, and what the shim preserves.

use bench::markdown_table;
use sublayer_core::wire::Packet;

fn main() {
    println!("# E11 — native Figure-6 header vs RFC 793\n");
    // RFC 793 without options, as carried on our simulated network:
    // 8 (addresses) + 20 (TCP header).
    let rfc793 = 8 + 20;
    let rfc793_syn = 8 + 24; // + MSS option
    let rows = vec![
        vec!["RFC 793 (data/ack)".into(), rfc793.to_string(), "-".into()],
        vec!["RFC 793 (SYN, MSS option)".into(), rfc793_syn.to_string(), "-".into()],
        vec![
            "native sublayered, no SACK".into(),
            Packet::header_len(0).to_string(),
            format!("+{}", Packet::header_len(0) as i64 - rfc793 as i64),
        ],
        vec![
            "native sublayered, 1 SACK range".into(),
            Packet::header_len(1).to_string(),
            format!("+{}", Packet::header_len(1) as i64 - rfc793 as i64),
        ],
        vec![
            "native sublayered, 2 SACK ranges".into(),
            Packet::header_len(2).to_string(),
            format!("+{}", Packet::header_len(2) as i64 - rfc793 as i64),
        ],
    ];
    println!("{}", markdown_table(&["header", "bytes on wire", "vs RFC 793"], &rows));
    println!(
        "\nThe native header costs 8 extra bytes over bare RFC 793 — exactly the \
         redundant ISN pair the paper acknowledges (\"static after the initial \
         handshake\") plus a magic/flags byte. The shim removes the redundancy \
         entirely when interoperating: on the wire against a monolithic peer \
         the translated segments are byte-identical RFC 793.\n\n\
         Field mapping (isomorphism, §3.1):\n\
         - ports            <-> DM subheader\n\
         - SYN/FIN/RST      <-> CM flags\n\
         - ISNs (SYN seq)   <-> CM isn/ack_isn\n\
         - seq/ack          <-> RD subheader\n\
         - window           <-> OSR rcv_wnd\n\
         - (SACK: RD-private; no RFC 793 home, dropped by the shim)\n"
    );
}
