//! E1 — data-link sublayering (§2.1, Figure 2): the four-sublayer stack
//! end-to-end with independent sublayer swaps, plus detector strength and
//! MAC (broadcast) results.

use bench::markdown_table;
use datalink::{
    mac_simulate, ArqScheme, CobsFramer, Crc, DataLinkStack, ErrorDetector, Fletcher16,
    FourBFiveB, HdlcFramer, InternetChecksum, LengthFramer, MacConfig, MacScheme, Manchester,
    Nrz, Nrzi, XorParity,
};
use netsim::{two_party, DetRng, Dur, FaultProfile, LinkParams, StackNode, Time};

fn transfer_with(
    mk: &dyn Fn() -> DataLinkStack,
    fault: FaultProfile,
    seed: u64,
) -> (bool, u64, String) {
    let mut a = mk();
    let b = mk();
    let desc = a.describe();
    let msgs: Vec<Vec<u8>> = (0..40u8).map(|i| vec![i; (i as usize % 50) + 1]).collect();
    for m in &msgs {
        a.send(m.clone());
    }
    let params = LinkParams::delay_only(Dur::from_millis(2)).with_fault(fault);
    let (mut net, _na, nb) = two_party(seed, a, b, params);
    net.poll_all();
    net.run_to_idle(Time::ZERO + Dur::from_secs(3600));
    let node = net.node_mut::<StackNode<DataLinkStack>>(nb);
    let ok = node.stack.recv_all() == msgs;
    let drops = node.stack.stats.detector_drops + node.stack.stats.coding_errors;
    (ok, drops, desc)
}

fn main() {
    println!("# E1 — the sublayered data link stack (Figure 2)\n");
    println!("Workload: 40 frames over a link with 10% drop + 5% corruption.\n");
    let fault = FaultProfile { drop: 0.1, corrupt: 0.05, ..Default::default() };

    #[allow(clippy::type_complexity)]
    let combos: Vec<(&str, Box<dyn Fn() -> DataLinkStack>)> = vec![
        ("baseline", Box::new(|| DataLinkStack::new(Box::new(Nrzi), Box::new(HdlcFramer::new()), Box::new(Crc::crc32()), ArqScheme::SelectiveRepeat { window: 8 }, Dur::from_millis(50)))),
        ("swap detector -> CRC-64", Box::new(|| DataLinkStack::new(Box::new(Nrzi), Box::new(HdlcFramer::new()), Box::new(Crc::crc64()), ArqScheme::SelectiveRepeat { window: 8 }, Dur::from_millis(50)))),
        ("swap framer -> COBS", Box::new(|| DataLinkStack::new(Box::new(Nrzi), Box::new(CobsFramer), Box::new(Crc::crc32()), ArqScheme::SelectiveRepeat { window: 8 }, Dur::from_millis(50)))),
        ("swap coding -> Manchester", Box::new(|| DataLinkStack::new(Box::new(Manchester), Box::new(HdlcFramer::new()), Box::new(Crc::crc32()), ArqScheme::SelectiveRepeat { window: 8 }, Dur::from_millis(50)))),
        ("swap coding -> 4B/5B", Box::new(|| DataLinkStack::new(Box::new(FourBFiveB), Box::new(LengthFramer), Box::new(Crc::crc16_ccitt()), ArqScheme::SelectiveRepeat { window: 8 }, Dur::from_millis(50)))),
        ("swap ARQ -> go-back-N", Box::new(|| DataLinkStack::new(Box::new(Nrz), Box::new(HdlcFramer::new()), Box::new(Crc::crc32()), ArqScheme::GoBackN { window: 8 }, Dur::from_millis(50)))),
    ];
    let mut rows = Vec::new();
    for (i, (what, mk)) in combos.iter().enumerate() {
        let (ok, drops, desc) = transfer_with(mk.as_ref(), fault.clone(), 100 + i as u64);
        rows.push(vec![
            what.to_string(),
            desc,
            drops.to_string(),
            if ok { "yes".into() } else { "NO".into() },
        ]);
    }
    println!(
        "{}",
        markdown_table(&["swap", "stack (ARQ / detector / framer / coding)", "frames caught below ARQ", "all delivered"], &rows)
    );
    println!("\nEach swap touches exactly one constructor argument (test T3).\n");

    println!("## Detector strength: residual undetected corruption\n");
    let dets: Vec<Box<dyn ErrorDetector>> = vec![
        Box::new(XorParity),
        Box::new(InternetChecksum),
        Box::new(Fletcher16),
        Box::new(Crc::crc16_ccitt()),
        Box::new(Crc::crc32()),
    ];
    let mut rows = Vec::new();
    let mut rng = DetRng::new(99);
    for det in dets {
        let trials = 20_000;
        let mut undetected = 0u64;
        for _ in 0..trials {
            let data = rng.bytes(64);
            let mut framed = det.protect(&data);
            // Burst of 1-4 byte-aligned random corruptions.
            let n = rng.range(1, 4) as usize;
            for _ in 0..n {
                let i = rng.below(framed.len() as u64) as usize;
                framed[i] ^= rng.next_u32() as u8 | 1;
            }
            if let Ok(d) = det.verify(&framed) {
                if d != data {
                    undetected += 1;
                }
            }
        }
        rows.push(vec![
            det.name().to_string(),
            det.check_len().to_string(),
            format!("{undetected}/{trials}"),
        ]);
    }
    println!("{}", markdown_table(&["detector", "check bytes", "undetected corruptions"], &rows));

    println!("\n## MAC alternative (broadcast links, §2.1): throughput\n");
    let mut rows = Vec::new();
    for scheme in [MacScheme::SlottedAloha, MacScheme::CsmaNonPersistent, MacScheme::CsmaPersistent] {
        let cfg = MacConfig {
            scheme,
            stations: 20,
            arrival_prob: 0.01,
            tx_prob: 0.05,
            slots: 200_000,
            seed: 9,
            max_backoff_exp: 8,
            frame_slots: 10,
        };
        let st = mac_simulate(&cfg);
        rows.push(vec![
            scheme.name().to_string(),
            format!("{:.3}", st.successes as f64 * 10.0 / st.slots as f64),
            format!("{:.3}", st.fairness()),
        ]);
    }
    println!("{}", markdown_table(&["scheme", "goodput (fraction of slots)", "Jain fairness"], &rows));
}
