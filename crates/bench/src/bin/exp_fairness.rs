//! E19 — Congestion survival: fairness, collapse and bufferbloat under
//! fan-in overload.
//!
//! Sweeps the shared window-dynamics controllers (NewReno, CUBIC) x both
//! stacks x three seeds over `topo_fanin`: three greedy flows offering
//! 4x the 2 Mbps bottleneck's capacity for a fixed 20 s horizon. Gated
//! invariants: no congestion collapse (aggregate goodput >= 70% of
//! capacity), stream integrity, no spurious abort, no starved flow.
//! Reported: Jain fairness index (permille), peak bottleneck queue delay
//! (bufferbloat), absorbed CC loss/recovery counters.
//!
//! `--smoke` runs NewReno x both stacks x 1 seed (used by CI);
//! `--json` prints only the JSON document (byte-identical per seed).
//! Exits non-zero if any invariant is violated.

use bench::fairness::{run_sweep, summary_json, CONTROLLERS};
use bench::markdown_table;
use slconform::Kind;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let json_only = args.iter().any(|a| a == "--json");

    let (controllers, seeds): (Vec<&'static str>, Vec<u64>) = if smoke {
        (vec!["newreno"], vec![1])
    } else {
        (CONTROLLERS.to_vec(), vec![1, 2, 3])
    };
    let outs = run_sweep(&controllers, &[Kind::Sub, Kind::Mono], &seeds);
    let violations: usize = outs.iter().map(|o| o.violations.len()).sum();

    if json_only {
        println!("{}", summary_json(&outs));
    } else {
        println!("# E19 — Congestion survival: {} fairness campaigns\n", outs.len());
        println!(
            "Controllers: {}. Seeds: {:?}. {} greedy flows at {}x offered load \
             over the {} Mbps fan-in bottleneck, {} s horizon.\n",
            controllers.join(", "),
            seeds,
            bench::fairness::FLOWS,
            bench::fairness::OVERLOAD,
            bench::fairness::BOTTLENECK_BPS / 1_000_000,
            bench::fairness::HORIZON_SECS,
        );
        let rows: Vec<Vec<String>> = outs
            .iter()
            .map(|o| {
                vec![
                    o.cc.to_string(),
                    o.stack.to_string(),
                    o.seed.to_string(),
                    format!("{:?}", o.delivered),
                    format!("{}%", o.utilization_pct),
                    format!("{:.3}", o.jain_permille as f64 / 1000.0),
                    o.peak_queue_ms.to_string(),
                    o.dupack_losses.to_string(),
                    o.fast_recoveries.to_string(),
                    o.rto_resets.to_string(),
                    if o.ok() { "ok".into() } else { o.violations.join("; ") },
                ]
            })
            .collect();
        println!(
            "{}",
            markdown_table(
                &[
                    "cc", "stack", "seed", "delivered", "util", "jain", "peak q ms",
                    "dupack loss", "fast rec", "rto", "verdict"
                ],
                &rows
            )
        );
        println!("\n## JSON summary\n\n```json\n{}\n```", summary_json(&outs));
        println!("\n{} campaigns, {} invariant violations.", outs.len(), violations);
    }

    if !smoke {
        std::fs::write("BENCH_fairness.json", format!("{}\n", summary_json(&outs)))
            .expect("write BENCH_fairness.json");
        if !json_only {
            println!("\nwrote BENCH_fairness.json");
        }
    }

    if violations > 0 {
        std::process::exit(1);
    }
}
