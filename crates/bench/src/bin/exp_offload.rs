//! E10 — hardware-offload partitions (§3.1 objection 2, §5 challenge 6):
//! NIC/host boundary load for each cut point of the sublayer stack,
//! measured on a real workload's crossing counts.

use bench::{crossings_for_workload, markdown_table};
use sublayer_core::offload::{analyze, Partition};

fn main() {
    println!("# E10 — offload partitions: NIC/host boundary load (paper Figure 5)\n");
    for (name, loss) in [("clean link", 0.0), ("5% loss", 0.05)] {
        println!("## Workload: 200 KB transfer, {name}\n");
        let cx = crossings_for_workload(200_000, loss, 31);
        let rows: Vec<Vec<String>> = Partition::all()
            .iter()
            .map(|&p| {
                let l = analyze(&cx, p);
                vec![
                    l.partition.name().to_string(),
                    l.crossings.to_string(),
                    l.bytes.to_string(),
                    l.retransmissions_on_nic.to_string(),
                ]
            })
            .collect();
        println!(
            "{}",
            markdown_table(
                &["partition", "boundary crossings", "boundary bytes", "loss recovery on NIC"],
                &rows
            )
        );
    }
    println!(
        "The paper's preferred cut — DM+CM+RD in hardware, OSR in software — is \
         the narrowest boundary: only clean segments and summarized congestion \
         signals cross, and under loss the gap to the other cuts *widens* \
         because acks and retransmissions stay on the NIC. This is the \
         \"principled way to offload parts of TCP\" of §3.1.\n"
    );
}
