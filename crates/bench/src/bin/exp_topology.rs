//! E18 — Internet-in-a-box: topology campaigns across the netlayer fabric.
//!
//! Sweeps six topology profiles (two-hop baseline, rerouting diamond,
//! flapping diamond, fan-in bottleneck, restarting NAT, long-haul
//! partition) x both stacks x three seeds (36 runs). Every topology is
//! gated by the static forwarding check before traffic; every run is
//! judged on the universal invariants: terminal outcome, stream
//! integrity, bounded retransmit memory, no deadlock, plus per-profile
//! expectations (reroute observed, typed NAT abort + clean reconnect).
//!
//! `--smoke` runs a 3-profile x 1-seed subset (used by CI);
//! `--json` prints only the JSON document (byte-identical per seed).
//! Exits non-zero if any invariant is violated.

use bench::markdown_table;
use bench::topology::{run_sweep, summary_json, TopoProfile};
use slconform::Kind;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let json_only = args.iter().any(|a| a == "--json");

    let (profiles, seeds): (Vec<TopoProfile>, Vec<u64>) = if smoke {
        (
            vec![
                TopoProfile::DiamondReroute,
                TopoProfile::NatRestart,
                TopoProfile::LongHaulPartition,
            ],
            vec![1],
        )
    } else {
        (TopoProfile::all().to_vec(), vec![1, 2, 3])
    };
    let outs = run_sweep(&profiles, &[Kind::Sub, Kind::Mono], &seeds);
    let violations: usize = outs.iter().map(|o| o.violations.len()).sum();

    if json_only {
        println!("{}", summary_json(&outs));
    } else {
        println!("# E18 — Internet-in-a-box: {} topology campaigns\n", outs.len());
        println!(
            "Profiles: {}. Seeds: {:?}. Both stacks, client keepalive 10s/2s/x5.\n",
            profiles.iter().map(|p| p.name()).collect::<Vec<_>>().join(", "),
            seeds
        );
        let rows: Vec<Vec<String>> = outs
            .iter()
            .map(|o| {
                let errs: Vec<String> = o
                    .client_errors
                    .iter()
                    .map(|e| e.map_or("-".into(), |e| format!("{e:?}")))
                    .collect();
                vec![
                    o.profile.to_string(),
                    o.stack.to_string(),
                    o.seed.to_string(),
                    format!(
                        "{}/{}",
                        o.delivered.iter().sum::<usize>(),
                        o.payload * o.delivered.len().max(1)
                    ),
                    errs.join(","),
                    o.reconnect_ok.map_or("-".into(), |b| b.to_string()),
                    o.reroutes.to_string(),
                    o.max_rtx.to_string(),
                    format!("{:.1}", o.sim_ms as f64 / 1000.0),
                    if o.ok() { "ok".into() } else { o.violations.join("; ") },
                ]
            })
            .collect();
        println!(
            "{}",
            markdown_table(
                &[
                    "profile", "stack", "seed", "delivered", "client errs", "reconnect",
                    "reroutes", "max rtx", "sim s", "verdict"
                ],
                &rows
            )
        );
        println!("\n## JSON summary\n\n```json\n{}\n```", summary_json(&outs));
        println!("\n{} campaigns, {} invariant violations.", outs.len(), violations);
    }

    if violations > 0 {
        std::process::exit(1);
    }
}
