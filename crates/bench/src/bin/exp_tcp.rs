//! E3/E9 — sublayered TCP end-to-end behaviour and the performance
//! comparison against the monolithic baseline (§3.1 objection 4: does
//! sublayering cost performance?).

use bench::{markdown_table, run_transfer, standard_link, StackKind};

fn main() {
    println!("# E3/E9 — sublayered vs monolithic TCP: goodput across loss rates\n");
    println!("Link: 20 Mbit/s, 10 ms one-way delay (RTT 20 ms). 200 KB transfers.\n");

    let losses = [0.0, 0.01, 0.02, 0.05, 0.10];
    let mut rows = Vec::new();
    for &loss in &losses {
        for kind in [StackKind::Mono, StackKind::Sub("reno")] {
            let r = run_transfer(kind, 200_000, standard_link(loss), 42, 600);
            rows.push(vec![
                format!("{:.0}%", loss * 100.0),
                r.kind.clone(),
                format!("{:.2}", r.sim_seconds),
                format!("{:.3}", r.goodput_mbps),
                r.frames_on_wire.to_string(),
                if r.complete { "yes".into() } else { "NO".into() },
            ]);
        }
    }
    println!(
        "{}",
        markdown_table(
            &["loss", "stack", "sim time (s)", "goodput (Mbit/s)", "wire frames", "complete"],
            &rows
        )
    );
    println!(
        "\nBoth stacks complete at every loss rate; the sublayered stack tracks \
         the monolithic baseline closely (same MSS, same Reno dynamics), \
         supporting the paper's §3.1 argument that sublayer crossings are not \
         inherently expensive.\n"
    );

    println!("## Rate-controller comparison on the sublayered stack (2% loss)\n");
    let mut rows = Vec::new();
    for cc in ["reno", "cubic", "rate-based", "fixed-window"] {
        let r = run_transfer(StackKind::Sub(cc), 200_000, standard_link(0.02), 7, 600);
        rows.push(vec![
            cc.to_string(),
            format!("{:.2}", r.sim_seconds),
            format!("{:.3}", r.goodput_mbps),
            r.frames_on_wire.to_string(),
            if r.complete { "yes".into() } else { "NO".into() },
        ]);
    }
    println!(
        "{}",
        markdown_table(
            &["rate controller", "sim time (s)", "goodput (Mbit/s)", "wire frames", "complete"],
            &rows
        )
    );
}
