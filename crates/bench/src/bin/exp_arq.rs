//! E12 — error-recovery sublayer replaceability (§2.1): ARQ scheme
//! comparison (stop-and-wait / go-back-N / selective repeat) across loss
//! rates on a bandwidth-delay link.

use bench::markdown_table;
use datalink::{ArqEndpoint, ArqScheme};
use netsim::{two_party, Dur, FaultProfile, LinkParams, StackNode, Time};

fn run(scheme: ArqScheme, loss: f64, seed: u64) -> (f64, u64) {
    let n_msgs = 200usize;
    let mut a = ArqEndpoint::new(scheme, Dur::from_millis(60));
    let b = ArqEndpoint::new(scheme, Dur::from_millis(60));
    for i in 0..n_msgs {
        a.send(vec![(i % 256) as u8; 200]);
    }
    let params = LinkParams::delay_only(Dur::from_millis(10))
        .with_rate(2_000_000)
        .with_fault(FaultProfile::lossy(loss));
    let (mut net, _na, nb) = two_party(seed, a, b, params);
    net.poll_all();
    net.run_to_idle(Time::ZERO + Dur::from_secs(3600));
    let done = net.now().secs_f64();
    let rx = &mut net.node_mut::<StackNode<ArqEndpoint>>(nb).stack;
    let got = rx.recv_all();
    assert_eq!(got.len(), n_msgs, "{} loss {loss}", scheme.name());
    let retx = rx.stats.retransmissions;
    let tx_retx = {
        let tx = &net.node::<StackNode<ArqEndpoint>>(0).stack;
        tx.stats.retransmissions
    };
    (done, retx + tx_retx)
}

fn main() {
    println!("# E12 — ARQ scheme comparison (error-recovery sublayer, §2.1)\n");
    println!("Workload: 200 messages x 200 B over a 2 Mbit/s, 10 ms link.\n");
    let mut rows = Vec::new();
    for &loss in &[0.0, 0.05, 0.15, 0.30] {
        for scheme in [
            ArqScheme::StopAndWait,
            ArqScheme::GoBackN { window: 8 },
            ArqScheme::SelectiveRepeat { window: 8 },
        ] {
            let (secs, retx) = run(scheme, loss, 5);
            rows.push(vec![
                format!("{:.0}%", loss * 100.0),
                scheme.name().to_string(),
                format!("{secs:.2}"),
                retx.to_string(),
            ]);
        }
    }
    println!(
        "{}",
        markdown_table(&["loss", "scheme", "completion (sim s)", "retransmissions"], &rows)
    );
    println!(
        "\nShape: stop-and-wait pays one RTT per message regardless of loss; \
         go-back-N wins at low loss but resends whole windows as loss grows; \
         selective repeat dominates under loss by retransmitting only what was \
         lost. Swapping schemes is one constructor argument (test T3).\n"
    );
}
