//! E-chaos — adversarial fault campaigns against both stacks.
//!
//! Sweeps the five chaos profiles x five seeds x both stacks (50 runs)
//! and checks each run's robustness invariants: eventual delivery or a
//! clean surfaced abort, data integrity, bounded retransmissions, and no
//! deadlock after an abort. The JSON summary is deterministic: identical
//! seeds produce byte-identical output.
//!
//! `--smoke` runs a 2-profile x 1-seed subset (used by CI);
//! `--json` prints only the JSON document.
//! Exits non-zero if any invariant is violated.

use bench::chaos::{run_sweep, summary_json, ChaosProfile, ChaosStack};
use bench::markdown_table;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let json_only = args.iter().any(|a| a == "--json");

    let (profiles, seeds): (Vec<ChaosProfile>, Vec<u64>) = if smoke {
        (vec![ChaosProfile::Blackout, ChaosProfile::MixedMayhem], vec![1])
    } else {
        (ChaosProfile::all().to_vec(), vec![1, 2, 3, 4, 5])
    };
    let outs = run_sweep(&profiles, &ChaosStack::all(), &seeds);
    let violations: usize = outs.iter().map(|o| o.violations.len()).sum();

    if json_only {
        println!("{}", summary_json(&outs));
    } else {
        println!("# E-chaos — fault campaigns: {} runs\n", outs.len());
        println!(
            "Profiles: {}. Seeds: {:?}. Both stacks, keepalive 10s/2s/x5.\n",
            profiles.iter().map(|p| p.name()).collect::<Vec<_>>().join(", "),
            seeds
        );
        let rows: Vec<Vec<String>> = outs
            .iter()
            .map(|o| {
                vec![
                    o.profile.to_string(),
                    o.stack.to_string(),
                    o.seed.to_string(),
                    format!("{}/{}", o.delivered, o.payload),
                    o.client_error.map_or("-".into(), |e| format!("{e:?}")),
                    o.server_error.map_or("-".into(), |e| format!("{e:?}")),
                    format!("{:.1}", o.sim_ms as f64 / 1000.0),
                    o.wire_frames.to_string(),
                    if o.ok() { "ok".into() } else { o.violations.join("; ") },
                ]
            })
            .collect();
        println!(
            "{}",
            markdown_table(
                &[
                    "profile", "stack", "seed", "delivered", "client err", "server err",
                    "sim s", "frames", "verdict"
                ],
                &rows
            )
        );
        println!("\n## JSON summary\n\n```json\n{}\n```", summary_json(&outs));
        println!(
            "\n{} campaigns, {} invariant violations.",
            outs.len(),
            violations
        );
    }

    if violations > 0 {
        std::process::exit(1);
    }
}
