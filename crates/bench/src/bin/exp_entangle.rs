//! E6b — state entanglement: identical workloads through the monolithic
//! and sublayered stacks, comparing the field-sharing matrices (paper
//! §2.3: shared PCB state is what makes monolithic reasoning hard).

use netsim::{two_party, Dur, FaultProfile, LinkParams, StackNode, Time};
use slmetrics::InteractionMatrix;
use sublayer_core::{SlConfig, SlTcpStack};
use tcp_mono::stack::TcpStack;
use tcp_mono::wire::Endpoint;

const A: u32 = 0x0A000001;
const B: u32 = 0x0A000002;

fn link() -> LinkParams {
    LinkParams::delay_only(Dur::from_millis(10)).with_fault(FaultProfile::lossy(0.05))
}

fn drive_mono() -> InteractionMatrix {
    let log = slmetrics::shared();
    let mut c = TcpStack::new(A, log.clone());
    let mut s = TcpStack::new(B, log.clone());
    s.listen(80);
    let conn = c.connect(Time::ZERO, 5000, Endpoint::new(B, 80));
    let (mut net, nc, ns) = two_party(1, c, s, link());
    net.poll_all();
    net.run_until(Time::ZERO + Dur::from_secs(2));
    net.node_mut::<StackNode<TcpStack>>(nc).stack.send(conn, &vec![1u8; 100_000]);
    net.poll_all();
    for _ in 0..120 {
        let dl = net.now() + Dur::from_secs(1);
        net.run_until(dl);
        let st = &mut net.node_mut::<StackNode<TcpStack>>(ns).stack;
        if let Some(&sc) = st.established().first() {
            let _ = st.recv(sc);
        }
        net.poll_all();
    }
    net.node_mut::<StackNode<TcpStack>>(nc).stack.close(conn);
    net.poll_all();
    net.run_until(net.now() + Dur::from_secs(5));
    let m = InteractionMatrix::from_log(&log.borrow());
    m
}

fn drive_sub() -> InteractionMatrix {
    let log = slmetrics::shared();
    let mut c = SlTcpStack::new(A, SlConfig::default(), log.clone());
    let mut s = SlTcpStack::new(B, SlConfig::default(), log.clone());
    s.listen(80);
    let conn = c.connect(Time::ZERO, 5000, Endpoint::new(B, 80));
    let (mut net, nc, ns) = two_party(1, c, s, link());
    net.poll_all();
    net.run_until(Time::ZERO + Dur::from_secs(2));
    net.node_mut::<StackNode<SlTcpStack>>(nc).stack.send(conn, &vec![1u8; 100_000]);
    net.poll_all();
    for _ in 0..120 {
        let dl = net.now() + Dur::from_secs(1);
        net.run_until(dl);
        let st = &mut net.node_mut::<StackNode<SlTcpStack>>(ns).stack;
        if let Some(&sc) = st.established().first() {
            let _ = st.recv(sc);
        }
        net.poll_all();
    }
    net.node_mut::<StackNode<SlTcpStack>>(nc).stack.close(conn);
    net.poll_all();
    net.run_until(net.now() + Dur::from_secs(5));
    let m = InteractionMatrix::from_log(&log.borrow());
    m
}

fn main() {
    println!("# E6b — state entanglement under an identical workload (paper §2.3)\n");
    println!("Workload: 100 KB transfer + graceful close over a 5%-loss link.\n");
    let mono = drive_mono();
    let sub = drive_sub();
    println!("{}", mono.render_markdown("Monolithic TCP (subfunctions over one PCB)"));
    println!("{}", sub.render_markdown("Sublayered TCP (DM/CM/RD/OSR private state)"));
    println!(
        "Summary: monolithic entanglement score **{}** across **{}** interacting \
         subfunction pairs; sublayered score **{}** across **{}** pairs. Rust's \
         module privacy makes the sublayered zero *by construction* — exactly \
         the ownership argument the paper cites ([21]).",
        mono.entanglement_score(),
        mono.interacting_pairs(),
        sub.entanglement_score(),
        sub.interacting_pairs()
    );
}
