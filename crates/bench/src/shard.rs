//! E20 — the sharded multi-core host benchmark (`slshard`).
//!
//! One [`slshard::ShardedHost`] — N whole [`slhost`] hosts behind the
//! stateless 4-tuple shard router — serves a star of clients with
//! heavy-tailed request sizes ([`netsim::HeavyTailed`]) and RTT
//! diversity (four per-client link classes, 100 µs to 10 ms one-way).
//! Each client connects at a staggered time, sends one request, verifies
//! the echo byte-for-byte, lingers briefly (so a mid-run gauge sample
//! sees every connection open), then closes.
//!
//! Per-run invariants (any failure is a violation, reported and fatal to
//! `exp_shard`): every echo completes intact with no transport errors
//! and no refusals; every shard's memory peak stays within its own
//! budget and the per-shard peaks sum within the global budget (sum of
//! peaks bounds the peak of the sum, so this is conservative); the
//! global pressure floor never leaves Nominal under a sanely provisioned
//! fleet; no shard starves and per-shard work stays balanced
//! (max/mean frames ≤ 1.5); and every shard's table drains to empty.
//!
//! The smoke sweep runs each cell in both execution modes and requires
//! the threaded run's outcome to be byte-identical to the single-thread
//! inline reference — the determinism claim, enforced in CI.

use crate::scale::ScaleStack;
use netsim::{
    Dur, HeavyTailed, LinkParams, MultiStackNode, SimNet, Stack, StackNode, Time,
    TransportError,
};
use slhost::{EchoApp, Host, HostConfig, HostStack, ResourceBudget, ServedHost};
use slshard::{Mode, ShardedConfig, ShardedHost};
use sublayer_core::{SlConfig, SlTcpStack};
use tcp_mono::stack::TcpStack;
use tcp_mono::wire::Endpoint;

const SERVER_ADDR: u32 = crate::A;
const CLIENT_BASE: u32 = 0x0B00_0000;
const PORT: u16 = 80;
const CLIENT_PORT: u16 = 5000;
/// Gap between successive client connect times.
const STAGGER_NS: u64 = 20_000;
/// Heavy-tailed request sizes: mice of 64 B, elephants to 8 KiB.
const REQ_MIN: u64 = 64;
const REQ_MAX: u64 = 8192;
/// Idle hold after the echo completes, so the mid-run gauge sample sees
/// every connection open at once.
const LINGER_NS: u64 = 5_000_000_000;
/// One-way delay classes (RTT diversity), picked per client.
const DELAY_CLASSES_NS: [u64; 4] = [100_000, 500_000, 2_500_000, 10_000_000];
/// Per-shard byte budget; the global budget is `shards ×` this. Sized so
/// a healthy run never leaves Nominal — the invariants then prove the
/// budgets were *live but never exceeded*, not absent.
const SHARD_BUDGET: usize = 16 << 20;

fn dur(ns: u64) -> Dur {
    Dur::from_nanos(ns)
}

fn mode_label(m: Mode) -> &'static str {
    match m {
        Mode::Threaded => "threaded",
        Mode::Inline => "inline",
    }
}

/// One cell of the sweep.
#[derive(Clone, Copy, Debug)]
pub struct ShardParams {
    pub stack: ScaleStack,
    pub mode: Mode,
    pub shards: usize,
    pub n: usize,
    pub seed: u64,
}

/// Everything one run exposes: workload results, aggregated and
/// per-shard host counters, and the invariant violations (empty = clean).
#[derive(Clone, Debug)]
pub struct ShardOutcome {
    pub stack: &'static str,
    pub mode: &'static str,
    pub shards: usize,
    pub n: usize,
    pub seed: u64,
    pub completed: usize,
    pub corrupt: usize,
    pub client_errors: usize,
    pub first_error: Option<TransportError>,
    pub accepts: u64,
    pub accept_refusals: u64,
    pub conns_per_sec: u64,
    /// Connect-to-established (accept) latency percentiles, microseconds.
    pub accept_p50_us: u64,
    pub accept_p99_us: u64,
    /// Connect-to-echo-complete latency percentiles, microseconds.
    pub p50_us: u64,
    pub p99_us: u64,
    /// Echoed payload bytes, and what the workload demanded.
    pub echoed_bytes: u64,
    pub expected_bytes: u64,
    /// Fleet totals from the mid-run gauge sample: open connections,
    /// buffered bytes per open connection, worst-shard occupancy %.
    pub open_mid: u64,
    pub bytes_per_conn: u64,
    pub shard_occupancy: u64,
    /// Fleet memory: sum and worst shard of `mem_peak`, and peak bytes
    /// per connection (sum of peaks / peak connections) — the
    /// memory-per-connection headline.
    pub mem_peak_total: u64,
    pub mem_peak_worst_shard: u64,
    pub peak_bytes_per_conn: u64,
    pub conns_peak_total: u64,
    /// Per-shard frames handled (work balance), and max/mean ×100.
    pub shard_frames: Vec<u64>,
    pub balance_x100: u64,
    /// Per-shard `mem_peak` against the per-shard budget.
    pub shard_mem_peaks: Vec<u64>,
    pub shard_budget: u64,
    pub global_budget: u64,
    /// Global-ladder floor tier at the end of the run (0 = Nominal).
    pub final_floor: u8,
    pub crossings: u64,
    /// Fleet health gauges (E21 fault-domain plumbing): worst heartbeat
    /// age in rounds, supervisor restarts, failover-aborted connections,
    /// and coordinator waits on a slow shard's ring. All 0 in a healthy
    /// run — asserting them here keeps the gauges honest under load.
    pub heartbeat_age: u64,
    pub shard_restarts: u64,
    pub failover_aborts: u64,
    pub ring_stalls: u64,
    /// Fleet-wide connections still tracked at the horizon (leak check).
    pub server_residual: u64,
    pub sim_ms: u64,
    pub violations: Vec<String>,
}

#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum Phase {
    Idle,
    Connecting,
    Await,
    Linger,
    Closing,
    Done,
    Failed,
}

/// One scripted client: connect → request → verify echo → linger →
/// close. Verifies the echo streamingly (no per-client payload storage —
/// this scales to 500k clients).
struct ShardClient<S: HostStack> {
    stack: S,
    server: Endpoint,
    req: Vec<u8>,
    phase: Phase,
    conn: Option<S::ConnId>,
    got: usize,
    corrupt: bool,
    connect_at: Time,
    linger_until: Time,
    connected_at: Option<Time>,
    established_at: Option<Time>,
    done_at: Option<Time>,
    error: Option<TransportError>,
}

/// Deterministic request payload for client `i` (heavy-tailed length).
fn request(sizes: &HeavyTailed, i: usize) -> Vec<u8> {
    let len = sizes.size(i as u64) as usize;
    (0..len).map(|j| ((i * 131 + j * 7) % 251) as u8).collect()
}

impl<S: HostStack> ShardClient<S> {
    fn new(stack: S, connect_at: Time, req: Vec<u8>) -> Self {
        ShardClient {
            stack,
            server: Endpoint::new(SERVER_ADDR, PORT),
            req,
            phase: Phase::Idle,
            conn: None,
            got: 0,
            corrupt: false,
            connect_at,
            linger_until: Time::MAX,
            connected_at: None,
            established_at: None,
            done_at: None,
            error: None,
        }
    }

    fn drive(&mut self, now: Time) {
        if let (Some(id), None) = (self.conn, self.error) {
            if let Some(e) = self.stack.conn_error(id) {
                self.error = Some(e);
                self.phase = Phase::Failed;
            }
        }
        loop {
            match self.phase {
                Phase::Idle => {
                    if now < self.connect_at {
                        return;
                    }
                    match self.stack.try_connect(now, CLIENT_PORT, self.server) {
                        Ok(id) => {
                            self.conn = Some(id);
                            self.connected_at = Some(now);
                            self.phase = Phase::Connecting;
                        }
                        Err(e) => {
                            self.error = Some(e);
                            self.phase = Phase::Failed;
                        }
                    }
                }
                Phase::Connecting => {
                    let id = self.conn.expect("connected past Idle");
                    if !self.stack.is_established(id) {
                        return;
                    }
                    self.established_at = Some(now);
                    self.stack.send(id, &self.req);
                    self.phase = Phase::Await;
                }
                Phase::Await => {
                    let id = self.conn.expect("connected past Idle");
                    let data = self.stack.recv(id);
                    for &b in &data {
                        if self.got >= self.req.len() || b != self.req[self.got] {
                            self.corrupt = true;
                        }
                        self.got += 1;
                    }
                    if self.got < self.req.len() {
                        return;
                    }
                    self.done_at = Some(now);
                    self.linger_until = Time(now.nanos() + LINGER_NS);
                    self.phase = Phase::Linger;
                }
                Phase::Linger => {
                    if now < self.linger_until {
                        return;
                    }
                    let id = self.conn.expect("connected past Idle");
                    self.stack.close(id);
                    self.phase = Phase::Closing;
                }
                Phase::Closing => {
                    let id = self.conn.expect("connected past Idle");
                    if !self.stack.is_closed(id) {
                        return;
                    }
                    self.phase = Phase::Done;
                }
                Phase::Done | Phase::Failed => return,
            }
        }
    }
}

impl<S: HostStack> Stack for ShardClient<S> {
    fn on_frame(&mut self, now: Time, frame: &[u8]) {
        Stack::on_frame(&mut self.stack, now, frame);
        self.drive(now);
    }

    fn poll_transmit(&mut self, now: Time) -> Option<Vec<u8>> {
        Stack::poll_transmit(&mut self.stack, now)
    }

    fn poll_deadline(&self, now: Time) -> Option<Time> {
        let own = match self.phase {
            Phase::Idle => Some(self.connect_at),
            Phase::Linger => Some(self.linger_until),
            _ => None,
        };
        [own, Stack::poll_deadline(&self.stack, now)].into_iter().flatten().min()
    }

    fn on_tick(&mut self, now: Time) {
        Stack::on_tick(&mut self.stack, now);
        self.drive(now);
    }
}

/// Run one cell of the sweep.
pub fn run_one(p: ShardParams) -> ShardOutcome {
    match p.stack {
        ScaleStack::Sub => run_generic(p, |addr| {
            SlTcpStack::new(addr, SlConfig::default(), slmetrics::muted())
        }),
        ScaleStack::Mono => {
            run_generic(p, |addr| TcpStack::new(addr, slmetrics::muted()))
        }
    }
}

fn run_generic<S, F>(p: ShardParams, mk: F) -> ShardOutcome
where
    S: HostStack,
    F: Fn(u32) -> S + Send + Sync + Copy + 'static,
{
    let sizes = HeavyTailed::new(p.seed ^ 0x5EED_F10D, REQ_MIN, REQ_MAX);
    let expected_bytes: u64 = (0..p.n as u64).map(|i| sizes.size(i)).sum();
    // Per-shard hosts must hold every connection the router can send
    // them; 2× the fair share absorbs hash imbalance.
    let per_shard_conns = (p.n / p.shards.max(1)) * 2 + 1024;
    let host_cfg = HostConfig {
        listen_port: PORT,
        backlog: 1024,
        max_conns: per_shard_conns,
        batch_window: dur(50_000),
        budget: ResourceBudget::bytes(SHARD_BUDGET),
        refresh_every: dur(5_000_000),
        ..HostConfig::default()
    };
    let shard_cfg = ShardedConfig {
        shards: p.shards,
        seed: p.seed,
        batch_window: dur(50_000),
        ring_cap: 4096,
        global_budget: SHARD_BUDGET * p.shards,
        mode: p.mode,
        ..ShardedConfig::default()
    };
    let server: ShardedHost<S, EchoApp> = ShardedHost::new(shard_cfg, move |_shard| {
        ServedHost::new(Host::new(mk(SERVER_ADDR), host_cfg.clone()), EchoApp::default())
    });

    // Star with per-client RTT diversity: build the topology by hand so
    // each client link gets its own delay class.
    let mut net = SimNet::new(p.seed);
    let sid = net.add_node(Box::new(MultiStackNode::new(server)));
    let mut cids = Vec::with_capacity(p.n);
    for i in 0..p.n {
        let client = ShardClient::new(
            mk(CLIENT_BASE + i as u32),
            Time(1_000_000 + STAGGER_NS * i as u64),
            request(&sizes, i),
        );
        let cid = net.add_node(Box::new(StackNode::new(client)));
        let delay = DELAY_CLASSES_NS[sizes.pick(i as u64, 4) as usize];
        net.connect(sid, i, cid, 0, LinkParams::delay_only(dur(delay)));
        cids.push(cid);
    }
    net.poll_all();

    // Mid-linger: the last client has echoed (worst RTT plus transfer
    // slack) but nobody has closed — sample the gauges with every
    // connection open.
    let last_connect = 1_000_000 + STAGGER_NS * p.n as u64;
    let mid = Time(last_connect + 2_000_000_000);
    net.run_until(mid);
    let (open_mid, bytes_per_conn, shard_occupancy) = {
        let srv =
            &mut net.node_mut::<MultiStackNode<ShardedHost<S, EchoApp>>>(sid).stack;
        let (mid_counters, _, _) = srv.aggregate();
        (
            mid_counters.conns_open,
            mid_counters.bytes_per_conn,
            mid_counters.shard_occupancy,
        )
    };
    // Linger + close settle; the sublayered CM holds both closers in its
    // 10 s TIME_WAIT, so shard tables drain only after it expires.
    let horizon = Time(last_connect + 2_000_000_000 + LINGER_NS + 12_000_000_000);
    net.run_until(horizon);

    let mut completed = 0usize;
    let mut corrupt = 0usize;
    let mut client_errors = 0usize;
    let mut first_error: Option<TransportError> = None;
    let mut starved: Vec<usize> = Vec::new();
    let mut lat_us: Vec<u64> = Vec::new();
    let mut accept_us: Vec<u64> = Vec::new();
    let mut first_connect = u64::MAX;
    let mut last_done = 0u64;
    for (i, &cid) in cids.iter().enumerate() {
        let c = &net.node::<StackNode<ShardClient<S>>>(cid).stack;
        if c.corrupt {
            corrupt += 1;
        }
        if let Some(e) = c.error {
            client_errors += 1;
            first_error.get_or_insert(e);
        }
        if let (Some(t0), Some(te)) = (c.connected_at, c.established_at) {
            accept_us.push(te.nanos().saturating_sub(t0.nanos()) / 1_000);
        }
        match (c.connected_at, c.done_at) {
            (Some(t0), Some(t1)) if !c.corrupt => {
                completed += 1;
                lat_us.push(t1.nanos().saturating_sub(t0.nanos()) / 1_000);
                first_connect = first_connect.min(t0.nanos());
                last_done = last_done.max(t1.nanos());
            }
            _ => starved.push(i),
        }
    }
    lat_us.sort_unstable();
    accept_us.sort_unstable();
    let window = last_done.saturating_sub(first_connect);
    let conns_per_sec =
        (completed as u64 * 1_000_000_000).checked_div(window).unwrap_or(0);

    let srv = &mut net.node_mut::<MultiStackNode<ShardedHost<S, EchoApp>>>(sid).stack;
    let snaps = srv.snapshots();
    let shard_frames: Vec<u64> = snaps.iter().map(|s| s.counters.frames_in).collect();
    let shard_mem_peaks: Vec<u64> = snaps.iter().map(|s| s.counters.mem_peak).collect();
    let mut total = slmetrics::HostCounters::default();
    let (mut echoed, mut served) = (0u64, 0u64);
    let mut crossings = 0u64;
    for s in &snaps {
        total.absorb(&s.counters);
        echoed += s.app_a;
        served += s.app_b;
        crossings += s.crossings;
    }
    let _ = served;
    let max_frames = shard_frames.iter().copied().max().unwrap_or(0);
    let min_frames = shard_frames.iter().copied().min().unwrap_or(0);
    let mean_frames =
        (total.frames_in).checked_div(p.shards as u64).unwrap_or(0).max(1);
    let balance_x100 = max_frames * 100 / mean_frames;

    let mut out = ShardOutcome {
        stack: match p.stack {
            ScaleStack::Sub => "sub",
            ScaleStack::Mono => "mono",
        },
        mode: mode_label(p.mode),
        shards: p.shards,
        n: p.n,
        seed: p.seed,
        completed,
        corrupt,
        client_errors,
        first_error,
        accepts: total.accepts,
        accept_refusals: total.accept_refusals + total.pressure_refusals,
        conns_per_sec,
        accept_p50_us: crate::percentile(&accept_us, 50),
        accept_p99_us: crate::percentile(&accept_us, 99),
        p50_us: crate::percentile(&lat_us, 50),
        p99_us: crate::percentile(&lat_us, 99),
        echoed_bytes: echoed,
        expected_bytes,
        open_mid,
        bytes_per_conn,
        shard_occupancy,
        mem_peak_total: total.mem_peak,
        mem_peak_worst_shard: shard_mem_peaks.iter().copied().max().unwrap_or(0),
        peak_bytes_per_conn: total
            .mem_peak
            .checked_div(total.conns_peak)
            .unwrap_or(0),
        conns_peak_total: total.conns_peak,
        shard_frames,
        balance_x100,
        shard_mem_peaks,
        shard_budget: SHARD_BUDGET as u64,
        global_budget: (SHARD_BUDGET * p.shards) as u64,
        final_floor: match srv.global_floor() {
            slmetrics::Pressure::Nominal => 0,
            slmetrics::Pressure::Elevated => 1,
            slmetrics::Pressure::High => 2,
            slmetrics::Pressure::Critical => 3,
        },
        crossings,
        heartbeat_age: total.heartbeat_age,
        shard_restarts: total.shard_restarts,
        failover_aborts: total.failover_aborts,
        ring_stalls: total.ring_stalls,
        server_residual: snaps.iter().map(|s| s.counters.conns_open).sum(),
        sim_ms: net.now().nanos() / 1_000_000,
        violations: Vec::new(),
    };

    if out.completed != p.n {
        let head: Vec<String> =
            starved.iter().take(5).map(|i| i.to_string()).collect();
        out.violations.push(format!(
            "{} of {} clients never completed (first: [{}])",
            p.n - out.completed,
            p.n,
            head.join(",")
        ));
    }
    if out.corrupt > 0 {
        out.violations.push(format!("{} corrupt echoes", out.corrupt));
    }
    if out.client_errors > 0 {
        out.violations.push(format!(
            "{} client transport errors (first: {:?})",
            out.client_errors,
            out.first_error.expect("counted an error")
        ));
    }
    if out.accepts != p.n as u64 {
        out.violations
            .push(format!("accepted {} of {} connections", out.accepts, p.n));
    }
    if out.accept_refusals != 0 {
        out.violations.push(format!("{} accept refusals", out.accept_refusals));
    }
    if out.echoed_bytes != out.expected_bytes {
        out.violations.push(format!(
            "echoed {} bytes, expected {}",
            out.echoed_bytes, out.expected_bytes
        ));
    }
    for (i, &peak) in out.shard_mem_peaks.iter().enumerate() {
        if peak > out.shard_budget {
            out.violations.push(format!(
                "shard {i} budget exceeded: peak {peak} > {}",
                out.shard_budget
            ));
        }
    }
    // Sum of per-shard peaks bounds the peak of the fleet sum, so this
    // conservatively proves the global budget was never exceeded.
    if out.mem_peak_total > out.global_budget {
        out.violations.push(format!(
            "global budget exceeded: peak sum {} > {}",
            out.mem_peak_total, out.global_budget
        ));
    }
    if out.final_floor != 0 {
        out.violations
            .push(format!("global floor ended at tier {}", out.final_floor));
    }
    if min_frames == 0 {
        out.violations.push("a shard starved (0 frames handled)".into());
    }
    if out.balance_x100 > 150 {
        out.violations.push(format!(
            "shard work imbalance: max/mean = {}.{:02} > 1.50 ({:?})",
            out.balance_x100 / 100,
            out.balance_x100 % 100,
            out.shard_frames
        ));
    }
    if out.server_residual != 0 {
        out.violations.push(format!(
            "shards leaked {} connections past close",
            out.server_residual
        ));
    }
    // No faults are injected here, so the E21 fault-domain gauges must
    // stay silent: any restart or failover abort in a healthy run is a
    // supervisor false positive.
    if out.shard_restarts != 0 || out.failover_aborts != 0 {
        out.violations.push(format!(
            "fault-domain activity in a healthy run: restarts={} aborts={}",
            out.shard_restarts, out.failover_aborts
        ));
    }
    out
}

/// The mode-determinism cross-check: a threaded run and its inline
/// reference (same stack, shards, n, seed) must agree on every field
/// except the mode label.
pub fn mode_cross_checks(outs: &[ShardOutcome]) -> Vec<String> {
    let mut v = Vec::new();
    for t in outs.iter().filter(|o| o.mode == "threaded") {
        let Some(i) = outs.iter().find(|o| {
            o.mode == "inline"
                && o.stack == t.stack
                && o.shards == t.shards
                && o.n == t.n
                && o.seed == t.seed
        }) else {
            continue;
        };
        let strip = |o: &ShardOutcome| {
            let mut c = o.clone();
            c.mode = "";
            outcome_json(&c)
        };
        if strip(t) != strip(i) {
            v.push(format!(
                "threaded run diverged from inline reference at stack={} shards={} \
                 n={}:\n  threaded: {}\n  inline:   {}",
                t.stack,
                t.shards,
                t.n,
                outcome_json(t),
                outcome_json(i)
            ));
        }
    }
    v
}

/// The sweep. Smoke: both stacks × both modes at n=400, shards=4 (the
/// mode pair feeds [`mode_cross_checks`]). Full: both stacks, threaded,
/// 8 shards, n ∈ {10k, 100k} (plus 500k with `stretch`).
pub fn sweep(smoke: bool, stretch: bool) -> Vec<ShardOutcome> {
    let stacks = [ScaleStack::Sub, ScaleStack::Mono];
    let mut outs = Vec::new();
    if smoke {
        for stack in stacks {
            for mode in [Mode::Threaded, Mode::Inline] {
                outs.push(run_one(ShardParams {
                    stack,
                    mode,
                    shards: 4,
                    n: 400,
                    seed: 1,
                }));
            }
        }
        return outs;
    }
    let mut ns = vec![10_000usize, 100_000];
    if stretch {
        ns.push(500_000);
    }
    for &n in &ns {
        for stack in stacks {
            outs.push(run_one(ShardParams {
                stack,
                mode: Mode::Threaded,
                shards: 8,
                n,
                seed: 1,
            }));
        }
    }
    outs
}

fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

fn json_arr(v: &[u64]) -> String {
    let items: Vec<String> = v.iter().map(u64::to_string).collect();
    format!("[{}]", items.join(","))
}

/// Deterministic, hand-rolled JSON for one outcome (stable field order,
/// integers only — byte-identical for identical seeds).
pub fn outcome_json(o: &ShardOutcome) -> String {
    let viol: Vec<String> = o.violations.iter().map(|v| json_str(v)).collect();
    format!(
        "{{\"stack\":{},\"mode\":{},\"shards\":{},\"n\":{},\"seed\":{},\
         \"completed\":{},\"corrupt\":{},\"client_errors\":{},\"accepts\":{},\
         \"accept_refusals\":{},\"conns_per_sec\":{},\"accept_p50_us\":{},\
         \"accept_p99_us\":{},\"p50_us\":{},\"p99_us\":{},\"echoed_bytes\":{},\
         \"expected_bytes\":{},\"open_mid\":{},\"bytes_per_conn\":{},\
         \"shard_occupancy\":{},\"mem_peak_total\":{},\"mem_peak_worst_shard\":{},\
         \"peak_bytes_per_conn\":{},\"conns_peak_total\":{},\"shard_frames\":{},\
         \"balance_x100\":{},\"shard_mem_peaks\":{},\"shard_budget\":{},\
         \"global_budget\":{},\"final_floor\":{},\"crossings\":{},\
         \"heartbeat_age\":{},\"shard_restarts\":{},\"failover_aborts\":{},\
         \"ring_stalls\":{},\"server_residual\":{},\"sim_ms\":{},\
         \"violations\":[{}]}}",
        json_str(o.stack),
        json_str(o.mode),
        o.shards,
        o.n,
        o.seed,
        o.completed,
        o.corrupt,
        o.client_errors,
        o.accepts,
        o.accept_refusals,
        o.conns_per_sec,
        o.accept_p50_us,
        o.accept_p99_us,
        o.p50_us,
        o.p99_us,
        o.echoed_bytes,
        o.expected_bytes,
        o.open_mid,
        o.bytes_per_conn,
        o.shard_occupancy,
        o.mem_peak_total,
        o.mem_peak_worst_shard,
        o.peak_bytes_per_conn,
        o.conns_peak_total,
        json_arr(&o.shard_frames),
        o.balance_x100,
        json_arr(&o.shard_mem_peaks),
        o.shard_budget,
        o.global_budget,
        o.final_floor,
        o.crossings,
        o.heartbeat_age,
        o.shard_restarts,
        o.failover_aborts,
        o.ring_stalls,
        o.server_residual,
        o.sim_ms,
        viol.join(",")
    )
}

/// The whole sweep (plus the mode cross-checks) as one JSON document.
pub fn summary_json(outs: &[ShardOutcome], cross: &[String]) -> String {
    let rows: Vec<String> = outs.iter().map(outcome_json).collect();
    let violations: usize =
        outs.iter().map(|o| o.violations.len()).sum::<usize>() + cross.len();
    let cross_rows: Vec<String> = cross.iter().map(|c| json_str(c)).collect();
    format!(
        "{{\"runs\":[\n  {}\n],\"mode_cross_checks\":[{}],\"total\":{},\"violations\":{}}}",
        rows.join(",\n  "),
        cross_rows.join(","),
        outs.len(),
        violations
    )
}
