//! Fairness and congestion-collapse campaigns (E19): N greedy flows
//! fan in over the rate-limited `topo_fanin` bottleneck, sweeping the
//! shared rate controllers x both stacks x seeds.
//!
//! Each campaign runs a **fixed horizon** (not run-to-completion): every
//! flow offers far more than its fair share — the aggregate offered load
//! is [`OVERLOAD`]x the bottleneck capacity — and we measure what the
//! controllers make of the contention:
//!
//! 1. **No congestion collapse** (gated): aggregate goodput must stay at
//!    or above [`COLLAPSE_FLOOR_PCT`]% of the bottleneck capacity. A
//!    controller that answers loss with more retransmissions than
//!    deliveries drags this under the floor — the classic collapse the
//!    1986 Internet saw and Van Jacobson's backoff fixed.
//! 2. **Integrity** (gated): each delivered stream is an intact prefix of
//!    exactly one client's pattern — contention must never corrupt.
//! 3. **No spurious abort / no starvation** (gated): every flow survives
//!    the horizon and delivers at least one byte.
//! 4. **Jain fairness index** (reported, not gated): `(Σx)²/(n·Σx²)` as
//!    an integer permille — 1000 is a perfectly even split, 1000/n is one
//!    flow hogging everything. Loss-driven controllers on a shared drop-
//!    tail queue converge near-even; the index is recorded so a future
//!    controller regression shows up in the committed JSON diff.
//! 5. **Bufferbloat** (reported): peak bottleneck queue delay, sampled
//!    every tick via [`netsim::SimNet::link_queue_delay`]. Window-based
//!    controllers bound this by their aggregate cwnd; a rate controller
//!    with no loss response would let it grow without bound.
//!
//! Deterministic: the same `(controller, stack, seed)` triple produces a
//! byte-identical JSON row (`BENCH_fairness.json` is committed).

use crate::topology::{attribute, json_str};
use netlayer::{box_host_addr, topo_fanin, BoxNet};
use netsim::{Dur, LinkParams, NodeId, SimNet, StackNode, Time};
use slconform::driver::{ConformStack, Kind};
use slconform::multihop::mh_pattern;
use slconform::natcodec::peek_for;
use slmetrics::CcCounters;
use sublayer_core::{SlConfig, SlTcpStack};
use tcp_mono::stack::TcpStack;
use tcp_mono::wire::Endpoint;

const SERVER_PORT: u16 = 80;
/// Application drain granularity (and the queue-delay sampling period).
const TICK: Dur = Dur(50_000_000);
/// Fixed measurement horizon for the standard sweep, simulated seconds.
pub const HORIZON_SECS: u64 = 20;
/// Capacity of `topo_fanin`'s rate-limited edge, bits per second.
pub const BOTTLENECK_BPS: u64 = 2_000_000;
/// Greedy client flows contending for the bottleneck.
pub const FLOWS: usize = 3;
/// Aggregate offered load as a multiple of bottleneck capacity.
pub const OVERLOAD: u64 = 4;
/// Collapse gate: aggregate goodput must be >= this % of capacity.
pub const COLLAPSE_FLOOR_PCT: u64 = 70;
/// The window-dynamics controllers the standard sweep exercises (the
/// rate-based and fixed-window controllers have no loss response, so
/// fan-in overload is outside their contract).
pub const CONTROLLERS: [&str; 2] = ["newreno", "cubic"];

/// What the fairness driver needs beyond [`ConformStack`]: construction
/// with an explicit controller (exercising each stack's validated CC
/// swap surface) and per-connection [`CcCounters`] readout.
pub trait FairStack: ConformStack {
    fn mk_cc(addr: u32, cc: &'static str) -> Self;
    fn conn_cc_of(&self, id: Self::ConnId) -> Option<CcCounters>;
}

impl FairStack for SlTcpStack {
    fn mk_cc(addr: u32, cc: &'static str) -> Self {
        let cfg = SlConfig { cc, ..SlConfig::default() };
        SlTcpStack::try_new(addr, cfg, slmetrics::shared()).expect("shipped controller")
    }
    fn conn_cc_of(&self, id: Self::ConnId) -> Option<CcCounters> {
        self.conn_cc(id)
    }
}

impl FairStack for TcpStack {
    fn mk_cc(addr: u32, cc: &'static str) -> Self {
        TcpStack::with_cc(addr, cc, slmetrics::shared()).expect("shipped controller")
    }
    fn conn_cc_of(&self, id: Self::ConnId) -> Option<CcCounters> {
        self.conn_cc(id)
    }
}

/// One fairness campaign's measurements plus any gated violations.
#[derive(Clone, Debug)]
pub struct FairnessOutcome {
    pub cc: &'static str,
    pub stack: &'static str,
    pub seed: u64,
    pub flows: usize,
    pub horizon_secs: u64,
    /// Bytes each flow offered (aggregate = [`OVERLOAD`]x capacity).
    pub offered: usize,
    /// Bytes each flow delivered, flow order.
    pub delivered: Vec<usize>,
    /// Aggregate goodput over the horizon, bits per second.
    pub goodput_bps: u64,
    /// `goodput_bps` as a percentage of [`BOTTLENECK_BPS`].
    pub utilization_pct: u64,
    /// Jain fairness index over per-flow delivered bytes, as permille.
    pub jain_permille: u64,
    /// Peak bottleneck serialization-queue delay observed, milliseconds.
    pub peak_queue_ms: u64,
    /// CC event counters absorbed across all client flows.
    pub dupack_losses: u64,
    pub rto_resets: u64,
    pub fast_recoveries: u64,
    pub violations: Vec<String>,
}

impl FairnessOutcome {
    pub fn ok(&self) -> bool {
        self.violations.is_empty()
    }
}

/// Jain's fairness index `(Σx)² / (n·Σx²)` as integer permille (1000 =
/// perfectly even). Zero when nothing was delivered.
pub fn jain_permille(xs: &[usize]) -> u64 {
    let sum: u128 = xs.iter().map(|&x| x as u128).sum();
    let sq: u128 = xs.iter().map(|&x| (x as u128) * (x as u128)).sum();
    if sq == 0 {
        return 0;
    }
    (sum * sum * 1000 / (xs.len() as u128 * sq)) as u64
}

/// Run one `(controller, stack, seed)` campaign at the standard horizon.
pub fn run_fairness(cc: &'static str, kind: Kind, seed: u64) -> FairnessOutcome {
    run_fairness_with(cc, kind, seed, HORIZON_SECS)
}

/// As [`run_fairness`] with an explicit horizon (tests use a short one;
/// the offered load scales with the horizon so overload stays fixed).
pub fn run_fairness_with(
    cc: &'static str,
    kind: Kind,
    seed: u64,
    horizon_secs: u64,
) -> FairnessOutcome {
    match kind {
        Kind::Sub => run_f::<SlTcpStack>(cc, seed, horizon_secs),
        Kind::Mono => run_f::<TcpStack>(cc, seed, horizon_secs),
    }
}

fn stack_mut<H: FairStack>(net: &mut SimNet, id: NodeId) -> &mut H {
    &mut net.node_mut::<StackNode<H>>(id).stack
}

fn run_f<H: FairStack>(cc: &'static str, seed: u64, horizon_secs: u64) -> FairnessOutcome {
    let topo = topo_fanin();
    let mut net = SimNet::new(seed);
    let bn: BoxNet = topo.build(&mut net, peek_for(H::KIND));
    // Edge 3 is the rate-limited router->server link; dir 0 carries the
    // fan-in direction, whose serialization queue is the bufferbloat.
    let bottleneck = bn.edge_links[3];

    let server_site = bn.topo.hosts.len() - 1;
    let saddr = box_host_addr(server_site);
    let mut server = H::mk_cc(saddr, cc);
    server.listen(SERVER_PORT);

    let mut clients: Vec<(NodeId, H::ConnId)> = Vec::new();
    for i in 0..FLOWS {
        let mut c = H::mk_cc(box_host_addr(i), cc);
        let conn = c
            .try_connect(Time::ZERO, 5000 + i as u16, Endpoint::new(saddr, SERVER_PORT))
            .expect("client connect");
        let id = net.add_node(Box::new(StackNode::new(c)));
        let (router, port) = bn.host_ports[i];
        net.connect(id, 0, router, port, LinkParams::delay_only(Dur::from_millis(1)));
        clients.push((id, conn));
    }
    let ns = {
        let id = net.add_node(Box::new(StackNode::new(server)));
        let (router, port) = bn.host_ports[server_site];
        net.connect(id, 0, router, port, LinkParams::delay_only(Dur::from_millis(1)));
        id
    };
    net.poll_all();

    // Aggregate offered load = OVERLOAD x what the bottleneck can carry
    // over the horizon, split evenly across the greedy flows.
    let offered = (OVERLOAD * BOTTLENECK_BPS * horizon_secs / 8) as usize / FLOWS;
    let payloads: Vec<Vec<u8>> = (0..FLOWS).map(|i| mh_pattern(i, offered)).collect();
    let mut sconns: Vec<Option<H::ConnId>> = vec![None; FLOWS];
    let mut sent = [0usize; FLOWS];
    let mut got = vec![Vec::new(); FLOWS];
    let mut peak_queue = Dur::ZERO;

    let end = Time::ZERO + Dur::from_secs(horizon_secs);
    while net.now() < end {
        let step = net.now() + TICK;
        net.run_until(step);
        peak_queue = peak_queue.max(net.link_queue_delay(bottleneck, 0));
        for (i, &(node, conn)) in clients.iter().enumerate() {
            let st = stack_mut::<H>(&mut net, node);
            if sent[i] < payloads[i].len() {
                sent[i] += st.send(conn, &payloads[i][sent[i]..]);
            }
        }
        {
            let st = stack_mut::<H>(&mut net, ns);
            for id in st.established() {
                if !sconns.contains(&Some(id)) {
                    if let Some(slot) = sconns.iter_mut().find(|s| s.is_none()) {
                        *slot = Some(id);
                    }
                }
            }
            for (i, s) in sconns.iter().enumerate() {
                if let Some(id) = *s {
                    got[i].extend(st.recv(id));
                }
            }
        }
        net.poll_all();
    }

    let mut counters = CcCounters::default();
    let client_errors: Vec<_> = clients
        .iter()
        .map(|&(node, conn)| {
            let st = stack_mut::<H>(&mut net, node);
            if let Some(c) = st.conn_cc_of(conn) {
                counters.absorb(&c);
            }
            st.conn_error(conn)
        })
        .collect();

    let mut out = FairnessOutcome {
        cc,
        stack: H::KIND.label(),
        seed,
        flows: FLOWS,
        horizon_secs,
        offered,
        delivered: Vec::new(),
        goodput_bps: 0,
        utilization_pct: 0,
        jain_permille: 0,
        peak_queue_ms: peak_queue.0 / 1_000_000,
        dupack_losses: counters.dupack_losses,
        rto_resets: counters.rto_resets,
        fast_recoveries: counters.fast_recoveries,
        violations: Vec::new(),
    };
    out.delivered = attribute(&got, &payloads, &mut out.violations);
    let aggregate: usize = out.delivered.iter().sum();
    out.goodput_bps = aggregate as u64 * 8 / horizon_secs;
    out.utilization_pct = out.goodput_bps * 100 / BOTTLENECK_BPS;
    out.jain_permille = jain_permille(&out.delivered);

    if out.goodput_bps < BOTTLENECK_BPS * COLLAPSE_FLOOR_PCT / 100 {
        out.violations.push(format!(
            "congestion collapse: aggregate goodput {} bps < {}% of {} bps capacity",
            out.goodput_bps, COLLAPSE_FLOOR_PCT, BOTTLENECK_BPS
        ));
    }
    for (i, e) in client_errors.iter().enumerate() {
        if let Some(e) = e {
            out.violations.push(format!("flow {i}: spurious abort {e:?}"));
        }
    }
    for (i, &d) in out.delivered.iter().enumerate() {
        if d == 0 {
            out.violations.push(format!("flow {i}: starved (0 bytes over the horizon)"));
        }
    }
    out
}

/// Deterministic, hand-rolled JSON for one outcome (stable field order).
pub fn outcome_json(o: &FairnessOutcome) -> String {
    let delivered: Vec<String> = o.delivered.iter().map(|d| d.to_string()).collect();
    let viol: Vec<String> = o.violations.iter().map(|v| json_str(v)).collect();
    format!(
        "{{\"cc\":{},\"stack\":{},\"seed\":{},\"flows\":{},\"horizon_secs\":{},\
         \"offered\":{},\"delivered\":[{}],\"goodput_bps\":{},\"utilization_pct\":{},\
         \"jain_permille\":{},\"peak_queue_ms\":{},\"dupack_losses\":{},\"rto_resets\":{},\
         \"fast_recoveries\":{},\"violations\":[{}]}}",
        json_str(o.cc),
        json_str(o.stack),
        o.seed,
        o.flows,
        o.horizon_secs,
        o.offered,
        delivered.join(","),
        o.goodput_bps,
        o.utilization_pct,
        o.jain_permille,
        o.peak_queue_ms,
        o.dupack_losses,
        o.rto_resets,
        o.fast_recoveries,
        viol.join(",")
    )
}

/// The whole sweep as one JSON document.
pub fn summary_json(outs: &[FairnessOutcome]) -> String {
    let rows: Vec<String> = outs.iter().map(outcome_json).collect();
    let violations: usize = outs.iter().map(|o| o.violations.len()).sum();
    format!(
        "{{\"campaigns\":[\n  {}\n],\"total\":{},\"violations\":{}}}",
        rows.join(",\n  "),
        outs.len(),
        violations
    )
}

/// Run `controllers x stacks x seeds` in a fixed order (controller-major).
pub fn run_sweep(
    controllers: &[&'static str],
    kinds: &[Kind],
    seeds: &[u64],
) -> Vec<FairnessOutcome> {
    let mut outs = Vec::new();
    for &cc in controllers {
        for &k in kinds {
            for &seed in seeds {
                outs.push(run_fairness(cc, k, seed));
            }
        }
    }
    outs
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn jain_index_extremes() {
        assert_eq!(jain_permille(&[100, 100, 100]), 1000);
        assert_eq!(jain_permille(&[300, 0, 0]), 333);
        assert_eq!(jain_permille(&[0, 0, 0]), 0);
    }

    #[test]
    fn fanin_overload_does_not_collapse_either_stack() {
        // Short-horizon smoke of the E19 gate: 3 greedy NewReno flows at
        // 4x offered load must keep the bottleneck productive on both
        // stacks — no collapse, no starvation, no corruption.
        for kind in [Kind::Sub, Kind::Mono] {
            let out = run_fairness_with("newreno", kind, 1, 6);
            assert!(out.ok(), "{}: {:?}", out.stack, out.violations);
            assert!(out.fast_recoveries + out.rto_resets > 0, "{}: overload never signalled loss", out.stack);
        }
    }

    #[test]
    fn cubic_swap_runs_the_same_campaign() {
        let out = run_fairness_with("cubic", Kind::Sub, 1, 6);
        assert!(out.ok(), "{:?}", out.violations);
    }

    #[test]
    fn fairness_json_is_deterministic() {
        let a = outcome_json(&run_fairness_with("newreno", Kind::Mono, 2, 6));
        let b = outcome_json(&run_fairness_with("newreno", Kind::Mono, 2, 6));
        assert_eq!(a, b);
    }
}
