//! Criterion: bit-stuffing throughput — sublayered codec vs the
//! traditional single-pass monolithic implementation (§3.1 objection 4 in
//! miniature: do sublayer crossings cost performance?), plus the validity
//! decision procedure's speed.

use bitstuff::codec::monolithic;
use bitstuff::{check_rule, BitVec, Flag, FrameCodec, StuffRule};
use criterion::{criterion_group, criterion_main, Criterion, Throughput};

fn data(bytes: usize) -> BitVec {
    let raw: Vec<u8> = (0..bytes).map(|i| (i * 31 % 256) as u8).collect();
    BitVec::from_bytes(&raw)
}

fn bench_codec(c: &mut Criterion) {
    let d = data(1024);
    let codec = FrameCodec::hdlc();
    let rule = StuffRule::hdlc();
    let flag = Flag::hdlc();

    let mut g = c.benchmark_group("framing_1KiB");
    g.throughput(Throughput::Bytes(1024));
    g.bench_function("sublayered_encode", |b| b.iter(|| codec.encode(std::hint::black_box(&d))));
    g.bench_function("monolithic_encode", |b| {
        b.iter(|| monolithic::encode(&rule, &flag, std::hint::black_box(&d)))
    });
    let encoded = codec.encode(&d);
    g.bench_function("sublayered_decode", |b| b.iter(|| codec.decode(std::hint::black_box(&encoded))));
    g.bench_function("monolithic_decode", |b| {
        b.iter(|| monolithic::decode(&rule, &flag, std::hint::black_box(&encoded)))
    });
    g.finish();
}

fn bench_verifier(c: &mut Criterion) {
    c.bench_function("check_rule_hdlc", |b| {
        b.iter(|| check_rule(std::hint::black_box(&StuffRule::hdlc()), &Flag::hdlc()))
    });
}

criterion_group!(benches, bench_codec, bench_verifier);
criterion_main!(benches);
