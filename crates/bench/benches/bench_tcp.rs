//! Criterion: host CPU cost of a fixed simulated transfer — monolithic vs
//! sublayered vs shim-translated (E9: "sublayered TCP performance will be
//! poor"? Measure the crossings' real cost).

use bench::{run_transfer, standard_link, StackKind};
use criterion::{criterion_group, criterion_main, Criterion, Throughput};

fn bench_transfer(c: &mut Criterion) {
    let mut g = c.benchmark_group("transfer_100KB_2pct_loss");
    g.sample_size(10);
    g.throughput(Throughput::Bytes(100_000));
    for kind in [StackKind::Mono, StackKind::Sub("reno"), StackKind::ShimClientMonoServer] {
        g.bench_function(kind.label(), |b| {
            b.iter(|| {
                let r = run_transfer(kind, 100_000, standard_link(0.02), 42, 300);
                assert!(r.complete);
                r.delivered
            })
        });
    }
    g.finish();
}

criterion_group!(benches, bench_transfer);
criterion_main!(benches);
