//! Criterion: model-checker exploration speed and the sublayered-vs-
//! monolithic verification cost gap (E6 in wall-clock terms).

use criterion::{criterion_group, criterion_main, Criterion};
use slverify::{check, Combined, Handshake, SlidingWindow};

fn bench_models(c: &mut Criterion) {
    let mut g = c.benchmark_group("model_checking");
    g.sample_size(10);
    g.bench_function("sublayered_sum", |b| {
        b.iter(|| {
            let hs = check(&Handshake { three_way: true }, 5_000_000);
            let win = check(&SlidingWindow { w: 2, s_mod: 4, n_msgs: 6 }, 5_000_000);
            assert!(hs.ok() && win.ok());
            hs.states + win.states
        })
    });
    g.bench_function("monolithic_product", |b| {
        b.iter(|| {
            let r = check(
                &Combined {
                    hs: Handshake { three_way: true },
                    win: SlidingWindow { w: 2, s_mod: 4, n_msgs: 6 },
                },
                20_000_000,
            );
            assert!(r.violation.is_none());
            r.states
        })
    });
    g.finish();
}

criterion_group!(benches, bench_models);
criterion_main!(benches);
