//! Criterion: error-detection sublayer implementations (the fungibility
//! axis of E1 has a cost axis too).

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use datalink::{Crc, ErrorDetector, Fletcher16, InternetChecksum};

fn bench_detectors(c: &mut Criterion) {
    let data: Vec<u8> = (0..1500).map(|i| (i % 256) as u8).collect();
    let dets: Vec<Box<dyn ErrorDetector>> = vec![
        Box::new(InternetChecksum),
        Box::new(Fletcher16),
        Box::new(Crc::crc16_ccitt()),
        Box::new(Crc::crc32()),
        Box::new(Crc::crc64()),
    ];
    let mut g = c.benchmark_group("detect_1500B");
    g.throughput(Throughput::Bytes(1500));
    for det in dets {
        g.bench_function(det.name(), |b| b.iter(|| det.compute(std::hint::black_box(&data))));
    }
    g.finish();
}

criterion_group!(benches, bench_detectors);
criterion_main!(benches);
