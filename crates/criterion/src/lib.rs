//! Offline stand-in for the [`criterion`](https://docs.rs/criterion)
//! benchmarking crate.
//!
//! The build environment has no network access, so the real crates-io
//! `criterion` cannot be resolved. This crate implements the subset of its
//! API that the workspace's `benches/` use — `Criterion`,
//! `benchmark_group`, `bench_function`, `Bencher::iter`, `Throughput`, and
//! the `criterion_group!`/`criterion_main!` macros — with a simple
//! wall-clock timing loop instead of criterion's statistical machinery.
//!
//! Behavioural contract kept from the real crate: `cargo bench` runs every
//! registered function and prints a per-benchmark timing line, and
//! `cargo test` (which compiles benches with `--test`) runs them in "test
//! mode" (one quick iteration, no measurement), so benches double as smoke
//! tests.

use std::time::{Duration, Instant};

/// How results are normalised when printing (only `Bytes` is used here).
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    Bytes(u64),
    Elements(u64),
}

/// Passed to the closure given to `bench_function`; `iter` times the body.
pub struct Bencher {
    /// Total time and iteration count accumulated by `iter`.
    elapsed: Duration,
    iters: u64,
    /// In test mode we run the body once and skip measurement.
    test_mode: bool,
    sample_size: u64,
}

impl Bencher {
    pub fn iter<R>(&mut self, mut body: impl FnMut() -> R) {
        if self.test_mode {
            std::hint::black_box(body());
            self.iters = 1;
            return;
        }
        // Warm up briefly, then time `sample_size` batches of iterations.
        let mut n_per_batch = 1u64;
        let warm_start = Instant::now();
        while warm_start.elapsed() < Duration::from_millis(50) {
            for _ in 0..n_per_batch {
                std::hint::black_box(body());
            }
            if warm_start.elapsed() < Duration::from_millis(5) {
                n_per_batch = n_per_batch.saturating_mul(2);
            }
        }
        let start = Instant::now();
        for _ in 0..self.sample_size {
            for _ in 0..n_per_batch {
                std::hint::black_box(body());
            }
        }
        self.elapsed = start.elapsed();
        self.iters = self.sample_size * n_per_batch;
    }
}

/// Entry point handed to each registered benchmark function.
pub struct Criterion {
    test_mode: bool,
}

impl Criterion {
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            parent: self,
            name: name.into(),
            throughput: None,
            sample_size: 20,
        }
    }

    /// Ungrouped benchmark (prints under its own name).
    pub fn bench_function<F>(&mut self, name: impl Into<String>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(self.test_mode, &name.into(), None, 20, f);
        self
    }
}

pub struct BenchmarkGroup<'a> {
    parent: &'a mut Criterion,
    name: String,
    throughput: Option<Throughput>,
    sample_size: u64,
}

impl BenchmarkGroup<'_> {
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1) as u64;
        self
    }

    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    pub fn bench_function<F>(&mut self, name: impl Into<String>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let full = format!("{}/{}", self.name, name.into());
        run_one(self.parent.test_mode, &full, self.throughput, self.sample_size, f);
        self
    }

    pub fn finish(&mut self) {}
}

fn run_one<F>(test_mode: bool, name: &str, throughput: Option<Throughput>, sample_size: u64, mut f: F)
where
    F: FnMut(&mut Bencher),
{
    let mut b = Bencher {
        elapsed: Duration::ZERO,
        iters: 0,
        test_mode,
        sample_size,
    };
    f(&mut b);
    if test_mode {
        return;
    }
    let per_iter = if b.iters > 0 {
        b.elapsed.as_secs_f64() / b.iters as f64
    } else {
        0.0
    };
    let rate = match throughput {
        Some(Throughput::Bytes(n)) if per_iter > 0.0 => {
            format!("  {:>10.1} MiB/s", n as f64 / per_iter / (1024.0 * 1024.0))
        }
        Some(Throughput::Elements(n)) if per_iter > 0.0 => {
            format!("  {:>10.1} elem/s", n as f64 / per_iter)
        }
        _ => String::new(),
    };
    println!("bench {name:<50} {:>12.3} us/iter{rate}", per_iter * 1e6);
}

/// True when the harness was invoked by `cargo test` rather than
/// `cargo bench` (cargo passes `--test` to bench targets under test).
#[doc(hidden)]
pub fn __test_mode() -> bool {
    std::env::args().any(|a| a == "--test")
}

#[doc(hidden)]
pub fn __run_group(fns: &[fn(&mut Criterion)]) {
    let mut c = Criterion {
        test_mode: __test_mode(),
    };
    for f in fns {
        f(&mut c);
    }
}

#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            $crate::__run_group(&[$($target),+]);
        }
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            // Bench targets under `cargo test` receive standard libtest
            // flags; we only honour `--test` (run quickly) and ignore the
            // rest, as the real criterion does.
            $($group();)+
        }
    };
}

/// Re-export so `criterion::black_box` call sites work.
pub use std::hint::black_box;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn group_runs_in_test_mode() {
        let mut c = Criterion { test_mode: true };
        let mut ran = 0;
        {
            let mut g = c.benchmark_group("g");
            g.sample_size(10).throughput(Throughput::Bytes(8));
            g.bench_function("one", |b| b.iter(|| ran += 1));
            g.finish();
        }
        c.bench_function("two", |b| b.iter(|| ran += 1));
        assert_eq!(ran, 2);
    }
}
