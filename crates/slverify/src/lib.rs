//! # slverify — explicit-state verification of protocol models (paper §4)
//!
//! The paper's verification vision recast in Rust: a small explicit-state
//! model checker ([`checker`]) plus models of the protocol pieces this
//! workspace implements ([`models`]). Where the paper used Coq (bit
//! stuffing) and Dafny (lwIP TCP), we use exhaustive finite-state
//! exploration — sound and complete for the bounded models — and measure
//! the *cost* of verification the paper argues sublayering reduces:
//!
//! * per-sublayer models (handshake alone, sliding window alone) verify in
//!   small state spaces;
//! * the combined, monolithic product model explodes multiplicatively
//!   (experiment E6);
//! * the checker also *finds real protocol bugs*: the sliding-window
//!   sequence-aliasing counterexample when `S < 2W`, the stale-
//!   incarnation bug of a two-message handshake (why TCP needs three),
//!   and the pre-RFC-5961 blind in-window RST attack — with the
//!   challenge-ACK discipline proved safe against every below-threshold
//!   sequence guess ([`models::RstAttack`], experiment E14);
//! * the E16 overload policy ([`models::Overload`]) proves the host's
//!   memory budget holds under every admission/shed/evict interleaving in
//!   both shapes — and exhibits the overrun trace when the staged
//!   pressure signal is allowed to go one admission too stale;
//! * the `slshard` two-level ladder ([`models::ShardedOverload`]) extends
//!   that to a sharded host: per-shard budgets plus a coordinator-pushed
//!   global pressure floor, with budget-never-exceeded proved per shard
//!   *and* globally — and the global overrun exhibited when the staged
//!   floor goes one fleet-wide admission too stale;
//! * the E21 fault-domain contract ([`models::ShardFail`]) proves a shard
//!   crash under the same ladder is *contained*: only the dead shard's
//!   connections abort, budgets hold mid-failover with the dead shard's
//!   occupancy zeroed, downtime is bounded by the restart backoff, and no
//!   schedule strands the fleet — while the seed's uncontained panic
//!   (`isolate: false`) yields the foreign-shard-abort counterexample;
//! * the congestion-control contract ([`models::CongCtrl`]) is an
//!   assume/guarantee check run against the **real** shipped
//!   `slcc::RateController` implementations — allowance never below one
//!   MSS, ssthresh non-increasing within a loss episode, slow-start exit
//!   permanent until the next loss, recovery always terminated by its
//!   closing signals — and starves the deliberately broken
//!   `slcc::BuggyDeflate` to a zero window as the counterexample (E19);
//! * the compositional sublayer chain ([`contracts`]) gives each core
//!   sublayer — DM, CM, RD, OSR — an explicit assume/guarantee contract
//!   checked against the **real** `sublayer-core` implementation, then
//!   derives end-to-end reliable delivery by [`contracts::compose`] from
//!   the four results alone, never exploring the fused product (E22). The
//!   [`checker::Product`] combinator measures what that avoided product
//!   would cost, and four seeded mutation canaries (`BuggyDm`, `BuggyCm`,
//!   `BuggyRd`, `BuggyOsr`) are each caught by exactly the contract that
//!   owns the broken obligation, with pinned shortest counterexamples.

pub mod checker;
pub mod contracts;
pub mod forwarding;
pub mod models;
pub mod relation;

pub use checker::{check, CheckResult, Model, Product, Trace};
pub use contracts::{
    chain, cm_rst_response, compose, prove_end_to_end, validity_of, verdict_of, ChainProof,
    CmContract, ContractSpec, DmContract, OsrContract, RdContract, A_ENV, CM_CONTRACT,
    DM_CONTRACT, E2E, G_CM, G_DM, G_OSR, G_RD, OSR_CONTRACT, RD_CONTRACT,
};
pub use forwarding::{
    check_forwarding, check_forwarding_to, ForwardDefect, ForwardReport, ForwardSpec,
};
pub use models::{
    AltBit, Combined, CongCtrl, Handshake, Overload, RstAttack, ShardFail,
    ShardedOverload, SlidingWindow,
};
pub use relation::{
    classify_seq, pressure_tier, rfc5961_response, transition_label, RespClass, SegClass,
    SeqVerdict,
};
