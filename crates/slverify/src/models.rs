//! Protocol models for the checker — the E6 experiment's subjects.
//!
//! Each model is deliberately small (finite ISNs, tiny windows) but
//! captures the real protocol question:
//!
//! * [`AltBit`] — alternating-bit reliable delivery over a lossy channel
//!   (the RD bootstrap in miniature);
//! * [`SlidingWindow`] — selective-repeat with sequence space `S` and
//!   window `W`: the checker *proves* safety for `S ≥ 2W` and *finds the
//!   classic aliasing counterexample* for `S < 2W`;
//! * [`Handshake`] — CM's three-way handshake against stale duplicate
//!   SYNs (Smith's CM formalization in miniature); a `two_way` mode shows
//!   the checker catching why the third message exists;
//! * [`Combined`] — handshake × window in one monolithic state machine:
//!   the state-space product that makes monolithic verification expensive
//!   (§4.2's O(N²) lesson, measured);
//! * [`RstAttack`] — an established connection under forged-RST attack:
//!   the RFC 5961 challenge-ACK discipline proved safe against every
//!   below-threshold sequence guess (E14's model-checked core), in both a
//!   sublayered (RD stamps the verdict, CM acts on it) and a monolithic
//!   shape;
//! * [`CongCtrl`] — the congestion-control assume/guarantee contract,
//!   checked against the *real* `slcc` controllers rather than a
//!   re-model: the one model in this file that links the implementation
//!   it verifies (E19).

use crate::checker::Model;

// ---------------------------------------------------------------------
// Alternating bit.
// ---------------------------------------------------------------------

/// Alternating-bit protocol delivering `n_msgs` messages.
pub struct AltBit {
    pub n_msgs: u8,
}

#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub struct AltBitState {
    /// Messages fully acknowledged at the sender.
    acked: u8,
    snd_bit: bool,
    /// Data frame in flight: (bit, message index).
    data: Option<(bool, u8)>,
    /// Ack frame in flight.
    ack: Option<bool>,
    rcv_bit: bool,
    delivered: u8,
}

impl Model for AltBit {
    type State = AltBitState;

    fn init(&self) -> Vec<AltBitState> {
        vec![AltBitState {
            acked: 0,
            snd_bit: false,
            data: None,
            ack: None,
            rcv_bit: false,
            delivered: 0,
        }]
    }

    fn next(&self, s: &AltBitState) -> Vec<(&'static str, AltBitState)> {
        let mut out = Vec::new();
        // Sender (re)transmits the current message.
        if s.acked < self.n_msgs && s.data.is_none() {
            let mut ns = s.clone();
            ns.data = Some((s.snd_bit, s.acked));
            out.push(("send", ns));
        }
        // Channel loses frames.
        if s.data.is_some() {
            let mut ns = s.clone();
            ns.data = None;
            out.push(("lose_data", ns));
        }
        if s.ack.is_some() {
            let mut ns = s.clone();
            ns.ack = None;
            out.push(("lose_ack", ns));
        }
        // Receiver consumes a data frame.
        if let Some((bit, idx)) = s.data {
            let mut ns = s.clone();
            ns.data = None;
            if bit == s.rcv_bit {
                // New message.
                debug_assert!(idx >= ns.delivered);
                ns.delivered += 1;
                ns.rcv_bit = !ns.rcv_bit;
            }
            if ns.ack.is_none() {
                ns.ack = Some(bit);
                out.push(("recv_data", ns));
            } else {
                // Ack channel busy: receiver still consumes, ack dropped.
                out.push(("recv_data_ack_lost", ns));
            }
        }
        // Sender consumes an ack.
        if let Some(bit) = s.ack {
            let mut ns = s.clone();
            ns.ack = None;
            if bit == s.snd_bit {
                ns.acked += 1;
                ns.snd_bit = !ns.snd_bit;
            }
            out.push(("recv_ack", ns));
        }
        out
    }

    fn invariant(&self, s: &AltBitState) -> Result<(), String> {
        // Exactly-once, in-order: the receiver's count never exceeds the
        // sender's progress by more than the one message in flight, and
        // never falls behind what was acknowledged.
        if s.delivered < s.acked {
            return Err(format!("lost message: delivered {} < acked {}", s.delivered, s.acked));
        }
        if s.delivered > s.acked + 1 {
            return Err(format!("duplicate delivery: {} vs acked {}", s.delivered, s.acked));
        }
        Ok(())
    }

    fn is_done(&self, s: &AltBitState) -> bool {
        s.acked == self.n_msgs && s.delivered == self.n_msgs && s.data.is_none() && s.ack.is_none()
    }
}

// ---------------------------------------------------------------------
// Sliding window (selective repeat).
// ---------------------------------------------------------------------

/// Selective-repeat with window `w`, sequence space `s_mod`, transferring
/// `n_msgs` messages. Safe iff `s_mod >= 2w`.
pub struct SlidingWindow {
    pub w: u8,
    pub s_mod: u8,
    pub n_msgs: u8,
}

#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub struct WindowState {
    /// Sender base (lowest unacked true index).
    base: u8,
    /// Next new index to send.
    next: u8,
    /// Data frame in flight: (true index, wire seq).
    data: Option<(u8, u8)>,
    /// Cumulative ack in flight (receiver base).
    ack: Option<u8>,
    /// Receiver base (next expected true index).
    rbase: u8,
    /// Bitmask of received slots within the receiver window.
    rbuf: u8,
}

impl Model for SlidingWindow {
    type State = WindowState;

    fn init(&self) -> Vec<WindowState> {
        vec![WindowState { base: 0, next: 0, data: None, ack: None, rbase: 0, rbuf: 0 }]
    }

    fn next(&self, s: &WindowState) -> Vec<(&'static str, WindowState)> {
        let mut out = Vec::new();
        // Sender transmits any unacked frame in its window (new or
        // retransmission).
        if s.data.is_none() {
            for i in s.base..s.next.min(s.base + self.w) {
                let mut ns = s.clone();
                ns.data = Some((i, i % self.s_mod));
                out.push(("retransmit", ns));
            }
            if s.next < self.n_msgs && s.next < s.base + self.w {
                let mut ns = s.clone();
                ns.data = Some((s.next, s.next % self.s_mod));
                ns.next += 1;
                out.push(("send_new", ns));
            }
        }
        // Losses.
        if s.data.is_some() {
            let mut ns = s.clone();
            ns.data = None;
            out.push(("lose_data", ns));
        }
        if s.ack.is_some() {
            let mut ns = s.clone();
            ns.ack = None;
            out.push(("lose_ack", ns));
        }
        // Receiver consumes a data frame, deciding by WIRE SEQ ONLY.
        if let Some((true_i, seq)) = s.data {
            let mut ns = s.clone();
            ns.data = None;
            let k = (seq + self.s_mod - (s.rbase % self.s_mod)) % self.s_mod;
            if k < self.w {
                // Receiver believes this is index rbase + k.
                let claimed = s.rbase + k;
                if claimed != true_i {
                    // The aliasing bug: encode it in the state so the
                    // invariant sees it.
                    ns.rbuf = 0xFF; // poison marker
                    out.push(("recv_aliased", ns));
                } else {
                    ns.rbuf |= 1 << k;
                    // Slide over the contiguous prefix.
                    while ns.rbuf & 1 != 0 {
                        ns.rbuf >>= 1;
                        ns.rbase += 1;
                    }
                    if ns.ack.is_none() {
                        ns.ack = Some(ns.rbase);
                    }
                    out.push(("recv_data", ns));
                }
            } else {
                // Out of window: re-ack.
                if ns.ack.is_none() {
                    ns.ack = Some(ns.rbase);
                }
                out.push(("recv_dup", ns));
            }
        }
        // Sender consumes an ack.
        if let Some(a) = s.ack {
            let mut ns = s.clone();
            ns.ack = None;
            if a > ns.base {
                ns.base = a;
            }
            out.push(("recv_ack", ns));
        }
        out
    }

    fn invariant(&self, s: &WindowState) -> Result<(), String> {
        if s.rbuf == 0xFF {
            return Err("sequence aliasing: receiver accepted an old frame as new".into());
        }
        Ok(())
    }

    fn is_done(&self, s: &WindowState) -> bool {
        s.base == self.n_msgs && s.rbase == self.n_msgs && s.data.is_none() && s.ack.is_none()
    }
}

// ---------------------------------------------------------------------
// Handshake (CM).
// ---------------------------------------------------------------------

/// ISN used by delayed duplicates from an old incarnation.
pub const STALE_ISN: u8 = 9;
/// The current incarnation's client ISN / server ISN.
pub const CLIENT_ISN: u8 = 1;
pub const SERVER_ISN: u8 = 2;

/// CM's connection-establishment handshake under stale duplicate SYNs.
/// With `three_way: false` the server trusts a bare SYN (no third
/// message) — the checker finds the stale-incarnation violation.
pub struct Handshake {
    pub three_way: bool,
}

#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum HsMsg {
    Syn { isn: u8 },
    SynAck { isn: u8, ack: u8 },
    Ack { seq: u8, ack: u8 },
}

#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, Default)]
pub struct HsSide {
    established: bool,
    peer_isn: Option<u8>,
}

#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct HsState {
    client: HsSide,
    server: HsSide,
    /// One message slot per direction.
    to_server: Option<HsMsg>,
    to_client: Option<HsMsg>,
    /// A stale SYN may appear at most once.
    stale_injected: bool,
}

impl Model for Handshake {
    type State = HsState;

    fn init(&self) -> Vec<HsState> {
        vec![HsState {
            client: HsSide::default(),
            server: HsSide::default(),
            to_server: None,
            to_client: None,
            stale_injected: false,
        }]
    }

    fn next(&self, s: &HsState) -> Vec<(&'static str, HsState)> {
        let mut out = Vec::new();
        // Client (re)sends SYN until established.
        if !s.client.established && s.to_server.is_none() {
            let mut ns = *s;
            ns.to_server = Some(HsMsg::Syn { isn: CLIENT_ISN });
            out.push(("client_syn", ns));
        }
        // The network may deliver a stale duplicate SYN (old incarnation).
        if !s.stale_injected && s.to_server.is_none() {
            let mut ns = *s;
            ns.to_server = Some(HsMsg::Syn { isn: STALE_ISN });
            ns.stale_injected = true;
            out.push(("stale_syn", ns));
        }
        // Server retransmits its SYN-ACK while half open.
        if !s.server.established && s.to_client.is_none() {
            if let Some(stored) = s.server.peer_isn {
                let mut ns = *s;
                ns.to_client = Some(HsMsg::SynAck { isn: SERVER_ISN, ack: stored });
                out.push(("server_synack_rtx", ns));
            }
        }
        // Half-open connections time out (how a server wedged on a stale
        // SYN recovers; abstracts SYN-RCVD timeout / RST).
        if !s.server.established && s.server.peer_isn.is_some() {
            let mut ns = *s;
            ns.server.peer_isn = None;
            out.push(("server_halfopen_timeout", ns));
        }
        // Losses.
        if s.to_server.is_some() {
            let mut ns = *s;
            ns.to_server = None;
            out.push(("lose_to_server", ns));
        }
        if s.to_client.is_some() {
            let mut ns = *s;
            ns.to_client = None;
            out.push(("lose_to_client", ns));
        }
        // Server consumes.
        if let Some(msg) = s.to_server {
            let mut ns = *s;
            ns.to_server = None;
            match msg {
                HsMsg::Syn { isn } => {
                    if ns.server.peer_isn.is_none() {
                        ns.server.peer_isn = Some(isn);
                    }
                    if !self.three_way {
                        // Trusting two-way variant: established on SYN.
                        ns.server.established = true;
                    }
                    // As in TCP's SYN_RCVD, the server acks its *stored*
                    // peer ISN (irs), not whatever the duplicate carries.
                    let stored = ns.server.peer_isn.unwrap();
                    if ns.to_client.is_none() {
                        ns.to_client = Some(HsMsg::SynAck { isn: SERVER_ISN, ack: stored });
                        out.push(("server_synack", ns));
                    } else {
                        out.push(("server_synack_dropped", ns));
                    }
                }
                HsMsg::Ack { seq, ack } => {
                    // Sequence acceptability, as in TCP: the ack must come
                    // from the incarnation the server is holding (seq must
                    // match the stored peer ISN) *and* acknowledge our ISN.
                    if ack == SERVER_ISN && ns.server.peer_isn == Some(seq) {
                        ns.server.established = true;
                    }
                    out.push(("server_ack", ns));
                }
                HsMsg::SynAck { .. } => out.push(("server_ignores", ns)),
            }
        }
        // Client consumes.
        if let Some(msg) = s.to_client {
            let mut ns = *s;
            ns.to_client = None;
            match msg {
                HsMsg::SynAck { isn, ack } => {
                    if ack == CLIENT_ISN {
                        ns.client.established = true;
                        ns.client.peer_isn = Some(isn);
                        if ns.to_server.is_none() {
                            ns.to_server = Some(HsMsg::Ack { seq: CLIENT_ISN, ack: isn });
                            out.push(("client_ack", ns));
                        } else {
                            out.push(("client_ack_dropped", ns));
                        }
                    } else {
                        // SYN-ACK for a stale incarnation: reject.
                        out.push(("client_rejects_stale", ns));
                    }
                }
                _ => out.push(("client_ignores", ns)),
            }
        }
        out
    }

    fn invariant(&self, s: &HsState) -> Result<(), String> {
        // Agreement: once both are established, the server must hold the
        // *current* client ISN — a stale incarnation must never survive.
        if s.server.established && s.server.peer_isn == Some(STALE_ISN) {
            return Err("server established a stale incarnation".into());
        }
        if s.client.established && s.server.established {
            if s.server.peer_isn != Some(CLIENT_ISN) {
                return Err(format!(
                    "ISN disagreement: server thinks client ISN is {:?}",
                    s.server.peer_isn
                ));
            }
            if s.client.peer_isn != Some(SERVER_ISN) {
                return Err("client holds the wrong server ISN".into());
            }
        }
        Ok(())
    }

    fn is_done(&self, s: &HsState) -> bool {
        if s.client.established && s.server.established {
            return true;
        }
        // Half-established terminal: the client completed but the server
        // timed out its half-open entry (the client's ack was lost
        // forever). In full TCP this resolves at the first data segment
        // via RST — outside CM's scope, so it is a legitimate terminal
        // here.
        s.client.established
            && s.server.peer_isn.is_none()
            && s.to_server.is_none()
            && s.to_client.is_none()
            && s.stale_injected
    }
}

// ---------------------------------------------------------------------
// Combined (monolithic) model.
// ---------------------------------------------------------------------

/// Handshake and sliding window verified *together*, as a monolithic
/// implementation forces: the state is the product and every interleaving
/// must be explored. Experiment E6 contrasts `states(Combined)` with
/// `states(Handshake) + states(SlidingWindow)`.
pub struct Combined {
    pub hs: Handshake,
    pub win: SlidingWindow,
}

impl Model for Combined {
    type State = (HsState, WindowState);

    fn init(&self) -> Vec<Self::State> {
        let mut out = Vec::new();
        for h in self.hs.init() {
            for w in self.win.init() {
                out.push((h, w));
            }
        }
        out
    }

    fn next(&self, s: &Self::State) -> Vec<(&'static str, Self::State)> {
        let mut out = Vec::new();
        for (a, h) in self.hs.next(&s.0) {
            out.push((a, (h, s.1.clone())));
        }
        // Data may only flow once the handshake completed (the coupling a
        // monolithic proof must reason about).
        if s.0.client.established {
            for (a, w) in self.win.next(&s.1) {
                out.push((a, (s.0, w)));
            }
        }
        out
    }

    fn invariant(&self, s: &Self::State) -> Result<(), String> {
        self.hs.invariant(&s.0)?;
        self.win.invariant(&s.1)
    }

    fn is_done(&self, s: &Self::State) -> bool {
        self.hs.is_done(&s.0) && self.win.is_done(&s.1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::checker::check;

    #[test]
    fn altbit_is_safe_and_live() {
        let r = check(&AltBit { n_msgs: 3 }, 100_000);
        assert!(r.ok(), "{r:?}");
        assert!(r.states > 10);
    }

    #[test]
    fn sliding_window_safe_when_space_is_twice_window() {
        for (w, s_mod) in [(1u8, 2u8), (2, 4), (3, 6), (2, 5)] {
            let r = check(&SlidingWindow { w, s_mod, n_msgs: s_mod + 2 }, 2_000_000);
            assert!(r.ok(), "W={w} S={s_mod}: {r:?}");
        }
    }

    #[test]
    fn sliding_window_aliasing_found_when_space_too_small() {
        // The classic theorem: selective repeat needs S >= 2W.
        for (w, s_mod) in [(2u8, 3u8), (2, 2), (3, 4)] {
            let r = check(&SlidingWindow { w, s_mod, n_msgs: s_mod + 2 }, 2_000_000);
            let v = r.violation.unwrap_or_else(|| panic!("W={w} S={s_mod} must alias"));
            assert!(v.reason.contains("aliasing"), "{v:?}");
            assert!(!v.actions.is_empty());
        }
    }

    #[test]
    fn three_way_handshake_rejects_stale_incarnations() {
        let r = check(&Handshake { three_way: true }, 1_000_000);
        assert!(r.violation.is_none(), "{r:?}");
    }

    #[test]
    fn two_way_handshake_is_broken() {
        // Dropping the third message lets a stale SYN establish — the
        // checker produces the counterexample explaining *why* TCP has a
        // three-way handshake.
        let r = check(&Handshake { three_way: false }, 1_000_000);
        let v = r.violation.expect("two-way must fail");
        assert!(v.reason.contains("stale"), "{v:?}");
        assert!(v.actions.contains(&"stale_syn"));
    }

    #[test]
    fn combined_state_space_is_multiplicative() {
        // The E6 headline: verifying the monolithic product costs far more
        // states than verifying each sublayer's model separately.
        let hs = check(&Handshake { three_way: true }, 2_000_000);
        let win = check(&SlidingWindow { w: 2, s_mod: 4, n_msgs: 6 }, 2_000_000);
        let combined = check(
            &Combined {
                hs: Handshake { three_way: true },
                win: SlidingWindow { w: 2, s_mod: 4, n_msgs: 6 },
            },
            5_000_000,
        );
        assert!(hs.ok() && win.ok());
        assert!(combined.violation.is_none());
        let sum = hs.states + win.states;
        assert!(
            combined.states > 3 * sum,
            "combined {} should dwarf sum {}",
            combined.states,
            sum
        );
    }

    #[test]
    fn handshake_deadlock_free_modulo_done_states() {
        let r = check(&Handshake { three_way: true }, 1_000_000);
        assert_eq!(r.deadlocks, 0, "{r:?}");
    }
}

// ---------------------------------------------------------------------
// Forged RST vs challenge ACK (RFC 5961).
// ---------------------------------------------------------------------

/// An established connection under blind-RST attack — the model-checked
/// core of experiment E14. The honest peer streams `n_msgs` in-order data
/// segments; the attacker injects up to `budget` forged RSTs.
///
/// The attacker is *below the sequence-knowledge threshold*: a forged RST
/// carries `miss`, how far its guess lands from the victim's exact
/// expectation when the segment is judged — any value except zero
/// (mirroring `SeqKnowledge::{InWindow, Blind}` in the simulator; a guess
/// that collides exactly is above-threshold by definition, and RFC 5961
/// makes no promise there).
///
/// `defended: true` is the RFC 5961 discipline: a RST is obeyed only at
/// the exact expected sequence; in-window-but-not-exact draws a challenge
/// ACK; anything else is dropped. `defended: false` is classic pre-5961
/// TCP — any in-window RST resets — and the checker produces the
/// counterexample.
///
/// `sublayered: true` mirrors core's shape: a distinct RD transition
/// stamps the sequence-validity verdict, then a CM transition acts on the
/// stamped verdict without re-reading sequence numbers. `false` mirrors
/// tcp-mono: classification and action fused in one transition. Both
/// shapes must satisfy the same invariant.
pub struct RstAttack {
    pub s_mod: u8,
    /// Receive-window size (in-window means distance `< w`).
    pub w: u8,
    pub n_msgs: u8,
    /// Forged RSTs the attacker may inject.
    pub budget: u8,
    pub defended: bool,
    pub sublayered: bool,
}

#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum RstSeg {
    /// In-order data from the honest peer (absolute wire sequence).
    Data { seq: u8 },
    /// Forged RST, encoded by how far the guess misses (never 0).
    Rst { miss: u8 },
}

pub use crate::relation::SeqVerdict;

#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct RstAttackState {
    established: bool,
    rcv_nxt: u8,
    delivered: u8,
    /// One channel slot toward the victim.
    seg: Option<RstSeg>,
    /// Sublayered shape only: RD's stamped verdict awaiting CM/delivery.
    staged: Option<(RstSeg, SeqVerdict)>,
    /// A challenge ACK was issued at least once.
    challenged: bool,
    budget: u8,
}

impl RstAttack {
    fn classify(&self, rcv_nxt: u8, seg: &RstSeg) -> SeqVerdict {
        let dist = match seg {
            RstSeg::Data { seq } => (seq + self.s_mod - rcv_nxt) % self.s_mod,
            RstSeg::Rst { miss } => *miss,
        };
        if dist == 0 {
            SeqVerdict::Exact
        } else if dist < self.w {
            SeqVerdict::InWindow
        } else {
            SeqVerdict::Outside
        }
    }

    /// The CM/delivery action on a judged segment; returns the label.
    /// The *response* is not decided here: it comes from the shared
    /// [`relation::rfc5961_response`](crate::relation::rfc5961_response)
    /// table, the same definition the conformance oracle consults — this
    /// method only applies the response's state effect.
    fn apply(&self, ns: &mut RstAttackState, seg: RstSeg, v: SeqVerdict) -> &'static str {
        use crate::relation::{rfc5961_response, transition_label, RespClass, SegClass};
        let class = match seg {
            RstSeg::Rst { .. } => SegClass::Rst,
            RstSeg::Data { .. } => SegClass::Data,
        };
        let resp = rfc5961_response(self.defended, class, v);
        match resp {
            RespClass::Reset => ns.established = false,
            RespClass::ChallengeAck => ns.challenged = true,
            RespClass::Deliver => {
                ns.rcv_nxt = (ns.rcv_nxt + 1) % self.s_mod;
                ns.delivered += 1;
            }
            RespClass::Drop => {}
        }
        transition_label(class, v, resp)
    }
}

impl Model for RstAttack {
    type State = RstAttackState;

    fn init(&self) -> Vec<RstAttackState> {
        vec![RstAttackState {
            established: true,
            rcv_nxt: 0,
            delivered: 0,
            seg: None,
            staged: None,
            challenged: false,
            budget: self.budget,
        }]
    }

    fn next(&self, s: &RstAttackState) -> Vec<(&'static str, RstAttackState)> {
        let mut out = Vec::new();
        if !s.established {
            return out; // the invariant has already flagged this state
        }
        // Honest peer streams the next in-order byte.
        if s.seg.is_none() && s.delivered < self.n_msgs {
            let mut ns = *s;
            ns.seg = Some(RstSeg::Data { seq: s.rcv_nxt });
            out.push(("peer_data", ns));
        }
        // Attacker forges a RST at every below-threshold miss distance.
        if s.seg.is_none() && s.budget > 0 {
            for miss in 1..self.s_mod {
                let mut ns = *s;
                ns.seg = Some(RstSeg::Rst { miss });
                ns.budget -= 1;
                out.push(("attacker_rst", ns));
            }
        }
        // Victim consumes the channel slot.
        if let Some(seg) = s.seg {
            let v = self.classify(s.rcv_nxt, &seg);
            if self.sublayered {
                // RD stamps the verdict; CM acts on it in a later step.
                if s.staged.is_none() {
                    let mut ns = *s;
                    ns.seg = None;
                    ns.staged = Some((seg, v));
                    out.push(("rd_classify", ns));
                }
            } else {
                let mut ns = *s;
                ns.seg = None;
                let label = self.apply(&mut ns, seg, v);
                out.push((label, ns));
            }
        }
        // Sublayered CM/delivery step on the stamped verdict.
        if let Some((seg, v)) = s.staged {
            let mut ns = *s;
            ns.staged = None;
            let label = self.apply(&mut ns, seg, v);
            out.push((label, ns));
        }
        out
    }

    fn invariant(&self, s: &RstAttackState) -> Result<(), String> {
        if !s.established {
            return Err("victim reset by a forged RST that missed the exact sequence".into());
        }
        Ok(())
    }

    fn is_done(&self, s: &RstAttackState) -> bool {
        s.delivered == self.n_msgs && s.seg.is_none() && s.staged.is_none()
    }
}

#[cfg(test)]
mod rst_tests {
    use super::*;
    use crate::checker::check;

    fn model(defended: bool, sublayered: bool) -> RstAttack {
        RstAttack { s_mod: 8, w: 3, n_msgs: 3, budget: 2, defended, sublayered }
    }

    #[test]
    fn defended_connection_survives_every_below_threshold_rst() {
        // The E14 theorem: with RFC 5961 discipline, no schedule of
        // wrong-sequence RSTs reaches Closed from Established — in the
        // sublayered shape AND the monolithic shape.
        for sublayered in [true, false] {
            let r = check(&model(true, sublayered), 2_000_000);
            assert!(r.ok(), "sublayered={sublayered}: {r:?}");
        }
    }

    #[test]
    fn undefended_connection_killed_by_in_window_rst() {
        // Classic pre-5961 TCP: the checker exhibits the blind in-window
        // RST attack in both shapes.
        for sublayered in [true, false] {
            let r = check(&model(false, sublayered), 2_000_000);
            let v = r.violation.unwrap_or_else(|| panic!("sublayered={sublayered} must die"));
            assert!(v.reason.contains("reset"), "{v:?}");
            assert!(v.actions.contains(&"attacker_rst"), "{v:?}");
        }
    }

    #[test]
    fn in_window_miss_draws_challenge_ack_not_reset() {
        // Single-step: a defended victim answers an in-window miss with a
        // challenge ACK and stays established.
        let m = model(true, false);
        let s0 = RstAttackState {
            established: true,
            rcv_nxt: 0,
            delivered: 0,
            seg: Some(RstSeg::Rst { miss: 1 }),
            staged: None,
            challenged: false,
            budget: 0,
        };
        let succ = m.next(&s0);
        assert!(
            succ.iter().any(|(a, ns)| *a == "challenge_ack" && ns.established && ns.challenged),
            "{succ:?}"
        );
    }

    #[test]
    fn sublayered_shape_stages_the_verdict() {
        // The decomposed shape really is decomposed: classification is its
        // own transition, and the stamped verdict survives stream advance.
        let m = model(true, true);
        let s0 = RstAttackState {
            established: true,
            rcv_nxt: 0,
            delivered: 0,
            seg: Some(RstSeg::Rst { miss: 1 }),
            staged: None,
            challenged: false,
            budget: 0,
        };
        let succ = m.next(&s0);
        let (_, staged) = succ
            .iter()
            .find(|(a, _)| *a == "rd_classify")
            .expect("RD step first");
        assert_eq!(staged.staged, Some((RstSeg::Rst { miss: 1 }, SeqVerdict::InWindow)));
        let succ2 = m.next(staged);
        assert!(succ2.iter().any(|(a, ns)| *a == "challenge_ack" && ns.established));
    }
}

// ---------------------------------------------------------------------
// Flow control (OSR).
// ---------------------------------------------------------------------

/// OSR's flow-control obligation: the sender may not exceed the advertised
/// window, or the receiver's bounded buffer overflows. With
/// `respect_window: false` the checker produces the overflow
/// counterexample — the contract that makes the OSR/RD interface safe.
pub struct FlowControl {
    pub buf_cap: u8,
    pub n_msgs: u8,
    pub respect_window: bool,
}

#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct FlowState {
    /// Messages the sender has emitted.
    sent: u8,
    /// Messages sitting in the receiver's buffer (app not yet reading).
    buffered: u8,
    /// Messages the receiver's application consumed.
    consumed: u8,
    /// Last window advertisement the sender has seen.
    snd_window: u8,
    /// A window update in flight, if any.
    update: Option<u8>,
    /// One data message in flight, if any.
    data_in_flight: bool,
}

impl Model for FlowControl {
    type State = FlowState;

    fn init(&self) -> Vec<FlowState> {
        vec![FlowState {
            sent: 0,
            buffered: 0,
            consumed: 0,
            snd_window: self.buf_cap,
            update: None,
            data_in_flight: false,
        }]
    }

    fn next(&self, s: &FlowState) -> Vec<(&'static str, FlowState)> {
        let mut out = Vec::new();
        // Sender emits when it has budget (or recklessly, in the broken
        // variant). Data in this model is never lost (flow control is
        // orthogonal to loss; RD handles that).
        let in_flight_and_unread = (s.sent - s.consumed) as i32;
        let may_send = if self.respect_window {
            in_flight_and_unread < s.snd_window as i32
        } else {
            true
        };
        if s.sent < self.n_msgs && !s.data_in_flight && may_send {
            let mut ns = *s;
            ns.sent += 1;
            ns.data_in_flight = true;
            out.push(("send", ns));
        }
        // Delivery into the receiver buffer.
        if s.data_in_flight {
            let mut ns = *s;
            ns.data_in_flight = false;
            ns.buffered += 1; // invariant checks the bound
            out.push(("deliver", ns));
        }
        // The application reads, freeing buffer space; the receiver
        // advertises the new window.
        if s.buffered > 0 {
            let mut ns = *s;
            ns.consumed += ns.buffered;
            ns.buffered = 0;
            ns.update = Some(self.buf_cap);
            out.push(("app_read", ns));
        }
        // Window update arrives (updates may also be lost).
        if let Some(w) = s.update {
            let mut ns = *s;
            ns.update = None;
            ns.snd_window = w;
            out.push(("window_update", ns));
            let mut lost = *s;
            lost.update = None;
            out.push(("lose_update", lost));
        }
        out
    }

    fn invariant(&self, s: &FlowState) -> Result<(), String> {
        if s.buffered > self.buf_cap {
            return Err(format!(
                "receiver buffer overflow: {} > capacity {}",
                s.buffered, self.buf_cap
            ));
        }
        Ok(())
    }

    fn is_done(&self, s: &FlowState) -> bool {
        s.consumed == self.n_msgs && !s.data_in_flight
    }
}

#[cfg(test)]
mod flow_tests {
    use super::*;
    use crate::checker::check;

    #[test]
    fn window_respecting_sender_never_overflows() {
        let r = check(
            &FlowControl { buf_cap: 2, n_msgs: 6, respect_window: true },
            1_000_000,
        );
        assert!(r.violation.is_none(), "{r:?}");
    }

    #[test]
    fn reckless_sender_overflows_the_receiver() {
        let r = check(
            &FlowControl { buf_cap: 2, n_msgs: 6, respect_window: false },
            1_000_000,
        );
        let v = r.violation.expect("must overflow");
        assert!(v.reason.contains("overflow"), "{v:?}");
    }
}

// ---------------------------------------------------------------------
// Overload control (host admission + backpressure).
// ---------------------------------------------------------------------

/// The E16 overload-control policy as a small exhaustive model: a host
/// with a byte budget admits, defers, sheds, and evicts connections as
/// occupancy crosses pressure tiers.
///
/// Connections arrive (optionally as slow readers), are admitted only at
/// Nominal pressure, buffer `resp` units of response when served, and
/// drain one unit per progress step. Slow readers never drain; the
/// slow-drain checkpoint evicts them. At High pressure the host may shed
/// idle (fully drained) connections. A `drain` transition models host
/// quiesce: no further admissions, pending connections refused.
///
/// The shape flag mirrors [`RstAttack`]: with `sublayered: true` the
/// pressure tier the admission policy reads is a *staged* copy, updated
/// only by an explicit `push_pressure` transition — the sublayer boundary
/// makes the signal stale by up to `lag` admissions (the host's batched
/// ingest window). With `sublayered: false` the check is fused: every
/// transition re-derives the tier from live occupancy, so `lag` is
/// irrelevant. The checker proves the budget headroom theorem — occupancy
/// never exceeds `budget` — for the fused shape unconditionally and for
/// the staged shape only while `lag × resp` fits in the headroom above
/// the Elevated threshold; one admission more and it exhibits the
/// overrun trace.
pub struct Overload {
    /// Byte budget (abstract units).
    pub budget: u8,
    /// Units buffered per admitted connection (the response).
    pub resp: u8,
    /// Admissions the host may perform between pressure refreshes; only
    /// meaningful in the sublayered shape.
    pub lag: u8,
    /// Staged pressure propagation (true) or fused occupancy check (false).
    pub sublayered: bool,
}

const OVERLOAD_SLOTS: usize = 3;

/// One connection slot's lifecycle.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum ConnSlot {
    Idle,
    /// Established, not yet admitted (may be deferred indefinitely).
    Pending { slow: bool },
    /// Admitted and served: `buf` response units still buffered.
    Accepted { buf: u8, slow: bool },
    Done,
    Refused,
    /// Reset by the host: `by_shed` = idle shed, else slow-drain.
    Evicted { by_shed: bool, was_slow: bool },
}

#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct OverloadState {
    conns: [ConnSlot; OVERLOAD_SLOTS],
    /// Occupancy: total buffered units (maintained incrementally; the
    /// invariant re-derives it from the slots to catch leaks).
    used: u8,
    /// The pressure tier the admission policy reads (0=Nominal,
    /// 1=Elevated, 2=High, 3=Critical). Live in the fused shape, staged
    /// in the sublayered shape.
    applied: u8,
    /// Admissions since `applied` was last refreshed.
    stale_admits: u8,
    draining: bool,
}

impl OverloadState {
    /// Live occupancy in budget units — read by the `slconform`
    /// cross-check, which re-derives the tier via the shared relation.
    pub fn occupancy(&self) -> u8 {
        self.used
    }

    /// The pressure tier the admission policy currently reads (staged in
    /// the sublayered shape, live in the fused one).
    pub fn applied_tier(&self) -> u8 {
        self.applied
    }

    /// Whether the host has begun quiescing.
    pub fn is_draining(&self) -> bool {
        self.draining
    }
}

impl Overload {
    /// Pressure tier from live occupancy — delegated to the shared
    /// [`relation::pressure_tier`](crate::relation::pressure_tier), the
    /// same thresholds as `slmetrics::Pressure::from_occupancy`
    /// (50% / 75% / 90%) and the conformance harness's admission checks.
    fn tier(&self, used: u8) -> u8 {
        crate::relation::pressure_tier(used as u64, self.budget as u64)
    }

    /// Fused shape: every mutation is immediately visible to the
    /// admission check, as if policy and accounting were one layer.
    fn settle(&self, ns: &mut OverloadState) {
        if !self.sublayered {
            ns.applied = self.tier(ns.used);
            ns.stale_admits = 0;
        }
    }
}

impl Model for Overload {
    type State = OverloadState;

    fn init(&self) -> Vec<OverloadState> {
        vec![OverloadState {
            conns: [ConnSlot::Idle; OVERLOAD_SLOTS],
            used: 0,
            applied: 0,
            stale_admits: 0,
            draining: false,
        }]
    }

    fn next(&self, s: &OverloadState) -> Vec<(&'static str, OverloadState)> {
        let mut out = Vec::new();
        for i in 0..OVERLOAD_SLOTS {
            match s.conns[i] {
                ConnSlot::Idle => {
                    // SYNs keep coming regardless of host state.
                    let mut ns = *s;
                    ns.conns[i] = ConnSlot::Pending { slow: false };
                    self.settle(&mut ns);
                    out.push(("arrive", ns));
                    let mut sl = *s;
                    sl.conns[i] = ConnSlot::Pending { slow: true };
                    self.settle(&mut sl);
                    out.push(("arrive_slow", sl));
                }
                ConnSlot::Pending { slow } => {
                    if s.draining || s.applied == 3 {
                        let mut ns = *s;
                        ns.conns[i] = ConnSlot::Refused;
                        self.settle(&mut ns);
                        out.push(("refuse", ns));
                    } else if s.applied == 0 && s.stale_admits < self.lag {
                        // Admission serves the response immediately; the
                        // deferral tiers are the *absence* of this
                        // transition at Elevated/High.
                        let mut ns = *s;
                        ns.conns[i] = ConnSlot::Accepted { buf: self.resp, slow };
                        ns.used += self.resp;
                        ns.stale_admits += 1;
                        self.settle(&mut ns);
                        out.push(("admit", ns));
                    }
                }
                ConnSlot::Accepted { buf, slow } => {
                    if buf > 0 && !slow {
                        let mut ns = *s;
                        ns.conns[i] = ConnSlot::Accepted { buf: buf - 1, slow };
                        ns.used -= 1;
                        self.settle(&mut ns);
                        out.push(("progress", ns));
                    }
                    if buf > 0 && slow {
                        // The drain checkpoint matures and finds no
                        // progress: evict, reclaiming the buffer.
                        let mut ns = *s;
                        ns.conns[i] =
                            ConnSlot::Evicted { by_shed: false, was_slow: true };
                        ns.used -= buf;
                        self.settle(&mut ns);
                        out.push(("slow_drain_evict", ns));
                    }
                    if buf == 0 {
                        let mut ns = *s;
                        ns.conns[i] = ConnSlot::Done;
                        self.settle(&mut ns);
                        out.push(("complete", ns));
                        if s.applied >= 2 {
                            // Shed-idle: only a fully drained lingerer.
                            let mut sh = *s;
                            sh.conns[i] =
                                ConnSlot::Evicted { by_shed: true, was_slow: slow };
                            self.settle(&mut sh);
                            out.push(("shed_idle", sh));
                        }
                    }
                }
                ConnSlot::Done | ConnSlot::Refused | ConnSlot::Evicted { .. } => {}
            }
        }
        if !s.draining {
            let mut ns = *s;
            ns.draining = true;
            self.settle(&mut ns);
            out.push(("drain", ns));
        }
        if self.sublayered
            && (s.applied != self.tier(s.used) || s.stale_admits > 0)
        {
            // The staged signal crosses the sublayer boundary.
            let mut ns = *s;
            ns.applied = self.tier(ns.used);
            ns.stale_admits = 0;
            out.push(("push_pressure", ns));
        }
        out
    }

    fn invariant(&self, s: &OverloadState) -> Result<(), String> {
        if s.used > self.budget {
            return Err(format!(
                "budget exceeded: {} used > {} budget",
                s.used, self.budget
            ));
        }
        let derived: u8 = s
            .conns
            .iter()
            .map(|c| match c {
                ConnSlot::Accepted { buf, .. } => *buf,
                _ => 0,
            })
            .sum();
        if derived != s.used {
            return Err(format!(
                "budget accounting leaked: tracked {} != held {derived}",
                s.used
            ));
        }
        for c in &s.conns {
            if let ConnSlot::Evicted { by_shed: false, was_slow: false } = c {
                return Err("evicted a progressing connection".into());
            }
        }
        Ok(())
    }

    fn is_done(&self, s: &OverloadState) -> bool {
        s.conns.iter().all(|c| {
            matches!(
                c,
                ConnSlot::Done | ConnSlot::Refused | ConnSlot::Evicted { .. }
            )
        })
    }
}

#[cfg(test)]
mod overload_tests {
    use super::*;
    use crate::checker::check;

    fn model(sublayered: bool, lag: u8) -> Overload {
        // budget 4, resp 2: Nominal means used <= 1, so one in-window
        // admission (lag 1) peaks at 3 <= 4. Total demand 3 slots x 2 = 6
        // keeps the budget genuinely contended.
        Overload { budget: 4, resp: 2, lag, sublayered }
    }

    #[test]
    fn budget_holds_in_both_shapes() {
        // The E16 safety theorem: under every interleaving of arrivals,
        // slow readers, sheds, evictions, and a mid-run drain, occupancy
        // never exceeds the budget, accounting never leaks, and no
        // progressing connection is reset.
        for sublayered in [true, false] {
            let r = check(&model(sublayered, 1), 2_000_000);
            assert!(r.ok(), "sublayered={sublayered}: {r:?}");
            assert!(r.states > 100, "state space suspiciously small: {r:?}");
        }
    }

    #[test]
    fn stale_pressure_window_can_blow_the_budget() {
        // Why the refresh cadence matters: let two admissions ride one
        // stale Nominal reading and the checker exhibits the overrun.
        let r = check(&model(true, 2), 2_000_000);
        let v = r.violation.expect("lag 2 must overrun a budget of 4");
        assert!(v.reason.contains("budget exceeded"), "{v:?}");
        let admits =
            v.actions.iter().filter(|a| **a == "admit").count();
        assert!(admits >= 2, "overrun needs back-to-back admits: {v:?}");
    }

    #[test]
    fn fused_shape_is_immune_to_admission_lag() {
        // The monolithic shape re-derives the tier on every transition,
        // so no lag value can smuggle admissions past the check.
        for lag in [2, 3] {
            let r = check(&model(false, lag), 2_000_000);
            assert!(r.ok(), "lag={lag}: {r:?}");
        }
    }

    #[test]
    fn staged_signal_costs_state_space() {
        // The sublayer boundary shows up as extra reachable states: the
        // staged tier decouples from live occupancy.
        let sub = check(&model(true, 1), 2_000_000);
        let mono = check(&model(false, 1), 2_000_000);
        println!("overload states: sub={} mono={}", sub.states, mono.states);
        assert!(sub.ok() && mono.ok());
        assert!(
            sub.states > mono.states,
            "sub {} <= mono {}",
            sub.states,
            mono.states
        );
    }

    #[test]
    fn slow_reader_eviction_reclaims_its_buffer() {
        // Single-step: a pinned slow reader's eviction returns its bytes.
        let m = model(true, 1);
        let s0 = OverloadState {
            conns: [
                ConnSlot::Accepted { buf: 2, slow: true },
                ConnSlot::Idle,
                ConnSlot::Idle,
            ],
            used: 2,
            applied: 1,
            stale_admits: 0,
            draining: false,
        };
        let succ = m.next(&s0);
        let (_, ns) = succ
            .iter()
            .find(|(a, _)| *a == "slow_drain_evict")
            .expect("checkpoint must fire");
        assert_eq!(ns.used, 0);
        assert_eq!(
            ns.conns[0],
            ConnSlot::Evicted { by_shed: false, was_slow: true }
        );
    }
}

// ---------------------------------------------------------------------
// Sharded overload control (two-level degradation ladder).
// ---------------------------------------------------------------------

/// The `slshard` two-level degradation ladder as a small exhaustive
/// model: `K = 2` shard hosts, each with its own byte budget and live
/// admission check (level one, the per-host [`Overload`] policy), under a
/// coordinator that sums shard occupancy against a *global* budget and
/// pushes the resulting pressure tier into every shard as a **floor**
/// (level two). A shard admits only when its *effective* tier —
/// `max(own, floor)` — is Nominal.
///
/// The shape flag mirrors [`Overload`]: with `sublayered: true` the
/// floor is a *staged* copy, updated only by an explicit `push_floor`
/// transition (the coordinator's flush round) — the cross-shard boundary
/// makes the global signal stale by up to `lag` fleet-wide admissions.
/// With `sublayered: false` the global check is fused: every transition
/// re-derives the floor from live total occupancy. Each shard's *own*
/// tier is live in both shapes (a host always sees its own table); what
/// the model isolates is the staleness of the **cross-shard** signal.
///
/// The checker proves budget-never-exceeded at *both* levels — every
/// shard's occupancy within its own budget, and the fleet total within
/// the global budget — for the fused shape unconditionally and for the
/// staged shape while `lag × resp` fits in the global headroom above the
/// Nominal threshold; one admission more and it exhibits the global
/// overrun trace (with per-shard budgets still intact, isolating the
/// failure to ladder level two).
pub struct ShardedOverload {
    /// Per-shard byte budget (abstract units).
    pub sbudget: u8,
    /// Global byte budget across both shards.
    pub gbudget: u8,
    /// Units buffered per admitted connection.
    pub resp: u8,
    /// Fleet-wide admissions the shards may perform between floor
    /// pushes; only meaningful in the sublayered shape.
    pub lag: u8,
    /// Staged floor propagation (true) or fused global check (false).
    pub sublayered: bool,
}

const SHARD_COUNT: usize = 2;
const SHARD_SLOTS: usize = 2;

/// One connection slot's lifecycle on a shard (no slow readers here —
/// [`Overload`] covers shed/evict; this model isolates the two budget
/// levels).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum ShardSlot {
    Idle,
    Pending,
    /// Admitted and served: `buf` response units still buffered.
    Accepted { buf: u8 },
    Done,
    Refused,
}

#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct ShardedOverloadState {
    conns: [[ShardSlot; SHARD_SLOTS]; SHARD_COUNT],
    /// Per-shard occupancy (maintained incrementally; the invariant
    /// re-derives it from the slots to catch leaks).
    used: [u8; SHARD_COUNT],
    /// The global-floor tier the shards read (0..=3). Live in the fused
    /// shape, staged in the sublayered shape.
    floor: u8,
    /// Fleet-wide admissions since `floor` was last pushed.
    stale_admits: u8,
    draining: bool,
}

impl ShardedOverloadState {
    /// Live fleet-wide occupancy.
    pub fn global_used(&self) -> u8 {
        self.used.iter().sum()
    }

    /// The floor tier the shards currently read.
    pub fn floor_tier(&self) -> u8 {
        self.floor
    }
}

impl ShardedOverload {
    /// Per-shard own tier from live shard occupancy — the same shared
    /// thresholds as `slmetrics::Pressure::from_occupancy`.
    fn own_tier(&self, used: u8) -> u8 {
        crate::relation::pressure_tier(used as u64, self.sbudget as u64)
    }

    fn global_tier(&self, s: &ShardedOverloadState) -> u8 {
        crate::relation::pressure_tier(s.global_used() as u64, self.gbudget as u64)
    }

    /// The tier shard `i`'s admission policy acts on.
    fn effective(&self, s: &ShardedOverloadState, i: usize) -> u8 {
        self.own_tier(s.used[i]).max(s.floor)
    }

    /// Fused shape: the coordinator's view is always current.
    fn settle(&self, ns: &mut ShardedOverloadState) {
        if !self.sublayered {
            ns.floor = self.global_tier(ns);
            ns.stale_admits = 0;
        }
    }
}

impl Model for ShardedOverload {
    type State = ShardedOverloadState;

    fn init(&self) -> Vec<ShardedOverloadState> {
        vec![ShardedOverloadState {
            conns: [[ShardSlot::Idle; SHARD_SLOTS]; SHARD_COUNT],
            used: [0; SHARD_COUNT],
            floor: 0,
            stale_admits: 0,
            draining: false,
        }]
    }

    fn next(&self, s: &ShardedOverloadState) -> Vec<(&'static str, ShardedOverloadState)> {
        let mut out = Vec::new();
        for sh in 0..SHARD_COUNT {
            for i in 0..SHARD_SLOTS {
                match s.conns[sh][i] {
                    ShardSlot::Idle => {
                        // The router keeps delivering SYNs regardless.
                        let mut ns = *s;
                        ns.conns[sh][i] = ShardSlot::Pending;
                        self.settle(&mut ns);
                        out.push(("arrive", ns));
                    }
                    ShardSlot::Pending => {
                        if s.draining || self.effective(s, sh) == 3 {
                            let mut ns = *s;
                            ns.conns[sh][i] = ShardSlot::Refused;
                            self.settle(&mut ns);
                            out.push(("refuse", ns));
                        } else if self.effective(s, sh) == 0
                            && s.stale_admits < self.lag
                        {
                            // Deferral at Elevated/High is the *absence*
                            // of this transition.
                            let mut ns = *s;
                            ns.conns[sh][i] = ShardSlot::Accepted { buf: self.resp };
                            ns.used[sh] += self.resp;
                            ns.stale_admits += 1;
                            self.settle(&mut ns);
                            out.push(("admit", ns));
                        }
                    }
                    ShardSlot::Accepted { buf } => {
                        if buf > 0 {
                            let mut ns = *s;
                            ns.conns[sh][i] = ShardSlot::Accepted { buf: buf - 1 };
                            ns.used[sh] -= 1;
                            self.settle(&mut ns);
                            out.push(("progress", ns));
                        } else {
                            let mut ns = *s;
                            ns.conns[sh][i] = ShardSlot::Done;
                            self.settle(&mut ns);
                            out.push(("complete", ns));
                        }
                    }
                    ShardSlot::Done | ShardSlot::Refused => {}
                }
            }
        }
        if !s.draining {
            let mut ns = *s;
            ns.draining = true;
            self.settle(&mut ns);
            out.push(("drain", ns));
        }
        if self.sublayered
            && (s.floor != self.global_tier(s) || s.stale_admits > 0)
        {
            // The coordinator's flush round: sum the (now-current) shard
            // samples and push the derived tier into every shard.
            let mut ns = *s;
            ns.floor = self.global_tier(&ns);
            ns.stale_admits = 0;
            out.push(("push_floor", ns));
        }
        out
    }

    fn invariant(&self, s: &ShardedOverloadState) -> Result<(), String> {
        for sh in 0..SHARD_COUNT {
            if s.used[sh] > self.sbudget {
                return Err(format!(
                    "shard budget exceeded: shard {sh} used {} > {} budget",
                    s.used[sh], self.sbudget
                ));
            }
            let derived: u8 = s.conns[sh]
                .iter()
                .map(|c| match c {
                    ShardSlot::Accepted { buf } => *buf,
                    _ => 0,
                })
                .sum();
            if derived != s.used[sh] {
                return Err(format!(
                    "shard {sh} accounting leaked: tracked {} != held {derived}",
                    s.used[sh]
                ));
            }
        }
        if s.global_used() > self.gbudget {
            return Err(format!(
                "global budget exceeded: {} used > {} budget",
                s.global_used(),
                self.gbudget
            ));
        }
        Ok(())
    }

    fn is_done(&self, s: &ShardedOverloadState) -> bool {
        s.conns
            .iter()
            .flatten()
            .all(|c| matches!(c, ShardSlot::Done | ShardSlot::Refused))
    }
}

#[cfg(test)]
mod sharded_overload_tests {
    use super::*;
    use crate::checker::check;

    fn model(sublayered: bool, sbudget: u8, gbudget: u8, lag: u8) -> ShardedOverload {
        ShardedOverload { sbudget, gbudget, resp: 2, lag, sublayered }
    }

    // sbudget 4, resp 2: shard-Nominal means used <= 1, so a shard peaks
    // at 3 <= 4. gbudget 5: global-Nominal means sum <= 2, so one
    // in-window admission (lag 1) peaks the fleet at 4 <= 5. Total demand
    // 2 shards x 2 slots x 2 units = 8 keeps both budgets contended.

    #[test]
    fn both_ladder_levels_hold_in_both_shapes() {
        for sublayered in [true, false] {
            let r = check(&model(sublayered, 4, 5, 1), 2_000_000);
            assert!(r.ok(), "sublayered={sublayered}: {r:?}");
            assert!(r.states > 100, "state space suspiciously small: {r:?}");
        }
    }

    #[test]
    fn stale_floor_window_can_blow_the_global_budget() {
        // Let two fleet-wide admissions ride one stale Nominal floor and
        // the checker exhibits the *global* overrun — with every
        // per-shard budget still intact (sbudget 8 keeps level one out of
        // the way), isolating the failure to ladder level two.
        let r = check(&model(true, 8, 5, 2), 2_000_000);
        let v = r.violation.expect("lag 2 must overrun a global budget of 5");
        assert!(v.reason.contains("global budget exceeded"), "{v:?}");
        let admits = v.actions.iter().filter(|a| **a == "admit").count();
        assert!(admits >= 2, "overrun needs back-to-back admits: {v:?}");
    }

    #[test]
    fn fused_global_check_is_immune_to_floor_lag() {
        // Fused coordination re-derives the floor on every transition, so
        // no lag value can smuggle admissions past the global check.
        for lag in [2, 3] {
            let r = check(&model(false, 8, 5, lag), 2_000_000);
            assert!(r.ok(), "lag={lag}: {r:?}");
        }
    }

    #[test]
    fn per_shard_level_holds_even_with_a_lazy_floor() {
        // An effectively inert global budget (never leaves Nominal) with
        // a generous lag: level one alone still keeps every shard within
        // its own budget — shard admission checks are live in both
        // shapes.
        for sublayered in [true, false] {
            let r = check(&model(sublayered, 4, 64, 3), 4_000_000);
            assert!(r.ok(), "sublayered={sublayered}: {r:?}");
        }
    }

    #[test]
    fn staged_floor_costs_state_space() {
        // The cross-shard boundary shows up as extra reachable states:
        // the staged floor decouples from live fleet occupancy.
        let sub = check(&model(true, 4, 5, 1), 2_000_000);
        let mono = check(&model(false, 4, 5, 1), 2_000_000);
        println!("sharded overload states: sub={} mono={}", sub.states, mono.states);
        assert!(sub.ok() && mono.ok());
        assert!(sub.states > mono.states, "sub {} <= mono {}", sub.states, mono.states);
    }
}

// ---------------------------------------------------------------------
// Shard fault domains (E21): crash isolation + supervised restart.
// ---------------------------------------------------------------------

/// The `slshard` fault-domain contract as a small exhaustive model:
/// `K = 2` shard hosts under the coordinator's staged pressure floor
/// (the [`ShardedOverload`] ladder), where one shard may **crash** at any
/// point. The crash aborts that shard's in-flight connections, zeroes its
/// occupancy, and starts the supervisor's clock: after `backoff`
/// coordinator rounds the shard is rebuilt and serves again.
///
/// The `isolate` flag is the design question this model answers. With
/// `isolate: true` (the shipped `catch_unwind` + typed-`ShardError`
/// boundary) a crash is contained to its own fault domain. With
/// `isolate: false` — the seed behavior, where a worker panic poisons the
/// shared ring lock and the coordinator's next `expect` takes the whole
/// process — the same crash aborts in-flight connections on the *healthy*
/// shard too, and the checker exhibits the foreign-shard-abort trace.
///
/// Proved for every interleaving of arrivals, admissions, progress,
/// crash, floor pushes, and restart:
///
/// * **isolation** — a connection is only ever aborted by its *own*
///   shard's crash (or by being routed to the dead shard while down);
/// * **budget soundness mid-failover** — per-shard budgets and the global
///   budget hold throughout, with the dead shard's occupancy zeroed the
///   moment it dies (the coordinator folds the loss into the floor at the
///   next push);
/// * **bounded downtime** — the dead shard is down for at most `backoff`
///   coordinator rounds (the supervisor's restart has priority over
///   further rounds once the backoff elapses);
/// * **restart liveness** — `is_done` additionally requires a crashed
///   shard to have been restarted, so `deadlocks == 0` proves every
///   schedule can bring the fleet back to full strength with the
///   restarted shard serving (pending connections admitted post-restart).
///
/// Rounds keep ticking while a shard is down (`push_floor` stays enabled
/// — the coordinator's `batch_due` poll); gate it on floor staleness
/// alone and the model deadlocks, which is exactly the hang the real
/// coordinator avoids.
pub struct ShardFail {
    /// Per-shard byte budget (abstract units).
    pub sbudget: u8,
    /// Global byte budget across both shards.
    pub gbudget: u8,
    /// Units buffered per admitted connection.
    pub resp: u8,
    /// Fleet-wide admissions the shards may perform between floor pushes.
    pub lag: u8,
    /// Coordinator rounds a dead shard waits before its supervised
    /// restart (the `RestartPolicy` backoff, in rounds).
    pub backoff: u8,
    /// Crash containment: `true` is the shipped fault boundary, `false`
    /// the seed's process-wide blast radius.
    pub isolate: bool,
}

const FAIL_SHARDS: usize = 2;
const FAIL_SLOTS: usize = 2;

/// One connection slot's lifecycle on a shard, extended with the typed
/// failure outcome a client observes when its shard dies.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum FailSlot {
    Idle,
    Pending,
    Accepted { buf: u8 },
    Done,
    Refused,
    /// Aborted by a shard death: connection state lost, client saw a
    /// typed error (`Reset` / `RetriesExhausted` / `PeerVanished`).
    Aborted,
}

#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct ShardFailState {
    conns: [[FailSlot; FAIL_SLOTS]; FAIL_SHARDS],
    used: [u8; FAIL_SHARDS],
    /// Staged global-floor tier (0..=3) the shards read.
    floor: u8,
    stale_admits: u8,
    up: [bool; FAIL_SHARDS],
    /// Which shard crashed, if any (one crash per run bounds the space).
    crashed: Option<u8>,
    /// Coordinator rounds elapsed with the crashed shard down.
    down_rounds: u8,
    restarted: bool,
}

impl ShardFailState {
    pub fn global_used(&self) -> u8 {
        self.used.iter().sum()
    }
}

impl ShardFail {
    fn own_tier(&self, used: u8) -> u8 {
        crate::relation::pressure_tier(used as u64, self.sbudget as u64)
    }

    fn global_tier(&self, s: &ShardFailState) -> u8 {
        crate::relation::pressure_tier(s.global_used() as u64, self.gbudget as u64)
    }

    fn effective(&self, s: &ShardFailState, i: usize) -> u8 {
        self.own_tier(s.used[i]).max(s.floor)
    }

    fn any_down(s: &ShardFailState) -> bool {
        s.up.iter().any(|u| !u)
    }
}

impl Model for ShardFail {
    type State = ShardFailState;

    fn init(&self) -> Vec<ShardFailState> {
        vec![ShardFailState {
            conns: [[FailSlot::Idle; FAIL_SLOTS]; FAIL_SHARDS],
            used: [0; FAIL_SHARDS],
            floor: 0,
            stale_admits: 0,
            up: [true; FAIL_SHARDS],
            crashed: None,
            down_rounds: 0,
            restarted: false,
        }]
    }

    fn next(&self, s: &ShardFailState) -> Vec<(&'static str, ShardFailState)> {
        let mut out = Vec::new();
        for sh in 0..FAIL_SHARDS {
            for i in 0..FAIL_SLOTS {
                match s.conns[sh][i] {
                    FailSlot::Idle => {
                        // The router keeps delivering SYNs; whether the
                        // shard is up decides their fate below.
                        let mut ns = *s;
                        ns.conns[sh][i] = FailSlot::Pending;
                        out.push(("arrive", ns));
                    }
                    FailSlot::Pending if !s.up[sh] => {
                        // Routed to the dead shard: the coordinator drops
                        // the frame (`dead_drops`) and the client's retry
                        // budget eventually yields a typed error. The
                        // *absence* of a forced drop also lets a patient
                        // client be served after the restart.
                        let mut ns = *s;
                        ns.conns[sh][i] = FailSlot::Aborted;
                        out.push(("drop_dead_shard", ns));
                    }
                    FailSlot::Pending => {
                        if self.effective(s, sh) == 3 {
                            let mut ns = *s;
                            ns.conns[sh][i] = FailSlot::Refused;
                            out.push(("refuse", ns));
                        } else if self.effective(s, sh) == 0 && s.stale_admits < self.lag {
                            let mut ns = *s;
                            ns.conns[sh][i] = FailSlot::Accepted { buf: self.resp };
                            ns.used[sh] += self.resp;
                            ns.stale_admits += 1;
                            out.push(("admit", ns));
                        }
                    }
                    FailSlot::Accepted { buf } if s.up[sh] => {
                        if buf > 0 {
                            let mut ns = *s;
                            ns.conns[sh][i] = FailSlot::Accepted { buf: buf - 1 };
                            ns.used[sh] -= 1;
                            out.push(("progress", ns));
                        } else {
                            let mut ns = *s;
                            ns.conns[sh][i] = FailSlot::Done;
                            out.push(("complete", ns));
                        }
                    }
                    _ => {}
                }
            }
        }
        // One crash per run, on any still-healthy shard.
        if s.crashed.is_none() {
            for sh in 0..FAIL_SHARDS {
                let mut ns = *s;
                ns.up[sh] = false;
                ns.crashed = Some(sh as u8);
                ns.down_rounds = 0;
                // The dying shard's in-flight connections abort and its
                // occupancy is gone with the worker.
                for slot in ns.conns[sh].iter_mut() {
                    if matches!(slot, FailSlot::Accepted { .. }) {
                        *slot = FailSlot::Aborted;
                    }
                }
                ns.used[sh] = 0;
                if !self.isolate {
                    // Seed behavior: the panic poisons the shared ring
                    // lock; the coordinator's next `expect` takes every
                    // in-flight connection with it.
                    for other in 0..FAIL_SHARDS {
                        for slot in ns.conns[other].iter_mut() {
                            if matches!(slot, FailSlot::Accepted { .. }) {
                                *slot = FailSlot::Aborted;
                            }
                        }
                        ns.used[other] = 0;
                    }
                }
                out.push(("crash", ns));
            }
        }
        // The coordinator's flush round: re-derive the floor from live
        // shard samples (a dead shard contributes zero). Stays enabled
        // while a shard is down so the supervisor's clock advances — but
        // yields to the restart once the backoff has elapsed.
        let floor_stale = s.floor != self.global_tier(s) || s.stale_admits > 0;
        if (floor_stale || Self::any_down(s)) && s.down_rounds < self.backoff {
            let mut ns = *s;
            ns.floor = self.global_tier(&ns);
            ns.stale_admits = 0;
            if Self::any_down(&ns) {
                ns.down_rounds += 1;
            }
            out.push(("push_floor", ns));
        }
        // Supervised restart: a fresh worker from the factory, empty
        // tables, back in the routing rotation.
        if let Some(sh) = s.crashed {
            if !s.up[sh as usize] && s.down_rounds >= self.backoff {
                let mut ns = *s;
                ns.up[sh as usize] = true;
                ns.restarted = true;
                ns.down_rounds = 0;
                out.push(("restart", ns));
            }
        }
        out
    }

    fn invariant(&self, s: &ShardFailState) -> Result<(), String> {
        for sh in 0..FAIL_SHARDS {
            if s.used[sh] > self.sbudget {
                return Err(format!(
                    "shard budget exceeded mid-failover: shard {sh} used {} > {}",
                    s.used[sh], self.sbudget
                ));
            }
            let derived: u8 = s.conns[sh]
                .iter()
                .map(|c| match c {
                    FailSlot::Accepted { buf } => *buf,
                    _ => 0,
                })
                .sum();
            if derived != s.used[sh] {
                return Err(format!(
                    "shard {sh} accounting leaked: tracked {} != held {derived}",
                    s.used[sh]
                ));
            }
            if !s.up[sh] && s.used[sh] != 0 {
                return Err(format!(
                    "dead shard {sh} still holds {} units — loss not folded",
                    s.used[sh]
                ));
            }
            // Isolation: an aborted connection implies *this* shard is
            // the one that crashed.
            if s.conns[sh].iter().any(|c| matches!(c, FailSlot::Aborted))
                && s.crashed != Some(sh as u8)
            {
                return Err(format!(
                    "foreign shard abort: shard {sh} lost connections to shard \
                     {:?}'s crash",
                    s.crashed
                ));
            }
        }
        if s.global_used() > self.gbudget {
            return Err(format!(
                "global budget exceeded mid-failover: {} used > {}",
                s.global_used(),
                self.gbudget
            ));
        }
        if s.down_rounds > self.backoff {
            return Err(format!(
                "downtime exceeded the restart backoff: {} rounds > {}",
                s.down_rounds, self.backoff
            ));
        }
        Ok(())
    }

    fn is_done(&self, s: &ShardFailState) -> bool {
        s.conns
            .iter()
            .flatten()
            .all(|c| matches!(c, FailSlot::Done | FailSlot::Refused | FailSlot::Aborted))
            && s.up.iter().all(|u| *u)
            && (s.crashed.is_none() || s.restarted)
    }
}

#[cfg(test)]
mod shard_fail_tests {
    use super::*;
    use crate::checker::check;

    fn model(isolate: bool, backoff: u8) -> ShardFail {
        // Same contention profile as the ShardedOverload tests: shard
        // Nominal means used <= 1 (peak 3 <= 4), one in-window admission
        // keeps the fleet at 4 <= 5.
        ShardFail { sbudget: 4, gbudget: 5, resp: 2, lag: 1, backoff, isolate }
    }

    #[test]
    fn isolation_and_budgets_hold_through_crash_and_restart() {
        for backoff in [1, 2] {
            let r = check(&model(true, backoff), 5_000_000);
            assert!(r.ok(), "backoff={backoff}: {r:?}");
            assert!(r.states > 1_000, "state space suspiciously small: {r:?}");
        }
    }

    #[test]
    fn seed_blast_radius_exhibits_foreign_shard_abort() {
        let r = check(&model(false, 2), 5_000_000);
        let v = r.violation.expect("uncontained crash must abort foreign connections");
        assert!(v.reason.contains("foreign shard abort"), "{v:?}");
        assert!(
            v.actions.contains(&"crash"),
            "counterexample must include the crash: {v:?}"
        );
    }

    #[test]
    fn restart_liveness_no_schedule_strands_the_fleet() {
        // `is_done` demands the crashed shard be restarted and every
        // connection resolved; zero deadlocks means no interleaving —
        // crash before, during, or after traffic — can strand the fleet.
        let r = check(&model(true, 2), 5_000_000);
        assert_eq!(r.deadlocks, 0, "{r:?}");
        assert!(r.violation.is_none(), "{r:?}");
    }

    #[test]
    fn rounds_must_keep_ticking_while_a_shard_is_down() {
        // A crash with no traffic at all: the only path to the restart is
        // push_floor advancing the supervisor's clock. This is the
        // coordinator's `batch_due` poll as a liveness requirement.
        let m = model(true, 3);
        let mut s = m.init().remove(0);
        s.up[0] = false;
        s.crashed = Some(0);
        for round in 0..3 {
            assert_eq!(s.down_rounds, round);
            let next = m.next(&s);
            let (_, ns) = next
                .iter()
                .find(|(a, _)| *a == "push_floor")
                .expect("push_floor must stay enabled while a shard is down");
            s = *ns;
        }
        let next = m.next(&s);
        assert!(
            next.iter().any(|(a, _)| *a == "restart"),
            "backoff elapsed: restart must be enabled"
        );
    }
}

// ---------------------------------------------------------------------
// Congestion-control contract (assume/guarantee over real controllers).
// ---------------------------------------------------------------------

use netsim::Time;
use slcc::{CongSignal, RateController, ALLOWANCE_FLOOR, MSS};

/// The congestion-control contract model: an assume/guarantee check run
/// against the **real** shipped [`RateController`] implementations, not a
/// re-model of them.
///
/// *Assumptions* (what the feeder — RD in the sublayered stack, the pcb
/// ack path in `tcp-mono` — promises about the signal stream): outside a
/// loss episode it speaks `Acked`/`EcnEcho`/`DupAckLoss`/`TimeoutLoss`;
/// once `DupAckLoss` opens an episode it speaks only
/// `DupAck`/`PartialAck`/`FullAck`/`TimeoutLoss` until `FullAck` or
/// `TimeoutLoss` closes it. The model's `episode` flag *is* the feeder's
/// recovery bookkeeping (`in_recovery` in RD, `in_fast_recovery` in the
/// PCB) — deliberately separate from the controller's own
/// [`RateController::in_recovery`], so a controller that loses track of
/// the episode is caught rather than trusted.
///
/// *Guarantees* (checked in every reachable state; the obligations are
/// computed from the pre-state/action in [`Model::next`] and carried in
/// the successor so the per-transition contract becomes a plain state
/// invariant):
///
/// 1. `allowance()` never drops below [`ALLOWANCE_FLOOR`] — below one MSS
///    nothing can be in flight, so no acks ever arrive and the connection
///    deadlocks silently;
/// 2. `ssthresh` never increases on a transition taken *from* an open
///    episode (the inflated in-recovery window is not evidence of
///    capacity), which by induction makes it non-increasing across the
///    whole episode including the closing transition;
/// 3. slow-start exit is permanent until the next loss: an `Acked` taken
///    from congestion avoidance (`allowance ≥ ssthresh`) may not drop the
///    controller back below its threshold;
/// 4. recovery terminates: the closing signals (`FullAck`,
///    `TimeoutLoss`) leave [`RateController::in_recovery`] false.
///
/// Every name in [`slcc::SHIPPED`] passes; [`slcc::BuggyDeflate`] — whose
/// partial-ack deflation lost the 1-MSS floor in a plausible refactor
/// slip — is starved to a zero allowance by the checker in a handful of
/// partial acks (guarantee 1), the promised counterexample.
pub struct CongCtrl {
    template: Box<dyn RateController>,
    /// Depth bound: signals delivered before the run is considered done.
    pub max_ticks: u8,
}

/// Nominal inter-signal spacing — the clock handed to time-aware
/// controllers (CUBIC's growth epoch) advances this much per tick.
const CC_TICK_NS: u64 = 100_000_000;

impl CongCtrl {
    pub fn new(template: Box<dyn RateController>, max_ticks: u8) -> CongCtrl {
        CongCtrl { template, max_ticks }
    }

    /// Model over a shipped controller by [`slcc::make`] name.
    pub fn shipped(name: &str) -> CongCtrl {
        CongCtrl::new(slcc::make(name).expect("shipped controller name"), 8)
    }

    /// Model over the deliberately broken controller (the counterexample
    /// generator).
    pub fn buggy() -> CongCtrl {
        CongCtrl::new(Box::new(slcc::BuggyDeflate::new()), 8)
    }

    fn step(
        &self,
        s: &CongCtrlState,
        now: Time,
        sig: CongSignal,
        episode_after: bool,
    ) -> CongCtrlState {
        let mut ctrl = s.ctrl.clone();
        ctrl.on_signal(now, sig);
        let key = ctrl.state_key();
        CongCtrlState {
            // Guarantee 2: transitions from an open episode may not raise
            // ssthresh above the pre-state's value.
            ssthresh_cap: if s.episode { s.ctrl.ssthresh() } else { None },
            // Guarantee 3: growth from congestion avoidance stays there.
            must_stay_ca: matches!(sig, CongSignal::Acked { .. })
                && s.ctrl.ssthresh().is_some_and(|t| s.ctrl.allowance(now) >= t),
            // Guarantee 4: the closing signals actually close.
            must_close: matches!(
                sig,
                CongSignal::FullAck { .. } | CongSignal::TimeoutLoss
            ),
            ctrl,
            key,
            tick: s.tick + 1,
            episode: episode_after,
        }
    }
}

/// A model state: the live controller plus the feeder's episode view and
/// the guarantee obligations its incoming transition imposed.
#[derive(Clone)]
pub struct CongCtrlState {
    ctrl: Box<dyn RateController>,
    /// Cached [`RateController::state_key`] — the identity the checker
    /// deduplicates on (equal keys promise behaviorally equal controllers).
    key: Vec<u64>,
    tick: u8,
    /// Feeder bookkeeping: a loss episode is open.
    episode: bool,
    ssthresh_cap: Option<u64>,
    must_stay_ca: bool,
    must_close: bool,
}

impl PartialEq for CongCtrlState {
    fn eq(&self, other: &Self) -> bool {
        self.key == other.key
            && self.tick == other.tick
            && self.episode == other.episode
            && self.ssthresh_cap == other.ssthresh_cap
            && self.must_stay_ca == other.must_stay_ca
            && self.must_close == other.must_close
    }
}

impl Eq for CongCtrlState {}

impl std::hash::Hash for CongCtrlState {
    fn hash<H: std::hash::Hasher>(&self, h: &mut H) {
        self.key.hash(h);
        self.tick.hash(h);
        self.episode.hash(h);
        self.ssthresh_cap.hash(h);
        self.must_stay_ca.hash(h);
        self.must_close.hash(h);
    }
}

impl std::fmt::Debug for CongCtrlState {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("CongCtrlState")
            .field("ctrl", &self.ctrl.name())
            .field("key", &self.key)
            .field("tick", &self.tick)
            .field("episode", &self.episode)
            .finish()
    }
}

impl Model for CongCtrl {
    type State = CongCtrlState;

    fn init(&self) -> Vec<CongCtrlState> {
        let ctrl = self.template.clone();
        vec![CongCtrlState {
            key: ctrl.state_key(),
            ctrl,
            tick: 0,
            episode: false,
            ssthresh_cap: None,
            must_stay_ca: false,
            must_close: false,
        }]
    }

    fn next(&self, s: &CongCtrlState) -> Vec<(&'static str, CongCtrlState)> {
        if s.tick >= self.max_ticks {
            return vec![];
        }
        let now = Time(s.tick as u64 * CC_TICK_NS);
        let b = MSS as u32;
        if s.episode {
            // In-episode alphabet: the feeder classifies every ack
            // against the recovery point.
            vec![
                ("dupack", self.step(s, now, CongSignal::DupAck, true)),
                ("partial_ack", self.step(s, now, CongSignal::PartialAck { bytes: b }, true)),
                (
                    "full_ack",
                    self.step(s, now, CongSignal::FullAck { bytes: b, rtt: None }, false),
                ),
                ("timeout", self.step(s, now, CongSignal::TimeoutLoss, false)),
            ]
        } else {
            vec![
                ("acked", self.step(s, now, CongSignal::Acked { bytes: b, rtt: None }, false)),
                ("ecn_echo", self.step(s, now, CongSignal::EcnEcho, false)),
                ("dupack_loss", self.step(s, now, CongSignal::DupAckLoss, true)),
                ("timeout", self.step(s, now, CongSignal::TimeoutLoss, false)),
            ]
        }
    }

    fn invariant(&self, s: &CongCtrlState) -> Result<(), String> {
        let now = Time(s.tick as u64 * CC_TICK_NS);
        let allowance = s.ctrl.allowance(now);
        if allowance < ALLOWANCE_FLOOR {
            return Err(format!(
                "allowance {allowance} fell below the {ALLOWANCE_FLOOR}-byte floor: \
                 nothing can be in flight, the connection deadlocks"
            ));
        }
        if let (Some(cap), Some(cur)) = (s.ssthresh_cap, s.ctrl.ssthresh()) {
            if cur > cap {
                return Err(format!(
                    "ssthresh raised {cap} -> {cur} while a loss episode was open"
                ));
            }
        }
        if s.must_stay_ca {
            if let Some(t) = s.ctrl.ssthresh() {
                if allowance < t {
                    return Err(format!(
                        "slow-start exit not permanent: growth ack dropped \
                         allowance {allowance} below ssthresh {t} with no loss"
                    ));
                }
            }
        }
        if s.must_close && s.ctrl.in_recovery() {
            return Err(
                "recovery did not terminate: controller still in recovery \
                 after a FullAck/TimeoutLoss"
                    .to_string(),
            );
        }
        Ok(())
    }

    fn is_done(&self, s: &CongCtrlState) -> bool {
        s.tick >= self.max_ticks
    }
}

#[cfg(test)]
mod congctrl_tests {
    use super::*;
    use crate::checker::check;

    const CC_STATES: usize = 2_000_000;

    #[test]
    fn every_shipped_controller_honors_the_contract() {
        for name in slcc::SHIPPED {
            let r = check(&CongCtrl::shipped(name), CC_STATES);
            assert!(r.ok(), "{name}: {r:?}");
            // fixed-window's controller state never moves, so its space is
            // just the tick x episode x obligation product — still > 20.
            assert!(r.states > 20, "{name}: space suspiciously small: {r:?}");
        }
    }

    #[test]
    fn reno_alias_is_checked_too() {
        let r = check(&CongCtrl::shipped("reno"), CC_STATES);
        assert!(r.ok(), "{r:?}");
    }

    #[test]
    fn buggy_deflate_is_starved_by_partial_acks() {
        // The promised counterexample: the broken deflation loses the
        // 1-MSS floor, so a loss followed by enough partial acks walks
        // the allowance to zero — guarantee 1, found as a concrete trace.
        let r = check(&CongCtrl::buggy(), CC_STATES);
        let v = r.violation.expect("BuggyDeflate must violate the floor");
        assert!(v.reason.contains("below the"), "{v:?}");
        assert_eq!(v.actions.first(), Some(&"dupack_loss"), "{v:?}");
        assert!(
            v.actions[1..].iter().all(|a| *a == "partial_ack"),
            "shortest starvation is pure partial acks: {v:?}"
        );
    }

    #[test]
    fn deeper_bound_still_passes_for_newreno() {
        // The default depth is conservative; make sure nothing lurks just
        // past it for the default controller.
        let mut m = CongCtrl::shipped("newreno");
        m.max_ticks = 10;
        let r = check(&m, CC_STATES);
        assert!(r.ok(), "{r:?}");
    }
}
