//! Static verification of forwarding tables: reachability and
//! loop-freedom, checked *before* any traffic runs.
//!
//! StacKAT (PAPERS.md) shows that data-plane properties of a network —
//! which packets reach which nodes, and whether any forwarding cycle
//! exists — are decidable questions about the forwarding tables alone, no
//! packet simulation required. This module is the workspace's small-scale
//! version of that idea: a [`ForwardSpec`] abstracts a topology (adjacency
//! via ports) plus every node's static route table, and [`check_forwarding`]
//! walks the induced forwarding function for **every** (source,
//! destination) pair, exhaustively. Because forwarding here is
//! deterministic (one next hop per destination), each walk either reaches
//! the destination, falls off a missing route/disconnected port, or
//! revisits a node — so the check is sound and complete for the spec.
//!
//! The multi-hop topology layer (`netlayer::boxnet`) refuses to build a
//! network whose primary or post-failure tables fail this check, which is
//! what makes "no frame is ever forwarded in a loop" a *precondition* of
//! every campaign rather than a hoped-for observation.

use std::fmt;

/// An abstract forwarding plane: `n` nodes, point-to-point ports, and one
/// static route table per node.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ForwardSpec {
    /// Number of nodes; destinations and sources are node indices.
    pub n: usize,
    /// `ports[node][port] = Some(peer)` when that port is cabled to
    /// `peer`; `None` for unused (or administratively failed) ports.
    pub ports: Vec<Vec<Option<usize>>>,
    /// `routes[node][dst] = Some(port)` — the port `node` forwards
    /// traffic for `dst` out of; `None` = no route. `routes[node][node]`
    /// is ignored (local delivery).
    pub routes: Vec<Vec<Option<usize>>>,
}

/// One defect found by [`check_forwarding`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ForwardDefect {
    /// Following the tables from `src` toward `dst` revisited `at` — a
    /// forwarding loop that would spin a packet until TTL death.
    Loop { src: usize, dst: usize, at: usize },
    /// `node` has no route toward `dst` (packet would be dropped).
    NoRoute { node: usize, dst: usize },
    /// `node`'s route for `dst` points at a port with no live peer.
    DeadPort { node: usize, dst: usize, port: usize },
    /// The walk exceeded `ttl` hops without looping — tables longer than
    /// any simple path, which deterministic static routes should never be.
    TtlExceeded { src: usize, dst: usize },
}

impl fmt::Display for ForwardDefect {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ForwardDefect::Loop { src, dst, at } => {
                write!(f, "loop at node {at} forwarding {src}->{dst}")
            }
            ForwardDefect::NoRoute { node, dst } => {
                write!(f, "node {node} has no route to {dst}")
            }
            ForwardDefect::DeadPort { node, dst, port } => {
                write!(f, "node {node} routes {dst} out dead port {port}")
            }
            ForwardDefect::TtlExceeded { src, dst } => {
                write!(f, "path {src}->{dst} exceeds ttl without looping")
            }
        }
    }
}

/// Result of a full-pair forwarding check.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct ForwardReport {
    /// Ordered (src, dst) pairs that reach their destination.
    pub reachable: usize,
    /// Total ordered pairs checked (`n * (n - 1)`).
    pub pairs: usize,
    /// Every defect found, in deterministic (src-major) order.
    pub defects: Vec<ForwardDefect>,
    /// Longest delivered path, in hops.
    pub max_hops: usize,
}

impl ForwardReport {
    /// Full reachability and not a single loop/dead port.
    pub fn ok(&self) -> bool {
        self.defects.is_empty() && self.reachable == self.pairs
    }

    /// No forwarding cycle exists, even if some pairs are unreachable.
    /// This is the bar for *post-failure* tables: a partitioned network
    /// legitimately drops cross-partition traffic ([`ForwardDefect::NoRoute`]
    /// or [`ForwardDefect::DeadPort`]), but must never spin it.
    pub fn loop_free(&self) -> bool {
        !self.defects.iter().any(|d| {
            matches!(d, ForwardDefect::Loop { .. } | ForwardDefect::TtlExceeded { .. })
        })
    }
}

/// Walk every ordered (src, dst) pair through the tables. `ttl` bounds
/// each walk (use the data plane's TTL so "verified" means "deliverable
/// on the real fabric"); loops are reported as [`ForwardDefect::Loop`]
/// regardless of TTL because a revisit is detected exactly.
pub fn check_forwarding(spec: &ForwardSpec, ttl: usize) -> ForwardReport {
    let dsts: Vec<usize> = (0..spec.n).collect();
    check_forwarding_to(spec, &dsts, ttl)
}

/// Like [`check_forwarding`], but only walks toward the given destination
/// nodes (every node is still exercised as a source/transit). A topology
/// with transit-only routers and host edge nodes checks exactly the
/// destinations traffic can actually terminate at.
pub fn check_forwarding_to(spec: &ForwardSpec, dsts: &[usize], ttl: usize) -> ForwardReport {
    assert_eq!(spec.ports.len(), spec.n, "ports table must cover every node");
    assert_eq!(spec.routes.len(), spec.n, "route table must cover every node");
    let mut report = ForwardReport {
        pairs: dsts.len().saturating_mul(spec.n.saturating_sub(1)),
        ..Default::default()
    };
    let mut visited = vec![usize::MAX; spec.n];
    for src in 0..spec.n {
        for &dst in dsts {
            if src == dst {
                continue;
            }
            let walk_tag = src * spec.n + dst;
            let mut at = src;
            let mut hops = 0usize;
            loop {
                if at == dst {
                    report.reachable += 1;
                    report.max_hops = report.max_hops.max(hops);
                    break;
                }
                if visited[at] == walk_tag {
                    report.defects.push(ForwardDefect::Loop { src, dst, at });
                    break;
                }
                visited[at] = walk_tag;
                if hops >= ttl {
                    report.defects.push(ForwardDefect::TtlExceeded { src, dst });
                    break;
                }
                let Some(port) = spec.routes[at].get(dst).copied().flatten() else {
                    report.defects.push(ForwardDefect::NoRoute { node: at, dst });
                    break;
                };
                let Some(peer) = spec.ports[at].get(port).copied().flatten() else {
                    report.defects.push(ForwardDefect::DeadPort { node: at, dst, port });
                    break;
                };
                at = peer;
                hops += 1;
            }
        }
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Line 0-1-2 with correct shortest-path tables.
    fn line3() -> ForwardSpec {
        ForwardSpec {
            n: 3,
            // node 0: port 0 -> 1; node 1: port 0 -> 0, port 1 -> 2; node 2: port 0 -> 1
            ports: vec![vec![Some(1)], vec![Some(0), Some(2)], vec![Some(1)]],
            routes: vec![
                vec![None, Some(0), Some(0)],
                vec![Some(0), None, Some(1)],
                vec![Some(0), Some(0), None],
            ],
        }
    }

    #[test]
    fn correct_line_is_fully_reachable_and_loop_free() {
        let r = check_forwarding(&line3(), 64);
        assert!(r.ok(), "defects: {:?}", r.defects);
        assert_eq!(r.reachable, 6);
        assert_eq!(r.max_hops, 2);
    }

    #[test]
    fn two_node_ping_pong_is_reported_as_a_loop() {
        let mut spec = line3();
        // Node 1 bounces traffic for 2 back toward 0: 0->1->0->1... loop.
        spec.routes[1][2] = Some(0);
        let r = check_forwarding(&spec, 64);
        assert!(!r.ok());
        assert!(r
            .defects
            .iter()
            .any(|d| matches!(d, ForwardDefect::Loop { src: 0, dst: 2, .. })));
    }

    #[test]
    fn missing_route_is_reported_not_looped() {
        let mut spec = line3();
        spec.routes[1][2] = None;
        let r = check_forwarding(&spec, 64);
        assert!(r.defects.contains(&ForwardDefect::NoRoute { node: 1, dst: 2 }));
        // Both pairs through the hole break (0->2 transits node 1); the
        // remaining four still deliver.
        assert_eq!(r.reachable, 4);
    }

    #[test]
    fn failed_port_is_a_dead_port_defect() {
        let mut spec = line3();
        spec.ports[1][1] = None; // link 1-2 failed, tables not yet rerouted
        let r = check_forwarding(&spec, 64);
        assert!(r
            .defects
            .contains(&ForwardDefect::DeadPort { node: 1, dst: 2, port: 1 }));
    }

    #[test]
    fn loop_free_tolerates_drops_but_not_cycles() {
        let mut dead = line3();
        dead.ports[1][1] = None;
        assert!(check_forwarding(&dead, 64).loop_free());

        let mut looped = line3();
        looped.routes[1][2] = Some(0);
        assert!(!check_forwarding(&looped, 64).loop_free());
    }

    #[test]
    fn restricted_destinations_skip_transit_nodes() {
        // Only node 2 terminates traffic: 2 sources x 1 dst.
        let r = check_forwarding_to(&line3(), &[2], 64);
        assert_eq!(r.pairs, 2);
        assert_eq!(r.reachable, 2);
        assert!(r.ok());
    }

    #[test]
    fn ttl_bound_is_enforced() {
        let r = check_forwarding(&line3(), 1);
        assert!(r
            .defects
            .iter()
            .any(|d| matches!(d, ForwardDefect::TtlExceeded { .. })));
    }
}
