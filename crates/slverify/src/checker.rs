//! A small explicit-state model checker.
//!
//! This is the workhorse behind experiment E6: it exhaustively explores a
//! protocol model's state space (BFS), checks a safety invariant in every
//! state, detects deadlocks, and reconstructs a counterexample trace on
//! violation. The *size* of the explored space and the number of named
//! properties are the proof-effort proxies we compare between monolithic
//! (combined) and sublayered (per-sublayer) models — the analogue of the
//! paper's Dafny-vs-Coq experience in §4.

use std::collections::{HashMap, VecDeque};
use std::fmt::Debug;
use std::hash::Hash;

/// A finite-state protocol model.
pub trait Model {
    /// A global state (all participants + channel).
    type State: Clone + Eq + Hash + Debug;

    /// Initial states.
    fn init(&self) -> Vec<Self::State>;

    /// All successor states, labeled with the action taken.
    fn next(&self, s: &Self::State) -> Vec<(&'static str, Self::State)>;

    /// Safety invariant; `Err(reason)` marks a violation.
    fn invariant(&self, s: &Self::State) -> Result<(), String>;

    /// Is this a legitimate terminal state? (Non-goal states without
    /// successors are reported as deadlocks.)
    fn is_done(&self, _s: &Self::State) -> bool {
        false
    }
}

/// A counterexample: the action labels leading to the bad state.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Trace {
    pub actions: Vec<&'static str>,
    pub reason: String,
}

/// Exploration outcome.
#[derive(Clone, Debug)]
pub struct CheckResult {
    pub states: usize,
    pub transitions: usize,
    pub max_depth: usize,
    pub violation: Option<Trace>,
    pub deadlocks: usize,
    /// Exploration hit the state cap before exhausting the space.
    pub truncated: bool,
}

impl CheckResult {
    pub fn ok(&self) -> bool {
        self.violation.is_none() && self.deadlocks == 0 && !self.truncated
    }
}

/// Exhaustively check `model`, exploring at most `max_states` states.
pub fn check<M: Model>(model: &M, max_states: usize) -> CheckResult {
    // state -> (predecessor index, action); roots have usize::MAX.
    let mut seen: HashMap<M::State, usize> = HashMap::new();
    let mut parents: Vec<(usize, &'static str)> = Vec::new();
    let mut order: Vec<M::State> = Vec::new();
    let mut queue: VecDeque<(usize, usize)> = VecDeque::new(); // (index, depth)
    let mut result = CheckResult {
        states: 0,
        transitions: 0,
        max_depth: 0,
        violation: None,
        deadlocks: 0,
        truncated: false,
    };

    let trace_to = |idx: usize, parents: &Vec<(usize, &'static str)>, reason: String| {
        let mut actions = Vec::new();
        let mut i = idx;
        while parents[i].0 != usize::MAX {
            actions.push(parents[i].1);
            i = parents[i].0;
        }
        actions.reverse();
        Trace { actions, reason }
    };

    for s in model.init() {
        if let Err(reason) = model.invariant(&s) {
            return CheckResult {
                states: 1,
                violation: Some(Trace { actions: vec![], reason }),
                ..result
            };
        }
        if !seen.contains_key(&s) {
            let idx = order.len();
            seen.insert(s.clone(), idx);
            order.push(s);
            parents.push((usize::MAX, ""));
            queue.push_back((idx, 0));
        }
    }

    while let Some((idx, depth)) = queue.pop_front() {
        result.states += 1;
        result.max_depth = result.max_depth.max(depth);
        let state = order[idx].clone();
        let succs = model.next(&state);
        if succs.is_empty() && !model.is_done(&state) {
            result.deadlocks += 1;
        }
        for (action, ns) in succs {
            result.transitions += 1;
            if let Err(reason) = model.invariant(&ns) {
                let mut t = trace_to(idx, &parents, reason);
                t.actions.push(action);
                result.violation = Some(t);
                return result;
            }
            if !seen.contains_key(&ns) {
                if order.len() >= max_states {
                    result.truncated = true;
                    continue;
                }
                let nidx = order.len();
                seen.insert(ns.clone(), nidx);
                order.push(ns);
                parents.push((idx, action));
                queue.push_back((nidx, depth + 1));
            }
        }
    }
    result
}

/// The asynchronous product of two models: states are pairs, transitions
/// interleave (one side moves, the other holds still), the invariant is the
/// conjunction, and a state is done only when both sides are.
///
/// This is what a *monolithic* verification of two composed sublayers has
/// to explore — the state space multiplies. The compositional alternative
/// in [`crate::contracts`] checks each side against its own
/// assume/guarantee contract (additive cost) and derives the end-to-end
/// property by [`crate::contracts::compose`] without ever building this
/// product; `Product` exists so the benchmark can measure the gap.
pub struct Product<A: Model, B: Model> {
    pub a: A,
    pub b: B,
}

impl<A: Model, B: Model> Product<A, B> {
    pub fn new(a: A, b: B) -> Product<A, B> {
        Product { a, b }
    }
}

impl<A: Model, B: Model> Model for Product<A, B> {
    type State = (A::State, B::State);

    fn init(&self) -> Vec<Self::State> {
        let bs = self.b.init();
        self.a
            .init()
            .into_iter()
            .flat_map(|sa| bs.iter().map(move |sb| (sa.clone(), sb.clone())))
            .collect()
    }

    fn next(&self, s: &Self::State) -> Vec<(&'static str, Self::State)> {
        let mut out: Vec<(&'static str, Self::State)> = self
            .a
            .next(&s.0)
            .into_iter()
            .map(|(l, sa)| (l, (sa, s.1.clone())))
            .collect();
        out.extend(self.b.next(&s.1).into_iter().map(|(l, sb)| (l, (s.0.clone(), sb))));
        out
    }

    fn invariant(&self, s: &Self::State) -> Result<(), String> {
        self.a.invariant(&s.0)?;
        self.b.invariant(&s.1)
    }

    fn is_done(&self, s: &Self::State) -> bool {
        self.a.is_done(&s.0) && self.b.is_done(&s.1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A counter that must never reach `bad`.
    struct Counter {
        limit: u32,
        bad: Option<u32>,
    }

    impl Model for Counter {
        type State = u32;
        fn init(&self) -> Vec<u32> {
            vec![0]
        }
        fn next(&self, s: &u32) -> Vec<(&'static str, u32)> {
            if *s < self.limit {
                vec![("inc", s + 1)]
            } else {
                vec![]
            }
        }
        fn invariant(&self, s: &u32) -> Result<(), String> {
            match self.bad {
                Some(b) if *s == b => Err(format!("reached {b}")),
                _ => Ok(()),
            }
        }
        fn is_done(&self, s: &u32) -> bool {
            *s == self.limit
        }
    }

    #[test]
    fn explores_full_space() {
        let r = check(&Counter { limit: 10, bad: None }, 1000);
        assert!(r.ok());
        assert_eq!(r.states, 11);
        assert_eq!(r.transitions, 10);
        assert_eq!(r.max_depth, 10);
    }

    #[test]
    fn finds_violation_with_shortest_trace() {
        let r = check(&Counter { limit: 10, bad: Some(3) }, 1000);
        let v = r.violation.expect("must find the bad state");
        assert_eq!(v.actions, vec!["inc", "inc", "inc"]);
        assert!(v.reason.contains("reached 3"));
    }

    #[test]
    fn detects_deadlock() {
        struct Stuck;
        impl Model for Stuck {
            type State = u8;
            fn init(&self) -> Vec<u8> {
                vec![0]
            }
            fn next(&self, _: &u8) -> Vec<(&'static str, u8)> {
                vec![]
            }
            fn invariant(&self, _: &u8) -> Result<(), String> {
                Ok(())
            }
        }
        let r = check(&Stuck, 10);
        assert_eq!(r.deadlocks, 1);
        assert!(!r.ok());
    }

    #[test]
    fn truncation_reported() {
        let r = check(&Counter { limit: 1000, bad: None }, 10);
        assert!(r.truncated);
        assert!(!r.ok());
    }

    #[test]
    fn product_space_is_multiplicative() {
        // Two independent counters: the product explores (limit+1)^2
        // states while each side alone is limit+1 — the monolithic blowup
        // the compositional contracts avoid.
        let lone = check(&Counter { limit: 6, bad: None }, 1000);
        let prod = check(
            &Product::new(Counter { limit: 6, bad: None }, Counter { limit: 6, bad: None }),
            1000,
        );
        assert!(prod.ok(), "{prod:?}");
        assert_eq!(lone.states, 7);
        assert_eq!(prod.states, 49);
    }

    #[test]
    fn product_violation_carries_either_sides_reason() {
        let prod = check(
            &Product::new(Counter { limit: 6, bad: None }, Counter { limit: 6, bad: Some(2) }),
            1000,
        );
        let v = prod.violation.expect("right side must trip");
        assert!(v.reason.contains("reached 2"), "{v:?}");
    }

    #[test]
    fn branching_space_counts_states_once() {
        /// Two independent bits: 4 states total.
        struct Bits;
        impl Model for Bits {
            type State = (bool, bool);
            fn init(&self) -> Vec<(bool, bool)> {
                vec![(false, false)]
            }
            fn next(&self, s: &(bool, bool)) -> Vec<(&'static str, (bool, bool))> {
                let mut v = vec![];
                if !s.0 {
                    v.push(("a", (true, s.1)));
                }
                if !s.1 {
                    v.push(("b", (s.0, true)));
                }
                v
            }
            fn invariant(&self, _: &(bool, bool)) -> Result<(), String> {
                Ok(())
            }
            fn is_done(&self, s: &(bool, bool)) -> bool {
                s.0 && s.1
            }
        }
        let r = check(&Bits, 100);
        assert!(r.ok());
        assert_eq!(r.states, 4);
    }
}
