//! The shared protocol transition relations — one definition, several
//! consumers.
//!
//! The RFC 5961 response discipline (what a receiver must do with a
//! segment, given the sequence-validity verdict) and the overload
//! pressure-tier thresholds each used to live in two places: inside the
//! model checker's [`RstAttack`](crate::models::RstAttack) /
//! [`Overload`](crate::models::Overload) models, and re-derived
//! independently by the runtime stacks and benchmarks. This module is the
//! single authoritative copy: the bounded models *and* the `slconform`
//! conformance oracle both call these functions, so a change to the
//! discipline shows up simultaneously as a model-checking result and as a
//! conformance verdict against the real stacks. The cross-check test in
//! `slconform` walks every transition the models emit and asserts the
//! relation (and therefore the oracle) labels it identically.

/// Where a segment's sequence number lands relative to the receiver's
/// expectation — the RFC 5961 trichotomy.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum SeqVerdict {
    /// Exactly the next expected sequence number.
    Exact,
    /// Within the receive window but not exact.
    InWindow,
    /// Outside the receive window.
    Outside,
}

/// The protocol-relevant class of an arriving segment.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum SegClass {
    /// In-order-or-not payload from the peer.
    Data,
    /// A reset.
    Rst,
}

/// What a conforming receiver does in response.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum RespClass {
    /// Tear the connection down (exact-sequence RST, or any in-window RST
    /// for a pre-5961 receiver).
    Reset,
    /// Emit a challenge ACK and keep the connection (RFC 5961 §3.2).
    ChallengeAck,
    /// Silently discard the segment.
    Drop,
    /// Accept the payload and advance `rcv_nxt`.
    Deliver,
}

/// Classify a 32-bit wire sequence against the receiver's `rcv_nxt` and
/// window — the conformance oracle's consumer of the trichotomy. Distance
/// arithmetic wraps, exactly like the stacks' own comparisons.
pub fn classify_seq(rcv_nxt: u32, seq: u32, wnd: u32) -> SeqVerdict {
    let dist = seq.wrapping_sub(rcv_nxt);
    if dist == 0 {
        SeqVerdict::Exact
    } else if dist < wnd {
        SeqVerdict::InWindow
    } else {
        SeqVerdict::Outside
    }
}

/// The response relation: what a receiver in the ESTABLISHED region must
/// do with a judged segment. `defended` selects the RFC 5961 discipline;
/// `false` is classic pre-5961 TCP (any in-window RST resets), kept so the
/// model checker can exhibit the attack the discipline prevents.
pub fn rfc5961_response(defended: bool, seg: SegClass, v: SeqVerdict) -> RespClass {
    match seg {
        SegClass::Rst => match v {
            SeqVerdict::Exact => RespClass::Reset,
            SeqVerdict::InWindow if defended => RespClass::ChallengeAck,
            SeqVerdict::InWindow => RespClass::Reset,
            SeqVerdict::Outside => RespClass::Drop,
        },
        // The models deliver only exact-sequence data (in-window
        // out-of-order data is reassembly, abstracted away as Drop —
        // rcv_nxt does not advance).
        SegClass::Data => match v {
            SeqVerdict::Exact => RespClass::Deliver,
            _ => RespClass::Drop,
        },
    }
}

/// The transition label the [`RstAttack`](crate::models::RstAttack) model
/// gives this `(segment, verdict, response)` triple — the vocabulary its
/// counterexample traces are written in.
pub fn transition_label(seg: SegClass, v: SeqVerdict, r: RespClass) -> &'static str {
    match (seg, r) {
        (SegClass::Rst, RespClass::Reset) => {
            if v == SeqVerdict::Exact {
                "rst_exact"
            } else {
                "rst_in_window"
            }
        }
        (SegClass::Rst, RespClass::ChallengeAck) => "challenge_ack",
        (SegClass::Rst, _) => "rst_dropped",
        (SegClass::Data, RespClass::Deliver) => "deliver",
        (SegClass::Data, _) => "data_dropped",
    }
}

/// Memory-pressure tier for `used` units against `budget` — the same
/// integer thresholds as `slmetrics::Pressure::from_occupancy` (50% /
/// 75% / 90%; budget 0 means unlimited). Consumed by the
/// [`Overload`](crate::models::Overload) model and by the conformance
/// harness's admission checks.
pub fn pressure_tier(used: u64, budget: u64) -> u8 {
    if budget == 0 {
        0
    } else if used.saturating_mul(10) >= budget.saturating_mul(9) {
        3
    } else if used.saturating_mul(4) >= budget.saturating_mul(3) {
        2
    } else if used.saturating_mul(2) >= budget {
        1
    } else {
        0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn classify_matches_window_edges() {
        assert_eq!(classify_seq(100, 100, 50), SeqVerdict::Exact);
        assert_eq!(classify_seq(100, 101, 50), SeqVerdict::InWindow);
        assert_eq!(classify_seq(100, 149, 50), SeqVerdict::InWindow);
        assert_eq!(classify_seq(100, 150, 50), SeqVerdict::Outside);
        assert_eq!(classify_seq(100, 99, 50), SeqVerdict::Outside);
        // Wraparound: rcv_nxt near the top of the space.
        assert_eq!(classify_seq(u32::MAX, 0, 50), SeqVerdict::InWindow);
        assert_eq!(classify_seq(u32::MAX, u32::MAX, 50), SeqVerdict::Exact);
    }

    #[test]
    fn defended_relation_is_rfc5961() {
        use RespClass::*;
        use SegClass::*;
        assert_eq!(rfc5961_response(true, Rst, SeqVerdict::Exact), Reset);
        assert_eq!(rfc5961_response(true, Rst, SeqVerdict::InWindow), ChallengeAck);
        assert_eq!(rfc5961_response(true, Rst, SeqVerdict::Outside), Drop);
        assert_eq!(rfc5961_response(true, Data, SeqVerdict::Exact), Deliver);
    }

    #[test]
    fn undefended_relation_is_pre5961() {
        assert_eq!(
            rfc5961_response(false, SegClass::Rst, SeqVerdict::InWindow),
            RespClass::Reset
        );
    }

    #[test]
    fn labels_cover_the_model_vocabulary() {
        use SegClass::*;
        let mut seen = std::collections::BTreeSet::new();
        for (seg, defended) in [(Rst, true), (Rst, false), (Data, true)] {
            for v in [SeqVerdict::Exact, SeqVerdict::InWindow, SeqVerdict::Outside] {
                let r = rfc5961_response(defended, seg, v);
                seen.insert(transition_label(seg, v, r));
            }
        }
        for want in [
            "rst_exact",
            "rst_in_window",
            "challenge_ack",
            "rst_dropped",
            "deliver",
            "data_dropped",
        ] {
            assert!(seen.contains(want), "missing label {want}");
        }
    }

    #[test]
    fn tier_thresholds_match_slmetrics() {
        assert_eq!(pressure_tier(0, 100), 0);
        assert_eq!(pressure_tier(49, 100), 0);
        assert_eq!(pressure_tier(50, 100), 1);
        assert_eq!(pressure_tier(74, 100), 1);
        assert_eq!(pressure_tier(75, 100), 2);
        assert_eq!(pressure_tier(89, 100), 2);
        assert_eq!(pressure_tier(90, 100), 3);
        assert_eq!(pressure_tier(5, 0), 0, "no budget means no pressure");
    }
}
