//! Compositional sublayer contracts (the paper's §4 verification vision,
//! done the way a sublayered stack makes possible).
//!
//! One explicit assume/guarantee contract per core sublayer, each checked
//! against the **real** implementation in `sublayer-core` — not a re-model
//! — through a driver trait in the style of
//! [`CongCtrl`](crate::models::CongCtrl):
//!
//! | contract | assumes | guarantees |
//! |---|---|---|
//! | [`DmContract`]  | [`A_ENV`] | [`G_DM`]: a 4-tuple is admitted exactly once |
//! | [`CmContract`]  | [`G_DM`]  | [`G_CM`]: the connection sequences only within the admitted window (genuine ISN echo) |
//! | [`RdContract`]  | [`G_CM`]  | [`G_RD`]: every byte delivered exactly once, within a bounded schedule, under the fault alphabet |
//! | [`OsrContract`] | [`G_RD`]  | [`G_OSR`]: bytes released to the app in order, never across a gap |
//!
//! [`compose`] is the composition theorem: it checks each contract's
//! assumptions are discharged by an *earlier* guarantee (plus the
//! environment axiom [`A_ENV`]) and derives end-to-end reliable delivery
//! ([`E2E`]) from the four [`crate::checker::CheckResult`]s alone — the
//! fused product of the four state machines is **never explored**. The
//! [`crate::checker::Product`] combinator exists precisely to measure what
//! that avoided exploration would cost (experiment E22).
//!
//! Each contract has a seeded mutation canary in `sublayer-core`
//! (`BuggyDm`, `BuggyCm`, `BuggyRd`, `BuggyOsr`, mirroring
//! `slcc::BuggyDeflate`): a plausibly-broken sublayer that the *owning*
//! contract catches with a shrunk (BFS-shortest) counterexample, pinned in
//! the tests below.
//!
//! The DM⇒CM half of the chain is also enforced at compile time: CM's
//! constructors consume an [`sublayer_core::Admitted`] token that only
//! [`sublayer_core::Demux::bind`] can mint, so product code sequencing an
//! unadmitted flow is a compile error, not a checker finding:
//!
//! ```compile_fail
//! use netsim::Time;
//! use sublayer_core::cm::{CmScheme, ConnMgmt};
//! // There is no public way to conjure an `Admitted` token.
//! let token = sublayer_core::dm::Admitted { id: sublayer_core::ConnId(0) };
//! let _cm = ConnMgmt::open_active(
//!     token, CmScheme::ThreeWay, 1, Time::ZERO, slmetrics::shared());
//! ```

use crate::checker::{check, CheckResult, Model};
use crate::relation::{RespClass, SeqVerdict};
use netsim::Time;
use sublayer_core::cm::{CmDriver, CmState};
use sublayer_core::dm::DmDriver;
use sublayer_core::osr::OsrDriver;
use sublayer_core::rd::RdDriver;
use sublayer_core::signals::SeqValidity;
use sublayer_core::wire::{CmHeader, Endpoint, FourTuple, Packet};
use sublayer_core::{BuggyCm, BuggyDm, BuggyOsr, BuggyRd, CmScheme, ConnId, Demux, ConnMgmt, Osr, ReliableDelivery};

// ---------------------------------------------------------------------
// The obligation vocabulary and the composition theorem.
// ---------------------------------------------------------------------

/// Environment axiom every run is bounded by: the checker's fault alphabet
/// may drop at most [`RD_FAULT_BUDGET`] packets and duplicate at most
/// [`RD_DUP_BUDGET`], and never corrupts (corruption is the wire codec's
/// problem, discharged separately by `slconform`).
pub const A_ENV: &str = "env.fault-alphabet(drop<=2,dup<=1,no-corrupt)";
/// DM's guarantee: a 4-tuple is admitted exactly once while bound, and the
/// tuple↔connection maps stay coherent.
pub const G_DM: &str = "dm.exactly-once-admission";
/// CM's guarantee: the connection only synchronizes with the genuinely
/// admitted incarnation (correct ISN echo), and RSTs follow the RFC 5961
/// discipline.
pub const G_CM: &str = "cm.sequences-only-admitted-window";
/// RD's guarantee: every byte is delivered exactly once, uncorrupted, and
/// the whole stream completes within a bounded schedule under [`A_ENV`].
pub const G_RD: &str = "rd.exactly-once-bounded-delivery";
/// OSR's guarantee: bytes are released to the application in order and
/// never across a reassembly gap.
pub const G_OSR: &str = "osr.in-order-gapless-release";
/// The end-to-end property the chain derives: reliable in-order delivery.
pub const E2E: &str = "e2e.reliable-in-order-delivery";

/// A contract's interface in the assume/guarantee chain.
#[derive(Clone, Copy, Debug)]
pub struct ContractSpec {
    pub sublayer: &'static str,
    pub assumes: &'static [&'static str],
    pub guarantees: &'static [&'static str],
}

pub const DM_CONTRACT: ContractSpec =
    ContractSpec { sublayer: "dm", assumes: &[A_ENV], guarantees: &[G_DM] };
pub const CM_CONTRACT: ContractSpec =
    ContractSpec { sublayer: "cm", assumes: &[A_ENV, G_DM], guarantees: &[G_CM] };
pub const RD_CONTRACT: ContractSpec =
    ContractSpec { sublayer: "rd", assumes: &[A_ENV, G_CM], guarantees: &[G_RD] };
pub const OSR_CONTRACT: ContractSpec =
    ContractSpec { sublayer: "osr", assumes: &[G_RD], guarantees: &[G_OSR] };

/// The chain in sublayer order (bottom-up: DM ⇒ CM ⇒ RD ⇒ OSR).
pub fn chain() -> [ContractSpec; 4] {
    [DM_CONTRACT, CM_CONTRACT, RD_CONTRACT, OSR_CONTRACT]
}

/// What [`compose`] derives: the end-to-end property plus the proof-effort
/// accounting the benchmark reports (additive vs multiplicative).
#[derive(Clone, Debug)]
pub struct ChainProof {
    /// Always [`E2E`] on success.
    pub derived: &'static str,
    /// `(sublayer, states explored)` per contract, in chain order.
    pub per_contract: Vec<(&'static str, usize)>,
    /// Total states the compositional proof explored.
    pub sum_states: usize,
    /// What a fused product of the same four machines would face
    /// (the product of the per-contract spaces, saturating).
    pub fused_estimate: u128,
}

/// The composition theorem: every contract holds, and every assumption is
/// discharged by a guarantee established *earlier* in the chain (or by the
/// environment axiom). On success the end-to-end property [`E2E`] is
/// derived from the four `CheckResult`s alone — no fused product is ever
/// explored.
pub fn compose(runs: &[(ContractSpec, CheckResult)]) -> Result<ChainProof, String> {
    let mut established: Vec<&'static str> = vec![A_ENV];
    let mut per = Vec::new();
    let mut sum = 0usize;
    let mut prod: u128 = 1;
    for (spec, res) in runs {
        if let Some(v) = &res.violation {
            return Err(format!(
                "{}: contract violated ({}) after {:?}",
                spec.sublayer, v.reason, v.actions
            ));
        }
        if !res.ok() {
            return Err(format!(
                "{}: exploration incomplete (deadlocks {}, truncated {})",
                spec.sublayer, res.deadlocks, res.truncated
            ));
        }
        for a in spec.assumes {
            if !established.contains(a) {
                return Err(format!(
                    "{}: assumption `{a}` is not established by any earlier \
                     guarantee — contracts compose only in sublayer order",
                    spec.sublayer
                ));
            }
        }
        established.extend_from_slice(spec.guarantees);
        per.push((spec.sublayer, res.states));
        sum += res.states;
        prod = prod.saturating_mul(res.states.max(1) as u128);
    }
    for g in [G_DM, G_CM, G_RD, G_OSR] {
        if !established.contains(&g) {
            return Err(format!("guarantee `{g}` missing from the chain; cannot derive `{E2E}`"));
        }
    }
    Ok(ChainProof { derived: E2E, per_contract: per, sum_states: sum, fused_estimate: prod })
}

/// Run the four shipped contracts and compose them: the whole end-to-end
/// proof in one call. `max_states` caps each *individual* contract run.
pub fn prove_end_to_end(max_states: usize) -> Result<ChainProof, String> {
    let runs = vec![
        (DM_CONTRACT, check(&DmContract::shipped(), max_states)),
        (CM_CONTRACT, check(&CmContract::shipped(), max_states)),
        (RD_CONTRACT, check(&RdContract::shipped(), max_states)),
        (OSR_CONTRACT, check(&OsrContract::shipped(), max_states)),
    ];
    compose(&runs)
}

// ---------------------------------------------------------------------
// Shared vocabulary with the RFC-793/5961 relation.
// ---------------------------------------------------------------------

/// The post-synchronization RST discipline the CM contract enforces —
/// definitionally the same table as
/// [`crate::relation::rfc5961_response`]`(true, Rst, ·)`. The cross-check
/// tests pin the two together in *both* directions, so the contract can
/// never silently loosen the relation (nor the relation the contract).
pub fn cm_rst_response(v: SeqValidity) -> RespClass {
    match v {
        SeqValidity::Exact => RespClass::Reset,
        SeqValidity::InWindow => RespClass::ChallengeAck,
        SeqValidity::Outside => RespClass::Drop,
    }
}

/// The 1:1 bridge between RD's on-wire trichotomy and the relation's.
pub fn verdict_of(v: SeqValidity) -> SeqVerdict {
    match v {
        SeqValidity::Exact => SeqVerdict::Exact,
        SeqValidity::InWindow => SeqVerdict::InWindow,
        SeqValidity::Outside => SeqVerdict::Outside,
    }
}

/// Inverse of [`verdict_of`] (total, so the cross-check can walk the
/// relation's domain back onto the contract's).
pub fn validity_of(v: SeqVerdict) -> SeqValidity {
    match v {
        SeqVerdict::Exact => SeqValidity::Exact,
        SeqVerdict::InWindow => SeqValidity::InWindow,
        SeqVerdict::Outside => SeqValidity::Outside,
    }
}

// ---------------------------------------------------------------------
// DM contract: exactly-once admission.
// ---------------------------------------------------------------------

const LOCAL_ADDR: u32 = 1;
const LISTEN_PORT: u16 = 80;

fn dm_tuple(i: usize) -> FourTuple {
    FourTuple {
        local: Endpoint::new(LOCAL_ADDR, LISTEN_PORT),
        remote: Endpoint::new(9, 9000 + i as u16),
    }
}

/// Assume/guarantee contract over the real [`Demux`] (or its mutation
/// canary [`BuggyDm`]): the environment admits/releases two flows and
/// toggles the accept gate; DM must admit each live tuple exactly once and
/// keep `lookup`/`tuple_of`/`classify` coherent with the ghost admission
/// set in every reachable state.
pub struct DmContract {
    buggy: bool,
    pub max_steps: u8,
}

impl DmContract {
    pub fn shipped() -> DmContract {
        DmContract { buggy: false, max_steps: 5 }
    }

    pub fn buggy() -> DmContract {
        DmContract { buggy: true, max_steps: 5 }
    }

    fn mk(&self) -> Box<dyn DmDriver> {
        if self.buggy {
            let mut d = BuggyDm::new(LOCAL_ADDR, slmetrics::shared());
            d.listen(LISTEN_PORT);
            Box::new(d)
        } else {
            let mut d = Demux::new(LOCAL_ADDR, slmetrics::shared());
            d.listen(LISTEN_PORT);
            Box::new(d)
        }
    }
}

#[derive(Clone)]
pub struct DmContractState {
    dm: Box<dyn DmDriver>,
    key: Vec<u64>,
    /// Ghost: the admission the environment believes it holds per tuple.
    admitted: [Option<ConnId>; 2],
    gated: bool,
    steps: u8,
    /// A per-transition obligation observed broken while driving (e.g. a
    /// duplicate admission accepted); reported by the invariant.
    breach: Option<String>,
}

impl PartialEq for DmContractState {
    fn eq(&self, other: &Self) -> bool {
        self.key == other.key
            && self.admitted == other.admitted
            && self.gated == other.gated
            && self.steps == other.steps
            && self.breach == other.breach
    }
}
impl Eq for DmContractState {}
impl std::hash::Hash for DmContractState {
    fn hash<H: std::hash::Hasher>(&self, h: &mut H) {
        self.key.hash(h);
        self.admitted.hash(h);
        self.gated.hash(h);
        self.steps.hash(h);
        self.breach.hash(h);
    }
}
impl std::fmt::Debug for DmContractState {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("DmContractState")
            .field("admitted", &self.admitted)
            .field("gated", &self.gated)
            .field("steps", &self.steps)
            .field("breach", &self.breach)
            .finish()
    }
}

/// A classify probe: a SYN whose DM bits address `dst` from `src`.
fn dm_probe(dst: Endpoint, src: Endpoint) -> Packet {
    let mut p = Packet { dst_addr: dst.addr, src_addr: src.addr, ..Default::default() };
    p.dm.dst_port = dst.port;
    p.dm.src_port = src.port;
    p.cm.flags.syn = true;
    p
}

impl Model for DmContract {
    type State = DmContractState;

    fn init(&self) -> Vec<DmContractState> {
        let dm = self.mk();
        vec![DmContractState {
            key: dm.contract_key(),
            dm,
            admitted: [None, None],
            gated: false,
            steps: 0,
            breach: None,
        }]
    }

    fn next(&self, s: &DmContractState) -> Vec<(&'static str, DmContractState)> {
        if s.steps >= self.max_steps {
            return vec![];
        }
        let mut out = Vec::new();
        let admit_labels = ["admit_t0", "admit_t1"];
        let release_labels = ["release_t0", "release_t1"];
        for i in 0..2 {
            let mut ns = s.clone();
            ns.steps += 1;
            match (s.admitted[i], ns.dm.admit(dm_tuple(i))) {
                (Some(_), Ok(id)) => {
                    ns.breach = Some(format!(
                        "{G_DM} violated: bound tuple re-admitted as {id:?} — \
                         two connections now shear on one 4-tuple"
                    ));
                }
                (Some(_), Err(_)) => {} // correctly refused
                (None, Ok(id)) => ns.admitted[i] = Some(id),
                (None, Err(e)) => {
                    ns.breach =
                        Some(format!("{G_DM} violated: fresh tuple refused admission: {e:?}"));
                }
            }
            ns.key = ns.dm.contract_key();
            out.push((admit_labels[i], ns));
            if let Some(id) = s.admitted[i] {
                let mut ns = s.clone();
                ns.steps += 1;
                ns.dm.release(id);
                ns.admitted[i] = None;
                ns.key = ns.dm.contract_key();
                out.push((release_labels[i], ns));
            }
        }
        let mut ns = s.clone();
        ns.steps += 1;
        ns.gated = !s.gated;
        ns.dm.set_gate(ns.gated);
        ns.key = ns.dm.contract_key();
        out.push(("gate", ns));
        out
    }

    fn invariant(&self, s: &DmContractState) -> Result<(), String> {
        use sublayer_core::DmVerdict;
        if let Some(b) = &s.breach {
            return Err(b.clone());
        }
        for i in 0..2 {
            let t = dm_tuple(i);
            let got = s.dm.lookup(&t);
            if got != s.admitted[i] {
                return Err(format!(
                    "{G_DM} violated: lookup({t:?}) = {got:?} but the ghost admission is {:?}",
                    s.admitted[i]
                ));
            }
            if let Some(id) = s.admitted[i] {
                if s.dm.tuple_of(id) != Some(t) {
                    return Err(format!(
                        "{G_DM} violated: tuple_of({id:?}) lost the admitted 4-tuple"
                    ));
                }
                // An admitted flow's packets classify to it.
                match s.dm.classify(&dm_probe(t.local, t.remote)) {
                    DmVerdict::Known(k) if k == id => {}
                    v => {
                        return Err(format!(
                            "{G_DM} violated: admitted flow classifies as {v:?}, not Known({id:?})"
                        ))
                    }
                }
            }
        }
        // A fresh flow to the listening port obeys the gate.
        let fresh = dm_probe(
            Endpoint::new(LOCAL_ADDR, LISTEN_PORT),
            Endpoint::new(7, 777),
        );
        match (s.gated, s.dm.classify(&fresh)) {
            (true, DmVerdict::Gated(_)) | (false, DmVerdict::NewFlow(_)) => {}
            (g, v) => {
                return Err(format!(
                    "{G_DM} violated: fresh flow classified {v:?} with gate={g}"
                ))
            }
        }
        // No listener, not-for-us: fixed expectations.
        let stray = dm_probe(Endpoint::new(LOCAL_ADDR, 81), Endpoint::new(7, 777));
        if !matches!(s.dm.classify(&stray), DmVerdict::NoListener) {
            return Err(format!("{G_DM} violated: port with no listener classified as wanted"));
        }
        let foreign = dm_probe(Endpoint::new(LOCAL_ADDR + 1, LISTEN_PORT), Endpoint::new(7, 777));
        if !matches!(s.dm.classify(&foreign), DmVerdict::NotForUs) {
            return Err(format!("{G_DM} violated: foreign-addressed packet accepted"));
        }
        Ok(())
    }

    fn is_done(&self, s: &DmContractState) -> bool {
        s.steps >= self.max_steps
    }
}

// ---------------------------------------------------------------------
// CM contract: sequence only within the admitted window.
// ---------------------------------------------------------------------

const CM_LOCAL_ISN: u32 = 0x1000_0001;
/// The genuine peer incarnation's ISN (carried by the valid SYN|ACK).
const CM_PEER_ISN: u32 = 0x2000_0002;
/// A second genuine incarnation: the bare SYN of a simultaneous open.
const CM_PEER_ISN_SIMO: u32 = 0x3000_0003;
/// A stale incarnation's ISN: its SYN|ACK echoes the wrong local ISN.
const CM_STALE_ISN: u32 = 0x4000_0004;
const CM_WRONG_ECHO: u32 = CM_LOCAL_ISN ^ 0x5a5a_5a5a;

fn cm_st(s: CmState) -> u8 {
    match s {
        CmState::Idle => 0,
        CmState::SynSent => 1,
        CmState::SynRcvd => 2,
        CmState::Established => 3,
        CmState::Closing => 4,
        CmState::TimeWait => 5,
        CmState::Closed => 6,
    }
}

/// Per-transition obligations the environment computed from the pre-state
/// and the action, checked on the successor (the `CongCtrl` idiom).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, Default)]
struct CmObl {
    expect_state: Option<u8>,
    expect_challenges: Option<u64>,
}

/// Assume/guarantee contract over the real [`ConnMgmt`] (or its canary
/// [`BuggyCm`]), built — as the assumption demands — from an `Admitted`
/// token minted by a real [`Demux`]. The environment replays genuine and
/// stale handshake traffic plus blind RSTs; CM must synchronize only with
/// a genuine incarnation and follow the RFC 5961 discipline
/// ([`cm_rst_response`]) once synchronized.
pub struct CmContract {
    buggy: bool,
    pub max_steps: u8,
}

impl CmContract {
    pub fn shipped() -> CmContract {
        CmContract { buggy: false, max_steps: 6 }
    }

    pub fn buggy() -> CmContract {
        CmContract { buggy: true, max_steps: 6 }
    }

    fn mk(&self) -> Box<dyn CmDriver> {
        // The assumption G_DM made manifest: the token comes from a real
        // admission (and the typestate makes any other construction a
        // compile error).
        let mut dm = Demux::new(LOCAL_ADDR, slmetrics::shared());
        let token = dm.bind(dm_tuple(0)).expect("fresh demux admits");
        if self.buggy {
            Box::new(BuggyCm::open_active(
                token,
                CmScheme::ThreeWay,
                CM_LOCAL_ISN,
                Time::ZERO,
                slmetrics::shared(),
            ))
        } else {
            Box::new(ConnMgmt::open_active(
                token,
                CmScheme::ThreeWay,
                CM_LOCAL_ISN,
                Time::ZERO,
                slmetrics::shared(),
            ))
        }
    }

    fn feed(
        &self,
        s: &CmContractState,
        hdr: &CmHeader,
        rst_seq: SeqValidity,
        obl: CmObl,
    ) -> CmContractState {
        let mut ns = s.clone();
        ns.steps += 1;
        ns.obl = obl;
        ns.cm.on_packet(hdr, false, rst_seq, ns.now);
        ns.cm.take_events();
        ns.key = ns.cm.contract_key();
        ns
    }
}

#[derive(Clone)]
pub struct CmContractState {
    cm: Box<dyn CmDriver>,
    key: Vec<u64>,
    now: Time,
    steps: u8,
    /// Ghost: the genuine SYN|ACK has been emitted by the environment.
    fed_valid: bool,
    /// Ghost: the simultaneous-open SYN has been emitted.
    fed_simo: bool,
    obl: CmObl,
}

impl PartialEq for CmContractState {
    fn eq(&self, other: &Self) -> bool {
        self.key == other.key
            && self.now == other.now
            && self.steps == other.steps
            && self.fed_valid == other.fed_valid
            && self.fed_simo == other.fed_simo
            && self.obl == other.obl
    }
}
impl Eq for CmContractState {}
impl std::hash::Hash for CmContractState {
    fn hash<H: std::hash::Hasher>(&self, h: &mut H) {
        self.key.hash(h);
        self.now.hash(h);
        self.steps.hash(h);
        self.fed_valid.hash(h);
        self.fed_simo.hash(h);
        self.obl.hash(h);
    }
}
impl std::fmt::Debug for CmContractState {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("CmContractState")
            .field("state", &self.cm.state())
            .field("peer_isn", &self.cm.peer_isn())
            .field("challenge_acks", &self.cm.challenge_acks())
            .field("steps", &self.steps)
            .field("fed_valid", &self.fed_valid)
            .field("fed_simo", &self.fed_simo)
            .finish()
    }
}

impl Model for CmContract {
    type State = CmContractState;

    fn init(&self) -> Vec<CmContractState> {
        let cm = self.mk();
        vec![CmContractState {
            key: cm.contract_key(),
            cm,
            now: Time::ZERO,
            steps: 0,
            fed_valid: false,
            fed_simo: false,
            obl: CmObl::default(),
        }]
    }

    fn next(&self, s: &CmContractState) -> Vec<(&'static str, CmContractState)> {
        if s.steps >= self.max_steps {
            return vec![];
        }
        let pre = s.cm.state();
        let pre_ch = s.cm.challenge_acks();
        // Once synchronized (or torn down) the RST discipline is judged by
        // RD's sequence trichotomy; in the handshake states CM judges a
        // RST by its own bits (the echoed ISN).
        let presync = matches!(pre, CmState::SynSent | CmState::SynRcvd);
        let challenged = CmObl {
            expect_state: Some(cm_st(pre)),
            expect_challenges: Some(pre_ch + 1),
        };
        let held = CmObl { expect_state: Some(cm_st(pre)), expect_challenges: Some(pre_ch) };
        let mut out = Vec::new();

        // Genuine SYN|ACK (the admitted incarnation answering our SYN).
        let mut h = CmHeader::default();
        h.flags.syn = true;
        h.flags.cm_ack = true;
        h.isn = CM_PEER_ISN;
        h.ack_isn = CM_LOCAL_ISN;
        let obl = match pre {
            CmState::SynSent | CmState::SynRcvd => CmObl {
                expect_state: Some(cm_st(CmState::Established)),
                expect_challenges: Some(pre_ch),
            },
            // RFC 5961 §4: any SYN on a synchronized connection is
            // challenged, never obeyed.
            CmState::Established | CmState::Closing => challenged,
            _ => held,
        };
        let mut ns = self.feed(s, &h, SeqValidity::Outside, obl);
        ns.fed_valid = true;
        out.push(("synack_valid", ns));

        // A stale incarnation's SYN|ACK: echoes the wrong local ISN.
        let mut h = CmHeader::default();
        h.flags.syn = true;
        h.flags.cm_ack = true;
        h.isn = CM_STALE_ISN;
        h.ack_isn = CM_WRONG_ECHO;
        let obl = match pre {
            CmState::Established | CmState::Closing => challenged,
            _ => held, // pre-sync: must be ignored outright
        };
        out.push(("synack_stale", self.feed(s, &h, SeqValidity::Outside, obl)));

        // A bare SYN: simultaneous open in SynSent, duplicate in SynRcvd,
        // challenged once synchronized.
        let mut h = CmHeader::default();
        h.flags.syn = true;
        h.isn = CM_PEER_ISN_SIMO;
        let obl = match pre {
            CmState::SynSent => CmObl {
                expect_state: Some(cm_st(CmState::SynRcvd)),
                expect_challenges: Some(pre_ch),
            },
            CmState::Established | CmState::Closing => challenged,
            _ => held,
        };
        let mut ns = self.feed(s, &h, SeqValidity::Outside, obl);
        if pre == CmState::SynSent {
            ns.fed_simo = true;
        }
        out.push(("syn_simo", ns));

        // RSTs: one genuine (echoes our ISN / exact sequence), two blind.
        for (label, echo, validity) in [
            ("rst_genuine", CM_LOCAL_ISN, SeqValidity::Exact),
            ("rst_blind_inwindow", CM_WRONG_ECHO, SeqValidity::InWindow),
            ("rst_blind_outside", CM_WRONG_ECHO, SeqValidity::Outside),
        ] {
            let mut h = CmHeader::default();
            h.flags.rst = true;
            h.isn = CM_STALE_ISN;
            h.ack_isn = echo;
            let obl = if presync {
                // RFC 793: a RST answering a SYN must acknowledge it.
                if echo == CM_LOCAL_ISN {
                    CmObl {
                        expect_state: Some(cm_st(CmState::Closed)),
                        expect_challenges: Some(pre_ch),
                    }
                } else {
                    held
                }
            } else {
                match cm_rst_response(validity) {
                    RespClass::Reset => CmObl {
                        expect_state: Some(cm_st(CmState::Closed)),
                        expect_challenges: Some(pre_ch),
                    },
                    RespClass::ChallengeAck => challenged,
                    _ => held,
                }
            };
            out.push((label, self.feed(s, &h, validity, obl)));
        }

        // Time: the SYN retransmission deadline (handshake states only).
        if let Some(d) = s.cm.poll_deadline() {
            let mut ns = s.clone();
            ns.steps += 1;
            ns.now = ns.now.max(d);
            ns.cm.on_tick(ns.now);
            ns.cm.take_events();
            ns.key = ns.cm.contract_key();
            // A tick never challenges; the state may hold or give up.
            ns.obl = CmObl { expect_state: None, expect_challenges: Some(pre_ch) };
            out.push(("tick", ns));
        }
        out
    }

    fn invariant(&self, s: &CmContractState) -> Result<(), String> {
        // The guarantee proper: synchronization only with a genuine
        // incarnation the environment actually offered.
        if s.cm.state() == CmState::Established {
            let legit = (s.fed_valid && s.cm.peer_isn() == Some(CM_PEER_ISN))
                || (s.fed_simo && s.cm.peer_isn() == Some(CM_PEER_ISN_SIMO));
            if !legit {
                return Err(format!(
                    "{G_CM} violated: established with peer_isn {:?} though no genuine \
                     incarnation offered it (valid synack fed: {}, simultaneous SYN fed: {})",
                    s.cm.peer_isn(),
                    s.fed_valid,
                    s.fed_simo
                ));
            }
        }
        if let Some(es) = s.obl.expect_state {
            let got = cm_st(s.cm.state());
            if got != es {
                return Err(format!(
                    "{G_CM} violated: transition obligation expected state {es}, \
                     machine is in {:?}",
                    s.cm.state()
                ));
            }
        }
        if let Some(ec) = s.obl.expect_challenges {
            let got = s.cm.challenge_acks();
            if got != ec {
                return Err(format!(
                    "{G_CM} violated: RFC 5961 challenge discipline expected \
                     {ec} challenge acks, machine has {got}"
                ));
            }
        }
        Ok(())
    }

    fn is_done(&self, s: &CmContractState) -> bool {
        s.steps >= self.max_steps
    }
}

// ---------------------------------------------------------------------
// RD contract: exactly-once bounded delivery under the fault alphabet.
// ---------------------------------------------------------------------

/// The environment may drop this many packets per run.
pub const RD_FAULT_BUDGET: u8 = 2;
/// ... and duplicate this many.
pub const RD_DUP_BUDGET: u8 = 1;
/// Liveness bound: the stream must be fully delivered and acknowledged
/// within this many scheduler steps on every admissible schedule.
pub const RD_STEP_BOUND: u8 = 40;
/// The stream under test: two one-byte segments.
pub const RD_STREAM: &[u8] = b"ab";

const RD_SND_ISN: u32 = 0x1111_0000;
const RD_RCV_ISN: u32 = 0x2222_0000;

/// Assume/guarantee contract over a *real* sender/receiver pair of
/// [`ReliableDelivery`] machines (the sender optionally the [`BuggyRd`]
/// canary). All scheduling is deterministic; the only nondeterminism is
/// the fault alphabet — where the drops and the duplicate land. The
/// guarantee is [`G_RD`]: every byte reaches the receiver exactly once and
/// the whole exchange completes within [`RD_STEP_BOUND`] steps without
/// exhausting the retry budget.
pub struct RdContract {
    buggy: bool,
}

impl RdContract {
    pub fn shipped() -> RdContract {
        RdContract { buggy: false }
    }

    pub fn buggy() -> RdContract {
        RdContract { buggy: true }
    }
}

#[derive(Clone)]
pub struct RdContractState {
    snd: Box<dyn RdDriver>,
    rcv: Box<dyn RdDriver>,
    key: Vec<u64>,
    now: Time,
    /// In-flight packets toward the receiver (encoded, + CM's fin flag).
    to_rcv: Vec<(Vec<u8>, bool)>,
    /// In-flight acks toward the sender.
    to_snd: Vec<Vec<u8>>,
    drops: u8,
    dups: u8,
    steps: u8,
    /// Ghost: how many times each stream offset was `Delivered`.
    delivered: [u8; 2],
    breach: Option<String>,
    /// Ghost: the sender reported `RetriesExhausted`.
    exhausted: bool,
}

impl RdContractState {
    fn rekey(&mut self) {
        let mut k = self.snd.contract_key();
        k.push(u64::MAX); // domain separator
        k.extend(self.rcv.contract_key());
        self.key = k;
    }

    fn complete(&self) -> bool {
        self.delivered == [1, 1] && self.snd.all_acked()
    }

    fn drain_snd_events(&mut self) {
        for ev in self.snd.take_events() {
            if matches!(ev, sublayer_core::RdEvent::RetriesExhausted) {
                self.exhausted = true;
            }
        }
    }

    fn drain_rcv_events(&mut self) {
        for ev in self.rcv.take_events() {
            if let sublayer_core::RdEvent::Delivered { offset, data } = ev {
                let off = offset as usize;
                if off >= RD_STREAM.len() || data != RD_STREAM[off..off + 1] {
                    self.breach = Some(format!(
                        "{G_RD} violated: delivered {data:?} at offset {offset}, \
                         not a byte of the pushed stream"
                    ));
                } else {
                    self.delivered[off] = self.delivered[off].saturating_add(1);
                }
            }
        }
    }

    /// Receiver's response packets (acks) enter the return channel.
    fn pump_rcv(&mut self) {
        while let Some((pkt, _fin)) = self.rcv.poll_packet(self.now) {
            self.to_snd.push(pkt.encode());
        }
    }
}

impl PartialEq for RdContractState {
    fn eq(&self, other: &Self) -> bool {
        self.key == other.key
            && self.now == other.now
            && self.to_rcv == other.to_rcv
            && self.to_snd == other.to_snd
            && self.drops == other.drops
            && self.dups == other.dups
            && self.steps == other.steps
            && self.delivered == other.delivered
            && self.breach == other.breach
            && self.exhausted == other.exhausted
    }
}
impl Eq for RdContractState {}
impl std::hash::Hash for RdContractState {
    fn hash<H: std::hash::Hasher>(&self, h: &mut H) {
        self.key.hash(h);
        self.now.hash(h);
        self.to_rcv.hash(h);
        self.to_snd.hash(h);
        self.drops.hash(h);
        self.dups.hash(h);
        self.steps.hash(h);
        self.delivered.hash(h);
        self.breach.hash(h);
        self.exhausted.hash(h);
    }
}
impl std::fmt::Debug for RdContractState {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RdContractState")
            .field("now", &self.now)
            .field("to_rcv", &self.to_rcv.len())
            .field("to_snd", &self.to_snd.len())
            .field("drops", &self.drops)
            .field("dups", &self.dups)
            .field("steps", &self.steps)
            .field("delivered", &self.delivered)
            .field("exhausted", &self.exhausted)
            .finish()
    }
}

impl Model for RdContract {
    type State = RdContractState;

    fn init(&self) -> Vec<RdContractState> {
        let mut snd: Box<dyn RdDriver> = if self.buggy {
            Box::new(BuggyRd::new(RD_SND_ISN, RD_RCV_ISN, slmetrics::shared()))
        } else {
            Box::new(ReliableDelivery::new(RD_SND_ISN, RD_RCV_ISN, slmetrics::shared()))
        };
        let rcv: Box<dyn RdDriver> =
            Box::new(ReliableDelivery::new(RD_RCV_ISN, RD_SND_ISN, slmetrics::shared()));
        for b in RD_STREAM {
            snd.push_segment(Time::ZERO, vec![*b]);
        }
        let mut s = RdContractState {
            snd,
            rcv,
            key: Vec::new(),
            now: Time::ZERO,
            to_rcv: Vec::new(),
            to_snd: Vec::new(),
            drops: 0,
            dups: 0,
            steps: 0,
            delivered: [0, 0],
            breach: None,
            exhausted: false,
        };
        s.rekey();
        vec![s]
    }

    fn next(&self, s: &RdContractState) -> Vec<(&'static str, RdContractState)> {
        if s.steps >= RD_STEP_BOUND || s.complete() {
            return vec![];
        }
        let mut out = Vec::new();
        if !s.to_rcv.is_empty() {
            // The fault alphabet applies to the channel head: deliver it,
            // drop it (within budget), or deliver a duplicate of it.
            let deliver = |dup: bool| {
                let mut ns = s.clone();
                ns.steps += 1;
                let (bytes, fin) = if dup {
                    ns.dups += 1;
                    ns.to_rcv[0].clone()
                } else {
                    ns.to_rcv.remove(0)
                };
                let pkt = Packet::decode(&bytes).expect("model channel holds valid frames");
                ns.rcv.on_packet(ns.now, &pkt, fin);
                ns.drain_rcv_events();
                ns.pump_rcv();
                ns.rekey();
                ns
            };
            out.push(("deliver", deliver(false)));
            if s.dups < RD_DUP_BUDGET {
                out.push(("dup_deliver", deliver(true)));
            }
            if s.drops < RD_FAULT_BUDGET {
                let mut ns = s.clone();
                ns.steps += 1;
                ns.to_rcv.remove(0);
                ns.drops += 1;
                ns.rekey();
                out.push(("drop", ns));
            }
            return out;
        }
        // Deterministic scheduler: transmit, then return acks, then time.
        {
            let mut ns = s.clone();
            if let Some((pkt, fin)) = ns.snd.poll_packet(ns.now) {
                ns.steps += 1;
                ns.to_rcv.push((pkt.encode(), fin));
                ns.drain_snd_events();
                ns.rekey();
                return vec![("tx", ns)];
            }
        }
        if !s.to_snd.is_empty() {
            let mut ns = s.clone();
            ns.steps += 1;
            let bytes = ns.to_snd.remove(0);
            let pkt = Packet::decode(&bytes).expect("model channel holds valid frames");
            ns.snd.on_packet(ns.now, &pkt, false);
            ns.drain_snd_events();
            ns.rekey();
            return vec![("ack", ns)];
        }
        if let Some(d) = s.snd.poll_deadline() {
            let mut ns = s.clone();
            ns.steps += 1;
            ns.now = ns.now.max(d);
            ns.snd.on_tick(ns.now);
            ns.drain_snd_events();
            ns.rekey();
            return vec![("rto", ns)];
        }
        out
    }

    fn invariant(&self, s: &RdContractState) -> Result<(), String> {
        if let Some(b) = &s.breach {
            return Err(b.clone());
        }
        if let Some(off) = s.delivered.iter().position(|&c| c > 1) {
            return Err(format!(
                "{G_RD} violated: stream offset {off} delivered {} times — \
                 exactly-once broken",
                s.delivered[off]
            ));
        }
        if s.exhausted {
            return Err(format!(
                "{G_RD} violated: retries exhausted after {} drops / {} dups — \
                 the fault budget (drop<={RD_FAULT_BUDGET}, dup<={RD_DUP_BUDGET}) \
                 admits this schedule, so delivery must complete",
                s.drops, s.dups
            ));
        }
        if s.steps >= RD_STEP_BOUND && !s.complete() {
            return Err(format!(
                "{G_RD} violated: stream not fully delivered+acked within \
                 {RD_STEP_BOUND} steps (delivered {:?}, drops {}, dups {})",
                s.delivered, s.drops, s.dups
            ));
        }
        Ok(())
    }

    fn is_done(&self, s: &RdContractState) -> bool {
        s.complete()
    }
}

// ---------------------------------------------------------------------
// OSR contract: in-order, gapless release.
// ---------------------------------------------------------------------

/// The three one-byte segments the OSR contract permutes.
pub const OSR_STREAM: &[u8] = b"ABC";

/// Assume/guarantee contract over the real [`Osr`] (or its canary
/// [`BuggyOsr`]). The assumption is exactly RD's guarantee — each segment
/// arrives exactly once, at its true offset, in any order — encoded in the
/// action alphabet itself. The guarantee is [`G_OSR`]: the application
/// sees precisely the contiguous delivered prefix, in order, never a byte
/// across a gap.
pub struct OsrContract {
    buggy: bool,
}

impl OsrContract {
    pub fn shipped() -> OsrContract {
        OsrContract { buggy: false }
    }

    pub fn buggy() -> OsrContract {
        OsrContract { buggy: true }
    }

    fn mk(&self) -> Box<dyn OsrDriver> {
        let rate = slcc::make("fixed-window").expect("shipped controller");
        if self.buggy {
            Box::new(BuggyOsr::new(rate, slmetrics::shared()))
        } else {
            Box::new(Osr::new(rate, slmetrics::shared()))
        }
    }
}

#[derive(Clone)]
pub struct OsrContractState {
    osr: Box<dyn OsrDriver>,
    key: Vec<u64>,
    /// Ghost: bit i set once segment i was delivered (exactly-once is the
    /// assumption, so the alphabet never offers a second delivery).
    mask: u8,
    /// Ghost: everything the application has read so far.
    read_out: Vec<u8>,
}

impl PartialEq for OsrContractState {
    fn eq(&self, other: &Self) -> bool {
        self.key == other.key && self.mask == other.mask && self.read_out == other.read_out
    }
}
impl Eq for OsrContractState {}
impl std::hash::Hash for OsrContractState {
    fn hash<H: std::hash::Hasher>(&self, h: &mut H) {
        self.key.hash(h);
        self.mask.hash(h);
        self.read_out.hash(h);
    }
}
impl std::fmt::Debug for OsrContractState {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("OsrContractState")
            .field("mask", &self.mask)
            .field("read_out", &self.read_out)
            .field("readable", &self.osr.readable_len())
            .finish()
    }
}

/// Length of the contiguous delivered prefix (trailing set bits of the
/// ghost mask from bit 0).
fn prefix_len(mask: u8) -> usize {
    (0..OSR_STREAM.len()).take_while(|i| mask & (1 << i) != 0).count()
}

impl Model for OsrContract {
    type State = OsrContractState;

    fn init(&self) -> Vec<OsrContractState> {
        let osr = self.mk();
        vec![OsrContractState { key: osr.contract_key(), osr, mask: 0, read_out: Vec::new() }]
    }

    fn next(&self, s: &OsrContractState) -> Vec<(&'static str, OsrContractState)> {
        let labels = ["deliver_seg0", "deliver_seg1", "deliver_seg2"];
        let mut out = Vec::new();
        for i in 0..OSR_STREAM.len() {
            if s.mask & (1 << i) == 0 {
                let mut ns = s.clone();
                ns.osr.on_delivered(i as u64, vec![OSR_STREAM[i]]);
                ns.mask |= 1 << i;
                ns.key = ns.osr.contract_key();
                out.push((labels[i], ns));
            }
        }
        if s.osr.readable_len() > 0 {
            let mut ns = s.clone();
            let got = ns.osr.read();
            ns.read_out.extend(got);
            ns.key = ns.osr.contract_key();
            out.push(("read", ns));
        }
        out
    }

    fn invariant(&self, s: &OsrContractState) -> Result<(), String> {
        let released = s.read_out.len() + s.osr.readable_len();
        let prefix = prefix_len(s.mask);
        if released != prefix {
            return Err(format!(
                "{G_OSR} violated: {released} bytes released to the app but the \
                 contiguous delivered prefix is {prefix} (mask {:#05b}) — \
                 a byte crossed a reassembly gap or was withheld",
                s.mask
            ));
        }
        if s.read_out[..] != OSR_STREAM[..s.read_out.len()] {
            return Err(format!(
                "{G_OSR} violated: application read {:?}, not a prefix of {OSR_STREAM:?}",
                s.read_out
            ));
        }
        Ok(())
    }

    fn is_done(&self, s: &OsrContractState) -> bool {
        s.mask as usize == (1 << OSR_STREAM.len()) - 1 && s.osr.readable_len() == 0
    }
}

// ---------------------------------------------------------------------
// Tests: shipped sublayers honor the chain; each canary is caught by its
// owning contract with a pinned shortest counterexample; the contracts
// stay pinned to the RFC-793/5961 relation in both directions.
// ---------------------------------------------------------------------

#[cfg(test)]
mod tests {
    use super::*;
    use crate::checker::Product;
    use crate::relation::{classify_seq, rfc5961_response, SegClass};

    const CAP: usize = 2_000_000;

    #[test]
    fn shipped_dm_honors_its_contract() {
        let r = check(&DmContract::shipped(), CAP);
        assert!(r.ok(), "{r:?}");
        assert!(r.states > 20, "space suspiciously small: {r:?}");
    }

    #[test]
    fn shipped_cm_honors_its_contract() {
        let r = check(&CmContract::shipped(), CAP);
        assert!(r.ok(), "{r:?}");
        assert!(r.states > 50, "space suspiciously small: {r:?}");
    }

    #[test]
    fn shipped_rd_honors_its_contract() {
        let r = check(&RdContract::shipped(), CAP);
        assert!(r.ok(), "{r:?}");
        assert!(r.states > 50, "space suspiciously small: {r:?}");
    }

    #[test]
    fn shipped_osr_honors_its_contract() {
        let r = check(&OsrContract::shipped(), CAP);
        assert!(r.ok(), "{r:?}");
        assert!(r.states > 10, "space suspiciously small: {r:?}");
    }

    #[test]
    fn chain_composes_to_end_to_end_delivery() {
        let proof = prove_end_to_end(CAP).expect("the shipped chain composes");
        assert_eq!(proof.derived, E2E);
        assert_eq!(proof.per_contract.len(), 4);
        // The compositional cost is additive; the fused product is
        // multiplicative. That gap is the paper's point.
        assert!(
            (proof.sum_states as u128) * 10 < proof.fused_estimate,
            "sum {} should be well under the fused estimate {}",
            proof.sum_states,
            proof.fused_estimate
        );
    }

    #[test]
    fn composition_requires_sublayer_order() {
        // RD before CM: RD's assumption (G_CM) is not yet established.
        let runs = vec![
            (DM_CONTRACT, check(&DmContract::shipped(), CAP)),
            (RD_CONTRACT, check(&RdContract::shipped(), CAP)),
        ];
        let err = compose(&runs).expect_err("out-of-order chain must not compose");
        assert!(err.contains("sublayer order"), "{err}");
    }

    #[test]
    fn composition_refuses_a_failing_contract() {
        let runs = vec![
            (DM_CONTRACT, check(&DmContract::shipped(), CAP)),
            (CM_CONTRACT, check(&CmContract::shipped(), CAP)),
            (RD_CONTRACT, check(&RdContract::buggy(), CAP)),
            (OSR_CONTRACT, check(&OsrContract::shipped(), CAP)),
        ];
        let err = compose(&runs).expect_err("a violated link must break the chain");
        assert!(err.starts_with("rd:"), "{err}");
    }

    // --- mutation canaries: each caught by the contract owning the
    // --- violated obligation, with the BFS-shortest counterexample pinned.

    #[test]
    fn buggy_dm_caught_by_dm_contract() {
        let r = check(&DmContract::buggy(), CAP);
        let v = r.violation.expect("BuggyDm must trip the DM contract");
        assert!(v.reason.contains(G_DM), "{v:?}");
        assert!(v.reason.contains("re-admitted"), "{v:?}");
        // Pinned shrunk counterexample: admit the same tuple twice.
        assert_eq!(v.actions, vec!["admit_t0", "admit_t0"], "{v:?}");
    }

    #[test]
    fn buggy_cm_caught_by_cm_contract() {
        let r = check(&CmContract::buggy(), CAP);
        let v = r.violation.expect("BuggyCm must trip the CM contract");
        assert!(v.reason.contains(G_CM), "{v:?}");
        // Pinned shrunk counterexample: one stale SYN|ACK synchronizes.
        assert_eq!(v.actions, vec!["synack_stale"], "{v:?}");
    }

    #[test]
    fn buggy_rd_caught_by_rd_contract() {
        let r = check(&RdContract::buggy(), CAP);
        let v = r.violation.expect("BuggyRd must trip the RD contract");
        assert!(v.reason.contains(G_RD), "{v:?}");
        // Pinned shrunk counterexample: the drop-after-retry bug needs the
        // two admissible drops on one segment — the first RTO's
        // retransmission still goes out, but from the second RTO on the
        // canary swallows them, so the retry budget walks to exhaustion.
        assert_eq!(
            v.actions,
            vec![
                "tx", "deliver", "tx", "drop", "ack", "rto", "tx", "drop", "rto", "rto",
                "rto", "rto", "rto", "rto", "rto", "rto",
            ],
            "{v:?}"
        );
        assert!(v.reason.contains("retries exhausted"), "{v:?}");
    }

    #[test]
    fn buggy_osr_caught_by_osr_contract() {
        let r = check(&OsrContract::buggy(), CAP);
        let v = r.violation.expect("BuggyOsr must trip the OSR contract");
        assert!(v.reason.contains(G_OSR), "{v:?}");
        // Pinned shrunk counterexample: one gapped delivery is released.
        assert_eq!(v.actions, vec!["deliver_seg1"], "{v:?}");
    }

    #[test]
    fn canaries_do_not_trip_foreign_contracts() {
        // The compositional point: a broken RD cannot surface in the OSR
        // contract (whose alphabet *is* RD's guarantee), and vice versa —
        // each mutation is caught exactly where the obligation lives. The
        // three contracts not owning the mutation run their shipped
        // sublayer and stay green (type safety alone prevents wiring a
        // BuggyRd into the CM contract).
        for (name, r) in [
            ("dm", check(&DmContract::shipped(), CAP)),
            ("cm", check(&CmContract::shipped(), CAP)),
            ("osr", check(&OsrContract::shipped(), CAP)),
        ] {
            assert!(r.ok(), "{name} must stay green: {r:?}");
        }
    }

    // --- the fused arm: what composition avoids.

    #[test]
    fn fused_product_explodes_multiplicatively() {
        let dm = check(&DmContract::shipped(), CAP);
        let osr = check(&OsrContract::shipped(), CAP);
        let fused = check(&Product::new(DmContract::shipped(), OsrContract::shipped()), CAP);
        assert!(fused.ok(), "{fused:?}");
        assert!(
            fused.states > 3 * (dm.states + osr.states),
            "fused {} vs sum {}",
            fused.states,
            dm.states + osr.states
        );
    }

    // --- cross-checks: contracts ⇔ relation, pinned in both directions.

    #[test]
    fn cm_rst_obligation_matches_relation() {
        // Contract → relation: every obligation the CM contract enforces
        // is exactly what the shared RFC 5961 relation prescribes.
        for v in [SeqValidity::Exact, SeqValidity::InWindow, SeqValidity::Outside] {
            assert_eq!(
                cm_rst_response(v),
                rfc5961_response(true, SegClass::Rst, verdict_of(v)),
                "contract diverges from relation at {v:?}"
            );
        }
    }

    #[test]
    fn relation_matches_cm_rst_obligation() {
        // Relation → contract: walking the relation's domain back onto the
        // contract, so loosening either side breaks a test.
        for v in [SeqVerdict::Exact, SeqVerdict::InWindow, SeqVerdict::Outside] {
            assert_eq!(
                rfc5961_response(true, SegClass::Rst, v),
                cm_rst_response(validity_of(v)),
                "relation diverges from contract at {v:?}"
            );
        }
    }

    #[test]
    fn rd_seq_validity_matches_classify_seq() {
        // The third leg: RD's own wire trichotomy is the same function as
        // the relation's classify_seq over RD's validity window.
        use sublayer_core::rd::VALIDITY_WND;
        let rd = ReliableDelivery::new(RD_SND_ISN, RD_RCV_ISN, slmetrics::shared());
        let rcv_ack = RD_RCV_ISN.wrapping_add(1); // offset 0 on the wire
        for delta in [
            0u32,
            1,
            2,
            VALIDITY_WND - 1,
            VALIDITY_WND,
            VALIDITY_WND + 1,
            u32::MAX / 2,
            u32::MAX,
        ] {
            let wire = rcv_ack.wrapping_add(delta);
            assert_eq!(
                verdict_of(rd.seq_validity(wire)),
                classify_seq(rcv_ack, wire, VALIDITY_WND),
                "divergence at delta {delta}"
            );
        }
    }

    #[test]
    fn chain_assumptions_are_the_previous_guarantee() {
        // The chain shape itself, pinned: each contract's non-environment
        // assumption is exactly the guarantee of the sublayer below.
        let c = chain();
        assert_eq!(c[1].assumes.last(), Some(&c[0].guarantees[0]));
        assert_eq!(c[2].assumes.last(), Some(&c[1].guarantees[0]));
        assert_eq!(c[3].assumes.last(), Some(&c[2].guarantees[0]));
    }
}
