//! The monolithic TCP engine.
//!
//! `on_segment` is this crate's `tcp_input()`: one long function that —
//! exactly like the code on p.948 of TCP/IP Illustrated vol. 2 that the
//! paper cites — interleaves demultiplexing (finding the PCB), connection
//! management (SYN/FIN state transitions), reliable delivery (ack
//! processing, retransmission, reassembly), congestion control (cwnd
//! updates, fast retransmit) and flow control (window updates), all
//! mutating the same [`Pcb`]. The `log.borrow_mut()` annotations record
//! which *subfunction* touches which *field*; experiment E6 turns that
//! into the entanglement matrix contrasted with the sublayered stack.

use crate::hash::FxBuildHasher;
use crate::pcb::*;
use crate::seq;
use crate::wire::{Endpoint, FourTuple, Segment, ACK, FIN, PSH, RST, SYN};
use netsim::{Dur, Stack, Time, TransportError};
use slcc::{CcError, CongSignal, NewReno, RateController};
use slmetrics::{Pressure, SharedLog};
use std::collections::{HashMap, HashSet, VecDeque};

/// Aggregate counters.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct TcpStats {
    pub segs_sent: u64,
    pub segs_received: u64,
    pub bad_segments: u64,
    pub rto_retransmits: u64,
    pub fast_retransmits: u64,
    pub dupacks: u64,
    pub rsts_sent: u64,
    pub conns_opened: u64,
    pub conns_reset: u64,
    pub keepalive_probes: u64,
    /// RFC 5961 challenge ACKs sent for suspect in-window RST/SYN.
    pub challenge_acks: u64,
    /// Stateless SYN|ACKs sent because the half-open queue was full.
    pub syn_cookies_sent: u64,
    /// Connections completed from a returned cookie.
    pub syn_cookies_validated: u64,
    /// Stale half-open PCBs evicted to admit a new SYN.
    pub half_open_evictions: u64,
    /// ACKs dropped for being far outside the plausible window (RFC 5961 §5).
    pub old_ack_drops: u64,
    /// Retransmission timeouts F-RTO classified as spurious (the original
    /// flight was still arriving; the go-back-N replay was cancelled).
    pub spurious_rtos: u64,
    /// Out-of-order payload bytes discarded at the reassembly byte cap.
    pub ooo_overflow_drops: u64,
    /// Inbound flows refused because the connection table was full.
    pub conn_table_full_drops: u64,
    /// Inbound flows refused because the accept gate was closed (host
    /// memory pressure or drain).
    pub pressure_refusals: u64,
    /// Pure acks deferred by pressure-driven ACK pacing.
    pub acks_paced: u64,
}

/// Half-open (SYN_RCVD) connections tolerated per host; beyond this a
/// flood is answered with stateless SYN cookies or eviction, never more
/// memory.
pub const MAX_HALF_OPEN: usize = 16;
/// A half-open this old (one initial RTO, i.e. already retransmitting its
/// SYN|ACK) may be evicted for a fresh SYN.
const HALF_OPEN_EVICT_AGE: Dur = Dur(1_000_000_000);
/// Send-buffer cap: `send` accepts at most this much unacknowledged +
/// unsent data, so the retransmit queue is bounded and the application
/// feels backpressure through the short count.
pub const SND_BUF_CAP: usize = 1 << 20;
/// Largest plausible distance an honest ACK can trail `snd_una`
/// (RFC 5961 §5: anything older is blind noise and is dropped silently).
const MAX_ACK_AGE: u32 = 65_535;
/// How long a pure ack may be held under pressure-driven ACK pacing —
/// well below [`MIN_RTO`] so pacing never triggers a peer's RTO.
pub const ACK_PACE_DELAY: Dur = Dur(50_000_000);

/// Keepalive policy (off by default; see [`TcpStack::set_keepalive`]).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Keepalive {
    /// Idle time before the first probe.
    pub idle: Dur,
    /// Gap between successive unanswered probes.
    pub interval: Dur,
    /// Unanswered probes tolerated before the connection is aborted.
    pub max_probes: u32,
}

impl Default for Keepalive {
    fn default() -> Keepalive {
        Keepalive {
            idle: Dur::from_secs(10),
            interval: Dur::from_secs(2),
            max_probes: 5,
        }
    }
}

// Subfunction labels for the entanglement instrumentation.
const DEMUX: &str = "demux";
const CONN: &str = "conn_mgmt";
const RD: &str = "reliable_delivery";
const CC: &str = "congestion_control";
const FC: &str = "flow_control";
const TIMERS: &str = "timers";

/// A monolithic TCP endpoint (host): connection table + listeners.
pub struct TcpStack {
    addr: u32,
    listeners: HashSet<u16>,
    /// Demux table keyed by the shared seeded fx mix (`crate::hash`) —
    /// same bucket function the sublayered demux and shard router use.
    conns: HashMap<FourTuple, Pcb, FxBuildHasher>,
    outbox: VecDeque<Vec<u8>>,
    log: SharedLog,
    keepalive: Option<Keepalive>,
    /// Terminal error per connection; survives the PCB so the application
    /// can ask *why* a connection died after it is gone.
    errors: HashMap<FourTuple, TransportError>,
    /// Connection-table capacity: beyond it, passive opens are refused
    /// with a RST and active opens fail with
    /// [`TransportError::ConnTableFull`].
    max_conns: usize,
    next_ephemeral: u16,
    /// Host memory pressure. Contrast with the sublayered stack, where
    /// the signal is split into per-sublayer slices: here one global is
    /// consulted by flow control (window stamping), the output path and
    /// timers (ack pacing), and connection management (accept gating) —
    /// the cross-cutting state the paper warns about.
    pressure: Pressure,
    /// Host-requested accept gate (drain/quiesce).
    gate: bool,
    /// The configured rate controller, validated at construction and
    /// cloned into each new PCB — the same shared [`RateController`] set
    /// the sublayered stack selects from.
    cc_template: Box<dyn RateController>,
    pub stats: TcpStats,
}

impl TcpStack {
    pub fn new(addr: u32, log: SharedLog) -> TcpStack {
        Self::build(addr, Box::new(NewReno::new()), log)
    }

    /// Construct with a named congestion controller from the shared
    /// [`slcc`] set; an unknown name is a typed error at construction,
    /// never a panic on input.
    pub fn with_cc(addr: u32, cc: &str, log: SharedLog) -> Result<TcpStack, CcError> {
        Ok(Self::build(addr, slcc::make(cc)?, log))
    }

    fn build(addr: u32, cc_template: Box<dyn RateController>, log: SharedLog) -> TcpStack {
        TcpStack {
            addr,
            listeners: HashSet::new(),
            conns: HashMap::with_hasher(FxBuildHasher::with_seed(addr as u64)),
            outbox: VecDeque::new(),
            log,
            keepalive: None,
            errors: HashMap::new(),
            max_conns: 16384,
            next_ephemeral: 49152,
            pressure: Pressure::Nominal,
            gate: false,
            cc_template,
            stats: TcpStats::default(),
        }
    }

    /// The name of the configured congestion controller.
    pub fn cc_name(&self) -> &'static str {
        self.cc_template.name()
    }

    pub fn addr(&self) -> u32 {
        self.addr
    }

    /// Enable keepalive probing for all connections on this host.
    pub fn set_keepalive(&mut self, ka: Keepalive) {
        self.keepalive = Some(ka);
    }

    /// Bound the connection table (default 16384).
    pub fn set_max_conns(&mut self, n: usize) {
        self.max_conns = n;
    }

    /// Update the host memory-pressure signal. Everything downstream —
    /// window stamping, ack pacing, accept gating — reads the shared
    /// field directly; no per-connection fan-out exists to forget.
    pub fn set_pressure(&mut self, p: Pressure) {
        self.log.borrow_mut().w(FC, "pressure");
        self.pressure = p;
    }

    pub fn pressure(&self) -> Pressure {
        self.pressure
    }

    /// Explicitly gate new-flow admission (host drain/quiesce),
    /// independent of the pressure tier.
    pub fn gate_new_flows(&mut self, refuse: bool) {
        self.log.borrow_mut().w(CONN, "gate");
        self.gate = refuse;
    }

    /// One connection's share of [`TcpStack::buffered_bytes`].
    pub fn conn_buffered(&self, tuple: FourTuple) -> usize {
        self.conns.get(&tuple).map_or(0, |p| {
            p.snd_buf.len()
                + p.rcv_buf.len()
                + p.ooo.values().map(|d| d.len()).sum::<usize>()
        })
    }

    /// Bytes currently pinned awaiting retransmission (the unacked prefix
    /// of `snd_buf`, bounded by [`SND_BUF_CAP`] no matter how long the
    /// path stays partitioned).
    pub fn conn_rtx_bytes(&self, tuple: FourTuple) -> usize {
        self.conns
            .get(&tuple)
            .map_or(0, |p| (p.flight_size() as usize).min(p.snd_buf.len()))
    }

    /// How long the oldest unacked data has waited without cumulative ack
    /// progress — the partition-age signal a host budget can act on.
    pub fn conn_oldest_unacked(&self, tuple: FourTuple, now: Time) -> Option<Dur> {
        self.conns.get(&tuple).and_then(|p| p.oldest_unacked_age(now))
    }

    /// Monotone progress counter for slow-drain detection: in-order bytes
    /// received plus bytes the peer has cumulatively acknowledged.
    pub fn conn_progress(&self, tuple: FourTuple) -> u64 {
        self.conns.get(&tuple).map_or(0, |p| {
            p.rcv_nxt.wrapping_sub(p.irs) as u64 + p.snd_una.wrapping_sub(p.iss) as u64
        })
    }

    /// Advertised window under the stack-global pressure clamp. Every
    /// subfunction that stamps a header — handshake, output,
    /// retransmission, probes, challenges — must remember to route its
    /// window through this helper; miss one site and the clamp silently
    /// leaks (the diff-locality cost the sublayered stack avoids by
    /// clamping once, inside OSR).
    fn adv_wnd(&self, pcb: &Pcb) -> u16 {
        self.log.borrow_mut().r(FC, "pressure");
        self.log.borrow_mut().r(FC, "rcv_wnd");
        (pcb.rcv_wnd() >> self.pressure.wnd_shift()).min(u16::MAX as u32) as u16
    }

    /// The terminal error recorded for `tuple`, if the connection was
    /// aborted (locally or by the peer) rather than closed cleanly.
    /// Per-connection congestion-control observability: window samples
    /// and loss/recovery event counts ([`slmetrics::CcCounters`], the
    /// same shape the sublayered stack fills — E19 reads both like for
    /// like).
    pub fn conn_cc(&self, tuple: FourTuple) -> Option<slmetrics::CcCounters> {
        self.conns.get(&tuple).map(|p| p.cc_stats)
    }

    pub fn conn_error(&self, tuple: FourTuple) -> Option<TransportError> {
        self.errors.get(&tuple).copied()
    }

    /// RFC 793 clock-driven ISN ("unique in time using the low-order bits
    /// of a clock"), salted by the 4-tuple so both simulated hosts don't
    /// collide at t=0.
    fn isn(&self, now: Time, tuple: &FourTuple) -> u32 {
        let clock = (now.micros() / 4) as u32;
        let salt = tuple
            .local
            .addr
            .wrapping_mul(2654435761)
            .wrapping_add(tuple.local.port as u32)
            .wrapping_mul(40503)
            .wrapping_add(tuple.remote.port as u32);
        clock.wrapping_add(salt)
    }

    /// Begin listening for connections on a local port.
    pub fn listen(&mut self, port: u16) {
        self.listeners.insert(port);
    }

    /// Actively open a connection; returns its id. Panics if the table
    /// cannot admit it — use [`TcpStack::try_connect`] when refusal must
    /// be a value, not a crash.
    pub fn connect(&mut self, now: Time, local_port: u16, remote: Endpoint) -> FourTuple {
        self.try_connect(now, local_port, remote).expect("tuple free")
    }

    /// Active open surfacing capacity as a typed error instead of a panic:
    /// a full connection table or an already-bound tuple both mean the
    /// table cannot admit this connection.
    pub fn try_connect(
        &mut self,
        now: Time,
        local_port: u16,
        remote: Endpoint,
    ) -> Result<FourTuple, TransportError> {
        if self.conns.len() >= self.max_conns {
            return Err(TransportError::ConnTableFull);
        }
        let tuple = FourTuple {
            local: Endpoint::new(self.addr, local_port),
            remote,
        };
        if self.conns.contains_key(&tuple) {
            return Err(TransportError::ConnTableFull);
        }
        self.log.borrow_mut().w(CONN, "state");
        self.log.borrow_mut().w(CONN, "iss");
        let iss = self.isn(now, &tuple);
        let mut pcb = Pcb::with_cc(tuple, TcpState::SynSent, iss, self.cc_template.clone());
        pcb.snd_nxt = iss.wrapping_add(1);
        pcb.snd_max = pcb.snd_nxt;
        pcb.rto_deadline = Some(now + pcb.rto);
        pcb.last_rx = now;
        self.stats.conns_opened += 1;
        self.send_syn(&mut pcb, false);
        self.conns.insert(tuple, pcb);
        Ok(tuple)
    }

    /// Allocate an ephemeral local port toward `remote`, or `None` once
    /// every port in the ephemeral range is bound to it.
    fn ephemeral_port(&mut self, remote: Endpoint) -> Option<u16> {
        const EPHEMERAL_RANGE: u32 = u16::MAX as u32 - 49152 + 1;
        for _ in 0..EPHEMERAL_RANGE {
            let p = self.next_ephemeral;
            self.next_ephemeral = self.next_ephemeral.checked_add(1).unwrap_or(49152);
            let tuple = FourTuple { local: Endpoint::new(self.addr, p), remote };
            if !self.conns.contains_key(&tuple) {
                return Some(p);
            }
        }
        None
    }

    /// Active open with an ephemeral local port.
    pub fn connect_ephemeral(&mut self, now: Time, remote: Endpoint) -> FourTuple {
        self.try_connect_ephemeral(now, remote).expect("ephemeral port free")
    }

    /// Active open with an ephemeral local port, surfacing port
    /// exhaustion and table capacity as typed errors.
    pub fn try_connect_ephemeral(
        &mut self,
        now: Time,
        remote: Endpoint,
    ) -> Result<FourTuple, TransportError> {
        if self.conns.len() >= self.max_conns {
            return Err(TransportError::ConnTableFull);
        }
        let Some(port) = self.ephemeral_port(remote) else {
            return Err(TransportError::PortsExhausted);
        };
        self.try_connect(now, port, remote)
    }

    /// Queue application data. Returns bytes accepted — short counts mean
    /// the bounded send buffer is full (backpressure; retry after acks
    /// drain it).
    pub fn send(&mut self, tuple: FourTuple, data: &[u8]) -> usize {
        let Some(pcb) = self.conns.get_mut(&tuple) else { return 0 };
        if !pcb.state.can_send() || pcb.fin_queued {
            return 0;
        }
        self.log.borrow_mut().w(RD, "snd_buf");
        let n = data.len().min(SND_BUF_CAP.saturating_sub(pcb.snd_buf.len()));
        pcb.snd_buf.extend(data[..n].iter().copied());
        n
    }

    /// Drain received in-order bytes.
    pub fn recv(&mut self, tuple: FourTuple) -> Vec<u8> {
        let Some(pcb) = self.conns.get_mut(&tuple) else { return Vec::new() };
        self.log.borrow_mut().r(RD, "rcv_buf");
        self.log.borrow_mut().w(FC, "rcv_wnd");
        let out: Vec<u8> = pcb.rcv_buf.drain(..).collect();
        // The window just opened; let the peer know — unless its FIN
        // already arrived: no more data can come, and the gratuitous
        // update would poke a peer whose TCB may already be deleted.
        if !out.is_empty()
            && !matches!(
                pcb.state,
                TcpState::CloseWait
                    | TcpState::Closing
                    | TcpState::LastAck
                    | TcpState::TimeWait
            )
        {
            pcb.ack_pending = true;
        }
        out
    }

    /// Graceful close: FIN after the send buffer drains.
    pub fn close(&mut self, tuple: FourTuple) {
        let Some(pcb) = self.conns.get_mut(&tuple) else { return };
        self.log.borrow_mut().w(CONN, "state");
        match pcb.state {
            TcpState::Established | TcpState::SynRcvd => {
                pcb.fin_queued = true;
                pcb.state = TcpState::FinWait1;
            }
            TcpState::CloseWait => {
                pcb.fin_queued = true;
                pcb.state = TcpState::LastAck;
            }
            TcpState::SynSent => {
                self.conns.remove(&tuple);
            }
            _ => {}
        }
    }

    /// Hard reset.
    pub fn abort(&mut self, tuple: FourTuple) {
        if let Some(pcb) = self.conns.remove(&tuple) {
            self.errors.entry(tuple).or_insert(TransportError::Reset);
            self.send_rst(&pcb);
        }
    }

    /// RST the peer of an existing connection.
    fn send_rst(&mut self, pcb: &Pcb) {
        let seg = Segment {
            src: pcb.tuple.local,
            dst: pcb.tuple.remote,
            seq: pcb.snd_nxt,
            ack: pcb.rcv_nxt,
            flags: RST | ACK,
            wnd: 0,
            mss: None,
            payload: Vec::new(),
        };
        self.stats.rsts_sent += 1;
        self.push(seg);
    }

    pub fn state(&self, tuple: FourTuple) -> TcpState {
        self.conns.get(&tuple).map_or(TcpState::Closed, |p| p.state)
    }

    /// Connections currently established (for the passive side to
    /// discover accepted peers).
    pub fn established(&self) -> Vec<FourTuple> {
        let mut v: Vec<FourTuple> = self
            .conns
            .iter()
            .filter(|(_, p)| p.state == TcpState::Established)
            .map(|(&t, _)| t)
            .collect();
        v.sort();
        v
    }

    /// Bytes queued but not yet acknowledged.
    pub fn unacked_len(&self, tuple: FourTuple) -> usize {
        self.conns.get(&tuple).map_or(0, |p| p.snd_buf.len())
    }

    pub fn conn_count(&self) -> usize {
        self.conns.len()
    }

    /// In-order received bytes available to `recv` without draining them.
    pub fn readable_len(&self, tuple: FourTuple) -> usize {
        self.conns.get(&tuple).map_or(0, |p| p.rcv_buf.len())
    }

    /// How many bytes `send` would accept right now (0 once the stream is
    /// closing or the connection is gone).
    pub fn send_capacity(&self, tuple: FourTuple) -> usize {
        match self.conns.get(&tuple) {
            Some(p) if p.state.can_send() && !p.fin_queued => {
                SND_BUF_CAP.saturating_sub(p.snd_buf.len())
            }
            _ => 0,
        }
    }

    /// Has the peer's FIN been processed? (EOF for the application.)
    pub fn peer_closed(&self, tuple: FourTuple) -> bool {
        matches!(
            self.state(tuple),
            TcpState::CloseWait | TcpState::Closing | TcpState::LastAck | TcpState::TimeWait
        )
    }

    /// Pop one already-encoded segment without scanning any connection —
    /// the host layer's transmit path ([`TcpStack::pump_conn`] is what
    /// fills the outbox).
    pub fn take_frame(&mut self) -> Option<Vec<u8>> {
        self.outbox.pop_front()
    }

    /// Run one connection's output path (tcp_output) — the
    /// per-connection half of `poll_transmit`, for hosts that know which
    /// connection changed.
    pub fn pump_conn(&mut self, now: Time, tuple: FourTuple) {
        self.output(now, tuple);
    }

    /// Next timer deadline for *one* connection, so a host can keep one
    /// wheel entry per connection instead of scanning them all.
    pub fn conn_deadline(&self, _now: Time, tuple: FourTuple) -> Option<Time> {
        let p = self.conns.get(&tuple)?;
        let ka_due = self.keepalive.and_then(|ka| {
            (p.state == TcpState::Established).then(|| {
                p.last_rx + ka.idle + ka.interval.saturating_mul(p.ka_probes as u64)
            })
        });
        [
            p.rto_deadline,
            p.time_wait_deadline,
            p.persist_deadline,
            p.delayed_ack_deadline,
            ka_due,
        ]
        .into_iter()
        .flatten()
        .min()
    }

    /// Direct PCB access for tests and campaign invariants (read-only).
    pub fn pcb(&self, tuple: FourTuple) -> Option<&Pcb> {
        self.conns.get(&tuple)
    }

    /// The wire sequence number this connection expects next — what an
    /// exact-sequence ("oracle") attacker would have to guess. Mirrors
    /// `SlTcpStack::expected_wire_seq` so differential harnesses can
    /// craft byte-precise injections against either stack.
    pub fn expected_wire_seq(&self, tuple: FourTuple) -> Option<u32> {
        self.conns.get(&tuple).map(|p| p.rcv_nxt)
    }

    /// Total bytes held across all connection buffers — the quantity the
    /// resource-governance invariants bound under attack.
    pub fn buffered_bytes(&self) -> usize {
        self.conns
            .values()
            .map(|p| {
                p.snd_buf.len()
                    + p.rcv_buf.len()
                    + p.ooo.values().map(|d| d.len()).sum::<usize>()
            })
            .sum()
    }

    fn push(&mut self, seg: Segment) {
        self.stats.segs_sent += 1;
        self.outbox.push_back(seg.encode());
    }

    fn send_syn(&mut self, pcb: &mut Pcb, with_ack: bool) {
        self.log.borrow_mut().r(CONN, "iss");
        self.log.borrow_mut().r(FC, "rcv_wnd");
        let seg = Segment {
            src: pcb.tuple.local,
            dst: pcb.tuple.remote,
            seq: pcb.iss,
            ack: if with_ack { pcb.rcv_nxt } else { 0 },
            flags: if with_ack { SYN | ACK } else { SYN },
            wnd: self.adv_wnd(pcb),
            mss: Some(pcb.mss as u16),
            payload: Vec::new(),
        };
        self.push(seg);
    }

    fn send_rst_for(&mut self, seg: &Segment) {
        if seg.rst() {
            return;
        }
        let (rseq, rack, rflags) = if seg.ack_flag() {
            (seg.ack, 0, RST)
        } else {
            (0, seg.seq.wrapping_add(seg.seq_len()), RST | ACK)
        };
        let rst = Segment {
            src: seg.dst,
            dst: seg.src,
            seq: rseq,
            ack: rack,
            flags: rflags,
            wnd: 0,
            mss: None,
            payload: Vec::new(),
        };
        self.stats.rsts_sent += 1;
        self.push(rst);
    }

    /// RFC 5961 challenge ACK: instead of acting on a suspect in-window
    /// RST or SYN, re-assert our state; a legitimate peer answers with an
    /// exact-sequence RST, a blind attacker learns nothing.
    fn challenge_ack(&mut self, pcb: &Pcb) {
        self.log.borrow_mut().r(RD, "snd_nxt");
        self.log.borrow_mut().r(RD, "rcv_nxt");
        self.log.borrow_mut().r(FC, "rcv_wnd");
        let seg = Segment {
            src: pcb.tuple.local,
            dst: pcb.tuple.remote,
            seq: pcb.snd_nxt,
            ack: pcb.rcv_nxt,
            flags: ACK,
            wnd: self.adv_wnd(pcb),
            mss: None,
            payload: Vec::new(),
        };
        self.stats.challenge_acks += 1;
        self.push(seg);
    }

    /// Connections still completing the handshake (SYN queue occupancy).
    pub fn half_open_count(&self) -> usize {
        self.conns.values().filter(|p| p.state == TcpState::SynRcvd).count()
    }

    /// Oldest half-open connection that has sat at least one RTO without
    /// progress — the eviction victim under SYN flood.
    fn stale_half_open(&self, now: Time) -> Option<FourTuple> {
        self.conns
            .values()
            .filter(|p| p.state == TcpState::SynRcvd)
            .filter(|p| now.since(p.last_rx) >= HALF_OPEN_EVICT_AGE)
            .map(|p| (p.last_rx, p.tuple))
            .min()
            .map(|(_, t)| t)
    }

    /// Stateless SYN-cookie ISN: a keyed mix of the 4-tuple and the
    /// client's ISN, recomputable when the handshake-completing ACK
    /// returns so no per-SYN state need exist.
    fn syn_cookie(&self, tuple: &FourTuple, irs: u32) -> u32 {
        let mut h = 0x9E37_79B9u32 ^ self.addr;
        for v in [
            tuple.local.addr,
            tuple.local.port as u32,
            tuple.remote.addr,
            tuple.remote.port as u32,
            irs,
        ] {
            h = h.wrapping_add(v).wrapping_mul(2_654_435_761).rotate_left(13);
        }
        h
    }

    /// Transmit whatever the window allows for `tuple` (tcp_output).
    fn output(&mut self, now: Time, tuple: FourTuple) {
        let Some(mut pcb) = self.conns.remove(&tuple) else { return };
        self.output_pcb(now, &mut pcb);
        if pcb.state != TcpState::Closed {
            self.conns.insert(tuple, pcb);
        }
    }

    fn output_pcb(&mut self, now: Time, pcb: &mut Pcb) {
        if matches!(pcb.state, TcpState::SynSent | TcpState::SynRcvd | TcpState::Listen) {
            return;
        }
        loop {
            // How much may we send? min of peer window and cwnd, minus
            // what's already in flight. [flow control + congestion control]
            self.log.borrow_mut().r(RD, "snd_wnd");
            self.log.borrow_mut().r(RD, "cwnd");
            self.log.borrow_mut().r(RD, "snd_nxt");
            self.log.borrow_mut().r(RD, "snd_una");
            self.log.borrow_mut().r(RD, "mss");
            self.log.borrow_mut().r(RD, "rcv_wnd");
            let window = pcb.snd_wnd.min(pcb.cwnd(now));
            let usable = window.saturating_sub(pcb.flight_size());
            let offset = pcb.snd_nxt.wrapping_sub(pcb.snd_buf_seq) as usize;
            let avail = pcb.snd_buf.len().saturating_sub(offset);
            let n = avail.min(pcb.mss as usize).min(usable as usize);
            if n == 0 {
                // Zero-window with data waiting: arm the persist timer.
                if avail > 0
                    && pcb.snd_wnd == 0
                    && pcb.flight_size() == 0
                    && pcb.persist_deadline.is_none()
                {
                    self.log.borrow_mut().w(RD, "persist_deadline");
                    pcb.persist_deadline = Some(now + pcb.rto);
                }
                break;
            }
            let payload: Vec<u8> =
                pcb.snd_buf.iter().skip(offset).take(n).copied().collect();
            let drains = offset + n == pcb.snd_buf.len();
            self.log.borrow_mut().w(RD, "snd_nxt");
            let seg = Segment {
                src: pcb.tuple.local,
                dst: pcb.tuple.remote,
                seq: pcb.snd_nxt,
                ack: pcb.rcv_nxt,
                flags: ACK | if drains { PSH } else { 0 },
                wnd: self.adv_wnd(pcb),
                mss: None,
                payload,
            };
            pcb.snd_nxt = pcb.snd_nxt.wrapping_add(n as u32);
            let is_new_data = seq::gt(pcb.snd_nxt, pcb.snd_max);
            pcb.snd_max = seq::max(pcb.snd_max, pcb.snd_nxt);
            // Karn's rule: only time segments that are not retransmissions.
            if pcb.rtt_timing.is_none() && is_new_data {
                self.log.borrow_mut().w(RD, "rtt_timing");
                pcb.rtt_timing = Some((pcb.snd_nxt, now));
            }
            if pcb.rto_deadline.is_none() {
                self.log.borrow_mut().w(TIMERS, "rto_deadline");
                pcb.rto_deadline = Some(now + pcb.rto);
            }
            if pcb.una_since.is_none() {
                pcb.una_since = Some(now);
            }
            pcb.ack_pending = false;
            pcb.delayed_ack_deadline = None;
            self.push(seg);
        }

        // FIN once the buffer is fully sent. [conn mgmt touching RD state]
        let offset = pcb.snd_nxt.wrapping_sub(pcb.snd_buf_seq) as usize;
        if pcb.fin_queued && pcb.fin_seq.is_none() && offset >= pcb.snd_buf.len() {
            self.log.borrow_mut().r(CONN, "snd_buf");
            self.log.borrow_mut().w(CONN, "snd_nxt");
            let seg = Segment {
                src: pcb.tuple.local,
                dst: pcb.tuple.remote,
                seq: pcb.snd_nxt,
                ack: pcb.rcv_nxt,
                flags: FIN | ACK,
                wnd: self.adv_wnd(pcb),
                mss: None,
                payload: Vec::new(),
            };
            pcb.fin_seq = Some(pcb.snd_nxt);
            pcb.snd_nxt = pcb.snd_nxt.wrapping_add(1);
            pcb.snd_max = seq::max(pcb.snd_max, pcb.snd_nxt);
            if pcb.rto_deadline.is_none() {
                pcb.rto_deadline = Some(now + pcb.rto);
            }
            if pcb.una_since.is_none() {
                pcb.una_since = Some(now);
            }
            pcb.ack_pending = false;
            pcb.delayed_ack_deadline = None;
            self.push(seg);
        }

        if pcb.ack_pending {
            // ---- ACK pacing under pressure. Note the entanglement: the
            // output path consults stack-global pressure (FC), arms a
            // timer field on the PCB (TIMERS), and the timer scan in
            // `conn_deadline` plus the receive path's clears all touch the
            // same field. The sublayered stack keeps this private in RD.
            if self.pressure.paces_acks() {
                self.log.borrow_mut().r(FC, "pressure");
                self.log.borrow_mut().w(TIMERS, "delayed_ack_deadline");
                match pcb.delayed_ack_deadline {
                    None => {
                        pcb.delayed_ack_deadline = Some(now + ACK_PACE_DELAY);
                        self.stats.acks_paced += 1;
                        return;
                    }
                    Some(d) if now < d => return,
                    Some(_) => pcb.delayed_ack_deadline = None,
                }
            } else {
                pcb.delayed_ack_deadline = None;
            }
            self.log.borrow_mut().r(RD, "rcv_nxt");
            self.log.borrow_mut().r(FC, "rcv_wnd");
            let seg = Segment {
                src: pcb.tuple.local,
                dst: pcb.tuple.remote,
                seq: pcb.snd_nxt,
                ack: pcb.rcv_nxt,
                flags: ACK,
                wnd: self.adv_wnd(pcb),
                mss: None,
                payload: Vec::new(),
            };
            pcb.ack_pending = false;
            self.push(seg);
        }
    }

    /// Rebuild and send one segment starting at `seq_from` (fast
    /// retransmit / RTO / persist probe).
    fn retransmit_one(&mut self, pcb: &mut Pcb, seq_from: u32) {
        self.log.borrow_mut().r(RD, "snd_buf");
        let offset = seq_from.wrapping_sub(pcb.snd_buf_seq) as usize;
        if offset > pcb.snd_buf.len() {
            return;
        }
        let n = (pcb.snd_buf.len() - offset).min(pcb.mss as usize);
        let payload: Vec<u8> = pcb.snd_buf.iter().skip(offset).take(n).copied().collect();
        let is_fin = n == 0 && pcb.fin_seq == Some(seq_from);
        if n == 0 && !is_fin {
            return;
        }
        let seg = Segment {
            src: pcb.tuple.local,
            dst: pcb.tuple.remote,
            seq: seq_from,
            ack: pcb.rcv_nxt,
            flags: ACK | if is_fin { FIN } else { 0 },
            wnd: self.adv_wnd(pcb),
            mss: None,
            payload,
        };
        self.push(seg);
    }

    /// The heart of the monolithic design: `tcp_input`, everything
    /// interleaved over the shared PCB.
    fn on_segment(&mut self, now: Time, seg: Segment) {
        self.stats.segs_received += 1;

        // ---- demultiplexing: find the PCB ----
        self.log.borrow_mut().r(DEMUX, "conn_table");
        if seg.dst.addr != self.addr {
            return;
        }
        let tuple = FourTuple { local: seg.dst, remote: seg.src };
        let Some(mut pcb) = self.conns.remove(&tuple) else {
            // Admission control first: a full connection table refuses
            // every would-be-new flow — cookie completions included —
            // with a typed drop counter and a RST, never a panic or a
            // silent discard.
            let would_open = self.listeners.contains(&seg.dst.port)
                && ((seg.syn() && !seg.ack_flag())
                    || (seg.ack_flag()
                        && !seg.syn()
                        && !seg.rst()
                        && seg.ack.wrapping_sub(1)
                            == self.syn_cookie(&tuple, seg.seq.wrapping_sub(1))));
            if would_open && self.conns.len() >= self.max_conns {
                self.stats.conn_table_full_drops += 1;
                self.send_rst_for(&seg);
                return;
            }
            // ---- connection management reading stack-global pressure:
            // accept gating. Under Critical pressure or drain, would-be
            // new flows are refused statelessly so a flood cannot grow
            // memory while the host digs itself out.
            if would_open && (self.gate || self.pressure.refuses_new_flows()) {
                self.log.borrow_mut().r(CONN, "gate");
                self.log.borrow_mut().r(CONN, "pressure");
                self.stats.pressure_refusals += 1;
                self.send_rst_for(&seg);
                return;
            }
            // ---- connection management: passive open ----
            if seg.syn() && !seg.ack_flag() && self.listeners.contains(&seg.dst.port) {
                // Resource governance: the half-open queue is bounded. At
                // the cap, evict a stale embryo if one exists, otherwise
                // fall back to a stateless SYN cookie so a flood costs
                // bandwidth, not memory.
                if self.half_open_count() >= MAX_HALF_OPEN {
                    if let Some(victim) = self.stale_half_open(now) {
                        self.conns.remove(&victim);
                        self.stats.half_open_evictions += 1;
                    } else {
                        let cookie = self.syn_cookie(&tuple, seg.seq);
                        let synack = Segment {
                            src: seg.dst,
                            dst: seg.src,
                            seq: cookie,
                            ack: seg.seq.wrapping_add(1),
                            flags: SYN | ACK,
                            // Stateless, so no PCB to clamp through — yet
                            // the pressure shift must be applied here too.
                            wnd: ((RCV_BUF_CAP as u32) >> self.pressure.wnd_shift())
                                .min(u16::MAX as u32)
                                as u16,
                            mss: Some(DEFAULT_MSS),
                            payload: Vec::new(),
                        };
                        self.stats.syn_cookies_sent += 1;
                        self.push(synack);
                        return;
                    }
                }
                self.log.borrow_mut().w(CONN, "state");
                self.log.borrow_mut().w(CONN, "iss");
                self.log.borrow_mut().w(CONN, "irs");
                self.log.borrow_mut().w(CONN, "rcv_nxt");
                self.log.borrow_mut().w(CONN, "snd_wnd");
                self.log.borrow_mut().w(CONN, "mss");
                let iss = self.isn(now, &tuple);
                let mut pcb = Pcb::with_cc(tuple, TcpState::SynRcvd, iss, self.cc_template.clone());
                pcb.snd_nxt = iss.wrapping_add(1);
                pcb.snd_max = pcb.snd_nxt;
                pcb.irs = seg.seq;
                pcb.rcv_nxt = seg.seq.wrapping_add(1);
                pcb.snd_wnd = seg.wnd as u32;
                pcb.snd_wl1 = seg.seq;
                if let Some(m) = seg.mss {
                    pcb.mss = pcb.mss.min(m as u32);
                }
                pcb.rto_deadline = Some(now + pcb.rto);
                pcb.last_rx = now;
                self.stats.conns_opened += 1;
                self.send_syn(&mut pcb, true);
                self.conns.insert(tuple, pcb);
            } else if seg.ack_flag()
                && !seg.syn()
                && !seg.rst()
                && self.listeners.contains(&seg.dst.port)
                && seg.ack.wrapping_sub(1) == self.syn_cookie(&tuple, seg.seq.wrapping_sub(1))
            {
                // The handshake-completing ACK of a cookie we issued
                // statelessly: reconstruct the connection from the
                // sequence numbers alone. (The cookie encodes no MSS, so
                // the connection runs at the default.)
                self.log.borrow_mut().w(CONN, "state");
                let cookie = seg.ack.wrapping_sub(1);
                let mut pcb = Pcb::with_cc(tuple, TcpState::Established, cookie, self.cc_template.clone());
                pcb.snd_una = seg.ack;
                pcb.snd_nxt = seg.ack;
                pcb.snd_max = seg.ack;
                pcb.snd_buf_seq = seg.ack;
                pcb.irs = seg.seq.wrapping_sub(1);
                pcb.rcv_nxt = seg.seq;
                pcb.snd_wnd = seg.wnd as u32;
                pcb.snd_wl1 = seg.seq;
                pcb.snd_wl2 = seg.ack;
                pcb.last_rx = now;
                self.stats.conns_opened += 1;
                self.stats.syn_cookies_validated += 1;
                self.conns.insert(tuple, pcb);
                // Re-enter input processing: the ACK may carry data.
                self.stats.segs_received -= 1; // avoid double count
                self.on_segment(now, seg);
            } else {
                self.send_rst_for(&seg);
            }
            return;
        };

        // Any segment from the peer proves liveness.
        pcb.last_rx = now;
        pcb.ka_probes = 0;

        // ---- connection management: SYN_SENT ----
        if pcb.state == TcpState::SynSent {
            self.log.borrow_mut().r(CONN, "state");
            self.log.borrow_mut().r(CONN, "iss");
            if seg.ack_flag()
                && (seq::leq(seg.ack, pcb.iss) || seq::gt(seg.ack, pcb.snd_nxt))
            {
                self.send_rst_for(&seg);
                self.conns.insert(tuple, pcb);
                return;
            }
            if seg.rst() {
                if seg.ack_flag() {
                    self.stats.conns_reset += 1; // connection refused
                    self.errors.entry(tuple).or_insert(TransportError::Reset);
                    return; // pcb dropped
                }
                self.conns.insert(tuple, pcb);
                return;
            }
            if seg.syn() {
                self.log.borrow_mut().w(CONN, "irs");
                self.log.borrow_mut().w(CONN, "rcv_nxt");
                self.log.borrow_mut().w(CONN, "mss");
                pcb.irs = seg.seq;
                pcb.rcv_nxt = seg.seq.wrapping_add(1);
                if let Some(m) = seg.mss {
                    pcb.mss = pcb.mss.min(m as u32);
                }
                if seg.ack_flag() && seq::gt(seg.ack, pcb.snd_una) {
                    self.log.borrow_mut().w(CONN, "snd_una");
                    pcb.snd_una = seg.ack;
                }
                if seq::gt(pcb.snd_una, pcb.iss) {
                    // Our SYN is acknowledged: established.
                    self.log.borrow_mut().w(CONN, "state");
                    self.log.borrow_mut().w(CONN, "snd_wnd");
                    pcb.state = TcpState::Established;
                    pcb.snd_wnd = seg.wnd as u32;
                    pcb.snd_wl1 = seg.seq;
                    pcb.snd_wl2 = seg.ack;
                    pcb.rto_deadline = None;
                    pcb.retries = 0;
                    pcb.ack_pending = true;
                } else {
                    // Simultaneous open.
                    self.log.borrow_mut().w(CONN, "state");
                    pcb.state = TcpState::SynRcvd;
                    self.send_syn(&mut pcb, true);
                }
            }
            self.output_pcb(now, &mut pcb);
            self.conns.insert(tuple, pcb);
            return;
        }

        // ---- connection management: duplicate SYN in SYN_RCVD ----
        // Covers both a retransmitted SYN and the simultaneous-open
        // SYN|ACK; in either case we (re-)ack, and if our own SYN is
        // acknowledged the connection completes.
        if pcb.state == TcpState::SynRcvd && seg.syn() && seg.seq == pcb.irs {
            self.log.borrow_mut().r(CONN, "irs");
            if seg.ack_flag()
                && seq::between(
                    seg.ack,
                    pcb.snd_una.wrapping_add(1),
                    pcb.snd_nxt.wrapping_add(1),
                )
            {
                self.log.borrow_mut().w(CONN, "state");
                self.log.borrow_mut().w(CONN, "snd_una");
                pcb.snd_una = seg.ack;
                pcb.state = TcpState::Established;
                pcb.snd_wnd = seg.wnd as u32;
                pcb.snd_wl1 = seg.seq;
                pcb.snd_wl2 = seg.ack;
                pcb.rto_deadline = None;
                pcb.retries = 0;
            }
            let ack = Segment {
                src: pcb.tuple.local,
                dst: pcb.tuple.remote,
                seq: pcb.snd_nxt,
                ack: pcb.rcv_nxt,
                flags: ACK,
                wnd: self.adv_wnd(&pcb),
                mss: None,
                payload: Vec::new(),
            };
            self.push(ack);
            self.output_pcb(now, &mut pcb);
            self.conns.insert(tuple, pcb);
            return;
        }

        // ---- connection management: stray SYN (RFC 5961 §4) ----
        if seg.syn() {
            // A SYN on a synchronized connection — any sequence, in or
            // out of window — gets a challenge ACK, never a reset: a
            // spoofed SYN must not kill a live connection, and a peer
            // that genuinely restarted will answer the challenge with an
            // exact-sequence RST.
            self.challenge_ack(&pcb);
            self.conns.insert(tuple, pcb);
            return;
        }

        // ---- reliable delivery: sequence acceptability (RFC 793) ----
        self.log.borrow_mut().r(RD, "rcv_nxt");
        self.log.borrow_mut().r(FC, "rcv_wnd");
        let rwnd = pcb.rcv_wnd();
        let slen = seg.seq_len();
        let acceptable = if slen == 0 && rwnd == 0 {
            seg.seq == pcb.rcv_nxt
        } else if slen == 0 {
            seq::between(seg.seq, pcb.rcv_nxt, pcb.rcv_nxt.wrapping_add(rwnd))
        } else if rwnd == 0 {
            false
        } else {
            seq::between(seg.seq, pcb.rcv_nxt, pcb.rcv_nxt.wrapping_add(rwnd))
                || seq::between(
                    seg.seq.wrapping_add(slen - 1),
                    pcb.rcv_nxt,
                    pcb.rcv_nxt.wrapping_add(rwnd),
                )
        };
        if !acceptable {
            if !seg.rst() {
                pcb.ack_pending = true;
                self.output_pcb(now, &mut pcb);
            }
            self.conns.insert(tuple, pcb);
            return;
        }

        // ---- connection management: RST / stray SYN (RFC 5961) ----
        if seg.rst() {
            self.log.borrow_mut().r(CONN, "rcv_nxt");
            if seg.seq == pcb.rcv_nxt {
                // Exact-sequence RST: genuine abort. RFC 793 p.70: in
                // CLOSING, LAST-ACK and TIME-WAIT the RST just deletes
                // the TCB — both directions already shut down, so there
                // is no "connection reset" signal to the user.
                self.stats.conns_reset += 1;
                if !matches!(
                    pcb.state,
                    TcpState::Closing | TcpState::LastAck | TcpState::TimeWait
                ) {
                    self.errors.entry(tuple).or_insert(TransportError::Reset);
                }
                return; // pcb dropped
            }
            // In-window but not exact: a blind attacker's best guess.
            // Challenge; a real peer that meant it answers with the exact
            // sequence.
            self.challenge_ack(&pcb);
            self.conns.insert(tuple, pcb);
            return;
        }
        if !seg.ack_flag() {
            self.conns.insert(tuple, pcb);
            return;
        }

        // ---- connection management: SYN_RCVD -> ESTABLISHED ----
        if pcb.state == TcpState::SynRcvd {
            if seq::between(seg.ack, pcb.snd_una.wrapping_add(1), pcb.snd_nxt.wrapping_add(1)) {
                self.log.borrow_mut().w(CONN, "state");
                pcb.state = TcpState::Established;
                pcb.snd_wnd = seg.wnd as u32;
                pcb.snd_wl1 = seg.seq;
                pcb.snd_wl2 = seg.ack;
                pcb.rto_deadline = None;
                pcb.retries = 0;
            } else {
                self.send_rst_for(&seg);
                self.conns.insert(tuple, pcb);
                return;
            }
        }

        // ---- reliable delivery + congestion control: ACK processing ----
        if seq::gt(seg.ack, pcb.snd_max) {
            // Acks something never sent: challenge (RFC 5961 §5).
            pcb.ack_pending = true;
            self.output_pcb(now, &mut pcb);
            self.conns.insert(tuple, pcb);
            return;
        }
        if seq::lt(seg.ack, pcb.snd_una.wrapping_sub(MAX_ACK_AGE)) {
            // Trails snd_una by more than any plausible window: blind
            // injection noise — drop without reply (RFC 5961 §5).
            self.stats.old_ack_drops += 1;
            self.conns.insert(tuple, pcb);
            return;
        }
        if seq::gt(seg.ack, pcb.snd_una) {
            self.log.borrow_mut().w(RD, "snd_una");
            self.log.borrow_mut().r(RD, "rtt_timing");
            self.log.borrow_mut().w(RD, "snd_buf");
            self.log.borrow_mut().r(CONN, "fin_seq");
            self.log.borrow_mut().w(CC, "cwnd");
            self.log.borrow_mut().r(CC, "ssthresh");
            self.log.borrow_mut().r(CC, "snd_una");
            self.log.borrow_mut().r(CC, "mss");
            let bytes_acked = seg.ack.wrapping_sub(pcb.snd_una);

            // RTT sample (Karn's rule: only when nothing was retransmitted,
            // i.e. the timing marker survived).
            let mut rtt_sample = None;
            if let Some((tseq, t0)) = pcb.rtt_timing {
                if seq::geq(seg.ack, tseq) {
                    let sample = now.since(t0);
                    rtt_sample = Some(sample);
                    self.log.borrow_mut().w(RD, "srtt");
                    match pcb.srtt {
                        None => {
                            pcb.srtt = Some(sample);
                            pcb.rttvar = Dur(sample.0 / 2);
                        }
                        Some(srtt) => {
                            let err = sample.0.abs_diff(srtt.0);
                            pcb.rttvar = Dur((3 * pcb.rttvar.0 + err) / 4);
                            pcb.srtt = Some(Dur((7 * srtt.0 + sample.0) / 8));
                        }
                    }
                    let srtt = pcb.srtt.unwrap();
                    pcb.rto = Dur(srtt.0 + (4 * pcb.rttvar.0).max(srtt.0 / 8))
                        .clamp(MIN_RTO, MAX_RTO);
                    pcb.rtt_timing = None;
                }
            }

            // Trim acknowledged bytes from the buffer (FIN occupies one
            // extra sequence number beyond the data).
            let data_ack_limit = match pcb.fin_seq {
                Some(fs) if seq::gt(seg.ack, fs) => fs,
                _ => seg.ack,
            };
            let drop_n = data_ack_limit.wrapping_sub(pcb.snd_buf_seq) as usize;
            let drop_n = drop_n.min(pcb.snd_buf.len());
            pcb.snd_buf.drain(..drop_n);
            pcb.snd_buf_seq = pcb.snd_buf_seq.wrapping_add(drop_n as u32);
            pcb.snd_una = seg.ack;
            if seq::lt(pcb.snd_nxt, pcb.snd_una) {
                pcb.snd_nxt = pcb.snd_una;
            }
            // F-RTO resolution: the first ack advance after a timeout
            // redirects transmission back to new data (snd_nxt jumps to
            // snd_max instead of replaying the rewound flight); a second
            // advance proves the original flight is still arriving, so
            // the timeout was spurious and the replay stays cancelled. A
            // duplicate ack instead reverts to the conventional rewind
            // (see the dup-ack arm below).
            if let Some(mark) = pcb.frto_mark {
                pcb.snd_nxt = pcb.snd_max;
                if pcb.frto_probed || seq::geq(seg.ack, mark) {
                    pcb.frto_mark = None;
                    pcb.frto_probed = false;
                    self.stats.spurious_rtos += 1;
                } else {
                    pcb.frto_probed = true;
                }
            }
            pcb.retries = 0;
            pcb.una_since = if pcb.flight_size() == 0 && pcb.snd_buf.is_empty() {
                None
            } else {
                Some(now)
            };

            // Congestion control: classify the ack for the pluggable
            // controller. The classification — partial vs. full against
            // the recovery point — is sequence arithmetic and stays in
            // the PCB path; the window arithmetic lives behind the shared
            // RateController trait (same controller set as the sublayered
            // stack).
            if pcb.in_fast_recovery {
                if seq::geq(seg.ack, pcb.recover) {
                    // Full ack: leave fast recovery (controller deflates).
                    pcb.feed_cc(
                        now,
                        CongSignal::FullAck { bytes: bytes_acked, rtt: rtt_sample },
                    );
                    pcb.in_fast_recovery = false;
                    pcb.dupacks = 0;
                } else {
                    // Partial ack: retransmit the next hole, stay in
                    // recovery.
                    self.stats.fast_retransmits += 1;
                    let una = pcb.snd_una;
                    self.retransmit_one(&mut pcb, una);
                    pcb.feed_cc(now, CongSignal::PartialAck { bytes: bytes_acked });
                }
            } else {
                pcb.dupacks = 0;
                pcb.feed_cc(now, CongSignal::Acked { bytes: bytes_acked, rtt: rtt_sample });
            }

            // Restart or clear the retransmission timer.
            self.log.borrow_mut().w(TIMERS, "rto_deadline");
            pcb.rto_deadline =
                if pcb.snd_una == pcb.snd_max { None } else { Some(now + pcb.rto) };

            // Was our FIN acknowledged?
            if let Some(fs) = pcb.fin_seq {
                if seq::gt(seg.ack, fs) {
                    self.log.borrow_mut().w(CONN, "state");
                    match pcb.state {
                        TcpState::FinWait1 => pcb.state = TcpState::FinWait2,
                        TcpState::Closing => {
                            pcb.state = TcpState::TimeWait;
                            pcb.time_wait_deadline = Some(now + TIME_WAIT_DUR);
                        }
                        TcpState::LastAck => {
                            self.conns.remove(&tuple);
                            return;
                        }
                        _ => {}
                    }
                }
            }
        } else if seg.ack == pcb.snd_una
            && pcb.flight_size() > 0
            && seg.payload.is_empty()
            && seg.wnd as u32 == pcb.snd_wnd
            && !seg.fin()
        {
            // ---- congestion control: duplicate ack ----
            self.log.borrow_mut().w(CC, "dupacks");
            self.log.borrow_mut().r(CC, "snd_una");
            self.log.borrow_mut().r(CC, "snd_nxt");
            self.log.borrow_mut().r(CC, "snd_wnd");
            if pcb.frto_mark.take().is_some() {
                // F-RTO: a duplicate ack right after the timeout means
                // the loss was real — fall back to the conventional
                // rewound slow-start retransmission.
                pcb.frto_probed = false;
                pcb.snd_nxt = pcb.snd_una;
            }
            pcb.dupacks += 1;
            self.stats.dupacks += 1;
            if pcb.dupacks == 3 && !pcb.in_fast_recovery {
                self.log.borrow_mut().w(CC, "ssthresh");
                self.log.borrow_mut().w(CC, "cwnd");
                self.log.borrow_mut().r(CC, "snd_buf");
                self.log.borrow_mut().w(CC, "recover");
                self.stats.fast_retransmits += 1;
                // The loss cut is taken by the controller (from its own
                // cwnd, not flight size — the controller never sees
                // sequence state); the recovery point stays here.
                let una = pcb.snd_una;
                self.retransmit_one(&mut pcb, una);
                pcb.feed_cc(now, CongSignal::DupAckLoss);
                pcb.in_fast_recovery = true;
                pcb.recover = pcb.snd_max;
            } else if pcb.in_fast_recovery {
                // Window inflation.
                pcb.feed_cc(now, CongSignal::DupAck);
            }
        }

        // ---- flow control: window update ----
        if seq::lt(pcb.snd_wl1, seg.seq)
            || (pcb.snd_wl1 == seg.seq && seq::leq(pcb.snd_wl2, seg.ack))
        {
            self.log.borrow_mut().w(FC, "snd_wnd");
            self.log.borrow_mut().w(FC, "snd_wl1");
            self.log.borrow_mut().w(FC, "snd_wl2");
            self.log.borrow_mut().w(FC, "persist_deadline");
            pcb.snd_wnd = seg.wnd as u32;
            pcb.snd_wl1 = seg.seq;
            pcb.snd_wl2 = seg.ack;
            if pcb.snd_wnd > 0 {
                pcb.persist_deadline = None;
            }
        }

        // ---- reliable delivery: payload reassembly ----
        if !seg.payload.is_empty() {
            self.log.borrow_mut().r(RD, "rcv_nxt");
            self.log.borrow_mut().w(RD, "rcv_buf");
            self.log.borrow_mut().w(RD, "ooo");
            let mut data = seg.payload.clone();
            let mut start = seg.seq;
            // Trim anything before rcv_nxt.
            if seq::lt(start, pcb.rcv_nxt) {
                let skip = pcb.rcv_nxt.wrapping_sub(start) as usize;
                if skip >= data.len() {
                    data.clear();
                } else {
                    data.drain(..skip);
                }
                start = pcb.rcv_nxt;
            }
            // Trim anything beyond our window.
            let wnd_end = pcb.rcv_nxt.wrapping_add(pcb.rcv_wnd());
            let data_end = start.wrapping_add(data.len() as u32);
            if seq::gt(data_end, wnd_end) {
                let cut = data_end.wrapping_sub(wnd_end) as usize;
                let keep = data.len().saturating_sub(cut);
                data.truncate(keep);
            }
            if !data.is_empty() {
                if start == pcb.rcv_nxt {
                    pcb.rcv_nxt = pcb.rcv_nxt.wrapping_add(data.len() as u32);
                    pcb.rcv_buf.extend(data);
                    // Drain contiguous out-of-order segments.
                    while let Some((&s, _)) = pcb.ooo.iter().next() {
                        if seq::gt(s, pcb.rcv_nxt) {
                            break;
                        }
                        let (s, d) = pcb.ooo.pop_first().unwrap();
                        let skip = pcb.rcv_nxt.wrapping_sub(s) as usize;
                        if skip < d.len() {
                            pcb.rcv_nxt = pcb.rcv_nxt.wrapping_add((d.len() - skip) as u32);
                            pcb.rcv_buf.extend(d.into_iter().skip(skip));
                        }
                    }
                } else {
                    // Out-of-order hold is capped in entries AND bytes: a
                    // peer (or injector) spraying the window can cost at
                    // most one receive buffer of memory; beyond that the
                    // data is dropped and must be retransmitted in order.
                    let held: usize = pcb.ooo.values().map(|d| d.len()).sum();
                    if pcb.ooo.len() < 256 && held + data.len() <= RCV_BUF_CAP {
                        pcb.ooo.insert(start, data);
                    } else {
                        self.stats.ooo_overflow_drops += 1;
                    }
                }
            }
            pcb.ack_pending = true;
        }

        // ---- connection management: FIN processing ----
        if seg.fin() {
            let fin_seq = seg.seq.wrapping_add(seg.payload.len() as u32);
            if fin_seq == pcb.rcv_nxt {
                self.log.borrow_mut().w(CONN, "state");
                self.log.borrow_mut().w(CONN, "rcv_nxt");
                self.log.borrow_mut().w(CONN, "rto_deadline");
                pcb.rcv_nxt = pcb.rcv_nxt.wrapping_add(1);
                pcb.ack_pending = true;
                match pcb.state {
                    TcpState::Established => pcb.state = TcpState::CloseWait,
                    TcpState::FinWait1 => {
                        // Our FIN not yet acked (else we'd be in FIN_WAIT_2).
                        pcb.state = TcpState::Closing;
                    }
                    TcpState::FinWait2 => {
                        pcb.state = TcpState::TimeWait;
                        pcb.time_wait_deadline = Some(now + TIME_WAIT_DUR);
                        pcb.rto_deadline = None;
                    }
                    _ => {}
                }
            } else {
                // FIN beyond a gap: ask for the missing bytes.
                pcb.ack_pending = true;
            }
        }

        self.output_pcb(now, &mut pcb);
        if pcb.state != TcpState::Closed {
            self.conns.insert(tuple, pcb);
        }
    }

    /// Timer processing: RTO, TIME_WAIT, persist (zero-window probe).
    /// Sorted so every same-seed run ticks connections in the same order
    /// (HashMap iteration order is not deterministic).
    fn timers(&mut self, now: Time) {
        let mut tuples: Vec<FourTuple> = self.conns.keys().copied().collect();
        tuples.sort();
        for tuple in tuples {
            self.tick_conn(now, tuple);
        }
    }

    /// Advance one connection's timers to `now` (the per-connection half
    /// of `on_tick`, for hosts that track deadlines per connection);
    /// spurious calls are harmless.
    pub fn tick_conn(&mut self, now: Time, tuple: FourTuple) {
        {
            let Some(mut pcb) = self.conns.remove(&tuple) else { return };

            if pcb.time_wait_deadline.is_some_and(|d| now >= d) {
                return; // 2MSL elapsed: drop the PCB.
            }

            if pcb.rto_deadline.is_some_and(|d| now >= d) {
                self.log.borrow_mut().r(TIMERS, "rto_deadline");
                self.log.borrow_mut().w(TIMERS, "cwnd");
                self.log.borrow_mut().w(TIMERS, "ssthresh");
                self.log.borrow_mut().w(TIMERS, "snd_nxt");
                self.log.borrow_mut().w(TIMERS, "rtt_timing");
                self.log.borrow_mut().w(TIMERS, "fin_seq");
                pcb.retries += 1;
                self.stats.rto_retransmits += 1;
                let give_up = match pcb.state {
                    TcpState::SynSent | TcpState::SynRcvd => pcb.retries > MAX_SYN_RETRIES,
                    _ => pcb.retries > MAX_RETRIES,
                };
                if give_up {
                    // Abandon the connection, but *surface* the failure:
                    // record why it died and tell the peer (best effort —
                    // on a dead path the RST is lost, which is fine).
                    let why = match pcb.state {
                        TcpState::SynSent | TcpState::SynRcvd => {
                            TransportError::HandshakeFailed
                        }
                        _ => TransportError::RetriesExhausted,
                    };
                    self.errors.entry(tuple).or_insert(why);
                    self.stats.conns_reset += 1;
                    self.send_rst(&pcb);
                    return; // PCB dropped
                }
                match pcb.state {
                    TcpState::SynSent => self.send_syn(&mut pcb, false),
                    TcpState::SynRcvd => self.send_syn(&mut pcb, true),
                    _ => {
                        // Classic RTO response: the controller collapses
                        // to slow start; go back to snd_una.
                        pcb.feed_cc(now, CongSignal::TimeoutLoss);
                        pcb.in_fast_recovery = false;
                        pcb.dupacks = 0;
                        pcb.rtt_timing = None; // Karn
                        if pcb.fin_seq.is_some_and(|fs| seq::geq(fs, pcb.snd_una)) {
                            pcb.fin_seq = None; // resend FIN via output
                        }
                        // F-RTO (RFC 5682, simplified): arm spurious-
                        // timeout detection on the episode's first timeout
                        // when more than one segment is outstanding;
                        // backed-off repeats run the conventional
                        // go-back-N below.
                        pcb.frto_probed = false;
                        pcb.frto_mark = if pcb.retries == 1
                            && pcb.flight_size() > pcb.mss
                        {
                            Some(pcb.snd_max)
                        } else {
                            None
                        };
                        pcb.snd_nxt = pcb.snd_una;
                        self.output_pcb(now, &mut pcb);
                    }
                }
                pcb.rto = Dur((pcb.rto.0 * 2).min(MAX_RTO.0));
                pcb.rto_deadline = Some(now + pcb.rto);
            }

            if pcb.persist_deadline.is_some_and(|d| now >= d) {
                // Zero-window probe: one byte past the window.
                self.log.borrow_mut().r(TIMERS, "snd_wnd");
                self.log.borrow_mut().r(TIMERS, "snd_buf");
                self.log.borrow_mut().w(TIMERS, "snd_nxt");
                let offset = pcb.snd_nxt.wrapping_sub(pcb.snd_buf_seq) as usize;
                if offset < pcb.snd_buf.len() && pcb.snd_wnd == 0 {
                    let byte = pcb.snd_buf[offset];
                    let seg = Segment {
                        src: pcb.tuple.local,
                        dst: pcb.tuple.remote,
                        seq: pcb.snd_nxt,
                        ack: pcb.rcv_nxt,
                        flags: ACK,
                        wnd: self.adv_wnd(&pcb),
                        mss: None,
                        payload: vec![byte],
                    };
                    pcb.snd_nxt = pcb.snd_nxt.wrapping_add(1);
                    pcb.snd_max = seq::max(pcb.snd_max, pcb.snd_nxt);
                    if pcb.rto_deadline.is_none() {
                        pcb.rto_deadline = Some(now + pcb.rto);
                    }
                    self.push(seg);
                    pcb.persist_deadline = Some(now + pcb.rto.saturating_mul(2));
                } else {
                    pcb.persist_deadline = None;
                }
            }

            // ---- keepalive: probe a silent peer, abort a vanished one ----
            // Probes keep firing even with data in flight (they refresh the
            // peer's idle timer), but only an *idle* connection may abort on
            // probe exhaustion: while data is in flight the RTO retry budget
            // owns liveness, and counting a partition's silence against the
            // (much smaller) probe budget would abort PeerVanished long
            // before retransmission gives up — spuriously on a reroute to a
            // longer RTT, or a partition shorter than the RTO budget.
            if let Some(ka) = self.keepalive {
                if pcb.state == TcpState::Established {
                    let due = pcb.last_rx
                        + ka.idle
                        + ka.interval.saturating_mul(pcb.ka_probes as u64);
                    if now >= due {
                        if pcb.ka_probes >= ka.max_probes && pcb.flight_size() == 0 {
                            self.log.borrow_mut().w(TIMERS, "state");
                            self.errors
                                .entry(tuple)
                                .or_insert(TransportError::PeerVanished);
                            self.stats.conns_reset += 1;
                            self.send_rst(&pcb);
                            return; // PCB dropped
                        }
                        // Probe one byte *behind* snd_nxt: unacceptable to
                        // the peer, which therefore answers with a bare
                        // ack (the RFC 793 rule on_segment already obeys).
                        self.log.borrow_mut().r(TIMERS, "snd_nxt");
                        let seg = Segment {
                            src: pcb.tuple.local,
                            dst: pcb.tuple.remote,
                            seq: pcb.snd_nxt.wrapping_sub(1),
                            ack: pcb.rcv_nxt,
                            flags: ACK,
                            wnd: self.adv_wnd(&pcb),
                            mss: None,
                            payload: Vec::new(),
                        };
                        self.push(seg);
                        pcb.ka_probes += 1;
                        self.stats.keepalive_probes += 1;
                    }
                }
            }

            self.conns.insert(tuple, pcb);
        }
    }
}

impl Stack for TcpStack {
    fn on_frame(&mut self, now: Time, frame: &[u8]) {
        match Segment::decode(frame) {
            Ok(seg) => self.on_segment(now, seg),
            Err(_) => self.stats.bad_segments += 1,
        }
    }

    fn poll_transmit(&mut self, now: Time) -> Option<Vec<u8>> {
        if self.outbox.is_empty() {
            // Give every connection a chance to transmit buffered data.
            // Sorted so every same-seed run pumps connections in the same
            // order (HashMap iteration order is not deterministic).
            let mut tuples: Vec<FourTuple> = self.conns.keys().copied().collect();
            tuples.sort();
            for t in tuples {
                self.output(now, t);
            }
        }
        self.outbox.pop_front()
    }

    fn poll_deadline(&self, now: Time) -> Option<Time> {
        self.conns.keys().filter_map(|&t| self.conn_deadline(now, t)).min()
    }

    fn on_tick(&mut self, now: Time) {
        self.timers(now);
    }
}

impl TcpStack {
    /// Debug snapshot of a connection's key variables (used by the debug
    /// binary and by tests asserting internal invariants).
    pub fn debug_snapshot(&self, tuple: FourTuple) -> Option<String> {
        self.conns.get(&tuple).map(|p| {
            format!(
                "state={:?} snd_una={} snd_nxt={} snd_wnd={} cwnd={} buf={} buf_seq={} rcv_nxt={} ooo={} rto_dl={:?} persist={:?} fin_seq={:?} fr={} dupacks={}",
                p.state,
                p.snd_una.wrapping_sub(p.iss),
                p.snd_nxt.wrapping_sub(p.iss),
                p.snd_wnd,
                p.cc.allowance(Time::ZERO),
                p.snd_buf.len(),
                p.snd_buf_seq.wrapping_sub(p.iss),
                p.rcv_nxt.wrapping_sub(p.irs),
                p.ooo.len(),
                p.rto_deadline,
                p.persist_deadline,
                p.fin_seq.map(|f| f.wrapping_sub(p.iss)),
                p.in_fast_recovery,
                p.dupacks,
            )
        })
    }
}
